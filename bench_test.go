package qc

// Benchmarks regenerating the paper's tables and figures as testing.B
// targets. Each benchmark compiles (and where relevant executes) the
// corresponding workload; run them all with
//
//	go test -bench=. -benchmem
//
// The cmd/qbench tool produces the formatted tables from the same drivers.

import (
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/interp"
	"qcc/internal/backend/lbe"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/tpcds"
	"qcc/internal/tpch"
	"qcc/internal/vt"
)

const benchSF = 0.02

func benchWorld(b *testing.B, arch vt.Arch) *bench.World {
	b.Helper()
	cfg := bench.DefaultConfig()
	cfg.Arch = arch
	cfg.SF = benchSF
	cfg.MemMB = 512
	w := bench.NewWorld(cfg)
	if err := loadDSInto(w, benchSF); err != nil {
		b.Fatal(err)
	}
	return w
}

func loadDSInto(w *bench.World, sf float64) error {
	return tpcds.Load(w.Cat, sf)
}

func hLoad(w *bench.World, sf float64) error {
	return tpch.Load(w.Cat, sf)
}

// compileSuite compiles the whole TPC-DS suite once with one engine.
func compileSuite(b *testing.B, eng backend.Engine, arch vt.Arch) {
	b.Helper()
	w := benchWorld(b, arch)
	queries := bench.DSQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: arch}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1GCC measures the GCC/C back-end compiling all TPC-DS
// queries (Table I's total; qbench table1 prints the phase breakdown).
func BenchmarkTable1GCC(b *testing.B) { compileSuite(b, cbe.New(), vt.VX64) }

// BenchmarkFig2LLVMCheap and BenchmarkFig2LLVMOpt measure the two LLVM
// configurations of Figure 2.
func BenchmarkFig2LLVMCheap(b *testing.B) { compileSuite(b, lbe.NewCheap(), vt.VX64) }

// BenchmarkFig2LLVMOpt is the optimized configuration of Figure 2.
func BenchmarkFig2LLVMOpt(b *testing.B) { compileSuite(b, lbe.NewOpt(), vt.VX64) }

// BenchmarkFig3 measures the four va64 instruction-selector configurations
// of Figure 3.
func BenchmarkFig3FastISel(b *testing.B) { compileSuite(b, lbe.NewCheap(), vt.VA64) }

// BenchmarkFig3GlobalISelCheap is GlobalISel in the cheap pipeline.
func BenchmarkFig3GlobalISelCheap(b *testing.B) {
	compileSuite(b, lbe.NewWithConfig(lbe.Config{ISel: lbe.ISelGlobal}), vt.VA64)
}

// BenchmarkFig3SelectionDAG is the optimized SelectionDAG configuration.
func BenchmarkFig3SelectionDAG(b *testing.B) { compileSuite(b, lbe.NewOpt(), vt.VA64) }

// BenchmarkFig3GlobalISelOpt is GlobalISel in the optimized pipeline.
func BenchmarkFig3GlobalISelOpt(b *testing.B) {
	compileSuite(b, lbe.NewWithConfig(lbe.Config{Opt: true, ISel: lbe.ISelGlobal}), vt.VA64)
}

// BenchmarkFig4Cranelift measures Cranelift compiling all TPC-DS queries
// (Figure 4's total).
func BenchmarkFig4Cranelift(b *testing.B) { compileSuite(b, clift.New(), vt.VX64) }

// BenchmarkFig5DirectEmit measures DirectEmit compiling all TPC-DS queries
// (Figure 5's total).
func BenchmarkFig5DirectEmit(b *testing.B) { compileSuite(b, direct.New(), vt.VX64) }

// BenchmarkTable3 measures compile+execute for each back-end over the
// TPC-DS suite (Table III / Figure 6 data).
func BenchmarkTable3(b *testing.B) {
	for _, eng := range []backend.Engine{
		interp.New(), direct.New(), clift.New(), lbe.NewCheap(), lbe.NewOpt(), cbe.New(),
	} {
		b.Run(eng.Name(), func(b *testing.B) {
			cfg := bench.DefaultConfig()
			cfg.SF = benchSF
			cfg.MemMB = 512
			w := bench.NewWorld(cfg)
			if err := loadDSInto(w, benchSF); err != nil {
				b.Fatal(err)
			}
			queries := bench.DSQueries()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunSuite(w, eng, vt.VX64, queries, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2CraneliftInstrs executes TPC-DS with and without the
// custom Cranelift instructions (Table II's ablation).
func BenchmarkTable2CraneliftInstrs(b *testing.B) {
	for _, cse := range []struct {
		name string
		opts clift.Options
	}{
		{"all-custom", clift.Options{}},
		{"no-crc32", clift.Options{NoCrc32: true}},
		{"no-overflow", clift.Options{NoOverflow: true}},
		{"no-mulwide", clift.Options{NoMulWide: true}},
	} {
		b.Run(cse.name, func(b *testing.B) {
			cfg := bench.DefaultConfig()
			cfg.SF = benchSF
			cfg.MemMB = 512
			w := bench.NewWorld(cfg)
			if err := loadDSInto(w, benchSF); err != nil {
				b.Fatal(err)
			}
			queries := bench.DSQueries()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunSuite(w, clift.NewWithOptions(cse.opts), vt.VX64, queries, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7TradeOff runs the TPC-H suite end to end per back-end at one
// scale factor (Figure 7's inputs; qbench fig7 prints the winner table).
func BenchmarkFig7TradeOff(b *testing.B) {
	for _, eng := range []backend.Engine{
		interp.New(), direct.New(), clift.New(), lbe.NewCheap(), lbe.NewOpt(),
	} {
		b.Run(eng.Name(), func(b *testing.B) {
			cfg := bench.DefaultConfig()
			cfg.MemMB = 512
			w := bench.NewWorld(cfg)
			if err := hLoad(w, 0.05); err != nil {
				b.Fatal(err)
			}
			queries := bench.HQueries()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunSuite(w, eng, vt.VX64, queries, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLLVMStructs measures the Sec. V-A2 struct-representation
// regression: {i64,i64} structs vs scalar pairs.
func BenchmarkAblationLLVMStructs(b *testing.B) {
	b.Run("scalar-pairs", func(b *testing.B) { compileSuite(b, lbe.NewCheap(), vt.VX64) })
	b.Run("structs", func(b *testing.B) {
		compileSuite(b, lbe.NewWithConfig(lbe.Config{StructPairs: true}), vt.VX64)
	})
}

// BenchmarkAblationLLVMCodeModel measures Small-PIC vs the large code model
// (FastISel call fallbacks).
func BenchmarkAblationLLVMCodeModel(b *testing.B) {
	b.Run("small-pic", func(b *testing.B) { compileSuite(b, lbe.NewCheap(), vt.VX64) })
	b.Run("large", func(b *testing.B) {
		compileSuite(b, lbe.NewWithConfig(lbe.Config{LargeCodeModel: true}), vt.VX64)
	})
}

// BenchmarkAblationTargetMachineCache measures TargetMachine construction
// caching (Sec. V-A2, third measure).
func BenchmarkAblationTargetMachineCache(b *testing.B) {
	b.Run("cached", func(b *testing.B) { compileSuite(b, lbe.NewCheap(), vt.VX64) })
	b.Run("uncached", func(b *testing.B) {
		compileSuite(b, lbe.NewWithConfig(lbe.Config{NoTMCache: true}), vt.VX64)
	})
}
