module qcc

go 1.22
