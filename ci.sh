#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. go vet
#   2. full build
#   3. tests under the race detector (exercises the concurrent obs counters
#      and the parallel compilation driver's worker pool)
#   4. a smoke run of the benchmark harness emitting the stable JSON report
#   5. the verification stack (qir verifier, regalloc checker, machine lint,
#      cross-backend differential) over the TPC-H suite on both targets —
#      once sequentially per arch, once through the parallel driver (-jobs 4)
#   6. a -nofuse smoke run, proving the unfused dispatch path stays healthy
#   7. a qprof smoke run (one TPC-H query per arch): the profiler must
#      produce a valid qcc.prof/v1 report attributing >= 95% of sampled VM
#      time to named plan operators
#   8. the profiler overhead gate: qbench prof fails the build when the
#      geomean sampling overhead exceeds 10% (generous at CI's tiny scale
#      factor, where per-query times are microseconds and noisy; the
#      EXPERIMENTS.md numbers at sf 0.05 are the honest measurement)
#   9. the static-analysis lint gate: qlint over TPC-H on both targets must
#      report zero findings (unreachable blocks, dead stores, always-trap
#      accesses, range contradictions) in the generated QIR
#  10. the check-elimination gates: the strict unchecked differential (every
#      eliminated check re-validated at runtime across all back-ends, both
#      archs, under the race detector) plus qbench checkelim -checkelim-gate
#      0.3, which fails when less than 30% of Q1/Q6 static checks are proven
#      redundant
#  11. the parallel-executor differential under the race detector: every
#      TPC-H query, both archs, batch kernels off and on, at 1/2/4/8 workers
#      must produce byte-identical ordered output to the sequential
#      tuple-at-a-time reference (and the actually-parallel guard proves the
#      workers really ran — no silent sequential fallback)
#  12. the batch/parallel exec gate: qbench batch -batch-gate 1.3 fails when
#      q1 or q6 falls below a 1.3x parallel speedup at 4 workers, or when
#      the single-worker batch path regresses the tuple baseline by more
#      than 25% on any query
#  13. the hoist differential under the race detector: every TPC-H and
#      TPC-DS query with literals pooled vs baked inline must produce
#      identical rows on every back-end (short mode: vx64), plus the
#      trap-boundary corpus (literals exactly on overflow/div-zero edges
#      must trap identically, with deterministic trap PCs, in both modes)
#  14. the plan-cache gate: qbench cache fails when constant-only variants
#      of the parameterized TPC-H families hit the warm cache below 90% on
#      any compiling back-end, or when pooled (hoisted) bodies regress
#      inline-literal execution by more than 3% pooled geomean
#
# The unchecked-conservation check (QIR marks must survive into every
# back-end's machine code) runs inside step 5 as part of qverify.
#
# The fused-vs-unfused conformance gate (identical results, counters and
# trap PCs on every TPC-H query, all back-ends, both archs) runs inside
# step 3 as TestFusedDispatchDifferential under the race detector.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== qbench smoke (-sf 0.01 -json) =="
tmp="$(mktemp -t qbench-report.XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT
go run ./cmd/qbench -sf 0.01 -json "$tmp"
grep -q '"schema": "qcc.obs.report/v2"' "$tmp"
echo "report OK: $tmp"

echo "== qbench smoke (-sf 0.01 -nofuse) =="
go run ./cmd/qbench -sf 0.01 -nofuse table3

echo "== qverify (tpch, vx64 + va64) =="
go run ./cmd/qverify -sf 0.01
go run ./cmd/qverify -sf 0.01 -arch va64

echo "== qverify (tpch, vx64, parallel driver -jobs 4) =="
go run ./cmd/qverify -sf 0.01 -jobs 4

echo "== qprof smoke (q6, vx64 + va64) =="
ptmp="$(mktemp -t qprof-report.XXXXXX.json)"
trap 'rm -f "$tmp" "$ptmp"' EXIT
for arch in vx64 va64; do
	go run ./cmd/qprof -arch "$arch" -query q6 -sf 0.01 -runs 4 -period 4096 \
		-format json -o "$ptmp"
	grep -q '"schema": "qcc.prof/v1"' "$ptmp"
	# At least 95% of samples must resolve to a named plan operator.
	go run ./cmd/qprof -format top "$ptmp" | grep -qE '9[5-9]\.[0-9]+% attributed|100\.0+% attributed'
	echo "qprof $arch OK"
done

echo "== qbench prof overhead gate (sf 0.01, budget 10%) =="
go run ./cmd/qbench -sf 0.01 -runs 3 -prof-budget 10 prof

echo "== qlint (tpch, vx64 + va64) =="
go run ./cmd/qlint -sf 0.01 -workload tpch
go run ./cmd/qlint -sf 0.01 -workload tpch -arch va64

echo "== strict unchecked differential (-race) =="
go test -race ./internal/backend/conformance/ \
	-run 'TestStrictUncheckedTPCHDifferential|TestAdversarialTrapCorpus|TestStrictCatchesBadElimination' -count=1

echo "== qbench checkelim gate (sf 0.01, >= 30% on q1/q6) =="
go run ./cmd/qbench -sf 0.01 -runs 2 -checkelim-gate 0.3 checkelim >/dev/null

echo "== parallel executor differential (-race) =="
go test -race ./internal/backend/conformance/ \
	-run 'TestParallelDifferential|TestParallelActuallyParallel' -count=1

echo "== qbench batch exec gate (sf 0.05, >= 1.3x on q1/q6 at 4 workers) =="
go run ./cmd/qbench -sf 0.05 -runs 3 -exec-jobs 4 -batch-gate 1.3 batch >/dev/null

echo "== hoist differential (-race, short) =="
go test -race -short ./internal/backend/conformance/ \
	-run 'TestHoistDifferential|TestHoistTrapBoundaryCorpus' -count=1

echo "== qbench plan-cache gate (sf 0.05, >= 90% warm hits, <= 3% exec regression) =="
go run ./cmd/qbench -sf 0.05 -runs 3 -cache-gate 0.9 cache >/dev/null

echo "== ci.sh: all checks passed =="
