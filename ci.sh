#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. go vet
#   2. full build
#   3. tests under the race detector (exercises the concurrent obs counters
#      and the parallel compilation driver's worker pool)
#   4. a smoke run of the benchmark harness emitting the stable JSON report
#   5. the verification stack (qir verifier, regalloc checker, machine lint,
#      cross-backend differential) over the TPC-H suite on both targets —
#      once sequentially per arch, once through the parallel driver (-jobs 4)
#   6. a -nofuse smoke run, proving the unfused dispatch path stays healthy
#
# The fused-vs-unfused conformance gate (identical results, counters and
# trap PCs on every TPC-H query, all back-ends, both archs) runs inside
# step 3 as TestFusedDispatchDifferential under the race detector.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== qbench smoke (-sf 0.01 -json) =="
tmp="$(mktemp -t qbench-report.XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT
go run ./cmd/qbench -sf 0.01 -json "$tmp"
grep -q '"schema": "qcc.obs.report/v1"' "$tmp"
echo "report OK: $tmp"

echo "== qbench smoke (-sf 0.01 -nofuse) =="
go run ./cmd/qbench -sf 0.01 -nofuse table3

echo "== qverify (tpch, vx64 + va64) =="
go run ./cmd/qverify -sf 0.01
go run ./cmd/qverify -sf 0.01 -arch va64

echo "== qverify (tpch, vx64, parallel driver -jobs 4) =="
go run ./cmd/qverify -sf 0.01 -jobs 4

echo "== ci.sh: all checks passed =="
