// Command qrun executes SQL against a generated workload with a chosen
// back-end and prints results plus the compile-time breakdown.
//
// Usage:
//
//	qrun [-engine adaptive] [-workload tpch|tpcds] [-sf 0.05] [-arch vx64]
//	     [-mem 512] [-nofuse] [-exec-jobs N] [-batch|-nobatch]
//	     [-cache-mb N] [-repeat N] "SELECT ..."
//
// -exec-jobs N executes table pipelines through the morsel-parallel
// executor with N workers; -batch compiles eligible scan pipelines to
// batch-at-a-time kernels. Batch kernels default on when -exec-jobs > 1;
// -nobatch forces tuple-at-a-time code either way. Results are identical
// under every combination.
//
// -cache-mb N enables the content-addressed compiled-code cache; since
// constant hoisting parameterizes compiled bodies, re-running the query (or
// a constant-only variant of it — see -repeat) hits the cache and skips
// back-end compilation. Hit/miss counts print with the stats summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"qcc"
)

func main() {
	engine := flag.String("engine", "adaptive", "execution back-end: "+strings.Join(qc.Engines(), ", "))
	workload := flag.String("workload", "tpch", "preloaded schema: tpch or tpcds")
	sf := flag.Float64("sf", 0.05, "scale factor")
	archFlag := flag.String("arch", "vx64", "target architecture")
	mem := flag.Int("mem", 512, "VM memory in MiB")
	noFuse := flag.Bool("nofuse", false, "disable vm superinstruction fusion (plain decoded-switch dispatch)")
	execJobs := flag.Int("exec-jobs", 1, "morsel-parallel executor workers (1 = sequential)")
	batchOn := flag.Bool("batch", false, "compile eligible scan pipelines to batch-at-a-time kernels (default on when -exec-jobs > 1)")
	noBatch := flag.Bool("nobatch", false, "force tuple-at-a-time execution even with -exec-jobs > 1")
	cacheMB := flag.Int("cache-mb", 0, "compiled-code cache budget in MiB (0 = disabled)")
	repeat := flag.Int("repeat", 1, "run the query N times (later runs hit the cache when -cache-mb > 0)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qrun [flags] \"SELECT ...\"")
		os.Exit(2)
	}
	batch := *execJobs > 1
	if *batchOn {
		batch = true
	}
	if *noBatch {
		batch = false
	}

	arch := qc.VX64
	if *archFlag == "va64" {
		arch = qc.VA64
	}
	db, err := qc.Open(qc.WithArch(arch), qc.WithMemoryMB(*mem), qc.WithEngine(*engine),
		qc.WithFusion(!*noFuse), qc.WithExecJobs(*execJobs), qc.WithBatch(batch),
		qc.WithCacheMB(*cacheMB))
	if err != nil {
		fatal(err)
	}
	switch *workload {
	case "tpch":
		err = db.LoadTPCH(*sf)
	case "tpcds":
		err = db.LoadTPCDS(*sf)
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	if err != nil {
		fatal(err)
	}

	var hits, misses int64
	var res *qc.Result
	for r := 0; r < *repeat; r++ {
		res, err = db.Exec(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		hits += res.Stats.CacheHits
		misses += res.Stats.CacheMisses
	}
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, " | "))
	}
	fmt.Fprintf(os.Stderr, "\n%d rows; engine %s; %d functions, %d bytes of code\n",
		len(res.Rows), res.Stats.Engine, res.Stats.Functions, res.Stats.CodeBytes)
	fmt.Fprintf(os.Stderr, "compile %v, execute %v\n", res.Stats.CompileTime, res.Stats.ExecTime)
	if *cacheMB > 0 {
		fmt.Fprintf(os.Stderr, "code cache (%d MiB): %d hits, %d misses across %d runs\n",
			*cacheMB, hits, misses, *repeat)
	}
	var names []string
	for n := range res.Stats.Phases {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return res.Stats.Phases[names[i]] > res.Stats.Phases[names[j]] })
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-20s %v\n", n, res.Stats.Phases[n])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrun:", err)
	os.Exit(1)
}
