// Command qbench regenerates the paper's tables and figures.
//
// Usage:
//
//	qbench [-arch vx64|va64] [-sf 0.05] [-runs 1] [-mem 1024] [-jobs N]
//	       [-cache-mb 0] [-json file] [-check] [-nofuse]
//	       [-exec-jobs N] [-batch|-nobatch] <experiment>...
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 fig7
// ablate-llvm fallbacks scaling cachewarm exec prof checkelim batch cache all
//
// The cache experiment measures the constant-hoisted plan cache: per
// back-end, each parameterized TPC-H family (q1/q3/q6/q15) compiles cold
// once and then a deterministic Zipf-skewed replay of constant variants
// runs against the same code cache, where hoisting makes every variant
// share one parameterized body. -cache-json writes its qcc.bench.cache/v1
// report (BENCH_cache.json); -cache-gate R fails the run when any engine's
// warm hit rate falls below R or the hoisted body regresses execution by
// more than 3% geomean over the fully inlined body.
//
// The batch experiment measures what batch-at-a-time kernels and the
// morsel-parallel executor buy at execution time: every TPC-H query runs
// sequentially tuple-at-a-time (the seed path), sequentially with batch
// kernels, and in parallel at -exec-jobs workers (default 4), per back-end.
// -batch-json writes its qcc.bench.batch/v1 report (BENCH_batch.json);
// -batch-gate R fails the run when q1 or q6 falls below a parallel speedup
// of R or the single-worker batch path regresses the tuple baseline by
// more than 25% (the CI exec gate).
//
// -exec-jobs and -batch/-nobatch also apply to the -json report's suite
// runs: -exec-jobs N executes table pipelines through the morsel-parallel
// executor and -batch compiles eligible scan pipelines to batch kernels
// (default on when -exec-jobs > 1; -nobatch forces tuple code). The
// exec_workers/exec_morsels and rt_batch_* global counters in the report
// then reflect those configurations.
//
// The checkelim experiment measures what the compile-time check-elimination
// pass buys at execution time: every TPC-H query compiled with and without
// its statically proven unchecked marks, per back-end. -checkelim-json
// writes its qcc.bench.checkelim/v1 report; -checkelim-gate R fails the run
// when Q1 or Q6 falls below an elimination ratio of R (the CI gate).
//
// The prof experiment measures the VM profiler itself: per-query sampling
// overhead (sampler off vs on) and operator attribution over the TPC-H
// suite. -prof-json writes its qcc.bench.prof/v1 report; -prof-budget N
// turns the run into a CI gate that fails when the geomean sampling
// overhead exceeds N percent.
//
// -json writes a machine-readable report (schema qcc.obs.report/v2) of the
// TPC-H suite over all engines to the given file ("-" for stdout). With
// -json and no experiment arguments, only the JSON report is produced.
// -check runs the machine-code verifier inside every compilation; its cost
// appears as Check.* phases in the report.
// -jobs shards each compilation across N worker goroutines (the parallel
// driver, internal/backend/pcc); -jobs 1 is the sequential seed code path.
// -cache-mb enables the content-addressed code cache with the given byte
// budget. Both apply to the -json report and the scaling/cachewarm
// experiments; the paper-reproduction experiments stay sequential.
// -nofuse disables the vm's superinstruction fusion, executing compiled
// modules through the plain decoded-switch dispatch loop (identical results
// and counters; dispatch-cost measurement and escape hatch).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"qcc/internal/bench"
	"qcc/internal/vt"
)

func main() {
	archFlag := flag.String("arch", "vx64", "target architecture (vx64 or va64)")
	sf := flag.Float64("sf", 0.05, "scale factor")
	runs := flag.Int("runs", 1, "execution repetitions (best-of)")
	mem := flag.Int("mem", 1024, "VM memory in MiB")
	sfSmall := flag.Float64("sf-small", 0.02, "small scale factor for fig7")
	sfLarge := flag.Float64("sf-large", 0.2, "large scale factor for fig7")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel compilation workers (1 = sequential)")
	cacheMB := flag.Int("cache-mb", 0, "content-addressed code cache budget in MiB (0 = disabled)")
	jsonOut := flag.String("json", "", "write a qcc.obs.report/v2 JSON report of the TPC-H suite to this file (\"-\" for stdout)")
	check := flag.Bool("check", false, "run the machine-code verifier on every compilation (adds Check.* phases to the report)")
	noFuse := flag.Bool("nofuse", false, "disable vm superinstruction fusion (plain decoded-switch dispatch)")
	execJSON := flag.String("exec-json", "", "write the exec experiment's dispatch-cost report (schema qcc.bench.exec/v1) to this file")
	profJSON := flag.String("prof-json", "", "write the prof experiment's profiler report (schema qcc.bench.prof/v1) to this file")
	profPeriod := flag.Int64("prof-period", 0, "prof experiment sampling period in VM instructions (0 = default)")
	profBudget := flag.Float64("prof-budget", 0, "fail (exit 1) if the prof experiment's geomean sampling overhead exceeds this percentage (0 = no gate)")
	checkElimJSON := flag.String("checkelim-json", "", "write the checkelim experiment's report (schema qcc.bench.checkelim/v1) to this file")
	checkElimGate := flag.Float64("checkelim-gate", 0, "fail (exit 1) if the checkelim experiment eliminates less than this fraction of q1/q6 static checks (0 = no gate)")
	execJobs := flag.Int("exec-jobs", 1, "morsel-parallel executor workers for suite runs and the batch experiment (1 = sequential; the batch experiment defaults to 4)")
	batchOn := flag.Bool("batch", false, "compile eligible scan pipelines to batch-at-a-time kernels (default on when -exec-jobs > 1)")
	noBatch := flag.Bool("nobatch", false, "force tuple-at-a-time execution even with -exec-jobs > 1")
	batchJSON := flag.String("batch-json", "", "write the batch experiment's report (schema qcc.bench.batch/v1) to this file")
	batchGate := flag.Float64("batch-gate", 0, "fail (exit 1) if the batch experiment's q1/q6 parallel speedup falls below this factor (0 = no gate)")
	cacheJSON := flag.String("cache-json", "", "write the cache experiment's plan-cache report (schema qcc.bench.cache/v1) to this file")
	cacheGate := flag.Float64("cache-gate", 0, "fail (exit 1) if the cache experiment's warm hit rate falls below this fraction or hoisting regresses execution beyond 3% geomean (0 = no gate)")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.SF = *sf
	cfg.Runs = *runs
	cfg.MemMB = *mem
	cfg.Check = *check
	cfg.Jobs = *jobs
	cfg.CacheMB = *cacheMB
	cfg.NoFuse = *noFuse
	cfg.ExecJobs = *execJobs
	cfg.Batch = *execJobs > 1
	if *batchOn {
		cfg.Batch = true
	}
	if *noBatch {
		cfg.Batch = false
	}
	switch *archFlag {
	case "vx64":
		cfg.Arch = vt.VX64
	case "va64":
		cfg.Arch = vt.VA64
	default:
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *archFlag)
		os.Exit(2)
	}

	if *jsonOut != "" {
		// Open the destination before the (long) benchmark run so a bad
		// path fails immediately.
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "json: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		rep, err := bench.JSONReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := rep.Write(out); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		if *jsonOut != "" {
			return // JSON-only invocation
		}
		args = []string{"all"}
	}
	type experiment struct {
		name string
		run  func() (*bench.Report, error)
	}
	exps := []experiment{
		{"table1", func() (*bench.Report, error) { return bench.Table1(cfg) }},
		{"table2", func() (*bench.Report, error) { return bench.Table2(cfg) }},
		{"table3", func() (*bench.Report, error) { return bench.Table3(cfg, false) }},
		{"fig2", func() (*bench.Report, error) { return bench.Fig2(cfg) }},
		{"fig3", func() (*bench.Report, error) { return bench.Fig3(cfg) }},
		{"fig4", func() (*bench.Report, error) { return bench.Fig4(cfg) }},
		{"fig5", func() (*bench.Report, error) { return bench.Fig5(cfg) }},
		{"fig6", func() (*bench.Report, error) { return bench.Table3(cfg, true) }},
		{"fig7", func() (*bench.Report, error) { return bench.Fig7(cfg, *sfSmall, *sfLarge) }},
		{"ablate-llvm", func() (*bench.Report, error) { return bench.AblateLLVM(cfg) }},
		{"fallbacks", func() (*bench.Report, error) { return bench.AblateLLVM(cfg) }},
		{"scaling", func() (*bench.Report, error) { return bench.Scaling(cfg, nil) }},
		{"cachewarm", func() (*bench.Report, error) { return bench.CacheWarm(cfg) }},
		{"exec", func() (*bench.Report, error) {
			rep, jrep, err := bench.DispatchCost(cfg)
			if err != nil {
				return nil, err
			}
			if *execJSON != "" {
				f, err := os.Create(*execJSON)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				if err := jrep.Write(f); err != nil {
					return nil, err
				}
			}
			return rep, nil
		}},
		{"checkelim", func() (*bench.Report, error) {
			rep, jrep, err := bench.CheckElimCost(cfg)
			if err != nil {
				return nil, err
			}
			if *checkElimJSON != "" {
				f, err := os.Create(*checkElimJSON)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				if err := jrep.Write(f); err != nil {
					return nil, err
				}
			}
			if *checkElimGate > 0 {
				for _, eng := range jrep.Engines {
					for _, q := range eng.Queries {
						if (q.Name == "q1" || q.Name == "q6") && q.Ratio < *checkElimGate {
							return nil, fmt.Errorf("%s/%s: elimination ratio %.2f below gate %.2f",
								eng.Engine, q.Name, q.Ratio, *checkElimGate)
						}
					}
				}
			}
			return rep, nil
		}},
		{"batch", func() (*bench.Report, error) {
			rep, jrep, err := bench.BatchCost(cfg)
			if err != nil {
				return nil, err
			}
			if *batchJSON != "" {
				f, err := os.Create(*batchJSON)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				if err := jrep.Write(f); err != nil {
					return nil, err
				}
			}
			if *batchGate > 0 {
				if err := bench.GateBatch(jrep, *batchGate, 1.25); err != nil {
					return nil, err
				}
			}
			return rep, nil
		}},
		{"cache", func() (*bench.Report, error) {
			rep, jrep, err := bench.PlanCacheCost(cfg)
			if err != nil {
				return nil, err
			}
			if *cacheJSON != "" {
				f, err := os.Create(*cacheJSON)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				if err := jrep.Write(f); err != nil {
					return nil, err
				}
			}
			if *cacheGate > 0 {
				if err := bench.GateCache(jrep, *cacheGate, 1.03); err != nil {
					return nil, err
				}
			}
			return rep, nil
		}},
		{"prof", func() (*bench.Report, error) {
			rep, jrep, err := bench.ProfileSuite(cfg, *profPeriod)
			if err != nil {
				return nil, err
			}
			if *profJSON != "" {
				f, err := os.Create(*profJSON)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				if err := jrep.Write(f); err != nil {
					return nil, err
				}
			}
			if *profBudget > 0 && jrep.GeomeanOverheadPct > *profBudget {
				return nil, fmt.Errorf("sampling overhead %.2f%% exceeds budget %.2f%%",
					jrep.GeomeanOverheadPct, *profBudget)
			}
			return rep, nil
		}},
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	ranAny := false
	for _, e := range exps {
		if !want["all"] && !want[e.name] {
			continue
		}
		if e.name == "fallbacks" && want["all"] {
			continue // same data as ablate-llvm
		}
		ranAny = true
		rep, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "unknown experiment(s): %v\n", args)
		os.Exit(2)
	}
}
