// Command qlint runs the QIR static-analysis framework (internal/sa) over a
// compiled workload and reports its diagnostics and check-elimination
// statistics: unreachable blocks, dead stores, always-trapping accesses,
// range contradictions, and per-query counts of bounds/null checks the
// analysis discharged at compile time.
//
// Generated query code is expected to lint clean: any finding means either a
// codegen bug or an analysis regression, so qlint exits non-zero when one
// appears (the ci gate relies on this).
//
// Usage:
//
//	qlint [-arch vx64|va64] [-workload tpch|tpcds|all] [-sf 0.01] [-mem 512]
//	      [-json] [-v]
//
// -json emits one machine-readable document on stdout instead of the table.
// -v additionally lists every eliminated access reason per query.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/vt"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qlint: "+format+"\n", args...)
	os.Exit(1)
}

// queryReport is one query's lint + elimination summary.
type queryReport struct {
	Query      string         `json:"query"`
	Workload   string         `json:"workload"`
	MemOps     int            `json:"mem_ops"`
	Eliminated int            `json:"checks_eliminated"`
	Ratio      float64        `json:"elim_ratio"`
	ByReason   map[string]int `json:"by_reason,omitempty"`
	MaxLive    int            `json:"max_live"`
	AnalysisNs int64          `json:"analysis_ns"`
	Findings   []string       `json:"findings,omitempty"`
}

type report struct {
	Arch        string        `json:"arch"`
	SF          float64       `json:"sf"`
	ElimVersion string        `json:"elim_version"`
	Queries     []queryReport `json:"queries"`
	TotalMemOps int           `json:"total_mem_ops"`
	TotalElim   int           `json:"total_checks_eliminated"`
	TotalFinds  int           `json:"total_findings"`
}

func main() {
	archFlag := flag.String("arch", "vx64", "target architecture (vx64 or va64)")
	workload := flag.String("workload", "tpch", "workload (tpch, tpcds, or all)")
	sf := flag.Float64("sf", 0.01, "scale factor")
	mem := flag.Int("mem", 512, "VM memory in MiB")
	asJSON := flag.Bool("json", false, "emit JSON instead of a table")
	verbose := flag.Bool("v", false, "list per-reason elimination counts")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.SF = *sf
	cfg.MemMB = *mem
	switch *archFlag {
	case "vx64":
		cfg.Arch = vt.VX64
	case "va64":
		cfg.Arch = vt.VA64
	default:
		fail("unknown arch %q", *archFlag)
	}

	var workloads []string
	switch *workload {
	case "tpch", "tpcds":
		workloads = []string{*workload}
	case "all":
		workloads = []string{"tpch", "tpcds"}
	default:
		fail("unknown workload %q", *workload)
	}

	rep := report{Arch: cfg.Arch.String(), SF: cfg.SF, ElimVersion: codegen.CheckElimVersion}
	for _, wl := range workloads {
		w, err := bench.NewWorldLoaded(cfg, wl)
		if err != nil {
			fail("load %s: %v", wl, err)
		}
		queries := bench.HQueries()
		if wl == "tpcds" {
			queries = bench.DSQueries()
		}
		for _, q := range queries {
			c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
			if err != nil {
				fail("codegen %s: %v", q.Name, err)
			}
			qr := queryReport{
				Query:      q.Name,
				Workload:   wl,
				MemOps:     c.Elim.MemOps,
				Eliminated: c.Elim.Unchecked,
				Ratio:      c.Elim.Ratio(),
				ByReason:   c.Elim.ByReason,
				MaxLive:    c.Elim.MaxLive,
				AnalysisNs: c.Elim.AnalysisNs,
			}
			for _, f := range c.Elim.Findings {
				qr.Findings = append(qr.Findings, f.String())
			}
			rep.Queries = append(rep.Queries, qr)
			rep.TotalMemOps += qr.MemOps
			rep.TotalElim += qr.Eliminated
			rep.TotalFinds += len(qr.Findings)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fail("encode: %v", err)
		}
	} else {
		fmt.Printf("qlint: %s sf=%g elim=%s\n", rep.Arch, rep.SF, rep.ElimVersion)
		fmt.Printf("%-12s %8s %8s %7s %8s %9s\n", "query", "memops", "elim", "ratio", "maxlive", "findings")
		for _, qr := range rep.Queries {
			fmt.Printf("%-12s %8d %8d %6.1f%% %8d %9d\n",
				qr.Workload+"/"+qr.Query, qr.MemOps, qr.Eliminated, 100*qr.Ratio, qr.MaxLive, len(qr.Findings))
			if *verbose {
				reasons := make([]string, 0, len(qr.ByReason))
				for r := range qr.ByReason {
					reasons = append(reasons, r)
				}
				sort.Strings(reasons)
				for _, r := range reasons {
					fmt.Printf("             %-20s %d\n", r, qr.ByReason[r])
				}
			}
		}
		ratio := 0.0
		if rep.TotalMemOps > 0 {
			ratio = float64(rep.TotalElim) / float64(rep.TotalMemOps)
		}
		fmt.Printf("qlint: total %d/%d checks eliminated (%.1f%%), %d findings\n",
			rep.TotalElim, rep.TotalMemOps, 100*ratio, rep.TotalFinds)
	}

	if rep.TotalFinds > 0 {
		for _, qr := range rep.Queries {
			for _, f := range qr.Findings {
				fmt.Fprintf(os.Stderr, "qlint: %s/%s: %s\n", qr.Workload, qr.Query, f)
			}
		}
		fail("%d unexpected findings in generated code", rep.TotalFinds)
	}
}
