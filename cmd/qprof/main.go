// Command qprof captures, merges, and renders source-attributed VM
// execution profiles (internal/prof): sampled VM time mapped back through
// the back-end PC-range tables and the codegen provenance tables to named
// plan operators and SQL fragments.
//
// Usage:
//
//	qprof [-arch vx64|va64] [-workload tpch|tpcds] [-query q1] [-engine name]
//	      [-sf 0.01] [-mem 512] [-runs 1] [-period N] [-check] [-jobs N]
//	      [-nofuse] [-format top|json|pprof|chrome|qir] [-top 20] [-flight]
//	      [-o out] [profile.json ...]
//
// With no positional arguments qprof captures a fresh profile: it compiles
// the selected queries on one back-end, executes them with the dispatch-loop
// sampler attached, and renders the result. With positional arguments it
// merges previously captured -format json profiles and renders the merge
// (no execution).
//
// Formats: top (flat per-operator table), json (qcc.prof/v1, qprof's own
// merge input), pprof (gzipped protobuf for `go tool pprof`), chrome
// (trace-event JSON for Perfetto; synthetic flame bar), qir (annotated QIR
// of the hottest functions; capture mode only).
//
// If a query traps, qprof dumps the always-on flight recorder — recent
// spans and samples — to stderr as a post-mortem before exiting; -flight
// dumps it after a successful run too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qcc/internal/backend"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/obs"
	"qcc/internal/prof"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qprof: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	archFlag := flag.String("arch", "vx64", "target architecture (vx64 or va64)")
	workload := flag.String("workload", "tpch", "workload (tpch or tpcds)")
	query := flag.String("query", "", "profile only this query (default: all queries of the workload)")
	engine := flag.String("engine", "", "engine name or substring; default: first compiling engine of the arch")
	sf := flag.Float64("sf", 0.01, "scale factor")
	mem := flag.Int("mem", 512, "VM memory in MiB")
	runs := flag.Int("runs", 1, "execution repetitions (samples accumulate)")
	period := flag.Int64("period", 0, "sampling period in executed VM instructions (0 = default)")
	check := flag.Bool("check", false, "run the machine-code verifier on every compilation")
	jobs := flag.Int("jobs", 1, "parallel compilation workers (1 = sequential)")
	noFuse := flag.Bool("nofuse", false, "disable vm superinstruction fusion")
	format := flag.String("format", "top", "output format: top, json, pprof, chrome, or qir")
	topN := flag.Int("top", 20, "row limit for -format top/qir")
	flight := flag.Bool("flight", false, "dump the flight recorder to stderr after the run")
	out := flag.String("o", "-", "output file (\"-\" for stdout)")
	flag.Parse()

	switch *format {
	case "top", "json", "pprof", "chrome", "qir":
	default:
		fail("unknown format %q (want top, json, pprof, chrome, or qir)", *format)
	}

	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		dst = f
	}

	// Merge mode: positional args are qcc.prof/v1 files.
	if files := flag.Args(); len(files) > 0 {
		if *format == "qir" {
			fail("-format qir needs the compiled module; it is capture-only")
		}
		var merged *prof.Profile
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				fail("%v", err)
			}
			p, err := prof.ReadJSON(f)
			f.Close()
			if err != nil {
				fail("%s: %v", path, err)
			}
			if merged == nil {
				merged = p
			} else {
				merged.Merge(p)
			}
		}
		render(dst, merged, nil, *format, *topN)
		return
	}

	cfg := bench.DefaultConfig()
	cfg.SF = *sf
	cfg.MemMB = *mem
	cfg.Runs = *runs
	cfg.Check = *check
	cfg.Jobs = *jobs
	cfg.NoFuse = *noFuse
	switch *archFlag {
	case "vx64":
		cfg.Arch = vt.VX64
	case "va64":
		cfg.Arch = vt.VA64
	default:
		fail("unknown arch %q", *archFlag)
	}

	var queries []bench.Query
	switch *workload {
	case "tpch":
		queries = bench.HQueries()
	case "tpcds":
		queries = bench.DSQueries()
	default:
		fail("unknown workload %q", *workload)
	}
	if *query != "" {
		var sel []bench.Query
		for _, q := range queries {
			if strings.EqualFold(q.Name, *query) {
				sel = append(sel, q)
			}
		}
		if len(sel) == 0 {
			fail("query %q not in %s", *query, *workload)
		}
		queries = sel
	}
	if *format == "qir" && len(queries) != 1 {
		fail("-format qir needs a single -query")
	}

	w, err := bench.NewWorldLoaded(cfg, *workload)
	if err != nil {
		fail("load %s: %v", *workload, err)
	}
	eng := pickEngine(cfg, *engine, w)
	if eng == nil {
		fail("no engine with a VM module matches %q on %s", *engine, cfg.Arch)
	}
	eng = cfg.WrapEngine(eng, cfg.NewCodeCache())

	var merged *prof.Profile
	var qmodForQIR *codegen.Compiled
	w.DB.Checkpoint()
	for _, q := range queries {
		c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
		if err != nil {
			fail("%s: %v", q.Name, err)
		}
		ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
		if err != nil {
			fail("%s: %v", q.Name, err)
		}
		col := prof.NewCollector(c.Module)
		smp := &vm.Sampler{Period: *period, Hit: col.Hit}
		for r := 0; r < cfg.Runs; r++ {
			w.DB.ResetQueryState()
			w.DB.M.SetSampler(smp)
			err := codegen.Run(w.DB, w.Cat, c, ex.Call)
			w.DB.M.SetSampler(nil)
			if err != nil {
				// Post-mortem: the flight recorder holds the tail of the
				// crashing run (recent spans, samples, and the trap).
				fmt.Fprintf(os.Stderr, "qprof: %s: %v\n", q.Name, err)
				fmt.Fprintln(os.Stderr, "qprof: flight recorder dump:")
				obs.FlightRec().WriteText(os.Stderr)
				os.Exit(1)
			}
		}
		p := col.Profile(cfg.Arch.String(), q.Name, smp)
		if merged == nil {
			merged = p
		} else {
			merged.Merge(p)
		}
		qmodForQIR = c
		w.DB.ResetToCheckpoint()
	}
	if *flight {
		fmt.Fprintln(os.Stderr, "qprof: flight recorder dump:")
		obs.FlightRec().WriteText(os.Stderr)
	}
	render(dst, merged, qmodForQIR, *format, *topN)
}

// pickEngine selects the capture back-end: the named one, or the first
// engine whose executables expose a VM module (samples need PC ranges).
func pickEngine(cfg bench.Config, name string, w *bench.World) backend.Engine {
	for _, e := range bench.Engines(cfg.Arch) {
		if name != "" {
			if strings.Contains(strings.ToLower(e.Name()), strings.ToLower(name)) {
				return e
			}
			continue
		}
		if strings.Contains(strings.ToLower(e.Name()), "interp") {
			continue // no vm dispatch to sample
		}
		return e
	}
	return nil
}

func render(dst io.Writer, p *prof.Profile, c *codegen.Compiled, format string, topN int) {
	if p == nil {
		fail("nothing profiled")
	}
	var err error
	switch format {
	case "top":
		err = p.WriteTop(dst, topN)
	case "json":
		err = p.WriteJSON(dst)
	case "pprof":
		err = p.WritePprof(dst)
	case "chrome":
		err = p.WriteChrome(dst)
	case "qir":
		err = p.WriteAnnotated(dst, c.Module, topN)
	}
	if err != nil {
		fail("%v", err)
	}
}
