// Command qverify runs the full verification stack over a workload:
//
//  1. the QIR verifier (SSA, CFG, type, and terminator-payload invariants)
//     on every query module;
//  2. a checked compile on every verifier-wired back-end — the symbolic
//     register-allocation checker plus the machine-code lint;
//  3. the cross-backend structural differential (per-function runtime-call
//     and trap sets must agree across back-ends, modulo the canonicalized
//     failure idiom).
//
// It exits non-zero on the first failure, printing located diagnostics.
//
// Usage:
//
//	qverify [-arch vx64|va64] [-workload tpch|tpcds] [-sf 0.01] [-mem 512]
//	        [-jobs 1]
//
// -jobs N runs every checked compile through the parallel driver
// (internal/backend/pcc) with N workers, verifying the sharded pipeline
// under the same regalloc checker, lint, and differential.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qcc/internal/backend"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/backend/pcc"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/mcv"
	"qcc/internal/vt"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qverify: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	archFlag := flag.String("arch", "vx64", "target architecture (vx64 or va64)")
	workload := flag.String("workload", "tpch", "workload (tpch or tpcds)")
	sf := flag.Float64("sf", 0.01, "scale factor")
	mem := flag.Int("mem", 512, "VM memory in MiB")
	jobs := flag.Int("jobs", 1, "parallel compilation workers for the checked compiles")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.SF = *sf
	cfg.MemMB = *mem
	switch *archFlag {
	case "vx64":
		cfg.Arch = vt.VX64
	case "va64":
		cfg.Arch = vt.VA64
	default:
		fail("unknown arch %q", *archFlag)
	}

	var queries []bench.Query
	switch *workload {
	case "tpch":
		queries = bench.HQueries()
	case "tpcds":
		queries = bench.DSQueries()
	default:
		fail("unknown workload %q", *workload)
	}

	engines := map[string]backend.Engine{
		"clift":      clift.New(),
		"llvm-cheap": lbe.NewCheap(),
		"llvm-opt":   lbe.NewOpt(),
	}
	if cfg.Arch == vt.VX64 {
		engines["direct"] = direct.New()
	}
	if *jobs > 1 {
		for n, e := range engines {
			engines[n] = pcc.Wrap(e, pcc.Config{Jobs: *jobs})
		}
	}
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)

	// Stage 1: QIR verification of every query module, plus the static
	// analyzer's lint — generated code must produce zero findings.
	w, err := bench.NewWorldLoaded(cfg, *workload)
	if err != nil {
		fail("load %s: %v", *workload, err)
	}
	uncheckedQIR := map[string]int{}
	for _, q := range queries {
		c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
		if err != nil {
			fail("codegen %s: %v", q.Name, err)
		}
		if err := c.Module.VerifyModule(); err != nil {
			fail("qir %s: %v", q.Name, err)
		}
		if n := len(c.Elim.Findings); n > 0 {
			for _, f := range c.Elim.Findings {
				fmt.Fprintf(os.Stderr, "qverify: sa %s: %s\n", q.Name, f)
			}
			fail("sa %s: %d lint findings in generated code", q.Name, n)
		}
		for _, f := range c.Module.Funcs {
			uncheckedQIR[q.Name] += codegen.UncheckedCount(f)
		}
	}
	fmt.Printf("qverify: qir: %d %s modules verified, sa lint clean (%s)\n", len(queries), *workload, cfg.Arch)

	// Stage 2: checked compiles, collecting per-function summaries.
	sums := map[string]map[string][]mcv.FuncSummary{}
	for _, ename := range names {
		// A fresh world per engine so compiled code and heap layout do not
		// leak between back-ends.
		w, err := bench.NewWorldLoaded(cfg, *workload)
		if err != nil {
			fail("load %s: %v", *workload, err)
		}
		sums[ename] = map[string][]mcv.FuncSummary{}
		for _, q := range queries {
			c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
			if err != nil {
				fail("codegen %s: %v", q.Name, err)
			}
			_, stats, err := engines[ename].Compile(c.Module, &backend.Env{
				DB: w.DB, Arch: cfg.Arch,
				Options: backend.Options{Check: true},
			})
			if err != nil {
				fail("%s/%s: %v", ename, q.Name, err)
			}
			sums[ename][q.Name] = stats.Summaries
			if d := mcv.UncheckedConservation(ename, uncheckedQIR[q.Name], stats.Summaries); len(d) > 0 {
				for _, diag := range d {
					fmt.Fprintf(os.Stderr, "qverify: %s/%s: %s\n", ename, q.Name, diag)
				}
				os.Exit(1)
			}
		}
		fmt.Printf("qverify: %s: %d queries compiled clean (regalloc check + lint + unchecked conservation)\n", ename, len(queries))
	}

	// Stage 3: cross-backend differential against the clift baseline.
	base := sums["clift"]
	for _, ename := range names {
		if ename == "clift" {
			continue
		}
		for _, q := range queries {
			d := mcv.Diff("clift", mcv.CanonicalizeFailures(base[q.Name]),
				ename, mcv.CanonicalizeFailures(sums[ename][q.Name]))
			if len(d) > 0 {
				for _, diag := range d {
					fmt.Fprintf(os.Stderr, "qverify: %s: clift vs %s: %s\n", q.Name, ename, diag)
				}
				os.Exit(1)
			}
		}
	}
	fmt.Println("qverify: differential: all back-ends agree")
}
