// Command qtrace captures a compile-time trace of one (or every) query on
// one (or every) back-end and exports it as a Chrome trace-event JSON file
// (loadable in Perfetto or chrome://tracing), Prometheus text exposition,
// or the stable qcc.obs.report/v2 JSON schema.
//
// Usage:
//
//	qtrace [-arch vx64|va64] [-workload tpch|tpcds] [-query q1] [-engine all]
//	       [-sf 0.01] [-mem 512] [-runs 1] [-allocs] [-check] [-jobs N]
//	       [-cache-mb N] [-nofuse] [-exec-jobs N] [-batch|-nobatch]
//	       [-format chrome|prom|json] [-o trace.json]
//
// -exec-jobs N executes table pipelines through the morsel-parallel
// executor with N workers and -batch compiles eligible scan pipelines to
// batch kernels (default on when -exec-jobs > 1; -nobatch forces tuple
// code), so exec spans and the exec_*/rt_batch_* counters cover those
// configurations too.
//
// Example (one TPC-H query, all engines, nested per-pass spans):
//
//	qtrace -workload tpch -query q1 -sf 0.01 -o q1.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qcc/internal/backend"
	"qcc/internal/bench"
	"qcc/internal/obs"
	"qcc/internal/vt"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qtrace: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	archFlag := flag.String("arch", "vx64", "target architecture (vx64 or va64)")
	workload := flag.String("workload", "tpch", "workload (tpch or tpcds)")
	query := flag.String("query", "", "trace only this query (default: all queries of the workload)")
	engine := flag.String("engine", "all", "engine name or substring (e.g. \"cranelift\", \"llvm cheap\"), or \"all\"")
	sf := flag.Float64("sf", 0.01, "scale factor")
	mem := flag.Int("mem", 512, "VM memory in MiB")
	runs := flag.Int("runs", 1, "execution repetitions (best-of)")
	allocs := flag.Bool("allocs", false, "capture per-span heap allocation deltas (slows compilation; off by default)")
	check := flag.Bool("check", false, "run the machine-code verifier on every compilation (adds Check.* spans)")
	jobs := flag.Int("jobs", 1, "parallel compilation workers, like qbench/qverify (1 = sequential)")
	cacheMB := flag.Int("cache-mb", 0, "content-addressed code cache budget in MiB (0 = disabled); hit/miss counts appear in -format prom/json output")
	noFuse := flag.Bool("nofuse", false, "disable vm superinstruction fusion (plain decoded-switch dispatch)")
	execJobs := flag.Int("exec-jobs", 1, "morsel-parallel executor workers (1 = sequential)")
	batchOn := flag.Bool("batch", false, "compile eligible scan pipelines to batch-at-a-time kernels (default on when -exec-jobs > 1)")
	noBatch := flag.Bool("nobatch", false, "force tuple-at-a-time execution even with -exec-jobs > 1")
	format := flag.String("format", "chrome", "output format: chrome, prom, or json")
	out := flag.String("o", "-", "output file (\"-\" for stdout)")
	flag.Parse()

	switch *format {
	case "chrome", "prom", "json":
	default:
		fail("unknown format %q (want chrome, prom, or json)", *format)
	}

	cfg := bench.DefaultConfig()
	cfg.SF = *sf
	cfg.MemMB = *mem
	cfg.Runs = *runs
	cfg.Check = *check
	cfg.Jobs = *jobs
	cfg.CacheMB = *cacheMB
	cfg.NoFuse = *noFuse
	cfg.ExecJobs = *execJobs
	cfg.Batch = *execJobs > 1
	if *batchOn {
		cfg.Batch = true
	}
	if *noBatch {
		cfg.Batch = false
	}
	switch *archFlag {
	case "vx64":
		cfg.Arch = vt.VX64
	case "va64":
		cfg.Arch = vt.VA64
	default:
		fail("unknown arch %q", *archFlag)
	}

	var queries []bench.Query
	switch *workload {
	case "tpch":
		queries = bench.HQueries()
	case "tpcds":
		queries = bench.DSQueries()
	default:
		fail("unknown workload %q", *workload)
	}
	if *query != "" {
		var sel []bench.Query
		for _, q := range queries {
			if strings.EqualFold(q.Name, *query) {
				sel = append(sel, q)
			}
		}
		if len(sel) == 0 {
			var names []string
			for _, q := range queries {
				names = append(names, q.Name)
			}
			fail("query %q not in %s (have: %s)", *query, *workload, strings.Join(names, " "))
		}
		queries = sel
	}

	var engines []backend.Engine
	for _, e := range bench.Engines(cfg.Arch) {
		if *engine == "all" || strings.Contains(strings.ToLower(e.Name()), strings.ToLower(*engine)) {
			// WrapEngine applies -jobs (parallel driver) and the code
			// cache, so traces cover the same configurations CI runs.
			engines = append(engines, cfg.WrapEngine(e, cfg.NewCodeCache()))
		}
	}
	if len(engines) == 0 {
		fail("no engine matches %q", *engine)
	}

	// Open the destination before the capture so a bad path fails fast.
	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		dst = f
	}

	// Trace: one tracer (hence one Chrome-trace process) per engine, each
	// running the selected queries on a fresh world.
	var traces []*obs.Trace
	report := &obs.Report{
		Schema: obs.Schema, Arch: cfg.Arch.String(),
		Workload: *workload, SF: cfg.SF, Jobs: *jobs, Engines: []obs.EngineReport{},
	}
	for _, eng := range engines {
		w, err := bench.NewWorldLoaded(cfg, *workload)
		if err != nil {
			fail("load %s: %v", *workload, err)
		}
		tr := obs.New(obs.Options{Allocs: *allocs})
		run, err := bench.RunSuiteExec(w, eng, cfg.Arch, queries, cfg.Runs, tr, cfg.BackendOptions(), cfg.ExecSettings())
		if err != nil {
			fail("%v", err)
		}
		traces = append(traces, tr.Snapshot(eng.Name()))
		report.Engines = append(report.Engines, bench.EngineReportOf(run))
		if cfg.CacheMB > 0 {
			// The counts also land in -format prom/json output; this stderr
			// line makes them visible in the default chrome-trace mode.
			fmt.Fprintf(os.Stderr, "qtrace: %s code cache (%d MiB): %d hits, %d misses\n",
				eng.Name(), cfg.CacheMB, run.Stats.Counters["cache_hits"], run.Stats.Counters["cache_misses"])
		}
	}
	report.Global = obs.GlobalCounters()

	switch *format {
	case "chrome":
		if err := obs.WriteChrome(dst, traces...); err != nil {
			fail("%v", err)
		}
	case "prom":
		labels := map[string]string{"arch": cfg.Arch.String(), "workload": *workload}
		for _, tr := range traces {
			if err := tr.WritePrometheus(dst, labels); err != nil {
				fail("%v", err)
			}
		}
		// Process-wide counters (pcc code-cache hits/misses, tier
		// promotions, ...) are not scoped to any tracer; export them once.
		if err := obs.WriteGlobalPrometheus(dst, labels); err != nil {
			fail("%v", err)
		}
	case "json":
		if err := report.Write(dst); err != nil {
			fail("%v", err)
		}
	default:
		fail("unknown format %q (want chrome, prom, or json)", *format)
	}
}
