// Command qir shows the compilation artifacts for a SQL query: the QIR the
// data-centric code generator produces, the generated C source of the GCC
// back-end, and the DirectEmit machine code.
//
// Usage:
//
//	qir [-workload tpch|tpcds] [-sf 0.01] [-show qir|c|asm|all] "SELECT ..."
package main

import (
	"flag"
	"fmt"
	"os"

	"qcc/internal/backend"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/direct"
	"qcc/internal/codegen"
	"qcc/internal/rt"
	"qcc/internal/sql"
	"qcc/internal/tpcds"
	"qcc/internal/tpch"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func main() {
	workload := flag.String("workload", "tpch", "preloaded schema: tpch or tpcds")
	sf := flag.Float64("sf", 0.01, "scale factor")
	show := flag.String("show", "qir", "artifact: qir, c, asm, or all")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qir [flags] \"SELECT ...\"")
		os.Exit(2)
	}

	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 256 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	var err error
	if *workload == "tpcds" {
		err = tpcds.Load(cat, *sf)
	} else {
		err = tpch.Load(cat, *sf)
	}
	if err != nil {
		fatal(err)
	}

	node, err := sql.Parse(flag.Arg(0), cat)
	if err != nil {
		fatal(err)
	}
	c, err := codegen.Compile("q", node, cat)
	if err != nil {
		fatal(err)
	}
	env := &backend.Env{DB: db, Arch: vt.VX64}

	if *show == "qir" || *show == "all" {
		fmt.Printf("; %d pipelines, %d functions\n", len(c.Pipelines), c.NumFuncs)
		fmt.Print(c.Module.String())
	}
	if *show == "c" || *show == "all" {
		src, err := cbe.GenerateC(c.Module, env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(src)
	}
	if *show == "asm" || *show == "all" {
		ex, stats, err := direct.New().Compile(c.Module, env)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("; DirectEmit: %d bytes in %v\n", stats.CodeBytes, stats.Total)
		if d, ok := ex.(interface{ Disasm() string }); ok {
			fmt.Print(d.Disasm())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qir:", err)
	os.Exit(1)
}
