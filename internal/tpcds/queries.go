package tpcds

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// Query is one benchmark query.
type Query struct {
	Name  string
	Build func() plan.Node
}

func col(i int, t qir.Type) *plan.Col { return &plan.Col{Idx: i, Ty: t} }
func i32v(v int64) plan.Expr          { return &plan.ConstInt{Ty: qir.I32, V: v} }
func i64v(v int64) plan.Expr          { return &plan.ConstInt{Ty: qir.I64, V: v} }
func decv(v int64) plan.Expr          { return &plan.ConstDec{V: rt.I128FromInt64(v)} }
func strv(s string) plan.Expr         { return &plan.ConstStr{V: s} }

func arith(op plan.ArithOp, l, r plan.Expr) plan.Expr {
	e, err := plan.NewArith(op, l, r)
	if err != nil {
		panic(err)
	}
	return e
}

func cmp(op plan.CmpOp, l, r plan.Expr) plan.Expr {
	e, err := plan.NewCmp(op, l, r)
	if err != nil {
		panic(err)
	}
	return e
}

func and(l, r plan.Expr) plan.Expr { return &plan.Logic{Op: plan.OpAnd, L: l, R: r} }

func scanSS() *plan.Scan { return &plan.Scan{Table: "store_sales", Cols: ssSchema()} }
func scanI() *plan.Scan  { return &plan.Scan{Table: "item", Cols: itemSchema()} }
func scanC() *plan.Scan  { return &plan.Scan{Table: "customer", Cols: customerSchema()} }
func scanD() *plan.Scan  { return &plan.Scan{Table: "date_dim", Cols: dateSchema()} }
func scanST() *plan.Scan { return &plan.Scan{Table: "store", Cols: storeSchema()} }

// Queries returns the 103-query suite. Templates are instantiated with
// varying parameters so every query compiles a distinct plan.
func Queries() []Query {
	var qs []Query
	add := func(build func() plan.Node) {
		qs = append(qs, Query{Name: fmt.Sprintf("q%d", len(qs)+1), Build: build})
	}

	// Family 1 (15): sales aggregation by category for one year.
	for k := 0; k < 15; k++ {
		year := int64(1998 + k%5)
		minQty := int64(5 * (k % 4))
		add(func() plan.Node { return aggByCategory(year, minQty) })
	}
	// Family 2 (15): brand LIKE filter, grouped revenue.
	for k := 0; k < 15; k++ {
		pat := fmt.Sprintf("Brand#%d%%", 1+k%9)
		topN := int64(5 + k)
		add(func() plan.Node { return brandRevenue(pat, topN) })
	}
	// Family 3 (15): 3-way join with date dimension and decimal math.
	for k := 0; k < 15; k++ {
		moy := int64(1 + k%12)
		state := states[k%10]
		add(func() plan.Node { return monthlyStoreProfit(moy, state) })
	}
	// Family 4 (12): top-k customers by spending.
	for k := 0; k < 12; k++ {
		limit := int64(10 + 5*k)
		minSpend := int64(1000 * (k + 1))
		add(func() plan.Node { return topCustomers(limit, minSpend) })
	}
	// Family 5 (12): case-when bucketing by quantity.
	for k := 0; k < 12; k++ {
		cut := int64(10 + 5*k)
		add(func() plan.Node { return quantityBuckets(cut) })
	}
	// Family 6 (12): selective global aggregates with BETWEEN predicates.
	for k := 0; k < 12; k++ {
		lo := int64(100 * k)
		hi := lo + 3000
		add(func() plan.Node { return priceBandTotals(lo, hi) })
	}
	// Family 7 (6): same-item cross join counting (heavy probe chains).
	for k := 0; k < 6; k++ {
		cls := classes[k]
		add(func() plan.Node { return classAffinity(cls) })
	}
	// Family 8 (16): multi-aggregate reports per class or store.
	for k := 0; k < 16; k++ {
		byStore := k%2 == 0
		year := int64(1998 + k%6)
		add(func() plan.Node { return multiAggReport(byStore, year) })
	}
	if len(qs) != 103 {
		panic(fmt.Sprintf("tpcds: suite has %d queries, want 103", len(qs)))
	}
	return qs
}

// aggByCategory: store_sales x date_dim x item, grouped by category.
func aggByCategory(year, minQty int64) plan.Node {
	dates := &plan.Select{Input: scanD(), Pred: cmp(plan.CmpEQ, col(1, qir.I32), i32v(year))}
	jd := &plan.HashJoin{
		Build: dates, Probe: scanSS(),
		BuildKeys: []plan.Expr{col(0, qir.I32)},
		ProbeKeys: []plan.Expr{col(0, qir.I32)},
	}
	// d(0..3) ++ ss(4..11)
	sel := &plan.Select{Input: jd, Pred: cmp(plan.CmpGE, col(8, qir.I32), i32v(minQty))}
	ji := &plan.HashJoin{
		Build: scanI(), Probe: sel,
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(5, qir.I64)},
	}
	// i(0..4) ++ d(5..8) ++ ss(9..16)
	g := &plan.GroupBy{
		Input: ji,
		Keys:  []plan.Expr{col(2, qir.Str)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: col(15, qir.I128)},
			{Fn: plan.AggCount},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// brandRevenue: LIKE filter on brand, top-N by revenue.
func brandRevenue(pattern string, topN int64) plan.Node {
	items := &plan.Select{Input: scanI(), Pred: &plan.Like{E: col(1, qir.Str), Pattern: pattern}}
	j := &plan.HashJoin{
		Build: items, Probe: scanSS(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// i(0..4) ++ ss(5..12)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(1, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: col(11, qir.I128)}},
	}
	s := &plan.Sort{Input: g, Keys: []plan.SortKey{{E: &plan.Cast{E: col(1, qir.I128), To: qir.I64}, Desc: true}}}
	return &plan.Limit{Input: s, N: topN}
}

// monthlyStoreProfit: 3-way join, profit-margin decimal arithmetic.
func monthlyStoreProfit(moy int64, state string) plan.Node {
	dates := &plan.Select{Input: scanD(), Pred: cmp(plan.CmpEQ, col(2, qir.I32), i32v(moy))}
	jd := &plan.HashJoin{
		Build: dates, Probe: scanSS(),
		BuildKeys: []plan.Expr{col(0, qir.I32)},
		ProbeKeys: []plan.Expr{col(0, qir.I32)},
	}
	// d(0..3) ++ ss(4..11)
	stores := &plan.Select{Input: scanST(), Pred: cmp(plan.CmpEQ, col(2, qir.Str), strv(state))}
	js := &plan.HashJoin{
		Build: stores, Probe: jd,
		BuildKeys: []plan.Expr{col(0, qir.I32)},
		ProbeKeys: []plan.Expr{col(7, qir.I32)},
	}
	// st(0..2) ++ d(3..6) ++ ss(7..14)
	margin := arith(plan.OpMul, col(14, qir.I128), decv(100))
	g := &plan.GroupBy{
		Input: js,
		Keys:  []plan.Expr{col(1, qir.Str)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggSum, Arg: margin},
			{Fn: plan.AggSum, Arg: col(13, qir.I128)},
			{Fn: plan.AggCount},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}

// topCustomers: per-customer spending, HAVING, top-k with names.
func topCustomers(limit, minSpend int64) plan.Node {
	j := &plan.HashJoin{
		Build: scanC(), Probe: scanSS(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(2, qir.I64)},
	}
	// c(0..3) ++ ss(4..11)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(0, qir.I64), col(1, qir.Str), col(2, qir.Str)},
		Aggs:  []plan.AggExpr{{Fn: plan.AggSum, Arg: col(10, qir.I128)}},
	}
	big := &plan.Select{Input: g, Pred: cmp(plan.CmpGT, col(3, qir.I128), decv(minSpend))}
	s := &plan.Sort{Input: big, Keys: []plan.SortKey{
		{E: &plan.Cast{E: col(3, qir.I128), To: qir.I64}, Desc: true},
		{E: col(0, qir.I64)},
	}}
	return &plan.Limit{Input: s, N: limit}
}

// quantityBuckets: case-when bucket sums over the fact table.
func quantityBuckets(cut int64) plan.Node {
	small := cmp(plan.CmpLT, col(4, qir.I32), i32v(cut))
	bucket := &plan.Case{Cond: small, Then: i64v(0), Else: i64v(1)}
	proj := &plan.Project{
		Input: scanSS(),
		Exprs: []plan.Expr{bucket, col(6, qir.I128), col(7, qir.I128)},
	}
	g := &plan.GroupBy{
		Input: proj,
		Keys:  []plan.Expr{col(0, qir.I64)},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggCount},
			{Fn: plan.AggSum, Arg: col(1, qir.I128)},
			{Fn: plan.AggAvg, Arg: col(2, qir.I128)},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.I64)}}}
}

// priceBandTotals: selective BETWEEN scan with global aggregates.
func priceBandTotals(lo, hi int64) plan.Node {
	sel := &plan.Select{Input: scanSS(), Pred: and(
		&plan.Between{E: col(5, qir.I128), Lo: decv(lo), Hi: decv(hi)},
		cmp(plan.CmpGT, col(4, qir.I32), i32v(2)))}
	return &plan.GroupBy{
		Input: sel,
		Aggs: []plan.AggExpr{
			{Fn: plan.AggCount},
			{Fn: plan.AggSum, Arg: col(6, qir.I128)},
			{Fn: plan.AggMin, Arg: col(7, qir.I128)},
			{Fn: plan.AggMax, Arg: col(7, qir.I128)},
		},
	}
}

// classAffinity: items of a class self-joined through sales (long hash
// chains on the probe side).
func classAffinity(class string) plan.Node {
	items := &plan.Select{Input: scanI(), Pred: cmp(plan.CmpEQ, col(3, qir.Str), strv(class))}
	j := &plan.HashJoin{
		Build: items, Probe: scanSS(),
		BuildKeys: []plan.Expr{col(0, qir.I64)},
		ProbeKeys: []plan.Expr{col(1, qir.I64)},
	}
	// i(0..4) ++ ss(5..12)
	g := &plan.GroupBy{
		Input: j,
		Keys:  []plan.Expr{col(8, qir.I32)}, // ss_store_sk
		Aggs:  []plan.AggExpr{{Fn: plan.AggCount}, {Fn: plan.AggSum, Arg: col(11, qir.I128)}},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: &plan.Cast{E: col(0, qir.I32), To: qir.I64}}}}
}

// multiAggReport: wide aggregate over a year, grouped by store or class.
func multiAggReport(byStore bool, year int64) plan.Node {
	dates := &plan.Select{Input: scanD(), Pred: cmp(plan.CmpEQ, col(1, qir.I32), i32v(year))}
	jd := &plan.HashJoin{
		Build: dates, Probe: scanSS(),
		BuildKeys: []plan.Expr{col(0, qir.I32)},
		ProbeKeys: []plan.Expr{col(0, qir.I32)},
	}
	// d(0..3) ++ ss(4..11)
	var keyed plan.Node
	var key plan.Expr
	if byStore {
		js := &plan.HashJoin{
			Build: scanST(), Probe: jd,
			BuildKeys: []plan.Expr{col(0, qir.I32)},
			ProbeKeys: []plan.Expr{col(7, qir.I32)},
		}
		// st(0..2) ++ d(3..6) ++ ss(7..14)
		keyed = js
		key = col(1, qir.Str)
	} else {
		ji := &plan.HashJoin{
			Build: scanI(), Probe: jd,
			BuildKeys: []plan.Expr{col(0, qir.I64)},
			ProbeKeys: []plan.Expr{col(5, qir.I64)},
		}
		// i(0..4) ++ d(5..8) ++ ss(9..16)
		keyed = ji
		key = col(3, qir.Str)
	}
	base := 7
	if !byStore {
		base = 9
	}
	g := &plan.GroupBy{
		Input: keyed,
		Keys:  []plan.Expr{key},
		Aggs: []plan.AggExpr{
			{Fn: plan.AggCount},
			{Fn: plan.AggSum, Arg: col(base+4, qir.I32)},
			{Fn: plan.AggAvg, Arg: col(base+5, qir.I128)},
			{Fn: plan.AggMin, Arg: col(base+7, qir.I128)},
			{Fn: plan.AggMax, Arg: col(base+7, qir.I128)},
			{Fn: plan.AggSum, Arg: col(base+6, qir.I128)},
		},
	}
	return &plan.Sort{Input: g, Keys: []plan.SortKey{{E: col(0, qir.Str)}}}
}
