// Package tpcds provides the synthetic TPC-DS analog used for the
// compile-time experiments: a star-schema subset (store_sales fact table
// with item, customer, date_dim and store dimensions), a deterministic data
// generator, and a 103-query suite built from parametric templates so the
// workload matches the paper's "all TPC-DS queries" compilations in breadth
// (many distinct plans with varying join depth, predicate mix, decimal
// arithmetic, string matching, and sort shapes).
package tpcds

import (
	"fmt"

	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

var (
	categories = []string{"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Toys", "Women"}
	classes    = []string{"accent", "bedding", "birdal", "classical", "custom", "diamonds", "dresses", "estate", "fragrances", "pants"}
	states     = []string{"AL", "CA", "GA", "KS", "MI", "NC", "OH", "TN", "TX", "WA"}
	firstNames = []string{"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David", "Elizabeth"}
	lastNames  = []string{"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez"}
)

type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s ^= p.s << 13
	p.s ^= p.s >> 7
	p.s ^= p.s << 17
	return p.s
}

func (p *prng) intn(n int64) int64 { return int64(p.next() % uint64(n)) }

// Rows returns per-table row counts at a scale factor (SF=1 ~ 120k fact
// rows; proportions follow the official schema).
func Rows(sf float64) map[string]int64 {
	n := func(base float64) int64 {
		v := int64(base * sf)
		if v < 8 {
			v = 8
		}
		return v
	}
	return map[string]int64{
		"store_sales": n(120000),
		"item":        n(3000),
		"customer":    n(5000),
		"date_dim":    2555, // seven years of days, SF-independent
		"store":       n(20),
	}
}

// Load generates all tables at the given scale factor.
func Load(cat *rt.Catalog, sf float64) error {
	rows := Rows(sf)
	rng := &prng{s: 0xA076_1D64_78BD_642F}

	nItem := rows["item"]
	nCust := rows["customer"]
	nDate := rows["date_dim"]
	nStore := rows["store"]

	item := cat.CreateTable("item", nItem,
		rt.ColSpec{Name: "i_item_sk", Type: qir.I64},
		rt.ColSpec{Name: "i_brand", Type: qir.Str},
		rt.ColSpec{Name: "i_category", Type: qir.Str},
		rt.ColSpec{Name: "i_class", Type: qir.Str},
		rt.ColSpec{Name: "i_current_price", Type: qir.I128})
	for i := int64(0); i < nItem; i++ {
		cat.SetInt(item.MustCol("i_item_sk"), i, i)
		cat.SetStr(item.MustCol("i_brand"), i, fmt.Sprintf("Brand#%d%d", 1+rng.intn(9), 1+rng.intn(9)))
		cat.SetStr(item.MustCol("i_category"), i, categories[rng.intn(10)])
		cat.SetStr(item.MustCol("i_class"), i, classes[rng.intn(10)])
		cat.SetI128(item.MustCol("i_current_price"), i, rt.I128FromInt64(99+rng.intn(9900)))
	}

	customer := cat.CreateTable("customer", nCust,
		rt.ColSpec{Name: "c_customer_sk", Type: qir.I64},
		rt.ColSpec{Name: "c_first_name", Type: qir.Str},
		rt.ColSpec{Name: "c_last_name", Type: qir.Str},
		rt.ColSpec{Name: "c_birth_year", Type: qir.I32})
	for i := int64(0); i < nCust; i++ {
		cat.SetInt(customer.MustCol("c_customer_sk"), i, i)
		cat.SetStr(customer.MustCol("c_first_name"), i, firstNames[rng.intn(10)])
		cat.SetStr(customer.MustCol("c_last_name"), i, lastNames[rng.intn(10)])
		cat.SetInt(customer.MustCol("c_birth_year"), i, 1930+rng.intn(70))
	}

	dateDim := cat.CreateTable("date_dim", nDate,
		rt.ColSpec{Name: "d_date_sk", Type: qir.I32},
		rt.ColSpec{Name: "d_year", Type: qir.I32},
		rt.ColSpec{Name: "d_moy", Type: qir.I32},
		rt.ColSpec{Name: "d_dow", Type: qir.I32})
	for i := int64(0); i < nDate; i++ {
		cat.SetInt(dateDim.MustCol("d_date_sk"), i, i)
		cat.SetInt(dateDim.MustCol("d_year"), i, 1998+i/365)
		cat.SetInt(dateDim.MustCol("d_moy"), i, 1+(i/30)%12)
		cat.SetInt(dateDim.MustCol("d_dow"), i, i%7)
	}

	store := cat.CreateTable("store", nStore,
		rt.ColSpec{Name: "s_store_sk", Type: qir.I32},
		rt.ColSpec{Name: "s_store_name", Type: qir.Str},
		rt.ColSpec{Name: "s_state", Type: qir.Str})
	for i := int64(0); i < nStore; i++ {
		cat.SetInt(store.MustCol("s_store_sk"), i, i)
		cat.SetStr(store.MustCol("s_store_name"), i, fmt.Sprintf("Store %c", 'A'+byte(i%26)))
		cat.SetStr(store.MustCol("s_state"), i, states[rng.intn(10)])
	}

	ss := cat.CreateTable("store_sales", rows["store_sales"],
		rt.ColSpec{Name: "ss_sold_date_sk", Type: qir.I32},
		rt.ColSpec{Name: "ss_item_sk", Type: qir.I64},
		rt.ColSpec{Name: "ss_customer_sk", Type: qir.I64},
		rt.ColSpec{Name: "ss_store_sk", Type: qir.I32},
		rt.ColSpec{Name: "ss_quantity", Type: qir.I32},
		rt.ColSpec{Name: "ss_sales_price", Type: qir.I128},
		rt.ColSpec{Name: "ss_ext_sales_price", Type: qir.I128},
		rt.ColSpec{Name: "ss_net_profit", Type: qir.I128})
	for i := int64(0); i < rows["store_sales"]; i++ {
		cat.SetInt(ss.MustCol("ss_sold_date_sk"), i, rng.intn(nDate))
		cat.SetInt(ss.MustCol("ss_item_sk"), i, rng.intn(nItem))
		cat.SetInt(ss.MustCol("ss_customer_sk"), i, rng.intn(nCust))
		cat.SetInt(ss.MustCol("ss_store_sk"), i, rng.intn(nStore))
		q := 1 + rng.intn(100)
		price := 50 + rng.intn(20000)
		cat.SetInt(ss.MustCol("ss_quantity"), i, q)
		cat.SetI128(ss.MustCol("ss_sales_price"), i, rt.I128FromInt64(price))
		cat.SetI128(ss.MustCol("ss_ext_sales_price"), i, rt.I128FromInt64(price*q))
		cat.SetI128(ss.MustCol("ss_net_profit"), i, rt.I128FromInt64(price*q/10-rng.intn(5000)))
	}
	return nil
}

// Schemas.
func ssSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "ss_sold_date_sk", Type: qir.I32}, {Name: "ss_item_sk", Type: qir.I64},
		{Name: "ss_customer_sk", Type: qir.I64}, {Name: "ss_store_sk", Type: qir.I32},
		{Name: "ss_quantity", Type: qir.I32}, {Name: "ss_sales_price", Type: qir.I128},
		{Name: "ss_ext_sales_price", Type: qir.I128}, {Name: "ss_net_profit", Type: qir.I128},
	}
}

func itemSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "i_item_sk", Type: qir.I64}, {Name: "i_brand", Type: qir.Str},
		{Name: "i_category", Type: qir.Str}, {Name: "i_class", Type: qir.Str},
		{Name: "i_current_price", Type: qir.I128},
	}
}

func customerSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "c_customer_sk", Type: qir.I64}, {Name: "c_first_name", Type: qir.Str},
		{Name: "c_last_name", Type: qir.Str}, {Name: "c_birth_year", Type: qir.I32},
	}
}

func dateSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "d_date_sk", Type: qir.I32}, {Name: "d_year", Type: qir.I32},
		{Name: "d_moy", Type: qir.I32}, {Name: "d_dow", Type: qir.I32},
	}
}

func storeSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "s_store_sk", Type: qir.I32}, {Name: "s_store_name", Type: qir.Str},
		{Name: "s_state", Type: qir.Str},
	}
}
