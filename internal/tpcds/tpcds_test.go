package tpcds

import (
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/interp"
	"qcc/internal/codegen"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func TestSuiteCompilesAndRuns(t *testing.T) {
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 256 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	if err := Load(cat, 0.02); err != nil {
		t.Fatal(err)
	}
	qs := Queries()
	if len(qs) != 103 {
		t.Fatalf("suite has %d queries", len(qs))
	}
	eng := interp.New()
	totalFuncs := 0
	nonEmpty := 0
	for _, q := range qs {
		c, err := codegen.Compile(q.Name, q.Build(), cat)
		if err != nil {
			t.Fatalf("%s: compile: %v", q.Name, err)
		}
		totalFuncs += c.NumFuncs
		ex, _, err := eng.Compile(c.Module, &backend.Env{DB: db, Arch: vt.VX64})
		if err != nil {
			t.Fatalf("%s: backend: %v", q.Name, err)
		}
		db.Out.Reset()
		if err := codegen.Run(db, cat, c, ex.Call); err != nil {
			t.Fatalf("%s: run: %v", q.Name, err)
		}
		if db.Out.NumRows() > 0 {
			nonEmpty++
		}
	}
	t.Logf("compiled %d functions across 103 queries; %d queries returned rows", totalFuncs, nonEmpty)
	if totalFuncs < 103*6 {
		t.Errorf("suspiciously few functions: %d", totalFuncs)
	}
	if nonEmpty < 80 {
		t.Errorf("only %d queries returned rows; workload too degenerate", nonEmpty)
	}
}

func TestDataGeneratorDeterministic(t *testing.T) {
	build := func() string {
		m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 64 << 20})
		db := rt.NewDB(m)
		cat := rt.NewCatalog(db)
		if err := Load(cat, 0.01); err != nil {
			t.Fatal(err)
		}
		tbl, err := cat.Table("store_sales")
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for i := int64(0); i < 5; i++ {
			v := cat.GetI128(tbl.MustCol("ss_ext_sales_price"), i)
			s += v.DecString() + ","
		}
		return s
	}
	if build() != build() {
		t.Error("data generation not deterministic")
	}
}

func TestRowsScale(t *testing.T) {
	small := Rows(0.1)
	big := Rows(1.0)
	if big["store_sales"] <= small["store_sales"] {
		t.Error("scale factor does not scale the fact table")
	}
	if small["date_dim"] != big["date_dim"] {
		t.Error("date dimension should be SF-independent")
	}
}
