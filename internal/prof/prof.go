// Package prof is the source-attributed VM profiler: it turns cheap PC
// samples from the vm dispatch loops into profiles whose rows are named plan
// operators, not machine addresses. The attribution chain is
//
//	sampled byte offset
//	  -> vm.UnwindRange        (PC-range map registered by the back-end)
//	  -> qir function index    (UnwindRange.Func)
//	  -> qir.Prov              (plan operator path + SQL fragment, codegen)
//
// so a hot loop in generated code reports as "scan(lineitem) > select >
// groupby" rather than "q1_p0_main+0x84". Counting-side hotness (executed
// instructions per function) lives here too and feeds the adaptive
// back-end's tier-promotion decision.
package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"qcc/internal/qir"
)

// Schema identifies the profile JSON format.
const Schema = "qcc.prof/v1"

// FuncProv is the provenance row for one compiled function.
type FuncProv struct {
	Name     string `json:"name"`
	Pipeline int    `json:"pipeline"`
	Operator string `json:"operator,omitempty"`
	SQL      string `json:"sql,omitempty"`
	Role     string `json:"role,omitempty"`
}

// ProvenanceOf extracts the provenance table of a compiled module, indexed
// by function index (the same index back-ends store in UnwindRange.Func).
func ProvenanceOf(mod *qir.Module) []FuncProv {
	out := make([]FuncProv, len(mod.Funcs))
	for i, f := range mod.Funcs {
		out[i] = FuncProv{
			Name:     f.Name,
			Pipeline: f.Prov.Pipeline,
			Operator: f.Prov.Operator,
			SQL:      f.Prov.SQL,
			Role:     f.Prov.Role,
		}
	}
	return out
}

// OffsetCount is one sampled byte offset within a function.
type OffsetCount struct {
	Off     int32 `json:"off"`
	Samples int64 `json:"samples"`
}

// FuncProfile aggregates the samples of one function.
type FuncProfile struct {
	FuncProv
	Samples int64 `json:"samples"`
	// Offsets lists the sampled byte offsets (function-relative), sorted
	// by offset — the raw material for annotated renderings.
	Offsets []OffsetCount `json:"offsets,omitempty"`
}

// Profile is a complete capture: sample counts attributed to functions and,
// through provenance, to plan operators.
type Profile struct {
	Schema string `json:"schema"`
	Arch   string `json:"arch,omitempty"`
	Query  string `json:"query,omitempty"`
	// Period is the sampling period in executed VM instructions; each
	// sample therefore represents ~Period instructions of execution.
	Period  int64 `json:"period"`
	Samples int64 `json:"samples"`
	// Unattributed counts samples that hit code without a named plan
	// operator (runtime stubs, hand-built modules, unmapped PCs).
	Unattributed int64         `json:"unattributed"`
	Funcs        []FuncProfile `json:"funcs"`
}

// sortFuncs orders functions hottest-first (ties by name for determinism).
func (p *Profile) sortFuncs() {
	sort.Slice(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].Samples != p.Funcs[j].Samples {
			return p.Funcs[i].Samples > p.Funcs[j].Samples
		}
		return p.Funcs[i].Name < p.Funcs[j].Name
	})
}

// AttributionRate returns the fraction of samples attributed to named plan
// operators (0..1); 1 for an empty profile, so a no-sample capture does not
// read as an attribution failure.
func (p *Profile) AttributionRate() float64 {
	if p.Samples == 0 {
		return 1
	}
	return float64(p.Samples-p.Unattributed) / float64(p.Samples)
}

// ByOperator aggregates samples by operator path. Unattributed samples
// group under "?".
func (p *Profile) ByOperator() map[string]int64 {
	out := map[string]int64{}
	for i := range p.Funcs {
		op := p.Funcs[i].Operator
		if op == "" {
			op = "?"
		}
		out[op] += p.Funcs[i].Samples
	}
	return out
}

// Merge folds other into p: sample counts add up by function name, offsets
// by offset. Arch/Query are kept when they agree and cleared when they
// conflict (a cross-query merge has no single query name).
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	if p.Arch != other.Arch {
		p.Arch = ""
	}
	if p.Query != other.Query {
		p.Query = ""
	}
	if p.Period == 0 {
		p.Period = other.Period
	}
	p.Samples += other.Samples
	p.Unattributed += other.Unattributed
	byName := map[string]int{}
	for i := range p.Funcs {
		byName[p.Funcs[i].Name] = i
	}
	for _, f := range other.Funcs {
		i, ok := byName[f.Name]
		if !ok {
			p.Funcs = append(p.Funcs, f)
			continue
		}
		dst := &p.Funcs[i]
		dst.Samples += f.Samples
		offs := map[int32]int64{}
		for _, oc := range dst.Offsets {
			offs[oc.Off] += oc.Samples
		}
		for _, oc := range f.Offsets {
			offs[oc.Off] += oc.Samples
		}
		dst.Offsets = dst.Offsets[:0]
		for off, n := range offs {
			dst.Offsets = append(dst.Offsets, OffsetCount{Off: off, Samples: n})
		}
		sort.Slice(dst.Offsets, func(a, b int) bool { return dst.Offsets[a].Off < dst.Offsets[b].Off })
	}
	p.sortFuncs()
}

// WriteJSON emits the profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	if p.Schema == "" {
		p.Schema = Schema
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // operator paths contain " > "
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON parses a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	if p.Schema != Schema {
		return nil, fmt.Errorf("prof: unexpected schema %q (want %q)", p.Schema, Schema)
	}
	return &p, nil
}

// WriteTop renders the top-n operators by sampled VM time, flat-profile
// style, followed by an attribution summary line.
func (p *Profile) WriteTop(w io.Writer, n int) error {
	type row struct {
		op      string
		samples int64
	}
	var rows []row
	for op, s := range p.ByOperator() {
		rows = append(rows, row{op, s})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].samples != rows[j].samples {
			return rows[i].samples > rows[j].samples
		}
		return rows[i].op < rows[j].op
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	fmt.Fprintf(w, "%8s %7s  %s\n", "SAMPLES", "PCT", "OPERATOR")
	for _, r := range rows {
		pct := 0.0
		if p.Samples > 0 {
			pct = 100 * float64(r.samples) / float64(p.Samples)
		}
		fmt.Fprintf(w, "%8d %6.2f%%  %s\n", r.samples, pct, r.op)
	}
	_, err := fmt.Fprintf(w, "total %d samples (period %d instrs), %.2f%% attributed to plan operators\n",
		p.Samples, p.Period, 100*p.AttributionRate())
	return err
}

// WriteAnnotated renders the QIR of the hottest functions (hottest first),
// each prefixed with its sample count, share, and provenance, plus a short
// histogram of hot byte offsets inside the function. qmod must be the module
// the profile was captured from; functions without samples are skipped.
func (p *Profile) WriteAnnotated(w io.Writer, qmod *qir.Module, n int) error {
	byName := map[string]*qir.Func{}
	for _, f := range qmod.Funcs {
		byName[f.Name] = f
	}
	shown := 0
	for i := range p.Funcs {
		fp := &p.Funcs[i]
		if fp.Samples == 0 || (n > 0 && shown >= n) {
			break
		}
		pct := 100 * float64(fp.Samples) / float64(p.Samples)
		fmt.Fprintf(w, "; ---- %s: %d samples (%.2f%%)", fp.Name, fp.Samples, pct)
		if fp.Operator != "" {
			fmt.Fprintf(w, " op=%s", fp.Operator)
		}
		fmt.Fprintln(w)
		if len(fp.Offsets) > 0 {
			var hot []string
			for _, oc := range fp.Offsets {
				hot = append(hot, fmt.Sprintf("+0x%x:%d", oc.Off, oc.Samples))
			}
			fmt.Fprintf(w, "; hot offsets: %s\n", strings.Join(hot, " "))
		}
		if f := byName[fp.Name]; f != nil {
			if _, err := io.WriteString(w, f.String()); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(w, "; no samples")
	}
	return nil
}
