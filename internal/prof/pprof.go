package prof

import (
	"compress/gzip"
	"io"
)

// WritePprof emits the profile in the pprof protobuf format (gzipped, as
// `go tool pprof` expects on disk). The encoder is hand-rolled over the
// subset of perftools.profiles.Profile we need — sample/location/function
// tables plus a string table — to keep the repo dependency-free.
//
// Each sampled (function, offset) pair becomes one Location whose synthetic
// address is the module byte offset; the location's line carries the
// function name, rendered as "operator | function" when provenance is
// available so pprof's flat view groups by plan operator.
func (p *Profile) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(encodePprof(p)); err != nil {
		return err
	}
	return zw.Close()
}

// encodePprof builds the uncompressed protobuf message.
func encodePprof(p *Profile) []byte {
	var b protoBuf
	st := newStrTab()

	// Field 1: sample_type = {type: "vm_instructions", unit: "count"}.
	var vt protoBuf
	vt.tagVarint(1, st.id("vm_instructions"))
	vt.tagVarint(2, st.id("instructions"))
	b.tagBytes(1, vt.buf)

	// Function and location tables: one function per profiled function,
	// one location per distinct sampled offset.
	type locKey struct {
		fn  string
		off int32
	}
	fnID := map[string]uint64{}
	var fnOrder []string
	locID := map[locKey]uint64{}
	var locOrder []locKey

	addSample := func(fn string, off int32, count int64) {
		if _, ok := fnID[fn]; !ok {
			fnID[fn] = uint64(len(fnOrder) + 1)
			fnOrder = append(fnOrder, fn)
		}
		k := locKey{fn, off}
		if _, ok := locID[k]; !ok {
			locID[k] = uint64(len(locOrder) + 1)
			locOrder = append(locOrder, k)
		}
		// Field 2: sample = {location_id: [loc], value: [count]}.
		var s protoBuf
		s.tagVarint(1, locID[k])
		s.tagVarint(2, uint64(count))
		b.tagBytes(2, s.buf)
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		label := f.Name
		if f.Operator != "" {
			label = f.Operator + " | " + f.Name
		}
		if len(f.Offsets) == 0 && f.Samples > 0 {
			addSample(label, 0, f.Samples)
		}
		for _, oc := range f.Offsets {
			addSample(label, oc.Off, oc.Samples)
		}
	}
	if p.Unattributed > 0 {
		addSample("?", 0, p.Unattributed)
	}

	// Field 4: location entries.
	for _, k := range locOrder {
		var loc protoBuf
		loc.tagVarint(1, locID[k])
		loc.tagVarint(3, uint64(uint32(k.off))) // address
		var line protoBuf
		line.tagVarint(1, fnID[k.fn])
		loc.tagBytes(4, line.buf)
		b.tagBytes(4, loc.buf)
	}
	// Field 5: function entries.
	for _, fn := range fnOrder {
		var f protoBuf
		f.tagVarint(1, fnID[fn])
		f.tagVarint(2, st.id(fn))
		b.tagBytes(5, f.buf)
	}

	// Field 11/12: period_type + period (instructions between samples).
	var pt protoBuf
	pt.tagVarint(1, st.id("vm_instructions"))
	pt.tagVarint(2, st.id("instructions"))
	b.tagBytes(11, pt.buf)
	b.tagVarint(12, uint64(p.Period))

	// Field 6: string_table — must start with "".
	var out protoBuf
	for _, s := range st.strs {
		out.tagBytes(6, []byte(s))
	}
	out.buf = append(out.buf, b.buf...)
	return out.buf
}

// protoBuf is a minimal protobuf wire-format writer.
type protoBuf struct{ buf []byte }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.buf = append(b.buf, byte(v)|0x80)
		v >>= 7
	}
	b.buf = append(b.buf, byte(v))
}

// tagVarint writes field `field` with wire type 0 (varint).
func (b *protoBuf) tagVarint(field int, v uint64) {
	if v == 0 {
		return // proto3 default, omitted
	}
	b.varint(uint64(field)<<3 | 0)
	b.varint(v)
}

// tagBytes writes field `field` with wire type 2 (length-delimited).
func (b *protoBuf) tagBytes(field int, v []byte) {
	b.varint(uint64(field)<<3 | 2)
	b.varint(uint64(len(v)))
	b.buf = append(b.buf, v...)
}

// strTab interns strings; index 0 is the mandatory empty string.
type strTab struct {
	strs []string
	ids  map[string]uint64
}

func newStrTab() *strTab {
	return &strTab{strs: []string{""}, ids: map[string]uint64{"": 0}}
}

func (t *strTab) id(s string) uint64 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint64(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}
