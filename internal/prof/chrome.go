package prof

import (
	"encoding/json"
	"io"
	"sort"
)

// WriteChrome renders the profile as a Chrome trace-event document loadable
// in Perfetto. A sampling profile has no real timeline, so the rendering is
// a synthetic flame bar: one complete event per operator, laid end to end,
// with duration proportional to its sample count (1 sample = 1 µs) and the
// contributing functions nested underneath. Relative widths — the part that
// matters — are exact.
func (p *Profile) WriteChrome(w io.Writer) error {
	type ev struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	doc := struct {
		TraceEvents     []ev   `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms", TraceEvents: []ev{}}

	proc := p.Query
	if proc == "" {
		proc = "profile"
	}
	doc.TraceEvents = append(doc.TraceEvents, ev{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": proc + " (vm samples)"},
	})

	type opRow struct {
		op      string
		samples int64
	}
	var ops []opRow
	for op, s := range p.ByOperator() {
		ops = append(ops, opRow{op, s})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].samples != ops[j].samples {
			return ops[i].samples > ops[j].samples
		}
		return ops[i].op < ops[j].op
	})
	ts := 0.0
	for _, o := range ops {
		dur := float64(o.samples)
		doc.TraceEvents = append(doc.TraceEvents, ev{
			Name: o.op, Cat: "operator", Ph: "X", Ts: ts, Dur: &dur, Pid: 1, Tid: 1,
			Args: map[string]any{"samples": o.samples},
		})
		// Nested per-function bars within the operator's interval.
		fts := ts
		for i := range p.Funcs {
			f := &p.Funcs[i]
			op := f.Operator
			if op == "" {
				op = "?"
			}
			if op != o.op || f.Samples == 0 {
				continue
			}
			fdur := float64(f.Samples)
			doc.TraceEvents = append(doc.TraceEvents, ev{
				Name: f.Name, Cat: "func", Ph: "X", Ts: fts, Dur: &fdur, Pid: 1, Tid: 1,
				Args: map[string]any{"samples": f.Samples, "role": f.Role},
			})
			fts += fdur
		}
		ts += dur
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // operator paths contain " > "
	enc.SetIndent("", " ")
	return enc.Encode(&doc)
}
