package prof

import (
	"sort"

	"qcc/internal/obs"
	"qcc/internal/qir"
	"qcc/internal/vm"
)

// Collector accumulates PC samples for one query's compiled code and
// resolves them against the module's provenance table. It is the Hit target
// of a vm.Sampler:
//
//	col := prof.NewCollector(compiled.Module)
//	s := &vm.Sampler{Hit: col.Hit}
//	machine.SetSampler(s)
//	... execute ...
//	machine.SetSampler(nil)
//	profile := col.Profile("vx64", "q1", s)
//
// A Collector may observe several vm.Modules (the adaptive back-end runs a
// baseline and an optimized image of the same qir module); samples from all
// of them attribute through the shared function index space. Not safe for
// concurrent use — a sampler runs on its machine's execution goroutine.
type Collector struct {
	prov []FuncProv
	mods map[*vm.Module]*modIndex
	// FlightEvery mirrors every n-th sample into the global flight
	// recorder (0 disables mirroring).
	FlightEvery int64
	hits        int64
}

// modIndex is the per-vm.Module sample store: ranges sorted by start plus
// sample counts keyed by absolute byte offset.
type modIndex struct {
	ranges []vm.UnwindRange // sorted by Start
	counts map[int32]int64
}

// NewCollector builds a collector over the provenance table of qmod. A nil
// qmod yields an empty table (all samples unattributed) — usable for
// hand-built test modules.
func NewCollector(qmod *qir.Module) *Collector {
	c := &Collector{mods: map[*vm.Module]*modIndex{}, FlightEvery: 16}
	if qmod != nil {
		c.prov = ProvenanceOf(qmod)
	}
	return c
}

func (c *Collector) index(mod *vm.Module) *modIndex {
	mi := c.mods[mod]
	if mi == nil {
		ranges := append([]vm.UnwindRange(nil), mod.Unwind()...)
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].Start < ranges[j].Start })
		mi = &modIndex{ranges: ranges, counts: map[int32]int64{}}
		c.mods[mod] = mi
	}
	return mi
}

// Hit records one sample; it is the vm.Sampler callback.
func (c *Collector) Hit(mod *vm.Module, off int32) {
	mi := c.index(mod)
	mi.counts[off]++
	c.hits++
	if c.FlightEvery > 0 && c.hits%c.FlightEvery == 0 {
		name := "?"
		if r := mi.find(off); r != nil {
			name = r.Name
		}
		obs.FlightRec().Record(obs.FlightSample, name, int64(off))
	}
}

// find returns the range containing off, or nil.
func (mi *modIndex) find(off int32) *vm.UnwindRange {
	i := sort.Search(len(mi.ranges), func(k int) bool { return mi.ranges[k].Start > off })
	if i == 0 {
		return nil
	}
	r := &mi.ranges[i-1]
	if off >= r.Start && off < r.End {
		return r
	}
	return nil
}

// Profile resolves the accumulated samples into a Profile. s supplies the
// period and total sample count (which includes samples the collector never
// saw, e.g. if it was attached late); arch and query label the capture.
func (c *Collector) Profile(arch, query string, s *vm.Sampler) *Profile {
	p := &Profile{Schema: Schema, Arch: arch, Query: query}
	if s != nil {
		p.Period = s.Period
		p.Samples = s.Samples
	}
	type agg struct {
		prov    FuncProv
		samples int64
		offs    map[int32]int64 // function-relative
	}
	byName := map[string]*agg{}
	var seen int64
	for _, mi := range c.mods {
		for off, n := range mi.counts {
			seen += n
			r := mi.find(off)
			if r == nil {
				p.Unattributed += n
				continue
			}
			fp := FuncProv{Name: r.Name, Pipeline: -1}
			if r.Func >= 0 && int(r.Func) < len(c.prov) {
				fp = c.prov[r.Func]
			}
			if fp.Operator == "" {
				p.Unattributed += n
			}
			a := byName[fp.Name]
			if a == nil {
				a = &agg{prov: fp, offs: map[int32]int64{}}
				byName[fp.Name] = a
			}
			a.samples += n
			a.offs[off-r.Start] += n
		}
	}
	// Samples taken before the collector attached (or discarded by a nil
	// Hit) are unattributed.
	if p.Samples < seen {
		p.Samples = seen
	}
	p.Unattributed += p.Samples - seen
	for _, a := range byName {
		fp := FuncProfile{FuncProv: a.prov, Samples: a.samples}
		for off, n := range a.offs {
			fp.Offsets = append(fp.Offsets, OffsetCount{Off: off, Samples: n})
		}
		sort.Slice(fp.Offsets, func(i, j int) bool { return fp.Offsets[i].Off < fp.Offsets[j].Off })
		p.Funcs = append(p.Funcs, fp)
	}
	p.sortFuncs()
	return p
}
