package prof

import "qcc/internal/obs"

// Hotness is the counting side of the profiler: per-function executed-
// instruction totals, updated concurrently from execution and read by the
// adaptive back-end as its tier-promotion signal. Weighting by executed
// instructions (rather than raw call counts) makes one call into a hot loop
// count for what it costs: a function called three times over a million rows
// promotes, a tiny helper called a thousand times does not.
type Hotness struct {
	v *obs.Vector
}

// NewHotness creates hotness counters for n functions.
func NewHotness(name string, n int) *Hotness {
	return &Hotness{v: obs.NewVector(name, n)}
}

// Add accumulates instrs executed instructions to function fn and returns
// the new total.
func (h *Hotness) Add(fn int, instrs int64) int64 { return h.v.Add(fn, instrs) }

// Load returns function fn's executed-instruction total.
func (h *Hotness) Load(fn int) int64 { return h.v.Load(fn) }

// Len returns the function count.
func (h *Hotness) Len() int { return h.v.Len() }

// Total sums all functions.
func (h *Hotness) Total() int64 { return h.v.Total() }
