package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func sampleProfile() *Profile {
	return &Profile{
		Schema: Schema, Arch: "vx64", Query: "q1", Period: 1024, Samples: 100,
		Unattributed: 5,
		Funcs: []FuncProfile{
			{FuncProv: FuncProv{Name: "q1_p0_main", Pipeline: 0, Operator: "scan(lineitem) > groupby", Role: "main"},
				Samples: 80, Offsets: []OffsetCount{{Off: 0x10, Samples: 50}, {Off: 0x40, Samples: 30}}},
			{FuncProv: FuncProv{Name: "q1_p1_main", Pipeline: 1, Operator: "groupby > sort", Role: "main"},
				Samples: 15, Offsets: []OffsetCount{{Off: 0x8, Samples: 15}}},
			{FuncProv: FuncProv{Name: "stub", Pipeline: -1}, Samples: 5},
		},
	}
}

func TestAttributionRate(t *testing.T) {
	p := sampleProfile()
	if r := p.AttributionRate(); r != 0.95 {
		t.Fatalf("rate = %v, want 0.95", r)
	}
	empty := &Profile{}
	if r := empty.AttributionRate(); r != 1 {
		t.Fatalf("empty rate = %v, want 1", r)
	}
}

func TestByOperatorAndTop(t *testing.T) {
	p := sampleProfile()
	ops := p.ByOperator()
	if ops["scan(lineitem) > groupby"] != 80 || ops["groupby > sort"] != 15 || ops["?"] != 5 {
		t.Fatalf("ByOperator = %v", ops)
	}
	var sb strings.Builder
	if err := p.WriteTop(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "scan(lineitem) > groupby") || !strings.Contains(out, "80.00%") {
		t.Fatalf("top output:\n%s", out)
	}
	if !strings.Contains(out, "95.00% attributed") {
		t.Fatalf("missing attribution summary:\n%s", out)
	}
}

func TestMergeAndJSONRoundTrip(t *testing.T) {
	a, b := sampleProfile(), sampleProfile()
	a.Merge(b)
	if a.Samples != 200 || a.Unattributed != 10 {
		t.Fatalf("merged totals: samples=%d unattributed=%d", a.Samples, a.Unattributed)
	}
	if a.Funcs[0].Samples != 160 {
		t.Fatalf("merged hot func samples = %d, want 160", a.Funcs[0].Samples)
	}
	if a.Funcs[0].Offsets[0] != (OffsetCount{Off: 0x10, Samples: 100}) {
		t.Fatalf("merged offsets = %+v", a.Funcs[0].Offsets)
	}
	if a.Query != "q1" {
		t.Fatalf("same-query merge lost label: %q", a.Query)
	}

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Samples != a.Samples || len(back.Funcs) != len(a.Funcs) {
		t.Fatalf("round trip mismatch: %+v", back)
	}

	if _, err := ReadJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("ReadJSON accepted wrong schema")
	}
}

func TestMergeConflictClearsLabels(t *testing.T) {
	a, b := sampleProfile(), sampleProfile()
	b.Query = "q6"
	a.Merge(b)
	if a.Query != "" {
		t.Fatalf("cross-query merge kept label %q", a.Query)
	}
}

// TestPprofEncoding checks the hand-rolled encoder produces a valid gzip
// stream whose protobuf payload contains the expected string table entries
// and parses structurally (walks every top-level field).
func TestPprofEncoding(t *testing.T) {
	p := sampleProfile()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("vm_instructions")) {
		t.Fatal("missing sample type string")
	}
	if !bytes.Contains(raw, []byte("scan(lineitem) > groupby | q1_p0_main")) {
		t.Fatal("missing operator-labelled function name")
	}
	// Structural walk: every field must have a known wire type and
	// length-delimited fields must stay in bounds.
	pos := 0
	readVarint := func() uint64 {
		var v uint64
		var shift uint
		for {
			if pos >= len(raw) {
				t.Fatal("truncated varint")
			}
			c := raw[pos]
			pos++
			v |= uint64(c&0x7f) << shift
			if c < 0x80 {
				return v
			}
			shift += 7
		}
	}
	fields := map[int]int{}
	for pos < len(raw) {
		key := readVarint()
		field, wt := int(key>>3), int(key&7)
		switch wt {
		case 0:
			readVarint()
		case 2:
			n := int(readVarint())
			if pos+n > len(raw) {
				t.Fatalf("field %d overruns buffer", field)
			}
			pos += n
		default:
			t.Fatalf("unexpected wire type %d for field %d", wt, field)
		}
		fields[field]++
	}
	// 1=sample_type, 2=samples, 4=locations, 5=functions, 6=strings, 12=period.
	for _, f := range []int{1, 2, 4, 5, 6, 12} {
		if fields[f] == 0 {
			t.Fatalf("missing top-level field %d (have %v)", f, fields)
		}
	}
	// 2 offsets of q1_p0_main + 1 of q1_p1_main + offset-less stub + "?".
	if fields[2] != 5 {
		t.Fatalf("sample count = %d, want 5", fields[2])
	}
}

func TestChromeExport(t *testing.T) {
	p := sampleProfile()
	var sb strings.Builder
	if err := p.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"traceEvents"`, "scan(lineitem) > groupby", "q1_p0_main", `"ph": "X"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %q:\n%s", want, out)
		}
	}
}

// TestCollectorSynthetic resolves hand-made samples against a synthetic
// range table: in-range offsets attribute through Func indices to
// provenance, stub ranges (Func = -1) and unmapped PCs count unattributed.
func TestCollectorSynthetic(t *testing.T) {
	qmod := qir.NewModule("t")
	f := qir.NewFunc(qmod, "t_p0_main", qir.Void)
	f.Ret(qir.NoValue)
	qmod.Funcs[0].Prov = qir.Prov{Pipeline: 0, Operator: "scan(x)", SQL: "FROM x", Role: "main"}

	prog := []byte{0} // minimal image; never executed
	vmod, err := vm.Load(vt.VX64, prog)
	if err != nil {
		t.Fatal(err)
	}
	vmod.RegisterUnwind([]vm.UnwindRange{
		{Start: 0, End: 64, Name: "t_p0_main", Func: 0},
		{Start: 64, End: 96, Name: "stub", Func: -1},
	})

	col := NewCollector(qmod)
	s := &vm.Sampler{Period: 100}
	for i := 0; i < 6; i++ {
		col.Hit(vmod, 8)
	}
	col.Hit(vmod, 70)  // stub: named range, no operator
	col.Hit(vmod, 200) // unmapped
	s.Samples = 8

	p := col.Profile("vx64", "t", s)
	if p.Samples != 8 || p.Unattributed != 2 {
		t.Fatalf("samples=%d unattributed=%d, want 8/2", p.Samples, p.Unattributed)
	}
	if p.Funcs[0].Name != "t_p0_main" || p.Funcs[0].Operator != "scan(x)" || p.Funcs[0].Samples != 6 {
		t.Fatalf("hot func = %+v", p.Funcs[0])
	}
	if r := p.AttributionRate(); r != 0.75 {
		t.Fatalf("rate = %v, want 0.75", r)
	}

	var sb strings.Builder
	if err := p.WriteAnnotated(&sb, qmod, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t_p0_main: 6 samples") ||
		!strings.Contains(sb.String(), "; prov: pipeline=0 role=main op=scan(x)") {
		t.Fatalf("annotated output:\n%s", sb.String())
	}
}

func TestHotness(t *testing.T) {
	h := NewHotness("test.hot", 3)
	h.Add(0, 100)
	h.Add(0, 50)
	h.Add(2, 7)
	if h.Load(0) != 150 || h.Load(1) != 0 || h.Load(2) != 7 {
		t.Fatalf("loads: %d %d %d", h.Load(0), h.Load(1), h.Load(2))
	}
	if h.Total() != 157 || h.Len() != 3 {
		t.Fatalf("total=%d len=%d", h.Total(), h.Len())
	}
}
