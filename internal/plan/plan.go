package plan

import (
	"fmt"
	"strings"

	"qcc/internal/qir"
)

// ColInfo describes one output column of an operator.
type ColInfo struct {
	Name string
	Type qir.Type
}

// Node is a relational operator.
type Node interface {
	// Schema returns the operator's output columns.
	Schema() []ColInfo
	// Children returns input operators (build side first for joins).
	Children() []Node
	name() string
}

// Scan reads a base table. Filter (optional) is evaluated against the
// table's full schema before any other processing — the common pushed-down
// predicate position.
type Scan struct {
	Table  string
	Cols   []ColInfo // full table schema, set by the binder/generator
	Filter Expr
}

// Schema implements Node.
func (s *Scan) Schema() []ColInfo { return s.Cols }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }
func (s *Scan) name() string     { return "scan(" + s.Table + ")" }

// Select filters tuples by a boolean predicate over the input schema.
type Select struct {
	Input Node
	Pred  Expr
}

// Schema implements Node.
func (s *Select) Schema() []ColInfo { return s.Input.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }
func (s *Select) name() string     { return "select" }

// Project computes new columns from the input schema.
type Project struct {
	Input Node
	Exprs []Expr
	Names []string
}

// Schema implements Node.
func (p *Project) Schema() []ColInfo {
	out := make([]ColInfo, len(p.Exprs))
	for i, e := range p.Exprs {
		name := ""
		if i < len(p.Names) {
			name = p.Names[i]
		}
		out[i] = ColInfo{Name: name, Type: e.Type()}
	}
	return out
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) name() string     { return "project" }

// HashJoin joins Build and Probe on equality of the key expressions
// (inner join). The output schema is build columns followed by probe
// columns.
type HashJoin struct {
	Build, Probe         Node
	BuildKeys, ProbeKeys []Expr
}

// Schema implements Node.
func (j *HashJoin) Schema() []ColInfo {
	return append(append([]ColInfo{}, j.Build.Schema()...), j.Probe.Schema()...)
}

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Build, j.Probe} }
func (j *HashJoin) name() string     { return "hashjoin" }

// AggFn is an aggregation function.
type AggFn uint8

// Aggregation functions. Avg is computed as a running sum plus count and
// finalized on group output.
const (
	AggSum AggFn = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

var aggNames = [...]string{"sum", "count", "min", "max", "avg"}

// AggExpr is one aggregate in a GroupBy. Arg is nil for Count.
type AggExpr struct {
	Fn   AggFn
	Arg  Expr
	Name string
}

// Type returns the aggregate's output type. Sums and averages over small
// integers widen to I64 (running sums are kept at that width); integer
// averages truncate.
func (a *AggExpr) Type() qir.Type {
	switch a.Fn {
	case AggCount:
		return qir.I64
	case AggSum, AggAvg:
		switch t := a.Arg.Type(); t {
		case qir.I1, qir.I8, qir.I16, qir.I32:
			return qir.I64
		default:
			return t
		}
	default:
		return a.Arg.Type()
	}
}

// GroupBy groups tuples by key expressions and computes aggregates. It is a
// full pipeline breaker. The output schema is keys followed by aggregates.
type GroupBy struct {
	Input Node
	Keys  []Expr
	Names []string // key output names (optional)
	Aggs  []AggExpr
}

// Schema implements Node.
func (g *GroupBy) Schema() []ColInfo {
	out := make([]ColInfo, 0, len(g.Keys)+len(g.Aggs))
	for i, k := range g.Keys {
		name := ""
		if i < len(g.Names) {
			name = g.Names[i]
		}
		out = append(out, ColInfo{Name: name, Type: k.Type()})
	}
	for _, a := range g.Aggs {
		out = append(out, ColInfo{Name: a.Name, Type: a.Type()})
	}
	return out
}

// Children implements Node.
func (g *GroupBy) Children() []Node { return []Node{g.Input} }
func (g *GroupBy) name() string     { return "groupby" }

// SortKey orders by one expression.
type SortKey struct {
	E    Expr
	Desc bool
}

// Sort orders the input; a full pipeline breaker.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() []ColInfo { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }
func (s *Sort) name() string     { return "sort" }

// Limit passes at most N tuples.
type Limit struct {
	Input Node
	N     int64
}

// Schema implements Node.
func (l *Limit) Schema() []ColInfo { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }
func (l *Limit) name() string     { return "limit" }

// Validate type-checks expressions against input schemas over the whole
// tree, returning the first inconsistency.
func Validate(n Node) error {
	var check func(n Node) error
	check = func(n Node) error {
		for _, c := range n.Children() {
			if err := check(c); err != nil {
				return err
			}
		}
		exprCheck := func(e Expr, schema []ColInfo) error {
			var err error
			Walk(e, func(x Expr) {
				if err != nil {
					return
				}
				if c, ok := x.(*Col); ok {
					if c.Idx < 0 || c.Idx >= len(schema) {
						err = fmt.Errorf("plan: %s: column #%d out of range (%d cols)", n.name(), c.Idx, len(schema))
						return
					}
					if schema[c.Idx].Type != c.Ty {
						err = fmt.Errorf("plan: %s: column #%d is %s, referenced as %s",
							n.name(), c.Idx, schema[c.Idx].Type, c.Ty)
					}
				}
			})
			return err
		}
		switch x := n.(type) {
		case *Scan:
			if len(x.Cols) == 0 {
				return fmt.Errorf("plan: scan of %s has no schema", x.Table)
			}
			if x.Filter != nil {
				if x.Filter.Type() != qir.I1 {
					return fmt.Errorf("plan: scan filter is %s, not boolean", x.Filter.Type())
				}
				return exprCheck(x.Filter, x.Cols)
			}
		case *Select:
			if x.Pred.Type() != qir.I1 {
				return fmt.Errorf("plan: select predicate is %s, not boolean", x.Pred.Type())
			}
			return exprCheck(x.Pred, x.Input.Schema())
		case *Project:
			for _, e := range x.Exprs {
				if err := exprCheck(e, x.Input.Schema()); err != nil {
					return err
				}
			}
		case *HashJoin:
			if len(x.BuildKeys) != len(x.ProbeKeys) || len(x.BuildKeys) == 0 {
				return fmt.Errorf("plan: hashjoin with %d/%d keys", len(x.BuildKeys), len(x.ProbeKeys))
			}
			for i := range x.BuildKeys {
				if x.BuildKeys[i].Type() != x.ProbeKeys[i].Type() {
					return fmt.Errorf("plan: join key %d type mismatch: %s vs %s",
						i, x.BuildKeys[i].Type(), x.ProbeKeys[i].Type())
				}
				if err := exprCheck(x.BuildKeys[i], x.Build.Schema()); err != nil {
					return err
				}
				if err := exprCheck(x.ProbeKeys[i], x.Probe.Schema()); err != nil {
					return err
				}
			}
		case *GroupBy:
			for _, k := range x.Keys {
				if err := exprCheck(k, x.Input.Schema()); err != nil {
					return err
				}
			}
			for _, a := range x.Aggs {
				if a.Fn != AggCount && a.Arg == nil {
					return fmt.Errorf("plan: aggregate %s without argument", aggNames[a.Fn])
				}
				if a.Arg != nil {
					if err := exprCheck(a.Arg, x.Input.Schema()); err != nil {
						return err
					}
				}
			}
		case *Sort:
			for _, k := range x.Keys {
				if err := exprCheck(k.E, x.Input.Schema()); err != nil {
					return err
				}
			}
		case *Limit:
			if x.N < 0 {
				return fmt.Errorf("plan: negative limit")
			}
		}
		return nil
	}
	return check(n)
}

// Dump renders the plan tree for debugging.
func Dump(n Node) string {
	var sb strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.name())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}
