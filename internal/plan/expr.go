// Package plan defines relational query plans: scalar expressions, operator
// trees, and the decomposition of an operator tree into linear pipelines for
// data-centric code generation, as described in the paper's background
// section.
package plan

import (
	"fmt"
	"math"

	"qcc/internal/qir"
	"qcc/internal/rt"
)

// Expr is a scalar expression evaluated per tuple. Expressions are typed at
// construction time.
type Expr interface {
	Type() qir.Type
	String() string
}

// Col references the i-th column of the operator's input schema.
type Col struct {
	Idx int
	Ty  qir.Type
	// Name is informational (set by the binder).
	Name string
}

// Type implements Expr.
func (c *Col) Type() qir.Type { return c.Ty }

func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// ConstInt is an integer literal of a specific width.
type ConstInt struct {
	Ty qir.Type
	V  int64
}

// Type implements Expr.
func (c *ConstInt) Type() qir.Type { return c.Ty }
func (c *ConstInt) String() string { return fmt.Sprintf("%d", c.V) }

// ConstDec is a 128-bit decimal literal.
type ConstDec struct{ V rt.I128 }

// Type implements Expr.
func (c *ConstDec) Type() qir.Type { return qir.I128 }
func (c *ConstDec) String() string { return c.V.DecString() }

// ConstFloat is a float literal.
type ConstFloat struct{ V float64 }

// Type implements Expr.
func (c *ConstFloat) Type() qir.Type { return qir.F64 }
func (c *ConstFloat) String() string { return fmt.Sprintf("%g", c.V) }

// ConstStr is a string literal.
type ConstStr struct{ V string }

// Type implements Expr.
func (c *ConstStr) Type() qir.Type { return qir.Str }
func (c *ConstStr) String() string { return fmt.Sprintf("%q", c.V) }

// ArithOp is a binary arithmetic operator.
type ArithOp uint8

// Arithmetic operators. On user data they check for overflow (SQL
// semantics); Div on decimals uses the 128-bit division helper.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

var arithNames = [...]string{"+", "-", "*", "/", "%"}

// Arith is a binary arithmetic expression; both operands must have the
// expression's type.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Type implements Expr.
func (a *Arith) Type() qir.Type { return a.L.Type() }
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, arithNames[a.Op], a.R)
}

// NewArith builds an arithmetic node, checking operand types.
func NewArith(op ArithOp, l, r Expr) (*Arith, error) {
	lt, rty := l.Type(), r.Type()
	if lt != rty {
		return nil, fmt.Errorf("plan: arithmetic on %s and %s", lt, rty)
	}
	if !lt.IsInt() && lt != qir.F64 {
		return nil, fmt.Errorf("plan: arithmetic on %s", lt)
	}
	return &Arith{Op: op, L: l, R: r}, nil
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators; ordered comparisons on integers are signed.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpOpNames = [...]string{"=", "<>", "<", "<=", ">", ">="}

// QIR maps the operator to a signed qir predicate.
func (c CmpOp) QIR() qir.Cmp {
	switch c {
	case CmpEQ:
		return qir.CmpEQ
	case CmpNE:
		return qir.CmpNE
	case CmpLT:
		return qir.CmpSLT
	case CmpLE:
		return qir.CmpSLE
	case CmpGT:
		return qir.CmpSGT
	case CmpGE:
		return qir.CmpSGE
	}
	panic("plan: bad cmp op")
}

// Cmp compares two values of the same type, yielding a boolean.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Type implements Expr.
func (c *Cmp) Type() qir.Type { return qir.I1 }
func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, cmpOpNames[c.Op], c.R)
}

// NewCmp builds a comparison, checking operand types.
func NewCmp(op CmpOp, l, r Expr) (*Cmp, error) {
	if l.Type() != r.Type() {
		return nil, fmt.Errorf("plan: comparison of %s and %s", l.Type(), r.Type())
	}
	return &Cmp{Op: op, L: l, R: r}, nil
}

// LogicOp is a boolean connective.
type LogicOp uint8

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

// Logic combines boolean expressions.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Type implements Expr.
func (l *Logic) Type() qir.Type { return qir.I1 }
func (l *Logic) String() string {
	op := "and"
	if l.Op == OpOr {
		op = "or"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.R)
}

// Not negates a boolean.
type Not struct{ E Expr }

// Type implements Expr.
func (n *Not) Type() qir.Type { return qir.I1 }
func (n *Not) String() string { return fmt.Sprintf("(not %s)", n.E) }

// Like matches a string expression against a constant SQL LIKE pattern.
type Like struct {
	E       Expr
	Pattern string
}

// Type implements Expr.
func (l *Like) Type() qir.Type { return qir.I1 }
func (l *Like) String() string { return fmt.Sprintf("(%s like %q)", l.E, l.Pattern) }

// Between is lo <= E <= hi, a very common TPC predicate shape.
type Between struct {
	E, Lo, Hi Expr
}

// Type implements Expr.
func (b *Between) Type() qir.Type { return qir.I1 }
func (b *Between) String() string {
	return fmt.Sprintf("(%s between %s and %s)", b.E, b.Lo, b.Hi)
}

// Case is a simple conditional: if Cond then Then else Else.
type Case struct {
	Cond, Then, Else Expr
}

// Type implements Expr.
func (c *Case) Type() qir.Type { return c.Then.Type() }
func (c *Case) String() string {
	return fmt.Sprintf("(case when %s then %s else %s)", c.Cond, c.Then, c.Else)
}

// Cast converts between integer widths (and to/from decimals).
type Cast struct {
	E  Expr
	To qir.Type
}

// Type implements Expr.
func (c *Cast) Type() qir.Type { return c.To }
func (c *Cast) String() string { return fmt.Sprintf("cast(%s as %s)", c.E, c.To) }

// Walk calls fn for e and every sub-expression.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch x := e.(type) {
	case *Arith:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Cmp:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Logic:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Not:
		Walk(x.E, fn)
	case *Like:
		Walk(x.E, fn)
	case *Between:
		Walk(x.E, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *Case:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *Cast:
		Walk(x.E, fn)
	}
}

// Dec builds a decimal constant from an integer value scaled by 10^scale,
// e.g. Dec(150, 2) is 1.50 at scale 2.
func Dec(unscaled int64, _ int) *ConstDec {
	return &ConstDec{V: rt.I128FromInt64(unscaled)}
}

// F is a shorthand float constant.
func F(v float64) *ConstFloat {
	if math.IsNaN(v) {
		panic("plan: NaN constant")
	}
	return &ConstFloat{V: v}
}
