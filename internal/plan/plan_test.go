package plan

import (
	"strings"
	"testing"

	"qcc/internal/qir"
	"qcc/internal/rt"
)

func schema() []ColInfo {
	return []ColInfo{
		{Name: "a", Type: qir.I64},
		{Name: "b", Type: qir.I32},
		{Name: "s", Type: qir.Str},
		{Name: "d", Type: qir.I128},
	}
}

func scan() *Scan { return &Scan{Table: "t", Cols: schema()} }

func TestValidateOK(t *testing.T) {
	pred, err := NewCmp(CmpGT, &Col{Idx: 1, Ty: qir.I32}, &ConstInt{Ty: qir.I32, V: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := &Sort{
		Input: &GroupBy{
			Input: &Select{Input: scan(), Pred: pred},
			Keys:  []Expr{&Col{Idx: 2, Ty: qir.Str}},
			Aggs:  []AggExpr{{Fn: AggCount}, {Fn: AggSum, Arg: &Col{Idx: 3, Ty: qir.I128}}},
		},
		Keys: []SortKey{{E: &Col{Idx: 1, Ty: qir.I64}, Desc: true}},
	}
	if err := Validate(n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Dump(n), "groupby") {
		t.Error("dump missing operator")
	}
}

func TestValidateCatchesBadColumn(t *testing.T) {
	cases := []Node{
		&Select{Input: scan(), Pred: &Cmp{Op: CmpEQ, L: &Col{Idx: 9, Ty: qir.I64}, R: &ConstInt{Ty: qir.I64}}},
		&Select{Input: scan(), Pred: &Cmp{Op: CmpEQ, L: &Col{Idx: 0, Ty: qir.I32}, R: &ConstInt{Ty: qir.I32}}},
		&Select{Input: scan(), Pred: &ConstInt{Ty: qir.I64, V: 1}}, // non-boolean predicate
		&HashJoin{Build: scan(), Probe: scan(),
			BuildKeys: []Expr{&Col{Idx: 0, Ty: qir.I64}},
			ProbeKeys: []Expr{&Col{Idx: 1, Ty: qir.I32}}}, // key type mismatch
		&HashJoin{Build: scan(), Probe: scan()}, // no keys
		&Limit{Input: scan(), N: -1},
		&Scan{Table: "empty"},
	}
	for i, n := range cases {
		if err := Validate(n); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewArithTypeChecks(t *testing.T) {
	if _, err := NewArith(OpAdd, &Col{Idx: 0, Ty: qir.I64}, &Col{Idx: 1, Ty: qir.I32}); err == nil {
		t.Error("mixed-width arithmetic accepted")
	}
	if _, err := NewArith(OpAdd, &Col{Idx: 2, Ty: qir.Str}, &Col{Idx: 2, Ty: qir.Str}); err == nil {
		t.Error("string arithmetic accepted")
	}
	if _, err := NewCmp(CmpLT, &Col{Idx: 0, Ty: qir.I64}, &Col{Idx: 2, Ty: qir.Str}); err == nil {
		t.Error("cross-type comparison accepted")
	}
}

func TestAggTypeWidening(t *testing.T) {
	sum32 := AggExpr{Fn: AggSum, Arg: &Col{Idx: 1, Ty: qir.I32}}
	if sum32.Type() != qir.I64 {
		t.Errorf("sum(i32) type = %s, want i64", sum32.Type())
	}
	sumDec := AggExpr{Fn: AggSum, Arg: &Col{Idx: 3, Ty: qir.I128}}
	if sumDec.Type() != qir.I128 {
		t.Errorf("sum(i128) type = %s", sumDec.Type())
	}
	cnt := AggExpr{Fn: AggCount}
	if cnt.Type() != qir.I64 {
		t.Errorf("count type = %s", cnt.Type())
	}
	mn := AggExpr{Fn: AggMin, Arg: &Col{Idx: 1, Ty: qir.I32}}
	if mn.Type() != qir.I32 {
		t.Errorf("min(i32) type = %s", mn.Type())
	}
}

func TestSchemas(t *testing.T) {
	j := &HashJoin{
		Build:     scan(),
		Probe:     scan(),
		BuildKeys: []Expr{&Col{Idx: 0, Ty: qir.I64}},
		ProbeKeys: []Expr{&Col{Idx: 0, Ty: qir.I64}},
	}
	if len(j.Schema()) != 8 {
		t.Errorf("join schema = %d cols", len(j.Schema()))
	}
	g := &GroupBy{Input: scan(), Keys: []Expr{&Col{Idx: 2, Ty: qir.Str}},
		Aggs: []AggExpr{{Fn: AggCount, Name: "n"}}}
	sch := g.Schema()
	if len(sch) != 2 || sch[1].Name != "n" || sch[0].Type != qir.Str {
		t.Errorf("groupby schema = %+v", sch)
	}
	p := &Project{Input: scan(), Exprs: []Expr{&Col{Idx: 0, Ty: qir.I64}}, Names: []string{"x"}}
	if p.Schema()[0].Name != "x" {
		t.Error("project name lost")
	}
}

func TestWalkAndStrings(t *testing.T) {
	e := &Logic{Op: OpAnd,
		L: &Between{E: &Col{Idx: 0, Ty: qir.I64}, Lo: &ConstInt{Ty: qir.I64}, Hi: &ConstInt{Ty: qir.I64, V: 9}},
		R: &Not{E: &Like{E: &Col{Idx: 2, Ty: qir.Str}, Pattern: "x%"}},
	}
	count := 0
	Walk(e, func(Expr) { count++ })
	if count < 7 {
		t.Errorf("walk visited %d nodes", count)
	}
	if e.String() == "" || e.Type() != qir.I1 {
		t.Error("expr stringer/type broken")
	}
	_ = Dec(150, 2)
	_ = F(1.5)
	_ = rt.I128{}
}
