package direct

import (
	"strings"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

func compileSum(t *testing.T) (backend.Exec, *backend.Stats) {
	t.Helper()
	mod := qir.NewModule("t")
	b := qir.NewFunc(mod, "sum", qir.I64, qir.I64)
	n := b.Param(0)
	head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	zero := b.ConstInt(qir.I64, 0)
	one := b.ConstInt(qir.I64, 1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(qir.I64, 0, zero)
	acc := b.Phi(qir.I64, 0, zero)
	b.CondBr(b.ICmp(qir.CmpSLT, i, n), body, exit)
	b.SetBlock(body)
	acc2 := b.Bin(qir.OpAdd, acc, i)
	i2 := b.Bin(qir.OpAdd, i, one)
	b.AddPhiArg(i, body, i2)
	b.AddPhiArg(acc, body, acc2)
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(acc)
	if err := mod.VerifyModule(); err != nil {
		t.Fatal(err)
	}
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	ex, stats, err := New().Compile(mod, &backend.Env{DB: db, Arch: vt.VX64})
	if err != nil {
		t.Fatal(err)
	}
	return ex, stats
}

func TestCompileAndRun(t *testing.T) {
	ex, stats := compileSum(t)
	res, err := ex.Call(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 4950 { // sum of 0..99
		t.Errorf("sum(100) = %d", res[0])
	}
	if stats.PhaseDur("Analysis") <= 0 || stats.PhaseDur("Codegen") <= 0 {
		t.Errorf("phases missing: %+v", stats.Phases)
	}
	if stats.CodeBytes == 0 {
		t.Error("no code emitted")
	}
}

func TestDisassembly(t *testing.T) {
	ex, _ := compileSum(t)
	d, ok := ex.(interface{ Disasm() string })
	if !ok {
		t.Fatal("exec does not expose Disasm")
	}
	asm := d.Disasm()
	for _, want := range []string{"subi", "brnz", "ret"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestVA64Unsupported(t *testing.T) {
	mod := qir.NewModule("t")
	b := qir.NewFunc(mod, "f", qir.Void)
	b.Ret(qir.NoValue)
	m := vm.New(vm.Config{Arch: vt.VA64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	_, _, err := New().Compile(mod, &backend.Env{DB: db, Arch: vt.VA64})
	if err == nil {
		t.Fatal("va64 should be unsupported, like the unmerged AArch64 port")
	}
	if _, ok := err.(*backend.ErrUnsupported); !ok {
		t.Errorf("error type %T", err)
	}
}

func TestCFIEncoding(t *testing.T) {
	cfi := encodeCFI(100, 260, 4096)
	if len(cfi) < 5 || cfi[0] != 0x01 {
		t.Errorf("cfi = %v", cfi)
	}
}
