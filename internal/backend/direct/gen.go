package direct

import (
	"fmt"
	"math"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/vt"
)

// Register allocation model: every SSA value has a stack slot; values are
// cached in registers within a basic block and flushed at block boundaries
// and calls. Definitions of block-crossing values store eagerly; evictions
// store lazily. Callee-saved registers are saved in the prologue so the
// whole file can be allocated freely.

const noReg = int16(-1)

type loc struct {
	r1, r2 int16 // GPR (or FPR for F64) cache; -1 = not cached
}

type codegen struct {
	f   *qir.Func
	asm vt.Assembler
	an  *analysis
	env *backend.Env
	mod *qir.Module

	slotOff []int64
	stored  []bool
	locs    []loc
	isFloat []bool
	isWide  []bool

	gpr     [16]qir.Value // register -> owning value, -1 free
	fpr     [16]qir.Value
	pinned  uint32
	fpinned uint32

	labels    []vt.Label
	rpo       []qir.BlockID
	rpoIdx    map[qir.BlockID]int
	cur       qir.Value
	curBlock  qir.BlockID
	frameSize int64

	calleeSaveOff int64
	scratchOff    int64 // phi staging area
}

func (g *codegen) genFunc() error {
	f := g.f
	n := len(f.Instrs)
	g.slotOff = make([]int64, n)
	g.stored = make([]bool, n)
	g.locs = make([]loc, n)
	g.isFloat = make([]bool, n)
	g.isWide = make([]bool, n)
	for i := range g.locs {
		g.locs[i] = loc{noReg, noReg}
		t := f.Instrs[i].Type
		g.isFloat[i] = t == qir.F64
		g.isWide[i] = t.Is128()
	}
	for r := range g.gpr {
		g.gpr[r] = qir.NoValue
	}
	for r := range g.fpr {
		g.fpr[r] = qir.NoValue
	}

	// Frame layout: callee-saved area, value slots, phi staging scratch.
	off := int64(0)
	g.calleeSaveOff = off
	off += int64(len(g.target().CalleeSaved)) * 8
	for v := 0; v < n; v++ {
		g.slotOff[v] = off
		if g.isWide[v] {
			off += 16
		} else {
			off += 8
		}
	}
	maxPhis := 0
	for b := range f.Blocks {
		c := 0
		for _, v := range f.Blocks[b].List {
			if f.Instrs[v].Op == qir.OpPhi {
				c++
			}
		}
		if c > maxPhis {
			maxPhis = c
		}
	}
	g.scratchOff = off
	off += int64(maxPhis) * 16
	g.frameSize = (off + 15) &^ 15

	g.rpo = f.RPO()
	g.rpoIdx = make(map[qir.BlockID]int, len(g.rpo))
	for i, b := range g.rpo {
		g.rpoIdx[b] = i
	}
	g.labels = make([]vt.Label, len(f.Blocks))
	for b := range g.labels {
		g.labels[b] = g.asm.NewLabel()
	}

	g.emitPrologue()

	for i, b := range g.rpo {
		g.curBlock = b
		g.asm.Bind(g.labels[b])
		g.clearCaches()
		if b == 0 {
			g.bindParams()
		}
		blk := &f.Blocks[b]
		for _, v := range blk.List {
			in := &f.Instrs[v]
			g.cur = v
			if in.Op == qir.OpPhi || in.Op == qir.OpParam {
				g.stored[v] = true
				continue
			}
			if in.Op.IsTerminator() {
				next := qir.BlockID(-1)
				if i+1 < len(g.rpo) {
					next = g.rpo[i+1]
				}
				if err := g.genTerminator(in, next); err != nil {
					return err
				}
				continue
			}
			if err := g.genInstr(v, in); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *codegen) target() *vt.Target { return g.asm.Target() }

func (g *codegen) emit(i vt.Instr) { g.asm.Emit(i) }

func (g *codegen) emitPrologue() {
	sp := g.target().SP
	g.emit(vt.Instr{Op: vt.SubI, RD: sp, RA: sp, Imm: g.frameSize})
	for i, r := range g.target().CalleeSaved {
		g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: r, Imm: g.calleeSaveOff + int64(i)*8})
	}
}

func (g *codegen) emitEpilogue() {
	sp := g.target().SP
	for i, r := range g.target().CalleeSaved {
		g.emit(vt.Instr{Op: vt.Load64, RD: r, RA: sp, Imm: g.calleeSaveOff + int64(i)*8})
	}
	g.emit(vt.Instr{Op: vt.AddI, RD: sp, RA: sp, Imm: g.frameSize})
	g.emit(vt.Instr{Op: vt.Ret})
}

// bindParams records parameter registers in the cache and eagerly stores
// them to their slots (they are clobbered by the first call otherwise).
func (g *codegen) bindParams() {
	args := g.target().IntArgs
	reg := 0
	sp := g.target().SP
	for i := range g.f.Params {
		v := qir.Value(i)
		r := args[reg]
		g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: r, Imm: g.slotOff[v]})
		g.locs[v].r1 = int16(r)
		g.gpr[r] = v
		reg++
		if g.isWide[v] {
			r2 := args[reg]
			g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: r2, Imm: g.slotOff[v] + 8})
			g.locs[v].r2 = int16(r2)
			g.gpr[r2] = v
			reg++
		}
		g.stored[v] = true
	}
}

// ---------------------------------------------------------------------------
// Register cache management.
// ---------------------------------------------------------------------------

func (g *codegen) pin(r int16)         { g.pinned |= 1 << uint(r) }
func (g *codegen) unpinAll()           { g.pinned = 0; g.fpinned = 0 }
func (g *codegen) pinF(r int16)        { g.fpinned |= 1 << uint(r) }
func (g *codegen) isPinned(r int) bool { return g.pinned&(1<<uint(r)) != 0 }

// spillValue stores v's register contents to its slot if a later use needs
// it and it is not stored yet.
func (g *codegen) spillValue(v qir.Value) {
	if g.stored[v] || g.an.lastUse[v] < g.cur {
		return
	}
	sp := g.target().SP
	l := &g.locs[v]
	if g.isFloat[v] {
		g.emit(vt.Instr{Op: vt.FStore, RA: sp, RB: uint8(l.r1), Imm: g.slotOff[v]})
	} else {
		g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: uint8(l.r1), Imm: g.slotOff[v]})
		if g.isWide[v] && l.r2 != noReg {
			g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: uint8(l.r2), Imm: g.slotOff[v] + 8})
		}
	}
	g.stored[v] = true
}

// dropValue removes v from the register cache without spilling.
func (g *codegen) dropValue(v qir.Value) {
	l := &g.locs[v]
	if g.isFloat[v] {
		if l.r1 != noReg {
			g.fpr[l.r1] = qir.NoValue
		}
	} else {
		if l.r1 != noReg {
			g.gpr[l.r1] = qir.NoValue
		}
		if l.r2 != noReg {
			g.gpr[l.r2] = qir.NoValue
		}
	}
	l.r1, l.r2 = noReg, noReg
}

// flushCaches spills every cached value that may still be needed.
func (g *codegen) flushCaches() {
	for r := 0; r < g.target().NumGPR; r++ {
		if v := g.gpr[r]; v != qir.NoValue && g.locs[v].r1 == int16(r) {
			g.spillValue(v)
		}
	}
	for r := 0; r < g.target().NumFPR; r++ {
		if v := g.fpr[r]; v != qir.NoValue {
			g.spillValue(v)
		}
	}
}

// clearCaches drops all register caches (no spills).
func (g *codegen) clearCaches() {
	for r := range g.gpr {
		if v := g.gpr[r]; v != qir.NoValue {
			g.locs[v].r1, g.locs[v].r2 = noReg, noReg
			g.gpr[r] = qir.NoValue
		}
	}
	for r := range g.fpr {
		if v := g.fpr[r]; v != qir.NoValue {
			g.locs[v].r1 = noReg
			g.fpr[r] = qir.NoValue
		}
	}
}

// killCaches spills then drops everything (block boundary / call).
func (g *codegen) killCaches() {
	g.flushCaches()
	g.clearCaches()
}

// allocGPR picks a free (or evicts the least valuable) general register.
// The loop-depth and last-use heuristics from the paper guide eviction:
// prefer victims defined outside loops with the nearest-past last use.
func (g *codegen) allocGPR() int16 {
	t := g.target()
	best := int16(-1)
	var bestScore int64 = math.MaxInt64
	for _, r := range t.AllocatableGPRs() {
		if g.isPinned(int(r)) {
			continue
		}
		v := g.gpr[r]
		if v == qir.NoValue {
			return int16(r)
		}
		// Eviction score: keep loop values and recently-needed values.
		score := int64(g.an.depth[v])*1_000_000 + int64(g.an.lastUse[v])
		if score < bestScore {
			bestScore = score
			best = int16(r)
		}
	}
	if best == -1 {
		panic("direct: out of registers (all pinned)")
	}
	victim := g.gpr[best]
	g.spillValue(victim)
	if g.locs[victim].r1 == best {
		g.locs[victim].r1 = noReg
	}
	if g.locs[victim].r2 == best {
		g.locs[victim].r2 = noReg
	}
	// If the victim was wide and lost one half, drop the other too (a
	// half-cached wide value is not useful).
	if g.isWide[victim] {
		g.dropValue(victim)
	} else {
		g.gpr[best] = qir.NoValue
	}
	g.gpr[best] = qir.NoValue
	return best
}

func (g *codegen) allocFPR() int16 {
	best := int16(-1)
	var bestScore int64 = math.MaxInt64
	for r := 0; r < g.target().NumFPR; r++ {
		if g.fpinned&(1<<uint(r)) != 0 {
			continue
		}
		v := g.fpr[r]
		if v == qir.NoValue {
			return int16(r)
		}
		score := int64(g.an.depth[v])*1_000_000 + int64(g.an.lastUse[v])
		if score < bestScore {
			bestScore = score
			best = int16(r)
		}
	}
	if best == -1 {
		panic("direct: out of float registers")
	}
	victim := g.fpr[best]
	g.spillValue(victim)
	g.locs[victim].r1 = noReg
	g.fpr[best] = qir.NoValue
	return best
}

// tempGPR allocates a pinned scratch register not bound to any value.
func (g *codegen) tempGPR() int16 {
	r := g.allocGPR()
	g.pin(r)
	return r
}

// useGPR brings v's (low half) into a register and pins it.
func (g *codegen) useGPR(v qir.Value) int16 {
	l := &g.locs[v]
	if l.r1 != noReg {
		g.pin(l.r1)
		return l.r1
	}
	r := g.allocGPR()
	g.pin(r)
	sp := g.target().SP
	g.emit(vt.Instr{Op: vt.Load64, RD: uint8(r), RA: sp, Imm: g.slotOff[v]})
	l.r1 = r
	g.gpr[r] = v
	return r
}

// usePair brings a wide value into two pinned registers.
func (g *codegen) usePair(v qir.Value) (lo, hi int16) {
	l := &g.locs[v]
	sp := g.target().SP
	if l.r1 == noReg {
		r := g.allocGPR()
		g.pin(r)
		g.emit(vt.Instr{Op: vt.Load64, RD: uint8(r), RA: sp, Imm: g.slotOff[v]})
		l.r1 = r
		g.gpr[r] = v
	} else {
		g.pin(l.r1)
	}
	if l.r2 == noReg {
		r := g.allocGPR()
		g.pin(r)
		g.emit(vt.Instr{Op: vt.Load64, RD: uint8(r), RA: sp, Imm: g.slotOff[v] + 8})
		l.r2 = r
		g.gpr[r] = v
	} else {
		g.pin(l.r2)
	}
	return l.r1, l.r2
}

// useFPR brings a float value into a pinned float register.
func (g *codegen) useFPR(v qir.Value) int16 {
	l := &g.locs[v]
	if l.r1 != noReg {
		g.pinF(l.r1)
		return l.r1
	}
	r := g.allocFPR()
	g.pinF(r)
	sp := g.target().SP
	g.emit(vt.Instr{Op: vt.FLoad, RD: uint8(r), RA: sp, Imm: g.slotOff[v]})
	l.r1 = r
	g.fpr[r] = v
	return r
}

// defGPR allocates the destination register for v (pinned).
func (g *codegen) defGPR(v qir.Value) int16 {
	r := g.allocGPR()
	g.pin(r)
	g.locs[v].r1 = r
	g.gpr[r] = v
	return r
}

func (g *codegen) defPair(v qir.Value) (lo, hi int16) {
	r1 := g.allocGPR()
	g.pin(r1)
	r2 := g.allocGPR()
	g.pin(r2)
	g.locs[v] = loc{r1, r2}
	g.gpr[r1] = v
	g.gpr[r2] = v
	return r1, r2
}

func (g *codegen) defFPR(v qir.Value) int16 {
	r := g.allocFPR()
	g.pinF(r)
	g.locs[v].r1 = r
	g.fpr[r] = v
	return r
}

// finishDef applies the store-at-def policy: values live out of their
// defining block (including phi uses on outgoing edges) go to their slot.
func (g *codegen) finishDef(v qir.Value) {
	g.stored[v] = false
	if g.an.live.LiveOut[g.curBlock].Get(v) {
		sp := g.target().SP
		l := &g.locs[v]
		if g.isFloat[v] {
			g.emit(vt.Instr{Op: vt.FStore, RA: sp, RB: uint8(l.r1), Imm: g.slotOff[v]})
		} else {
			g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: uint8(l.r1), Imm: g.slotOff[v]})
			if g.isWide[v] {
				g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: uint8(l.r2), Imm: g.slotOff[v] + 8})
			}
		}
		g.stored[v] = true
	}
	g.unpinAll()
}

// rtID interns a runtime helper name the back-end needs beyond what the
// front-end emitted.
func (g *codegen) rtID(name string) uint32 { return g.mod.RTImport(name) }

var errUnsupported = fmt.Errorf("unsupported operation")
