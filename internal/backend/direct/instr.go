package direct

import (
	"fmt"

	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vt"
)

// mov emits a register move unless source and destination coincide.
func (g *codegen) mov(d, s int16) {
	if d != s {
		g.emit(vt.Instr{Op: vt.MovRR, RD: uint8(d), RA: uint8(s)})
	}
}

// binRR emits d = a op b on the two-address target: mov d,a; op d,b.
func (g *codegen) binRR(op vt.Op, d, a, b int16) {
	g.mov(d, a)
	g.emit(vt.Instr{Op: op, RD: uint8(d), RA: uint8(d), RB: uint8(b)})
}

// binRI emits d = a op imm.
func (g *codegen) binRI(op vt.Op, d, a int16, imm int64) {
	g.mov(d, a)
	g.emit(vt.Instr{Op: op, RD: uint8(d), RA: uint8(d), Imm: imm})
}

// canonReg truncates/sign-extends register r to the canonical form of a
// narrow type.
func (g *codegen) canonReg(t qir.Type, r int16) {
	switch t {
	case qir.I1:
		g.emit(vt.Instr{Op: vt.AndI, RD: uint8(r), RA: uint8(r), Imm: 1})
	case qir.I8:
		g.binRI(vt.ShlI, r, r, 56)
		g.emit(vt.Instr{Op: vt.SarI, RD: uint8(r), RA: uint8(r), Imm: 56})
	case qir.I16:
		g.binRI(vt.ShlI, r, r, 48)
		g.emit(vt.Instr{Op: vt.SarI, RD: uint8(r), RA: uint8(r), Imm: 48})
	case qir.I32:
		g.binRI(vt.ShlI, r, r, 32)
		g.emit(vt.Instr{Op: vt.SarI, RD: uint8(r), RA: uint8(r), Imm: 32})
	}
}

func isNarrow(t qir.Type) bool {
	return t == qir.I1 || t == qir.I8 || t == qir.I16 || t == qir.I32
}

var binOpMap = map[qir.Op]vt.Op{
	qir.OpAdd: vt.Add, qir.OpSub: vt.Sub, qir.OpMul: vt.Mul,
	qir.OpAnd: vt.And, qir.OpOr: vt.Or, qir.OpXor: vt.Xor,
	qir.OpShl: vt.Shl, qir.OpShr: vt.Shr, qir.OpSar: vt.Sar,
	qir.OpRotr: vt.Rotr,
	qir.OpSDiv: vt.SDiv, qir.OpSRem: vt.SRem,
	qir.OpUDiv: vt.UDiv, qir.OpURem: vt.URem,
}

func (g *codegen) genInstr(v qir.Value, in *qir.Instr) error {
	switch in.Op {
	case qir.OpConst:
		d := g.defGPR(v)
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(d), Imm: in.Imm})
		g.finishDef(v)
	case qir.OpConst128:
		lo, hi := g.f.Const128(v)
		dlo, dhi := g.defPair(v)
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dlo), Imm: int64(lo)})
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dhi), Imm: int64(hi)})
		g.finishDef(v)
	case qir.OpConstStr:
		lo, hi := g.env.DB.InternString(g.mod.Strings[in.Imm])
		dlo, dhi := g.defPair(v)
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dlo), Imm: int64(lo)})
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dhi), Imm: int64(hi)})
		g.finishDef(v)
	case qir.OpConstF:
		d := g.defFPR(v)
		g.emit(vt.Instr{Op: vt.FMovRI, RD: uint8(d), Imm: in.Imm})
		g.finishDef(v)
	case qir.OpConstPool:
		// The slot address is a stable property of the DB; the value is
		// whatever BindConstPool wrote there, read at execution time. The
		// pool area is allocated in NewDB, so the loads need no checks.
		// Slots hold canonical sign-extended values: a 64-bit load is the
		// canonical register form for every scalar type.
		t := g.tempGPR()
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(t), Imm: int64(g.env.DB.ConstPoolAddr(int(in.Imm)))})
		switch in.Type {
		case qir.I128, qir.Str:
			dlo, dhi := g.defPair(v)
			g.emit(vt.Instr{Op: uncheckedOf(vt.Load64), RD: uint8(dlo), RA: uint8(t)})
			g.emit(vt.Instr{Op: uncheckedOf(vt.Load64), RD: uint8(dhi), RA: uint8(t), Imm: 8})
		case qir.F64:
			d := g.defFPR(v)
			g.emit(vt.Instr{Op: uncheckedOf(vt.FLoad), RD: uint8(d), RA: uint8(t)})
		default:
			d := g.defGPR(v)
			g.emit(vt.Instr{Op: uncheckedOf(vt.Load64), RD: uint8(d), RA: uint8(t)})
		}
		g.finishDef(v)
	case qir.OpNull:
		d := g.defGPR(v)
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(d), Imm: 0})
		g.finishDef(v)
	case qir.OpFuncAddr:
		d := g.defGPR(v)
		g.asm.EmitMovSym(uint8(d), int32(in.Aux))
		g.finishDef(v)

	case qir.OpAdd, qir.OpSub, qir.OpMul, qir.OpAnd, qir.OpOr, qir.OpXor,
		qir.OpShl, qir.OpShr, qir.OpSar, qir.OpRotr,
		qir.OpSDiv, qir.OpSRem, qir.OpUDiv, qir.OpURem:
		if in.Type == qir.I128 {
			return g.gen128Bin(v, in)
		}
		a := g.useGPR(in.A)
		b := g.useGPR(in.B)
		d := g.defGPR(v)
		vop := binOpMap[in.Op]
		if in.Op == qir.OpShr && isNarrow(in.Type) {
			// Logical shift right needs a zero-extended operand.
			g.mov(d, a)
			g.zextReg(in.Type, d)
			g.emit(vt.Instr{Op: vt.Shr, RD: uint8(d), RA: uint8(d), RB: uint8(b)})
		} else {
			g.binRR(vop, d, a, b)
		}
		if isNarrow(in.Type) {
			switch in.Op {
			case qir.OpAnd, qir.OpOr, qir.OpSar, qir.OpSDiv, qir.OpSRem:
				// Canonical-form preserving.
			default:
				g.canonReg(in.Type, d)
			}
		}
		g.finishDef(v)

	case qir.OpNeg:
		if in.Type == qir.I128 {
			alo, ahi := g.usePair(in.A)
			dlo, dhi := g.defPair(v)
			// d = 0 - a
			g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dlo), Imm: 0})
			g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dhi), Imm: 0})
			t := g.tempGPR()
			// borrow = (0 <u a.lo)
			g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondULT, RD: uint8(t), RA: uint8(dlo), RB: uint8(alo)})
			g.emit(vt.Instr{Op: vt.Sub, RD: uint8(dlo), RA: uint8(dlo), RB: uint8(alo)})
			g.emit(vt.Instr{Op: vt.Sub, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(ahi)})
			g.emit(vt.Instr{Op: vt.Sub, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
			g.finishDef(v)
			return nil
		}
		if in.Type == qir.F64 {
			a := g.useFPR(in.A)
			d := g.defFPR(v)
			t := g.tempGPR()
			g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(t), Imm: -1 << 63})
			t2 := g.tempGPR()
			g.emit(vt.Instr{Op: vt.MovRF, RD: uint8(t2), RA: uint8(a)})
			g.emit(vt.Instr{Op: vt.Xor, RD: uint8(t2), RA: uint8(t2), RB: uint8(t)})
			g.emit(vt.Instr{Op: vt.MovFR, RD: uint8(d), RA: uint8(t2)})
			g.finishDef(v)
			return nil
		}
		a := g.useGPR(in.A)
		d := g.defGPR(v)
		g.mov(d, a)
		g.emit(vt.Instr{Op: vt.Neg, RD: uint8(d), RA: uint8(d)})
		g.canonReg(in.Type, d)
		g.finishDef(v)

	case qir.OpNot:
		a := g.useGPR(in.A)
		d := g.defGPR(v)
		g.mov(d, a)
		g.emit(vt.Instr{Op: vt.Not, RD: uint8(d), RA: uint8(d)})
		g.canonReg(in.Type, d)
		g.finishDef(v)

	case qir.OpSAddTrap, qir.OpSSubTrap, qir.OpSMulTrap:
		return g.genTrapArith(v, in)

	case qir.OpICmp:
		return g.genICmp(v, in)

	case qir.OpZExt:
		from := g.f.ValueType(in.A)
		if from == qir.I128 {
			return fmt.Errorf("zext from i128: %w", errUnsupported)
		}
		if in.Type == qir.I128 {
			a := g.useGPR(in.A)
			dlo, dhi := g.defPair(v)
			g.mov(dlo, a)
			g.zextReg(from, dlo)
			g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dhi), Imm: 0})
		} else {
			a := g.useGPR(in.A)
			d := g.defGPR(v)
			g.mov(d, a)
			g.zextReg(from, d)
		}
		g.finishDef(v)

	case qir.OpSExt:
		from := g.f.ValueType(in.A)
		if from == qir.I128 {
			return fmt.Errorf("sext from i128: %w", errUnsupported)
		}
		a := g.useGPR(in.A)
		if in.Type == qir.I128 {
			dlo, dhi := g.defPair(v)
			g.mov(dlo, a)
			g.mov(dhi, a)
			g.emit(vt.Instr{Op: vt.SarI, RD: uint8(dhi), RA: uint8(dhi), Imm: 63})
		} else {
			d := g.defGPR(v)
			g.mov(d, a) // canonical form is already sign-extended
		}
		g.finishDef(v)

	case qir.OpTrunc:
		if g.f.ValueType(in.A) == qir.I128 {
			alo, _ := g.usePair(in.A)
			d := g.defGPR(v)
			g.mov(d, alo)
			g.canonReg(in.Type, d)
		} else {
			a := g.useGPR(in.A)
			d := g.defGPR(v)
			g.mov(d, a)
			g.canonReg(in.Type, d)
		}
		g.finishDef(v)

	case qir.OpFAdd, qir.OpFSub, qir.OpFMul, qir.OpFDiv:
		a := g.useFPR(in.A)
		b := g.useFPR(in.B)
		d := g.defFPR(v)
		var op vt.Op
		switch in.Op {
		case qir.OpFAdd:
			op = vt.FAdd
		case qir.OpFSub:
			op = vt.FSub
		case qir.OpFMul:
			op = vt.FMul
		default:
			op = vt.FDiv
		}
		if d != a {
			g.emit(vt.Instr{Op: vt.FMovRR, RD: uint8(d), RA: uint8(a)})
		}
		g.emit(vt.Instr{Op: op, RD: uint8(d), RA: uint8(d), RB: uint8(b)})
		g.finishDef(v)

	case qir.OpFCmp:
		a := g.useFPR(in.A)
		b := g.useFPR(in.B)
		d := g.defGPR(v)
		g.emit(vt.Instr{Op: vt.FCmp, Cond: vt.Cond(in.Cmp()), RD: uint8(d), RA: uint8(a), RB: uint8(b)})
		g.finishDef(v)

	case qir.OpSIToFP:
		a := g.useGPR(in.A)
		d := g.defFPR(v)
		g.emit(vt.Instr{Op: vt.CvtSI2F, RD: uint8(d), RA: uint8(a)})
		g.finishDef(v)

	case qir.OpFPToSI:
		a := g.useFPR(in.A)
		d := g.defGPR(v)
		g.emit(vt.Instr{Op: vt.CvtF2SI, RD: uint8(d), RA: uint8(a)})
		g.canonReg(in.Type, d)
		g.finishDef(v)

	case qir.OpFBits:
		a := g.useFPR(in.A)
		d := g.defGPR(v)
		g.emit(vt.Instr{Op: vt.MovRF, RD: uint8(d), RA: uint8(a)})
		g.finishDef(v)

	case qir.OpBitsF:
		a := g.useGPR(in.A)
		d := g.defFPR(v)
		g.emit(vt.Instr{Op: vt.MovFR, RD: uint8(d), RA: uint8(a)})
		g.finishDef(v)

	case qir.OpCrc32:
		a := g.useGPR(in.A)
		b := g.useGPR(in.B)
		d := g.defGPR(v)
		g.binRR(vt.Crc32, d, a, b)
		g.finishDef(v)

	case qir.OpLMulFold:
		a := g.useGPR(in.A)
		b := g.useGPR(in.B)
		d := g.defGPR(v)
		t := g.tempGPR()
		g.emit(vt.Instr{Op: vt.MulWideU, RD: uint8(d), RC: uint8(t), RA: uint8(a), RB: uint8(b)})
		g.emit(vt.Instr{Op: vt.Xor, RD: uint8(d), RA: uint8(d), RB: uint8(t)})
		g.finishDef(v)

	case qir.OpGEP:
		base := g.useGPR(in.A)
		d := g.defGPR(v)
		if in.B != qir.NoValue {
			idx := g.useGPR(in.B)
			t := g.tempGPR()
			g.mov(t, idx)
			if in.Aux != 1 {
				g.emit(vt.Instr{Op: vt.MulI, RD: uint8(t), RA: uint8(t), Imm: int64(in.Aux)})
			}
			g.emit(vt.Instr{Op: vt.Lea, RD: uint8(d), RA: uint8(base), Imm: in.Imm})
			g.emit(vt.Instr{Op: vt.Add, RD: uint8(d), RA: uint8(d), RB: uint8(t)})
		} else {
			g.emit(vt.Instr{Op: vt.Lea, RD: uint8(d), RA: uint8(base), Imm: in.Imm})
		}
		g.finishDef(v)

	case qir.OpLoad:
		addr := g.useGPR(in.A)
		switch in.Type {
		case qir.I128, qir.Str:
			dlo, dhi := g.defPair(v)
			g.emit(vt.Instr{Op: memOp(vt.Load64, in), RD: uint8(dlo), RA: uint8(addr)})
			g.emit(vt.Instr{Op: memOp(vt.Load64, in), RD: uint8(dhi), RA: uint8(addr), Imm: 8})
		case qir.F64:
			d := g.defFPR(v)
			g.emit(vt.Instr{Op: memOp(vt.FLoad, in), RD: uint8(d), RA: uint8(addr)})
		default:
			d := g.defGPR(v)
			g.emit(vt.Instr{Op: memOp(loadOp(in.Type), in), RD: uint8(d), RA: uint8(addr)})
			if in.Type == qir.I1 {
				g.emit(vt.Instr{Op: vt.AndI, RD: uint8(d), RA: uint8(d), Imm: 1})
			}
		}
		g.finishDef(v)

	case qir.OpStore:
		addr := g.useGPR(in.A)
		vt_ := g.f.ValueType(in.B)
		switch vt_ {
		case qir.I128, qir.Str:
			lo, hi := g.usePair(in.B)
			g.emit(vt.Instr{Op: memOp(vt.Store64, in), RA: uint8(addr), RB: uint8(lo)})
			g.emit(vt.Instr{Op: memOp(vt.Store64, in), RA: uint8(addr), RB: uint8(hi), Imm: 8})
		case qir.F64:
			fv := g.useFPR(in.B)
			g.emit(vt.Instr{Op: memOp(vt.FStore, in), RA: uint8(addr), RB: uint8(fv)})
		default:
			val := g.useGPR(in.B)
			g.emit(vt.Instr{Op: memOp(storeOp(vt_), in), RA: uint8(addr), RB: uint8(val)})
		}
		g.unpinAll()

	case qir.OpAtomicAdd:
		// Single-threaded machine: plain load-add-store.
		addr := g.useGPR(in.A)
		b := g.useGPR(in.B)
		d := g.defGPR(v)
		t := g.tempGPR()
		g.emit(vt.Instr{Op: loadOp(in.Type), RD: uint8(d), RA: uint8(addr)})
		g.mov(t, d)
		g.emit(vt.Instr{Op: vt.Add, RD: uint8(t), RA: uint8(t), RB: uint8(b)})
		g.emit(vt.Instr{Op: storeOp(in.Type), RA: uint8(addr), RB: uint8(t)})
		g.finishDef(v)

	case qir.OpSelect:
		return g.genSelect(v, in)

	case qir.OpCall:
		return g.genCall(v, in)

	default:
		return fmt.Errorf("op %s: %w", in.Op, errUnsupported)
	}
	return nil
}

// zextReg zero-extends register r from the given narrow type.
func (g *codegen) zextReg(from qir.Type, r int16) {
	switch from {
	case qir.I1:
		g.emit(vt.Instr{Op: vt.AndI, RD: uint8(r), RA: uint8(r), Imm: 1})
	case qir.I8:
		g.emit(vt.Instr{Op: vt.AndI, RD: uint8(r), RA: uint8(r), Imm: 0xFF})
	case qir.I16:
		g.emit(vt.Instr{Op: vt.AndI, RD: uint8(r), RA: uint8(r), Imm: 0xFFFF})
	case qir.I32:
		g.emit(vt.Instr{Op: vt.AndI, RD: uint8(r), RA: uint8(r), Imm: 0xFFFFFFFF})
	}
}

// uncheckedOf returns the unconditionally-unchecked variant of a memory op
// (for accesses the back-end itself knows are valid, like const-pool slots).
func uncheckedOf(o vt.Op) vt.Op {
	if u, ok := vt.UncheckedMemOf(o); ok {
		return u
	}
	return o
}

// memOp selects the unchecked variant of a memory op when the QIR
// instruction carries the static-analysis "check eliminated" mark.
func memOp(o vt.Op, in *qir.Instr) vt.Op {
	if in.Unchecked() {
		if u, ok := vt.UncheckedMemOf(o); ok {
			return u
		}
	}
	return o
}

func loadOp(t qir.Type) vt.Op {
	switch t {
	case qir.I1:
		return vt.Load8
	case qir.I8:
		return vt.Load8S
	case qir.I16:
		return vt.Load16S
	case qir.I32:
		return vt.Load32S
	default:
		return vt.Load64
	}
}

func storeOp(t qir.Type) vt.Op {
	switch t {
	case qir.I1, qir.I8:
		return vt.Store8
	case qir.I16:
		return vt.Store16
	case qir.I32:
		return vt.Store32
	default:
		return vt.Store64
	}
}

// gen128Bin lowers 128-bit add/sub/mul/logic/shift.
func (g *codegen) gen128Bin(v qir.Value, in *qir.Instr) error {
	switch in.Op {
	case qir.OpAdd, qir.OpSub:
		alo, ahi := g.usePair(in.A)
		blo, bhi := g.usePair(in.B)
		dlo, dhi := g.defPair(v)
		t := g.tempGPR()
		if in.Op == qir.OpAdd {
			g.binRR(vt.Add, dlo, alo, blo)
			g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondULT, RD: uint8(t), RA: uint8(dlo), RB: uint8(alo)})
			g.binRR(vt.Add, dhi, ahi, bhi)
			g.emit(vt.Instr{Op: vt.Add, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
		} else {
			g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondULT, RD: uint8(t), RA: uint8(alo), RB: uint8(blo)})
			g.binRR(vt.Sub, dlo, alo, blo)
			g.binRR(vt.Sub, dhi, ahi, bhi)
			g.emit(vt.Instr{Op: vt.Sub, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
		}
		g.finishDef(v)
	case qir.OpMul:
		alo, ahi := g.usePair(in.A)
		blo, bhi := g.usePair(in.B)
		dlo, dhi := g.defPair(v)
		t := g.tempGPR()
		g.emit(vt.Instr{Op: vt.MulWideU, RD: uint8(dlo), RC: uint8(dhi), RA: uint8(alo), RB: uint8(blo)})
		g.mov(t, alo)
		g.emit(vt.Instr{Op: vt.Mul, RD: uint8(t), RA: uint8(t), RB: uint8(bhi)})
		g.emit(vt.Instr{Op: vt.Add, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
		g.mov(t, ahi)
		g.emit(vt.Instr{Op: vt.Mul, RD: uint8(t), RA: uint8(t), RB: uint8(blo)})
		g.emit(vt.Instr{Op: vt.Add, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
		g.finishDef(v)
	case qir.OpAnd, qir.OpOr, qir.OpXor:
		alo, ahi := g.usePair(in.A)
		blo, bhi := g.usePair(in.B)
		dlo, dhi := g.defPair(v)
		op := binOpMap[in.Op]
		g.binRR(op, dlo, alo, blo)
		g.binRR(op, dhi, ahi, bhi)
		g.finishDef(v)
	case qir.OpShl, qir.OpShr, qir.OpSar:
		// Only constant shift amounts are generated by the query
		// compiler (hash hi-extraction); support those.
		bi := &g.f.Instrs[in.B]
		if bi.Op != qir.OpConst {
			return fmt.Errorf("dynamic 128-bit shift: %w", errUnsupported)
		}
		k := uint(bi.Imm) & 127
		alo, ahi := g.usePair(in.A)
		dlo, dhi := g.defPair(v)
		g.gen128ShiftConst(in.Op, dlo, dhi, alo, ahi, k)
		g.finishDef(v)
	default:
		return fmt.Errorf("128-bit %s: %w", in.Op, errUnsupported)
	}
	return nil
}

func (g *codegen) gen128ShiftConst(op qir.Op, dlo, dhi, alo, ahi int16, k uint) {
	switch {
	case k == 0:
		g.mov(dlo, alo)
		g.mov(dhi, ahi)
	case op == qir.OpShr && k == 64:
		g.mov(dlo, ahi)
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dhi), Imm: 0})
	case op == qir.OpSar && k == 64:
		g.mov(dlo, ahi)
		g.mov(dhi, ahi)
		g.emit(vt.Instr{Op: vt.SarI, RD: uint8(dhi), RA: uint8(dhi), Imm: 63})
	case op == qir.OpShl && k == 64:
		g.mov(dhi, alo)
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dlo), Imm: 0})
	case k < 64 && op == qir.OpShl:
		// dhi = ahi<<k | alo>>(64-k); dlo = alo<<k
		t := g.tempGPR()
		g.mov(t, alo)
		g.emit(vt.Instr{Op: vt.ShrI, RD: uint8(t), RA: uint8(t), Imm: int64(64 - k)})
		g.binRI(vt.ShlI, dhi, ahi, int64(k))
		g.emit(vt.Instr{Op: vt.Or, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
		g.binRI(vt.ShlI, dlo, alo, int64(k))
	case k < 64:
		// shr/sar: dlo = alo>>k | ahi<<(64-k); dhi = ahi >>(s) k
		t := g.tempGPR()
		g.mov(t, ahi)
		g.emit(vt.Instr{Op: vt.ShlI, RD: uint8(t), RA: uint8(t), Imm: int64(64 - k)})
		g.binRI(vt.ShrI, dlo, alo, int64(k))
		g.emit(vt.Instr{Op: vt.Or, RD: uint8(dlo), RA: uint8(dlo), RB: uint8(t)})
		shift := vt.ShrI
		if op == qir.OpSar {
			shift = vt.SarI
		}
		g.binRI(shift, dhi, ahi, int64(k))
	case op == qir.OpShl: // k > 64
		g.binRI(vt.ShlI, dhi, alo, int64(k-64))
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dlo), Imm: 0})
	case op == qir.OpShr:
		g.binRI(vt.ShrI, dlo, ahi, int64(k-64))
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(dhi), Imm: 0})
	default: // sar, k > 64
		g.binRI(vt.SarI, dlo, ahi, int64(k-64))
		g.binRI(vt.SarI, dhi, ahi, 63)
	}
}

// genTrapArith lowers the overflow-checking arithmetic (SQL semantics).
func (g *codegen) genTrapArith(v qir.Value, in *qir.Instr) error {
	if in.Type == qir.I128 {
		return g.gen128TrapArith(v, in)
	}
	if isNarrow(in.Type) {
		// Do the operation at 64 bits and trap when the result does not
		// round-trip through the narrow width.
		a := g.useGPR(in.A)
		b := g.useGPR(in.B)
		d := g.defGPR(v)
		var op vt.Op
		switch in.Op {
		case qir.OpSAddTrap:
			op = vt.Add
		case qir.OpSSubTrap:
			op = vt.Sub
		default:
			op = vt.Mul
		}
		g.binRR(op, d, a, b)
		t := g.tempGPR()
		g.mov(t, d)
		g.canonReg(in.Type, t)
		t2 := g.tempGPR()
		g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondNE, RD: uint8(t2), RA: uint8(t), RB: uint8(d)})
		g.emit(vt.Instr{Op: vt.TrapNZ, RA: uint8(t2), Imm: int64(vt.TrapOverflow)})
		g.mov(d, t)
		g.finishDef(v)
		return nil
	}
	// 64-bit.
	a := g.useGPR(in.A)
	b := g.useGPR(in.B)
	d := g.defGPR(v)
	switch in.Op {
	case qir.OpSAddTrap, qir.OpSSubTrap:
		var op vt.Op = vt.Add
		if in.Op == qir.OpSSubTrap {
			op = vt.Sub
		}
		g.binRR(op, d, a, b)
		// add: overflow iff (d^a)&(d^b) < 0; sub: (a^b)&(d^a) < 0.
		t1 := g.tempGPR()
		t2 := g.tempGPR()
		if in.Op == qir.OpSAddTrap {
			g.binRR(vt.Xor, t1, d, a)
			g.binRR(vt.Xor, t2, d, b)
		} else {
			g.binRR(vt.Xor, t1, a, b)
			g.binRR(vt.Xor, t2, d, a)
		}
		g.emit(vt.Instr{Op: vt.And, RD: uint8(t1), RA: uint8(t1), RB: uint8(t2)})
		g.emit(vt.Instr{Op: vt.ShrI, RD: uint8(t1), RA: uint8(t1), Imm: 63})
		g.emit(vt.Instr{Op: vt.TrapNZ, RA: uint8(t1), Imm: int64(vt.TrapOverflow)})
	case qir.OpSMulTrap:
		t := g.tempGPR()
		g.emit(vt.Instr{Op: vt.MulWideS, RD: uint8(d), RC: uint8(t), RA: uint8(a), RB: uint8(b)})
		t2 := g.tempGPR()
		g.mov(t2, d)
		g.emit(vt.Instr{Op: vt.SarI, RD: uint8(t2), RA: uint8(t2), Imm: 63})
		g.emit(vt.Instr{Op: vt.Xor, RD: uint8(t2), RA: uint8(t2), RB: uint8(t)})
		g.emit(vt.Instr{Op: vt.TrapNZ, RA: uint8(t2), Imm: int64(vt.TrapOverflow)})
	}
	g.finishDef(v)
	return nil
}

func (g *codegen) gen128TrapArith(v qir.Value, in *qir.Instr) error {
	if in.Op == qir.OpSMulTrap {
		// The hand-optimized 128-bit multiplication helper (paper
		// Sec. V-A1) lives in the runtime.
		return g.genHelperCall(v, rt.FnI128MulOv, []qir.Value{in.A, in.B})
	}
	alo, ahi := g.usePair(in.A)
	blo, bhi := g.usePair(in.B)
	dlo, dhi := g.defPair(v)
	t := g.tempGPR()
	if in.Op == qir.OpSAddTrap {
		g.binRR(vt.Add, dlo, alo, blo)
		g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondULT, RD: uint8(t), RA: uint8(dlo), RB: uint8(alo)})
		g.binRR(vt.Add, dhi, ahi, bhi)
		g.emit(vt.Instr{Op: vt.Add, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
		// Signed overflow on the high words.
		t2 := g.tempGPR()
		g.binRR(vt.Xor, t, dhi, ahi)
		g.binRR(vt.Xor, t2, dhi, bhi)
		g.emit(vt.Instr{Op: vt.And, RD: uint8(t), RA: uint8(t), RB: uint8(t2)})
		g.emit(vt.Instr{Op: vt.ShrI, RD: uint8(t), RA: uint8(t), Imm: 63})
		g.emit(vt.Instr{Op: vt.TrapNZ, RA: uint8(t), Imm: int64(vt.TrapOverflow)})
	} else {
		g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondULT, RD: uint8(t), RA: uint8(alo), RB: uint8(blo)})
		g.binRR(vt.Sub, dlo, alo, blo)
		g.binRR(vt.Sub, dhi, ahi, bhi)
		g.emit(vt.Instr{Op: vt.Sub, RD: uint8(dhi), RA: uint8(dhi), RB: uint8(t)})
		t2 := g.tempGPR()
		g.binRR(vt.Xor, t, ahi, bhi)
		g.binRR(vt.Xor, t2, dhi, ahi)
		g.emit(vt.Instr{Op: vt.And, RD: uint8(t), RA: uint8(t), RB: uint8(t2)})
		g.emit(vt.Instr{Op: vt.ShrI, RD: uint8(t), RA: uint8(t), Imm: 63})
		g.emit(vt.Instr{Op: vt.TrapNZ, RA: uint8(t), Imm: int64(vt.TrapOverflow)})
	}
	g.finishDef(v)
	return nil
}

// strictCond maps a predicate to its strict form (for high-word compare).
func strictCond(c qir.Cmp) vt.Cond {
	switch c {
	case qir.CmpSLT, qir.CmpSLE:
		return vt.CondSLT
	case qir.CmpSGT, qir.CmpSGE:
		return vt.CondSGT
	case qir.CmpULT, qir.CmpULE:
		return vt.CondULT
	case qir.CmpUGT, qir.CmpUGE:
		return vt.CondUGT
	}
	panic("direct: strictCond on equality")
}

// unsignedLo maps a predicate to the unsigned low-word form.
func unsignedLo(c qir.Cmp) vt.Cond {
	switch c {
	case qir.CmpSLT, qir.CmpULT:
		return vt.CondULT
	case qir.CmpSLE, qir.CmpULE:
		return vt.CondULE
	case qir.CmpSGT, qir.CmpUGT:
		return vt.CondUGT
	case qir.CmpSGE, qir.CmpUGE:
		return vt.CondUGE
	}
	panic("direct: unsignedLo on equality")
}

func (g *codegen) genICmp(v qir.Value, in *qir.Instr) error {
	if g.f.ValueType(in.A) != qir.I128 {
		a := g.useGPR(in.A)
		b := g.useGPR(in.B)
		d := g.defGPR(v)
		g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.Cond(in.Cmp()), RD: uint8(d), RA: uint8(a), RB: uint8(b)})
		g.finishDef(v)
		return nil
	}
	alo, ahi := g.usePair(in.A)
	blo, bhi := g.usePair(in.B)
	d := g.defGPR(v)
	switch c := in.Cmp(); c {
	case qir.CmpEQ, qir.CmpNE:
		t1 := g.tempGPR()
		t2 := g.tempGPR()
		g.binRR(vt.Xor, t1, alo, blo)
		g.binRR(vt.Xor, t2, ahi, bhi)
		g.emit(vt.Instr{Op: vt.Or, RD: uint8(t1), RA: uint8(t1), RB: uint8(t2)})
		g.emit(vt.Instr{Op: vt.MovRI, RD: uint8(t2), Imm: 0})
		cond := vt.CondEQ
		if c == qir.CmpNE {
			cond = vt.CondNE
		}
		g.emit(vt.Instr{Op: vt.SetCC, Cond: cond, RD: uint8(d), RA: uint8(t1), RB: uint8(t2)})
	default:
		t1 := g.tempGPR()
		t2 := g.tempGPR()
		t3 := g.tempGPR()
		g.emit(vt.Instr{Op: vt.SetCC, Cond: strictCond(c), RD: uint8(t1), RA: uint8(ahi), RB: uint8(bhi)})
		g.emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondEQ, RD: uint8(t2), RA: uint8(ahi), RB: uint8(bhi)})
		g.emit(vt.Instr{Op: vt.SetCC, Cond: unsignedLo(c), RD: uint8(t3), RA: uint8(alo), RB: uint8(blo)})
		g.emit(vt.Instr{Op: vt.And, RD: uint8(t2), RA: uint8(t2), RB: uint8(t3)})
		g.mov(d, t1)
		g.emit(vt.Instr{Op: vt.Or, RD: uint8(d), RA: uint8(d), RB: uint8(t2)})
	}
	g.finishDef(v)
	return nil
}

// genSelect lowers select branch-free via the xor-mask trick (no
// conditional moves in the ISA, and in-block branches would invalidate the
// register cache discipline).
func (g *codegen) genSelect(v qir.Value, in *qir.Instr) error {
	cond := g.useGPR(in.A)
	mask := g.tempGPR()
	g.mov(mask, cond)
	g.emit(vt.Instr{Op: vt.Neg, RD: uint8(mask), RA: uint8(mask)}) // 0 or ~0
	sel := func(d, x, y int16) {
		t := g.tempGPR()
		g.mov(t, x)
		g.emit(vt.Instr{Op: vt.Xor, RD: uint8(t), RA: uint8(t), RB: uint8(y)})
		g.emit(vt.Instr{Op: vt.And, RD: uint8(t), RA: uint8(t), RB: uint8(mask)})
		g.mov(d, y)
		g.emit(vt.Instr{Op: vt.Xor, RD: uint8(d), RA: uint8(d), RB: uint8(t)})
	}
	switch {
	case g.isWide[v]:
		xlo, xhi := g.usePair(in.B)
		ylo, yhi := g.usePair(in.C)
		dlo, dhi := g.defPair(v)
		sel(dlo, xlo, ylo)
		sel(dhi, xhi, yhi)
	case g.isFloat[v]:
		x := g.useFPR(in.B)
		y := g.useFPR(in.C)
		tx := g.tempGPR()
		ty := g.tempGPR()
		g.emit(vt.Instr{Op: vt.MovRF, RD: uint8(tx), RA: uint8(x)})
		g.emit(vt.Instr{Op: vt.MovRF, RD: uint8(ty), RA: uint8(y)})
		td := g.tempGPR()
		sel(td, tx, ty)
		d := g.defFPR(v)
		g.emit(vt.Instr{Op: vt.MovFR, RD: uint8(d), RA: uint8(td)})
	default:
		x := g.useGPR(in.B)
		y := g.useGPR(in.C)
		d := g.defGPR(v)
		sel(d, x, y)
	}
	g.finishDef(v)
	return nil
}
