package direct

import (
	"fmt"

	"qcc/internal/qir"
	"qcc/internal/vt"
)

// genTerminator emits the block terminator, including phi moves on outgoing
// edges; next is the block emitted directly after (for fall-through).
func (g *codegen) genTerminator(in *qir.Instr, next qir.BlockID) error {
	switch in.Op {
	case qir.OpRet:
		if in.A != qir.NoValue {
			g.moveToRet(in.A)
		}
		g.emitEpilogue()
		return nil
	case qir.OpUnreachable:
		g.emit(vt.Instr{Op: vt.Trap, Imm: int64(vt.TrapUnreachable)})
		return nil
	case qir.OpBr:
		succ := qir.BlockID(in.Aux)
		g.killCaches()
		g.genEdge(g.curBlock, succ)
		if succ != next {
			g.emit(vt.Instr{Op: vt.Br, Target: int32(g.labels[succ])})
		}
		return nil
	case qir.OpCondBr:
		trueBlk := qir.BlockID(in.Aux)
		falseBlk := in.B
		r := g.useGPR(in.A)
		g.flushCaches()
		g.clearCaches()
		g.unpinAll()
		trueMoves := g.edgeHasMoves(g.curBlock, trueBlk)
		if !trueMoves {
			g.emit(vt.Instr{Op: vt.BrNZ, RA: uint8(r), Target: int32(g.labels[trueBlk])})
			g.genEdge(g.curBlock, falseBlk)
			if falseBlk != next {
				g.emit(vt.Instr{Op: vt.Br, Target: int32(g.labels[falseBlk])})
			}
			return nil
		}
		lt := g.asm.NewLabel()
		g.emit(vt.Instr{Op: vt.BrNZ, RA: uint8(r), Target: int32(lt)})
		g.genEdge(g.curBlock, falseBlk)
		g.emit(vt.Instr{Op: vt.Br, Target: int32(g.labels[falseBlk])})
		g.asm.Bind(lt)
		g.genEdge(g.curBlock, trueBlk)
		if trueBlk != next {
			g.emit(vt.Instr{Op: vt.Br, Target: int32(g.labels[trueBlk])})
		}
		return nil
	}
	return fmt.Errorf("terminator %s: %w", in.Op, errUnsupported)
}

// moveToRet places the return value into the return registers.
func (g *codegen) moveToRet(v qir.Value) {
	t := g.target()
	r0, r1 := int16(t.IntRet[0]), int16(t.IntRet[1])
	switch {
	case g.isWide[v]:
		lo, hi := g.usePair(v)
		if hi == r0 {
			tmp := g.tempGPR()
			g.mov(tmp, hi)
			hi = tmp
		}
		g.mov(r0, lo)
		g.mov(r1, hi)
	case g.isFloat[v]:
		f := g.useFPR(v)
		g.emit(vt.Instr{Op: vt.MovRF, RD: uint8(r0), RA: uint8(f)})
	default:
		r := g.useGPR(v)
		g.mov(r0, r)
	}
	g.unpinAll()
}

// edgePhis collects (phi, incoming) pairs for a CFG edge.
func (g *codegen) edgePhis(pred, succ qir.BlockID) (phis, srcs []qir.Value) {
	for _, v := range g.f.Blocks[succ].List {
		if g.f.Instrs[v].Op != qir.OpPhi {
			break
		}
		pairs := g.f.PhiPairs(v)
		for i := 0; i < len(pairs); i += 2 {
			if pairs[i] == pred {
				phis = append(phis, v)
				srcs = append(srcs, pairs[i+1])
				break
			}
		}
	}
	return phis, srcs
}

func (g *codegen) edgeHasMoves(pred, succ qir.BlockID) bool {
	phis, _ := g.edgePhis(pred, succ)
	return len(phis) > 0
}

// genEdge emits the phi moves for one edge. Caches must be dead (killed);
// registers 0 and 1 are used as raw transfer scratch. Values are staged
// through the scratch frame area to make the parallel copy safe.
func (g *codegen) genEdge(pred, succ qir.BlockID) {
	phis, srcs := g.edgePhis(pred, succ)
	if len(phis) == 0 {
		return
	}
	sp := g.target().SP
	copySlot := func(dst, src int64, wide bool) {
		g.emit(vt.Instr{Op: vt.Load64, RD: 0, RA: sp, Imm: src})
		g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: 0, Imm: dst})
		if wide {
			g.emit(vt.Instr{Op: vt.Load64, RD: 1, RA: sp, Imm: src + 8})
			g.emit(vt.Instr{Op: vt.Store64, RA: sp, RB: 1, Imm: dst + 8})
		}
	}
	if len(phis) == 1 {
		copySlot(g.slotOff[phis[0]], g.slotOff[srcs[0]], g.isWide[phis[0]])
		return
	}
	for k := range phis {
		copySlot(g.scratchOff+int64(k)*16, g.slotOff[srcs[k]], g.isWide[phis[k]])
	}
	for k := range phis {
		copySlot(g.slotOff[phis[k]], g.scratchOff+int64(k)*16, g.isWide[phis[k]])
	}
}

// genCall lowers a runtime call: flush, stage arguments into the argument
// registers, emit the call, drop caller-saved caches, bind the result.
func (g *codegen) genCall(v qir.Value, in *qir.Instr) error {
	args := g.f.CallArgs(v)
	return g.emitCall(v, in.Type, in.Aux, args)
}

// genHelperCall is used by the lowering itself for operations routed to
// runtime helpers (e.g. 128-bit multiplication with overflow check).
func (g *codegen) genHelperCall(v qir.Value, name string, args []qir.Value) error {
	id := g.rtID(name)
	return g.emitCall(v, g.f.Instrs[v].Type, id, args)
}

func (g *codegen) emitCall(v qir.Value, ret qir.Type, rtid uint32, args []qir.Value) error {
	t := g.target()
	g.flushCaches()
	g.unpinAll()
	sp := t.SP

	// stage writes one 64-bit word into an argument register.
	stage := func(dst uint8, val qir.Value, half int) error {
		// Drop whatever cache entry currently owns dst.
		if owner := g.gpr[dst]; owner != qir.NoValue && owner != val {
			g.dropValue(owner)
		}
		l := &g.locs[val]
		var src int16 = noReg
		if g.isFloat[val] {
			if l.r1 != noReg {
				g.emit(vt.Instr{Op: vt.MovRF, RD: dst, RA: uint8(l.r1)})
				return nil
			}
			g.emit(vt.Instr{Op: vt.Load64, RD: dst, RA: sp, Imm: g.slotOff[val]})
			return nil
		}
		if half == 0 {
			src = l.r1
		} else {
			src = l.r2
		}
		if src != noReg {
			g.mov(int16(dst), src)
			return nil
		}
		if !g.stored[val] {
			return fmt.Errorf("direct: internal: arg value %d not available", val)
		}
		g.emit(vt.Instr{Op: vt.Load64, RD: dst, RA: sp, Imm: g.slotOff[val] + int64(half)*8})
		return nil
	}

	reg := 0
	for _, a := range args {
		if reg >= len(t.IntArgs) {
			return fmt.Errorf("direct: too many call arguments")
		}
		if err := stage(t.IntArgs[reg], a, 0); err != nil {
			return err
		}
		reg++
		if g.isWide[a] {
			if reg >= len(t.IntArgs) {
				return fmt.Errorf("direct: too many call arguments")
			}
			if err := stage(t.IntArgs[reg], a, 1); err != nil {
				return err
			}
			reg++
		}
	}
	g.emit(vt.Instr{Op: vt.CallRT, Imm: int64(rtid)})

	// Caller-saved registers are dead after the call.
	for _, r := range t.CallerSaved {
		if owner := g.gpr[r]; owner != qir.NoValue {
			g.dropValue(owner)
		}
	}
	for r := 0; r < t.NumFPR; r++ {
		if owner := g.fpr[r]; owner != qir.NoValue {
			g.dropValue(owner)
		}
	}

	if ret == qir.Void {
		return nil
	}
	r0, r1 := int16(t.IntRet[0]), int16(t.IntRet[1])
	switch {
	case ret.Is128():
		dlo, dhi := g.defPair(v)
		if dlo == r1 {
			// Avoid clobbering the high return half.
			g.mov(dhi, r1)
			g.mov(dlo, r0)
		} else {
			g.mov(dlo, r0)
			g.mov(dhi, r1)
		}
	case ret == qir.F64:
		d := g.defFPR(v)
		g.emit(vt.Instr{Op: vt.MovFR, RD: uint8(d), RA: uint8(r0)})
	default:
		d := g.defGPR(v)
		g.mov(d, r0)
	}
	g.finishDef(v)
	return nil
}
