// Package direct implements the DirectEmit back-end from the paper: a
// single-pass compiler translating QIR straight to vx64 machine code.
//
// One analysis pass computes the dominator tree, natural loops and
// block-granularity liveness; one code generation pass then walks the blocks
// in reverse postorder, selecting instructions and allocating registers
// greedily on the fly. Values live across basic blocks reside in stack
// slots; within a block they are cached in registers, with the loop-depth
// and last-use heuristics from the paper guiding evictions. Encoding uses
// the branch-minimized fast encoder (8-byte immediates always). Only vx64 is
// supported — the paper notes the AArch64 port was never merged.
//
// The pipeline is exposed per function (backend.FuncEngine): every function
// is encoded into its own position-independent buffer whose function-address
// relocations are resolved at Link, so the parallel driver can compile
// functions on worker goroutines and the code cache can reuse buffers across
// modules.
package direct

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/mcv"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the DirectEmit back-end.
type Engine struct{}

// New returns the DirectEmit engine.
func New() *Engine { return &Engine{} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "DirectEmit" }

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Module exposes the linked machine-code image (byte-identity tests,
// disassembly tooling).
func (x *exec) Module() *vm.Module { return x.mod }

// Compile implements backend.Engine via the shared sequential unit driver.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	return backend.CompileUnits(e, mod, env)
}

// moduleCompiler implements backend.ModuleCompiler for one (module, env).
type moduleCompiler struct {
	mod *qir.Module
	env *backend.Env
}

// unit is the per-function payload: position-independent code (branches are
// PC-relative, immediates fixed-width) plus unit-relative function-address
// relocations and the frame size needed to build CFI at link time.
type unit struct {
	code      []byte
	relocs    []vt.Reloc
	frameSize int64
}

// BeginModule implements backend.FuncEngine. All shared-state mutation
// happens here, before any (possibly concurrent) CompileFunc: string
// constants are interned into machine memory and the one runtime helper
// DirectEmit can emit (128-bit multiply overflow) is imported into the
// module's runtime-name table.
func (e *Engine) BeginModule(mod *qir.Module, env *backend.Env, ph *backend.Phaser) (backend.ModuleCompiler, error) {
	if env.Arch != vt.VX64 {
		return nil, &backend.ErrUnsupported{Backend: "direct", Reason: "only vx64 is supported"}
	}
	backend.PreIntern(mod, env.DB)
	for _, f := range mod.Funcs {
		for b := range f.Blocks {
			for _, v := range f.Blocks[b].List {
				in := &f.Instrs[v]
				if in.Op == qir.OpSMulTrap && in.Type == qir.I128 {
					mod.RTImport(rt.FnI128MulOv)
				}
			}
		}
	}
	return &moduleCompiler{mod: mod, env: env}, nil
}

// Variant implements backend.ModuleCompiler (cache keying).
func (c *moduleCompiler) Variant() string { return "direct/v1" }

// CompileFunc implements backend.ModuleCompiler: the analysis and single
// code-generation pass for one function, into a fresh encoder.
func (c *moduleCompiler) CompileFunc(i int, ph *backend.Phaser) (*backend.Unit, error) {
	f := c.mod.Funcs[i]

	// Analysis pass.
	sp := ph.Begin("Analysis")
	a := analyze(f)
	sp.End()

	// Code generation pass.
	sp = ph.Begin("Codegen")
	asm := vt.NewFastX64Assembler()
	g := &codegen{f: f, asm: asm, an: a, env: c.env, mod: c.mod}
	if err := g.genFunc(); err != nil {
		sp.End()
		return nil, fmt.Errorf("direct: %s: %w", f.Name, err)
	}
	code, relocs, err := asm.Finish()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("direct: %s: %w", f.Name, err)
	}
	return &backend.Unit{
		Index: i, Name: f.Name, Bytes: len(code),
		Payload: &unit{code: code, relocs: relocs, frameSize: g.frameSize},
	}, nil
}

// Link implements backend.ModuleCompiler: concatenate the unit buffers,
// resolve function-address relocations, build unwind info, load.
func (c *moduleCompiler) Link(units []*backend.Unit, ph *backend.Phaser) (backend.Exec, error) {
	sp := ph.Begin("Emit")
	total := 0
	for _, u := range units {
		total += len(u.Payload.(*unit).code)
	}
	code := make([]byte, 0, total)
	offsets := make([]int32, len(units))
	var unwind []vm.UnwindRange
	for i, u := range units {
		p := u.Payload.(*unit)
		offsets[i] = int32(len(code))
		code = append(code, p.code...)
		unwind = append(unwind, vm.UnwindRange{
			Start: offsets[i], End: int32(len(code)), Name: u.Name,
			CFI:  encodeCFI(offsets[i], int32(len(code)), p.frameSize),
			Func: int32(u.Index),
		})
	}
	// Resolve function-address relocations (FuncAddr constants). The
	// recorded offsets are unit-relative; rebase without mutating the
	// (possibly cache-shared) payloads.
	for i, u := range units {
		for _, r := range u.Payload.(*unit).relocs {
			r.Offset += offsets[i]
			r.Patch(code, int64(offsets[r.Sym]))
		}
	}
	vmod, err := vm.Load(vt.VX64, code)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("direct: %w", err)
	}
	vmod.RegisterUnwind(unwind)
	vmod.SetFuse(!c.env.Options.NoFuse)
	if err := c.env.DB.Bind(c.mod.RTNames); err != nil {
		sp.End()
		return nil, err
	}
	sp.End()

	// DirectEmit has no pre-allocation program to check symbolically, so
	// verification is the machine-code lint plus the structural summary.
	if c.env.Options.Check {
		csp := ph.Begin("Check.Lint")
		ldiags := mcv.Lint(vmod.Prog, vmod.Funcs(), len(c.mod.RTNames))
		csp.End()
		if err := mcv.Error("direct: machine lint", ldiags); err != nil {
			return nil, err
		}
		csp = ph.Begin("Check.Summary")
		ph.Stats().Summaries = mcv.Summarize(vmod.Prog, vmod.Funcs(), c.mod.RTNames)
		csp.End()
	}

	ph.Stats().CodeBytes = len(code)
	return &exec{m: c.env.DB.M, mod: vmod, offsets: offsets}, nil
}

// analysis bundles the single analysis pass results.
type analysis struct {
	dom     *qir.DomTree
	loops   *qir.LoopInfo
	live    *qir.Liveness
	lastUse []qir.Value // per value: highest value id using it
	depth   []int32     // per value: loop depth of defining block
}

func analyze(f *qir.Func) *analysis {
	dom := f.Dominators()
	loops := f.Loops(dom)
	live := f.LivenessAnalysis()
	a := &analysis{dom: dom, loops: loops, live: live}
	a.lastUse = make([]qir.Value, len(f.Instrs))
	a.depth = make([]int32, len(f.Instrs))
	var ops []qir.Value
	for b := range f.Blocks {
		for _, v := range f.Blocks[b].List {
			a.depth[v] = loops.Depth[b]
			ops = f.Operands(v, ops[:0])
			for _, u := range ops {
				if v > a.lastUse[u] {
					a.lastUse[u] = v
				}
			}
		}
	}
	return a
}

// encodeCFI produces compact synchronous unwind information: a tag byte,
// the code range, and the fixed frame size (DWARF-like, enough for the
// runtime to unwind at call sites).
func encodeCFI(start, end int32, frame int64) []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, 0x01) // version/tag
	buf = appendULEB(buf, uint64(start))
	buf = appendULEB(buf, uint64(end-start))
	buf = appendULEB(buf, uint64(frame))
	// def_cfa sp+frame at all call sites (synchronous unwinding only).
	buf = append(buf, 0x0C, 0x0F)
	return buf
}

func appendULEB(b []byte, v uint64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b = append(b, c|0x80)
		} else {
			return append(b, c)
		}
	}
}

// Disasm renders the compiled module's machine code (one instruction per
// line with byte offsets); used by tools and examples.
func (x *exec) Disasm() string { return vt.DisasmAll(x.mod.Prog) }
