// Package direct implements the DirectEmit back-end from the paper: a
// single-pass compiler translating QIR straight to vx64 machine code.
//
// One analysis pass computes the dominator tree, natural loops and
// block-granularity liveness; one code generation pass then walks the blocks
// in reverse postorder, selecting instructions and allocating registers
// greedily on the fly. Values live across basic blocks reside in stack
// slots; within a block they are cached in registers, with the loop-depth
// and last-use heuristics from the paper guiding evictions. Encoding uses
// the branch-minimized fast encoder (8-byte immediates always). Only vx64 is
// supported — the paper notes the AArch64 port was never merged.
package direct

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/mcv"
	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the DirectEmit back-end.
type Engine struct{}

// New returns the DirectEmit engine.
func New() *Engine { return &Engine{} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "DirectEmit" }

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Compile implements backend.Engine.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	if env.Arch != vt.VX64 {
		return nil, nil, &backend.ErrUnsupported{Backend: "direct", Reason: "only vx64 is supported"}
	}
	stats := &backend.Stats{Funcs: len(mod.Funcs)}
	ph := backend.NewPhaser(stats, env.Trace)

	asm := vt.NewFastX64Assembler()
	offsets := make([]int32, len(mod.Funcs))
	var unwind []vm.UnwindRange

	for fi, f := range mod.Funcs {
		fsp := ph.BeginGroup("func:" + f.Name)

		// Analysis pass.
		sp := ph.Begin("Analysis")
		a := analyze(f)
		sp.End()

		// Code generation pass.
		sp = ph.Begin("Codegen")
		start := int32(asm.PCOffset())
		offsets[fi] = start
		g := &codegen{f: f, asm: asm, an: a, env: env, mod: mod}
		if err := g.genFunc(); err != nil {
			return nil, nil, fmt.Errorf("direct: %s: %w", f.Name, err)
		}
		end := int32(asm.PCOffset())
		unwind = append(unwind, vm.UnwindRange{
			Start: start, End: end, Name: f.Name,
			CFI: encodeCFI(start, end, g.frameSize),
		})
		sp.End()
		fsp.End()
	}

	sp := ph.Begin("Emit")
	code, relocs, err := asm.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("direct: %w", err)
	}
	// Resolve function-address relocations (FuncAddr constants).
	for _, r := range relocs {
		r.Patch(code, int64(offsets[r.Sym]))
	}
	vmod, err := vm.Load(vt.VX64, code)
	if err != nil {
		return nil, nil, fmt.Errorf("direct: %w", err)
	}
	vmod.RegisterUnwind(unwind)
	if err := env.DB.Bind(mod.RTNames); err != nil {
		return nil, nil, err
	}
	sp.End()

	// DirectEmit has no pre-allocation program to check symbolically, so
	// verification is the machine-code lint plus the structural summary.
	if env.Options.Check {
		csp := ph.Begin("Check.Lint")
		ldiags := mcv.Lint(vmod.Prog, vmod.Funcs(), len(mod.RTNames))
		csp.End()
		if err := mcv.Error("direct: machine lint", ldiags); err != nil {
			return nil, nil, err
		}
		csp = ph.Begin("Check.Summary")
		stats.Summaries = mcv.Summarize(vmod.Prog, vmod.Funcs(), mod.RTNames)
		csp.End()
	}

	stats.CodeBytes = len(code)
	ph.Finish()
	return &exec{m: env.DB.M, mod: vmod, offsets: offsets}, stats, nil
}

// analysis bundles the single analysis pass results.
type analysis struct {
	dom     *qir.DomTree
	loops   *qir.LoopInfo
	live    *qir.Liveness
	lastUse []qir.Value // per value: highest value id using it
	depth   []int32     // per value: loop depth of defining block
}

func analyze(f *qir.Func) *analysis {
	dom := f.Dominators()
	loops := f.Loops(dom)
	live := f.LivenessAnalysis()
	a := &analysis{dom: dom, loops: loops, live: live}
	a.lastUse = make([]qir.Value, len(f.Instrs))
	a.depth = make([]int32, len(f.Instrs))
	var ops []qir.Value
	for b := range f.Blocks {
		for _, v := range f.Blocks[b].List {
			a.depth[v] = loops.Depth[b]
			ops = f.Operands(v, ops[:0])
			for _, u := range ops {
				if v > a.lastUse[u] {
					a.lastUse[u] = v
				}
			}
		}
	}
	return a
}

// encodeCFI produces compact synchronous unwind information: a tag byte,
// the code range, and the fixed frame size (DWARF-like, enough for the
// runtime to unwind at call sites).
func encodeCFI(start, end int32, frame int64) []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, 0x01) // version/tag
	buf = appendULEB(buf, uint64(start))
	buf = appendULEB(buf, uint64(end-start))
	buf = appendULEB(buf, uint64(frame))
	// def_cfa sp+frame at all call sites (synchronous unwinding only).
	buf = append(buf, 0x0C, 0x0F)
	return buf
}

func appendULEB(b []byte, v uint64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			b = append(b, c|0x80)
		} else {
			return append(b, c)
		}
	}
}

// Disasm renders the compiled module's machine code (one instruction per
// line with byte offsets); used by tools and examples.
func (x *exec) Disasm() string { return vt.DisasmAll(x.mod.Prog) }
