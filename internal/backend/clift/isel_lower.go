package clift

import (
	"fmt"

	"qcc/internal/vt"
)

// mk returns a vinst with all register operands absent.
func mk(op vt.Op) vinst {
	return vinst{op: op, rd: vnone, ra: vnone, rb: vnone, rc: vnone, sym: -1, target: -1}
}

// lowerBlock emits VCode for one CIR block (forward, skipping merged
// producers).
func (lo *lowerer) lowerBlock(b int32) error {
	f := lo.f
	var err error
	f.forEachInst(b, func(idx int32, in *Inst) {
		if err != nil || lo.done[idx] {
			return
		}
		if e := lo.lowerInst(b, idx, in); e != nil {
			err = e
		}
	})
	return err
}

var vBinOp = map[Op]vt.Op{
	OpIadd: vt.Add, OpIsub: vt.Sub, OpImul: vt.Mul,
	OpSdiv: vt.SDiv, OpSrem: vt.SRem, OpUdiv: vt.UDiv, OpUrem: vt.URem,
	OpBand: vt.And, OpBor: vt.Or, OpBxor: vt.Xor,
	OpIshl: vt.Shl, OpUshr: vt.Shr, OpSshr: vt.Sar, OpRotr: vt.Rotr,
}

var vBinOpImm = map[Op]vt.Op{
	OpIadd: vt.AddI, OpIsub: vt.SubI, OpImul: vt.MulI,
	OpBand: vt.AndI, OpBor: vt.OrI, OpBxor: vt.XorI,
	OpIshl: vt.ShlI, OpUshr: vt.ShrI, OpSshr: vt.SarI, OpRotr: vt.RotrI,
}

// memVOp maps a memory op to its unchecked variant when the CIR instruction
// carries the check-elimination flag (Aux 1 on memory ops).
func memVOp(o vt.Op, in *Inst) vt.Op {
	if in.Aux != 0 {
		if u, ok := vt.UncheckedMemOf(o); ok {
			return u
		}
	}
	return o
}

var vLoadOp = map[Op]vt.Op{
	OpLoad8U: vt.Load8, OpLoad8S: vt.Load8S, OpLoad16S: vt.Load16S,
	OpLoad32S: vt.Load32S, OpLoad64: vt.Load64,
}

var vStoreOp = map[Op]vt.Op{
	OpStore8: vt.Store8, OpStore16: vt.Store16,
	OpStore32: vt.Store32, OpStore64: vt.Store64,
}

func (lo *lowerer) lowerInst(b, idx int32, in *Inst) error {
	switch in.Op {
	case OpNop:
	case OpIconst:
		v := mk(vt.MovRI)
		v.rd = lo.val(in.Res[0])
		v.imm = in.Imm
		lo.emit(v)
	case OpF64const:
		v := mk(vt.FMovRI)
		v.rd = lo.val(in.Res[0])
		v.imm = in.Imm
		v.float = true
		lo.emit(v)
	case OpFuncAddr:
		v := mk(vt.MovRI)
		v.rd = lo.val(in.Res[0])
		v.sym = int32(in.Aux)
		lo.emit(v)

	case OpIadd, OpIsub, OpImul, OpBand, OpBor, OpBxor,
		OpIshl, OpUshr, OpSshr, OpRotr:
		if imm, _, ok := lo.constArg(in.Args[1]); ok {
			v := mk(vBinOpImm[in.Op])
			v.rd = lo.val(in.Res[0])
			v.ra = lo.val(in.Args[0])
			v.imm = imm
			lo.emit(v)
			return nil
		}
		v := mk(vBinOp[in.Op])
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		v.rb = lo.val(in.Args[1])
		lo.emit(v)

	case OpSdiv, OpSrem, OpUdiv, OpUrem:
		v := mk(vBinOp[in.Op])
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		v.rb = lo.val(in.Args[1])
		lo.emit(v)

	case OpIneg:
		v := mk(vt.Neg)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		lo.emit(v)
	case OpBnot:
		v := mk(vt.Not)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		lo.emit(v)

	case OpUmulhi, OpSmulhi:
		op := vt.MulWideU
		if in.Op == OpSmulhi {
			op = vt.MulWideS
		}
		v := mk(op)
		v.rd = lo.p.newTemp(ClassInt) // low half discarded
		v.rc = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		v.rb = lo.val(in.Args[1])
		lo.emit(v)
	case OpMulWide:
		v := mk(vt.MulWideU)
		v.rd = lo.val(in.Res[0])
		v.rc = lo.val(in.Res[1])
		v.ra = lo.val(in.Args[0])
		v.rb = lo.val(in.Args[1])
		lo.emit(v)

	case OpCrc32:
		v := mk(vt.Crc32)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		v.rb = lo.val(in.Args[1])
		lo.emit(v)

	case OpIaddOv, OpIsubOv, OpImulOv:
		lo.lowerOverflow(in)

	case OpIcmp:
		v := mk(vt.SetCC)
		v.cond = vt.Cond(in.Aux)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		if imm, _, ok := lo.constArg(in.Args[1]); ok {
			// No compare-immediate form: materialize into a temp.
			t := lo.p.newTemp(ClassInt)
			m := mk(vt.MovRI)
			m.rd = t
			m.imm = imm
			lo.emit(m)
			v.rb = t
		} else {
			v.rb = lo.val(in.Args[1])
		}
		lo.emit(v)

	case OpSelect:
		lo.lowerSelect(in)

	case OpLoad8U, OpLoad8S, OpLoad16S, OpLoad32S, OpLoad64:
		base, disp := lo.amode(in.Args[0])
		v := mk(memVOp(vLoadOp[in.Op], in))
		v.rd = lo.val(in.Res[0])
		v.ra = base
		v.imm = disp
		lo.emit(v)
	case OpFload:
		base, disp := lo.amode(in.Args[0])
		v := mk(memVOp(vt.FLoad, in))
		v.rd = lo.val(in.Res[0])
		v.ra = base
		v.imm = disp
		v.float = true
		lo.emit(v)
	case OpStore8, OpStore16, OpStore32, OpStore64:
		base, disp := lo.amode(in.Args[0])
		v := mk(memVOp(vStoreOp[in.Op], in))
		v.ra = base
		v.rb = lo.val(in.Args[1])
		v.imm = disp
		lo.emit(v)
	case OpFstore:
		base, disp := lo.amode(in.Args[0])
		v := mk(memVOp(vt.FStore, in))
		v.ra = base
		v.rb = lo.val(in.Args[1])
		v.imm = disp
		v.float = true
		lo.emit(v)

	case OpFadd, OpFsub, OpFmul, OpFdiv:
		var op vt.Op
		switch in.Op {
		case OpFadd:
			op = vt.FAdd
		case OpFsub:
			op = vt.FSub
		case OpFmul:
			op = vt.FMul
		default:
			op = vt.FDiv
		}
		v := mk(op)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		v.rb = lo.val(in.Args[1])
		v.float = true
		lo.emit(v)
	case OpFcmp:
		v := mk(vt.FCmp)
		v.cond = vt.Cond(in.Aux)
		v.rd = lo.val(in.Res[0]) // integer result
		v.ra = lo.val(in.Args[0])
		v.rb = lo.val(in.Args[1])
		v.float = true // ra/rb are float; rd handled as int by RA
		lo.emit(v)
	case OpFcvtFromSint:
		v := mk(vt.CvtSI2F)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		lo.emit(v)
	case OpFcvtToSint:
		v := mk(vt.CvtF2SI)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		lo.emit(v)
	case OpBitcastIF:
		v := mk(vt.MovFR)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		lo.emit(v)
	case OpBitcastFI:
		v := mk(vt.MovRF)
		v.rd = lo.val(in.Res[0])
		v.ra = lo.val(in.Args[0])
		lo.emit(v)

	case OpCallExt:
		for k := int32(0); k < in.NArgs; k++ {
			if int(k) >= len(lo.tgt.IntArgs) {
				return fmt.Errorf("clift: too many call arguments")
			}
			m := mk(vt.MovRR)
			m.rd = preg(lo.tgt.IntArgs[k])
			m.ra = lo.val(lo.f.Extra[in.ExtraAt+k])
			lo.emit(m)
		}
		c := mk(vt.CallRT)
		c.imm = int64(in.Aux)
		c.isCall = true
		lo.emit(c)
		for i := 0; i < in.numResults(); i++ {
			if lo.f.ValClass[in.Res[i]] == ClassFloat {
				m := mk(vt.MovFR)
				m.rd = lo.val(in.Res[i])
				m.ra = preg(lo.tgt.IntRet[i])
				m.float = true
				lo.emit(m)
			} else {
				m := mk(vt.MovRR)
				m.rd = lo.val(in.Res[i])
				m.ra = preg(lo.tgt.IntRet[i])
				lo.emit(m)
			}
		}

	case OpJump:
		succ := int32(in.Aux)
		var dsts, srcs []vreg
		for i, pv := range lo.f.Blocks[succ].Params {
			dsts = append(dsts, lo.val(pv))
			srcs = append(srcs, lo.val(lo.f.Extra[in.ExtraAt+int32(i)]))
		}
		lo.cur.succs = append(lo.cur.succs, succ)
		lo.cur.moves = append(lo.cur.moves, [2][]vreg{dsts, srcs})
		v := mk(vt.Br)
		v.target = succ
		lo.emit(v)

	case OpBrif:
		thenB, elseB := int32(in.Aux), int32(in.Imm)
		condDef := lo.f.ValDef[in.Args[0]]
		if condDef >= 0 && lo.done[condDef] && lo.f.Insts[condDef].Op == OpIcmp {
			cmp := &lo.f.Insts[condDef]
			v := mk(vt.BrCC)
			v.cond = vt.Cond(cmp.Aux)
			v.ra = lo.val(cmp.Args[0])
			if imm, _, ok := lo.constArg(cmp.Args[1]); ok {
				t := lo.p.newTemp(ClassInt)
				m := mk(vt.MovRI)
				m.rd = t
				m.imm = imm
				lo.emit(m)
				v.rb = t
			} else {
				v.rb = lo.val(cmp.Args[1])
			}
			v.target = thenB
			lo.emit(v)
		} else {
			v := mk(vt.BrNZ)
			v.ra = lo.val(in.Args[0])
			v.target = thenB
			lo.emit(v)
		}
		f := mk(vt.Br)
		f.target = elseB
		lo.emit(f)
		lo.cur.succs = append(lo.cur.succs, thenB, elseB)
		lo.cur.moves = append(lo.cur.moves, [2][]vreg{}, [2][]vreg{})

	case OpRet:
		n := 0
		if in.Args[0] != noVal {
			m := mk(vt.MovRR)
			if lo.f.ValClass[in.Args[0]] == ClassFloat {
				m.op = vt.MovRF
				m.float = true
			}
			m.rd = preg(lo.tgt.IntRet[0])
			m.ra = lo.val(in.Args[0])
			lo.emit(m)
			n++
		}
		if in.Args[1] != noVal {
			m := mk(vt.MovRR)
			m.rd = preg(lo.tgt.IntRet[1])
			m.ra = lo.val(in.Args[1])
			lo.emit(m)
			n++
		}
		_ = n
		lo.emit(mk(vt.Ret))

	case OpTrap:
		v := mk(vt.Trap)
		v.imm = in.Imm
		lo.emit(v)
	case OpTrapnz:
		v := mk(vt.TrapNZ)
		v.ra = lo.val(in.Args[0])
		v.imm = in.Imm
		lo.emit(v)

	default:
		return fmt.Errorf("clift: cannot lower %s", in.Op)
	}
	return nil
}

// lowerOverflow expands the overflow-checking custom instructions into the
// machine sequence (add/sub/mul plus sign checks and a trap).
func (lo *lowerer) lowerOverflow(in *Inst) {
	rd := lo.val(in.Res[0])
	ra := lo.val(in.Args[0])
	rb := lo.val(in.Args[1])
	emit2 := func(op vt.Op, d, a, b vreg) {
		v := mk(op)
		v.rd, v.ra, v.rb = d, a, b
		lo.emit(v)
	}
	emitImm := func(op vt.Op, d, a vreg, imm int64) {
		v := mk(op)
		v.rd, v.ra, v.imm = d, a, imm
		lo.emit(v)
	}
	t1 := lo.p.newTemp(ClassInt)
	t2 := lo.p.newTemp(ClassInt)
	switch in.Op {
	case OpIaddOv:
		emit2(vt.Add, rd, ra, rb)
		emit2(vt.Xor, t1, rd, ra)
		emit2(vt.Xor, t2, rd, rb)
		emit2(vt.And, t1, t1, t2)
		emitImm(vt.ShrI, t1, t1, 63)
	case OpIsubOv:
		emit2(vt.Sub, rd, ra, rb)
		emit2(vt.Xor, t1, ra, rb)
		emit2(vt.Xor, t2, rd, ra)
		emit2(vt.And, t1, t1, t2)
		emitImm(vt.ShrI, t1, t1, 63)
	case OpImulOv:
		v := mk(vt.MulWideS)
		v.rd, v.rc, v.ra, v.rb = rd, t2, ra, rb
		lo.emit(v)
		emitImm(vt.SarI, t1, rd, 63)
		emit2(vt.Xor, t1, t1, t2)
	}
	tz := mk(vt.TrapNZ)
	tz.ra = t1
	tz.imm = int64(vt.TrapOverflow)
	lo.emit(tz)
}

// lowerSelect emits the branch-free xor-mask select.
func (lo *lowerer) lowerSelect(in *Inst) {
	cond := lo.val(in.Args[0])
	isFloat := lo.f.ValClass[in.Res[0]] == ClassFloat
	mask := lo.p.newTemp(ClassInt)
	m := mk(vt.Neg)
	m.rd, m.ra = mask, cond
	lo.emit(m)
	selInt := func(rd, a, b vreg) {
		t := lo.p.newTemp(ClassInt)
		x := mk(vt.Xor)
		x.rd, x.ra, x.rb = t, a, b
		lo.emit(x)
		a2 := mk(vt.And)
		a2.rd, a2.ra, a2.rb = t, t, mask
		lo.emit(a2)
		o := mk(vt.Xor)
		o.rd, o.ra, o.rb = rd, b, t
		lo.emit(o)
	}
	if !isFloat {
		selInt(lo.val(in.Res[0]), lo.val(in.Args[1]), lo.val(in.Args[2]))
		return
	}
	ta := lo.p.newTemp(ClassInt)
	tb := lo.p.newTemp(ClassInt)
	td := lo.p.newTemp(ClassInt)
	mv := mk(vt.MovRF)
	mv.rd, mv.ra = ta, lo.val(in.Args[1])
	lo.emit(mv)
	mv2 := mk(vt.MovRF)
	mv2.rd, mv2.ra = tb, lo.val(in.Args[2])
	lo.emit(mv2)
	selInt(td, ta, tb)
	fr := mk(vt.MovFR)
	fr.rd, fr.ra = lo.val(in.Res[0]), td
	fr.float = true
	lo.emit(fr)
}
