package clift

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// Options toggle the custom CIR instructions the paper added to Cranelift
// (Table II). With an instruction disabled, translation falls back to
// runtime helper calls (or split multiplications for MulWide), reproducing
// the baseline the speedups are measured against.
type Options struct {
	NoCrc32    bool
	NoOverflow bool
	NoMulWide  bool
}

// translator lowers one QIR function to CIR. Wide (128-bit) values are
// split into lo/hi pairs, narrow integers are kept sign-extended in 64-bit
// values with explicit canonicalization, and getelementptr becomes integer
// arithmetic — CIR has no pointer or aggregate types.
type translator struct {
	f    *qir.Func
	out  *Func
	env  *backend.Env
	opts Options
	mod  *qir.Module

	// vals maps QIR values to CIR value pairs. The paper attributes
	// significant translation time to exactly this hash map.
	vals   map[qir.Value][2]Val
	blocks []int32 // QIR block -> CIR block
	cur    int32
	qb     qir.BlockID // QIR block being translated
}

func translate(f *qir.Func, env *backend.Env, opts Options) (*Func, error) {
	tr := &translator{
		f:    f,
		env:  env,
		opts: opts,
		mod:  f.Module(),
		vals: make(map[qir.Value][2]Val),
	}
	out := &Func{Name: f.Name}
	tr.out = out

	// Pass 1: set up function metadata — blocks, block parameters for
	// phis, and function parameters.
	tr.blocks = make([]int32, len(f.Blocks))
	for b := range f.Blocks {
		tr.blocks[b] = out.newBlock()
	}
	for i, pt := range f.Params {
		v := qir.Value(i)
		if pt == qir.F64 {
			cv := out.addBlockParam(tr.blocks[0], ClassFloat)
			out.Params = append(out.Params, cv)
			tr.vals[v] = [2]Val{cv, noVal}
		} else if pt.Is128() {
			lo := out.addBlockParam(tr.blocks[0], ClassInt)
			hi := out.addBlockParam(tr.blocks[0], ClassInt)
			out.Params = append(out.Params, lo, hi)
			tr.vals[v] = [2]Val{lo, hi}
		} else {
			cv := out.addBlockParam(tr.blocks[0], ClassInt)
			out.Params = append(out.Params, cv)
			tr.vals[v] = [2]Val{cv, noVal}
		}
	}
	for b := range f.Blocks {
		if b == 0 {
			continue
		}
		for _, v := range f.Blocks[b].List {
			in := &f.Instrs[v]
			if in.Op != qir.OpPhi {
				break
			}
			switch {
			case in.Type == qir.F64:
				cv := out.addBlockParam(tr.blocks[b], ClassFloat)
				tr.vals[v] = [2]Val{cv, noVal}
			case in.Type.Is128():
				lo := out.addBlockParam(tr.blocks[b], ClassInt)
				hi := out.addBlockParam(tr.blocks[b], ClassInt)
				tr.vals[v] = [2]Val{lo, hi}
			default:
				cv := out.addBlockParam(tr.blocks[b], ClassInt)
				tr.vals[v] = [2]Val{cv, noVal}
			}
		}
	}
	if f.Ret != qir.Void {
		if f.Ret.Is128() {
			out.Rets = 2
		} else {
			out.Rets = 1
		}
	}

	// Pass 2: translate instruction by instruction.
	for b := range f.Blocks {
		tr.cur = tr.blocks[b]
		tr.qb = qir.BlockID(b)
		for _, v := range f.Blocks[b].List {
			in := &f.Instrs[v]
			if in.Op == qir.OpPhi || in.Op == qir.OpParam {
				continue
			}
			if err := tr.inst(v, in); err != nil {
				return nil, fmt.Errorf("clift: %s: %w", f.Name, err)
			}
		}
	}
	tr.computePreds()
	return out, nil
}

func (tr *translator) computePreds() {
	var succBuf []int32
	for b := int32(0); b < int32(len(tr.out.Blocks)); b++ {
		succBuf = tr.out.succs(b, succBuf[:0])
		for _, s := range succBuf {
			tr.out.Blocks[s].Preds = append(tr.out.Blocks[s].Preds, b)
		}
	}
}

// emit appends a CIR instruction with nres fresh results of class cls.
func (tr *translator) emit(in Inst, nres int, cls RegClass) *Inst {
	in.Res = [2]Val{noVal, noVal}
	idx := tr.out.appendInst(tr.cur, in)
	for i := 0; i < nres; i++ {
		tr.out.Insts[idx].Res[i] = tr.out.newVal(cls, idx)
	}
	return &tr.out.Insts[idx]
}

func (tr *translator) op1(op Op, a Val) Val {
	return tr.emit(Inst{Op: op, Args: [3]Val{a, noVal, noVal}}, 1, ClassInt).Res[0]
}

func (tr *translator) op2(op Op, a, b Val) Val {
	return tr.emit(Inst{Op: op, Args: [3]Val{a, b, noVal}}, 1, ClassInt).Res[0]
}

// memAux converts a QIR instruction's check-elimination mark into the Aux
// flag CIR memory operations carry (Aux 1 = unchecked).
func memAux(in *qir.Instr) uint32 {
	if in.Unchecked() {
		return 1
	}
	return 0
}

// mem1 emits a single-result memory operation with the given Aux flag.
func (tr *translator) mem1(op Op, a Val, aux uint32) Val {
	return tr.emit(Inst{Op: op, Args: [3]Val{a, noVal, noVal}, Aux: aux}, 1, ClassInt).Res[0]
}

func (tr *translator) fop2(op Op, a, b Val) Val {
	return tr.emit(Inst{Op: op, Args: [3]Val{a, b, noVal}}, 1, ClassFloat).Res[0]
}

func (tr *translator) iconst(v int64) Val {
	return tr.emit(Inst{Op: OpIconst, Imm: v, Args: [3]Val{noVal, noVal, noVal}}, 1, ClassInt).Res[0]
}

func (tr *translator) icmp(c qir.Cmp, a, b Val) Val {
	return tr.emit(Inst{Op: OpIcmp, Aux: uint32(c), Args: [3]Val{a, b, noVal}}, 1, ClassInt).Res[0]
}

// lo returns the (low) CIR value of a QIR value.
func (tr *translator) lo(v qir.Value) Val { return tr.vals[v][0] }

// pair returns both halves of a wide QIR value.
func (tr *translator) pair(v qir.Value) (Val, Val) {
	p := tr.vals[v]
	return p[0], p[1]
}

func (tr *translator) set(v qir.Value, lo Val)         { tr.vals[v] = [2]Val{lo, noVal} }
func (tr *translator) setPair(v qir.Value, lo, hi Val) { tr.vals[v] = [2]Val{lo, hi} }

// canon sign-extends a 64-bit CIR value to the canonical form of a narrow
// type via shift pairs (band for booleans).
func (tr *translator) canon(t qir.Type, v Val) Val {
	switch t {
	case qir.I1:
		return tr.op2(OpBand, v, tr.iconst(1))
	case qir.I8:
		return tr.op2(OpSshr, tr.op2(OpIshl, v, tr.iconst(56)), tr.iconst(56))
	case qir.I16:
		return tr.op2(OpSshr, tr.op2(OpIshl, v, tr.iconst(48)), tr.iconst(48))
	case qir.I32:
		return tr.op2(OpSshr, tr.op2(OpIshl, v, tr.iconst(32)), tr.iconst(32))
	}
	return v
}

func (tr *translator) zmask(t qir.Type, v Val) Val {
	switch t {
	case qir.I1:
		return tr.op2(OpBand, v, tr.iconst(1))
	case qir.I8:
		return tr.op2(OpBand, v, tr.iconst(0xFF))
	case qir.I16:
		return tr.op2(OpBand, v, tr.iconst(0xFFFF))
	case qir.I32:
		return tr.op2(OpBand, v, tr.iconst(0xFFFFFFFF))
	}
	return v
}

// helperCall emits a call to a runtime helper with plain 64-bit args.
func (tr *translator) helperCall(name string, nres int, args ...Val) [2]Val {
	id := tr.mod.RTImport(name)
	at := int32(len(tr.out.Extra))
	tr.out.Extra = append(tr.out.Extra, args...)
	in := tr.emit(Inst{
		Op: OpCallExt, Aux: id, ExtraAt: at, NArgs: int32(len(args)),
		Args: [3]Val{noVal, noVal, noVal},
	}, nres, ClassInt)
	return in.Res
}

// branchArgs collects the CIR values feeding a successor's block params.
func (tr *translator) branchArgs(pred, succ qir.BlockID) []Val {
	var args []Val
	for _, v := range tr.f.Blocks[succ].List {
		in := &tr.f.Instrs[v]
		if in.Op != qir.OpPhi {
			break
		}
		pairs := tr.f.PhiPairs(v)
		for i := 0; i < len(pairs); i += 2 {
			if pairs[i] != pred {
				continue
			}
			src := pairs[i+1]
			p := tr.vals[src]
			args = append(args, p[0])
			if p[1] != noVal {
				args = append(args, p[1])
			}
			break
		}
	}
	return args
}

var binMap = map[qir.Op]Op{
	qir.OpAdd: OpIadd, qir.OpSub: OpIsub, qir.OpMul: OpImul,
	qir.OpSDiv: OpSdiv, qir.OpSRem: OpSrem, qir.OpUDiv: OpUdiv, qir.OpURem: OpUrem,
	qir.OpAnd: OpBand, qir.OpOr: OpBor, qir.OpXor: OpBxor,
	qir.OpShl: OpIshl, qir.OpShr: OpUshr, qir.OpSar: OpSshr, qir.OpRotr: OpRotr,
}

func (tr *translator) inst(v qir.Value, in *qir.Instr) error {
	f := tr.f
	switch in.Op {
	case qir.OpConst:
		tr.set(v, tr.iconst(in.Imm))
	case qir.OpConst128:
		lo, hi := f.Const128(v)
		tr.setPair(v, tr.iconst(int64(lo)), tr.iconst(int64(hi)))
	case qir.OpConstStr:
		lo, hi := tr.env.DB.InternString(tr.mod.Strings[in.Imm])
		tr.setPair(v, tr.iconst(int64(lo)), tr.iconst(int64(hi)))
	case qir.OpConstF:
		cv := tr.emit(Inst{Op: OpF64const, Imm: in.Imm, Args: [3]Val{noVal, noVal, noVal}}, 1, ClassFloat).Res[0]
		tr.set(v, cv)
	case qir.OpConstPool:
		// Execution-time load from the DB's constant pool; the slot address
		// is compile-time stable, the value is not. Pool slots are
		// always-valid machine memory (allocated in NewDB), so the loads
		// carry the unchecked Aux. Slots hold canonical sign-extended
		// values, so Load64 is correct for every scalar type.
		addr := tr.iconst(int64(tr.env.DB.ConstPoolAddr(int(in.Imm))))
		switch in.Type {
		case qir.I128, qir.Str:
			lo := tr.mem1(OpLoad64, addr, 1)
			hiAddr := tr.op2(OpIadd, addr, tr.iconst(8))
			tr.setPair(v, lo, tr.mem1(OpLoad64, hiAddr, 1))
		case qir.F64:
			tr.set(v, tr.emit(Inst{Op: OpFload, Args: [3]Val{addr, noVal, noVal}, Aux: 1}, 1, ClassFloat).Res[0])
		default:
			tr.set(v, tr.mem1(OpLoad64, addr, 1))
		}
	case qir.OpNull:
		tr.set(v, tr.iconst(0))
	case qir.OpFuncAddr:
		cv := tr.emit(Inst{Op: OpFuncAddr, Aux: in.Aux, Args: [3]Val{noVal, noVal, noVal}}, 1, ClassInt).Res[0]
		tr.set(v, cv)

	case qir.OpAdd, qir.OpSub, qir.OpMul, qir.OpSDiv, qir.OpSRem, qir.OpUDiv,
		qir.OpURem, qir.OpAnd, qir.OpOr, qir.OpXor, qir.OpShl, qir.OpShr,
		qir.OpSar, qir.OpRotr:
		if in.Type == qir.I128 {
			return tr.bin128(v, in)
		}
		a, b := tr.lo(in.A), tr.lo(in.B)
		if in.Op == qir.OpShr && isNarrow(in.Type) {
			a = tr.zmask(in.Type, a)
		}
		r := tr.op2(binMap[in.Op], a, b)
		if isNarrow(in.Type) {
			switch in.Op {
			case qir.OpAnd, qir.OpOr, qir.OpSar, qir.OpSDiv, qir.OpSRem, qir.OpXor:
			default:
				r = tr.canon(in.Type, r)
			}
		}
		tr.set(v, r)

	case qir.OpNeg:
		switch {
		case in.Type == qir.I128:
			alo, ahi := tr.pair(in.A)
			zero := tr.iconst(0)
			borrow := tr.icmp(qir.CmpULT, zero, alo)
			lo := tr.op2(OpIsub, zero, alo)
			hi := tr.op2(OpIsub, tr.op2(OpIsub, tr.iconst(0), ahi), borrow)
			tr.setPair(v, lo, hi)
		case in.Type == qir.F64:
			bits := tr.op1(OpBitcastFI, tr.lo(in.A))
			neg := tr.op2(OpBxor, bits, tr.iconst(-1<<63))
			tr.set(v, tr.fop2(OpBitcastIF, neg, noVal))
		default:
			tr.set(v, tr.canon(in.Type, tr.op1(OpIneg, tr.lo(in.A))))
		}
	case qir.OpNot:
		tr.set(v, tr.canon(in.Type, tr.op1(OpBnot, tr.lo(in.A))))

	case qir.OpSAddTrap, qir.OpSSubTrap, qir.OpSMulTrap:
		return tr.trapArith(v, in)

	case qir.OpICmp:
		if f.ValueType(in.A) == qir.I128 {
			return tr.icmp128(v, in)
		}
		tr.set(v, tr.icmp(in.Cmp(), tr.lo(in.A), tr.lo(in.B)))

	case qir.OpZExt:
		from := f.ValueType(in.A)
		m := tr.zmask(from, tr.lo(in.A))
		if in.Type == qir.I128 {
			tr.setPair(v, m, tr.iconst(0))
		} else {
			tr.set(v, m)
		}
	case qir.OpSExt:
		a := tr.lo(in.A)
		if in.Type == qir.I128 {
			tr.setPair(v, a, tr.op2(OpSshr, a, tr.iconst(63)))
		} else {
			tr.set(v, a) // canonical form already sign-extended
		}
	case qir.OpTrunc:
		tr.set(v, tr.canon(in.Type, tr.lo(in.A)))

	case qir.OpFAdd, qir.OpFSub, qir.OpFMul, qir.OpFDiv:
		var op Op
		switch in.Op {
		case qir.OpFAdd:
			op = OpFadd
		case qir.OpFSub:
			op = OpFsub
		case qir.OpFMul:
			op = OpFmul
		default:
			op = OpFdiv
		}
		tr.set(v, tr.fop2(op, tr.lo(in.A), tr.lo(in.B)))
	case qir.OpFCmp:
		tr.set(v, tr.emit(Inst{Op: OpFcmp, Aux: in.Aux, Args: [3]Val{tr.lo(in.A), tr.lo(in.B), noVal}}, 1, ClassInt).Res[0])
	case qir.OpSIToFP:
		tr.set(v, tr.fop2(OpFcvtFromSint, tr.lo(in.A), noVal))
	case qir.OpFPToSI:
		tr.set(v, tr.canon(in.Type, tr.op1(OpFcvtToSint, tr.lo(in.A))))
	case qir.OpFBits:
		tr.set(v, tr.op1(OpBitcastFI, tr.lo(in.A)))
	case qir.OpBitsF:
		tr.set(v, tr.fop2(OpBitcastIF, tr.lo(in.A), noVal))

	case qir.OpCrc32:
		if tr.opts.NoCrc32 {
			r := tr.helperCall(rt.FnCrc32Help, 1, tr.lo(in.A), tr.lo(in.B))
			tr.set(v, r[0])
		} else {
			tr.set(v, tr.op2(OpCrc32, tr.lo(in.A), tr.lo(in.B)))
		}
	case qir.OpLMulFold:
		lo, hi := tr.mul64wide(tr.lo(in.A), tr.lo(in.B))
		tr.set(v, tr.op2(OpBxor, lo, hi))

	case qir.OpGEP:
		// Pointer arithmetic lowered to plain integer arithmetic.
		addr := tr.lo(in.A)
		if in.Imm != 0 {
			addr = tr.op2(OpIadd, addr, tr.iconst(in.Imm))
		}
		if in.B != qir.NoValue {
			idx := tr.lo(in.B)
			if in.Aux != 1 {
				idx = tr.op2(OpImul, idx, tr.iconst(int64(in.Aux)))
			}
			addr = tr.op2(OpIadd, addr, idx)
		}
		tr.set(v, addr)

	case qir.OpLoad:
		addr := tr.lo(in.A)
		uc := memAux(in)
		switch in.Type {
		case qir.I128, qir.Str:
			lo := tr.mem1(OpLoad64, addr, uc)
			hiAddr := tr.op2(OpIadd, addr, tr.iconst(8))
			tr.setPair(v, lo, tr.mem1(OpLoad64, hiAddr, uc))
		case qir.F64:
			tr.set(v, tr.emit(Inst{Op: OpFload, Args: [3]Val{addr, noVal, noVal}, Aux: uc}, 1, ClassFloat).Res[0])
		case qir.I1:
			tr.set(v, tr.op2(OpBand, tr.mem1(OpLoad8U, addr, uc), tr.iconst(1)))
		case qir.I8:
			tr.set(v, tr.mem1(OpLoad8S, addr, uc))
		case qir.I16:
			tr.set(v, tr.mem1(OpLoad16S, addr, uc))
		case qir.I32:
			tr.set(v, tr.mem1(OpLoad32S, addr, uc))
		default:
			tr.set(v, tr.mem1(OpLoad64, addr, uc))
		}

	case qir.OpStore:
		addr := tr.lo(in.A)
		uc := memAux(in)
		switch t := f.ValueType(in.B); t {
		case qir.I128, qir.Str:
			lo, hi := tr.pair(in.B)
			tr.emit(Inst{Op: OpStore64, Args: [3]Val{addr, lo, noVal}, Aux: uc}, 0, ClassInt)
			hiAddr := tr.op2(OpIadd, addr, tr.iconst(8))
			tr.emit(Inst{Op: OpStore64, Args: [3]Val{hiAddr, hi, noVal}, Aux: uc}, 0, ClassInt)
		case qir.F64:
			tr.emit(Inst{Op: OpFstore, Args: [3]Val{addr, tr.lo(in.B), noVal}, Aux: uc}, 0, ClassInt)
		case qir.I1, qir.I8:
			tr.emit(Inst{Op: OpStore8, Args: [3]Val{addr, tr.lo(in.B), noVal}, Aux: uc}, 0, ClassInt)
		case qir.I16:
			tr.emit(Inst{Op: OpStore16, Args: [3]Val{addr, tr.lo(in.B), noVal}, Aux: uc}, 0, ClassInt)
		case qir.I32:
			tr.emit(Inst{Op: OpStore32, Args: [3]Val{addr, tr.lo(in.B), noVal}, Aux: uc}, 0, ClassInt)
		default:
			tr.emit(Inst{Op: OpStore64, Args: [3]Val{addr, tr.lo(in.B), noVal}, Aux: uc}, 0, ClassInt)
		}

	case qir.OpAtomicAdd:
		addr := tr.lo(in.A)
		old := tr.op1(loadOpFor(in.Type), addr)
		sum := tr.op2(OpIadd, old, tr.lo(in.B))
		tr.emit(Inst{Op: storeOpFor(in.Type), Args: [3]Val{addr, sum, noVal}}, 0, ClassInt)
		tr.set(v, tr.canon(in.Type, old))

	case qir.OpSelect:
		cond := tr.lo(in.A)
		switch {
		case in.Type.Is128():
			xlo, xhi := tr.pair(in.B)
			ylo, yhi := tr.pair(in.C)
			lo := tr.emit(Inst{Op: OpSelect, Args: [3]Val{cond, xlo, ylo}}, 1, ClassInt).Res[0]
			hi := tr.emit(Inst{Op: OpSelect, Args: [3]Val{cond, xhi, yhi}}, 1, ClassInt).Res[0]
			tr.setPair(v, lo, hi)
		case in.Type == qir.F64:
			r := tr.emit(Inst{Op: OpSelect, Args: [3]Val{cond, tr.lo(in.B), tr.lo(in.C)}}, 1, ClassFloat).Res[0]
			tr.set(v, r)
		default:
			r := tr.emit(Inst{Op: OpSelect, Args: [3]Val{cond, tr.lo(in.B), tr.lo(in.C)}}, 1, ClassInt).Res[0]
			tr.set(v, r)
		}

	case qir.OpCall:
		var flat []Val
		for _, a := range f.CallArgs(v) {
			p := tr.vals[a]
			flat = append(flat, p[0])
			if p[1] != noVal {
				flat = append(flat, p[1])
			}
		}
		nres := 0
		cls := ClassInt
		switch {
		case in.Type == qir.Void:
		case in.Type.Is128():
			nres = 2
		case in.Type == qir.F64:
			nres = 1
			cls = ClassFloat
		default:
			nres = 1
		}
		at := int32(len(tr.out.Extra))
		tr.out.Extra = append(tr.out.Extra, flat...)
		ci := tr.emit(Inst{
			Op: OpCallExt, Aux: in.Aux, ExtraAt: at, NArgs: int32(len(flat)),
			Args: [3]Val{noVal, noVal, noVal},
		}, nres, cls)
		switch nres {
		case 1:
			r := ci.Res[0]
			if isNarrow(in.Type) {
				r = tr.canon(in.Type, r)
			}
			tr.set(v, r)
		case 2:
			tr.setPair(v, ci.Res[0], ci.Res[1])
		}

	case qir.OpBr:
		succ := qir.BlockID(in.Aux)
		args := tr.branchArgs(tr.qb, succ)
		at := int32(len(tr.out.Extra))
		tr.out.Extra = append(tr.out.Extra, args...)
		tr.emit(Inst{Op: OpJump, Aux: uint32(tr.blocks[succ]), ExtraAt: at, NArgs: int32(len(args)),
			Args: [3]Val{noVal, noVal, noVal}}, 0, ClassInt)

	case qir.OpCondBr:
		pred := tr.qb
		thenB := qir.BlockID(in.Aux)
		elseB := in.B
		// Conditional branches never carry block arguments: edges that
		// pass values are split through trampoline blocks holding the
		// argument-carrying jump (critical-edge splitting).
		thenC := tr.edgeTarget(pred, thenB)
		elseC := tr.edgeTarget(pred, elseB)
		tr.emit(Inst{
			Op: OpBrif, Aux: uint32(thenC), Imm: int64(elseC),
			Args: [3]Val{tr.lo(in.A), noVal, noVal},
		}, 0, ClassInt)

	case qir.OpRet:
		args := [3]Val{noVal, noVal, noVal}
		if in.A != qir.NoValue {
			p := tr.vals[in.A]
			args[0] = p[0]
			args[1] = p[1]
		}
		tr.emit(Inst{Op: OpRet, Args: args}, 0, ClassInt)

	case qir.OpUnreachable:
		tr.emit(Inst{Op: OpTrap, Imm: 0, Args: [3]Val{noVal, noVal, noVal}}, 0, ClassInt)

	default:
		return fmt.Errorf("cannot translate %s", in.Op)
	}
	return nil
}

// edgeTarget returns the CIR block a conditional edge should jump to: the
// successor itself when no block arguments flow, or a trampoline block with
// an argument-carrying jump otherwise.
func (tr *translator) edgeTarget(pred, succ qir.BlockID) int32 {
	args := tr.branchArgs(pred, succ)
	if len(args) == 0 {
		return tr.blocks[succ]
	}
	tramp := tr.out.newBlock()
	at := int32(len(tr.out.Extra))
	tr.out.Extra = append(tr.out.Extra, args...)
	tr.out.appendInst(tramp, Inst{
		Op: OpJump, Aux: uint32(tr.blocks[succ]), ExtraAt: at, NArgs: int32(len(args)),
		Args: [3]Val{noVal, noVal, noVal}, Res: [2]Val{noVal, noVal},
	})
	return tramp
}

func isNarrow(t qir.Type) bool {
	return t == qir.I1 || t == qir.I8 || t == qir.I16 || t == qir.I32
}

func loadOpFor(t qir.Type) Op {
	switch t {
	case qir.I1, qir.I8:
		return OpLoad8S
	case qir.I16:
		return OpLoad16S
	case qir.I32:
		return OpLoad32S
	}
	return OpLoad64
}

func storeOpFor(t qir.Type) Op {
	switch t {
	case qir.I1, qir.I8:
		return OpStore8
	case qir.I16:
		return OpStore16
	case qir.I32:
		return OpStore32
	}
	return OpStore64
}

// mul64wide produces lo and hi of a full 64x64 multiplication, using the
// custom MulWide instruction when enabled and two separate multiplications
// otherwise (Cranelift's selector cannot merge them, as the paper notes).
func (tr *translator) mul64wide(a, b Val) (lo, hi Val) {
	if !tr.opts.NoMulWide {
		in := tr.emit(Inst{Op: OpMulWide, Args: [3]Val{a, b, noVal}}, 2, ClassInt)
		return in.Res[0], in.Res[1]
	}
	lo = tr.op2(OpImul, a, b)
	hi = tr.op2(OpUmulhi, a, b)
	return lo, hi
}

// bin128 lowers 128-bit arithmetic on value pairs.
func (tr *translator) bin128(v qir.Value, in *qir.Instr) error {
	alo, ahi := tr.pair(in.A)
	switch in.Op {
	case qir.OpAdd, qir.OpSub:
		blo, bhi := tr.pair(in.B)
		if in.Op == qir.OpAdd {
			lo := tr.op2(OpIadd, alo, blo)
			carry := tr.icmp(qir.CmpULT, lo, alo)
			hi := tr.op2(OpIadd, tr.op2(OpIadd, ahi, bhi), carry)
			tr.setPair(v, lo, hi)
		} else {
			borrow := tr.icmp(qir.CmpULT, alo, blo)
			lo := tr.op2(OpIsub, alo, blo)
			hi := tr.op2(OpIsub, tr.op2(OpIsub, ahi, bhi), borrow)
			tr.setPair(v, lo, hi)
		}
	case qir.OpMul:
		blo, bhi := tr.pair(in.B)
		lo, hi := tr.mul64wide(alo, blo)
		hi = tr.op2(OpIadd, hi, tr.op2(OpImul, alo, bhi))
		hi = tr.op2(OpIadd, hi, tr.op2(OpImul, ahi, blo))
		tr.setPair(v, lo, hi)
	case qir.OpAnd, qir.OpOr, qir.OpXor:
		blo, bhi := tr.pair(in.B)
		op := binMap[in.Op]
		tr.setPair(v, tr.op2(op, alo, blo), tr.op2(op, ahi, bhi))
	case qir.OpShl, qir.OpShr, qir.OpSar:
		bi := &tr.f.Instrs[in.B]
		if bi.Op != qir.OpConst {
			return fmt.Errorf("dynamic 128-bit shift unsupported")
		}
		lo, hi := tr.shift128(in.Op, alo, ahi, uint(bi.Imm)&127)
		tr.setPair(v, lo, hi)
	default:
		return fmt.Errorf("128-bit %s unsupported", in.Op)
	}
	return nil
}

func (tr *translator) shift128(op qir.Op, alo, ahi Val, k uint) (Val, Val) {
	switch {
	case k == 0:
		return alo, ahi
	case op == qir.OpShr && k == 64:
		return ahi, tr.iconst(0)
	case op == qir.OpSar && k == 64:
		return ahi, tr.op2(OpSshr, ahi, tr.iconst(63))
	case op == qir.OpShl && k == 64:
		return tr.iconst(0), alo
	case op == qir.OpShl && k < 64:
		hi := tr.op2(OpBor, tr.op2(OpIshl, ahi, tr.iconst(int64(k))),
			tr.op2(OpUshr, alo, tr.iconst(int64(64-k))))
		return tr.op2(OpIshl, alo, tr.iconst(int64(k))), hi
	case k < 64: // shr/sar
		lo := tr.op2(OpBor, tr.op2(OpUshr, alo, tr.iconst(int64(k))),
			tr.op2(OpIshl, ahi, tr.iconst(int64(64-k))))
		sh := OpUshr
		if op == qir.OpSar {
			sh = OpSshr
		}
		return lo, tr.op2(sh, ahi, tr.iconst(int64(k)))
	case op == qir.OpShl:
		return tr.iconst(0), tr.op2(OpIshl, alo, tr.iconst(int64(k-64)))
	case op == qir.OpShr:
		return tr.op2(OpUshr, ahi, tr.iconst(int64(k-64))), tr.iconst(0)
	default: // sar
		sign := tr.op2(OpSshr, ahi, tr.iconst(63))
		return tr.op2(OpSshr, ahi, tr.iconst(int64(k-64))), sign
	}
}

// trapArith lowers overflow-checked arithmetic: custom overflow
// instructions when enabled, helper calls otherwise; narrow widths check by
// round-trip, 128-bit goes inline (add/sub) or to the multiplication
// helper.
func (tr *translator) trapArith(v qir.Value, in *qir.Instr) error {
	if in.Type == qir.I128 {
		alo, ahi := tr.pair(in.A)
		blo, bhi := tr.pair(in.B)
		switch in.Op {
		case qir.OpSMulTrap:
			r := tr.helperCall(rt.FnI128MulOv, 2, alo, ahi, blo, bhi)
			tr.setPair(v, r[0], r[1])
			return nil
		case qir.OpSAddTrap:
			lo := tr.op2(OpIadd, alo, blo)
			carry := tr.icmp(qir.CmpULT, lo, alo)
			hi := tr.op2(OpIadd, tr.op2(OpIadd, ahi, bhi), carry)
			ov := tr.op2(OpUshr, tr.op2(OpBand, tr.op2(OpBxor, hi, ahi), tr.op2(OpBxor, hi, bhi)), tr.iconst(63))
			tr.emit(Inst{Op: OpTrapnz, Args: [3]Val{ov, noVal, noVal}, Imm: 1}, 0, ClassInt)
			tr.setPair(v, lo, hi)
			return nil
		default: // SSubTrap
			borrow := tr.icmp(qir.CmpULT, alo, blo)
			lo := tr.op2(OpIsub, alo, blo)
			hi := tr.op2(OpIsub, tr.op2(OpIsub, ahi, bhi), borrow)
			ov := tr.op2(OpUshr, tr.op2(OpBand, tr.op2(OpBxor, ahi, bhi), tr.op2(OpBxor, hi, ahi)), tr.iconst(63))
			tr.emit(Inst{Op: OpTrapnz, Args: [3]Val{ov, noVal, noVal}, Imm: 1}, 0, ClassInt)
			tr.setPair(v, lo, hi)
			return nil
		}
	}
	a, b := tr.lo(in.A), tr.lo(in.B)
	if isNarrow(in.Type) {
		var op Op
		switch in.Op {
		case qir.OpSAddTrap:
			op = OpIadd
		case qir.OpSSubTrap:
			op = OpIsub
		default:
			op = OpImul
		}
		wide := tr.op2(op, a, b)
		c := tr.canon(in.Type, wide)
		ne := tr.icmp(qir.CmpNE, c, wide)
		tr.emit(Inst{Op: OpTrapnz, Args: [3]Val{ne, noVal, noVal}, Imm: 1}, 0, ClassInt)
		tr.set(v, c)
		return nil
	}
	// 64-bit: custom overflow instructions or helper calls.
	if tr.opts.NoOverflow {
		var name string
		switch in.Op {
		case qir.OpSAddTrap:
			name = rt.FnAddOv64
		case qir.OpSSubTrap:
			name = rt.FnSubOv64
		default:
			name = rt.FnMulOv64
		}
		r := tr.helperCall(name, 1, a, b)
		tr.set(v, r[0])
		return nil
	}
	var op Op
	switch in.Op {
	case qir.OpSAddTrap:
		op = OpIaddOv
	case qir.OpSSubTrap:
		op = OpIsubOv
	default:
		op = OpImulOv
	}
	tr.set(v, tr.op2(op, a, b))
	return nil
}

// icmp128 lowers a 128-bit comparison to pair logic.
func (tr *translator) icmp128(v qir.Value, in *qir.Instr) error {
	alo, ahi := tr.pair(in.A)
	blo, bhi := tr.pair(in.B)
	switch c := in.Cmp(); c {
	case qir.CmpEQ, qir.CmpNE:
		d := tr.op2(OpBor, tr.op2(OpBxor, alo, blo), tr.op2(OpBxor, ahi, bhi))
		tr.set(v, tr.icmp(c, d, tr.iconst(0)))
	default:
		strict, uc := split128Cmp(c)
		hiStrict := tr.icmp(strict, ahi, bhi)
		hiEq := tr.icmp(qir.CmpEQ, ahi, bhi)
		loCmp := tr.icmp(uc, alo, blo)
		tr.set(v, tr.op2(OpBor, hiStrict, tr.op2(OpBand, hiEq, loCmp)))
	}
	return nil
}

func split128Cmp(c qir.Cmp) (strict, lo qir.Cmp) {
	switch c {
	case qir.CmpSLT:
		return qir.CmpSLT, qir.CmpULT
	case qir.CmpSLE:
		return qir.CmpSLT, qir.CmpULE
	case qir.CmpSGT:
		return qir.CmpSGT, qir.CmpUGT
	case qir.CmpSGE:
		return qir.CmpSGT, qir.CmpUGE
	case qir.CmpULT:
		return qir.CmpULT, qir.CmpULT
	case qir.CmpULE:
		return qir.CmpULT, qir.CmpULE
	case qir.CmpUGT:
		return qir.CmpUGT, qir.CmpUGT
	default:
		return qir.CmpUGT, qir.CmpUGE
	}
}
