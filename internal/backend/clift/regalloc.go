package clift

import (
	"sort"

	"qcc/internal/backend"
	"qcc/internal/obs"
	"qcc/internal/vt"
)

// Process-wide allocator counters: slab/tree growth in the hot path is an
// allocation-volume signal the wall clock alone does not show.
var (
	statBTreeInserts = obs.NewCounter("clift.ra_btree_inserts")
	statBundles      = obs.NewCounter("clift.ra_bundles")
	statSpilled      = obs.NewCounter("clift.ra_spilled")
)

// The register allocator follows the shape the paper describes for
// Cranelift: live ranges are computed by iterating over the code several
// times (def/use collection, data-flow liveness, backward range building),
// move-related ranges are merged into bundles, and a linear scan assigns
// registers while tracking occupancy in one B-tree per physical register.
// Unassigned bundles spill to stack slots; spilled operands are fixed up at
// emission via reserved scratch registers.

// raResult is the allocation outcome consumed by emission.
type raResult struct {
	// assign[v]: >= 0 physical register; < 0: spill slot -1-slot.
	assign []int32
	spills int32 // number of spill slots
	// usedCalleeSaved are callee-saved registers handed out.
	usedCalleeSaved []uint8
	// stats
	numBundles   int
	numSpilled   int
	btreeInserts int
}

const (
	assignNone = int32(-0x40000000)
)

// opndVisit calls fn for every register operand of in: first uses, then
// defs. Class is the operand's register file.
type opndFn func(r *vreg, isDef bool, cls RegClass)

func visitOperands(in *vinst, fn opndFn) {
	use := func(r *vreg, cls RegClass) {
		if *r != vnone {
			fn(r, false, cls)
		}
	}
	def := func(r *vreg, cls RegClass) {
		if *r != vnone {
			fn(r, true, cls)
		}
	}
	switch in.op {
	case vt.MovRR, vt.Neg, vt.Not, vt.Lea:
		use(&in.ra, ClassInt)
		def(&in.rd, ClassInt)
	case vt.MovRI:
		def(&in.rd, ClassInt)
	case vt.FMovRI:
		def(&in.rd, ClassFloat)
	case vt.FMovRR:
		use(&in.ra, ClassFloat)
		def(&in.rd, ClassFloat)
	case vt.Add, vt.Sub, vt.Mul, vt.And, vt.Or, vt.Xor, vt.Shl, vt.Shr, vt.Sar,
		vt.Rotr, vt.SDiv, vt.SRem, vt.UDiv, vt.URem, vt.Crc32:
		use(&in.ra, ClassInt)
		use(&in.rb, ClassInt)
		def(&in.rd, ClassInt)
	case vt.AddI, vt.SubI, vt.MulI, vt.AndI, vt.OrI, vt.XorI, vt.ShlI, vt.ShrI,
		vt.SarI, vt.RotrI:
		use(&in.ra, ClassInt)
		def(&in.rd, ClassInt)
	case vt.MulWideU, vt.MulWideS:
		use(&in.ra, ClassInt)
		use(&in.rb, ClassInt)
		def(&in.rd, ClassInt)
		def(&in.rc, ClassInt)
	case vt.SetCC:
		use(&in.ra, ClassInt)
		use(&in.rb, ClassInt)
		def(&in.rd, ClassInt)
	case vt.Load8, vt.Load8S, vt.Load16, vt.Load16S, vt.Load32, vt.Load32S, vt.Load64,
		vt.LoadU8, vt.LoadU8S, vt.LoadU16, vt.LoadU16S, vt.LoadU32, vt.LoadU32S, vt.LoadU64:
		use(&in.ra, ClassInt)
		def(&in.rd, ClassInt)
	case vt.Store8, vt.Store16, vt.Store32, vt.Store64,
		vt.StoreU8, vt.StoreU16, vt.StoreU32, vt.StoreU64:
		use(&in.ra, ClassInt)
		use(&in.rb, ClassInt)
	case vt.FLoad, vt.FLoadU:
		use(&in.ra, ClassInt)
		def(&in.rd, ClassFloat)
	case vt.FStore, vt.FStoreU:
		use(&in.ra, ClassInt)
		use(&in.rb, ClassFloat)
	case vt.FAdd, vt.FSub, vt.FMul, vt.FDiv:
		use(&in.ra, ClassFloat)
		use(&in.rb, ClassFloat)
		def(&in.rd, ClassFloat)
	case vt.FCmp:
		use(&in.ra, ClassFloat)
		use(&in.rb, ClassFloat)
		def(&in.rd, ClassInt)
	case vt.CvtSI2F:
		use(&in.ra, ClassInt)
		def(&in.rd, ClassFloat)
	case vt.CvtF2SI:
		use(&in.ra, ClassFloat)
		def(&in.rd, ClassInt)
	case vt.MovRF:
		use(&in.ra, ClassFloat)
		def(&in.rd, ClassInt)
	case vt.MovFR:
		use(&in.ra, ClassInt)
		def(&in.rd, ClassFloat)
	case vt.BrCC:
		use(&in.ra, ClassInt)
		use(&in.rb, ClassInt)
	case vt.BrNZ, vt.TrapNZ:
		use(&in.ra, ClassInt)
	case vt.CallInd:
		use(&in.ra, ClassInt)
	}
}

// allocate runs register allocation over vc for the given target; ph
// (optional, nil-safe) receives the live-range / merge / assign sub-phase
// spans for the Figure 4 breakdown.
func allocate(vc *vcode, tgt *vt.Target, ph *backend.Phaser) *raResult {
	sp := ph.Begin("RegAlloc.liveranges")
	nv := int(vc.nvregs)

	// Reserve the two highest allocatable GPRs (and FPRs) as emission
	// scratch registers for spill fixups and move cycles.
	allGPR := tgt.AllocatableGPRs()
	gprs := allGPR[:len(allGPR)-2]
	numFPR := tgt.NumFPR
	fprs := make([]uint8, 0, numFPR-2)
	for i := 0; i < numFPR-2; i++ {
		fprs = append(fprs, uint8(i))
	}

	// Linear indices: instruction i of block b gets a global index; block
	// boundaries are recorded for range building.
	idxOf := make([][]int32, len(vc.blocks))
	blockStart := make([]int32, len(vc.blocks))
	blockEnd := make([]int32, len(vc.blocks))
	n := int32(0)
	for b := range vc.blocks {
		blockStart[b] = n
		idxOf[b] = make([]int32, len(vc.blocks[b].insts))
		for i := range vc.blocks[b].insts {
			idxOf[b][i] = n
			n++
		}
		blockEnd[b] = n
	}

	// Pass over the code: collect per-block use/def sets (edge-move
	// sources count as uses at the branch; destinations as defs).
	gen := make([]map[vreg]struct{}, len(vc.blocks))
	kill := make([]map[vreg]struct{}, len(vc.blocks))
	for b := range vc.blocks {
		gen[b] = map[vreg]struct{}{}
		kill[b] = map[vreg]struct{}{}
		blk := &vc.blocks[b]
		for i := range blk.insts {
			visitOperands(&blk.insts[i], func(r *vreg, isDef bool, cls RegClass) {
				if isPreg(*r) {
					return
				}
				if isDef {
					kill[b][*r] = struct{}{}
				} else if _, killed := kill[b][*r]; !killed {
					gen[b][*r] = struct{}{}
				}
			})
		}
		for _, mv := range blk.moves {
			for _, s := range mv[1] {
				if _, killed := kill[b][s]; !killed {
					gen[b][s] = struct{}{}
				}
			}
			for _, d := range mv[0] {
				kill[b][d] = struct{}{}
			}
		}
	}

	// Data-flow liveness iteration.
	liveIn := make([]map[vreg]struct{}, len(vc.blocks))
	liveOut := make([]map[vreg]struct{}, len(vc.blocks))
	for b := range vc.blocks {
		liveIn[b] = map[vreg]struct{}{}
		liveOut[b] = map[vreg]struct{}{}
	}
	for changed := true; changed; {
		changed = false
		for b := len(vc.blocks) - 1; b >= 0; b-- {
			out := liveOut[b]
			for _, s := range vc.blocks[b].succs {
				for v := range liveIn[s] {
					if _, ok := out[v]; !ok {
						out[v] = struct{}{}
						changed = true
					}
				}
			}
			in := liveIn[b]
			for v := range gen[b] {
				if _, ok := in[v]; !ok {
					in[v] = struct{}{}
					changed = true
				}
			}
			for v := range out {
				if _, k := kill[b][v]; k {
					continue
				}
				if _, ok := in[v]; !ok {
					in[v] = struct{}{}
					changed = true
				}
			}
		}
	}

	// Backward range building: each vreg gets one covering interval.
	start := make([]int32, nv)
	end := make([]int32, nv)
	for v := range start {
		start[v] = -1
		end[v] = -1
	}
	touch := func(v vreg, at int32) {
		if v < 0 {
			return
		}
		if start[v] == -1 || at < start[v] {
			start[v] = at
		}
		if at > end[v] {
			end[v] = at
		}
	}
	for b := range vc.blocks {
		blk := &vc.blocks[b]
		for v := range liveIn[b] {
			touch(v, blockStart[b])
		}
		for v := range liveOut[b] {
			touch(v, blockEnd[b])
		}
		for i := range blk.insts {
			at := idxOf[b][i]
			visitOperands(&blk.insts[i], func(r *vreg, isDef bool, cls RegClass) {
				if !isPreg(*r) {
					touch(*r, at)
				}
			})
		}
		for _, mv := range blk.moves {
			for _, s := range mv[1] {
				touch(s, blockEnd[b]-1)
			}
			for _, d := range mv[0] {
				touch(d, blockEnd[b]-1)
			}
		}
	}

	sp.End()
	sp = ph.Begin("RegAlloc.merge")

	// Bundle merging: coalesce move-related vregs whose intervals do not
	// properly overlap.
	parent := make([]int32, nv)
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	tryMerge := func(a, b vreg) {
		ra, rb := find(a), find(b)
		if ra == rb || vc.classes[a] != vc.classes[b] {
			return
		}
		if start[ra] == -1 || start[rb] == -1 {
			return
		}
		// Properly overlapping ranges cannot share a register.
		if start[ra] < end[rb] && start[rb] < end[ra] {
			return
		}
		parent[rb] = ra
		if start[rb] < start[ra] {
			start[ra] = start[rb]
		}
		if end[rb] > end[ra] {
			end[ra] = end[rb]
		}
	}
	for b := range vc.blocks {
		blk := &vc.blocks[b]
		for i := range blk.insts {
			in := &blk.insts[i]
			if in.op == vt.MovRR || in.op == vt.FMovRR {
				if !isPreg(in.rd) && !isPreg(in.ra) {
					tryMerge(in.rd, in.ra)
				}
			}
		}
		for _, mv := range blk.moves {
			for k := range mv[0] {
				if !isPreg(mv[0][k]) && !isPreg(mv[1][k]) {
					tryMerge(mv[0][k], mv[1][k])
				}
			}
		}
	}

	sp.End()
	sp = ph.Begin("RegAlloc.assign")

	// Physical register occupancy, seeded with fixed preg references and
	// call clobbers.
	intTrees := make([]*intervalTree, tgt.NumGPR)
	fltTrees := make([]*intervalTree, tgt.NumFPR)
	for i := range intTrees {
		intTrees[i] = &intervalTree{}
	}
	for i := range fltTrees {
		fltTrees[i] = &intervalTree{}
	}
	res := &raResult{assign: make([]int32, nv)}
	for v := range res.assign {
		res.assign[v] = assignNone
	}
	// Fixed occupancy: physical-register references stay blocked between
	// their def and the consuming call (argument staging), or between the
	// producing call/entry and their use (results, incoming parameters);
	// calls clobber every caller-saved register at their position.
	// Overlapping fixed ranges are merged before seeding the B-trees.
	fixedInt := make([][]ival, tgt.NumGPR)
	fixedFlt := make([][]ival, tgt.NumFPR)
	for b := range vc.blocks {
		blk := &vc.blocks[b]
		var callIdx []int32
		for i := range blk.insts {
			if blk.insts[i].isCall {
				callIdx = append(callIdx, idxOf[b][i])
			}
		}
		nextCall := func(at int32) int32 {
			for _, c := range callIdx {
				if c >= at {
					return c
				}
			}
			return at
		}
		prevCall := func(at int32) int32 {
			from := blockStart[b]
			for _, c := range callIdx {
				if c <= at {
					from = c
				}
			}
			return from
		}
		for i := range blk.insts {
			in := &blk.insts[i]
			at := idxOf[b][i]
			visitOperands(in, func(r *vreg, isDef bool, cls RegClass) {
				if !isPreg(*r) {
					return
				}
				p := pregNum(*r)
				var iv ival
				if isDef {
					iv = ival{at, nextCall(at)}
				} else {
					iv = ival{prevCall(at), at}
				}
				if cls == ClassFloat {
					fixedFlt[p] = append(fixedFlt[p], iv)
				} else {
					fixedInt[p] = append(fixedInt[p], iv)
				}
			})
			if in.isCall {
				for _, p := range tgt.CallerSaved {
					fixedInt[p] = append(fixedInt[p], ival{at, at})
				}
				for p := 0; p < tgt.NumFPR; p++ {
					fixedFlt[p] = append(fixedFlt[p], ival{at, at})
				}
			}
		}
	}
	seed := func(tree *intervalTree, ivs []ival) {
		if len(ivs) == 0 {
			return
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
		cur := ivs[0]
		for _, iv := range ivs[1:] {
			if iv.from <= cur.to+1 {
				if iv.to > cur.to {
					cur.to = iv.to
				}
				continue
			}
			tree.insert(cur.from, cur.to)
			res.btreeInserts++
			cur = iv
		}
		tree.insert(cur.from, cur.to)
		res.btreeInserts++
	}
	for p := range fixedInt {
		seed(intTrees[p], fixedInt[p])
	}
	for p := range fixedFlt {
		seed(fltTrees[p], fixedFlt[p])
	}

	// Collect and sort bundles by start position.
	type bundle struct {
		rep        int32
		start, end int32
	}
	var bundles []bundle
	for v := 0; v < nv; v++ {
		if find(int32(v)) == int32(v) && start[v] != -1 {
			bundles = append(bundles, bundle{rep: int32(v), start: start[v], end: end[v]})
		}
	}
	sort.Slice(bundles, func(i, j int) bool {
		if bundles[i].start != bundles[j].start {
			return bundles[i].start < bundles[j].start
		}
		return bundles[i].rep < bundles[j].rep
	})
	res.numBundles = len(bundles)

	usedCallee := map[uint8]bool{}
	for _, bd := range bundles {
		cls := vc.classes[bd.rep]
		var cands []uint8
		var trees []*intervalTree
		if cls == ClassFloat {
			cands, trees = fprs, fltTrees
		} else {
			cands, trees = gprs, intTrees
		}
		assigned := false
		for _, p := range cands {
			if trees[p].overlaps(bd.start, bd.end) {
				continue
			}
			trees[p].insert(bd.start, bd.end)
			res.btreeInserts++
			res.assign[bd.rep] = int32(p)
			if cls == ClassInt && tgt.IsCalleeSaved(p) {
				usedCallee[p] = true
			}
			assigned = true
			break
		}
		if !assigned {
			res.assign[bd.rep] = -1 - res.spills
			res.spills++
			res.numSpilled++
		}
	}
	// Propagate assignments from bundle representatives.
	for v := 0; v < nv; v++ {
		r := find(int32(v))
		if r != int32(v) {
			res.assign[v] = res.assign[r]
		}
	}
	for p := range usedCallee {
		res.usedCalleeSaved = append(res.usedCalleeSaved, p)
	}
	sort.Slice(res.usedCalleeSaved, func(i, j int) bool {
		return res.usedCalleeSaved[i] < res.usedCalleeSaved[j]
	})
	sp.End()
	statBTreeInserts.Add(int64(res.btreeInserts))
	statBundles.Add(int64(res.numBundles))
	statSpilled.Add(int64(res.numSpilled))
	return res
}
