package clift

import (
	"fmt"

	"qcc/internal/vt"
)

// emitter encodes allocated VCode into machine code. It runs the passes the
// paper attributes to Cranelift's emission stage: a clobber-calculation scan
// over all instructions and register assignments, a branch-size estimation
// pass over the register-allocator moves (veneer planning, with the 15-byte
// over-approximation the paper mentions), and the actual encoding.
type emitter struct {
	vc  *vcode
	ra  *raResult
	tgt *vt.Target
	asm vt.Assembler

	labels []vt.Label
	frame  int64
	// Reserved scratch registers (two per class).
	s0, s1   uint8
	fs0, fs1 uint8

	spillBase   int64
	cycleSlot   int64
	calleeBase  int64
	calleeRegs  []uint8
	estBytes    int64 // veneer-estimation result
	clobberMask uint64
}

// loc is a post-RA location: preg >= 0 or spill slot encoded negative.
type raLoc = int32

func emit(vc *vcode, ra *raResult, tgt *vt.Target, asm vt.Assembler) error {
	e := &emitter{vc: vc, ra: ra, tgt: tgt, asm: asm}
	all := tgt.AllocatableGPRs()
	e.s0 = all[len(all)-2]
	e.s1 = all[len(all)-1]
	e.fs0 = uint8(tgt.NumFPR - 2)
	e.fs1 = uint8(tgt.NumFPR - 1)

	// Clobber-calculation pass (before emission, as in Cranelift): scan
	// every instruction's assigned registers.
	e.clobberScan()

	// Veneer estimation: iterate over the allocator's edge moves and
	// estimate block sizes with a 15-byte-per-instruction bound.
	e.estimateVeneers()

	// Frame layout: cycle-break slot, spill slots, callee-saved area.
	e.cycleSlot = 0
	e.spillBase = 8
	e.calleeBase = e.spillBase + int64(ra.spills)*8
	e.calleeRegs = append([]uint8{}, ra.usedCalleeSaved...)
	// The scratch registers are callee-saved on both targets and are
	// always saved: they back spill fix-ups and move cycles.
	e.calleeRegs = appendUnique(e.calleeRegs, e.s0)
	e.calleeRegs = appendUnique(e.calleeRegs, e.s1)
	e.frame = e.calleeBase + int64(len(e.calleeRegs))*8
	e.frame = (e.frame + 15) &^ 15

	e.labels = make([]vt.Label, len(vc.blocks))
	for b := range e.labels {
		e.labels[b] = asm.NewLabel()
	}

	e.prologue()
	for b := range vc.blocks {
		asm.Bind(e.labels[b])
		blk := &vc.blocks[b]
		edge := 0
		for i := range blk.insts {
			in := &blk.insts[i]
			if in.op == vt.Br {
				// Edge moves precede the jump; a jump to the next block
				// in layout order falls through.
				if edge < len(blk.moves) {
					e.parallelMoves(blk.moves[edge][0], blk.moves[edge][1])
				}
				edge++
				if i == len(blk.insts)-1 && in.target == int32(b)+1 {
					continue
				}
				e.asm.Emit(vt.Instr{Op: vt.Br, Target: int32(e.labels[in.target])})
				continue
			}
			if in.op == vt.BrCC || in.op == vt.BrNZ {
				edge++ // brif edges carry no moves by construction
			}
			if err := e.inst(in); err != nil {
				return fmt.Errorf("clift: %s: %w", vc.name, err)
			}
		}
	}
	return nil
}

func appendUnique(s []uint8, v uint8) []uint8 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func (e *emitter) clobberScan() {
	for b := range e.vc.blocks {
		blk := &e.vc.blocks[b]
		for i := range blk.insts {
			visitOperands(&blk.insts[i], func(r *vreg, isDef bool, cls RegClass) {
				if !isDef || cls == ClassFloat {
					return
				}
				if isPreg(*r) {
					e.clobberMask |= 1 << pregNum(*r)
				} else if a := e.ra.assign[*r]; a >= 0 {
					e.clobberMask |= 1 << uint(a)
				}
			})
		}
	}
}

func (e *emitter) estimateVeneers() {
	const overApprox = 15 // bytes per instruction, as in the paper
	for b := range e.vc.blocks {
		blk := &e.vc.blocks[b]
		n := int64(len(blk.insts))
		for _, mv := range blk.moves {
			n += int64(len(mv[0]))
		}
		e.estBytes += n * overApprox
	}
}

func (e *emitter) prologue() {
	sp := e.tgt.SP
	e.asm.Emit(vt.Instr{Op: vt.SubI, RD: sp, RA: sp, Imm: e.frame})
	for i, r := range e.calleeRegs {
		e.asm.Emit(vt.Instr{Op: vt.Store64, RA: sp, RB: r, Imm: e.calleeBase + int64(i)*8})
	}
}

func (e *emitter) epilogue() {
	sp := e.tgt.SP
	for i, r := range e.calleeRegs {
		e.asm.Emit(vt.Instr{Op: vt.Load64, RD: r, RA: sp, Imm: e.calleeBase + int64(i)*8})
	}
	e.asm.Emit(vt.Instr{Op: vt.AddI, RD: sp, RA: sp, Imm: e.frame})
	e.asm.Emit(vt.Instr{Op: vt.Ret})
}

// locOf returns the location of an operand: preg number (>= 0) or spill
// slot (< 0, encoded -1-slot).
func (e *emitter) locOf(r vreg) raLoc {
	if isPreg(r) {
		return int32(pregNum(r))
	}
	return e.ra.assign[r]
}

func (e *emitter) slotOff(l raLoc) int64 { return e.spillBase + int64(-1-l)*8 }

// inst encodes one vinst, fixing up spilled operands through scratch
// registers and two-address constraints through moves.
func (e *emitter) inst(in *vinst) error {
	sp := e.tgt.SP
	// Resolve operand locations; spilled uses load into scratch.
	resolve := func(r vreg, cls RegClass, scratch uint8) (uint8, error) {
		l := e.locOf(r)
		if l == assignNone {
			return 0, fmt.Errorf("operand vreg %d unallocated", r)
		}
		if l >= 0 {
			return uint8(l), nil
		}
		if cls == ClassFloat {
			e.asm.Emit(vt.Instr{Op: vt.FLoad, RD: scratch, RA: sp, Imm: e.slotOff(l)})
		} else {
			e.asm.Emit(vt.Instr{Op: vt.Load64, RD: scratch, RA: sp, Imm: e.slotOff(l)})
		}
		return scratch, nil
	}
	// Defs: spilled results compute into scratch and store after.
	type defFix struct {
		slot  int64
		reg   uint8
		float bool
	}
	var fixes []defFix
	defReg := func(r vreg, cls RegClass, scratch uint8) (uint8, error) {
		l := e.locOf(r)
		if l == assignNone {
			return 0, fmt.Errorf("def vreg %d unallocated", r)
		}
		if l >= 0 {
			return uint8(l), nil
		}
		fixes = append(fixes, defFix{slot: e.slotOff(l), reg: scratch, float: cls == ClassFloat})
		return scratch, nil
	}
	flush := func() {
		for _, f := range fixes {
			if f.float {
				e.asm.Emit(vt.Instr{Op: vt.FStore, RA: sp, RB: f.reg, Imm: f.slot})
			} else {
				e.asm.Emit(vt.Instr{Op: vt.Store64, RA: sp, RB: f.reg, Imm: f.slot})
			}
		}
	}

	emitALU := func(op vt.Op, rd, ra, rb uint8, commutative bool) {
		if !e.tgt.TwoAddress {
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: ra, RB: rb})
			return
		}
		switch {
		case rd == ra:
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: rb})
		case rd == rb && commutative:
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: ra})
		case rd == rb:
			e.asm.Emit(vt.Instr{Op: vt.MovRR, RD: e.s1, RA: rb})
			e.asm.Emit(vt.Instr{Op: vt.MovRR, RD: rd, RA: ra})
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: e.s1})
		default:
			e.asm.Emit(vt.Instr{Op: vt.MovRR, RD: rd, RA: ra})
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: rb})
		}
	}
	emitALUImm := func(op vt.Op, rd, ra uint8, imm int64) {
		if !e.tgt.TwoAddress || rd == ra {
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: ra, Imm: imm})
			return
		}
		e.asm.Emit(vt.Instr{Op: vt.MovRR, RD: rd, RA: ra})
		e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, Imm: imm})
	}
	emitFALU := func(op vt.Op, rd, ra, rb uint8, commutative bool) {
		if !e.tgt.TwoAddress {
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: ra, RB: rb})
			return
		}
		switch {
		case rd == ra:
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: rb})
		case rd == rb && commutative:
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: ra})
		case rd == rb:
			e.asm.Emit(vt.Instr{Op: vt.FMovRR, RD: e.fs1, RA: rb})
			e.asm.Emit(vt.Instr{Op: vt.FMovRR, RD: rd, RA: ra})
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: e.fs1})
		default:
			e.asm.Emit(vt.Instr{Op: vt.FMovRR, RD: rd, RA: ra})
			e.asm.Emit(vt.Instr{Op: op, RD: rd, RA: rd, RB: rb})
		}
	}

	switch in.op {
	case vt.MovRR:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		if rd != ra {
			e.asm.Emit(vt.Instr{Op: vt.MovRR, RD: rd, RA: ra})
		}
		flush()
	case vt.FMovRR:
		ra, err := resolve(in.ra, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		if rd != ra {
			e.asm.Emit(vt.Instr{Op: vt.FMovRR, RD: rd, RA: ra})
		}
		flush()
	case vt.MovRI:
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		if in.sym >= 0 {
			e.asm.EmitMovSym(rd, in.sym)
		} else {
			e.asm.Emit(vt.Instr{Op: vt.MovRI, RD: rd, Imm: in.imm})
		}
		flush()
	case vt.FMovRI:
		rd, err := defReg(in.rd, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.FMovRI, RD: rd, Imm: in.imm})
		flush()

	case vt.Add, vt.Sub, vt.Mul, vt.And, vt.Or, vt.Xor, vt.Shl, vt.Shr, vt.Sar,
		vt.Rotr, vt.SDiv, vt.SRem, vt.UDiv, vt.URem, vt.Crc32:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassInt, e.s1)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		comm := in.op == vt.Add || in.op == vt.Mul || in.op == vt.And ||
			in.op == vt.Or || in.op == vt.Xor
		emitALU(in.op, rd, ra, rb, comm)
		flush()

	case vt.AddI, vt.SubI, vt.MulI, vt.AndI, vt.OrI, vt.XorI, vt.ShlI, vt.ShrI,
		vt.SarI, vt.RotrI:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		emitALUImm(in.op, rd, ra, in.imm)
		flush()

	case vt.Neg, vt.Not:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		if e.tgt.TwoAddress && rd != ra {
			e.asm.Emit(vt.Instr{Op: vt.MovRR, RD: rd, RA: ra})
			ra = rd
		}
		e.asm.Emit(vt.Instr{Op: in.op, RD: rd, RA: ra})
		flush()

	case vt.MulWideU, vt.MulWideS:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassInt, e.s1)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rc, err := defReg(in.rc, ClassInt, e.s1)
		if err != nil {
			return err
		}
		if rd == rc {
			return fmt.Errorf("mulwide results share register r%d", rd)
		}
		e.asm.Emit(vt.Instr{Op: in.op, RD: rd, RC: rc, RA: ra, RB: rb})
		flush()

	case vt.SetCC:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassInt, e.s1)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.SetCC, Cond: in.cond, RD: rd, RA: ra, RB: rb})
		flush()

	case vt.Load8, vt.Load8S, vt.Load16, vt.Load16S, vt.Load32, vt.Load32S, vt.Load64,
		vt.LoadU8, vt.LoadU8S, vt.LoadU16, vt.LoadU16S, vt.LoadU32, vt.LoadU32S, vt.LoadU64:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: in.op, RD: rd, RA: ra, Imm: in.imm})
		flush()
	case vt.Store8, vt.Store16, vt.Store32, vt.Store64,
		vt.StoreU8, vt.StoreU16, vt.StoreU32, vt.StoreU64:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassInt, e.s1)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: in.op, RA: ra, RB: rb, Imm: in.imm})
	case vt.FLoad, vt.FLoadU:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: in.op, RD: rd, RA: ra, Imm: in.imm})
		flush()
	case vt.FStore, vt.FStoreU:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: in.op, RA: ra, RB: rb, Imm: in.imm})

	case vt.FAdd, vt.FSub, vt.FMul, vt.FDiv:
		ra, err := resolve(in.ra, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassFloat, e.fs1)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		emitFALU(in.op, rd, ra, rb, in.op == vt.FAdd || in.op == vt.FMul)
		flush()
	case vt.FCmp:
		ra, err := resolve(in.ra, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassFloat, e.fs1)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.FCmp, Cond: in.cond, RD: rd, RA: ra, RB: rb})
		flush()
	case vt.CvtSI2F:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.CvtSI2F, RD: rd, RA: ra})
		flush()
	case vt.CvtF2SI:
		ra, err := resolve(in.ra, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.CvtF2SI, RD: rd, RA: ra})
		flush()
	case vt.MovRF:
		ra, err := resolve(in.ra, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassInt, e.s0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.MovRF, RD: rd, RA: ra})
		flush()
	case vt.MovFR:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rd, err := defReg(in.rd, ClassFloat, e.fs0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.MovFR, RD: rd, RA: ra})
		flush()

	case vt.BrCC:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		rb, err := resolve(in.rb, ClassInt, e.s1)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.BrCC, Cond: in.cond, RA: ra, RB: rb, Target: int32(e.labels[in.target])})
	case vt.BrNZ:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.BrNZ, RA: ra, Target: int32(e.labels[in.target])})
	case vt.TrapNZ:
		ra, err := resolve(in.ra, ClassInt, e.s0)
		if err != nil {
			return err
		}
		e.asm.Emit(vt.Instr{Op: vt.TrapNZ, RA: ra, Imm: in.imm})
	case vt.Trap:
		e.asm.Emit(vt.Instr{Op: vt.Trap, Imm: in.imm})
	case vt.CallRT:
		e.asm.Emit(vt.Instr{Op: vt.CallRT, Imm: in.imm})
	case vt.Ret:
		e.epilogue()
	default:
		return fmt.Errorf("cannot emit vinst %s", in.op)
	}
	return nil
}

// parallelMoves emits the block-parameter moves for one edge, resolving
// dependency order and breaking cycles through the cycle-scratch stack slot.
func (e *emitter) parallelMoves(dsts, srcs []vreg) {
	type move struct {
		dst, src raLoc
		cls      RegClass
		fromCyc  bool
	}
	var pending []move
	for k := range dsts {
		d, s := e.locOf(dsts[k]), e.locOf(srcs[k])
		if d == s {
			continue
		}
		pending = append(pending, move{dst: d, src: s, cls: e.vc.classes[dsts[k]]})
	}
	emitMove := func(m move) {
		sp := e.tgt.SP
		scr, fscr := e.s0, e.fs0
		srcSlot := int64(0)
		srcIsSlot := m.src < 0
		if m.fromCyc {
			srcIsSlot = true
			srcSlot = e.cycleSlot
		} else if srcIsSlot {
			srcSlot = e.slotOff(m.src)
		}
		if m.cls == ClassFloat {
			switch {
			case !srcIsSlot && m.dst >= 0:
				e.asm.Emit(vt.Instr{Op: vt.FMovRR, RD: uint8(m.dst), RA: uint8(m.src)})
			case !srcIsSlot:
				e.asm.Emit(vt.Instr{Op: vt.FStore, RA: sp, RB: uint8(m.src), Imm: e.slotOff(m.dst)})
			case m.dst >= 0:
				e.asm.Emit(vt.Instr{Op: vt.FLoad, RD: uint8(m.dst), RA: sp, Imm: srcSlot})
			default:
				e.asm.Emit(vt.Instr{Op: vt.FLoad, RD: fscr, RA: sp, Imm: srcSlot})
				e.asm.Emit(vt.Instr{Op: vt.FStore, RA: sp, RB: fscr, Imm: e.slotOff(m.dst)})
			}
			return
		}
		switch {
		case !srcIsSlot && m.dst >= 0:
			e.asm.Emit(vt.Instr{Op: vt.MovRR, RD: uint8(m.dst), RA: uint8(m.src)})
		case !srcIsSlot:
			e.asm.Emit(vt.Instr{Op: vt.Store64, RA: sp, RB: uint8(m.src), Imm: e.slotOff(m.dst)})
		case m.dst >= 0:
			e.asm.Emit(vt.Instr{Op: vt.Load64, RD: uint8(m.dst), RA: sp, Imm: srcSlot})
		default:
			e.asm.Emit(vt.Instr{Op: vt.Load64, RD: scr, RA: sp, Imm: srcSlot})
			e.asm.Emit(vt.Instr{Op: vt.Store64, RA: sp, RB: scr, Imm: e.slotOff(m.dst)})
		}
	}
	sameLoc := func(a, b move) bool { return a.dst == b.src && !b.fromCyc && a.cls == b.cls }
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			m := pending[i]
			blocked := false
			for j := range pending {
				if j != i && sameLoc(m, pending[j]) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			emitMove(m)
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
			i--
		}
		if progress {
			continue
		}
		// Cycle: the first move's destination is a source other moves
		// still need. Park its current value in the cycle slot,
		// redirect those readers, then perform the move.
		m := pending[0]
		sp := e.tgt.SP
		if m.cls == ClassFloat {
			if m.dst >= 0 {
				e.asm.Emit(vt.Instr{Op: vt.FStore, RA: sp, RB: uint8(m.dst), Imm: e.cycleSlot})
			} else {
				e.asm.Emit(vt.Instr{Op: vt.FLoad, RD: e.fs0, RA: sp, Imm: e.slotOff(m.dst)})
				e.asm.Emit(vt.Instr{Op: vt.FStore, RA: sp, RB: e.fs0, Imm: e.cycleSlot})
			}
		} else {
			if m.dst >= 0 {
				e.asm.Emit(vt.Instr{Op: vt.Store64, RA: sp, RB: uint8(m.dst), Imm: e.cycleSlot})
			} else {
				e.asm.Emit(vt.Instr{Op: vt.Load64, RD: e.s0, RA: sp, Imm: e.slotOff(m.dst)})
				e.asm.Emit(vt.Instr{Op: vt.Store64, RA: sp, RB: e.s0, Imm: e.cycleSlot})
			}
		}
		for j := 1; j < len(pending); j++ {
			if pending[j].src == m.dst && pending[j].cls == m.cls && !pending[j].fromCyc {
				pending[j].fromCyc = true
			}
		}
		emitMove(m)
		pending = pending[1:]
	}
}
