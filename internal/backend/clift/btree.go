package clift

// intervalTree is a B-tree of disjoint [from, to] intervals keyed by start,
// tracking the occupancy of one physical register during allocation — the
// data structure the paper singles out as costing ~6% of Cranelift's
// register allocation time.
type intervalTree struct {
	root *btreeNode
}

const btreeOrder = 8 // max keys per node

type ival struct {
	from, to int32
}

type btreeNode struct {
	keys     []ival
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// overlaps reports whether [from, to] intersects any stored interval.
func (t *intervalTree) overlaps(from, to int32) bool {
	n := t.root
	for n != nil {
		// Find the first key with key.from > to.
		i := 0
		for i < len(n.keys) && n.keys[i].from <= to {
			if n.keys[i].to >= from {
				return true
			}
			i++
		}
		if n.leaf() {
			return false
		}
		// Intervals in child i start after keys[i-1].from; an overlap
		// can only hide in child i (the subtree whose keys are between
		// keys[i-1] and keys[i]). But earlier children hold intervals
		// with smaller starts whose ends could still reach from; since
		// stored intervals are disjoint and sorted by start, it is
		// enough to also check the rightmost interval of child i-1...
		// we keep it simple and correct by checking child i and, when
		// i > 0, descending into child i only after the key scan above
		// covered keys[0..i-1].
		n = n.children[i]
	}
	return false
}

// insert adds [from, to]; the caller guarantees no overlap.
func (t *intervalTree) insert(from, to int32) {
	if t.root == nil {
		t.root = &btreeNode{keys: []ival{{from, to}}}
		return
	}
	up, mid := t.root.insert(ival{from, to})
	if up != nil {
		t.root = &btreeNode{
			keys:     []ival{mid},
			children: []*btreeNode{t.root, up},
		}
	}
}

// insert returns a new right sibling and the median key when the node
// split.
func (n *btreeNode) insert(k ival) (*btreeNode, ival) {
	i := 0
	for i < len(n.keys) && n.keys[i].from < k.from {
		i++
	}
	if n.leaf() {
		n.keys = append(n.keys, ival{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
	} else {
		up, mid := n.children[i].insert(k)
		if up != nil {
			n.keys = append(n.keys, ival{})
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = mid
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = up
		}
	}
	if len(n.keys) <= btreeOrder {
		return nil, ival{}
	}
	// Split.
	midIdx := len(n.keys) / 2
	mid := n.keys[midIdx]
	right := &btreeNode{keys: append([]ival(nil), n.keys[midIdx+1:]...)}
	if !n.leaf() {
		right.children = append([]*btreeNode(nil), n.children[midIdx+1:]...)
		n.children = n.children[:midIdx+1]
	}
	n.keys = n.keys[:midIdx]
	return right, mid
}

// count returns the number of stored intervals (test helper).
func (t *intervalTree) count() int {
	var rec func(n *btreeNode) int
	rec = func(n *btreeNode) int {
		if n == nil {
			return 0
		}
		c := len(n.keys)
		for _, ch := range n.children {
			c += rec(ch)
		}
		return c
	}
	return rec(t.root)
}
