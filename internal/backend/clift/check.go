package clift

import (
	"fmt"

	"qcc/internal/mcv"
	"qcc/internal/vt"
)

// buildCheckFunc adapts allocated VCode into the machine-code verifier's
// model. Operand locations come straight from the allocation result (the
// emitter's scratch-register fixups for spilled operands are deliberately
// abstracted away: an operand assigned to a spill slot reads/writes that
// slot). Branches carry explicit edges mirroring the emitter's edge-move
// consumption, so the checker sees exactly the moves that will be emitted.
func buildCheckFunc(vc *vcode, ra *raResult, tgt *vt.Target) (*mcv.Func, []mcv.Diag) {
	all := tgt.AllocatableGPRs()
	saved := append([]uint8{}, ra.usedCalleeSaved...)
	saved = appendUnique(saved, all[len(all)-2])
	saved = appendUnique(saved, all[len(all)-1])
	f := &mcv.Func{Name: vc.name, Target: tgt, Saved: saved, NumSlots: ra.spills}

	var diags []mcv.Diag
	curB, curI := int32(0), 0
	locV := func(r vreg, cls RegClass) (int32, mcv.Loc, bool) {
		if r == vnone {
			return -1, mcv.LocNone, false
		}
		if isPreg(r) {
			p := pregNum(r)
			if cls == ClassFloat {
				return -1, mcv.FPR(p), true
			}
			return -1, mcv.GPR(p), true
		}
		a := ra.assign[r]
		switch {
		case a == assignNone:
			diags = append(diags, mcv.Diag{
				Func: vc.name, Block: curB, Inst: curI, Off: -1,
				Msg: fmt.Sprintf("vreg v%d has no allocation", r),
			})
			return -1, mcv.LocNone, false
		case a >= 0:
			if cls == ClassFloat {
				return r, mcv.FPR(uint8(a)), true
			}
			return r, mcv.GPR(uint8(a)), true
		default:
			return r, mcv.Slot(-1 - a), true
		}
	}
	classOf := func(r vreg) RegClass {
		if r >= 0 {
			return vc.classes[r]
		}
		return ClassInt
	}
	convMoves := func(mv [2][]vreg) []mcv.Move {
		dsts, srcs := mv[0], mv[1]
		out := make([]mcv.Move, 0, len(dsts))
		for k := range dsts {
			cls := classOf(dsts[k])
			if dsts[k] < 0 {
				cls = classOf(srcs[k])
			}
			dv, dl, dok := locV(dsts[k], cls)
			sv, sl, sok := locV(srcs[k], cls)
			if dok && sok {
				out = append(out, mcv.Move{SrcV: sv, DstV: dv, Src: sl, Dst: dl})
			}
		}
		return out
	}

	for b := range vc.blocks {
		curB = int32(b)
		blk := &vc.blocks[b]
		cb := mcv.Block{Succs: append([]int32{}, blk.succs...)}
		edge := 0
		for i := range blk.insts {
			curI = len(cb.Insts)
			in := &blk.insts[i]
			switch in.op {
			case vt.Br:
				e := &mcv.Edge{Succ: in.target}
				if edge < len(blk.moves) {
					e.Moves = convMoves(blk.moves[edge])
				}
				edge++
				cb.Insts = append(cb.Insts, mcv.Inst{Op: in.op, Edge: e})
			case vt.BrCC, vt.BrNZ:
				edge++ // brif edges carry no moves by construction
				inst := mcv.Inst{Op: in.op, Edge: &mcv.Edge{Succ: in.target}}
				visitOperands(in, func(r *vreg, isDef bool, cls RegClass) {
					if v, l, ok := locV(*r, cls); ok {
						inst.Ops = append(inst.Ops, mcv.Operand{V: v, Loc: l, Def: isDef})
					}
				})
				cb.Insts = append(cb.Insts, inst)
			case vt.MovRR, vt.FMovRR:
				cls := ClassInt
				if in.op == vt.FMovRR {
					cls = ClassFloat
				}
				sv, sl, sok := locV(in.ra, cls)
				dv, dl, dok := locV(in.rd, cls)
				if sok && dok {
					cb.Insts = append(cb.Insts, mcv.Inst{
						Kind: mcv.KindMove, Op: in.op,
						Move: mcv.Move{SrcV: sv, DstV: dv, Src: sl, Dst: dl},
					})
				}
			default:
				inst := mcv.Inst{Op: in.op, Call: in.isCall}
				visitOperands(in, func(r *vreg, isDef bool, cls RegClass) {
					if v, l, ok := locV(*r, cls); ok {
						inst.Ops = append(inst.Ops, mcv.Operand{V: v, Loc: l, Def: isDef})
					}
				})
				cb.Insts = append(cb.Insts, inst)
			}
		}
		f.Blocks = append(f.Blocks, cb)
	}
	return f, diags
}
