package clift

import (
	"math/rand"
	"testing"
)

func TestIntervalTreeBasics(t *testing.T) {
	tr := &intervalTree{}
	if tr.overlaps(0, 100) {
		t.Error("empty tree overlaps")
	}
	tr.insert(10, 20)
	tr.insert(30, 40)
	cases := []struct {
		from, to int32
		want     bool
	}{
		{0, 5, false}, {21, 29, false}, {41, 100, false},
		{0, 10, true}, {15, 17, true}, {20, 30, true},
		{35, 35, true}, {40, 60, true}, {5, 50, true},
	}
	for _, c := range cases {
		if got := tr.overlaps(c.from, c.to); got != c.want {
			t.Errorf("overlaps(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// TestIntervalTreeRandomized cross-checks the B-tree against a slice oracle
// with many disjoint intervals (forcing splits).
func TestIntervalTreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := &intervalTree{}
	var oracle [][2]int32
	// Insert 500 disjoint intervals at even positions.
	positions := rng.Perm(2000)
	for _, p := range positions[:500] {
		from := int32(p * 10)
		to := from + int32(rng.Intn(8))
		if tr.overlaps(from, to) {
			continue
		}
		tr.insert(from, to)
		oracle = append(oracle, [2]int32{from, to})
	}
	if tr.count() != len(oracle) {
		t.Fatalf("tree has %d intervals, oracle %d", tr.count(), len(oracle))
	}
	check := func(from, to int32) bool {
		for _, iv := range oracle {
			if iv[0] <= to && iv[1] >= from {
				return true
			}
		}
		return false
	}
	for i := 0; i < 5000; i++ {
		from := int32(rng.Intn(21000) - 500)
		to := from + int32(rng.Intn(50))
		if got, want := tr.overlaps(from, to), check(from, to); got != want {
			t.Fatalf("overlaps(%d,%d) = %v, oracle %v", from, to, got, want)
		}
	}
}
