package clift

import (
	"fmt"

	"qcc/internal/vt"
)

// VCode is the machine-instruction representation: a linear array of target
// instructions over virtual registers, plus block structure for register
// allocation and emission.
type vreg = int32

// Operand encoding: values >= 0 are virtual registers; values < 0 are
// physical registers encoded as -1-preg; vnone marks absent operands.
const vnone vreg = -0x7FFFFFFF

func preg(p uint8) vreg    { return -1 - int32(p) }
func isPreg(r vreg) bool   { return r < 0 && r != vnone }
func pregNum(r vreg) uint8 { return uint8(-1 - r) }

// vinst is one VCode instruction. Op/Cond/Imm follow vt semantics; branch
// targets are VCode block ids resolved at emission.
type vinst struct {
	op     vt.Op
	cond   vt.Cond
	rd     vreg
	ra     vreg
	rb     vreg
	rc     vreg
	imm    int64
	target int32
	// float marks rd/ra/rb as float-class (FPR) registers.
	float bool
	// isCall marks runtime calls (clobbers caller-saved registers).
	isCall bool
	// sym is a relocation symbol for MovRI of function addresses (-1
	// none).
	sym int32
}

type vblock struct {
	insts []vinst
	// succs are VCode block ids; edgeMoves[k] are the (dst param vreg,
	// src arg vreg) move pairs for edge k, applied before the branch.
	succs []int32
	moves [][2][]vreg // per successor: dst params, src args
}

type vcode struct {
	blocks []vblock
	// nvregs is the virtual register count; classes[v] is each vreg's
	// register class.
	nvregs  int32
	classes []RegClass
	name    string
	rets    int
}

// prepare holds the results of the three ISel preparation passes the paper
// describes: virtual register assignment with classes, side-effect
// partitioning, and use counting via depth-first search.
type prepare struct {
	vregOf    []vreg // CIR value -> vreg
	classes   []RegClass
	partition []int32 // per CIR instruction: side-effect partition index
	uses      []int32 // per CIR value: number of uses (2 = "many")
	nvregs    int32
}

// runPrepare performs the three passes over the complete IR.
func runPrepare(f *Func) *prepare {
	p := &prepare{}

	// Pass 1: allocate virtual registers and mark register classes.
	p.vregOf = make([]vreg, f.NumVals)
	p.classes = make([]RegClass, f.NumVals)
	for v := 0; v < f.NumVals; v++ {
		p.vregOf[v] = vreg(v)
		p.classes[v] = f.ValClass[v]
	}
	p.nvregs = vreg(f.NumVals)

	// Pass 2: partition instructions by side effects so the selector
	// never merges across them.
	p.partition = make([]int32, len(f.Insts))
	part := int32(0)
	for b := range f.Blocks {
		f.forEachInst(int32(b), func(idx int32, in *Inst) {
			if in.Op.hasSideEffects() {
				part++
			}
			p.partition[idx] = part
		})
	}

	// Pass 3: use counts via depth-first traversal from roots
	// (side-effecting and control instructions), so the selector knows
	// which results have a unique user.
	p.uses = make([]int32, f.NumVals)
	var mark func(v Val)
	mark = func(v Val) {
		if v == noVal || v == vnone {
			return
		}
		p.uses[v]++
	}
	for b := range f.Blocks {
		f.forEachInst(int32(b), func(idx int32, in *Inst) {
			for _, a := range in.Args {
				if a >= 0 {
					mark(a)
				}
			}
			for k := int32(0); k < in.NArgs; k++ {
				mark(f.Extra[in.ExtraAt+k])
			}
		})
	}
	return p
}

func (p *prepare) newTemp(cls RegClass) vreg {
	v := p.nvregs
	p.nvregs++
	p.classes = append(p.classes, cls)
	return v
}

// lowerer is the tree-matching instruction selector.
type lowerer struct {
	f    *Func
	p    *prepare
	tgt  *vt.Target
	out  *vcode
	cur  *vblock
	done []bool // CIR instructions merged into a consumer
}

// lower selects machine instructions for the whole function. Blocks are
// processed in layout order; within a block, instructions are matched
// against their operand trees so single-use pure producers (constants,
// address adds, comparisons feeding branches) merge into their consumer.
func lower(f *Func, p *prepare, tgt *vt.Target) (*vcode, error) {
	lo := &lowerer{
		f: f, p: p, tgt: tgt,
		out:  &vcode{name: f.Name, rets: f.Rets},
		done: make([]bool, len(f.Insts)),
	}
	lo.out.blocks = make([]vblock, len(f.Blocks))
	for b := range f.Blocks {
		lo.cur = &lo.out.blocks[b]
		if b == 0 {
			lo.lowerEntryParams()
		}
		// Mark merged producers in a backward pre-scan, then emit
		// forward.
		lo.matchTrees(int32(b))
		if err := lo.lowerBlock(int32(b)); err != nil {
			return nil, err
		}
	}
	lo.out.nvregs = p.nvregs
	lo.out.classes = p.classes
	return lo.out, nil
}

// lowerEntryParams moves the incoming argument registers into the function
// parameter vregs.
func (lo *lowerer) lowerEntryParams() {
	regIdx := 0
	fregIdx := 0
	for _, v := range lo.f.Params {
		if lo.f.ValClass[v] == ClassFloat {
			src := lo.tgt.FloatArgs[fregIdx]
			fregIdx++
			lo.emit(vinst{op: vt.FMovRR, rd: lo.p.vregOf[v], ra: preg(src), float: true, rc: vnone, rb: vnone, sym: -1})
		} else {
			src := lo.tgt.IntArgs[regIdx]
			regIdx++
			lo.emit(vinst{op: vt.MovRR, rd: lo.p.vregOf[v], ra: preg(src), rb: vnone, rc: vnone, sym: -1})
		}
	}
}

func (lo *lowerer) emit(in vinst) {
	if in.sym == 0 {
		in.sym = -1
	}
	lo.cur.insts = append(lo.cur.insts, in)
}

// mergeable reports whether the producer of value v can be merged into its
// single consumer: a pure, single-use definition. The side-effect partition
// (pass 2) guards instructions that touch memory; pure arithmetic may sink
// freely.
func (lo *lowerer) mergeable(v Val) (int32, bool) {
	if v < 0 {
		return -1, false
	}
	def := lo.f.ValDef[v]
	if def < 0 {
		return -1, false // block parameter
	}
	in := &lo.f.Insts[def]
	if in.Op.hasSideEffects() || lo.p.uses[v] != 1 {
		return -1, false
	}
	return def, true
}

// constArg returns the constant behind v if it is an iconst. Constants are
// rematerializable, so folding does not require single-use.
func (lo *lowerer) constArg(v Val) (int64, int32, bool) {
	if v < 0 {
		return 0, -1, false
	}
	def := lo.f.ValDef[v]
	if def < 0 || lo.f.Insts[def].Op != OpIconst {
		return 0, -1, false
	}
	return lo.f.Insts[def].Imm, def, true
}

// matchTrees walks the block backward marking producers merged into their
// consumers (the tree-matching phase).
func (lo *lowerer) matchTrees(b int32) {
	f := lo.f
	// Collect instruction indices to iterate in reverse.
	var order []int32
	f.forEachInst(b, func(idx int32, in *Inst) { order = append(order, idx) })
	for i := len(order) - 1; i >= 0; i-- {
		idx := order[i]
		in := &f.Insts[idx]
		if lo.done[idx] {
			continue
		}
		switch in.Op {
		case OpBrif:
			// Fuse icmp into the branch.
			if def, ok := lo.mergeable(in.Args[0]); ok && f.Insts[def].Op == OpIcmp {
				lo.done[def] = true
			}
		case OpIadd, OpIsub, OpImul, OpBand, OpBor, OpBxor,
			OpIshl, OpUshr, OpSshr, OpRotr, OpIcmp:
			// Fold a constant right operand into an immediate form;
			// the constant's own definition dies when this was its
			// only use.
			if _, def, ok := lo.constArg(in.Args[1]); ok && lo.p.uses[f.Insts[def].Res[0]] == 1 {
				lo.done[def] = true
			}
		case OpLoad8U, OpLoad8S, OpLoad16S, OpLoad32S, OpLoad64, OpFload,
			OpStore8, OpStore16, OpStore32, OpStore64, OpFstore:
			// Fold iadd(base, const) into the displacement.
			if def, ok := lo.mergeable(in.Args[0]); ok && f.Insts[def].Op == OpIadd {
				add := &f.Insts[def]
				if _, cdef, ok := lo.constArg(add.Args[1]); ok {
					lo.done[def] = true
					if lo.p.uses[f.Insts[cdef].Res[0]] == 1 {
						lo.done[cdef] = true
					}
				}
			}
		}
	}
}

// vregArg returns the vreg for a CIR value operand.
func (lo *lowerer) val(v Val) vreg {
	return lo.p.vregOf[v]
}

// amode resolves a load/store address to (base vreg, displacement),
// using the folded iadd+const pattern when matchTrees marked it.
func (lo *lowerer) amode(v Val) (vreg, int64) {
	def := lo.f.ValDef[v]
	if def >= 0 && lo.done[def] && lo.f.Insts[def].Op == OpIadd {
		add := &lo.f.Insts[def]
		if imm, _, ok := lo.constArg(add.Args[1]); ok {
			return lo.val(add.Args[0]), imm
		}
	}
	return lo.val(v), 0
}

var _ = fmt.Sprintf
