package clift

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/mcv"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the Cranelift-like back-end.
type Engine struct {
	opts Options
}

// New returns the engine with all custom instructions enabled (the paper's
// tuned configuration).
func New() *Engine { return &Engine{} }

// NewWithOptions returns the engine with specific custom instructions
// disabled, for the Table II ablation.
func NewWithOptions(opts Options) *Engine { return &Engine{opts: opts} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "Cranelift" }

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Module exposes the linked machine-code image (byte-identity tests,
// disassembly tooling).
func (x *exec) Module() *vm.Module { return x.mod }

// Compile implements backend.Engine via the shared sequential unit driver:
// each function runs through the full Cranelift-style pipeline individually
// (Cranelift compiles one function at a time); the link step then
// concatenates the per-function buffers and patches relocations.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	return backend.CompileUnits(e, mod, env)
}

// moduleCompiler implements backend.ModuleCompiler for one (module, env).
type moduleCompiler struct {
	mod  *qir.Module
	env  *backend.Env
	opts Options
	tgt  *vt.Target
}

// unit is the per-function payload: one function's emitted buffer (branches
// PC-relative) plus its unit-relative function-index relocations.
type unit struct {
	code   []byte
	relocs []vt.Reloc
}

// BeginModule implements backend.FuncEngine. Shared-state mutation happens
// here: string constants are interned into machine memory and every runtime
// helper translation can fall back to — depending on the ablation options —
// is imported into the module's runtime-name table, mirroring the
// conditions in translate/trapArith.
func (e *Engine) BeginModule(mod *qir.Module, env *backend.Env, ph *backend.Phaser) (backend.ModuleCompiler, error) {
	backend.PreIntern(mod, env.DB)
	for _, f := range mod.Funcs {
		for b := range f.Blocks {
			for _, v := range f.Blocks[b].List {
				in := &f.Instrs[v]
				switch in.Op {
				case qir.OpSMulTrap, qir.OpSAddTrap, qir.OpSSubTrap:
					if in.Type == qir.I128 {
						if in.Op == qir.OpSMulTrap {
							mod.RTImport(rt.FnI128MulOv)
						}
					} else if !isNarrow(in.Type) && e.opts.NoOverflow {
						switch in.Op {
						case qir.OpSAddTrap:
							mod.RTImport(rt.FnAddOv64)
						case qir.OpSSubTrap:
							mod.RTImport(rt.FnSubOv64)
						default:
							mod.RTImport(rt.FnMulOv64)
						}
					}
				case qir.OpCrc32:
					if e.opts.NoCrc32 {
						mod.RTImport(rt.FnCrc32Help)
					}
				}
			}
		}
	}
	return &moduleCompiler{mod: mod, env: env, opts: e.opts, tgt: vt.ForArch(env.Arch)}, nil
}

// Variant implements backend.ModuleCompiler (cache keying): the ablation
// options change emitted code, so they are part of the identity.
func (c *moduleCompiler) Variant() string {
	return fmt.Sprintf("clift/v1;crc32=%t;ovf=%t;mulwide=%t",
		!c.opts.NoCrc32, !c.opts.NoOverflow, !c.opts.NoMulWide)
}

// CompileFunc implements backend.ModuleCompiler: the per-function
// Cranelift-style pipeline, IRGen through Emit.
func (c *moduleCompiler) CompileFunc(i int, ph *backend.Phaser) (*backend.Unit, error) {
	f := c.mod.Funcs[i]

	// IRGen: two-pass translation with hash-map value mapping.
	sp := ph.Begin("IRGen")
	cir, err := translate(f, c.env, c.opts)
	sp.End()
	if err != nil {
		return nil, err
	}

	// IRPasses: CFG and dominator-tree computation on the IR.
	sp = ph.Begin("IRPasses")
	computeDomTree(cir)
	sp.End()

	// ISelPrepare: the three preparation passes.
	sp = ph.Begin("ISelPrepare")
	prep := runPrepare(cir)
	sp.End()

	// ISel: tree-matching lowering to VCode.
	sp = ph.Begin("ISel")
	vc, err := lower(cir, prep, c.tgt)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("clift: %s: %w", f.Name, err)
	}

	// RegAlloc (live-range building, bundle merging, assignment).
	rsp := ph.BeginGroup("RegAlloc")
	ra := allocate(vc, c.tgt, ph)
	rsp.End()
	ph.Count("bundles", int64(ra.numBundles))
	ph.Count("spilled", int64(ra.numSpilled))
	ph.Count("btree_inserts", int64(ra.btreeInserts))

	if c.env.Options.Check {
		csp := ph.Begin("Check.RegAlloc")
		cf, cdiags := buildCheckFunc(vc, ra, c.tgt)
		cdiags = append(cdiags, mcv.CheckFunc(cf)...)
		csp.End()
		if err := mcv.Error("clift: regalloc check", cdiags); err != nil {
			return nil, err
		}
	}

	// Emit.
	sp = ph.Begin("Emit")
	asm := vt.NewAssembler(c.env.Arch)
	if err := emit(vc, ra, c.tgt, asm); err != nil {
		sp.End()
		return nil, err
	}
	code, relocs, err := asm.Finish()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("clift: %s: %w", f.Name, err)
	}
	return &backend.Unit{
		Index: i, Name: f.Name, Bytes: len(code),
		Payload: &unit{code: code, relocs: relocs},
	}, nil
}

// Link implements backend.ModuleCompiler: concatenate function buffers,
// apply relocations, register unwind info.
func (c *moduleCompiler) Link(units []*backend.Unit, ph *backend.Phaser) (backend.Exec, error) {
	lsp := ph.Begin("Link")
	total := 0
	for _, u := range units {
		total += len(u.Payload.(*unit).code)
	}
	code := make([]byte, 0, total)
	offsets := make([]int32, len(units))
	var unwind []vm.UnwindRange
	for i, u := range units {
		p := u.Payload.(*unit)
		offsets[i] = int32(len(code))
		code = append(code, p.code...)
		unwind = append(unwind, vm.UnwindRange{
			Start: offsets[i], End: int32(len(code)), Name: u.Name,
			CFI:  []byte{0x01},
			Func: int32(u.Index),
		})
	}
	// Relocations are unit-relative; rebase copies rather than the
	// (possibly cache-shared) payload entries.
	for i, u := range units {
		for _, r := range u.Payload.(*unit).relocs {
			r.Offset += offsets[i]
			r.Patch(code, int64(offsets[r.Sym]))
		}
	}
	vmod, err := vm.Load(c.env.Arch, code)
	if err != nil {
		lsp.End()
		return nil, fmt.Errorf("clift: %w", err)
	}
	vmod.RegisterUnwind(unwind)
	vmod.SetFuse(!c.env.Options.NoFuse)
	if err := c.env.DB.Bind(c.mod.RTNames); err != nil {
		lsp.End()
		return nil, err
	}
	lsp.End()

	if c.env.Options.Check {
		csp := ph.Begin("Check.Lint")
		ldiags := mcv.Lint(vmod.Prog, vmod.Funcs(), len(c.mod.RTNames))
		csp.End()
		if err := mcv.Error("clift: machine lint", ldiags); err != nil {
			return nil, err
		}
		csp = ph.Begin("Check.Summary")
		ph.Stats().Summaries = mcv.Summarize(vmod.Prog, vmod.Funcs(), c.mod.RTNames)
		csp.End()
	}

	ph.Stats().CodeBytes = len(code)
	return &exec{m: c.env.DB.M, mod: vmod, offsets: offsets}, nil
}

// computeDomTree runs the Cooper–Harvey–Kennedy dominator algorithm over
// the CIR CFG (the IRPasses phase of the paper's breakdown). The result
// feeds block-layout sanity checks.
func computeDomTree(f *Func) []int32 {
	n := len(f.Blocks)
	// Reverse postorder.
	seen := make([]bool, n)
	var post []int32
	var succBuf []int32
	type frame struct {
		b    int32
		next int
	}
	stack := []frame{{b: 0}}
	seen[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succBuf = f.succs(fr.b, succBuf[:0])
		if fr.next < len(succBuf) {
			s := succBuf[fr.next]
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int32, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	num := make([]int32, n)
	for i := range num {
		num[i] = -1
	}
	for i, b := range rpo {
		num[b] = int32(i)
	}
	idom := make([]int32, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[rpo[0]] = rpo[0]
	intersect := func(a, b int32) int32 {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var ni int32 = -1
			for _, p := range f.Blocks[b].Preds {
				if num[p] < 0 || idom[p] == -1 {
					continue
				}
				if ni == -1 {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != -1 && idom[b] != ni {
				idom[b] = ni
				changed = true
			}
		}
	}
	return idom
}
