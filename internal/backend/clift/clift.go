package clift

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/mcv"
	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the Cranelift-like back-end.
type Engine struct {
	opts Options
}

// New returns the engine with all custom instructions enabled (the paper's
// tuned configuration).
func New() *Engine { return &Engine{} }

// NewWithOptions returns the engine with specific custom instructions
// disabled, for the Table II ablation.
func NewWithOptions(opts Options) *Engine { return &Engine{opts: opts} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "Cranelift" }

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Compile implements backend.Engine: each function runs through the full
// Cranelift-style pipeline individually (Cranelift compiles one function at
// a time); the link step then concatenates the per-function buffers and
// patches relocations.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	stats := &backend.Stats{Funcs: len(mod.Funcs)}
	ph := backend.NewPhaser(stats, env.Trace)
	tgt := vt.ForArch(env.Arch)

	type compiled struct {
		code   []byte
		relocs []vt.Reloc
		name   string
	}
	var parts []compiled

	for _, f := range mod.Funcs {
		fsp := ph.BeginGroup("func:" + f.Name)

		// IRGen: two-pass translation with hash-map value mapping.
		sp := ph.Begin("IRGen")
		cir, err := translate(f, env, e.opts)
		sp.End()
		if err != nil {
			return nil, nil, err
		}

		// IRPasses: CFG and dominator-tree computation on the IR.
		sp = ph.Begin("IRPasses")
		computeDomTree(cir)
		sp.End()

		// ISelPrepare: the three preparation passes.
		sp = ph.Begin("ISelPrepare")
		prep := runPrepare(cir)
		sp.End()

		// ISel: tree-matching lowering to VCode.
		sp = ph.Begin("ISel")
		vc, err := lower(cir, prep, tgt)
		sp.End()
		if err != nil {
			return nil, nil, fmt.Errorf("clift: %s: %w", f.Name, err)
		}

		// RegAlloc (live-range building, bundle merging, assignment).
		rsp := ph.BeginGroup("RegAlloc")
		ra := allocate(vc, tgt, ph)
		rsp.End()
		stats.Count("bundles", int64(ra.numBundles))
		stats.Count("spilled", int64(ra.numSpilled))
		stats.Count("btree_inserts", int64(ra.btreeInserts))

		if env.Options.Check {
			csp := ph.Begin("Check.RegAlloc")
			cf, cdiags := buildCheckFunc(vc, ra, tgt)
			cdiags = append(cdiags, mcv.CheckFunc(cf)...)
			csp.End()
			if err := mcv.Error("clift: regalloc check", cdiags); err != nil {
				return nil, nil, err
			}
		}

		// Emit.
		sp = ph.Begin("Emit")
		asm := vt.NewAssembler(env.Arch)
		if err := emit(vc, ra, tgt, asm); err != nil {
			return nil, nil, err
		}
		code, relocs, err := asm.Finish()
		if err != nil {
			return nil, nil, fmt.Errorf("clift: %s: %w", f.Name, err)
		}
		parts = append(parts, compiled{code: code, relocs: relocs, name: f.Name})
		sp.End()
		fsp.End()
	}

	// Link: concatenate function buffers, apply relocations, register
	// unwind info.
	lsp := ph.Begin("Link")
	total := 0
	for _, p := range parts {
		total += len(p.code)
	}
	code := make([]byte, 0, total)
	offsets := make([]int32, len(parts))
	var pendingRelocs []vt.Reloc
	var unwind []vm.UnwindRange
	for i, p := range parts {
		offsets[i] = int32(len(code))
		for _, r := range p.relocs {
			r.Offset += offsets[i]
			pendingRelocs = append(pendingRelocs, r)
		}
		code = append(code, p.code...)
		unwind = append(unwind, vm.UnwindRange{
			Start: offsets[i], End: int32(len(code)), Name: p.name,
			CFI: []byte{0x01},
		})
	}
	for _, r := range pendingRelocs {
		r.Patch(code, int64(offsets[r.Sym]))
	}
	vmod, err := vm.Load(env.Arch, code)
	if err != nil {
		return nil, nil, fmt.Errorf("clift: %w", err)
	}
	vmod.RegisterUnwind(unwind)
	if err := env.DB.Bind(mod.RTNames); err != nil {
		return nil, nil, err
	}
	lsp.End()

	if env.Options.Check {
		csp := ph.Begin("Check.Lint")
		ldiags := mcv.Lint(vmod.Prog, vmod.Funcs(), len(mod.RTNames))
		csp.End()
		if err := mcv.Error("clift: machine lint", ldiags); err != nil {
			return nil, nil, err
		}
		csp = ph.Begin("Check.Summary")
		stats.Summaries = mcv.Summarize(vmod.Prog, vmod.Funcs(), mod.RTNames)
		csp.End()
	}

	stats.CodeBytes = len(code)
	ph.Finish()
	return &exec{m: env.DB.M, mod: vmod, offsets: offsets}, stats, nil
}

// computeDomTree runs the Cooper–Harvey–Kennedy dominator algorithm over
// the CIR CFG (the IRPasses phase of the paper's breakdown). The result
// feeds block-layout sanity checks.
func computeDomTree(f *Func) []int32 {
	n := len(f.Blocks)
	// Reverse postorder.
	seen := make([]bool, n)
	var post []int32
	var succBuf []int32
	type frame struct {
		b    int32
		next int
	}
	stack := []frame{{b: 0}}
	seen[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succBuf = f.succs(fr.b, succBuf[:0])
		if fr.next < len(succBuf) {
			s := succBuf[fr.next]
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int32, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	num := make([]int32, n)
	for i := range num {
		num[i] = -1
	}
	for i, b := range rpo {
		num[b] = int32(i)
	}
	idom := make([]int32, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[rpo[0]] = rpo[0]
	intersect := func(a, b int32) int32 {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var ni int32 = -1
			for _, p := range f.Blocks[b].Preds {
				if num[p] < 0 || idom[p] == -1 {
					continue
				}
				if ni == -1 {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != -1 && idom[b] != ni {
				idom[b] = ni
				changed = true
			}
		}
	}
	return idom
}
