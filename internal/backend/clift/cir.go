// Package clift implements the Cranelift-like back-end studied in the
// paper: a compiler framework designed for fast compilation that is
// nonetheless outperformed 16x by the single-pass DirectEmit approach.
//
// The pipeline mirrors the phases of the paper's Figure 4:
//
//	IRGen       two-pass translation from QIR into CIR, mapping values
//	            through a hash map and lowering getelementptr, 128-bit
//	            values and aggregates to plain integer arithmetic
//	IRPasses    CFG/dominator-tree computation on the IR
//	ISelPrepare three passes over the IR: virtual-register assignment with
//	            register classes, side-effect partitioning, and a
//	            depth-first use-count analysis
//	ISel        tree-matching instruction selection into VCode
//	RegAlloc    live-range construction, bundle merging, and a linear-scan
//	            assignment tracking occupancy in per-register B-trees
//	Emit        clobber-scan, branch-size estimation, encoding
//	Link        relocation patching
//
// CIR itself follows Cranelift's data-structure choices: instructions are
// fixed-size entries in one flat array whose order is an array-backed linked
// list, blocks use block parameters instead of phis, and external function
// addresses are hard-wired into the IR.
package clift

import "fmt"

// Val is a CIR value id.
type Val = int32

// noVal marks absent operands.
const noVal Val = -1

// RegClass is the register class of a value.
type RegClass uint8

// Register classes.
const (
	ClassInt RegClass = iota
	ClassFloat
)

// Op is a CIR operation. All integer values are 64-bit (the translator
// legalizes narrow and 128-bit QIR types); loads and stores carry their
// memory width.
type Op uint8

// CIR operations.
const (
	OpNop    Op = iota
	OpIconst    // Imm
	OpF64const
	OpFuncAddr // Aux = function index (relocated at link time)

	OpIadd
	OpIsub
	OpImul
	OpSdiv
	OpSrem
	OpUdiv
	OpUrem
	OpBand
	OpBor
	OpBxor
	OpIshl
	OpUshr
	OpSshr
	OpRotr
	OpBnot
	OpIneg
	OpUmulhi // high 64 bits of unsigned product (no-custom-mulwide path)
	OpSmulhi

	// Custom instructions added by the paper (Table II); translation
	// falls back to runtime helper calls when disabled.
	OpCrc32
	OpIaddOv // traps on signed overflow
	OpIsubOv
	OpImulOv
	OpMulWide // two results: lo, hi (unsigned)

	OpIcmp   // Aux = cond
	OpSelect // Args: cond, a, b

	OpLoad8U
	OpLoad8S
	OpLoad16S
	OpLoad32S
	OpLoad64
	OpStore8
	OpStore16
	OpStore32
	OpStore64
	OpFload
	OpFstore

	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFcmp // Aux = cond
	OpFcvtFromSint
	OpFcvtToSint
	OpBitcastIF // int -> float bits
	OpBitcastFI // float -> int bits

	// OpCallExt calls runtime function Aux with args in
	// Extra[ExtraAt:ExtraAt+NArgs]; up to two results.
	OpCallExt

	// Terminators. OpJump: Aux = target block, branch args in extra.
	// OpBrif: Aux = then-block, Imm = else-block; extra holds
	// [nthen, thenArgs..., nelse, elseArgs...] after the condition arg.
	OpJump
	OpBrif
	OpRet    // Args[0], Args[1] optional results
	OpTrap   // Imm = trap code
	OpTrapnz // Args[0], Imm = trap code

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpIconst: "iconst", OpF64const: "f64const", OpFuncAddr: "func_addr",
	OpIadd: "iadd", OpIsub: "isub", OpImul: "imul", OpSdiv: "sdiv", OpSrem: "srem",
	OpUdiv: "udiv", OpUrem: "urem", OpBand: "band", OpBor: "bor", OpBxor: "bxor",
	OpIshl: "ishl", OpUshr: "ushr", OpSshr: "sshr", OpRotr: "rotr", OpBnot: "bnot",
	OpIneg: "ineg", OpUmulhi: "umulhi", OpSmulhi: "smulhi",
	OpCrc32: "crc32", OpIaddOv: "iadd_ov", OpIsubOv: "isub_ov", OpImulOv: "imul_ov",
	OpMulWide: "mul_wide", OpIcmp: "icmp", OpSelect: "select",
	OpLoad8U: "uload8", OpLoad8S: "sload8", OpLoad16S: "sload16", OpLoad32S: "sload32",
	OpLoad64: "load", OpStore8: "istore8", OpStore16: "istore16", OpStore32: "istore32",
	OpStore64: "store", OpFload: "fload", OpFstore: "fstore",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv", OpFcmp: "fcmp",
	OpFcvtFromSint: "fcvt_from_sint", OpFcvtToSint: "fcvt_to_sint",
	OpBitcastIF: "bitcast_if", OpBitcastFI: "bitcast_fi",
	OpCallExt: "call", OpJump: "jump", OpBrif: "brif", OpRet: "return",
	OpTrap: "trap", OpTrapnz: "trapnz",
}

func (o Op) String() string {
	if o < numOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("cirop(%d)", uint8(o))
}

// isTerminator reports whether the op ends a block.
func (o Op) isTerminator() bool {
	switch o {
	case OpJump, OpBrif, OpRet, OpTrap:
		return true
	}
	return false
}

// hasSideEffects reports operations the instruction selector must not
// duplicate, sink, or eliminate.
func (o Op) hasSideEffects() bool {
	switch o {
	case OpStore8, OpStore16, OpStore32, OpStore64, OpFstore,
		OpCallExt, OpJump, OpBrif, OpRet, OpTrap, OpTrapnz,
		OpIaddOv, OpIsubOv, OpImulOv,
		OpSdiv, OpSrem, OpUdiv, OpUrem,
		OpLoad8U, OpLoad8S, OpLoad16S, OpLoad32S, OpLoad64, OpFload:
		return true
	}
	return false
}

// Inst is one fixed-size CIR instruction.
type Inst struct {
	Op   Op
	Args [3]Val
	Imm  int64
	// Aux is the condition code on Icmp, the callee on calls — and on
	// memory operations the check-elimination flag (1 = lower to the
	// unchecked vt op).
	Aux     uint32
	Res     [2]Val
	ExtraAt int32
	NArgs   int32
}

// Block is one CIR basic block; instructions are linked through the
// function's Next/Prev arrays from Head to Tail.
type Block struct {
	Params     []Val
	Head, Tail int32
	Preds      []int32
}

// Func is one CIR function.
type Func struct {
	Name   string
	Insts  []Inst
	Next   []int32 // array-backed linked list: following instruction
	Prev   []int32
	Blocks []Block
	Extra  []Val

	// Per-value metadata (values are dense ids).
	ValClass []RegClass
	ValDef   []int32 // defining instruction (-1 for block params)
	NumVals  int

	// Params are the function's entry block parameter values, one per
	// 64-bit register slot.
	Params []Val

	// Rets is the number of return values (0..2).
	Rets int
}

// newVal allocates a value id of the given class.
func (f *Func) newVal(class RegClass, def int32) Val {
	v := Val(f.NumVals)
	f.NumVals++
	f.ValClass = append(f.ValClass, class)
	f.ValDef = append(f.ValDef, def)
	return v
}

// appendInst adds an instruction to the end of block b and returns its
// index.
func (f *Func) appendInst(b int32, in Inst) int32 {
	idx := int32(len(f.Insts))
	f.Insts = append(f.Insts, in)
	f.Next = append(f.Next, -1)
	f.Prev = append(f.Prev, -1)
	blk := &f.Blocks[b]
	if blk.Tail == -1 {
		blk.Head, blk.Tail = idx, idx
	} else {
		f.Next[blk.Tail] = idx
		f.Prev[idx] = blk.Tail
		blk.Tail = idx
	}
	return idx
}

// newBlock adds an empty block.
func (f *Func) newBlock() int32 {
	f.Blocks = append(f.Blocks, Block{Head: -1, Tail: -1})
	return int32(len(f.Blocks) - 1)
}

// addBlockParam declares a parameter value on block b.
func (f *Func) addBlockParam(b int32, class RegClass) Val {
	v := f.newVal(class, -1)
	f.Blocks[b].Params = append(f.Blocks[b].Params, v)
	return v
}

// succs appends the successor blocks of block b's terminator.
func (f *Func) succs(b int32, dst []int32) []int32 {
	t := f.Blocks[b].Tail
	if t == -1 {
		return dst
	}
	in := &f.Insts[t]
	switch in.Op {
	case OpJump:
		return append(dst, int32(in.Aux))
	case OpBrif:
		return append(dst, int32(in.Aux), int32(in.Imm))
	}
	return dst
}

// forEachInst walks the instructions of block b in order.
func (f *Func) forEachInst(b int32, fn func(idx int32, in *Inst)) {
	for idx := f.Blocks[b].Head; idx != -1; idx = f.Next[idx] {
		fn(idx, &f.Insts[idx])
	}
}

// numResults returns how many results an instruction defines.
func (in *Inst) numResults() int {
	n := 0
	if in.Res[0] != noVal {
		n++
	}
	if in.Res[1] != noVal {
		n++
	}
	return n
}
