package conformance_test

import (
	"reflect"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/vt"
)

// queryOutcome captures everything the fused/unfused differential must hold
// identical: result rows (canonical text), the architecture-neutral runtime
// counters, and the error (trap PC, frames, message) if one occurred.
type queryOutcome struct {
	Rows     []string
	Executed int64
	Branches int64
	MemOps   int64
	Err      string
}

// runSuiteMode compiles and executes every TPC-H query with one engine and
// one fusion mode, on a fresh world, and returns the per-query outcomes.
func runSuiteMode(t *testing.T, arch vt.Arch, eng backend.Engine, noFuse bool) map[string]queryOutcome {
	t.Helper()
	cfg := bench.DefaultConfig()
	cfg.Arch = arch
	cfg.SF = 0.01
	cfg.MemMB = 256
	w, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatalf("load tpch: %v", err)
	}
	out := map[string]queryOutcome{}
	w.DB.Checkpoint()
	for _, q := range bench.HQueries() {
		c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
		if err != nil {
			t.Fatalf("codegen %s: %v", q.Name, err)
		}
		ex, _, err := eng.Compile(c.Module, &backend.Env{
			DB: w.DB, Arch: arch,
			Options: backend.Options{NoFuse: noFuse},
		})
		if err != nil {
			t.Fatalf("%s/%s: compile: %v", eng.Name(), q.Name, err)
		}
		w.DB.ResetQueryState()
		startInstr := w.DB.M.Executed
		startBranch := w.DB.M.Branches
		startMem := w.DB.M.MemOps
		var o queryOutcome
		if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
			o.Err = err.Error()
		}
		o.Rows = w.DB.Out.Canonical()
		o.Executed = w.DB.M.Executed - startInstr
		o.Branches = w.DB.M.Branches - startBranch
		o.MemOps = w.DB.M.MemOps - startMem
		out[q.Name] = o
		w.DB.ResetToCheckpoint()
	}
	return out
}

// TestFusedDispatchDifferential runs every TPC-H query on both architectures
// with every back-end, fused and unfused, and requires byte-identical result
// rows, identical Executed/Branches/MemOps counters, and identical errors.
// This is the enforcement of the fusion contract: superinstruction dispatch
// is a pure execution strategy, invisible to every observable output.
func TestFusedDispatchDifferential(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			for _, eng := range bench.Engines(arch) {
				eng := eng
				t.Run(eng.Name(), func(t *testing.T) {
					fused := runSuiteMode(t, arch, eng, false)
					plain := runSuiteMode(t, arch, eng, true)
					for name, f := range fused {
						p, ok := plain[name]
						if !ok {
							t.Errorf("%s: missing from -nofuse run", name)
							continue
						}
						if !reflect.DeepEqual(f.Rows, p.Rows) {
							t.Errorf("%s: fused rows differ from -nofuse\n fused (%d rows): %.6v\n plain (%d rows): %.6v",
								name, len(f.Rows), f.Rows, len(p.Rows), p.Rows)
						}
						if f.Executed != p.Executed || f.Branches != p.Branches || f.MemOps != p.MemOps {
							t.Errorf("%s: counters diverge: fused instrs=%d br=%d mem=%d, -nofuse instrs=%d br=%d mem=%d",
								name, f.Executed, f.Branches, f.MemOps, p.Executed, p.Branches, p.MemOps)
						}
						if f.Err != p.Err {
							t.Errorf("%s: errors diverge:\n fused: %s\n plain: %s", name, f.Err, p.Err)
						}
					}
				})
			}
		})
	}
}
