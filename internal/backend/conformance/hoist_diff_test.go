package conformance_test

import (
	"errors"
	"reflect"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// runSuiteHoistMode compiles and executes a workload's queries with one
// engine on a fresh world, with constant hoisting on or off. Hoisting moves
// query literals into the runtime constant pool (bound at execution time);
// with it off every literal is baked into the unit. The two modes compile
// different machine code, so everything observable — rows, errors — must
// still agree exactly.
func runSuiteHoistMode(t *testing.T, arch vt.Arch, workload string, eng backend.Engine, hoist bool) map[string]queryOutcome {
	t.Helper()
	cfg := bench.DefaultConfig()
	cfg.Arch = arch
	cfg.SF = 0.01
	cfg.MemMB = 256
	w, err := bench.NewWorldLoaded(cfg, workload)
	if err != nil {
		t.Fatalf("load %s: %v", workload, err)
	}
	var queries []bench.Query
	if workload == "tpch" {
		queries = bench.HQueries()
	} else {
		queries = bench.DSQueries()
	}
	out := map[string]queryOutcome{}
	w.DB.Checkpoint()
	hoistedTotal := 0
	for _, q := range queries {
		c, err := codegen.CompileOpts(q.Name, q.Build(), w.Cat, codegen.Options{Elim: true, Hoist: hoist})
		if err != nil {
			t.Fatalf("codegen %s: %v", q.Name, err)
		}
		hoistedTotal += c.Hoist.Hoisted
		ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: arch})
		if err != nil {
			t.Fatalf("%s/%s: compile: %v", eng.Name(), q.Name, err)
		}
		w.DB.ResetQueryState()
		var o queryOutcome
		if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
			o.Err = err.Error()
		}
		o.Rows = w.DB.Out.Canonical()
		out[q.Name] = o
		w.DB.ResetToCheckpoint()
	}
	if hoist && hoistedTotal == 0 {
		t.Fatalf("%s: hoisting moved no literals to the pool; the differential would be vacuous", workload)
	}
	return out
}

// TestHoistDifferential is the safety differential for constant hoisting:
// every TPC-H and TPC-DS query runs on every back-end twice — literals
// pooled vs. baked inline — and the outputs must be byte-identical. A
// divergence means a pool load produced a different value than the literal
// it replaced (mis-binding, wrong slot, stale pool) or hoisting perturbed
// the eliminated-check set unsoundly.
func TestHoistDifferential(t *testing.T) {
	arches := []vt.Arch{vt.VX64, vt.VA64}
	workloads := []string{"tpch", "tpcds"}
	if testing.Short() {
		arches = arches[:1]
	}
	for _, arch := range arches {
		arch := arch
		for _, workload := range workloads {
			workload := workload
			t.Run(arch.String()+"/"+workload, func(t *testing.T) {
				for _, eng := range bench.Engines(arch) {
					eng := eng
					t.Run(eng.Name(), func(t *testing.T) {
						inline := runSuiteHoistMode(t, arch, workload, eng, false)
						pooled := runSuiteHoistMode(t, arch, workload, eng, true)
						for name, ref := range inline {
							got, ok := pooled[name]
							if !ok {
								t.Errorf("%s: missing from hoisted run", name)
								continue
							}
							if got.Err != ref.Err {
								t.Errorf("%s: errors differ\n hoisted: %q\n  inline: %q", name, got.Err, ref.Err)
								continue
							}
							if !reflect.DeepEqual(got.Rows, ref.Rows) {
								t.Errorf("%s: hoisted rows differ from inline\n hoisted (%d rows): %.6v\n  inline (%d rows): %.6v",
									name, len(got.Rows), got.Rows, len(ref.Rows), ref.Rows)
							}
						}
					})
				}
			})
		}
	}
}

// hoistTrapCase is one adversarial program whose literal sits on a trap
// boundary: whether the query traps (and with which code) depends on the
// literal's value, so a mis-bound pool slot flips the behavior.
type hoistTrapCase struct {
	name string
	expr func() (plan.Expr, error)
	// want is the expected trap (TrapUnreachable means "must not trap").
	want  vt.TrapCode
	traps bool
}

// hoistTrapWorld is a 16-row table t(x: 0..15).
func hoistTrapWorld(arch vt.Arch) (*rt.DB, *rt.Catalog) {
	m := vm.New(vm.Config{Arch: arch, MemSize: 64 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	tab := cat.CreateTable("t", 16, rt.ColSpec{Name: "x", Type: qir.I64})
	for i := int64(0); i < 16; i++ {
		cat.SetInt(tab.MustCol("x"), i, i)
	}
	return db, cat
}

func hoistTrapCorpus() []hoistTrapCase {
	x := func() plan.Expr { return &plan.Col{Idx: 0, Ty: qir.I64} }
	lit := func(v int64) plan.Expr { return &plan.ConstInt{Ty: qir.I64, V: v} }
	const maxI64 = int64(^uint64(0) >> 1)
	return []hoistTrapCase{
		// x + (max-8): overflows once x reaches 9.
		{name: "add-overflow", expr: func() (plan.Expr, error) {
			return plan.NewArith(plan.OpAdd, x(), lit(maxI64-8))
		}, want: vt.TrapOverflow, traps: true},
		// x + (max-15): 15 + (max-15) = max exactly — the literal is one off
		// the overflow edge and the query must complete.
		{name: "add-at-edge", expr: func() (plan.Expr, error) {
			return plan.NewArith(plan.OpAdd, x(), lit(maxI64-15))
		}, traps: false},
		// (max/8+1) * x: overflows once x reaches 8.
		{name: "mul-overflow", expr: func() (plan.Expr, error) {
			return plan.NewArith(plan.OpMul, lit(maxI64/8+1), x())
		}, want: vt.TrapOverflow, traps: true},
		// 100 / (x - 7): divisor hits zero at row 7.
		{name: "div-zero", expr: func() (plan.Expr, error) {
			den, err := plan.NewArith(plan.OpSub, x(), lit(7))
			if err != nil {
				return nil, err
			}
			return plan.NewArith(plan.OpDiv, lit(100), den)
		}, want: vt.TrapDivZero, traps: true},
		// 100 / (x + 1): divisor never zero; one off the boundary, must run.
		{name: "div-near-zero", expr: func() (plan.Expr, error) {
			den, err := plan.NewArith(plan.OpAdd, x(), lit(1))
			if err != nil {
				return nil, err
			}
			return plan.NewArith(plan.OpDiv, lit(100), den)
		}, traps: false},
	}
}

// TestHoistTrapBoundaryCorpus feeds every engine queries whose literals sit
// exactly on trap boundaries, hoisted and inline. Both modes must agree on
// whether the query traps, on the trap code, and (per mode) the trap PC must
// be deterministic across repeated runs of the same compiled body. A
// hoisting bug that perturbs a literal by one flips these outcomes.
func TestHoistTrapBoundaryCorpus(t *testing.T) {
	for _, tc := range hoistTrapCorpus() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
				for _, eng := range bench.Engines(arch) {
					run := func(hoist bool) (rows []string, trapCode vt.TrapCode, trapPC int32, trapped bool) {
						db, cat := hoistTrapWorld(arch)
						expr, err := tc.expr()
						if err != nil {
							t.Fatal(err)
						}
						node := &plan.Project{
							Input: &plan.Scan{Table: "t", Cols: []plan.ColInfo{{Name: "x", Type: qir.I64}}},
							Exprs: []plan.Expr{expr},
						}
						c, err := codegen.CompileOpts("q", node, cat, codegen.Options{Elim: true, Hoist: hoist})
						if err != nil {
							t.Fatal(err)
						}
						if hoist && c.Hoist.Hoisted == 0 {
							t.Fatal("no literal hoisted; boundary case is vacuous")
						}
						ex, _, err := eng.Compile(c.Module, &backend.Env{DB: db, Arch: arch})
						if err != nil {
							t.Fatalf("%s/%s: compile: %v", eng.Name(), arch, err)
						}
						var pcs []int32
						for rep := 0; rep < 2; rep++ {
							db.ResetQueryState()
							err := codegen.Run(db, cat, c, ex.Call)
							var trap *vm.Trap
							if errors.As(err, &trap) {
								trapped, trapCode = true, trap.Code
								pcs = append(pcs, trap.PC)
							} else if err != nil {
								t.Fatalf("%s/%s hoist=%v: non-trap error: %v", eng.Name(), arch, hoist, err)
							}
						}
						if len(pcs) == 2 && pcs[0] != pcs[1] {
							t.Errorf("%s/%s hoist=%v: trap PC not deterministic: +%d vs +%d",
								eng.Name(), arch, hoist, pcs[0], pcs[1])
						}
						if len(pcs) > 0 {
							trapPC = pcs[0]
						}
						rows = db.Out.Canonical()
						return
					}
					iRows, iCode, _, iTrapped := run(false)
					hRows, hCode, _, hTrapped := run(true)
					if iTrapped != tc.traps {
						t.Fatalf("%s/%s inline: trapped=%v, corpus expects %v", eng.Name(), arch, iTrapped, tc.traps)
					}
					if hTrapped != iTrapped {
						t.Errorf("%s/%s: hoisted trapped=%v, inline trapped=%v", eng.Name(), arch, hTrapped, iTrapped)
						continue
					}
					if iTrapped {
						if iCode != tc.want {
							t.Errorf("%s/%s inline: trap %s, want %s", eng.Name(), arch, iCode, tc.want)
						}
						if hCode != iCode {
							t.Errorf("%s/%s: hoisted trap %s, inline trap %s", eng.Name(), arch, hCode, iCode)
						}
					}
					if !reflect.DeepEqual(hRows, iRows) {
						t.Errorf("%s/%s: hoisted rows differ from inline", eng.Name(), arch)
					}
				}
			}
		})
	}
}
