package conformance_test

import (
	"errors"
	"reflect"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/interp"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/sa"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// runSuiteStrictMode compiles and executes every TPC-H query with one engine
// on a fresh world, optionally in StrictUnchecked mode (every eliminated
// bounds/null check is re-verified at runtime and raises TrapElimCheck if it
// would have fired).
func runSuiteStrictMode(t *testing.T, arch vt.Arch, eng backend.Engine, strict bool) map[string]queryOutcome {
	t.Helper()
	cfg := bench.DefaultConfig()
	cfg.Arch = arch
	cfg.SF = 0.01
	cfg.MemMB = 256
	w, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatalf("load tpch: %v", err)
	}
	w.DB.M.StrictUnchecked = strict
	out := map[string]queryOutcome{}
	w.DB.Checkpoint()
	for _, q := range bench.HQueries() {
		c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
		if err != nil {
			t.Fatalf("codegen %s: %v", q.Name, err)
		}
		if c.Elim.Unchecked == 0 {
			t.Fatalf("%s: check elimination proved nothing; the strict differential would be vacuous", q.Name)
		}
		ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: arch})
		if err != nil {
			t.Fatalf("%s/%s: compile: %v", eng.Name(), q.Name, err)
		}
		w.DB.ResetQueryState()
		var o queryOutcome
		if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
			o.Err = err.Error()
		}
		o.Rows = w.DB.Out.Canonical()
		out[q.Name] = o
		w.DB.ResetToCheckpoint()
	}
	return out
}

// TestStrictUncheckedTPCHDifferential is the safety differential for the
// compile-time check-elimination pass: every TPC-H query runs on every
// back-end with trap-on-eliminated-check instrumentation enabled. A single
// TrapElimCheck means the static analysis discharged a check that could
// fire — an unsoundness — so any error fails the test, and result rows must
// be byte-identical to the uninstrumented interpreter reference.
func TestStrictUncheckedTPCHDifferential(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			ref := runSuiteStrictMode(t, arch, interp.New(), false)
			for _, eng := range bench.Engines(arch) {
				eng := eng
				t.Run(eng.Name(), func(t *testing.T) {
					got := runSuiteStrictMode(t, arch, eng, true)
					for name, r := range ref {
						g, ok := got[name]
						if !ok {
							t.Errorf("%s: missing from strict run", name)
							continue
						}
						if g.Err != "" {
							t.Errorf("%s: strict run trapped: %s", name, g.Err)
							continue
						}
						if !reflect.DeepEqual(g.Rows, r.Rows) {
							t.Errorf("%s: strict rows differ from reference\n strict (%d rows): %.6v\n    ref (%d rows): %.6v",
								name, len(g.Rows), g.Rows, len(r.Rows), r.Rows)
						}
					}
				})
			}
		})
	}
}

// trapCase is one adversarial program: a hand-built QIR function whose
// memory access must trap at runtime, with the arguments that make it trap.
type trapCase struct {
	name string
	// build constructs function 0 of a fresh module.
	build func(m *qir.Module)
	args  []uint64
	want  vt.TrapCode
}

const trapMem = 16 << 20

func loadFunc(m *qir.Module) {
	b := qir.NewFunc(m, "f", qir.I64, qir.Ptr)
	b.Ret(b.Load(qir.I64, b.Param(0)))
}

func storeFunc(m *qir.Module) {
	b := qir.NewFunc(m, "f", qir.I64, qir.Ptr)
	b.Store(b.Param(0), b.ConstInt(qir.I64, 1))
	b.Ret(b.ConstInt(qir.I64, 0))
}

func trapCorpus() []trapCase {
	return []trapCase{
		{name: "load-far-oob", build: loadFunc, args: []uint64{1 << 40}, want: vt.TrapOOB},
		{name: "load-null-page", build: loadFunc, args: []uint64{8}, want: vt.TrapOOB},
		{name: "load-straddles-end", build: loadFunc, args: []uint64{trapMem - 4}, want: vt.TrapOOB},
		{name: "store-far-oob", build: storeFunc, args: []uint64{1 << 40}, want: vt.TrapOOB},
		{name: "store-null-page", build: storeFunc, args: []uint64{0}, want: vt.TrapOOB},
	}
}

// TestAdversarialTrapCorpus feeds every engine programs whose accesses
// genuinely trap. The static analysis must refuse to discharge their checks
// (the address is an unconstrained parameter), and every back-end must raise
// the identical trap code — with and without the strict instrumentation,
// since behavior on checked accesses may not depend on it.
func TestAdversarialTrapCorpus(t *testing.T) {
	for _, tc := range trapCorpus() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Analysis soundness: no fact justifies eliminating the check.
			mod := qir.NewModule(tc.name)
			tc.build(mod)
			if err := mod.VerifyModule(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			a := sa.Analyze(mod.Funcs[0], sa.NewFacts())
			for _, acc := range a.Accesses() {
				if acc.Safe {
					t.Fatalf("analysis marked access %%%d safe; its address is an arbitrary parameter", acc.V)
				}
			}
			for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
				for _, strict := range []bool{false, true} {
					for _, eng := range bench.Engines(arch) {
						m := vm.New(vm.Config{Arch: arch, MemSize: trapMem})
						m.StrictUnchecked = strict
						db := rt.NewDB(m)
						mod := qir.NewModule(tc.name)
						tc.build(mod)
						ex, _, err := eng.Compile(mod, &backend.Env{DB: db, Arch: arch})
						if err != nil {
							t.Fatalf("%s/%s strict=%v: compile: %v", eng.Name(), arch, strict, err)
						}
						_, err = ex.Call(0, tc.args...)
						var trap *vm.Trap
						if !errors.As(err, &trap) {
							t.Fatalf("%s/%s strict=%v: want a trap, got %v", eng.Name(), arch, strict, err)
						}
						if trap.Code != tc.want {
							t.Errorf("%s/%s strict=%v: trap %s, want %s", eng.Name(), arch, strict, trap.Code, tc.want)
						}
					}
				}
			}
		})
	}
}

// TestStrictCatchesBadElimination plants a deliberately wrong MemUnchecked
// mark (the address is out of bounds at runtime) and verifies the strict
// instrumentation converts it to TrapElimCheck on every back-end — this is
// the detector the safety differential relies on.
func TestStrictCatchesBadElimination(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		for _, eng := range bench.Engines(arch) {
			m := vm.New(vm.Config{Arch: arch, MemSize: trapMem})
			m.StrictUnchecked = true
			db := rt.NewDB(m)
			mod := qir.NewModule("badelim")
			loadFunc(mod)
			f := mod.Funcs[0]
			marked := 0
			for i := range f.Instrs {
				if f.Instrs[i].Op == qir.OpLoad {
					f.Instrs[i].SetUnchecked()
					marked++
				}
			}
			if marked != 1 {
				t.Fatalf("marked %d loads, want 1", marked)
			}
			ex, _, err := eng.Compile(mod, &backend.Env{DB: db, Arch: arch})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", eng.Name(), arch, err)
			}
			_, err = ex.Call(0, uint64(1)<<40)
			var trap *vm.Trap
			if !errors.As(err, &trap) {
				t.Fatalf("%s/%s: want TrapElimCheck, got %v", eng.Name(), arch, err)
			}
			if trap.Code != vt.TrapElimCheck {
				t.Errorf("%s/%s: trap %s, want %s", eng.Name(), arch, trap.Code, vt.TrapElimCheck)
			}
		}
	}
}
