package conformance_test

import (
	"testing"
	"time"

	"qcc/internal/backend"
	"qcc/internal/codegen"
	"qcc/internal/obs"
	"qcc/internal/vt"
)

// TestStatsWellFormed checks the observability contract every engine must
// satisfy: a non-empty phase breakdown, a Total consistent with the sum of
// the phases (within 5%), and — for every compiling back-end — emitted code.
func TestStatsWellFormed(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			build := corpus(t)["join-groupby-sort"]
			for ename, eng := range engines(arch) {
				ename, eng := ename, eng
				t.Run(ename, func(t *testing.T) {
					w := buildWorld(arch)
					c, err := codegen.Compile("stats", build(), w.cat)
					if err != nil {
						t.Fatal(err)
					}
					_, stats, err := eng.Compile(c.Module, &backend.Env{DB: w.db, Arch: arch})
					if err != nil {
						t.Fatalf("%s: %v", ename, err)
					}
					if len(stats.Phases) == 0 {
						t.Fatalf("%s: no phases recorded", ename)
					}
					var sum time.Duration
					for _, p := range stats.Phases {
						if p.Dur < 0 {
							t.Errorf("%s: phase %s has negative duration %v", ename, p.Name, p.Dur)
						}
						sum += p.Dur
					}
					if stats.Total <= 0 {
						t.Fatalf("%s: non-positive Total %v", ename, stats.Total)
					}
					diff := stats.Total - sum
					if diff < 0 {
						diff = -diff
					}
					if float64(diff) > 0.05*float64(stats.Total) {
						t.Errorf("%s: Total %v deviates from phase sum %v by more than 5%%", ename, stats.Total, sum)
					}
					if ename != "interp" && stats.CodeBytes <= 0 {
						t.Errorf("%s: compiling back-end reported CodeBytes=%d", ename, stats.CodeBytes)
					}
					if stats.Funcs <= 0 {
						t.Errorf("%s: Funcs=%d", ename, stats.Funcs)
					}
				})
			}
		})
	}
}

// TestTraceWellFormed attaches a tracer to one compile per engine and checks
// the recorded span tree: spans close, nest consistently, and cover every
// phase reported in Stats.
func TestTraceWellFormed(t *testing.T) {
	arch := vt.VX64
	build := corpus(t)["join-groupby-sort"]
	for ename, eng := range engines(arch) {
		ename, eng := ename, eng
		t.Run(ename, func(t *testing.T) {
			w := buildWorld(arch)
			c, err := codegen.Compile("trace", build(), w.cat)
			if err != nil {
				t.Fatal(err)
			}
			tr := obs.New(obs.Options{})
			_, stats, err := eng.Compile(c.Module, &backend.Env{DB: w.db, Arch: arch, Trace: tr})
			if err != nil {
				t.Fatalf("%s: %v", ename, err)
			}
			snap := tr.Snapshot(ename)
			if len(snap.Spans) == 0 {
				t.Fatalf("%s: trace has no spans", ename)
			}
			names := map[string]bool{}
			for i, sp := range snap.Spans {
				names[sp.Name] = true
				if sp.Dur < 0 {
					t.Errorf("%s: span %s never ended", ename, sp.Name)
				}
				if sp.Parent >= int32(i) {
					t.Errorf("%s: span %s has forward parent %d", ename, sp.Name, sp.Parent)
				}
				if sp.Parent >= 0 {
					p := snap.Spans[sp.Parent]
					if sp.Depth != p.Depth+1 {
						t.Errorf("%s: span %s depth %d under parent depth %d", ename, sp.Name, sp.Depth, p.Depth)
					}
				} else if sp.Depth != 0 {
					t.Errorf("%s: root span %s has depth %d", ename, sp.Name, sp.Depth)
				}
			}
			for _, p := range stats.Phases {
				if !names[p.Name] {
					t.Errorf("%s: phase %s missing from trace", ename, p.Name)
				}
			}
		})
	}
}
