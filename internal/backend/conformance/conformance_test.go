// Package conformance_test cross-checks all execution back-ends: every
// engine must produce identical results for a corpus of query plans. The
// interpreter is the reference.
package conformance_test

import (
	"reflect"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/interp"
	"qcc/internal/backend/lbe"
	"qcc/internal/codegen"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// engines returns the engines to cross-check for an architecture.
func engines(arch vt.Arch) map[string]backend.Engine {
	es := map[string]backend.Engine{
		"interp":         interp.New(),
		"clift":          clift.New(),
		"clift-nocustom": clift.NewWithOptions(clift.Options{NoCrc32: true, NoOverflow: true, NoMulWide: true}),
		"llvm-cheap":     lbe.NewCheap(),
		"llvm-opt":       lbe.NewOpt(),
		"llvm-gisel":     lbe.NewWithConfig(lbe.Config{ISel: lbe.ISelGlobal}),
		"llvm-gisel-opt": lbe.NewWithConfig(lbe.Config{Opt: true, ISel: lbe.ISelGlobal}),
		"llvm-structs":   lbe.NewWithConfig(lbe.Config{StructPairs: true}),
		"llvm-largecm":   lbe.NewWithConfig(lbe.Config{LargeCodeModel: true}),
		"gcc":            cbe.New(),
	}
	if arch == vt.VX64 {
		es["direct"] = direct.New()
	}
	return es
}

type world struct {
	db  *rt.DB
	cat *rt.Catalog
}

// buildWorld loads a small multi-table dataset exercising every column
// type.
func buildWorld(arch vt.Arch) *world {
	m := vm.New(vm.Config{Arch: arch, MemSize: 64 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)

	const n = 200
	items := cat.CreateTable("items", n,
		rt.ColSpec{Name: "id", Type: qir.I64},
		rt.ColSpec{Name: "grp", Type: qir.I32},
		rt.ColSpec{Name: "price", Type: qir.I128},
		rt.ColSpec{Name: "qty", Type: qir.I32},
		rt.ColSpec{Name: "disc", Type: qir.F64},
		rt.ColSpec{Name: "name", Type: qir.Str},
	)
	names := []string{"widget", "gadget", "doohickey", "thingamajig-deluxe-edition", "gizmo"}
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := int64(0); i < n; i++ {
		cat.SetInt(items.MustCol("id"), i, i)
		cat.SetInt(items.MustCol("grp"), i, int64(next()%7))
		cat.SetI128(items.MustCol("price"), i, rt.I128FromInt64(int64(next()%100000)))
		cat.SetInt(items.MustCol("qty"), i, int64(next()%50))
		cat.SetF64(items.MustCol("disc"), i, float64(next()%100)/100)
		cat.SetStr(items.MustCol("name"), i, names[next()%uint64(len(names))])
	}

	groups := cat.CreateTable("groups", 7,
		rt.ColSpec{Name: "gid", Type: qir.I32},
		rt.ColSpec{Name: "label", Type: qir.Str},
	)
	labels := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
	for i := int64(0); i < 7; i++ {
		cat.SetInt(groups.MustCol("gid"), i, i)
		cat.SetStr(groups.MustCol("label"), i, labels[i])
	}
	return &world{db: db, cat: cat}
}

func itemsSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "id", Type: qir.I64},
		{Name: "grp", Type: qir.I32},
		{Name: "price", Type: qir.I128},
		{Name: "qty", Type: qir.I32},
		{Name: "disc", Type: qir.F64},
		{Name: "name", Type: qir.Str},
	}
}

func groupsSchema() []plan.ColInfo {
	return []plan.ColInfo{
		{Name: "gid", Type: qir.I32},
		{Name: "label", Type: qir.Str},
	}
}

func col(i int, t qir.Type) *plan.Col { return &plan.Col{Idx: i, Ty: t} }

func mustArith(t *testing.T, op plan.ArithOp, l, r plan.Expr) plan.Expr {
	t.Helper()
	e, err := plan.NewArith(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustCmp(t *testing.T, op plan.CmpOp, l, r plan.Expr) plan.Expr {
	t.Helper()
	e, err := plan.NewCmp(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// corpus returns named plans covering operators, types, and edge shapes.
func corpus(t *testing.T) map[string]func() plan.Node {
	t.Helper()
	return map[string]func() plan.Node{
		"scan-all": func() plan.Node {
			return &plan.Scan{Table: "items", Cols: itemsSchema()}
		},
		"filter-arith": func() plan.Node {
			qtyTimes2 := mustArith(t, plan.OpMul, col(3, qir.I32), &plan.ConstInt{Ty: qir.I32, V: 2})
			pred := mustCmp(t, plan.CmpGT, qtyTimes2, &plan.ConstInt{Ty: qir.I32, V: 60})
			return &plan.Project{
				Input: &plan.Select{Input: &plan.Scan{Table: "items", Cols: itemsSchema()}, Pred: pred},
				Exprs: []plan.Expr{col(0, qir.I64), col(3, qir.I32)},
			}
		},
		"decimal-math": func() plan.Node {
			total := mustArith(t, plan.OpMul, col(2, qir.I128),
				&plan.Cast{E: col(3, qir.I32), To: qir.I128})
			return &plan.GroupBy{
				Input: &plan.Project{
					Input: &plan.Scan{Table: "items", Cols: itemsSchema()},
					Exprs: []plan.Expr{col(1, qir.I32), total},
				},
				Keys: []plan.Expr{col(0, qir.I32)},
				Aggs: []plan.AggExpr{
					{Fn: plan.AggSum, Arg: col(1, qir.I128)},
					{Fn: plan.AggCount},
				},
			}
		},
		"join-groupby-sort": func() plan.Node {
			j := &plan.HashJoin{
				Build:     &plan.Scan{Table: "groups", Cols: groupsSchema()},
				Probe:     &plan.Scan{Table: "items", Cols: itemsSchema()},
				BuildKeys: []plan.Expr{col(0, qir.I32)},
				ProbeKeys: []plan.Expr{col(1, qir.I32)},
			}
			// join schema: gid, label, id, grp, price, qty, disc, name
			g := &plan.GroupBy{
				Input: j,
				Keys:  []plan.Expr{col(1, qir.Str)},
				Aggs: []plan.AggExpr{
					{Fn: plan.AggCount},
					{Fn: plan.AggSum, Arg: col(5, qir.I32)},
					{Fn: plan.AggMax, Arg: col(2, qir.I64)},
				},
			}
			return &plan.Sort{
				Input: g,
				Keys:  []plan.SortKey{{E: col(1, qir.I64), Desc: true}},
			}
		},
		"like-select-case": func() plan.Node {
			isWidget := &plan.Like{E: col(5, qir.Str), Pattern: "%dget%"}
			val := &plan.Case{
				Cond: isWidget,
				Then: col(0, qir.I64),
				Else: &plan.ConstInt{Ty: qir.I64, V: -1},
			}
			return &plan.Project{
				Input: &plan.Scan{Table: "items", Cols: itemsSchema()},
				Exprs: []plan.Expr{val},
			}
		},
		"float-agg": func() plan.Node {
			return &plan.GroupBy{
				Input: &plan.Scan{Table: "items", Cols: itemsSchema()},
				Keys:  []plan.Expr{col(1, qir.I32)},
				Aggs: []plan.AggExpr{
					{Fn: plan.AggSum, Arg: col(4, qir.F64)},
					{Fn: plan.AggAvg, Arg: col(4, qir.F64)},
					{Fn: plan.AggMin, Arg: col(4, qir.F64)},
				},
			}
		},
		"multikey-sort-limit": func() plan.Node {
			s := &plan.Sort{
				Input: &plan.Scan{Table: "items", Cols: itemsSchema()},
				Keys: []plan.SortKey{
					{E: col(5, qir.Str)},
					{E: col(2, qir.I128), Desc: true},
					{E: col(0, qir.I64)},
				},
			}
			return &plan.Project{
				Input: &plan.Limit{Input: s, N: 25},
				Exprs: []plan.Expr{col(0, qir.I64), col(5, qir.Str)},
			}
		},
		"self-join-count": func() plan.Node {
			j := &plan.HashJoin{
				Build:     &plan.Scan{Table: "items", Cols: itemsSchema()},
				Probe:     &plan.Scan{Table: "items", Cols: itemsSchema()},
				BuildKeys: []plan.Expr{col(1, qir.I32)},
				ProbeKeys: []plan.Expr{col(1, qir.I32)},
			}
			return &plan.GroupBy{Input: j, Aggs: []plan.AggExpr{{Fn: plan.AggCount}}}
		},
		"between-decimal": func() plan.Node {
			pred := &plan.Between{
				E:  col(2, qir.I128),
				Lo: &plan.ConstDec{V: rt.I128FromInt64(10000)},
				Hi: &plan.ConstDec{V: rt.I128FromInt64(60000)},
			}
			return &plan.GroupBy{
				Input: &plan.Select{Input: &plan.Scan{Table: "items", Cols: itemsSchema()}, Pred: pred},
				Aggs:  []plan.AggExpr{{Fn: plan.AggCount}, {Fn: plan.AggSum, Arg: col(2, qir.I128)}},
			}
		},
		"string-group-keys": func() plan.Node {
			return &plan.GroupBy{
				Input: &plan.Scan{Table: "items", Cols: itemsSchema()},
				Keys:  []plan.Expr{col(5, qir.Str)},
				Aggs:  []plan.AggExpr{{Fn: plan.AggCount}},
			}
		},
		"div-mod": func() plan.Node {
			d := mustArith(t, plan.OpDiv, col(0, qir.I64), &plan.ConstInt{Ty: qir.I64, V: 7})
			m := mustArith(t, plan.OpMod, col(0, qir.I64), &plan.ConstInt{Ty: qir.I64, V: 7})
			return &plan.GroupBy{
				Input: &plan.Project{
					Input: &plan.Scan{Table: "items", Cols: itemsSchema()},
					Exprs: []plan.Expr{d, m},
				},
				Keys: []plan.Expr{col(1, qir.I64)},
				Aggs: []plan.AggExpr{{Fn: plan.AggCount}, {Fn: plan.AggSum, Arg: col(0, qir.I64)}},
			}
		},
	}
}

func runOn(t *testing.T, eng backend.Engine, w *world, name string, node plan.Node, arch vt.Arch) []string {
	t.Helper()
	c, err := codegen.Compile(name, node, w.cat)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	ex, stats, err := eng.Compile(c.Module, &backend.Env{DB: w.db, Arch: arch})
	if err != nil {
		t.Fatalf("%s compile %s: %v", eng.Name(), name, err)
	}
	if stats.Total <= 0 {
		t.Errorf("%s: no compile time recorded", eng.Name())
	}
	w.db.Out.Reset()
	if err := codegen.Run(w.db, w.cat, c, ex.Call); err != nil {
		t.Fatalf("%s run %s: %v", eng.Name(), name, err)
	}
	return w.db.Out.Canonical()
}

func TestEnginesAgree(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			es := engines(arch)
			if len(es) < 2 && arch == vt.VX64 {
				t.Fatal("need at least two engines on vx64")
			}
			for qname, build := range corpus(t) {
				qname, build := qname, build
				t.Run(qname, func(t *testing.T) {
					// Fresh world per query so interning/heap state
					// cannot leak between engines via result rows.
					ref := runOn(t, interp.New(), buildWorld(arch), qname, build(), arch)
					if len(ref) == 0 && qname != "never-matches" {
						t.Logf("warning: %s produced no rows", qname)
					}
					for ename, eng := range es {
						if ename == "interp" {
							continue
						}
						got := runOn(t, eng, buildWorld(arch), qname, build(), arch)
						if !reflect.DeepEqual(got, ref) {
							t.Errorf("%s disagrees with interpreter\n got (%d rows): %.8v\nwant (%d rows): %.8v",
								ename, len(got), got, len(ref), ref)
						}
					}
				})
			}
		})
	}
}
