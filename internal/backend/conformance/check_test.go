package conformance_test

import (
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/mcv"
	"qcc/internal/vt"
)

// checkedEngines are the back-ends wired to the machine-code verifier:
// both register allocators of lbe (fast and greedy) exercise the symbolic
// regalloc checker, clift exercises it through its edge-move model, and
// direct (vx64 only) runs lint and summary over single-pass output.
func checkedEngines(arch vt.Arch) map[string]backend.Engine {
	es := map[string]backend.Engine{
		"clift":      clift.New(),
		"llvm-cheap": lbe.NewCheap(),
		"llvm-opt":   lbe.NewOpt(),
	}
	if arch == vt.VX64 {
		es["direct"] = direct.New()
	}
	return es
}

// TestCheckedCompileTPCH compiles every TPC-H query on every verifier-wired
// back-end with Options.Check set: the register-allocation checker, the
// machine-code lint, and the summary pass must all come back clean, the
// Check phases must be recorded, and the per-function structural summaries
// must agree across back-ends (cross-backend differential).
func TestCheckedCompileTPCH(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			cfg := bench.DefaultConfig()
			cfg.Arch = arch
			cfg.SF = 0.01
			cfg.MemMB = 256

			// engine -> query -> per-function summaries
			sums := map[string]map[string][]mcv.FuncSummary{}
			for ename, eng := range checkedEngines(arch) {
				w, err := bench.NewWorldLoaded(cfg, "tpch")
				if err != nil {
					t.Fatalf("load tpch: %v", err)
				}
				sums[ename] = map[string][]mcv.FuncSummary{}
				for _, q := range bench.HQueries() {
					c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
					if err != nil {
						t.Fatalf("codegen %s: %v", q.Name, err)
					}
					_, stats, err := eng.Compile(c.Module, &backend.Env{
						DB: w.DB, Arch: arch,
						Options: backend.Options{Check: true},
					})
					if err != nil {
						t.Errorf("%s/%s: checked compile failed:\n%v", ename, q.Name, err)
						continue
					}
					if stats.PhaseDur("Check.Lint") <= 0 {
						t.Errorf("%s/%s: no Check.Lint phase recorded", ename, q.Name)
					}
					if len(stats.Summaries) == 0 {
						t.Errorf("%s/%s: no function summaries produced", ename, q.Name)
					}
					sums[ename][q.Name] = stats.Summaries
				}
			}

			// Cross-backend differential: every engine must agree with the
			// clift baseline on runtime-call and trap sets per function,
			// modulo the canonicalized overflow-failure idiom (clift traps
			// inline where lbe calls the no-return throw_ helper).
			base := sums["clift"]
			for ename, byQuery := range sums {
				if ename == "clift" {
					continue
				}
				for qname, s := range byQuery {
					d := mcv.Diff("clift", mcv.CanonicalizeFailures(base[qname]),
						ename, mcv.CanonicalizeFailures(s))
					for _, diag := range d {
						t.Errorf("%s: clift vs %s: %s", qname, ename, diag)
					}
				}
			}
		})
	}
}
