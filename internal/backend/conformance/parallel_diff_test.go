// Sequential-vs-parallel differential: the morsel-parallel executor (with
// and without batch kernels) must reproduce the sequential tuple-at-a-time
// result byte for byte — same rows, same row order, same trap codes — for
// every TPC-H query, on both virtual targets, at every worker count. This
// is the executor's analog of the pcc byte-identity differential.
package conformance_test

import (
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/codegen"
	"qcc/internal/obs"
	"qcc/internal/rt"
	"qcc/internal/tpch"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// tpchWorld loads TPC-H small enough for an exhaustive differential but
// large enough that a 128-row morsel yields many morsels per pipeline.
func tpchWorld(t *testing.T, arch vt.Arch) *world {
	t.Helper()
	m := vm.New(vm.Config{Arch: arch, MemSize: 192 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	if err := tpch.Load(cat, 0.02); err != nil {
		t.Fatalf("load tpch: %v", err)
	}
	return &world{db: db, cat: cat}
}

func diffEngine(arch vt.Arch) backend.Engine {
	if arch == vt.VX64 {
		return direct.New()
	}
	return clift.New()
}

func TestParallelDifferential(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			eng := diffEngine(arch)
			w := tpchWorld(t, arch)
			w.db.Checkpoint()
			for _, q := range tpch.Queries() {
				q := q
				t.Run(q.Name, func(t *testing.T) {
					// Reference: default compile, sequential driver.
					c, err := codegen.Compile(q.Name, q.Build(), w.cat)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.db, Arch: arch})
					if err != nil {
						t.Fatalf("engine compile: %v", err)
					}
					w.db.Out.Reset()
					if err := codegen.Run(w.db, w.cat, c, ex.Call); err != nil {
						t.Fatalf("reference run: %v", err)
					}
					ref := w.db.Out.Ordered()
					w.db.ResetToCheckpoint()

					// ResetToCheckpoint drops interned strings and worker
					// arenas, so each (batch, jobs) combination compiles a
					// fresh module rather than reusing one across resets.
					for _, batch := range []bool{false, true} {
						for _, jobs := range []int{1, 2, 4, 8} {
							copts := codegen.Options{Elim: true, Batch: batch, Parallel: true}
							cc, err := codegen.CompileOpts(q.Name, q.Build(), w.cat, copts)
							if err != nil {
								t.Fatalf("compile (batch=%v): %v", batch, err)
							}
							cex, _, err := eng.Compile(cc.Module, &backend.Env{DB: w.db, Arch: arch})
							if err != nil {
								t.Fatalf("engine compile (batch=%v): %v", batch, err)
							}
							var mod *vm.Module
							if mh, ok := cex.(interface{ Module() *vm.Module }); ok {
								mod = mh.Module()
							}
							if mod == nil {
								t.Fatalf("engine %s returned no vm module", eng.Name())
							}
							w.db.Out.Reset()
							err = codegen.RunParallel(w.db, w.cat, cc, cex.Call,
								codegen.ExecOptions{Jobs: jobs, Module: mod, MorselSize: 128})
							if err != nil {
								t.Fatalf("batch=%v jobs=%d: run: %v", batch, jobs, err)
							}
							got := w.db.Out.Ordered()
							if len(got) != len(ref) {
								t.Fatalf("batch=%v jobs=%d: %d rows, want %d", batch, jobs, len(got), len(ref))
							}
							for i := range got {
								if got[i] != ref[i] {
									t.Fatalf("batch=%v jobs=%d: row %d differs\n got: %s\nwant: %s",
										batch, jobs, i, got[i], ref[i])
								}
							}
							w.db.ResetToCheckpoint()
						}
					}
				})
			}
		})
	}
}

// TestParallelActuallyParallel guards against the differential passing
// trivially because every pipeline fell back to sequential execution: q1 at
// 4 workers must dispatch morsels to workers, and its batch compile must
// mark the scan pipeline's functions as batch mode in the provenance.
func TestParallelActuallyParallel(t *testing.T) {
	arch := vt.VX64
	eng := diffEngine(arch)
	w := tpchWorld(t, arch)
	w.db.Checkpoint()

	q := tpch.Queries()[0] // q1
	c, err := codegen.CompileOpts(q.Name, q.Build(), w.cat,
		codegen.Options{Elim: true, Batch: true, Parallel: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	batchFns := 0
	for _, f := range c.Module.Funcs {
		if f.Prov.Mode == "batch" {
			batchFns++
		}
	}
	if batchFns == 0 {
		t.Fatal("q1 compiled with Options.Batch has no batch-mode functions")
	}
	mergeFns := 0
	for _, p := range c.Pipelines {
		if p.MergeFn >= 0 {
			mergeFns++
		}
	}
	if mergeFns == 0 {
		t.Fatal("q1 compiled with Options.Parallel has no aggregation merge function")
	}

	ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.db, Arch: arch})
	if err != nil {
		t.Fatalf("engine compile: %v", err)
	}
	mod := ex.(interface{ Module() *vm.Module }).Module()
	workersBefore := obs.NewCounter("exec_workers").Load()
	morselsBefore := obs.NewCounter("exec_morsels").Load()
	if err := codegen.RunParallel(w.db, w.cat, c, ex.Call,
		codegen.ExecOptions{Jobs: 4, Module: mod, MorselSize: 128}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := obs.NewCounter("exec_workers").Load() - workersBefore; got == 0 {
		t.Error("exec_workers did not advance: no pipeline ran in parallel")
	}
	if got := obs.NewCounter("exec_morsels").Load() - morselsBefore; got < 2 {
		t.Errorf("exec_morsels advanced by %d, want >= 2", got)
	}
	if rt_batch := obs.NewCounter("rt_batch_kernel_calls").Load(); rt_batch == 0 {
		t.Error("rt_batch_kernel_calls is zero: batch kernels never ran")
	}
	w.db.ResetToCheckpoint()
}
