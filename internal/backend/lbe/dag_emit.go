package lbe

import (
	"fmt"

	"qcc/internal/vt"
)

// emitNode selects and schedules one node (DFS over operands and chain),
// setting n.res.
func (dag *selectionDAG) emitNode(n *dnode) error {
	if n.visited {
		return nil
	}
	n.visited = true
	n.res = mval{a: mnone, b: mnone}
	if n.chain != nil {
		if err := dag.emitNode(n.chain); err != nil {
			return err
		}
	}
	if n.special == specCopyFromReg {
		n.res = n.vr
		return nil
	}
	if n.special == specProj {
		base := n.ops[0]
		if err := dag.emitNode(base); err != nil {
			return err
		}
		if n.imm == 0 {
			n.res = mval{a: base.res.a, b: mnone}
		} else {
			n.res = mval{a: base.res.b, b: mnone}
		}
		return nil
	}
	// Wide nodes with legalized halves (skip self-projections: those
	// nodes materialize their own pair below).
	if n.lo != nil && !(n.lo.special == specProj && len(n.lo.ops) == 1 && n.lo.ops[0] == n) {
		if err := dag.emitNode(n.lo); err != nil {
			return err
		}
		if err := dag.emitNode(n.hi); err != nil {
			return err
		}
		n.res = mval{a: n.lo.res.a, b: n.hi.res.a}
		return nil
	}
	emitOps := func() error {
		for _, op := range n.ops {
			if err := dag.emitNode(op); err != nil {
				return err
			}
		}
		return nil
	}

	switch n.op {
	case LOpConst:
		if wideType(n.ty) {
			lo, hi := dag.temp(), dag.temp()
			dag.emitMovI(lo, n.imm)
			dag.emitMovI(hi, n.imm2)
			n.res = mval{a: lo, b: hi}
			return nil
		}
		d := dag.temp()
		dag.emitMovI(d, n.imm)
		n.res = mval{a: d, b: mnone}
	case LOpConstF:
		d := dag.mf.newVReg(rcFloat)
		m := newMinst(vt.FMovRI)
		m.rd, m.imm = d, n.imm
		dag.emit(m)
		n.res = mval{a: d, b: mnone}
	case LOpNull:
		d := dag.temp()
		dag.emitMovI(d, 0)
		n.res = mval{a: d, b: mnone}
	case LOpFuncAddr:
		d := dag.temp()
		m := newMinst(vt.MovRI)
		m.rd, m.sym = d, n.sym
		dag.emit(m)
		n.res = mval{a: d, b: mnone}

	case LOpAdd, LOpSub, LOpMul, LOpSDiv, LOpSRem, LOpUDiv, LOpURem,
		LOpAnd, LOpOr, LOpXor, LOpShl, LOpLShr, LOpAShr:
		if err := emitOps(); err != nil {
			return err
		}
		bits := n.ty.Bits
		a := n.ops[0].res.a
		b := n.ops[1].res.a
		if n.op == LOpLShr && bits < 64 {
			t := dag.temp()
			dag.zextInto(bits, t, a)
			a = t
		}
		d := dag.temp()
		// Immediate form when the right operand is a constant (the
		// pattern-selection payoff of the DAG).
		if c, ok := isConst(n.ops[1]); ok && immForm[fiBinMap[n.op]] != 0 {
			dag.emitImm(immForm[fiBinMap[n.op]], d, a, c)
		} else {
			dag.emit3(fiBinMap[n.op], d, a, b)
		}
		if bits < 64 {
			switch n.op {
			case LOpAnd, LOpOr, LOpXor, LOpAShr, LOpSDiv, LOpSRem:
			default:
				t := dag.temp()
				dag.canonInto(bits, t, d)
				d = t
			}
		}
		n.res = mval{a: d, b: mnone}

	case LOpICmp:
		if wideType(n.ops[0].ty) {
			return dag.emitICmp128(n)
		}
		if err := emitOps(); err != nil {
			return err
		}
		d := dag.temp()
		m := newMinst(vt.SetCC)
		m.cond = vt.Cond(n.pred)
		m.rd, m.ra, m.rb = d, n.ops[0].res.a, n.ops[1].res.a
		dag.emit(m)
		n.res = mval{a: d, b: mnone}
	case LOpFCmp:
		if err := emitOps(); err != nil {
			return err
		}
		d := dag.temp()
		m := newMinst(vt.FCmp)
		m.cond = vt.Cond(n.pred)
		m.rd, m.ra, m.rb = d, n.ops[0].res.a, n.ops[1].res.a
		dag.emit(m)
		n.res = mval{a: d, b: mnone}

	case LOpZExt:
		if err := emitOps(); err != nil {
			return err
		}
		d := dag.temp()
		dag.zextInto(n.ops[0].ty.Bits, d, n.ops[0].res.a)
		n.res = mval{a: d, b: mnone}
	case LOpSExt:
		if err := emitOps(); err != nil {
			return err
		}
		n.res = mval{a: n.ops[0].res.a, b: mnone}
	case LOpTrunc:
		if err := emitOps(); err != nil {
			return err
		}
		src := n.ops[0].res.a // wide source: low half
		d := dag.temp()
		dag.canonInto(n.ty.Bits, d, src)
		n.res = mval{a: d, b: mnone}
	case LOpSIToFP:
		if err := emitOps(); err != nil {
			return err
		}
		d := dag.mf.newVReg(rcFloat)
		dag.emit3(vt.CvtSI2F, d, n.ops[0].res.a, mnone)
		n.res = mval{a: d, b: mnone}
	case LOpFPToSI:
		if err := emitOps(); err != nil {
			return err
		}
		t := dag.temp()
		dag.emit3(vt.CvtF2SI, t, n.ops[0].res.a, mnone)
		d := dag.temp()
		dag.canonInto(n.ty.Bits, d, t)
		n.res = mval{a: d, b: mnone}
	case LOpBitcast:
		if err := emitOps(); err != nil {
			return err
		}
		if n.ty == TDouble {
			d := dag.mf.newVReg(rcFloat)
			dag.emit3(vt.MovFR, d, n.ops[0].res.a, mnone)
			n.res = mval{a: d, b: mnone}
		} else {
			d := dag.temp()
			dag.emit3(vt.MovRF, d, n.ops[0].res.a, mnone)
			n.res = mval{a: d, b: mnone}
		}

	case LOpFAdd, LOpFSub, LOpFMul, LOpFDiv:
		if err := emitOps(); err != nil {
			return err
		}
		var op vt.Op
		switch n.op {
		case LOpFAdd:
			op = vt.FAdd
		case LOpFSub:
			op = vt.FSub
		case LOpFMul:
			op = vt.FMul
		default:
			op = vt.FDiv
		}
		d := dag.mf.newVReg(rcFloat)
		dag.emit3(op, d, n.ops[0].res.a, n.ops[1].res.a)
		n.res = mval{a: d, b: mnone}
	case LOpFNeg:
		if err := emitOps(); err != nil {
			return err
		}
		t := dag.temp()
		dag.emit3(vt.MovRF, t, n.ops[0].res.a, mnone)
		t2 := dag.temp()
		dag.emitMovI(t2, -1<<63)
		t3 := dag.temp()
		dag.emit3(vt.Xor, t3, t, t2)
		d := dag.mf.newVReg(rcFloat)
		dag.emit3(vt.MovFR, d, t3, mnone)
		n.res = mval{a: d, b: mnone}

	case LOpGEP:
		if err := emitOps(); err != nil {
			return err
		}
		d := dag.temp()
		base := n.ops[0].res.a
		if len(n.ops) > 1 {
			idx := n.ops[1].res.a
			t := dag.temp()
			if n.scale != 1 {
				dag.emitImm(vt.MulI, t, idx, n.scale)
			} else {
				dag.emit3(vt.MovRR, t, idx, mnone)
			}
			t2 := dag.temp()
			dag.emit3(vt.Add, t2, base, t)
			dag.emitImm(vt.Lea, d, t2, n.imm)
		} else {
			dag.emitImm(vt.Lea, d, base, n.imm)
		}
		n.res = mval{a: d, b: mnone}

	case LOpLoad:
		addr, disp, err := dag.emitAddr(n.ops[0])
		if err != nil {
			return err
		}
		var mv mval
		mv.a = dag.mf.newVReg(classFor(loadHalfType(n.ty)))
		mv.b = mnone
		if wideType(n.ty) {
			mv.b = dag.temp()
		}
		dag.lowerLoad(n.ty, mv, addr, disp, n.unchecked)
		n.res = mv
	case LOpStore:
		addr, disp, err := dag.emitAddr(n.ops[0])
		if err != nil {
			return err
		}
		if err := dag.emitNode(n.ops[1]); err != nil {
			return err
		}
		dag.lowerStore(n.ops[1].ty, n.ops[1].res, addr, disp, n.unchecked)
	case LOpAtomicRMWAdd:
		if err := emitOps(); err != nil {
			return err
		}
		addr := n.ops[0].res.a
		old := dag.temp()
		dag.lowerLoad(n.ty, mval{a: old, b: mnone}, addr, 0, false)
		sum := dag.temp()
		dag.emit3(vt.Add, sum, old, n.ops[1].res.a)
		t := dag.temp()
		dag.canonInto(n.ty.Bits, t, sum)
		dag.lowerStore(n.ty, mval{a: t, b: mnone}, addr, 0, false)
		n.res = mval{a: old, b: mnone}

	case LOpSelect:
		if err := emitOps(); err != nil {
			return err
		}
		var d mval
		d.a = dag.mf.newVReg(classFor(n.ty))
		d.b = mnone
		dag.lowerSelect(d, n.ops[0].res.a, n.ops[1].res, n.ops[2].res, n.ty)
		n.res = d

	case LOpCallRT:
		if err := emitOps(); err != nil {
			return err
		}
		return dag.emitCallNode(n)

	case LOpIntrinsic:
		return dag.emitIntrinsicNode(n)

	case LOpExtractVal:
		src := n.ops[0]
		if err := dag.emitNode(src); err != nil {
			return err
		}
		if wideType(n.ty) {
			// i128 value of a {i128, i1} intrinsic result.
			n.res = mval{a: src.res.a, b: src.res.b}
			return nil
		}
		if src.op == LOpIntrinsic && src.ty.Kind == KStruct && src.ty.Fields[0].Bits == 128 {
			if n.imm == 1 {
				n.res = mval{a: dag.flags[src], b: mnone}
				return nil
			}
			n.res = mval{a: src.res.a, b: src.res.b}
			return nil
		}
		if n.imm == 0 {
			n.res = mval{a: src.res.a, b: mnone}
		} else {
			n.res = mval{a: src.res.b, b: mnone}
		}

	case LOpBr:
		dag.emitBr(n.thenB)
	case LOpCondBr:
		// Pattern: fuse a single-use integer compare into the branch
		// (the selection payoff over FastISel's SetCC+BrNZ pair).
		cmp := n.ops[0]
		if cmp.op == LOpICmp && cmp.special == specNone && cmp.nuses == 1 &&
			!cmp.visited && !wideType(cmp.ops[0].ty) {
			if err := dag.emitNode(cmp.ops[0]); err != nil {
				return err
			}
			if err := dag.emitNode(cmp.ops[1]); err != nil {
				return err
			}
			cmp.visited = true
			m := newMinst(vt.BrCC)
			m.cond = vt.Cond(cmp.pred)
			m.ra = cmp.ops[0].res.a
			m.rb = cmp.ops[1].res.a
			m.target = n.thenB
			dag.emit(m)
			m2 := newMinst(vt.Br)
			m2.target = n.elseB
			dag.emit(m2)
			dag.mf.blocks[dag.cur].succs = append(dag.mf.blocks[dag.cur].succs, n.thenB, n.elseB)
			return nil
		}
		if err := emitOps(); err != nil {
			return err
		}
		dag.emitCondBr(n.ops[0].res.a, n.thenB, n.elseB)
	case LOpRet:
		if err := emitOps(); err != nil {
			return err
		}
		if len(n.ops) > 0 {
			mv := n.ops[0].res
			if n.ops[0].ty.Kind == KDouble {
				dag.emit3(vt.MovRF, mpreg(dag.tgt.IntRet[0]), mv.a, mnone)
			} else {
				dag.emit3(vt.MovRR, mpreg(dag.tgt.IntRet[0]), mv.a, mnone)
				if mv.b != mnone {
					dag.emit3(vt.MovRR, mpreg(dag.tgt.IntRet[1]), mv.b, mnone)
				}
			}
		}
		dag.emit(newMinst(vt.Ret))
	case LOpUnreachable:
		m := newMinst(vt.Trap)
		m.imm = int64(vt.TrapUnreachable)
		dag.emit(m)

	default:
		return fmt.Errorf("lbe: dag cannot select %s", n.op)
	}
	return nil
}

// emitAddr resolves a memory address, folding a constant-offset GEP into
// the instruction displacement (the addressing-mode pattern match).
func (dag *selectionDAG) emitAddr(n *dnode) (mreg, int64, error) {
	if n.op == LOpGEP && n.special == specNone && len(n.ops) == 1 && !n.visited && n.nuses == 1 {
		if err := dag.emitNode(n.ops[0]); err != nil {
			return mnone, 0, err
		}
		n.visited = true
		return n.ops[0].res.a, n.imm, nil
	}
	if err := dag.emitNode(n); err != nil {
		return mnone, 0, err
	}
	return n.res.a, 0, nil
}

func loadHalfType(t *Type) *Type {
	if t.Kind == KDouble {
		return TDouble
	}
	return TI64
}

var immForm = map[vt.Op]vt.Op{
	vt.Add: vt.AddI, vt.Sub: vt.SubI, vt.Mul: vt.MulI,
	vt.And: vt.AndI, vt.Or: vt.OrI, vt.Xor: vt.XorI,
	vt.Shl: vt.ShlI, vt.Shr: vt.ShrI, vt.Sar: vt.SarI,
}

// emitICmp128 expands a comparison of wide operands.
func (dag *selectionDAG) emitICmp128(n *dnode) error {
	if err := dag.legalizeOperand(n.ops[0]); err != nil {
		return err
	}
	if err := dag.legalizeOperand(n.ops[1]); err != nil {
		return err
	}
	for _, op := range n.ops {
		if err := dag.emitNode(op); err != nil {
			return err
		}
	}
	alo, ahi := n.ops[0].res.a, n.ops[0].res.b
	blo, bhi := n.ops[1].res.a, n.ops[1].res.b
	d := dag.temp()
	switch c := vt.Cond(n.pred); c {
	case vt.CondEQ, vt.CondNE:
		t1, t2 := dag.temp(), dag.temp()
		dag.emit3(vt.Xor, t1, alo, blo)
		dag.emit3(vt.Xor, t2, ahi, bhi)
		t3 := dag.temp()
		dag.emit3(vt.Or, t3, t1, t2)
		z := dag.temp()
		dag.emitMovI(z, 0)
		m := newMinst(vt.SetCC)
		m.cond = c
		m.rd, m.ra, m.rb = d, t3, z
		dag.emit(m)
	default:
		strict, uc := splitWideCmp(c)
		t1, t2, t3 := dag.temp(), dag.temp(), dag.temp()
		m := newMinst(vt.SetCC)
		m.cond = strict
		m.rd, m.ra, m.rb = t1, ahi, bhi
		dag.emit(m)
		m2 := newMinst(vt.SetCC)
		m2.cond = vt.CondEQ
		m2.rd, m2.ra, m2.rb = t2, ahi, bhi
		dag.emit(m2)
		m3 := newMinst(vt.SetCC)
		m3.cond = uc
		m3.rd, m3.ra, m3.rb = t3, alo, blo
		dag.emit(m3)
		t4 := dag.temp()
		dag.emit3(vt.And, t4, t2, t3)
		dag.emit3(vt.Or, d, t1, t4)
	}
	n.res = mval{a: d, b: mnone}
	return nil
}

func splitWideCmp(c vt.Cond) (strict, lo vt.Cond) {
	switch c {
	case vt.CondSLT:
		return vt.CondSLT, vt.CondULT
	case vt.CondSLE:
		return vt.CondSLT, vt.CondULE
	case vt.CondSGT:
		return vt.CondSGT, vt.CondUGT
	case vt.CondSGE:
		return vt.CondSGT, vt.CondUGE
	case vt.CondULT:
		return vt.CondULT, vt.CondULT
	case vt.CondULE:
		return vt.CondULT, vt.CondULE
	case vt.CondUGT:
		return vt.CondUGT, vt.CondUGT
	default:
		return vt.CondUGT, vt.CondUGE
	}
}

// emitCallNode stages call arguments (wide values in two registers) and
// binds results.
func (dag *selectionDAG) emitCallNode(n *dnode) error {
	reg := 0
	stage := func(r mreg) error {
		if reg >= len(dag.tgt.IntArgs) {
			return fmt.Errorf("lbe: too many call arguments")
		}
		dag.emit3(vt.MovRR, mpreg(dag.tgt.IntArgs[reg]), r, mnone)
		reg++
		return nil
	}
	for _, op := range n.ops {
		if op.ty.Kind == KDouble {
			t := dag.temp()
			dag.emit3(vt.MovRF, t, op.res.a, mnone)
			if err := stage(t); err != nil {
				return err
			}
			continue
		}
		if err := stage(op.res.a); err != nil {
			return err
		}
		if op.res.b != mnone {
			if err := stage(op.res.b); err != nil {
				return err
			}
		}
	}
	c := newMinst(vt.CallRT)
	c.imm = int64(n.rtid)
	c.isCall = true
	dag.emit(c)
	if n.ty != TVoid {
		if n.ty.Kind == KDouble {
			d := dag.mf.newVReg(rcFloat)
			dag.emit3(vt.MovFR, d, mpreg(dag.tgt.IntRet[0]), mnone)
			n.res = mval{a: d, b: mnone}
		} else {
			a := dag.temp()
			dag.emit3(vt.MovRR, a, mpreg(dag.tgt.IntRet[0]), mnone)
			b := mnone
			if wideType(n.ty) {
				b = dag.temp()
				dag.emit3(vt.MovRR, b, mpreg(dag.tgt.IntRet[1]), mnone)
			}
			n.res = mval{a: a, b: b}
		}
	}
	return nil
}

// emitIntrinsicNode handles overflow intrinsics (including the i128 forms
// that FastISel cannot), crc32, rotr, and the internal mul-wide node.
func (dag *selectionDAG) emitIntrinsicNode(n *dnode) error {
	for _, op := range n.ops {
		if wideType(op.ty) {
			if err := dag.legalizeOperand(op); err != nil {
				return err
			}
		}
		if err := dag.emitNode(op); err != nil {
			return err
		}
	}
	switch n.intr {
	case IntrCrc32:
		d := dag.temp()
		dag.emit3(vt.Crc32, d, n.ops[0].res.a, n.ops[1].res.a)
		n.res = mval{a: d, b: mnone}
		return nil
	case IntrRotr:
		d := dag.temp()
		dag.emit3(vt.Rotr, d, n.ops[0].res.a, n.ops[1].res.a)
		n.res = mval{a: d, b: mnone}
		return nil
	case intrMulWide:
		lo, hi := dag.temp(), dag.temp()
		m := newMinst(vt.MulWideU)
		m.rd, m.rc, m.ra, m.rb = lo, hi, n.ops[0].res.a, n.ops[1].res.a
		dag.emit(m)
		n.res = mval{a: lo, b: hi}
		return nil
	case IntrSAddOv, IntrSSubOv, IntrSMulOv:
		if n.ty.Fields[0].Bits <= 64 {
			// Delegate to the shared ≤64-bit expansion through a
			// synthetic value mapping.
			return dag.emitOvfNarrow(n)
		}
		return dag.emitOvf128(n)
	}
	return fmt.Errorf("lbe: dag cannot select intrinsic %s", n.intr)
}

func (dag *selectionDAG) emitOvfNarrow(n *dnode) error {
	bits := n.ty.Fields[0].Bits
	a, b := n.ops[0].res.a, n.ops[1].res.a
	val, flag := dag.temp(), dag.temp()
	if bits < 64 {
		var op vt.Op
		switch n.intr {
		case IntrSAddOv:
			op = vt.Add
		case IntrSSubOv:
			op = vt.Sub
		default:
			op = vt.Mul
		}
		wide := dag.temp()
		dag.emit3(op, wide, a, b)
		dag.canonInto(bits, val, wide)
		m := newMinst(vt.SetCC)
		m.cond = vt.CondNE
		m.rd, m.ra, m.rb = flag, val, wide
		dag.emit(m)
	} else {
		switch n.intr {
		case IntrSAddOv, IntrSSubOv:
			op := vt.Add
			if n.intr == IntrSSubOv {
				op = vt.Sub
			}
			dag.emit3(op, val, a, b)
			t1, t2 := dag.temp(), dag.temp()
			if n.intr == IntrSAddOv {
				dag.emit3(vt.Xor, t1, val, a)
				dag.emit3(vt.Xor, t2, val, b)
			} else {
				dag.emit3(vt.Xor, t1, a, b)
				dag.emit3(vt.Xor, t2, val, a)
			}
			t3 := dag.temp()
			dag.emit3(vt.And, t3, t1, t2)
			dag.emitImm(vt.ShrI, flag, t3, 63)
		default:
			hi := dag.temp()
			m := newMinst(vt.MulWideS)
			m.rd, m.rc, m.ra, m.rb = val, hi, a, b
			dag.emit(m)
			t := dag.temp()
			dag.emitImm(vt.SarI, t, val, 63)
			t2 := dag.temp()
			dag.emit3(vt.Xor, t2, t, hi)
			z := dag.temp()
			dag.emitMovI(z, 0)
			sc := newMinst(vt.SetCC)
			sc.cond = vt.CondNE
			sc.rd, sc.ra, sc.rb = flag, t2, z
			dag.emit(sc)
		}
	}
	n.res = mval{a: val, b: flag}
	return nil
}

// emitOvf128 expands 128-bit checked add/sub: the value pair goes in res,
// the flag in dagFlagOf.
func (dag *selectionDAG) emitOvf128(n *dnode) error {
	alo, ahi := n.ops[0].res.a, n.ops[0].res.b
	blo, bhi := n.ops[1].res.a, n.ops[1].res.b
	lo, hi, flag := dag.temp(), dag.temp(), dag.temp()
	switch n.intr {
	case IntrSAddOv:
		dag.emit3(vt.Add, lo, alo, blo)
		carry := dag.temp()
		m := newMinst(vt.SetCC)
		m.cond = vt.CondULT
		m.rd, m.ra, m.rb = carry, lo, alo
		dag.emit(m)
		t := dag.temp()
		dag.emit3(vt.Add, t, ahi, bhi)
		dag.emit3(vt.Add, hi, t, carry)
		t1, t2 := dag.temp(), dag.temp()
		dag.emit3(vt.Xor, t1, hi, ahi)
		dag.emit3(vt.Xor, t2, hi, bhi)
		t3 := dag.temp()
		dag.emit3(vt.And, t3, t1, t2)
		dag.emitImm(vt.ShrI, flag, t3, 63)
	case IntrSSubOv:
		borrow := dag.temp()
		m := newMinst(vt.SetCC)
		m.cond = vt.CondULT
		m.rd, m.ra, m.rb = borrow, alo, blo
		dag.emit(m)
		dag.emit3(vt.Sub, lo, alo, blo)
		t := dag.temp()
		dag.emit3(vt.Sub, t, ahi, bhi)
		dag.emit3(vt.Sub, hi, t, borrow)
		t1, t2 := dag.temp(), dag.temp()
		dag.emit3(vt.Xor, t1, ahi, bhi)
		dag.emit3(vt.Xor, t2, hi, ahi)
		t3 := dag.temp()
		dag.emit3(vt.And, t3, t1, t2)
		dag.emitImm(vt.ShrI, flag, t3, 63)
	default:
		return fmt.Errorf("lbe: 128-bit smul.with.overflow should use the runtime helper")
	}
	n.res = mval{a: lo, b: hi}
	if dag.flags == nil {
		dag.flags = map[*dnode]mreg{}
	}
	dag.flags[n] = flag
	return nil
}
