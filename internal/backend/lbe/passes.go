package lbe

import (
	"fmt"

	"qcc/internal/backend"
)

// The pass manager mirrors LLVM's legacy pass manager: passes declare
// analysis dependencies that the manager tracks in per-function bookkeeping
// maps (the overhead the paper measures at ~5% of cheap compile time), and
// many back-end preparation passes scan the whole function for constructs
// the query compiler never generates — the "always run, rarely needed"
// problem discussed in Sec. V-B2.

type passContext struct {
	stats *backend.Stats
	// available mimics the legacy PM's analysis availability tracking.
	available map[string]any
	dt        *lDomTree
	loops     *lLoopInfo
}

type irPass struct {
	name     string
	analyses []string // analyses required (forces bookkeeping lookups)
	run      func(fn *Fn, ctx *passContext)
}

type passManager struct {
	passes []irPass
}

func (pm *passManager) add(p irPass) { pm.passes = append(pm.passes, p) }

// run executes the pipeline on one function. Pass time is charged to the
// phase span the caller has open (the old Lap scheme charged it twice:
// once here via AddPhase and once by the enclosing lap); with tracing on,
// each individual pass additionally gets a nested trace span.
func (pm *passManager) run(fn *Fn, ph *backend.Phaser, stats *backend.Stats) {
	ctx := &passContext{stats: stats, available: map[string]any{}}
	tr := ph.Tracer()
	for _, p := range pm.passes {
		psp := tr.BeginCat(p.name, "pass")
		// Legacy pass-manager bookkeeping: look up required analyses,
		// recompute if unavailable, invalidate afterwards.
		for _, a := range p.analyses {
			if _, ok := ctx.available[a]; !ok {
				computeAnalysis(fn, ctx, a)
				ctx.available[a] = struct{}{}
			}
		}
		p.run(fn, ctx)
		// Transformation passes conservatively invalidate analyses.
		if len(p.analyses) == 0 {
			for k := range ctx.available {
				delete(ctx.available, k)
			}
			ctx.dt, ctx.loops = nil, nil
		}
		psp.End()
		stats.Count("passes_run", 1)
	}
}

func computeAnalysis(fn *Fn, ctx *passContext, name string) {
	switch name {
	case "domtree":
		ctx.dt = buildDomTree(fn)
	case "loops":
		if ctx.dt == nil {
			ctx.dt = buildDomTree(fn)
		}
		ctx.loops = buildLoopInfo(fn, ctx.dt)
	}
}

// scanPass builds a pass that iterates every instruction checking a
// predicate that (for query workloads) never fires — the paper's "passes
// always run even though Umbra never generates the handled constructs".
func scanPass(name string, match func(*Instr) bool) irPass {
	return irPass{name: name, analyses: []string{"none"}, run: func(fn *Fn, ctx *passContext) {
		hits := 0
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if match(in) {
					hits++
				}
			}
		}
		if hits > 0 {
			ctx.stats.Count("scanpass_hits_"+name, int64(hits))
		}
	}}
}

// backendPrepPasses are the pre-ISel IR passes both modes run.
func backendPrepPasses() []irPass {
	return []irPass{
		scanPass("expand-large-divrem", func(in *Instr) bool {
			return (in.Op == LOpSDiv || in.Op == LOpUDiv || in.Op == LOpSRem || in.Op == LOpURem) &&
				in.Typ.Kind == KInt && in.Typ.Bits > 128
		}),
		scanPass("lower-constant-intrinsics", func(in *Instr) bool {
			return in.Op == LOpIntrinsic && in.Intr >= NumIntrinsics
		}),
		scanPass("expand-vector-predication", func(in *Instr) bool { return false }),
		scanPass("scalarize-masked-mem-intrin", func(in *Instr) bool { return false }),
		scanPass("expand-reductions", func(in *Instr) bool { return false }),
		scanPass("lower-amx-type", func(in *Instr) bool { return false }),
		scanPass("indirectbr-expand", func(in *Instr) bool { return false }),
		scanPass("callbr-prepare", func(in *Instr) bool { return false }),
		scanPass("safe-stack", func(in *Instr) bool { return false }),
		scanPass("stack-protector", func(in *Instr) bool { return false }),
		scanPass("expand-memcmp", func(in *Instr) bool { return false }),
		scanPass("interleaved-access", func(in *Instr) bool { return false }),
	}
}

// optPasses is the optimized-mode midend: CSE, CFG simplification,
// instruction combining, LICM and DCE (the set listed in Sec. V-A1). Like
// LLVM's -O2 pipeline, the scalar passes run in several rounds (early and
// late simplification), each with its own analysis bookkeeping.
func optPasses() []irPass {
	var ps []irPass
	for round := 0; round < 3; round++ {
		tag := fmt.Sprintf("%d", round+1)
		ps = append(ps,
			irPass{name: "early-cse" + tag, run: func(fn *Fn, ctx *passContext) { earlyCSE(fn) }},
			irPass{name: "simplifycfg" + tag, run: func(fn *Fn, ctx *passContext) { simplifyCFG(fn) }},
			irPass{name: "instcombine" + tag, run: func(fn *Fn, ctx *passContext) { instCombine(fn) }},
			irPass{name: "licm" + tag, analyses: []string{"domtree", "loops"}, run: func(fn *Fn, ctx *passContext) {
				licm(fn, ctx.dt, ctx.loops)
			}},
			irPass{name: "dce" + tag, run: func(fn *Fn, ctx *passContext) { dce(fn) }},
		)
	}
	// CodeGenPrepare recomputes the dominator tree and loop info once
	// more (the double computation the paper observes).
	ps = append(ps, irPass{name: "codegenprepare", analyses: []string{"domtree", "loops"},
		run: func(fn *Fn, ctx *passContext) {}})
	return ps
}

// --------------------------------------------------------------------------
// LIR analyses.
// --------------------------------------------------------------------------

type lDomTree struct {
	idom map[*Block]*Block
	num  map[*Block]int
	rpo  []*Block
}

func buildDomTree(fn *Fn) *lDomTree {
	// Reverse postorder over reachable blocks.
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(fn.Blocks[0])
	dt := &lDomTree{idom: map[*Block]*Block{}, num: map[*Block]int{}}
	for i := len(post) - 1; i >= 0; i-- {
		dt.rpo = append(dt.rpo, post[i])
	}
	for i, b := range dt.rpo {
		dt.num[b] = i
	}
	entry := dt.rpo[0]
	dt.idom[entry] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for dt.num[a] > dt.num[b] {
				a = dt.idom[a]
			}
			for dt.num[b] > dt.num[a] {
				b = dt.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range dt.rpo[1:] {
			var ni *Block
			for _, p := range b.Preds {
				if _, ok := dt.idom[p]; !ok {
					continue
				}
				if ni == nil {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != nil && dt.idom[b] != ni {
				dt.idom[b] = ni
				changed = true
			}
		}
	}
	return dt
}

func (dt *lDomTree) dominates(a, b *Block) bool {
	if _, ok := dt.num[b]; !ok {
		return false
	}
	for {
		if a == b {
			return true
		}
		n := dt.idom[b]
		if n == nil || n == b {
			return false
		}
		b = n
	}
}

type lLoop struct {
	header *Block
	blocks map[*Block]bool
}

type lLoopInfo struct {
	loops []*lLoop
	depth map[*Block]int
}

func buildLoopInfo(fn *Fn, dt *lDomTree) *lLoopInfo {
	li := &lLoopInfo{depth: map[*Block]int{}}
	for _, b := range dt.rpo {
		for _, s := range b.Succs() {
			if !dt.dominates(s, b) {
				continue
			}
			l := &lLoop{header: s, blocks: map[*Block]bool{s: true}}
			work := []*Block{b}
			for len(work) > 0 {
				n := work[len(work)-1]
				work = work[:len(work)-1]
				if l.blocks[n] {
					continue
				}
				l.blocks[n] = true
				work = append(work, n.Preds...)
			}
			li.loops = append(li.loops, l)
			for blk := range l.blocks {
				li.depth[blk]++
			}
		}
	}
	return li
}

// --------------------------------------------------------------------------
// Transformations.
// --------------------------------------------------------------------------

// cseKey identifies structurally-equal pure instructions.
type cseKey struct {
	op        Opcode
	a, b, c   *Instr
	imm, imm2 int64
	pred      uint8
	scale     int64
	intr      IntrinsicID
}

func keyOf(in *Instr) (cseKey, bool) {
	// Constants are not CSE'd or hoisted: like LLVM's uniqued constants,
	// they are rematerialized by instruction selection, so keeping them
	// near their uses avoids long live ranges.
	if in.Op.HasSideEffects() || in.Op == LOpPhi || in.Op == LOpLoad || in.Op.IsTerminator() ||
		in.Op == LOpConst || in.Op == LOpConstF || in.Op == LOpNull {
		return cseKey{}, false
	}
	k := cseKey{op: in.Op, imm: in.Imm, imm2: in.Imm2, pred: in.Pred, scale: in.Scale, intr: in.Intr}
	if len(in.Ops) > 0 {
		k.a = in.Ops[0]
	}
	if len(in.Ops) > 1 {
		k.b = in.Ops[1]
	}
	if len(in.Ops) > 2 {
		k.c = in.Ops[2]
	}
	return k, true
}

// earlyCSE eliminates redundant pure computations with dominance-scoped
// hashing (per dominator-tree walk over RPO; a block may reuse values from
// dominating blocks).
func earlyCSE(fn *Fn) {
	dt := buildDomTree(fn)
	avail := map[cseKey]*Instr{}
	for _, b := range dt.rpo {
		for _, in := range append([]*Instr(nil), b.Instrs...) {
			k, ok := keyOf(in)
			if !ok {
				continue
			}
			if prev, ok := avail[k]; ok && dt.dominates(prev.Block, b) {
				in.ReplaceAllUses(prev)
				in.eraseDead()
				continue
			}
			avail[k] = in
		}
	}
}

// simplifyCFG folds constant conditional branches, merges straight-line
// block pairs, and drops unreachable blocks.
func simplifyCFG(fn *Fn) {
	changed := true
	for changed {
		changed = false
		// Fold condbr on constants.
		for _, b := range fn.Blocks {
			t := b.Term()
			if t == nil || t.Op != LOpCondBr {
				continue
			}
			c := t.Ops[0]
			if c.Op != LOpConst {
				continue
			}
			keep, drop := t.Then, t.Else
			if c.Imm == 0 {
				keep, drop = t.Else, t.Then
			}
			t.Op = LOpBr
			t.Ops[0].RemoveUse(t)
			t.Ops = nil
			t.Then, t.Else = keep, nil
			removePhiEdge(drop, b)
			changed = true
		}
		recomputePreds(fn)
		// Merge B -> S when S is B's unique successor and B is S's
		// unique predecessor.
		for _, b := range fn.Blocks {
			t := b.Term()
			if t == nil || t.Op != LOpBr {
				continue
			}
			s := t.Then
			if s == b || s == fn.Blocks[0] || len(s.Preds) != 1 {
				continue
			}
			// Replace phis in S (single incoming).
			for len(s.Instrs) > 0 && s.Instrs[0].Op == LOpPhi {
				phi := s.Instrs[0]
				phi.ReplaceAllUses(phi.Ops[0])
				for _, op := range phi.Ops {
					op.RemoveUse(phi)
				}
				s.Instrs = s.Instrs[1:]
			}
			// Splice.
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			for _, in := range s.Instrs {
				in.Block = b
				b.Instrs = append(b.Instrs, in)
			}
			// Successor phi incoming blocks now come from b.
			for _, ss := range b.Succs() {
				for _, in := range ss.Instrs {
					if in.Op != LOpPhi {
						break
					}
					for i, inc := range in.Inc {
						if inc == s {
							in.Inc[i] = b
						}
					}
				}
			}
			s.Instrs = nil
			changed = true
			recomputePreds(fn)
		}
		// Drop unreachable blocks.
		reachable := map[*Block]bool{}
		var mark func(*Block)
		mark = func(b *Block) {
			if reachable[b] {
				return
			}
			reachable[b] = true
			for _, s := range b.Succs() {
				mark(s)
			}
		}
		mark(fn.Blocks[0])
		var kept []*Block
		for _, b := range fn.Blocks {
			if reachable[b] {
				kept = append(kept, b)
				continue
			}
			if len(b.Instrs) > 0 {
				changed = true
			}
			for _, in := range b.Instrs {
				for _, op := range in.Ops {
					op.RemoveUse(in)
				}
			}
			b.Instrs = nil
		}
		if len(kept) != len(fn.Blocks) {
			// Remove phi edges from deleted preds.
			for _, b := range kept {
				for _, in := range b.Instrs {
					if in.Op != LOpPhi {
						break
					}
					for i := len(in.Inc) - 1; i >= 0; i-- {
						if !reachable[in.Inc[i]] {
							in.Ops[i].RemoveUse(in)
							in.Ops = append(in.Ops[:i], in.Ops[i+1:]...)
							in.Inc = append(in.Inc[:i], in.Inc[i+1:]...)
						}
					}
				}
			}
			fn.Blocks = kept
			for i, b := range fn.Blocks {
				b.id = int32(i)
			}
		}
		recomputePreds(fn)
	}
}

func removePhiEdge(b *Block, pred *Block) {
	for _, in := range b.Instrs {
		if in.Op != LOpPhi {
			break
		}
		for i, inc := range in.Inc {
			if inc == pred {
				in.Ops[i].RemoveUse(in)
				in.Ops = append(in.Ops[:i], in.Ops[i+1:]...)
				in.Inc = append(in.Inc[:i], in.Inc[i+1:]...)
				break
			}
		}
	}
}

func recomputePreds(fn *Fn) {
	for _, b := range fn.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// instCombine applies local algebraic rewrites until fixpoint.
func instCombine(fn *Fn) {
	changed := true
	for changed {
		changed = false
		for _, b := range fn.Blocks {
			for _, in := range append([]*Instr(nil), b.Instrs...) {
				if combineOne(in) {
					changed = true
				}
			}
		}
	}
}

func constOf(in *Instr) (int64, bool) {
	if in.Op == LOpConst && in.Typ.Kind == KInt && in.Typ.Bits <= 64 {
		return in.Imm, true
	}
	return 0, false
}

func combineOne(in *Instr) bool {
	replaceWith := func(w *Instr) bool {
		in.ReplaceAllUses(w)
		return in.eraseDead()
	}
	switch in.Op {
	case LOpAdd, LOpSub, LOpMul, LOpAnd, LOpOr, LOpXor, LOpShl, LOpLShr, LOpAShr:
		if in.Typ.Bits > 64 {
			return false
		}
		a, aok := constOf(in.Ops[0])
		b, bok := constOf(in.Ops[1])
		if aok && bok {
			folded := foldBinOp(in.Op, in.Typ, a, b)
			op0 := in.Ops[0]
			in.Op = LOpConst
			in.Imm = folded
			op0.RemoveUse(in)
			in.Ops[1].RemoveUse(in)
			in.Ops = nil
			return true
		}
		if bok {
			identity := b == 0 && (in.Op == LOpAdd || in.Op == LOpSub || in.Op == LOpOr ||
				in.Op == LOpXor || in.Op == LOpShl || in.Op == LOpLShr || in.Op == LOpAShr) ||
				b == 1 && in.Op == LOpMul
			if identity {
				return replaceWith(in.Ops[0])
			}
		}
	case LOpICmp:
		a, aok := constOf(in.Ops[0])
		b, bok := constOf(in.Ops[1])
		if aok && bok {
			r := int64(0)
			if evalPred(in.Pred, a, b) {
				r = 1
			}
			in.Ops[0].RemoveUse(in)
			in.Ops[1].RemoveUse(in)
			in.Op = LOpConst
			in.Typ = TI1
			in.Imm = r
			in.Ops = nil
			return true
		}
	case LOpSelect:
		if c, ok := constOf(in.Ops[0]); ok {
			if c != 0 {
				return replaceWith(in.Ops[1])
			}
			return replaceWith(in.Ops[2])
		}
	case LOpZExt, LOpSExt, LOpTrunc:
		if in.Ops[0].Typ == in.Typ {
			return replaceWith(in.Ops[0])
		}
	}
	return false
}

// licm hoists loop-invariant pure instructions into the preheader.
func licm(fn *Fn, dt *lDomTree, li *lLoopInfo) {
	for _, l := range li.loops {
		// Preheader: unique predecessor of the header outside the loop.
		var pre *Block
		for _, p := range l.header.Preds {
			if l.blocks[p] {
				continue
			}
			if pre != nil {
				pre = nil
				break
			}
			pre = p
		}
		if pre == nil || pre.Term() == nil || pre.Term().Op != LOpBr {
			continue
		}
		invariant := func(in *Instr) bool {
			if in.Op.HasSideEffects() || in.Op == LOpPhi || in.Op == LOpLoad ||
				in.Op.IsTerminator() || in.Op == LOpInvalid ||
				in.Op == LOpConst || in.Op == LOpConstF || in.Op == LOpNull {
				return false
			}
			for _, op := range in.Ops {
				if op.Block != nil && l.blocks[op.Block] {
					return false
				}
			}
			return true
		}
		// Walk the loop body in fn.Blocks order, not map order: the hoist
		// order decides the preheader instruction sequence and must be
		// deterministic for byte-identical recompiles.
		var body []*Block
		for _, b := range fn.Blocks {
			if l.blocks[b] {
				body = append(body, b)
			}
		}
		for changed := true; changed; {
			changed = false
			for _, blk := range body {
				for _, in := range append([]*Instr(nil), blk.Instrs...) {
					if !invariant(in) {
						continue
					}
					// Move before the preheader terminator.
					for i, x := range blk.Instrs {
						if x == in {
							blk.Instrs = append(blk.Instrs[:i], blk.Instrs[i+1:]...)
							break
						}
					}
					in.Block = pre
					pre.Instrs = append(pre.Instrs[:len(pre.Instrs)-1],
						in, pre.Instrs[len(pre.Instrs)-1])
					changed = true
				}
			}
		}
	}
}

// dce removes dead pure instructions, iterating to a fixpoint.
func dce(fn *Fn) {
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				if b.Instrs[i].eraseDead() {
					changed = true
				}
			}
		}
	}
}
