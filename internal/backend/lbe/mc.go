package lbe

import (
	"encoding/binary"
	"fmt"

	"qcc/internal/vm"
	"qcc/internal/vt"
)

// prologEpilog finalizes the stack frame: it computes the layout (spill
// slots plus the callee-saved area), rewrites every frame-index reference,
// and inserts the prologue and epilogues — the pass the paper reports at 4%
// of cheap compile time.
func prologEpilog(mf *mfunc, st *raState, tgt *vt.Target) {
	slotBase := int64(0)
	calleeBase := slotBase + int64(st.numSlots)*8
	frame := calleeBase + int64(len(st.usedCallee))*8
	frame = (frame + 15) &^ 15
	if frame == 0 {
		frame = 16
	}
	sp := mpreg(tgt.SP)

	// Rewrite frame-index references.
	for b := range mf.blocks {
		for i := range mf.blocks[b].insts {
			in := &mf.blocks[b].insts[i]
			if in.sym == -2 {
				in.imm = slotBase + in.imm*8
				in.sym = -1
			}
		}
	}

	// Prologue at function entry.
	var pro []minst
	sub := newMinst(vt.SubI)
	sub.rd, sub.ra, sub.imm = sp, sp, frame
	pro = append(pro, sub)
	for i, r := range st.usedCallee {
		s := newMinst(vt.Store64)
		s.ra, s.rb, s.imm = sp, mpreg(r), calleeBase+int64(i)*8
		pro = append(pro, s)
	}
	mf.blocks[0].insts = append(pro, mf.blocks[0].insts...)

	// Epilogues before every return.
	for b := range mf.blocks {
		blk := &mf.blocks[b]
		var out []minst
		for _, in := range blk.insts {
			if in.op == vt.Ret {
				for i, r := range st.usedCallee {
					l := newMinst(vt.Load64)
					l.rd, l.ra, l.imm = mpreg(r), sp, calleeBase+int64(i)*8
					out = append(out, l)
				}
				add := newMinst(vt.AddI)
				add.rd, add.ra, add.imm = sp, sp, frame
				out = append(out, add)
			}
			out = append(out, in)
		}
		blk.insts = out
	}
}

// mcStreamer abstracts the emission target, mirroring LLVM's MCStreamer:
// every instruction goes through virtual dispatch, and hooks observe each
// instruction, basic block, and function (used here for the DWARF unwind
// writer) — the indirection costs the paper describes.
type mcStreamer interface {
	emitLabel(name string)
	emitInstruction(inst *mcInst)
	emitFunctionStart(name string)
	emitFunctionEnd(name string)
}

// mcInst is the MC-layer instruction: a second in-memory form between MIR
// and encoded bytes.
type mcInst struct {
	op       vt.Op
	cond     vt.Cond
	rd       uint8
	ra       uint8
	rb       uint8
	rc       uint8
	imm      int64
	labelRef string // branch target label ("" none)
	symRef   int32  // relocation symbol (-1 none)
}

// objEmitter implements mcStreamer, encoding into an object-file text
// section with string-keyed labels (hashed on every reference, as in LLVM).
type objEmitter struct {
	asm      vt.Assembler
	arch     vt.Arch
	labels   map[string]vt.Label
	cfi      []byte
	fnStarts map[string]int32
	fnEnds   map[string]int32
	hooks    []func(*mcInst) // per-instruction hooks (unwind writer)
	// callFixups are local call sites patched at finish (label name and
	// byte offset of the call instruction).
	callFixups []callFixup
	labelPos   map[string]int32 // filled from labels at finish
}

// callFixup is a call site referencing a text label by name; sites whose
// label lives outside the emitter's own buffer (a function unit calling a
// module PLT stub) survive finish unresolved and are patched by the link
// step once the stub addresses are known.
type callFixup struct {
	at    int32
	label string
}

func newObjEmitter(arch vt.Arch) *objEmitter {
	oe := &objEmitter{
		asm:      vt.NewAssembler(arch),
		arch:     arch,
		labels:   map[string]vt.Label{},
		fnStarts: map[string]int32{},
		fnEnds:   map[string]int32{},
		labelPos: map[string]int32{},
	}
	// The DWARF unwind hook observes every instruction.
	oe.hooks = append(oe.hooks, func(in *mcInst) {
		if in.op == vt.CallRT || in.op == vt.Call {
			oe.cfi = appendCFIAdvance(oe.cfi, oe.asm.PCOffset())
		}
	})
	return oe
}

func appendCFIAdvance(cfi []byte, off int) []byte {
	cfi = append(cfi, 0x02) // DW_CFA_advance_loc-like
	for v := uint(off); ; {
		c := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			cfi = append(cfi, c|0x80)
		} else {
			cfi = append(cfi, c)
			break
		}
	}
	return cfi
}

func (oe *objEmitter) label(name string) vt.Label {
	if l, ok := oe.labels[name]; ok {
		return l
	}
	l := oe.asm.NewLabel()
	oe.labels[name] = l
	return l
}

func (oe *objEmitter) emitLabel(name string) {
	oe.asm.Bind(oe.label(name))
	oe.labelPos[name] = int32(oe.asm.PCOffset())
}

func (oe *objEmitter) emitFunctionStart(name string) {
	oe.fnStarts[name] = int32(oe.asm.PCOffset())
}

func (oe *objEmitter) emitFunctionEnd(name string) {
	oe.fnEnds[name] = int32(oe.asm.PCOffset())
}

func (oe *objEmitter) emitInstruction(in *mcInst) {
	for _, h := range oe.hooks {
		h(in)
	}
	if in.symRef >= 0 {
		oe.asm.EmitMovSym(in.rd, in.symRef)
		return
	}
	if in.op == vt.Call && in.labelRef != "" {
		// Local call: patch the absolute target at finish time.
		at := int32(oe.asm.PCOffset())
		if oe.arch == vt.VX64 {
			at++ // opcode byte precedes the abs32 field
		}
		oe.callFixups = append(oe.callFixups, callFixup{at, in.labelRef})
		oe.asm.Emit(vt.Instr{Op: vt.Call, Imm: 0})
		return
	}
	i := vt.Instr{
		Op: in.op, Cond: in.cond, RD: in.rd, RA: in.ra, RB: in.rb, RC: in.rc,
		Imm: in.imm,
	}
	if in.labelRef != "" {
		i.Target = int32(oe.label(in.labelRef))
	}
	oe.asm.Emit(i)
}

// finish resolves label fixups and local calls, returning the text bytes,
// the external (function-symbol) relocations, and any call fixups whose
// label is not defined in this buffer — those reference module PLT stubs
// and are resolved by the link step.
func (oe *objEmitter) finish() ([]byte, []vt.Reloc, []callFixup, error) {
	code, relocs, err := oe.asm.Finish()
	if err != nil {
		return nil, nil, nil, err
	}
	var ext []callFixup
	for _, f := range oe.callFixups {
		pos, ok := oe.labelPos[f.label]
		if !ok {
			ext = append(ext, f)
			continue
		}
		oe.patchCall(code, f.at, int64(pos))
	}
	return code, relocs, ext, nil
}

// patchCall writes the absolute call target at a call fixup site.
func (oe *objEmitter) patchCall(code []byte, at int32, pos int64) {
	kind := vt.RelocCall32
	if oe.arch == vt.VA64 {
		kind = vt.RelocCall24
	}
	vt.Reloc{Kind: kind, Offset: at}.Patch(code, pos)
}

// rebaseCFIAdvances re-encodes a unit-relative CFI advance stream against a
// new base offset, so per-function CFI fragments can be concatenated into
// the module's unwind section.
func rebaseCFIAdvances(dst, cfi []byte, base int) ([]byte, error) {
	for i := 0; i < len(cfi); {
		if cfi[i] != 0x02 {
			return nil, fmt.Errorf("lbe: bad CFI opcode 0x%02x", cfi[i])
		}
		i++
		var off uint
		for shift := 0; ; shift += 7 {
			if i >= len(cfi) {
				return nil, fmt.Errorf("lbe: truncated CFI advance")
			}
			c := cfi[i]
			i++
			off |= uint(c&0x7F) << shift
			if c&0x80 == 0 {
				break
			}
		}
		dst = appendCFIAdvance(dst, int(off)+base)
	}
	return dst, nil
}

// asmPrint lowers one allocated, frame-finalized MIR function through the
// streamer.
func asmPrint(mf *mfunc, tgt *vt.Target, out mcStreamer, fnIdx int, cfg Config, rtUsed map[uint32]bool) error {
	out.emitFunctionStart(mf.name)
	out.emitLabel(fmt.Sprintf("%s$entry", mf.name))
	for b := range mf.blocks {
		out.emitLabel(fmt.Sprintf("%s$bb%d", mf.name, b))
		for i := range mf.blocks[b].insts {
			in := &mf.blocks[b].insts[i]
			// Branch folding: an unconditional branch to the next block
			// in layout order falls through.
			if in.op == vt.Br && i == len(mf.blocks[b].insts)-1 && in.target == int32(b)+1 {
				continue
			}
			mc := &mcInst{op: in.op, cond: in.cond, imm: in.imm, symRef: -1}
			reg := func(r mreg) (uint8, error) {
				if r == mnone {
					return 0, nil
				}
				if !isMPreg(r) {
					return 0, fmt.Errorf("lbe: %s: unallocated vreg %d in %s", mf.name, r, in)
				}
				return mpregNum(r), nil
			}
			var err error
			mc.rd, err = reg(in.rd)
			if err != nil {
				return err
			}
			mc.ra, err = reg(in.ra)
			if err != nil {
				return err
			}
			mc.rb, err = reg(in.rb)
			if err != nil {
				return err
			}
			mc.rc, err = reg(in.rc)
			if err != nil {
				return err
			}
			switch {
			case in.op == vt.MovRR && mc.rd == mc.ra,
				in.op == vt.FMovRR && mc.rd == mc.ra:
				continue // identity copies from coalescing
			case in.op.IsBranch():
				mc.labelRef = fmt.Sprintf("%s$bb%d", mf.name, in.target)
			case in.op == vt.MovRI && in.sym >= 0:
				mc.symRef = in.sym
			case in.op == vt.CallRT && !cfg.LargeCodeModel:
				// Small-PIC: route through the module PLT (one extra
				// jump pair at run time, cf. Sec. V-A2).
				rtUsed[uint32(in.imm)] = true
				out.emitInstruction(&mcInst{op: vt.Call, labelRef: fmt.Sprintf("$plt%d", in.imm), symRef: -1})
				continue
			}
			out.emitInstruction(mc)
		}
	}
	out.emitFunctionEnd(mf.name)
	return nil
}

// emitPLT writes the PLT stubs for the runtime functions the module calls
// (Small-PIC code model): each stub performs the actual runtime call and
// returns, costing the extra jump pair the paper discusses.
func emitPLT(out *objEmitter, rtUsed map[uint32]bool, max uint32) {
	for id := uint32(0); id <= max; id++ {
		if !rtUsed[id] {
			continue
		}
		out.emitLabel(fmt.Sprintf("$plt%d", id))
		out.emitInstruction(&mcInst{op: vt.CallRT, imm: int64(id), symRef: -1})
		out.emitInstruction(&mcInst{op: vt.Ret, symRef: -1})
	}
}

// object is the in-memory ELF-like object file.
type object struct {
	text    []byte
	symbols []objSymbol
	relocs  []objReloc
	cfi     []byte
	names   []byte // string table
}

type objSymbol struct {
	nameOff int32
	nameLen int32
	value   int32 // offset in text
	size    int32
}

type objReloc struct {
	off  int32
	kind vt.RelocKind
	sym  int32
}

// encodeObject serializes the object to bytes (section header + payloads),
// the format JITLink parses back.
func encodeObject(o *object) []byte {
	var buf []byte
	w32 := func(v int32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		buf = append(buf, b[:]...)
	}
	buf = append(buf, 'Q', 'E', 'L', 'F')
	w32(int32(len(o.text)))
	w32(int32(len(o.symbols)))
	w32(int32(len(o.relocs)))
	w32(int32(len(o.cfi)))
	w32(int32(len(o.names)))
	buf = append(buf, o.text...)
	for _, s := range o.symbols {
		w32(s.nameOff)
		w32(s.nameLen)
		w32(s.value)
		w32(s.size)
	}
	for _, r := range o.relocs {
		w32(r.off)
		w32(int32(r.kind))
		w32(r.sym)
	}
	buf = append(buf, o.cfi...)
	buf = append(buf, o.names...)
	return buf
}

// jitLink maps the object into executable form in four phases, mirroring
// the JITLink flow of the paper: (1) recover symbols and allocate memory,
// (2) assign addresses and resolve, (3) apply relocations and copy, (4)
// look up entry addresses.
func jitLink(objBytes []byte, arch vt.Arch, fnNames []string) (*vm.Module, []int32, error) {
	// Phase 1: parse the object, recover symbols, allocate.
	if len(objBytes) < 24 || string(objBytes[:4]) != "QELF" {
		return nil, nil, fmt.Errorf("lbe: bad object file")
	}
	r32 := func(off int) int32 {
		return int32(binary.LittleEndian.Uint32(objBytes[off:]))
	}
	textLen := int(r32(4))
	nsyms := int(r32(8))
	nrels := int(r32(12))
	cfiLen := int(r32(16))
	namesLen := int(r32(20))
	pos := 24
	text := objBytes[pos : pos+textLen]
	pos += textLen
	syms := make([]objSymbol, nsyms)
	for i := range syms {
		syms[i] = objSymbol{r32(pos), r32(pos + 4), r32(pos + 8), r32(pos + 12)}
		pos += 16
	}
	rels := make([]objReloc, nrels)
	for i := range rels {
		rels[i] = objReloc{off: r32(pos), kind: vt.RelocKind(r32(pos + 4)), sym: r32(pos + 8)}
		pos += 12
	}
	cfi := objBytes[pos : pos+cfiLen]
	pos += cfiLen
	names := objBytes[pos : pos+namesLen]
	mem := make([]byte, len(text)) // allocation of the final memory

	// Phase 2: assign addresses and resolve symbols by name.
	symAddr := make(map[string]int64, nsyms)
	for _, s := range syms {
		symAddr[string(names[s.nameOff:s.nameOff+s.nameLen])] = int64(s.value)
	}

	// Phase 3: copy sections and apply relocations.
	copy(mem, text)
	for _, r := range rels {
		s := syms[r.sym]
		name := string(names[s.nameOff : s.nameOff+s.nameLen])
		vt.Reloc{Kind: r.kind, Offset: r.off, Sym: r.sym}.Patch(mem, symAddr[name])
	}

	// Phase 4: look up the entry addresses of the compiled functions.
	offsets := make([]int32, len(fnNames))
	var unwind []vm.UnwindRange
	for i, n := range fnNames {
		a, ok := symAddr[n]
		if !ok {
			return nil, nil, fmt.Errorf("lbe: symbol %s not found", n)
		}
		offsets[i] = int32(a)
	}
	// Map symbol names back to function indices so ranges carry source
	// attribution; helper stubs and non-function symbols get -1.
	fnIdx := make(map[string]int32, len(fnNames))
	for i, n := range fnNames {
		fnIdx[n] = int32(i)
	}
	for _, s := range syms {
		name := string(names[s.nameOff : s.nameOff+s.nameLen])
		fi, ok := fnIdx[name]
		if !ok {
			fi = -1
		}
		unwind = append(unwind, vm.UnwindRange{
			Start: s.value, End: s.value + s.size,
			Name: name,
			CFI:  cfi,
			Func: fi,
		})
	}
	mod, err := vm.Load(arch, mem)
	if err != nil {
		return nil, nil, err
	}
	mod.RegisterUnwind(unwind)
	return mod, offsets, nil
}
