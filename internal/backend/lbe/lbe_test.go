package lbe

import (
	"testing"

	"qcc/internal/vt"
)

func TestFoldBinOp(t *testing.T) {
	cases := []struct {
		op   Opcode
		t    *Type
		a, b int64
		want int64
	}{
		{LOpAdd, TI64, 3, 4, 7},
		{LOpSub, TI32, -1 << 31, 1, canon64(-1<<31-1, 32)},
		{LOpMul, TI64, 6, 7, 42},
		{LOpAnd, TI64, 0xFF, 0x0F, 0x0F},
		{LOpShl, TI64, 1, 10, 1024},
		{LOpLShr, TI32, -1, 28, 0xF},
		{LOpAShr, TI64, -8, 2, -2},
		{LOpXor, TI8, 0x7F, -1, canon64(^0x7F, 8)},
	}
	for _, c := range cases {
		if got := foldBinOp(c.op, c.t, c.a, c.b); got != c.want {
			t.Errorf("fold %s(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestKnownBits(t *testing.T) {
	dag := &selectionDAG{isel: &isel{}}
	c := func(v int64) *dnode { return &dnode{op: LOpConst, ty: TI64, imm: v} }
	// and(x, 0xFF) has upper bits known zero.
	x := &dnode{special: specCopyFromReg, ty: TI64}
	and := &dnode{op: LOpAnd, ty: TI64, ops: []*dnode{x, c(0xFF)}}
	z, o := dag.knownBits(and, 0)
	if z&^uint64(0xFF) != ^uint64(0xFF) {
		t.Errorf("and-mask known zeros = %#x", z)
	}
	if o != 0 {
		t.Errorf("spurious known ones %#x", o)
	}
	// zext from i16 knows the top 48 bits are zero.
	src := &dnode{special: specCopyFromReg, ty: TI16}
	zx := &dnode{op: LOpZExt, ty: TI64, ops: []*dnode{src}}
	z, _ = dag.knownBits(zx, 0)
	if z&^uint64(0xFFFF) != ^uint64(0xFFFF) {
		t.Errorf("zext known zeros = %#x", z)
	}
	if dag.kbQueries == 0 {
		t.Error("queries not counted")
	}
}

func TestCombineIdentities(t *testing.T) {
	dag := &selectionDAG{isel: &isel{}}
	x := &dnode{special: specCopyFromReg, ty: TI64, vr: mval{a: 5, b: mnone}}
	addZero := &dnode{op: LOpAdd, ty: TI64, ops: []*dnode{x, {op: LOpConst, ty: TI64, imm: 0}}}
	if !dag.combine(addZero) {
		t.Fatal("add x,0 not combined")
	}
	if addZero.special != specCopyFromReg || addZero.vr.a != 5 {
		t.Errorf("combine result %+v", addZero)
	}
	cc := &dnode{op: LOpICmp, ty: TI1, pred: uint8(vt.CondSLT),
		ops: []*dnode{{op: LOpConst, ty: TI64, imm: 2}, {op: LOpConst, ty: TI64, imm: 3}}}
	if !dag.combine(cc) || cc.op != LOpConst || cc.imm != 1 {
		t.Errorf("icmp const fold: %+v", cc)
	}
}

func TestFastISelFallbackCauses(t *testing.T) {
	fi := &fastISel{isel: &isel{cfg: Config{}}}
	mk := func(ty *Type, op Opcode) *Instr { return &Instr{Op: op, Typ: ty} }
	if cause, _ := fi.fallbackCause(mk(TI128, LOpAdd)); cause != cntFallbackI128 {
		t.Errorf("i128 add cause = %q", cause)
	}
	if cause, _ := fi.fallbackCause(mk(TI64, LOpAdd)); cause != "" {
		t.Errorf("i64 add cause = %q", cause)
	}
	if cause, _ := fi.fallbackCause(mk(TI64, LOpAtomicRMWAdd)); cause != cntFallbackOther {
		t.Errorf("atomic cause = %q", cause)
	}
	// Calls: fine under Small-PIC, fallback with wide args or large CM.
	call := &Instr{Op: LOpCallRT, Typ: TVoid, Ops: []*Instr{{Op: LOpConst, Typ: TI64}}}
	if cause, _ := fi.fallbackCause(call); cause != "" {
		t.Errorf("plain call cause = %q", cause)
	}
	wideCall := &Instr{Op: LOpCallRT, Typ: TVoid, Ops: []*Instr{{Op: LOpConst, Typ: TI128}}}
	if cause, only := fi.fallbackCause(wideCall); cause != cntFallbackCall || !only {
		t.Errorf("wide call cause = %q per-instr=%v", cause, only)
	}
	large := &fastISel{isel: &isel{cfg: Config{LargeCodeModel: true}}}
	if cause, _ := large.fallbackCause(call); cause != cntFallbackCall {
		t.Errorf("large-cm call cause = %q", cause)
	}
}

func TestObjectRoundTrip(t *testing.T) {
	o := &object{
		text:  []byte{0, 0, 0, 0}, // four vx64 nops
		names: []byte("mainaux"),
		symbols: []objSymbol{
			{nameOff: 0, nameLen: 4, value: 0, size: 2},
			{nameOff: 4, nameLen: 3, value: 2, size: 2},
		},
	}
	enc := encodeObject(o)
	mod, offs, err := jitLink(enc, vt.VX64, []string{"main", "aux"})
	if err != nil {
		t.Fatal(err)
	}
	if offs[0] != 0 || offs[1] != 2 {
		t.Errorf("offsets = %v", offs)
	}
	if len(mod.Funcs()) != 2 {
		t.Errorf("unwind ranges = %d", len(mod.Funcs()))
	}
	if _, _, err := jitLink([]byte("bogus"), vt.VX64, nil); err == nil {
		t.Error("bogus object accepted")
	}
}

func TestTargetMachineTables(t *testing.T) {
	tm := newTargetMachine(vt.VX64)
	if len(tm.patterns) == 0 || tm.tgt.Arch != vt.VX64 {
		t.Error("targetmachine not built")
	}
	if !tm.patterns[vt.Add].commutes || tm.patterns[vt.Sub].commutes {
		t.Error("commutativity table wrong")
	}
	if tm.patterns[vt.SDiv].latency <= tm.patterns[vt.Add].latency {
		t.Error("latency table wrong")
	}
}
