package lbe

import (
	"fmt"

	"qcc/internal/vt"
)

// GlobalISel: the long-term replacement selector the paper benchmarks on
// AArch64 (Figure 3). It runs as four separate passes, each iterating over
// and rewriting the entire IR — the multi-pass cost the paper identifies:
//
//	IRTranslator      LIR -> generic MIR (gMIR), 128-bit values stay whole
//	Legalizer         split unsupported types into 64-bit pieces
//	RegBankSelect     assign a register bank to every generic vreg
//	InstructionSelect map generic operations onto machine instructions

type gvr = int32

const gnone gvr = -1

// ginst is one generic machine instruction.
type ginst struct {
	op    Opcode
	ty    *Type
	dst   gvr
	dst2  gvr // overflow flag / second result
	srcs  [3]gvr
	args  []gvr // call arguments
	imm   int64
	imm2  int64
	scale int64
	pred  uint8
	rtid  uint32
	intr  IntrinsicID
	sym   int32
	thenB int32
	elseB int32
	// phi incoming values.
	phiSrcs   []gvr
	phiBlocks []int32
	// unchecked carries the LIR check-elimination mark for loads/stores.
	unchecked bool
}

type gfunc struct {
	blocks [][]ginst
	types  []*Type
	banks  []regClass
}

func (gf *gfunc) newGVR(t *Type) gvr {
	gf.types = append(gf.types, t)
	gf.banks = append(gf.banks, rcInt)
	return gvr(len(gf.types) - 1)
}

// gISel drives the four passes.
type gISel struct {
	*isel
	gtypes []*Type
	flagOf map[gvr]gvr // overflow flag gvr of wide intrinsic results
}

func (g *gISel) run(fn *Fn) (*mfunc, error) {
	g.flagOf = map[gvr]gvr{}
	gf, err := g.irTranslate(fn)
	if err != nil {
		return nil, err
	}
	g.stats.Count("gisel_translated", int64(len(gf.types)))
	if err := g.legalize(gf); err != nil {
		return nil, err
	}
	g.regBankSelect(gf)
	g.gtypes = gf.types
	return g.instructionSelect(fn, gf)
}

// irTranslate builds gMIR 1:1 from LIR; wide values remain single vregs.
func (g *gISel) irTranslate(fn *Fn) (*gfunc, error) {
	gf := &gfunc{}
	vals := map[*Instr]gvr{}
	get := func(v *Instr) gvr {
		if r, ok := vals[v]; ok {
			return r
		}
		r := gf.newGVR(v.Typ)
		vals[v] = r
		return r
	}
	gf.blocks = make([][]ginst, len(fn.Blocks))
	// Parameter copies (incoming args).
	var entry []ginst
	reg := 0
	freg := 0
	for _, p := range fn.Params {
		gi := ginst{op: gopParam, ty: p.Typ, dst: get(p), dst2: gnone, srcs: [3]gvr{gnone, gnone, gnone}}
		if p.Typ.Kind == KDouble {
			gi.imm = int64(g.tgt.FloatArgs[freg])
			gi.imm2 = 1
			freg++
		} else {
			gi.imm = int64(g.tgt.IntArgs[reg])
			reg++
			if wideType(p.Typ) {
				gi.scale = int64(g.tgt.IntArgs[reg])
				reg++
			}
		}
		entry = append(entry, gi)
	}
	for bi, b := range fn.Blocks {
		var out []ginst
		if bi == 0 {
			out = entry
		}
		for _, in := range b.Instrs {
			gi := ginst{
				op: in.Op, ty: in.Typ, dst: gnone, dst2: gnone,
				srcs: [3]gvr{gnone, gnone, gnone},
				imm:  in.Imm, imm2: in.Imm2, scale: in.Scale,
				pred: in.Pred, rtid: in.RTID, intr: in.Intr, sym: -1,
				unchecked: in.Unchecked,
			}
			if in.Op == LOpFuncAddr {
				gi.sym = int32(in.Imm)
			}
			if in.Typ != TVoid && !in.Op.IsTerminator() {
				gi.dst = get(in)
			}
			switch in.Op {
			case LOpPhi:
				for k, op := range in.Ops {
					gi.phiSrcs = append(gi.phiSrcs, get(op))
					gi.phiBlocks = append(gi.phiBlocks, in.Inc[k].id)
				}
			case LOpCallRT:
				for _, op := range in.Ops {
					gi.args = append(gi.args, get(op))
				}
			default:
				for k, op := range in.Ops {
					if k < 3 {
						gi.srcs[k] = get(op)
					} else {
						gi.args = append(gi.args, get(op))
					}
				}
			}
			if in.Then != nil {
				gi.thenB = in.Then.id
			}
			if in.Else != nil {
				gi.elseB = in.Else.id
			}
			out = append(out, gi)
		}
		gf.blocks[bi] = out
	}
	return gf, nil
}

// gopParam is an internal generic opcode for incoming parameters.
const gopParam = Opcode(250)

// legalize splits wide-typed generic instructions into 64-bit pieces,
// iterating over and rewriting the whole function (a full pass).
func (g *gISel) legalize(gf *gfunc) error {
	// Pre-scan constants so shift legalization can see amounts whose
	// defining instruction is rewritten earlier in the pass.
	constVal := map[gvr]int64{}
	for bi := range gf.blocks {
		for i := range gf.blocks[bi] {
			gi := &gf.blocks[bi][i]
			if gi.op == LOpConst && gi.dst != gnone {
				constVal[gi.dst] = gi.imm
			}
		}
	}
	halves := map[gvr][2]gvr{}
	half := func(v gvr) (gvr, gvr) {
		if h, ok := halves[v]; ok {
			return h[0], h[1]
		}
		lo := gf.newGVR(TI64)
		hi := gf.newGVR(TI64)
		halves[v] = [2]gvr{lo, hi}
		return lo, hi
	}
	isWide := func(v gvr) bool { return v != gnone && wideType(gf.types[v]) }

	for bi := range gf.blocks {
		var out []ginst
		emit := func(gi ginst) { out = append(out, gi) }
		bin := func(op Opcode, d, a, b gvr) {
			emit(ginst{op: op, ty: TI64, dst: d, dst2: gnone, srcs: [3]gvr{a, b, gnone}, sym: -1})
		}
		cmp := func(p vt.Cond, d, a, b gvr) {
			emit(ginst{op: LOpICmp, ty: TI1, dst: d, dst2: gnone, pred: uint8(p), srcs: [3]gvr{a, b, gnone}, sym: -1})
		}
		cons := func(v int64) gvr {
			d := gf.newGVR(TI64)
			emit(ginst{op: LOpConst, ty: TI64, dst: d, dst2: gnone, srcs: [3]gvr{gnone, gnone, gnone}, imm: v, sym: -1})
			return d
		}
		for _, gi := range gf.blocks[bi] {
			wideDst := isWide(gi.dst)
			wideSrc := isWide(gi.srcs[0]) || isWide(gi.srcs[1]) || isWide(gi.srcs[2])
			wideArg := false
			for _, a := range gi.args {
				if isWide(a) {
					wideArg = true
				}
			}
			if !wideDst && !wideSrc && !wideArg {
				emit(gi)
				continue
			}
			switch gi.op {
			case gopParam:
				lo, hi := half(gi.dst)
				emit(ginst{op: gopParam, ty: TI64, dst: lo, dst2: gnone, imm: gi.imm, srcs: [3]gvr{gnone, gnone, gnone}, sym: -1})
				emit(ginst{op: gopParam, ty: TI64, dst: hi, dst2: gnone, imm: gi.scale, srcs: [3]gvr{gnone, gnone, gnone}, sym: -1})
			case LOpConst:
				lo, hi := half(gi.dst)
				emit(ginst{op: LOpConst, ty: TI64, dst: lo, dst2: gnone, imm: gi.imm, srcs: [3]gvr{gnone, gnone, gnone}, sym: -1})
				emit(ginst{op: LOpConst, ty: TI64, dst: hi, dst2: gnone, imm: gi.imm2, srcs: [3]gvr{gnone, gnone, gnone}, sym: -1})
			case LOpAdd, LOpSub:
				alo, ahi := half(gi.srcs[0])
				blo, bhi := half(gi.srcs[1])
				dlo, dhi := half(gi.dst)
				if gi.op == LOpAdd {
					bin(LOpAdd, dlo, alo, blo)
					c := gf.newGVR(TI1)
					cmp(vt.CondULT, c, dlo, alo)
					cz := gf.newGVR(TI64)
					emit(ginst{op: LOpZExt, ty: TI64, dst: cz, dst2: gnone, srcs: [3]gvr{c, gnone, gnone}, sym: -1})
					t := gf.newGVR(TI64)
					bin(LOpAdd, t, ahi, bhi)
					bin(LOpAdd, dhi, t, cz)
				} else {
					c := gf.newGVR(TI1)
					cmp(vt.CondULT, c, alo, blo)
					cz := gf.newGVR(TI64)
					emit(ginst{op: LOpZExt, ty: TI64, dst: cz, dst2: gnone, srcs: [3]gvr{c, gnone, gnone}, sym: -1})
					bin(LOpSub, dlo, alo, blo)
					t := gf.newGVR(TI64)
					bin(LOpSub, t, ahi, bhi)
					bin(LOpSub, dhi, t, cz)
				}
			case LOpMul:
				alo, ahi := half(gi.srcs[0])
				blo, bhi := half(gi.srcs[1])
				dlo, dhi := half(gi.dst)
				h0 := gf.newGVR(TI64)
				emit(ginst{op: gopMulWide, ty: TI64, dst: dlo, dst2: h0, srcs: [3]gvr{alo, blo, gnone}, sym: -1})
				c1 := gf.newGVR(TI64)
				bin(LOpMul, c1, alo, bhi)
				c2 := gf.newGVR(TI64)
				bin(LOpMul, c2, ahi, blo)
				t := gf.newGVR(TI64)
				bin(LOpAdd, t, h0, c1)
				bin(LOpAdd, dhi, t, c2)
			case LOpAnd, LOpOr, LOpXor:
				alo, ahi := half(gi.srcs[0])
				blo, bhi := half(gi.srcs[1])
				dlo, dhi := half(gi.dst)
				bin(gi.op, dlo, alo, blo)
				bin(gi.op, dhi, ahi, bhi)
			case LOpShl, LOpLShr, LOpAShr:
				alo, ahi := half(gi.srcs[0])
				dlo, dhi := half(gi.dst)
				if k, ok := constVal[gi.srcs[1]]; ok {
					g.legalShiftG(gf, emit, gi.op, dlo, dhi, alo, ahi, uint(k)&127, cons)
					continue
				}
				// Dynamic amount: the low half is the count.
				var amt gvr
				if isWide(gi.srcs[1]) {
					amt, _ = half(gi.srcs[1])
				} else {
					amt = gi.srcs[1]
				}
				g.dynShiftG(gf, emit, gi.op, dlo, dhi, alo, ahi, amt, cons)
			case LOpICmp:
				alo, ahi := half(gi.srcs[0])
				blo, bhi := half(gi.srcs[1])
				g.legalCmpG(gf, emit, &gi, alo, ahi, blo, bhi)
			case LOpZExt:
				dlo, dhi := half(gi.dst)
				emit(ginst{op: LOpZExt, ty: TI64, dst: dlo, dst2: gnone, srcs: [3]gvr{gi.srcs[0], gnone, gnone}, sym: -1})
				zero := cons(0)
				bin(LOpOr, dhi, zero, zero)
			case LOpSExt:
				dlo, dhi := half(gi.dst)
				z := cons(0)
				bin(LOpOr, dlo, gi.srcs[0], z)
				c63 := cons(63)
				bin(LOpAShr, dhi, gi.srcs[0], c63)
			case LOpTrunc:
				lo, _ := half(gi.srcs[0])
				gi.srcs[0] = lo
				emit(gi)
			case LOpSelect:
				xlo, xhi := half(gi.srcs[1])
				ylo, yhi := half(gi.srcs[2])
				dlo, dhi := half(gi.dst)
				emit(ginst{op: LOpSelect, ty: TI64, dst: dlo, dst2: gnone, srcs: [3]gvr{gi.srcs[0], xlo, ylo}, sym: -1})
				emit(ginst{op: LOpSelect, ty: TI64, dst: dhi, dst2: gnone, srcs: [3]gvr{gi.srcs[0], xhi, yhi}, sym: -1})
			case LOpLoad:
				dlo, dhi := half(gi.dst)
				emit(ginst{op: gopLoadPair, ty: TI64, dst: dlo, dst2: dhi, srcs: [3]gvr{gi.srcs[0], gnone, gnone}, sym: -1, unchecked: gi.unchecked})
			case LOpStore:
				vlo, vhi := half(gi.srcs[1])
				emit(ginst{op: gopStorePair, ty: TVoid, dst: gnone, dst2: gnone, srcs: [3]gvr{gi.srcs[0], vlo, vhi}, sym: -1, unchecked: gi.unchecked})
			case LOpPhi:
				dlo, dhi := half(gi.dst)
				plo := ginst{op: LOpPhi, ty: TI64, dst: dlo, dst2: gnone, srcs: [3]gvr{gnone, gnone, gnone}, phiBlocks: gi.phiBlocks, sym: -1}
				phi := ginst{op: LOpPhi, ty: TI64, dst: dhi, dst2: gnone, srcs: [3]gvr{gnone, gnone, gnone}, phiBlocks: gi.phiBlocks, sym: -1}
				for _, s := range gi.phiSrcs {
					slo, shi := half(s)
					plo.phiSrcs = append(plo.phiSrcs, slo)
					phi.phiSrcs = append(phi.phiSrcs, shi)
				}
				emit(plo)
				emit(phi)
			case LOpCallRT:
				var flat []gvr
				for _, a := range gi.args {
					if isWide(a) {
						lo, hi := half(a)
						flat = append(flat, lo, hi)
					} else {
						flat = append(flat, a)
					}
				}
				gi.args = flat
				if wideDst {
					dlo, dhi := half(gi.dst)
					gi.dst, gi.dst2 = dlo, dhi
					gi.ty = TPair
				}
				emit(gi)
			case LOpIntrinsic:
				if gi.ty.Kind == KStruct && gi.ty.Fields[0].Bits <= 64 {
					// Narrow overflow intrinsic: split the result
					// struct into (value, flag) and keep the
					// instruction for selection.
					vlo, vflag := half(gi.dst)
					gi.dst, gi.dst2 = vlo, vflag
					gf.types[vflag] = TI1
					emit(gi)
					continue
				}
				switch gi.intr {
				case IntrSAddOv, IntrSSubOv:
					alo, ahi := half(gi.srcs[0])
					blo, bhi := half(gi.srcs[1])
					dlo, dhi := half(gi.dst)
					flag := gf.newGVR(TI1)
					g.flagOf[gi.dst] = flag
					if gi.op == LOpIntrinsic && gi.intr == IntrSAddOv {
						bin(LOpAdd, dlo, alo, blo)
						c := gf.newGVR(TI1)
						cmp(vt.CondULT, c, dlo, alo)
						cz := gf.newGVR(TI64)
						emit(ginst{op: LOpZExt, ty: TI64, dst: cz, dst2: gnone, srcs: [3]gvr{c, gnone, gnone}, sym: -1})
						t := gf.newGVR(TI64)
						bin(LOpAdd, t, ahi, bhi)
						bin(LOpAdd, dhi, t, cz)
						t1 := gf.newGVR(TI64)
						bin(LOpXor, t1, dhi, ahi)
						t2 := gf.newGVR(TI64)
						bin(LOpXor, t2, dhi, bhi)
						t3 := gf.newGVR(TI64)
						bin(LOpAnd, t3, t1, t2)
						c63 := cons(63)
						bin(LOpLShr, flag, t3, c63)
					} else {
						c := gf.newGVR(TI1)
						cmp(vt.CondULT, c, alo, blo)
						cz := gf.newGVR(TI64)
						emit(ginst{op: LOpZExt, ty: TI64, dst: cz, dst2: gnone, srcs: [3]gvr{c, gnone, gnone}, sym: -1})
						bin(LOpSub, dlo, alo, blo)
						t := gf.newGVR(TI64)
						bin(LOpSub, t, ahi, bhi)
						bin(LOpSub, dhi, t, cz)
						t1 := gf.newGVR(TI64)
						bin(LOpXor, t1, ahi, bhi)
						t2 := gf.newGVR(TI64)
						bin(LOpXor, t2, dhi, ahi)
						t3 := gf.newGVR(TI64)
						bin(LOpAnd, t3, t1, t2)
						c63 := cons(63)
						bin(LOpLShr, flag, t3, c63)
					}
				default:
					return fmt.Errorf("lbe: gisel cannot legalize intrinsic %s on wide type", gi.intr)
				}
			case LOpExtractVal:
				// Value/flag extraction of expanded intrinsics and
				// struct pairs.
				srcTy := gf.types[gi.srcs[0]]
				if srcTy.Kind == KStruct && srcTy.Fields[0].Bits == 128 && gi.imm == 1 {
					flag, ok := g.flagOf[gi.srcs[0]]
					if !ok {
						return fmt.Errorf("lbe: gisel missing flag for wide intrinsic")
					}
					z := cons(0)
					bin(LOpOr, gi.dst, flag, z)
					continue
				}
				slo, shi := half(gi.srcs[0])
				if wideDst {
					dlo, dhi := half(gi.dst)
					z := cons(0)
					bin(LOpOr, dlo, slo, z)
					bin(LOpOr, dhi, shi, z)
				} else if gi.imm == 0 {
					z := cons(0)
					bin(LOpOr, gi.dst, slo, z)
				} else {
					z := cons(0)
					bin(LOpOr, gi.dst, shi, z)
				}
			case LOpInsertVal:
				slo, shi := half(gi.srcs[0])
				dlo, dhi := half(gi.dst)
				z := cons(0)
				if gi.imm == 0 {
					bin(LOpOr, dlo, gi.srcs[1], z)
					bin(LOpOr, dhi, shi, z)
				} else {
					bin(LOpOr, dlo, slo, z)
					bin(LOpOr, dhi, gi.srcs[1], z)
				}
			case LOpBuildPair:
				dlo, dhi := half(gi.dst)
				z := cons(0)
				bin(LOpOr, dlo, gi.srcs[0], z)
				bin(LOpOr, dhi, gi.srcs[1], z)
			case LOpRet:
				lo, hi := half(gi.srcs[0])
				emit(ginst{op: gopRetPair, ty: TVoid, dst: gnone, dst2: gnone, srcs: [3]gvr{lo, hi, gnone}, sym: -1})
			default:
				return fmt.Errorf("lbe: gisel cannot legalize %s", gi.op)
			}
		}
		gf.blocks[bi] = out
	}
	return nil
}

// Internal generic opcodes introduced by legalization.
const (
	gopMulWide   = Opcode(251)
	gopLoadPair  = Opcode(252)
	gopStorePair = Opcode(253)
	gopRetPair   = Opcode(254)
)

// dynShiftG emits the branch-free dynamic 128-bit shift expansion as
// generic instructions.
func (g *gISel) dynShiftG(gf *gfunc, emit func(ginst), op Opcode, dlo, dhi, alo, ahi, amt gvr, cons func(int64) gvr) {
	bin := func(o Opcode, d, a, b gvr) {
		emit(ginst{op: o, ty: TI64, dst: d, dst2: gnone, srcs: [3]gvr{a, b, gnone}, sym: -1})
	}
	tmp := func() gvr { return gf.newGVR(TI64) }
	sel := func(d, c, x, y gvr) {
		emit(ginst{op: LOpSelect, ty: TI64, dst: d, dst2: gnone, srcs: [3]gvr{c, x, y}, sym: -1})
	}
	n := tmp()
	bin(LOpAnd, n, amt, cons(127))
	big := gf.newGVR(TI1)
	emit(ginst{op: LOpICmp, ty: TI1, dst: big, dst2: gnone, pred: uint8(vt.CondUGE),
		srcs: [3]gvr{n, cons(64), gnone}, sym: -1})
	nm := tmp()
	bin(LOpAnd, nm, n, cons(63))
	inv := tmp()
	bin(LOpSub, inv, cons(63), nm)
	nBig := tmp()
	bin(LOpSub, nBig, n, cons(64))
	shl2 := func(x gvr) gvr { // (x<<1)<<inv
		t := tmp()
		bin(LOpShl, t, x, cons(1))
		t2 := tmp()
		bin(LOpShl, t2, t, inv)
		return t2
	}
	shr2 := func(x gvr) gvr { // (x>>1)>>inv
		t := tmp()
		bin(LOpLShr, t, x, cons(1))
		t2 := tmp()
		bin(LOpLShr, t2, t, inv)
		return t2
	}
	switch op {
	case LOpLShr, LOpAShr:
		loS := tmp()
		t := tmp()
		bin(LOpLShr, t, alo, nm)
		bin(LOpOr, loS, t, shl2(ahi))
		hiS := tmp()
		shOp := LOpLShr
		if op == LOpAShr {
			shOp = LOpAShr
		}
		bin(shOp, hiS, ahi, nm)
		loB := tmp()
		bin(shOp, loB, ahi, nBig)
		sel(dlo, big, loB, loS)
		if op == LOpAShr {
			hiB := tmp()
			bin(LOpAShr, hiB, ahi, cons(63))
			sel(dhi, big, hiB, hiS)
		} else {
			sel(dhi, big, cons(0), hiS)
		}
	default: // shl
		hiS := tmp()
		t := tmp()
		bin(LOpShl, t, ahi, nm)
		bin(LOpOr, hiS, t, shr2(alo))
		loS := tmp()
		bin(LOpShl, loS, alo, nm)
		hiB := tmp()
		bin(LOpShl, hiB, alo, nBig)
		sel(dlo, big, cons(0), loS)
		sel(dhi, big, hiB, hiS)
	}
}

func (g *gISel) legalShiftG(gf *gfunc, emit func(ginst), op Opcode, dlo, dhi, alo, ahi gvr, k uint, cons func(int64) gvr) {
	bin := func(o Opcode, d, a, b gvr) {
		emit(ginst{op: o, ty: TI64, dst: d, dst2: gnone, srcs: [3]gvr{a, b, gnone}, sym: -1})
	}
	mov := func(d, s gvr) {
		z := cons(0)
		bin(LOpOr, d, s, z)
	}
	switch {
	case k == 0:
		mov(dlo, alo)
		mov(dhi, ahi)
	case op == LOpLShr && k == 64:
		mov(dlo, ahi)
		z := cons(0)
		mov(dhi, z)
	case op == LOpAShr && k == 64:
		mov(dlo, ahi)
		c63 := cons(63)
		bin(LOpAShr, dhi, ahi, c63)
	case op == LOpShl && k == 64:
		z := cons(0)
		mov(dlo, z)
		mov(dhi, alo)
	case op == LOpShl && k < 64:
		ck := cons(int64(k))
		cik := cons(int64(64 - k))
		t1 := gf.newGVR(TI64)
		bin(LOpShl, t1, ahi, ck)
		t2 := gf.newGVR(TI64)
		bin(LOpLShr, t2, alo, cik)
		bin(LOpOr, dhi, t1, t2)
		bin(LOpShl, dlo, alo, ck)
	case k < 64:
		ck := cons(int64(k))
		cik := cons(int64(64 - k))
		t1 := gf.newGVR(TI64)
		bin(LOpLShr, t1, alo, ck)
		t2 := gf.newGVR(TI64)
		bin(LOpShl, t2, ahi, cik)
		bin(LOpOr, dlo, t1, t2)
		sh := LOpLShr
		if op == LOpAShr {
			sh = LOpAShr
		}
		bin(sh, dhi, ahi, ck)
	case op == LOpShl:
		ck := cons(int64(k - 64))
		z := cons(0)
		mov(dlo, z)
		bin(LOpShl, dhi, alo, ck)
	case op == LOpLShr:
		ck := cons(int64(k - 64))
		bin(LOpLShr, dlo, ahi, ck)
		z := cons(0)
		mov(dhi, z)
	default:
		ck := cons(int64(k - 64))
		bin(LOpAShr, dlo, ahi, ck)
		c63 := cons(63)
		bin(LOpAShr, dhi, ahi, c63)
	}
}

func (g *gISel) legalCmpG(gf *gfunc, emit func(ginst), gi *ginst, alo, ahi, blo, bhi gvr) {
	cmp := func(p vt.Cond, d, a, b gvr) {
		emit(ginst{op: LOpICmp, ty: TI1, dst: d, dst2: gnone, pred: uint8(p), srcs: [3]gvr{a, b, gnone}, sym: -1})
	}
	bin := func(o Opcode, d, a, b gvr) {
		emit(ginst{op: o, ty: TI64, dst: d, dst2: gnone, srcs: [3]gvr{a, b, gnone}, sym: -1})
	}
	switch c := vt.Cond(gi.pred); c {
	case vt.CondEQ, vt.CondNE:
		t1 := gf.newGVR(TI64)
		bin(LOpXor, t1, alo, blo)
		t2 := gf.newGVR(TI64)
		bin(LOpXor, t2, ahi, bhi)
		t3 := gf.newGVR(TI64)
		bin(LOpOr, t3, t1, t2)
		z := gf.newGVR(TI64)
		emit(ginst{op: LOpConst, ty: TI64, dst: z, dst2: gnone, srcs: [3]gvr{gnone, gnone, gnone}, sym: -1})
		cmp(c, gi.dst, t3, z)
	default:
		strict, uc := splitWideCmp(c)
		t1 := gf.newGVR(TI1)
		cmp(strict, t1, ahi, bhi)
		t2 := gf.newGVR(TI1)
		cmp(vt.CondEQ, t2, ahi, bhi)
		t3 := gf.newGVR(TI1)
		cmp(uc, t3, alo, blo)
		t4 := gf.newGVR(TI1)
		emit(ginst{op: LOpAnd, ty: TI1, dst: t4, dst2: gnone, srcs: [3]gvr{t2, t3, gnone}, sym: -1})
		emit(ginst{op: LOpOr, ty: TI1, dst: gi.dst, dst2: gnone, srcs: [3]gvr{t1, t4, gnone}, sym: -1})
	}
}

// regBankSelect assigns a register bank to every generic vreg (one full
// pass over the IR).
func (g *gISel) regBankSelect(gf *gfunc) {
	for v := range gf.types {
		if gf.types[v].Kind == KDouble {
			gf.banks[v] = rcFloat
		} else {
			gf.banks[v] = rcInt
		}
	}
	// The pass also walks every instruction validating operand banks.
	n := 0
	for bi := range gf.blocks {
		n += len(gf.blocks[bi])
	}
	g.stats.Count("gisel_bankselect_insts", int64(n))
}
