package lbe

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/vt"
)

// mval is the machine representation of one LIR value: one vreg, or two for
// i128 and two-field structs.
type mval struct {
	a, b mreg
}

// isel is shared instruction-selection state (FastISel and the SelectionDAG
// fallback write into the same MIR function and value map).
type isel struct {
	cfg   Config
	fn    *Fn
	mf    *mfunc
	tgt   *vt.Target
	stats *backend.Stats
	vals  map[*Instr]mval
	cur   int32 // current MIR block
}

func wideType(t *Type) bool {
	return t.Kind == KInt && t.Bits == 128 || t.Kind == KStruct
}

func classFor(t *Type) regClass {
	if t.Kind == KDouble {
		return rcFloat
	}
	return rcInt
}

// getVal returns (allocating on demand) the vregs of an LIR value.
func (is *isel) getVal(v *Instr) mval {
	if mv, ok := is.vals[v]; ok {
		return mv
	}
	var mv mval
	mv.a = is.mf.newVReg(classFor(v.Typ))
	mv.b = mnone
	if wideType(v.Typ) {
		mv.b = is.mf.newVReg(rcInt)
	}
	is.vals[v] = mv
	return mv
}

func (is *isel) emit(in minst) {
	is.mf.blocks[is.cur].insts = append(is.mf.blocks[is.cur].insts, in)
}

func (is *isel) emit3(op vt.Op, rd, ra, rb mreg) {
	in := newMinst(op)
	in.rd, in.ra, in.rb = rd, ra, rb
	is.emit(in)
}

func (is *isel) emitImm(op vt.Op, rd, ra mreg, imm int64) {
	in := newMinst(op)
	in.rd, in.ra, in.imm = rd, ra, imm
	is.emit(in)
}

func (is *isel) emitMovI(rd mreg, imm int64) {
	in := newMinst(vt.MovRI)
	in.rd, in.imm = rd, imm
	is.emit(in)
}

func (is *isel) temp() mreg { return is.mf.newVReg(rcInt) }

// canonInto emits canonicalization (sign-extension to 64 bits) of a narrow
// result.
func (is *isel) canonInto(bits int, rd, ra mreg) {
	switch bits {
	case 1:
		is.emitImm(vt.AndI, rd, ra, 1)
	case 8, 16, 32:
		sh := int64(64 - bits)
		t := is.temp()
		is.emitImm(vt.ShlI, t, ra, sh)
		is.emitImm(vt.SarI, rd, t, sh)
	default:
		if rd != ra {
			is.emit3(vt.MovRR, rd, ra, mnone)
		}
	}
}

func (is *isel) zextInto(bits int, rd, ra mreg) {
	switch bits {
	case 1:
		is.emitImm(vt.AndI, rd, ra, 1)
	case 8:
		is.emitImm(vt.AndI, rd, ra, 0xFF)
	case 16:
		is.emitImm(vt.AndI, rd, ra, 0xFFFF)
	case 32:
		is.emitImm(vt.AndI, rd, ra, 0xFFFFFFFF)
	default:
		if rd != ra {
			is.emit3(vt.MovRR, rd, ra, mnone)
		}
	}
}

// FastISel: the fast instruction selector. It walks blocks linearly and
// expands each LIR instruction into machine instructions, falling back to
// SelectionDAG when it encounters 128-bit values, struct-typed values, or
// calls it cannot handle — and counting why, reproducing the fallback
// census of Sec. V-B3b.
type fastISel struct {
	*isel
	dag *selectionDAG
}

// Fallback-cause counter names.
const (
	cntFallbackCall   = "fastisel_fallback_call"
	cntFallbackI128   = "fastisel_fallback_i128"
	cntFallbackStruct = "fastisel_fallback_struct"
	cntFallbackOther  = "fastisel_fallback_other"
)

// fallbackCause classifies why FastISel cannot handle in; empty = it can.
// callOnly reports the per-instruction (rather than rest-of-block) fallback
// used for calls and unimplemented intrinsics.
func (fi *fastISel) fallbackCause(in *Instr) (cause string, callOnly bool) {
	switch in.Op {
	case LOpPhi:
		return "", false // phis handled structurally
	case LOpCallRT:
		if fi.cfg.LargeCodeModel {
			// The large code model is unsupported by FastISel: every
			// call falls back (the pre-Small-PIC behaviour).
			return cntFallbackCall, true
		}
		for _, op := range in.Ops {
			if wideType(op.Typ) {
				return cntFallbackCall, true
			}
		}
		if wideType(in.Typ) {
			return cntFallbackCall, true
		}
		return "", false
	case LOpIntrinsic:
		switch in.Intr {
		case IntrSAddOv, IntrSSubOv, IntrSMulOv:
			if in.Typ.Fields[0].Bits > 64 {
				return cntFallbackI128, false
			}
			return "", false
		case IntrCrc32, IntrRotr:
			// FastISel support for CRC32 was added by the paper's
			// authors (Sec. V-A2, item four).
			return "", false
		default:
			return cntFallbackOther, true
		}
	case LOpAtomicRMWAdd:
		return cntFallbackOther, false
	case LOpExtractVal:
		// Supported only for the virtually-expanded overflow results.
		src := in.Ops[0]
		if src.Op == LOpIntrinsic && src.Typ.Fields[0].Bits <= 64 {
			return "", false
		}
		return cntFallbackStruct, false
	case LOpInsertVal, LOpBuildPair:
		return cntFallbackStruct, false
	}
	if wideType(in.Typ) {
		if in.Typ.Kind == KStruct {
			return cntFallbackStruct, false
		}
		return cntFallbackI128, false
	}
	for _, op := range in.Ops {
		if wideType(op.Typ) {
			if op.Typ.Kind == KStruct {
				return cntFallbackStruct, false
			}
			return cntFallbackI128, false
		}
	}
	return "", false
}

// runOnBlock selects block b; returns an error only for malformed IR.
func (fi *fastISel) runOnBlock(b *Block, mb int32) error {
	fi.cur = mb
	instrs := b.Instrs
	for i := 0; i < len(instrs); i++ {
		in := instrs[i]
		if in.Op == LOpPhi {
			fi.lowerPhi(in)
			continue
		}
		cause, callOnly := fi.fallbackCause(in)
		if cause == "" {
			if err := fi.lowerFast(in); err != nil {
				return err
			}
			continue
		}
		fi.stats.Count(cause, 1)
		fi.stats.Count("fastisel_fallbacks", 1)
		if callOnly {
			if err := fi.dag.lowerRange(b, i, i+1, mb); err != nil {
				return err
			}
			continue
		}
		// Fall back for the remainder of the block.
		return fi.dag.lowerRange(b, i, len(instrs), mb)
	}
	return nil
}

// lowerPhi creates MIR PHIs (two for wide values).
func (is *isel) lowerPhi(in *Instr) {
	mv := is.getVal(in)
	p := newMinst(vt.Nop)
	p.rd = mv.a
	p.phi = &phiInfo{}
	p2 := newMinst(vt.Nop)
	p2.rd = mv.b
	p2.phi = &phiInfo{}
	for i, src := range in.Ops {
		sv := is.getVal(src)
		blk := is.blockID(in.Inc[i])
		p.phi.srcs = append(p.phi.srcs, sv.a)
		p.phi.blocks = append(p.phi.blocks, blk)
		if mv.b != mnone {
			p2.phi.srcs = append(p2.phi.srcs, sv.b)
			p2.phi.blocks = append(p2.phi.blocks, blk)
		}
	}
	is.emit(p)
	if mv.b != mnone {
		is.emit(p2)
	}
}

// blockID maps an LIR block to its MIR block id (identical indexing).
func (is *isel) blockID(b *Block) int32 { return b.id }

var fiBinMap = map[Opcode]vt.Op{
	LOpAdd: vt.Add, LOpSub: vt.Sub, LOpMul: vt.Mul,
	LOpSDiv: vt.SDiv, LOpSRem: vt.SRem, LOpUDiv: vt.UDiv, LOpURem: vt.URem,
	LOpAnd: vt.And, LOpOr: vt.Or, LOpXor: vt.Xor,
	LOpShl: vt.Shl, LOpLShr: vt.Shr, LOpAShr: vt.Sar,
}

// lowerFast expands one supported instruction.
func (fi *fastISel) lowerFast(in *Instr) error {
	is := fi.isel
	switch in.Op {
	case LOpConst:
		mv := is.getVal(in)
		is.emitMovI(mv.a, in.Imm)
	case LOpConstF:
		mv := is.getVal(in)
		m := newMinst(vt.FMovRI)
		m.rd, m.imm = mv.a, in.Imm
		is.emit(m)
	case LOpNull:
		is.emitMovI(is.getVal(in).a, 0)
	case LOpFuncAddr:
		mv := is.getVal(in)
		m := newMinst(vt.MovRI)
		m.rd, m.sym = mv.a, int32(in.Imm)
		is.emit(m)

	case LOpAdd, LOpSub, LOpMul, LOpSDiv, LOpSRem, LOpUDiv, LOpURem,
		LOpAnd, LOpOr, LOpXor, LOpShl, LOpLShr, LOpAShr:
		a := is.getVal(in.Ops[0]).a
		b := is.getVal(in.Ops[1]).a
		d := is.getVal(in).a
		bits := in.Typ.Bits
		if in.Op == LOpLShr && bits < 64 {
			t := is.temp()
			is.zextInto(bits, t, a)
			a = t
		}
		if bits < 64 {
			t := is.temp()
			is.emit3(fiBinMap[in.Op], t, a, b)
			switch in.Op {
			case LOpAnd, LOpOr, LOpXor, LOpAShr, LOpSDiv, LOpSRem:
				is.emit3(vt.MovRR, d, t, mnone)
			default:
				is.canonInto(bits, d, t)
			}
		} else {
			is.emit3(fiBinMap[in.Op], d, a, b)
		}

	case LOpICmp:
		a := is.getVal(in.Ops[0]).a
		b := is.getVal(in.Ops[1]).a
		d := is.getVal(in).a
		m := newMinst(vt.SetCC)
		m.cond = vt.Cond(in.Pred)
		m.rd, m.ra, m.rb = d, a, b
		is.emit(m)
	case LOpFCmp:
		m := newMinst(vt.FCmp)
		m.cond = vt.Cond(in.Pred)
		m.rd = is.getVal(in).a
		m.ra = is.getVal(in.Ops[0]).a
		m.rb = is.getVal(in.Ops[1]).a
		is.emit(m)

	case LOpZExt:
		is.zextInto(in.Ops[0].Typ.Bits, is.getVal(in).a, is.getVal(in.Ops[0]).a)
	case LOpSExt:
		// Canonical form: already sign-extended.
		is.emit3(vt.MovRR, is.getVal(in).a, is.getVal(in.Ops[0]).a, mnone)
	case LOpTrunc:
		is.canonInto(in.Typ.Bits, is.getVal(in).a, is.getVal(in.Ops[0]).a)
	case LOpSIToFP:
		is.emit3(vt.CvtSI2F, is.getVal(in).a, is.getVal(in.Ops[0]).a, mnone)
	case LOpFPToSI:
		t := is.temp()
		is.emit3(vt.CvtF2SI, t, is.getVal(in.Ops[0]).a, mnone)
		is.canonInto(in.Typ.Bits, is.getVal(in).a, t)
	case LOpBitcast:
		if in.Typ == TDouble {
			is.emit3(vt.MovFR, is.getVal(in).a, is.getVal(in.Ops[0]).a, mnone)
		} else {
			is.emit3(vt.MovRF, is.getVal(in).a, is.getVal(in.Ops[0]).a, mnone)
		}

	case LOpFAdd, LOpFSub, LOpFMul, LOpFDiv:
		var op vt.Op
		switch in.Op {
		case LOpFAdd:
			op = vt.FAdd
		case LOpFSub:
			op = vt.FSub
		case LOpFMul:
			op = vt.FMul
		default:
			op = vt.FDiv
		}
		is.emit3(op, is.getVal(in).a, is.getVal(in.Ops[0]).a, is.getVal(in.Ops[1]).a)
	case LOpFNeg:
		t := is.temp()
		is.emit3(vt.MovRF, t, is.getVal(in.Ops[0]).a, mnone)
		t2 := is.temp()
		is.emitMovI(t2, -1<<63)
		t3 := is.temp()
		is.emit3(vt.Xor, t3, t, t2)
		is.emit3(vt.MovFR, is.getVal(in).a, t3, mnone)

	case LOpGEP:
		is.lowerGEP(in)

	case LOpLoad:
		addr := is.getVal(in.Ops[0]).a
		mv := is.getVal(in)
		is.lowerLoad(in.Typ, mv, addr, 0, in.Unchecked)
	case LOpStore:
		addr := is.getVal(in.Ops[0]).a
		val := in.Ops[1]
		is.lowerStore(val.Typ, is.getVal(val), addr, 0, in.Unchecked)

	case LOpSelect:
		is.lowerSelect(is.getVal(in), is.getVal(in.Ops[0]).a,
			is.getVal(in.Ops[1]), is.getVal(in.Ops[2]), in.Typ)

	case LOpCallRT:
		return is.lowerCall(in)

	case LOpIntrinsic:
		return is.lowerIntrinsic(in)

	case LOpExtractVal:
		src := is.getVal(in.Ops[0])
		d := is.getVal(in).a
		if in.Imm == 0 {
			is.emit3(vt.MovRR, d, src.a, mnone)
		} else {
			is.emit3(vt.MovRR, d, src.b, mnone)
		}

	case LOpBr:
		is.emitBr(is.blockID(in.Then))
	case LOpCondBr:
		is.emitCondBr(is.getVal(in.Ops[0]).a, is.blockID(in.Then), is.blockID(in.Else))
	case LOpRet:
		is.lowerRet(in)
	case LOpUnreachable:
		m := newMinst(vt.Trap)
		m.imm = int64(vt.TrapUnreachable)
		is.emit(m)

	default:
		return fmt.Errorf("lbe: fastisel cannot lower %s", in.Op)
	}
	return nil
}

func (is *isel) emitBr(target int32) {
	m := newMinst(vt.Br)
	m.target = target
	is.emit(m)
	is.mf.blocks[is.cur].succs = append(is.mf.blocks[is.cur].succs, target)
}

func (is *isel) emitCondBr(cond mreg, thenB, elseB int32) {
	m := newMinst(vt.BrNZ)
	m.ra = cond
	m.target = thenB
	is.emit(m)
	m2 := newMinst(vt.Br)
	m2.target = elseB
	is.emit(m2)
	is.mf.blocks[is.cur].succs = append(is.mf.blocks[is.cur].succs, thenB, elseB)
}

func (is *isel) lowerGEP(in *Instr) {
	base := is.getVal(in.Ops[0]).a
	d := is.getVal(in).a
	if len(in.Ops) > 1 {
		idx := is.getVal(in.Ops[1]).a
		t := is.temp()
		if in.Scale != 1 {
			is.emitImm(vt.MulI, t, idx, in.Scale)
		} else {
			is.emit3(vt.MovRR, t, idx, mnone)
		}
		t2 := is.temp()
		is.emit3(vt.Add, t2, base, t)
		is.emitImm(vt.Lea, d, t2, in.Imm)
	} else {
		is.emitImm(vt.Lea, d, base, in.Imm)
	}
}

// uncheckedOp maps a checked memory op to its unchecked variant when the
// originating LIR instruction carried the check-elimination mark.
func uncheckedOp(op vt.Op, unchecked bool) vt.Op {
	if unchecked {
		if u, ok := vt.UncheckedMemOf(op); ok {
			return u
		}
	}
	return op
}

func (is *isel) lowerLoad(t *Type, mv mval, addr mreg, disp int64, unchecked bool) {
	switch {
	case t.Kind == KDouble:
		m := newMinst(uncheckedOp(vt.FLoad, unchecked))
		m.rd, m.ra, m.imm = mv.a, addr, disp
		is.emit(m)
	case wideType(t):
		is.emitImm(uncheckedOp(vt.Load64, unchecked), mv.a, addr, disp)
		is.emitImm(uncheckedOp(vt.Load64, unchecked), mv.b, addr, disp+8)
	default:
		var op vt.Op
		switch t.Bits {
		case 1:
			op = vt.Load8
		case 8:
			op = vt.Load8S
		case 16:
			op = vt.Load16S
		case 32:
			op = vt.Load32S
		default:
			op = vt.Load64
		}
		is.emitImm(uncheckedOp(op, unchecked), mv.a, addr, disp)
		if t.Bits == 1 {
			is.emitImm(vt.AndI, mv.a, mv.a, 1)
		}
	}
}

func (is *isel) lowerStore(t *Type, mv mval, addr mreg, disp int64, unchecked bool) {
	st := func(op vt.Op, src mreg, d int64) {
		m := newMinst(uncheckedOp(op, unchecked))
		m.ra, m.rb, m.imm = addr, src, d
		is.emit(m)
	}
	switch {
	case t.Kind == KDouble:
		st(vt.FStore, mv.a, disp)
	case wideType(t):
		st(vt.Store64, mv.a, disp)
		st(vt.Store64, mv.b, disp+8)
	default:
		switch t.Bits {
		case 1, 8:
			st(vt.Store8, mv.a, disp)
		case 16:
			st(vt.Store16, mv.a, disp)
		case 32:
			st(vt.Store32, mv.a, disp)
		default:
			st(vt.Store64, mv.a, disp)
		}
	}
}

// lowerSelect is the branch-free mask select (wide and float variants).
func (is *isel) lowerSelect(d mval, cond mreg, x, y mval, t *Type) {
	mask := is.temp()
	m := newMinst(vt.Neg)
	m.rd, m.ra = mask, cond
	is.emit(m)
	sel := func(rd, a, b mreg) {
		t1 := is.temp()
		is.emit3(vt.Xor, t1, a, b)
		t2 := is.temp()
		is.emit3(vt.And, t2, t1, mask)
		is.emit3(vt.Xor, rd, b, t2)
	}
	switch {
	case t.Kind == KDouble:
		ta, tb, td := is.temp(), is.temp(), is.temp()
		is.emit3(vt.MovRF, ta, x.a, mnone)
		is.emit3(vt.MovRF, tb, y.a, mnone)
		sel(td, ta, tb)
		is.emit3(vt.MovFR, d.a, td, mnone)
	case wideType(t):
		sel(d.a, x.a, y.a)
		sel(d.b, x.b, y.b)
	default:
		sel(d.a, x.a, y.a)
	}
}

// lowerCall stages arguments per the calling convention and emits the
// runtime call.
func (is *isel) lowerCall(in *Instr) error {
	reg := 0
	stageOne := func(r mreg) error {
		if reg >= len(is.tgt.IntArgs) {
			return fmt.Errorf("lbe: too many call arguments")
		}
		m := newMinst(vt.MovRR)
		m.rd = mpreg(is.tgt.IntArgs[reg])
		m.ra = r
		is.emit(m)
		reg++
		return nil
	}
	for _, op := range in.Ops {
		mv := is.getVal(op)
		if op.Typ.Kind == KDouble {
			t := is.temp()
			is.emit3(vt.MovRF, t, mv.a, mnone)
			if err := stageOne(t); err != nil {
				return err
			}
			continue
		}
		if err := stageOne(mv.a); err != nil {
			return err
		}
		if mv.b != mnone {
			if err := stageOne(mv.b); err != nil {
				return err
			}
		}
	}
	c := newMinst(vt.CallRT)
	c.imm = int64(in.RTID)
	c.isCall = true
	is.emit(c)
	if in.Typ != TVoid {
		mv := is.getVal(in)
		if in.Typ.Kind == KDouble {
			is.emit3(vt.MovFR, mv.a, mpreg(is.tgt.IntRet[0]), mnone)
		} else {
			is.emit3(vt.MovRR, mv.a, mpreg(is.tgt.IntRet[0]), mnone)
			if mv.b != mnone {
				is.emit3(vt.MovRR, mv.b, mpreg(is.tgt.IntRet[1]), mnone)
			}
		}
	}
	return nil
}

// lowerIntrinsic expands the supported intrinsics (≤64-bit overflow ops,
// crc32, rotr).
func (is *isel) lowerIntrinsic(in *Instr) error {
	switch in.Intr {
	case IntrCrc32:
		is.emit3(vt.Crc32, is.getVal(in).a, is.getVal(in.Ops[0]).a, is.getVal(in.Ops[1]).a)
		return nil
	case IntrRotr:
		is.emit3(vt.Rotr, is.getVal(in).a, is.getVal(in.Ops[0]).a, is.getVal(in.Ops[1]).a)
		return nil
	case IntrSAddOv, IntrSSubOv, IntrSMulOv:
		return is.lowerOverflowIntr(in)
	}
	return fmt.Errorf("lbe: unimplemented intrinsic %s", in.Intr)
}

// lowerOverflowIntr computes (value, flag) into the intrinsic's two vregs.
func (is *isel) lowerOverflowIntr(in *Instr) error {
	bits := in.Typ.Fields[0].Bits
	a := is.getVal(in.Ops[0]).a
	b := is.getVal(in.Ops[1]).a
	mv := is.getVal(in) // a = value, b = overflow flag
	if bits < 64 {
		var op vt.Op
		switch in.Intr {
		case IntrSAddOv:
			op = vt.Add
		case IntrSSubOv:
			op = vt.Sub
		default:
			op = vt.Mul
		}
		wide := is.temp()
		is.emit3(op, wide, a, b)
		is.canonInto(bits, mv.a, wide)
		m := newMinst(vt.SetCC)
		m.cond = vt.CondNE
		m.rd, m.ra, m.rb = mv.b, mv.a, wide
		is.emit(m)
		return nil
	}
	switch in.Intr {
	case IntrSAddOv, IntrSSubOv:
		var op vt.Op = vt.Add
		if in.Intr == IntrSSubOv {
			op = vt.Sub
		}
		is.emit3(op, mv.a, a, b)
		t1, t2 := is.temp(), is.temp()
		if in.Intr == IntrSAddOv {
			is.emit3(vt.Xor, t1, mv.a, a)
			is.emit3(vt.Xor, t2, mv.a, b)
		} else {
			is.emit3(vt.Xor, t1, a, b)
			is.emit3(vt.Xor, t2, mv.a, a)
		}
		t3 := is.temp()
		is.emit3(vt.And, t3, t1, t2)
		is.emitImm(vt.ShrI, mv.b, t3, 63)
	default: // SMulOv
		hi := is.temp()
		m := newMinst(vt.MulWideS)
		m.rd, m.rc, m.ra, m.rb = mv.a, hi, a, b
		is.emit(m)
		t := is.temp()
		is.emitImm(vt.SarI, t, mv.a, 63)
		t2 := is.temp()
		is.emit3(vt.Xor, t2, t, hi)
		z := is.temp()
		is.emitMovI(z, 0)
		sc := newMinst(vt.SetCC)
		sc.cond = vt.CondNE
		sc.rd, sc.ra, sc.rb = mv.b, t2, z
		is.emit(sc)
	}
	return nil
}

func (is *isel) lowerRet(in *Instr) {
	if len(in.Ops) > 0 {
		mv := is.getVal(in.Ops[0])
		if in.Ops[0].Typ.Kind == KDouble {
			is.emit3(vt.MovRF, mpreg(is.tgt.IntRet[0]), mv.a, mnone)
		} else {
			is.emit3(vt.MovRR, mpreg(is.tgt.IntRet[0]), mv.a, mnone)
			if mv.b != mnone {
				is.emit3(vt.MovRR, mpreg(is.tgt.IntRet[1]), mv.b, mnone)
			}
		}
	}
	is.emit(newMinst(vt.Ret))
}

// bindParams moves the argument registers into the parameter vregs at
// function entry.
func (is *isel) bindParams() {
	reg := 0
	freg := 0
	for _, p := range is.fn.Params {
		mv := is.getVal(p)
		if p.Typ.Kind == KDouble {
			m := newMinst(vt.FMovRR)
			m.rd = mv.a
			m.ra = mpreg(is.tgt.FloatArgs[freg])
			freg++
			is.emit(m)
			continue
		}
		is.emit3(vt.MovRR, mv.a, mpreg(is.tgt.IntArgs[reg]), mnone)
		reg++
		if mv.b != mnone {
			is.emit3(vt.MovRR, mv.b, mpreg(is.tgt.IntArgs[reg]), mnone)
			reg++
		}
	}
}

var _ = qir.Void
