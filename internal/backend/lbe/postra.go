package lbe

import (
	"fmt"
	"sort"

	"qcc/internal/vt"
)

// PHIElimination lowers SSA PHIs into copies: each phi gets a staging vreg
// copied in every predecessor before the block-ending branches, and the phi
// itself becomes a copy at the block head.
func phiElim(mf *mfunc) {
	type edgeCopy struct {
		pred int32
		src  mreg
		dst  mreg
		cls  regClass
	}
	var copies []edgeCopy
	for b := range mf.blocks {
		blk := &mf.blocks[b]
		var rest []minst
		for i := range blk.insts {
			in := &blk.insts[i]
			if in.phi == nil {
				rest = append(rest, *in)
				continue
			}
			if in.rd == mnone {
				continue
			}
			cls := mf.classOf(in.rd)
			tmp := mf.newVReg(cls)
			for k := range in.phi.srcs {
				copies = append(copies, edgeCopy{pred: in.phi.blocks[k], src: in.phi.srcs[k], dst: tmp, cls: cls})
			}
			cp := newMinst(vt.MovRR)
			if cls == rcFloat {
				cp.op = vt.FMovRR
			}
			cp.rd, cp.ra = in.rd, tmp
			// The head copy replaces the phi in place (before rest).
			rest = append([]minst{cp}, rest...)
		}
		blk.insts = rest
	}
	// Insert predecessor copies before the first branch of each block.
	for _, c := range copies {
		blk := &mf.blocks[c.pred]
		pos := len(blk.insts)
		for i := range blk.insts {
			if blk.insts[i].op.IsBranch() || blk.insts[i].op == vt.Ret {
				pos = i
				break
			}
		}
		cp := newMinst(vt.MovRR)
		if c.cls == rcFloat {
			cp.op = vt.FMovRR
		}
		cp.rd, cp.ra = c.dst, c.src
		blk.insts = append(blk.insts[:pos], append([]minst{cp}, blk.insts[pos:]...)...)
	}
}

// twoAddress rewrites register-register operations into the two-address
// form the vx64 target requires: `a = op b, c` becomes `a = copy b; a = op
// a, c`, commuting or staging through a temporary when the destination
// aliases the second source. On three-address targets the pass scans but
// changes nothing.
func twoAddress(mf *mfunc, tgt *vt.Target) int {
	if !tgt.TwoAddress {
		// Scan only (the pass still runs).
		n := 0
		for b := range mf.blocks {
			n += len(mf.blocks[b].insts)
		}
		return 0
	}
	rewrites := 0
	for b := range mf.blocks {
		blk := &mf.blocks[b]
		var out []minst
		for _, in := range blk.insts {
			switch in.op {
			case vt.Add, vt.Sub, vt.Mul, vt.And, vt.Or, vt.Xor, vt.Shl, vt.Shr,
				vt.Sar, vt.Rotr, vt.SDiv, vt.SRem, vt.UDiv, vt.URem, vt.Crc32,
				vt.FAdd, vt.FSub, vt.FMul, vt.FDiv:
				if in.rd == in.ra {
					out = append(out, in)
					continue
				}
				isFloat := in.op == vt.FAdd || in.op == vt.FSub || in.op == vt.FMul || in.op == vt.FDiv
				movOp := vt.MovRR
				if isFloat {
					movOp = vt.FMovRR
				}
				comm := in.op == vt.Add || in.op == vt.Mul || in.op == vt.And ||
					in.op == vt.Or || in.op == vt.Xor || in.op == vt.FAdd || in.op == vt.FMul
				if in.rd == in.rb {
					if comm {
						in.ra, in.rb = in.rb, in.ra
					} else {
						cls := rcInt
						if isFloat {
							cls = rcFloat
						}
						t := mf.newVReg(cls)
						cp := newMinst(movOp)
						cp.rd, cp.ra = t, in.rb
						out = append(out, cp)
						in.rb = t
					}
				}
				if in.rd != in.ra {
					cp := newMinst(movOp)
					cp.rd, cp.ra = in.rd, in.ra
					out = append(out, cp)
					in.ra = in.rd
					rewrites++
				}
				out = append(out, in)
			case vt.AddI, vt.SubI, vt.MulI, vt.AndI, vt.OrI, vt.XorI, vt.ShlI,
				vt.ShrI, vt.SarI, vt.RotrI, vt.Neg, vt.Not:
				if in.rd != in.ra {
					cp := newMinst(vt.MovRR)
					cp.rd, cp.ra = in.rd, in.ra
					out = append(out, cp)
					in.ra = in.rd
					rewrites++
				}
				out = append(out, in)
			default:
				out = append(out, in)
			}
		}
		blk.insts = out
	}
	return rewrites
}

// raState is the outcome of register allocation handed to prologue/epilogue
// insertion: rewritten preg-only MIR plus the frame demands.
type raState struct {
	numSlots   int32
	usedCallee []uint8
	spills     int
}

// fastRegAlloc is the -O0 allocator: a linear per-block scan that assigns
// registers greedily, stores every definition to its stack slot, and drops
// caches at calls and block ends. It needs no analyses at all (the paper's
// key property of the fast allocator).
func fastRegAlloc(mf *mfunc, tgt *vt.Target) (*raState, error) {
	st := &raState{}
	slotOf := make([]int32, mf.nvregs)
	for i := range slotOf {
		slotOf[i] = -1
	}
	slot := func(v mreg) int32 {
		if slotOf[v] == -1 {
			slotOf[v] = st.numSlots
			st.numSlots++
		}
		return slotOf[v]
	}

	gprs := tgt.AllocatableGPRs()
	nfpr := tgt.NumFPR
	usedCallee := map[uint8]bool{}

	// Dense vreg -> preg caches (128 = none), shared across blocks and
	// cleared per block via an epoch counter to avoid map overhead.
	const noCache = uint8(0xFF)
	cachedArr := make([]uint8, mf.nvregs)
	fcachedArr := make([]uint8, mf.nvregs)
	cacheEpoch := make([]uint32, mf.nvregs)
	fcacheEpoch := make([]uint32, mf.nvregs)
	epoch := uint32(0)

	for b := range mf.blocks {
		blk := &mf.blocks[b]
		var out []minst
		epoch++
		// Per-block state.
		regOwner := make([]mreg, tgt.NumGPR)
		fregOwner := make([]mreg, nfpr)
		for i := range regOwner {
			regOwner[i] = mnone
		}
		for i := range fregOwner {
			fregOwner[i] = mnone
		}
		cached := cacheView{vals: cachedArr, epochs: cacheEpoch, epoch: epoch, none: noCache}
		fcached := cacheView{vals: fcachedArr, epochs: fcacheEpoch, epoch: epoch, none: noCache}
		// reserved holds physical registers that carry live fixed values:
		// staged call arguments (until the call) and, in the entry block,
		// the incoming argument registers (until first read).
		reserved := uint32(0)
		freserved := uint32(0)
		if b == 0 {
			for _, p := range tgt.IntArgs {
				reserved |= 1 << p
			}
			for _, p := range tgt.FloatArgs {
				freserved |= 1 << p
			}
		}

		dropReg := func(p uint8, cls regClass) {
			if cls == rcFloat {
				if o := fregOwner[p]; o != mnone {
					fcached.del(o)
					fregOwner[p] = mnone
				}
			} else {
				if o := regOwner[p]; o != mnone {
					cached.del(o)
					regOwner[p] = mnone
				}
			}
		}

		emit := func(in minst) { out = append(out, in) }

		for ii := range blk.insts {
			in := blk.insts[ii]
			// Registers referenced by this instruction cannot be
			// grabbed while resolving its other operands.
			inUse := uint32(0)
			finUse := uint32(0)
			visitMOperands(&in, func(r *mreg, isDef bool, cls regClass) {
				if isMPreg(*r) {
					if cls == rcFloat {
						finUse |= 1 << mpregNum(*r)
					} else {
						inUse |= 1 << mpregNum(*r)
					}
					return
				}
				if p, ok := cached.get(*r); ok && mf.classOf(*r) == rcInt {
					inUse |= 1 << p
				}
				if p, ok := fcached.get(*r); ok {
					finUse |= 1 << p
				}
			})

			allocGPR := func() (uint8, error) {
				// Every handed-out callee-saved register must reach the
				// prologue's save list: caches over callee-saved registers
				// survive calls, so an unsaved one would be clobbered by the
				// callee underneath a live cache.
				grab := func(p uint8) uint8 {
					if tgt.IsCalleeSaved(p) {
						usedCallee[p] = true
					}
					inUse |= 1 << p
					return p
				}
				for _, p := range gprs {
					if inUse&(1<<p) != 0 || reserved&(1<<p) != 0 {
						continue
					}
					if regOwner[p] == mnone {
						return grab(p), nil
					}
				}
				for _, p := range gprs {
					if inUse&(1<<p) != 0 || reserved&(1<<p) != 0 {
						continue
					}
					dropReg(p, rcInt) // values are stored at def: drop is free
					return grab(p), nil
				}
				return 0, fmt.Errorf("lbe: fast RA out of registers")
			}
			allocFPR := func() (uint8, error) {
				for p := 0; p < nfpr; p++ {
					if finUse&(1<<uint(p)) != 0 || freserved&(1<<uint(p)) != 0 {
						continue
					}
					if fregOwner[p] == mnone {
						finUse |= 1 << uint(p)
						return uint8(p), nil
					}
				}
				for p := 0; p < nfpr; p++ {
					if finUse&(1<<uint(p)) != 0 || freserved&(1<<uint(p)) != 0 {
						continue
					}
					dropReg(uint8(p), rcFloat)
					finUse |= 1 << uint(p)
					return uint8(p), nil
				}
				return 0, fmt.Errorf("lbe: fast RA out of float registers")
			}

			var err error
			var defs []struct {
				r   *mreg
				cls regClass
			}
			visitMOperands(&in, func(r *mreg, isDef bool, cls regClass) {
				if err != nil {
					return
				}
				if isMPreg(*r) {
					p := mpregNum(*r)
					if isDef {
						dropReg(p, cls)
						if cls == rcFloat {
							freserved |= 1 << p
						} else {
							reserved |= 1 << p
						}
					} else {
						// A fixed value was consumed; release it.
						if cls == rcFloat {
							freserved &^= 1 << p
						} else {
							reserved &^= 1 << p
						}
					}
					return
				}
				v := *r
				cls = mf.classOf(v)
				if isDef {
					defs = append(defs, struct {
						r   *mreg
						cls regClass
					}{r, cls})
					return
				}
				// Use: reload if not cached.
				if cls == rcFloat {
					if p, ok := fcached.get(v); ok {
						*r = mpreg(p)
						return
					}
					p, e := allocFPR()
					if e != nil {
						err = e
						return
					}
					ld := newMinst(vt.FLoad)
					ld.rd = mpreg(p)
					ld.ra = mpreg(tgt.SP)
					ld.imm = int64(slot(v))
					ld.sym = -2 // frame-index marker
					ld.inserted, ld.mval = true, v
					emit(ld)
					fcached.set(v, p)
					fregOwner[p] = v
					*r = mpreg(p)
					return
				}
				if p, ok := cached.get(v); ok {
					*r = mpreg(p)
					return
				}
				p, e := allocGPR()
				if e != nil {
					err = e
					return
				}
				ld := newMinst(vt.Load64)
				ld.rd = mpreg(p)
				ld.ra = mpreg(tgt.SP)
				ld.imm = int64(slot(v))
				ld.sym = -2
				ld.inserted, ld.mval = true, v
				emit(ld)
				cached.set(v, p)
				regOwner[p] = v
				*r = mpreg(p)
			})
			if err != nil {
				return nil, err
			}
			// Allocate defs after uses.
			var defStores []minst
			for _, d := range defs {
				v := *d.r
				if d.cls == rcFloat {
					p, ok := fcached.get(v)
					if !ok {
						var e error
						p, e = allocFPR()
						if e != nil {
							return nil, e
						}
						dropReg(p, rcFloat)
						fcached.set(v, p)
						fregOwner[p] = v
					}
					*d.r = mpreg(p)
					stn := newMinst(vt.FStore)
					stn.ra = mpreg(tgt.SP)
					stn.rb = mpreg(p)
					stn.imm = int64(slot(v))
					stn.sym = -2
					stn.inserted, stn.mval = true, v
					defStores = append(defStores, stn)
				} else {
					// Reuse the register the value was just read from
					// (preserves the two-address rd==ra constraint).
					p, ok := cached.get(v)
					if !ok {
						var e error
						p, e = allocGPR()
						if e != nil {
							return nil, e
						}
						dropReg(p, rcInt)
						cached.set(v, p)
						regOwner[p] = v
					}
					*d.r = mpreg(p)
					stn := newMinst(vt.Store64)
					stn.ra = mpreg(tgt.SP)
					stn.rb = mpreg(p)
					stn.imm = int64(slot(v))
					stn.sym = -2
					stn.inserted, stn.mval = true, v
					defStores = append(defStores, stn)
				}
				if tgt.IsCalleeSaved(mpregNum(*d.r)) && d.cls == rcInt {
					usedCallee[mpregNum(*d.r)] = true
				}
			}
			emit(in)
			// Store-at-def keeps slots authoritative.
			out = append(out, defStores...)
			if in.isCall {
				// Caller-saved registers die; caches over them drop.
				for _, p := range tgt.CallerSaved {
					dropReg(p, rcInt)
				}
				for p := 0; p < nfpr; p++ {
					dropReg(uint8(p), rcFloat)
				}
				reserved = 0
				freserved = 0
				// Return registers may carry results until read.
				for _, p := range tgt.IntRet {
					reserved |= 1 << p
				}
			}
		}
		blk.insts = out
	}
	// Sorted so the prologue save order is deterministic (byte-identical
	// recompiles; map iteration order is randomized), matching the greedy
	// allocator.
	for p := range usedCallee {
		st.usedCallee = append(st.usedCallee, p)
	}
	sort.Slice(st.usedCallee, func(i, j int) bool { return st.usedCallee[i] < st.usedCallee[j] })
	st.spills = int(st.numSlots)
	return st, nil
}

// cacheView is a dense epoch-validated vreg->preg cache (fast-RA state).
type cacheView struct {
	vals   []uint8
	epochs []uint32
	epoch  uint32
	none   uint8
}

func (c cacheView) get(v mreg) (uint8, bool) {
	if int(v) >= len(c.vals) || c.epochs[v] != c.epoch {
		return 0, false
	}
	p := c.vals[v]
	return p, p != c.none
}

func (c cacheView) set(v mreg, p uint8) {
	if int(v) < len(c.vals) {
		c.vals[v] = p
		c.epochs[v] = c.epoch
	}
}

func (c cacheView) del(v mreg) {
	if int(v) < len(c.vals) {
		c.vals[v] = c.none
		c.epochs[v] = c.epoch
	}
}
