package lbe

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/mcv"
	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the LLVM-like back-end.
type Engine struct {
	cfg     Config
	tmCache map[vt.Arch]*targetMachine
}

// NewCheap returns the cheap configuration (-O0, FastISel, fast register
// allocator) — "LLVM cheap" in the paper's tables.
func NewCheap() *Engine { return &Engine{cfg: Config{Opt: false}} }

// NewOpt returns the optimized configuration (-O2-style passes,
// SelectionDAG, greedy register allocator) — "LLVM optimized".
func NewOpt() *Engine { return &Engine{cfg: Config{Opt: true}} }

// NewWithConfig returns an engine with an explicit configuration (for the
// GlobalISel comparison and the Sec. V-A2 ablations).
func NewWithConfig(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Name implements backend.Engine.
func (e *Engine) Name() string {
	switch {
	case e.cfg.ISel == ISelGlobal && e.cfg.Opt:
		return "LLVM GlobalISel opt"
	case e.cfg.ISel == ISelGlobal:
		return "LLVM GlobalISel cheap"
	case e.cfg.Opt:
		return "LLVM optimized"
	default:
		return "LLVM cheap"
	}
}

// targetMachine models LLVM's TargetMachine: its construction parses the
// target description and builds per-opcode selection tables, which is why
// the paper caches one instance per thread (Sec. V-A2, third measure).
type targetMachine struct {
	tgt      *vt.Target
	patterns map[vt.Op]patternInfo
	features []string
}

type patternInfo struct {
	latency  int
	size     int
	commutes bool
	hasImm   bool
}

func newTargetMachine(arch vt.Arch) *targetMachine {
	tm := &targetMachine{tgt: vt.ForArch(arch), patterns: map[vt.Op]patternInfo{}}
	// Build the per-opcode tables (the construction cost being cached).
	for op := vt.Op(0); op < vt.NumOps; op++ {
		pi := patternInfo{latency: 1, size: 4}
		switch op {
		case vt.Mul, vt.MulI, vt.MulWideU, vt.MulWideS:
			pi.latency = 3
		case vt.SDiv, vt.SRem, vt.UDiv, vt.URem, vt.FDiv:
			pi.latency = 20
		case vt.Load64, vt.Load32, vt.FLoad:
			pi.latency = 4
		}
		switch op {
		case vt.Add, vt.Mul, vt.And, vt.Or, vt.Xor, vt.FAdd, vt.FMul:
			pi.commutes = true
		}
		if _, ok := map[vt.Op]bool{vt.AddI: true, vt.SubI: true, vt.MulI: true,
			vt.AndI: true, vt.OrI: true, vt.XorI: true}[op]; ok {
			pi.hasImm = true
		}
		tm.patterns[op] = pi
	}
	for i := 0; i < 32; i++ {
		tm.features = append(tm.features, fmt.Sprintf("feature%d", i))
	}
	return tm
}

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Compile implements backend.Engine.
func (e *Engine) Compile(qmod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	stats := &backend.Stats{Funcs: len(qmod.Funcs)}
	ph := backend.NewPhaser(stats, env.Trace)
	cfg := e.cfg
	if cfg.ISel == ISelDefault {
		if cfg.Opt {
			cfg.ISel = ISelDAG
		} else {
			cfg.ISel = ISelFast
		}
	}

	// TargetMachine: constructed per compilation unless cached.
	sp := ph.Begin("TargetMachine")
	var tm *targetMachine
	if cfg.NoTMCache {
		tm = newTargetMachine(env.Arch)
	} else {
		if e.tmCache == nil {
			e.tmCache = map[vt.Arch]*targetMachine{}
		}
		tm = e.tmCache[env.Arch]
		if tm == nil {
			tm = newTargetMachine(env.Arch)
			e.tmCache[env.Arch] = tm
		}
	}
	tgt := tm.tgt
	sp.End()

	lmod := &Module{Name: qmod.Name, RTNames: qmod.RTNames}
	rtid := func(name string) uint32 { return qmod.RTImport(name) }

	// The object emitter is shared by the whole module.
	oe := newObjEmitter(env.Arch)
	rtUsed := map[uint32]bool{}
	var fnNames []string

	prep := &passManager{}
	for _, p := range backendPrepPasses() {
		prep.add(p)
	}
	opt := &passManager{}
	if cfg.Opt {
		for _, p := range optPasses() {
			opt.add(p)
		}
	}

	for _, qf := range qmod.Funcs {
		fsp := ph.BeginGroup("func:" + qf.Name)

		// IR construction.
		sp = ph.Begin("IRBuild")
		fn, err := buildIR(qf, lmod, env, cfg, rtid)
		sp.End()
		if err != nil {
			return nil, nil, err
		}

		// IR passes (midend in optimized mode, then back-end prep).
		sp = ph.Begin("IRPasses")
		if cfg.Opt {
			opt.run(fn, ph, stats)
		}
		prep.run(fn, ph, stats)
		sp.End()

		// Instruction selection.
		sp = ph.Begin("ISel")
		mf := &mfunc{name: fn.Name}
		mf.blocks = make([]mblock, len(fn.Blocks))
		is := &isel{cfg: cfg, fn: fn, mf: mf, tgt: tgt, stats: stats, vals: map[*Instr]mval{}}
		switch cfg.ISel {
		case ISelFast:
			dag := &selectionDAG{isel: is}
			fi := &fastISel{isel: is, dag: dag}
			is.cur = 0
			is.bindParams()
			for bi, b := range fn.Blocks {
				if err := fi.runOnBlock(b, int32(bi)); err != nil {
					return nil, nil, err
				}
			}
			stats.Count("dag_nodes", dag.nodesBuilt)
			stats.Count("knownbits_queries", dag.kbQueries)
		case ISelDAG:
			dag := &selectionDAG{isel: is}
			is.cur = 0
			is.bindParams()
			for bi, b := range fn.Blocks {
				if err := dag.lowerRange(b, 0, len(b.Instrs), int32(bi)); err != nil {
					return nil, nil, err
				}
			}
			stats.Count("dag_nodes", dag.nodesBuilt)
			stats.Count("knownbits_queries", dag.kbQueries)
		case ISelGlobal:
			gi := &gISel{isel: is}
			if _, err := gi.run(fn); err != nil {
				return nil, nil, err
			}
		}
		sp.End()

		// SSA lowering and target constraints.
		sp = ph.Begin("OtherPasses")
		mf.computeCFG()
		phiElim(mf)
		rewrites := twoAddress(mf, tgt)
		stats.Count("twoaddr_rewrites", int64(rewrites))
		stats.Count("passes_run", 2)
		sp.End()

		// The verifier pairs post-allocation code with its pre-allocation
		// twin, so snapshot the MIR the allocators are about to rewrite.
		var preRA [][]minst
		if env.Options.Check {
			csp := ph.Begin("Check.Snapshot")
			preRA = snapshotMIR(mf)
			csp.End()
		}

		// Register allocation.
		sp = ph.Begin("RegAlloc")
		var ra *raState
		if cfg.Opt {
			ra, err = greedyRegAlloc(mf, tgt)
		} else {
			ra, err = fastRegAlloc(mf, tgt)
		}
		sp.End()
		if err != nil {
			return nil, nil, fmt.Errorf("lbe: %s: %w", fn.Name, err)
		}
		stats.Count("spill_slots", int64(ra.numSlots))

		// Check before the machine scan passes and prologue insertion
		// below mutate the MIR (frame indices become byte offsets there).
		if env.Options.Check {
			csp := ph.Begin("Check.RegAlloc")
			cf, cdiags := buildMCheckFunc(mf, preRA, ra, tgt)
			cdiags = append(cdiags, mcv.CheckFunc(cf)...)
			csp.End()
			if err := mcv.Error("lbe: regalloc check", cdiags); err != nil {
				return nil, nil, err
			}
		}

		// The remaining small machine passes (stack coloring, copy
		// propagation scans, branch folding in opt mode, ...): each
		// iterates the machine code.
		sp = ph.Begin("PrologEpilog")
		runMachineScanPasses(mf, cfg.Opt, stats)
		prologEpilog(mf, ra, tgt)
		stats.Count("passes_run", 1)
		sp.End()

		// Assembly printing into the in-memory object. The printer calls
		// back into the encoder; under Lap accounting that time was charged
		// wholesale to AsmPrinter, while the span records the encoder as a
		// nested child.
		sp = ph.Begin("AsmPrinter")
		if err := asmPrint(mf, tgt, oe, len(fnNames), cfg, rtUsed); err != nil {
			return nil, nil, err
		}
		fnNames = append(fnNames, fn.Name)
		sp.End()
		fsp.End()
	}

	// Module epilogue: PLT stubs, object emission, JIT linking.
	sp = ph.Begin("ObjectEmission")
	var maxRT uint32
	for id := range rtUsed {
		if id > maxRT {
			maxRT = id
		}
	}
	emitPLT(oe, rtUsed, maxRT)
	text, relocs, err := oe.finish()
	if err != nil {
		return nil, nil, err
	}
	obj := &object{text: text, cfi: oe.cfi}
	for _, n := range fnNames {
		off := int32(len(obj.names))
		obj.names = append(obj.names, n...)
		obj.symbols = append(obj.symbols, objSymbol{
			nameOff: off, nameLen: int32(len(n)),
			value: oe.fnStarts[n], size: oe.fnEnds[n] - oe.fnStarts[n],
		})
	}
	for _, r := range relocs {
		obj.relocs = append(obj.relocs, objReloc{off: r.Offset, kind: r.Kind, sym: r.Sym})
	}
	objBytes := encodeObject(obj)
	stats.CodeBytes = len(text)
	sp.End()

	sp = ph.Begin("Linking")
	vmod, offsets, err := jitLink(objBytes, env.Arch, fnNames)
	sp.End()
	if err != nil {
		return nil, nil, err
	}

	if env.Options.Check {
		csp := ph.Begin("Check.Lint")
		ldiags := mcv.Lint(vmod.Prog, vmod.Funcs(), len(qmod.RTNames))
		csp.End()
		if err := mcv.Error("lbe: machine lint", ldiags); err != nil {
			return nil, nil, err
		}
		csp = ph.Begin("Check.Summary")
		stats.Summaries = mcv.Summarize(vmod.Prog, vmod.Funcs(), qmod.RTNames)
		csp.End()
	}

	// Destructing the IR module is measurably expensive in LLVM; walk and
	// release everything explicitly.
	sp = ph.Begin("IRDestruct")
	for _, fn := range lmod.Fns {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				in.Ops = nil
				in.Uses = nil
				in.Inc = nil
			}
			b.Instrs = nil
			b.Preds = nil
		}
		fn.Blocks = nil
		fn.Params = nil
	}
	lmod.Fns = nil
	sp.End()

	if err := env.DB.Bind(qmod.RTNames); err != nil {
		return nil, nil, err
	}
	ph.Finish()
	return &exec{m: env.DB.M, mod: vmod, offsets: offsets}, stats, nil
}

// runMachineScanPasses models the tail of the codegen pipeline: many small
// passes each scanning the machine code (67 passes in the cheap pipeline,
// 146 in the optimized one, per the paper).
func runMachineScanPasses(mf *mfunc, optMode bool, stats *backend.Stats) {
	names := []string{
		"machine-sink-check", "stack-coloring", "machine-cp", "post-ra-pseudos",
		"implicit-null-checks", "machine-licm-verify", "fentry-insert",
		"xray-instrumentation", "patchable-function", "func-alias-analysis",
		"livedebugvalues", "machine-sanitizer", "branch-relaxation-scan",
		"cfi-instr-inserter", "unpack-mi-bundles", "remove-redundant-debug",
	}
	if optMode {
		names = append(names,
			"machine-cse", "machine-licm", "peephole-opts", "dead-mi-elimination",
			"early-ifcvt-scan", "machine-combiner", "shrink-wrap-analysis",
			"block-placement", "tail-duplication-scan", "branch-folding",
			"machine-outliner-scan", "implicit-def-scan", "opt-phi-scan",
			"postra-sched-scan", "macro-fusion-scan", "copy-prop-2",
		)
	}
	for range names {
		n := 0
		for b := range mf.blocks {
			for i := range mf.blocks[b].insts {
				in := &mf.blocks[b].insts[i]
				if in.op == vt.Nop {
					n++
				}
			}
		}
		_ = n
		stats.Count("passes_run", 1)
	}
}
