package lbe

import (
	"fmt"
	"sort"

	"qcc/internal/backend"
	"qcc/internal/mcv"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the LLVM-like back-end.
type Engine struct {
	cfg     Config
	tmCache map[vt.Arch]*targetMachine
}

// NewCheap returns the cheap configuration (-O0, FastISel, fast register
// allocator) — "LLVM cheap" in the paper's tables.
func NewCheap() *Engine { return &Engine{cfg: Config{Opt: false}} }

// NewOpt returns the optimized configuration (-O2-style passes,
// SelectionDAG, greedy register allocator) — "LLVM optimized".
func NewOpt() *Engine { return &Engine{cfg: Config{Opt: true}} }

// NewWithConfig returns an engine with an explicit configuration (for the
// GlobalISel comparison and the Sec. V-A2 ablations).
func NewWithConfig(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Name implements backend.Engine.
func (e *Engine) Name() string {
	switch {
	case e.cfg.ISel == ISelGlobal && e.cfg.Opt:
		return "LLVM GlobalISel opt"
	case e.cfg.ISel == ISelGlobal:
		return "LLVM GlobalISel cheap"
	case e.cfg.Opt:
		return "LLVM optimized"
	default:
		return "LLVM cheap"
	}
}

// targetMachine models LLVM's TargetMachine: its construction parses the
// target description and builds per-opcode selection tables, which is why
// the paper caches one instance per thread (Sec. V-A2, third measure).
type targetMachine struct {
	tgt      *vt.Target
	patterns map[vt.Op]patternInfo
	features []string
}

type patternInfo struct {
	latency  int
	size     int
	commutes bool
	hasImm   bool
}

func newTargetMachine(arch vt.Arch) *targetMachine {
	tm := &targetMachine{tgt: vt.ForArch(arch), patterns: map[vt.Op]patternInfo{}}
	// Build the per-opcode tables (the construction cost being cached).
	for op := vt.Op(0); op < vt.NumOps; op++ {
		pi := patternInfo{latency: 1, size: 4}
		switch op {
		case vt.Mul, vt.MulI, vt.MulWideU, vt.MulWideS:
			pi.latency = 3
		case vt.SDiv, vt.SRem, vt.UDiv, vt.URem, vt.FDiv:
			pi.latency = 20
		case vt.Load64, vt.Load32, vt.FLoad, vt.LoadU64, vt.LoadU32, vt.FLoadU:
			pi.latency = 4
		}
		switch op {
		case vt.Add, vt.Mul, vt.And, vt.Or, vt.Xor, vt.FAdd, vt.FMul:
			pi.commutes = true
		}
		if _, ok := map[vt.Op]bool{vt.AddI: true, vt.SubI: true, vt.MulI: true,
			vt.AndI: true, vt.OrI: true, vt.XorI: true}[op]; ok {
			pi.hasImm = true
		}
		tm.patterns[op] = pi
	}
	for i := 0; i < 32; i++ {
		tm.features = append(tm.features, fmt.Sprintf("feature%d", i))
	}
	return tm
}

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Module exposes the linked machine-code image (byte-identity tests,
// disassembly tooling).
func (x *exec) Module() *vm.Module { return x.mod }

// Compile implements backend.Engine via the shared sequential unit driver.
func (e *Engine) Compile(qmod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	return backend.CompileUnits(e, qmod, env)
}

// moduleCompiler implements backend.ModuleCompiler for one (module, env).
type moduleCompiler struct {
	qmod *qir.Module
	env  *backend.Env
	cfg  Config // ISel resolved
	tm   *targetMachine
	// prep and opt are built once per module and read-only afterwards
	// (run creates a fresh passContext per call).
	prep *passManager
	opt  *passManager
}

// unit is the per-function payload: one function's object-file fragment.
// Branches inside text are PC-relative; calls into the module PLT stay as
// named fixups and function-address references as symbol relocations, both
// resolved at Link.
type unit struct {
	text   []byte
	relocs []vt.Reloc  // function-index symbol relocations (MovSym)
	fixups []callFixup // $plt<N> call sites, unit-relative offsets
	cfi    []byte      // unwind advances, unit-relative offsets
	rtIDs  []uint32    // runtime helpers routed through the PLT, sorted
	fn     *Fn         // retained for the IRDestruct phase at Link
}

// BeginModule implements backend.FuncEngine. Shared-state mutation happens
// here: the TargetMachine cache, string-constant interning, and importing
// the runtime helpers translation can reach for lazily (the overflow trap
// and the 128-bit multiply helper), mirroring trapArith.
func (e *Engine) BeginModule(qmod *qir.Module, env *backend.Env, ph *backend.Phaser) (backend.ModuleCompiler, error) {
	cfg := e.cfg
	if cfg.ISel == ISelDefault {
		if cfg.Opt {
			cfg.ISel = ISelDAG
		} else {
			cfg.ISel = ISelFast
		}
	}

	// TargetMachine: constructed per compilation unless cached.
	sp := ph.Begin("TargetMachine")
	var tm *targetMachine
	if cfg.NoTMCache {
		tm = newTargetMachine(env.Arch)
	} else {
		if e.tmCache == nil {
			e.tmCache = map[vt.Arch]*targetMachine{}
		}
		tm = e.tmCache[env.Arch]
		if tm == nil {
			tm = newTargetMachine(env.Arch)
			e.tmCache[env.Arch] = tm
		}
	}
	sp.End()

	backend.PreIntern(qmod, env.DB)
	for _, f := range qmod.Funcs {
		for b := range f.Blocks {
			for _, v := range f.Blocks[b].List {
				in := &f.Instrs[v]
				switch in.Op {
				case qir.OpSMulTrap, qir.OpSAddTrap, qir.OpSSubTrap:
					if in.Type == qir.I128 && in.Op == qir.OpSMulTrap {
						qmod.RTImport(rtFnI128MulOv)
					} else {
						qmod.RTImport(rt.FnOverflow)
					}
				}
			}
		}
	}

	prep := &passManager{}
	for _, p := range backendPrepPasses() {
		prep.add(p)
	}
	opt := &passManager{}
	if cfg.Opt {
		for _, p := range optPasses() {
			opt.add(p)
		}
	}
	return &moduleCompiler{qmod: qmod, env: env, cfg: cfg, tm: tm, prep: prep, opt: opt}, nil
}

// Variant implements backend.ModuleCompiler (cache keying): every Config
// field that changes emitted bytes participates. NoTMCache only moves
// construction cost around, so it is deliberately absent.
func (c *moduleCompiler) Variant() string {
	return fmt.Sprintf("lbe/v1;opt=%t;isel=%d;structpairs=%t;largecode=%t",
		c.cfg.Opt, c.cfg.ISel, c.cfg.StructPairs, c.cfg.LargeCodeModel)
}

// CompileFunc implements backend.ModuleCompiler: the per-function LLVM-style
// pipeline, IRBuild through AsmPrinter, into a private object emitter.
func (c *moduleCompiler) CompileFunc(idx int, ph *backend.Phaser) (*backend.Unit, error) {
	qf := c.qmod.Funcs[idx]
	env, cfg, tgt := c.env, c.cfg, c.tm.tgt
	stats := ph.Stats()

	// Each unit gets its own IR module: Fn construction appends to the
	// module's function list, which must not be shared across goroutines.
	lmod := &Module{Name: c.qmod.Name, RTNames: c.qmod.RTNames}
	rtid := func(name string) uint32 { return c.qmod.RTImport(name) }

	// IR construction.
	sp := ph.Begin("IRBuild")
	fn, err := buildIR(qf, lmod, env, cfg, rtid)
	sp.End()
	if err != nil {
		return nil, err
	}

	// IR passes (midend in optimized mode, then back-end prep).
	sp = ph.Begin("IRPasses")
	if cfg.Opt {
		c.opt.run(fn, ph, stats)
	}
	c.prep.run(fn, ph, stats)
	sp.End()

	// Instruction selection.
	sp = ph.Begin("ISel")
	mf := &mfunc{name: fn.Name}
	mf.blocks = make([]mblock, len(fn.Blocks))
	is := &isel{cfg: cfg, fn: fn, mf: mf, tgt: tgt, stats: stats, vals: map[*Instr]mval{}}
	switch cfg.ISel {
	case ISelFast:
		dag := &selectionDAG{isel: is}
		fi := &fastISel{isel: is, dag: dag}
		is.cur = 0
		is.bindParams()
		for bi, b := range fn.Blocks {
			if err := fi.runOnBlock(b, int32(bi)); err != nil {
				return nil, err
			}
		}
		stats.Count("dag_nodes", dag.nodesBuilt)
		stats.Count("knownbits_queries", dag.kbQueries)
	case ISelDAG:
		dag := &selectionDAG{isel: is}
		is.cur = 0
		is.bindParams()
		for bi, b := range fn.Blocks {
			if err := dag.lowerRange(b, 0, len(b.Instrs), int32(bi)); err != nil {
				return nil, err
			}
		}
		stats.Count("dag_nodes", dag.nodesBuilt)
		stats.Count("knownbits_queries", dag.kbQueries)
	case ISelGlobal:
		gi := &gISel{isel: is}
		if _, err := gi.run(fn); err != nil {
			return nil, err
		}
	}
	sp.End()

	// SSA lowering and target constraints.
	sp = ph.Begin("OtherPasses")
	mf.computeCFG()
	phiElim(mf)
	rewrites := twoAddress(mf, tgt)
	stats.Count("twoaddr_rewrites", int64(rewrites))
	stats.Count("passes_run", 2)
	sp.End()

	// The verifier pairs post-allocation code with its pre-allocation
	// twin, so snapshot the MIR the allocators are about to rewrite.
	var preRA [][]minst
	if env.Options.Check {
		csp := ph.Begin("Check.Snapshot")
		preRA = snapshotMIR(mf)
		csp.End()
	}

	// Register allocation.
	sp = ph.Begin("RegAlloc")
	var ra *raState
	if cfg.Opt {
		ra, err = greedyRegAlloc(mf, tgt)
	} else {
		ra, err = fastRegAlloc(mf, tgt)
	}
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("lbe: %s: %w", fn.Name, err)
	}
	stats.Count("spill_slots", int64(ra.numSlots))

	// Check before the machine scan passes and prologue insertion
	// below mutate the MIR (frame indices become byte offsets there).
	if env.Options.Check {
		csp := ph.Begin("Check.RegAlloc")
		cf, cdiags := buildMCheckFunc(mf, preRA, ra, tgt)
		cdiags = append(cdiags, mcv.CheckFunc(cf)...)
		csp.End()
		if err := mcv.Error("lbe: regalloc check", cdiags); err != nil {
			return nil, err
		}
	}

	// The remaining small machine passes (stack coloring, copy
	// propagation scans, branch folding in opt mode, ...): each
	// iterates the machine code.
	sp = ph.Begin("PrologEpilog")
	runMachineScanPasses(mf, cfg.Opt, stats)
	prologEpilog(mf, ra, tgt)
	stats.Count("passes_run", 1)
	sp.End()

	// Assembly printing into the unit's private in-memory object. The
	// printer calls back into the encoder; under Lap accounting that time
	// was charged wholesale to AsmPrinter, while the span records the
	// encoder as a nested child.
	sp = ph.Begin("AsmPrinter")
	oe := newObjEmitter(env.Arch)
	rtUsed := map[uint32]bool{}
	if err := asmPrint(mf, tgt, oe, idx, cfg, rtUsed); err != nil {
		sp.End()
		return nil, err
	}
	text, relocs, fixups, err := oe.finish()
	sp.End()
	if err != nil {
		return nil, err
	}
	rtIDs := make([]uint32, 0, len(rtUsed))
	for id := range rtUsed {
		rtIDs = append(rtIDs, id)
	}
	sort.Slice(rtIDs, func(a, b int) bool { return rtIDs[a] < rtIDs[b] })

	return &backend.Unit{
		Index: idx, Name: fn.Name, Bytes: len(text),
		Payload: &unit{
			text: text, relocs: relocs, fixups: fixups,
			cfi: oe.cfi, rtIDs: rtIDs, fn: fn,
		},
	}, nil
}

// Link implements backend.ModuleCompiler: module epilogue — PLT stubs,
// object emission, JIT linking, verification, IR destruction.
func (c *moduleCompiler) Link(units []*backend.Unit, ph *backend.Phaser) (backend.Exec, error) {
	env, qmod := c.env, c.qmod

	sp := ph.Begin("ObjectEmission")
	// Layout: the function texts in index order, then the PLT stubs for
	// every runtime helper any unit routed through the PLT.
	bases := make([]int32, len(units))
	total := 0
	rtUsed := map[uint32]bool{}
	var maxRT uint32
	for i, u := range units {
		p := u.Payload.(*unit)
		bases[i] = int32(total)
		total += len(p.text)
		for _, id := range p.rtIDs {
			rtUsed[id] = true
			if id > maxRT {
				maxRT = id
			}
		}
	}
	pltOe := newObjEmitter(env.Arch)
	emitPLT(pltOe, rtUsed, maxRT)
	pltText, pltRelocs, pltFixups, err := pltOe.finish()
	if err != nil {
		sp.End()
		return nil, err
	}
	if len(pltRelocs) != 0 || len(pltFixups) != 0 {
		sp.End()
		return nil, fmt.Errorf("lbe: PLT emitted unexpected relocations")
	}
	pltBase := int32(total)

	text := make([]byte, 0, total+len(pltText))
	var cfi []byte
	obj := &object{}
	var fnNames []string
	for i, u := range units {
		p := u.Payload.(*unit)
		text = append(text, p.text...)
		cfi, err = rebaseCFIAdvances(cfi, p.cfi, int(bases[i]))
		if err != nil {
			sp.End()
			return nil, err
		}
		nameOff := int32(len(obj.names))
		obj.names = append(obj.names, u.Name...)
		obj.symbols = append(obj.symbols, objSymbol{
			nameOff: nameOff, nameLen: int32(len(u.Name)),
			value: bases[i], size: int32(len(p.text)),
		})
		for _, r := range p.relocs {
			obj.relocs = append(obj.relocs, objReloc{off: r.Offset + bases[i], kind: r.Kind, sym: r.Sym})
		}
		fnNames = append(fnNames, u.Name)
	}
	text = append(text, pltText...)
	cfi, err = rebaseCFIAdvances(cfi, pltOe.cfi, int(pltBase))
	if err != nil {
		sp.End()
		return nil, err
	}
	// Resolve the units' PLT call sites now that stub addresses exist.
	for i, u := range units {
		for _, f := range u.Payload.(*unit).fixups {
			pos, ok := pltOe.labelPos[f.label]
			if !ok {
				sp.End()
				return nil, fmt.Errorf("lbe: unresolved local call to %s", f.label)
			}
			pltOe.patchCall(text, f.at+bases[i], int64(pltBase+pos))
		}
	}
	obj.text = text
	obj.cfi = cfi
	objBytes := encodeObject(obj)
	ph.Stats().CodeBytes = len(text)
	sp.End()

	sp = ph.Begin("Linking")
	vmod, offsets, err := jitLink(objBytes, env.Arch, fnNames)
	sp.End()
	if err != nil {
		return nil, err
	}
	vmod.SetFuse(!env.Options.NoFuse)

	if env.Options.Check {
		csp := ph.Begin("Check.Lint")
		ldiags := mcv.Lint(vmod.Prog, vmod.Funcs(), len(qmod.RTNames))
		csp.End()
		if err := mcv.Error("lbe: machine lint", ldiags); err != nil {
			return nil, err
		}
		csp = ph.Begin("Check.Summary")
		ph.Stats().Summaries = mcv.Summarize(vmod.Prog, vmod.Funcs(), qmod.RTNames)
		csp.End()
	}

	// Destructing the IR module is measurably expensive in LLVM; walk and
	// release everything explicitly.
	sp = ph.Begin("IRDestruct")
	for _, u := range units {
		p := u.Payload.(*unit)
		fn := p.fn
		if fn == nil {
			continue // unit came from the code cache; its IR is long gone
		}
		p.fn = nil
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				in.Ops = nil
				in.Uses = nil
				in.Inc = nil
			}
			b.Instrs = nil
			b.Preds = nil
		}
		fn.Blocks = nil
		fn.Params = nil
	}
	sp.End()

	if err := env.DB.Bind(qmod.RTNames); err != nil {
		return nil, err
	}
	return &exec{m: env.DB.M, mod: vmod, offsets: offsets}, nil
}

// runMachineScanPasses models the tail of the codegen pipeline: many small
// passes each scanning the machine code (67 passes in the cheap pipeline,
// 146 in the optimized one, per the paper).
func runMachineScanPasses(mf *mfunc, optMode bool, stats *backend.Stats) {
	names := []string{
		"machine-sink-check", "stack-coloring", "machine-cp", "post-ra-pseudos",
		"implicit-null-checks", "machine-licm-verify", "fentry-insert",
		"xray-instrumentation", "patchable-function", "func-alias-analysis",
		"livedebugvalues", "machine-sanitizer", "branch-relaxation-scan",
		"cfi-instr-inserter", "unpack-mi-bundles", "remove-redundant-debug",
	}
	if optMode {
		names = append(names,
			"machine-cse", "machine-licm", "peephole-opts", "dead-mi-elimination",
			"early-ifcvt-scan", "machine-combiner", "shrink-wrap-analysis",
			"block-placement", "tail-duplication-scan", "branch-folding",
			"machine-outliner-scan", "implicit-def-scan", "opt-phi-scan",
			"postra-sched-scan", "macro-fusion-scan", "copy-prop-2",
		)
	}
	for range names {
		n := 0
		for b := range mf.blocks {
			for i := range mf.blocks[b].insts {
				in := &mf.blocks[b].insts[i]
				if in.op == vt.Nop {
					n++
				}
			}
		}
		_ = n
		stats.Count("passes_run", 1)
	}
}
