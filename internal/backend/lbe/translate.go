package lbe

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/rt"
)

// Config selects the back-end operating mode and the ablations from the
// paper.
type Config struct {
	// Opt selects the optimized pipeline (-O2-style passes, SelectionDAG
	// or GlobalISel, greedy register allocation); false is the cheap
	// mode (-O0, FastISel, fast register allocation).
	Opt bool
	// ISel overrides the default instruction selector.
	ISel ISelKind
	// StructPairs represents the 16-byte string type as an LLVM
	// {i64,i64} struct instead of two scalar i64 values — the
	// compile-time regression studied in Sec. V-A2.
	StructPairs bool
	// LargeCodeModel disables the Small-PIC code model: FastISel then
	// falls back to SelectionDAG for every function call.
	LargeCodeModel bool
	// NoTMCache reconstructs the TargetMachine for every compilation
	// instead of caching it per thread.
	NoTMCache bool
}

// ISelKind selects the instruction selector.
type ISelKind uint8

// Instruction selectors.
const (
	ISelDefault ISelKind = iota
	ISelFast
	ISelDAG
	ISelGlobal
)

// typeOf maps a QIR type to LIR (strings become TPair or are split by the
// caller depending on mode).
func typeOf(t qir.Type) *Type {
	switch t {
	case qir.Void:
		return TVoid
	case qir.I1:
		return TI1
	case qir.I8:
		return TI8
	case qir.I16:
		return TI16
	case qir.I32:
		return TI32
	case qir.I64:
		return TI64
	case qir.I128:
		return TI128
	case qir.F64:
		return TDouble
	case qir.Ptr:
		return TPtr
	case qir.Str:
		return TPair
	}
	panic("lbe: bad type")
}

// lval is the LIR representation of one QIR value: a single instruction, or
// two (scalar-pair mode strings).
type lval struct {
	a, b *Instr
}

type irBuilder struct {
	cfg  Config
	env  *backend.Env
	qf   *qir.Func
	mod  *Module
	fn   *Fn
	cur  *Block
	vals []lval
	// qirEnd maps each QIR block to the LIR block holding its terminator
	// (trap checks split blocks).
	qirStart []*Block
	qirEnd   []*Block
	trapBB   *Block
	rtid     func(string) uint32
	// pendingPhis are filled once all blocks are translated.
	pendingPhis []pendingPhi
}

type pendingPhi struct {
	qv   qir.Value
	half int
	phi  *Instr
}

// buildIR translates one QIR function into LIR.
func buildIR(qf *qir.Func, mod *Module, env *backend.Env, cfg Config, rtid func(string) uint32) (*Fn, error) {
	bld := &irBuilder{
		cfg: cfg, env: env, qf: qf, mod: mod, rtid: rtid,
		vals:     make([]lval, len(qf.Instrs)),
		qirStart: make([]*Block, len(qf.Blocks)),
		qirEnd:   make([]*Block, len(qf.Blocks)),
	}

	// Function signature: scalar-pair mode splits string params; return
	// values always use the struct (the paper's one exception).
	var ptypes []*Type
	for _, pt := range qf.Params {
		if pt == qir.Str && !cfg.StructPairs {
			ptypes = append(ptypes, TI64, TI64)
		} else {
			ptypes = append(ptypes, typeOf(pt))
		}
	}
	ret := typeOf(qf.Ret)
	if qf.Ret == qir.I128 {
		ret = TI128
	}
	fn := mod.NewFn(qf.Name, ret, ptypes...)
	bld.fn = fn

	// Blocks: entry plus one per QIR block.
	for b := range qf.Blocks {
		if b == 0 {
			bld.qirStart[0] = fn.Blocks[0]
		} else {
			bld.qirStart[b] = fn.NewBlock()
		}
	}

	// Parameters map to their pseudo-instructions.
	pi := 0
	for i, pt := range qf.Params {
		if pt == qir.Str && !cfg.StructPairs {
			bld.vals[i] = lval{a: fn.Params[pi], b: fn.Params[pi+1]}
			pi += 2
		} else {
			bld.vals[i] = lval{a: fn.Params[pi]}
			pi++
		}
	}

	for b := range qf.Blocks {
		bld.cur = bld.qirStart[b]
		for _, v := range qf.Blocks[b].List {
			in := &qf.Instrs[v]
			if in.Op == qir.OpParam {
				continue
			}
			if err := bld.inst(qir.BlockID(b), v, in); err != nil {
				return nil, fmt.Errorf("lbe: %s: %w", qf.Name, err)
			}
		}
		bld.qirEnd[b] = bld.cur
	}

	// Fill phi incomings now that every block's final LIR block is known.
	for _, pp := range bld.pendingPhis {
		qin := &qf.Instrs[pp.qv]
		pairs := qf.PhiPairs(pp.qv)
		for i := 0; i < len(pairs); i += 2 {
			pred, src := pairs[i], pairs[i+1]
			lv := bld.vals[src]
			var incoming *Instr
			if pp.half == 1 {
				incoming = lv.b
			} else {
				incoming = lv.a
			}
			if incoming == nil {
				return nil, fmt.Errorf("lbe: %s: phi %d has untranslated incoming %d", qf.Name, pp.qv, src)
			}
			pp.phi.Ops = append(pp.phi.Ops, incoming)
			incoming.Uses = append(incoming.Uses, pp.phi)
			pp.phi.Inc = append(pp.phi.Inc, bld.qirEnd[pred])
		}
		_ = qin
	}
	bld.computePreds()
	return fn, nil
}

func (bld *irBuilder) computePreds() {
	for _, b := range bld.fn.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// append emits an instruction into the current block.
func (bld *irBuilder) append(in *Instr) *Instr { return bld.cur.Append(in) }

func (bld *irBuilder) iconst(t *Type, v int64) *Instr {
	return bld.append(&Instr{Op: LOpConst, Typ: t, Imm: v})
}

func (bld *irBuilder) bin(op Opcode, t *Type, a, b *Instr) *Instr {
	return bld.append(&Instr{Op: op, Typ: t, Ops: []*Instr{a, b}})
}

func (bld *irBuilder) icmp(p qir.Cmp, a, b *Instr) *Instr {
	return bld.append(&Instr{Op: LOpICmp, Typ: TI1, Pred: uint8(p), Ops: []*Instr{a, b}})
}

// trapBlock lazily creates the shared overflow-trap block.
func (bld *irBuilder) trapBlock() *Block {
	if bld.trapBB == nil {
		bld.trapBB = bld.fn.NewBlock()
		save := bld.cur
		bld.cur = bld.trapBB
		bld.append(&Instr{Op: LOpCallRT, Typ: TVoid, RTID: bld.rtid(rt.FnOverflow)})
		bld.append(&Instr{Op: LOpUnreachable, Typ: TVoid})
		bld.cur = save
	}
	return bld.trapBB
}

// checkOverflow splits the current block: condbr(ovf, trap, cont).
func (bld *irBuilder) checkOverflow(ovf *Instr) {
	cont := bld.fn.NewBlock()
	bld.append(&Instr{Op: LOpCondBr, Typ: TVoid, Ops: []*Instr{ovf}, Then: bld.trapBlock(), Else: cont})
	bld.cur = cont
}

// strVal returns the lval of a string-typed QIR value; in struct mode the
// pair halves are produced with extractvalue on demand.
func (bld *irBuilder) strHalves(v qir.Value) (*Instr, *Instr) {
	lv := bld.vals[v]
	if !bld.cfg.StructPairs {
		return lv.a, lv.b
	}
	lo := bld.append(&Instr{Op: LOpExtractVal, Typ: TI64, Imm: 0, Ops: []*Instr{lv.a}})
	hi := bld.append(&Instr{Op: LOpExtractVal, Typ: TI64, Imm: 1, Ops: []*Instr{lv.a}})
	return lo, hi
}

func (bld *irBuilder) set(v qir.Value, in *Instr)       { bld.vals[v] = lval{a: in} }
func (bld *irBuilder) setPair(v qir.Value, a, b *Instr) { bld.vals[v] = lval{a: a, b: b} }

// makeStr builds the representation of a 16-byte value from two i64 halves.
func (bld *irBuilder) makeStr(v qir.Value, lo, hi *Instr) {
	if bld.cfg.StructPairs {
		undef := bld.append(&Instr{Op: LOpConst, Typ: TPair})
		s1 := bld.append(&Instr{Op: LOpInsertVal, Typ: TPair, Imm: 0, Ops: []*Instr{undef, lo}})
		s2 := bld.append(&Instr{Op: LOpInsertVal, Typ: TPair, Imm: 1, Ops: []*Instr{s1, hi}})
		bld.set(v, s2)
	} else {
		bld.setPair(v, lo, hi)
	}
}

func (bld *irBuilder) a(v qir.Value) *Instr { return bld.vals[v].a }
