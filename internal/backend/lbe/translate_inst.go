package lbe

import (
	"fmt"

	"qcc/internal/qir"
)

var lBinMap = map[qir.Op]Opcode{
	qir.OpAdd: LOpAdd, qir.OpSub: LOpSub, qir.OpMul: LOpMul,
	qir.OpSDiv: LOpSDiv, qir.OpSRem: LOpSRem, qir.OpUDiv: LOpUDiv, qir.OpURem: LOpURem,
	qir.OpAnd: LOpAnd, qir.OpOr: LOpOr, qir.OpXor: LOpXor,
	qir.OpShl: LOpShl, qir.OpShr: LOpLShr, qir.OpSar: LOpAShr,
}

func (bld *irBuilder) inst(qb qir.BlockID, v qir.Value, in *qir.Instr) error {
	qf := bld.qf
	switch in.Op {
	case qir.OpConst:
		bld.set(v, bld.iconst(typeOf(in.Type), in.Imm))
	case qir.OpConst128:
		lo, hi := qf.Const128(v)
		c := bld.append(&Instr{Op: LOpConst, Typ: TI128, Imm: int64(lo), Imm2: int64(hi)})
		bld.set(v, c)
	case qir.OpConstStr:
		lo, hi := bld.env.DB.InternString(qf.Module().Strings[in.Imm])
		bld.makeStr(v, bld.iconst(TI64, int64(lo)), bld.iconst(TI64, int64(hi)))
	case qir.OpConstF:
		bld.set(v, bld.append(&Instr{Op: LOpConstF, Typ: TDouble, Imm: in.Imm}))
	case qir.OpConstPool:
		// Execution-time load from the DB's constant pool (value bound by
		// BindConstPool after compilation). The slot area is always-valid
		// machine memory allocated in NewDB, so the loads are unchecked;
		// little-endian typed loads of the canonical sign-extended slot
		// value are exact at every width.
		addr := bld.iconst(TPtr, int64(bld.env.DB.ConstPoolAddr(int(in.Imm))))
		if in.Type == qir.Str && !bld.cfg.StructPairs {
			lo := bld.append(&Instr{Op: LOpLoad, Typ: TI64, Ops: []*Instr{addr}, Unchecked: true})
			hiAddr := bld.append(&Instr{Op: LOpGEP, Typ: TPtr, Imm: 8, Ops: []*Instr{addr}})
			hi := bld.append(&Instr{Op: LOpLoad, Typ: TI64, Ops: []*Instr{hiAddr}, Unchecked: true})
			bld.setPair(v, lo, hi)
		} else {
			bld.set(v, bld.append(&Instr{Op: LOpLoad, Typ: typeOf(in.Type), Ops: []*Instr{addr}, Unchecked: true}))
		}
	case qir.OpNull:
		bld.set(v, bld.append(&Instr{Op: LOpNull, Typ: TPtr}))
	case qir.OpFuncAddr:
		bld.set(v, bld.append(&Instr{Op: LOpFuncAddr, Typ: TI64, Imm: int64(in.Aux)}))

	case qir.OpAdd, qir.OpSub, qir.OpMul, qir.OpSDiv, qir.OpSRem, qir.OpUDiv,
		qir.OpURem, qir.OpAnd, qir.OpOr, qir.OpXor, qir.OpShl, qir.OpShr, qir.OpSar:
		t := typeOf(in.Type)
		bld.set(v, bld.bin(lBinMap[in.Op], t, bld.a(in.A), bld.a(in.B)))

	case qir.OpRotr:
		// Lowered to the funnel-shift intrinsic.
		r := bld.append(&Instr{Op: LOpIntrinsic, Intr: IntrRotr, Typ: typeOf(in.Type),
			Ops: []*Instr{bld.a(in.A), bld.a(in.B)}})
		bld.set(v, r)

	case qir.OpNeg:
		t := typeOf(in.Type)
		if in.Type == qir.F64 {
			bld.set(v, bld.append(&Instr{Op: LOpFNeg, Typ: TDouble, Ops: []*Instr{bld.a(in.A)}}))
		} else {
			zero := bld.iconst(t, 0)
			bld.set(v, bld.bin(LOpSub, t, zero, bld.a(in.A)))
		}
	case qir.OpNot:
		t := typeOf(in.Type)
		m1 := bld.iconst(t, -1)
		bld.set(v, bld.bin(LOpXor, t, bld.a(in.A), m1))

	case qir.OpSAddTrap, qir.OpSSubTrap, qir.OpSMulTrap:
		return bld.trapArith(v, in)

	case qir.OpICmp:
		bld.set(v, bld.icmp(in.Cmp(), bld.a(in.A), bld.a(in.B)))
	case qir.OpFCmp:
		bld.set(v, bld.append(&Instr{Op: LOpFCmp, Typ: TI1, Pred: uint8(in.Cmp()),
			Ops: []*Instr{bld.a(in.A), bld.a(in.B)}}))

	case qir.OpZExt:
		bld.set(v, bld.append(&Instr{Op: LOpZExt, Typ: typeOf(in.Type), Ops: []*Instr{bld.a(in.A)}}))
	case qir.OpSExt:
		bld.set(v, bld.append(&Instr{Op: LOpSExt, Typ: typeOf(in.Type), Ops: []*Instr{bld.a(in.A)}}))
	case qir.OpTrunc:
		bld.set(v, bld.append(&Instr{Op: LOpTrunc, Typ: typeOf(in.Type), Ops: []*Instr{bld.a(in.A)}}))
	case qir.OpSIToFP:
		bld.set(v, bld.append(&Instr{Op: LOpSIToFP, Typ: TDouble, Ops: []*Instr{bld.a(in.A)}}))
	case qir.OpFPToSI:
		bld.set(v, bld.append(&Instr{Op: LOpFPToSI, Typ: typeOf(in.Type), Ops: []*Instr{bld.a(in.A)}}))
	case qir.OpFBits:
		bld.set(v, bld.append(&Instr{Op: LOpBitcast, Typ: TI64, Ops: []*Instr{bld.a(in.A)}}))
	case qir.OpBitsF:
		bld.set(v, bld.append(&Instr{Op: LOpBitcast, Typ: TDouble, Ops: []*Instr{bld.a(in.A)}}))

	case qir.OpFAdd, qir.OpFSub, qir.OpFMul, qir.OpFDiv:
		var op Opcode
		switch in.Op {
		case qir.OpFAdd:
			op = LOpFAdd
		case qir.OpFSub:
			op = LOpFSub
		case qir.OpFMul:
			op = LOpFMul
		default:
			op = LOpFDiv
		}
		bld.set(v, bld.bin(op, TDouble, bld.a(in.A), bld.a(in.B)))

	case qir.OpCrc32:
		bld.set(v, bld.append(&Instr{Op: LOpIntrinsic, Intr: IntrCrc32, Typ: TI64,
			Ops: []*Instr{bld.a(in.A), bld.a(in.B)}}))

	case qir.OpLMulFold:
		// Lowered to a "more complex instruction sequence": widen to
		// i128, multiply, fold the halves.
		za := bld.append(&Instr{Op: LOpZExt, Typ: TI128, Ops: []*Instr{bld.a(in.A)}})
		zb := bld.append(&Instr{Op: LOpZExt, Typ: TI128, Ops: []*Instr{bld.a(in.B)}})
		prod := bld.bin(LOpMul, TI128, za, zb)
		sixty4 := bld.iconst(TI128, 64)
		hiw := bld.bin(LOpLShr, TI128, prod, sixty4)
		lo := bld.append(&Instr{Op: LOpTrunc, Typ: TI64, Ops: []*Instr{prod}})
		hi := bld.append(&Instr{Op: LOpTrunc, Typ: TI64, Ops: []*Instr{hiw}})
		bld.set(v, bld.bin(LOpXor, TI64, lo, hi))

	case qir.OpGEP:
		ops := []*Instr{bld.a(in.A)}
		if in.B != qir.NoValue {
			ops = append(ops, bld.a(in.B))
		}
		bld.set(v, bld.append(&Instr{Op: LOpGEP, Typ: TPtr, Imm: in.Imm, Scale: int64(in.Aux), Ops: ops}))

	case qir.OpLoad:
		addr := bld.a(in.A)
		uc := in.Unchecked()
		if in.Type == qir.Str && !bld.cfg.StructPairs {
			lo := bld.append(&Instr{Op: LOpLoad, Typ: TI64, Ops: []*Instr{addr}, Unchecked: uc})
			hiAddr := bld.append(&Instr{Op: LOpGEP, Typ: TPtr, Imm: 8, Ops: []*Instr{addr}})
			hi := bld.append(&Instr{Op: LOpLoad, Typ: TI64, Ops: []*Instr{hiAddr}, Unchecked: uc})
			bld.setPair(v, lo, hi)
		} else {
			bld.set(v, bld.append(&Instr{Op: LOpLoad, Typ: typeOf(in.Type), Ops: []*Instr{addr}, Unchecked: uc}))
		}

	case qir.OpStore:
		addr := bld.a(in.A)
		t := qf.ValueType(in.B)
		uc := in.Unchecked()
		if t == qir.Str && !bld.cfg.StructPairs {
			lo, hi := bld.vals[in.B].a, bld.vals[in.B].b
			bld.append(&Instr{Op: LOpStore, Typ: TVoid, Ops: []*Instr{addr, lo}, Unchecked: uc})
			hiAddr := bld.append(&Instr{Op: LOpGEP, Typ: TPtr, Imm: 8, Ops: []*Instr{addr}})
			bld.append(&Instr{Op: LOpStore, Typ: TVoid, Ops: []*Instr{hiAddr, hi}, Unchecked: uc})
		} else {
			bld.append(&Instr{Op: LOpStore, Typ: TVoid, Ops: []*Instr{addr, bld.a(in.B)}, Unchecked: uc})
		}

	case qir.OpAtomicAdd:
		bld.set(v, bld.append(&Instr{Op: LOpAtomicRMWAdd, Typ: typeOf(in.Type),
			Ops: []*Instr{bld.a(in.A), bld.a(in.B)}}))

	case qir.OpSelect:
		cond := bld.a(in.A)
		if in.Type == qir.Str && !bld.cfg.StructPairs {
			x, y := bld.vals[in.B], bld.vals[in.C]
			lo := bld.append(&Instr{Op: LOpSelect, Typ: TI64, Ops: []*Instr{cond, x.a, y.a}})
			hi := bld.append(&Instr{Op: LOpSelect, Typ: TI64, Ops: []*Instr{cond, x.b, y.b}})
			bld.setPair(v, lo, hi)
		} else {
			bld.set(v, bld.append(&Instr{Op: LOpSelect, Typ: typeOf(in.Type),
				Ops: []*Instr{cond, bld.a(in.B), bld.a(in.C)}}))
		}

	case qir.OpCall:
		var ops []*Instr
		for _, arg := range qf.CallArgs(v) {
			if qf.ValueType(arg) == qir.Str && !bld.cfg.StructPairs {
				lv := bld.vals[arg]
				ops = append(ops, lv.a, lv.b)
			} else {
				ops = append(ops, bld.a(arg))
			}
		}
		var rt_ *Type
		switch {
		case in.Type == qir.Void:
			rt_ = TVoid
		case in.Type == qir.Str:
			rt_ = TPair // multi-register returns are always structs
		default:
			rt_ = typeOf(in.Type)
		}
		call := bld.append(&Instr{Op: LOpCallRT, Typ: rt_, RTID: in.Aux, Ops: ops})
		if in.Type == qir.Str && !bld.cfg.StructPairs {
			lo := bld.append(&Instr{Op: LOpExtractVal, Typ: TI64, Imm: 0, Ops: []*Instr{call}})
			hi := bld.append(&Instr{Op: LOpExtractVal, Typ: TI64, Imm: 1, Ops: []*Instr{call}})
			bld.setPair(v, lo, hi)
		} else if in.Type != qir.Void {
			bld.set(v, call)
		}

	case qir.OpPhi:
		if in.Type == qir.Str && !bld.cfg.StructPairs {
			lo := bld.append(&Instr{Op: LOpPhi, Typ: TI64})
			hi := bld.append(&Instr{Op: LOpPhi, Typ: TI64})
			bld.setPair(v, lo, hi)
			bld.pendingPhis = append(bld.pendingPhis, pendingPhi{qv: v, half: 0, phi: lo},
				pendingPhi{qv: v, half: 1, phi: hi})
		} else {
			phi := bld.append(&Instr{Op: LOpPhi, Typ: typeOf(in.Type)})
			bld.set(v, phi)
			bld.pendingPhis = append(bld.pendingPhis, pendingPhi{qv: v, half: 0, phi: phi})
		}

	case qir.OpBr:
		bld.append(&Instr{Op: LOpBr, Typ: TVoid, Then: bld.qirStart[in.Aux]})
	case qir.OpCondBr:
		bld.append(&Instr{Op: LOpCondBr, Typ: TVoid, Ops: []*Instr{bld.a(in.A)},
			Then: bld.qirStart[in.Aux], Else: bld.qirStart[in.B]})
	case qir.OpRet:
		if in.A == qir.NoValue {
			bld.append(&Instr{Op: LOpRet, Typ: TVoid})
		} else if qf.ValueType(in.A) == qir.Str && !bld.cfg.StructPairs {
			lv := bld.vals[in.A]
			pair := bld.append(&Instr{Op: LOpBuildPair, Typ: TPair, Ops: []*Instr{lv.a, lv.b}})
			bld.append(&Instr{Op: LOpRet, Typ: TVoid, Ops: []*Instr{pair}})
		} else {
			bld.append(&Instr{Op: LOpRet, Typ: TVoid, Ops: []*Instr{bld.a(in.A)}})
		}
	case qir.OpUnreachable:
		bld.append(&Instr{Op: LOpUnreachable, Typ: TVoid})

	default:
		return fmt.Errorf("cannot translate %s", in.Op)
	}
	return nil
}

// trapArith emits the overflow intrinsic, the extracts, and the trap check.
// 128-bit multiplication calls the hand-optimized runtime helper instead of
// the LLVM intrinsic (paper Sec. V-A1).
func (bld *irBuilder) trapArith(v qir.Value, in *qir.Instr) error {
	if in.Type == qir.I128 && in.Op == qir.OpSMulTrap {
		call := bld.append(&Instr{Op: LOpCallRT, Typ: TI128,
			RTID: bld.rtid(rtFnI128MulOv), Ops: []*Instr{bld.a(in.A), bld.a(in.B)}})
		bld.set(v, call)
		return nil
	}
	var intr IntrinsicID
	switch in.Op {
	case qir.OpSAddTrap:
		intr = IntrSAddOv
	case qir.OpSSubTrap:
		intr = IntrSSubOv
	default:
		intr = IntrSMulOv
	}
	var st *Type
	switch in.Type {
	case qir.I16:
		st = TOvf16
	case qir.I32:
		st = TOvf32
	case qir.I64:
		st = TOvf64
	case qir.I128:
		st = TOvf128
	default:
		st = &Type{Kind: KStruct, Fields: []*Type{typeOf(in.Type), TI1}}
	}
	res := bld.append(&Instr{Op: LOpIntrinsic, Intr: intr, Typ: st,
		Ops: []*Instr{bld.a(in.A), bld.a(in.B)}})
	val := bld.append(&Instr{Op: LOpExtractVal, Typ: st.Fields[0], Imm: 0, Ops: []*Instr{res}})
	ovf := bld.append(&Instr{Op: LOpExtractVal, Typ: TI1, Imm: 1, Ops: []*Instr{res}})
	bld.checkOverflow(ovf)
	bld.set(v, val)
	return nil
}

// rtFnI128MulOv mirrors rt.FnI128MulOv without importing rt here twice.
const rtFnI128MulOv = "i128_mul_ov"
