package lbe

import (
	"fmt"

	"qcc/internal/vt"
)

// MIR is the machine IR: target instructions over virtual registers,
// produced by instruction selection, rewritten by PHI elimination,
// two-address rewriting and register allocation, and finally encoded by the
// assembly printer.

// mreg encodes a register operand: >= 0 virtual, < 0 physical (-1-p).
type mreg = int32

const mnone mreg = -0x7FFFFFFF

func mpreg(p uint8) mreg    { return -1 - int32(p) }
func isMPreg(r mreg) bool   { return r < 0 && r != mnone }
func mpregNum(r mreg) uint8 { return uint8(-1 - r) }

// regClass is the register file of a vreg.
type regClass uint8

const (
	rcInt regClass = iota
	rcFloat
)

// minst is one machine instruction. For op == vt.Nop with phi != nil, the
// instruction is a PHI pseudo.
type minst struct {
	op     vt.Op
	cond   vt.Cond
	rd     mreg
	ra     mreg
	rb     mreg
	rc     mreg
	imm    int64
	target int32 // MIR block id for branches
	sym    int32 // relocation symbol for address materialization (-1 none)
	isCall bool

	// inserted marks allocator-created spill/reload/remat instructions;
	// mval is the vreg they move (for the machine-code verifier).
	inserted bool
	mval     mreg

	// phi, when non-nil, holds (incoming vreg, pred block) pairs.
	phi *phiInfo
}

type phiInfo struct {
	srcs   []mreg
	blocks []int32
}

func newMinst(op vt.Op) minst {
	return minst{op: op, rd: mnone, ra: mnone, rb: mnone, rc: mnone, sym: -1, target: -1, mval: mnone}
}

type mblock struct {
	insts []minst
	succs []int32
	preds []int32
	// freq is the static execution-frequency estimate used by the greedy
	// allocator's spill weights.
	freq      float64
	loopDepth int32
}

type mfunc struct {
	name    string
	blocks  []mblock
	nvregs  mreg
	classes []regClass
}

func (mf *mfunc) newVReg(cls regClass) mreg {
	v := mf.nvregs
	mf.nvregs++
	mf.classes = append(mf.classes, cls)
	return v
}

func (mf *mfunc) classOf(r mreg) regClass {
	if r >= 0 {
		return mf.classes[r]
	}
	return rcInt
}

// computeCFG fills preds from succs.
func (mf *mfunc) computeCFG() {
	for b := range mf.blocks {
		mf.blocks[b].preds = mf.blocks[b].preds[:0]
	}
	for b := range mf.blocks {
		for _, s := range mf.blocks[b].succs {
			mf.blocks[s].preds = append(mf.blocks[s].preds, int32(b))
		}
	}
}

// visitMOperands calls fn over the register operands of one instruction
// (uses first, then defs). PHIs report their destination only; incoming
// values are handled by the passes that understand them.
func visitMOperands(in *minst, fn func(r *mreg, isDef bool, cls regClass)) {
	use := func(r *mreg, cls regClass) {
		if *r != mnone {
			fn(r, false, cls)
		}
	}
	def := func(r *mreg, cls regClass) {
		if *r != mnone {
			fn(r, true, cls)
		}
	}
	if in.phi != nil {
		def(&in.rd, rcInt) // class refined by caller via classOf
		return
	}
	switch in.op {
	case vt.MovRR, vt.Neg, vt.Not, vt.Lea:
		use(&in.ra, rcInt)
		def(&in.rd, rcInt)
	case vt.MovRI:
		def(&in.rd, rcInt)
	case vt.FMovRI:
		def(&in.rd, rcFloat)
	case vt.FMovRR:
		use(&in.ra, rcFloat)
		def(&in.rd, rcFloat)
	case vt.Add, vt.Sub, vt.Mul, vt.And, vt.Or, vt.Xor, vt.Shl, vt.Shr, vt.Sar,
		vt.Rotr, vt.SDiv, vt.SRem, vt.UDiv, vt.URem, vt.Crc32:
		use(&in.ra, rcInt)
		use(&in.rb, rcInt)
		def(&in.rd, rcInt)
	case vt.AddI, vt.SubI, vt.MulI, vt.AndI, vt.OrI, vt.XorI, vt.ShlI, vt.ShrI,
		vt.SarI, vt.RotrI:
		use(&in.ra, rcInt)
		def(&in.rd, rcInt)
	case vt.MulWideU, vt.MulWideS:
		use(&in.ra, rcInt)
		use(&in.rb, rcInt)
		def(&in.rd, rcInt)
		def(&in.rc, rcInt)
	case vt.SetCC:
		use(&in.ra, rcInt)
		use(&in.rb, rcInt)
		def(&in.rd, rcInt)
	case vt.Load8, vt.Load8S, vt.Load16, vt.Load16S, vt.Load32, vt.Load32S, vt.Load64,
		vt.LoadU8, vt.LoadU8S, vt.LoadU16, vt.LoadU16S, vt.LoadU32, vt.LoadU32S, vt.LoadU64:
		use(&in.ra, rcInt)
		def(&in.rd, rcInt)
	case vt.Store8, vt.Store16, vt.Store32, vt.Store64,
		vt.StoreU8, vt.StoreU16, vt.StoreU32, vt.StoreU64:
		use(&in.ra, rcInt)
		use(&in.rb, rcInt)
	case vt.FLoad, vt.FLoadU:
		use(&in.ra, rcInt)
		def(&in.rd, rcFloat)
	case vt.FStore, vt.FStoreU:
		use(&in.ra, rcInt)
		use(&in.rb, rcFloat)
	case vt.FAdd, vt.FSub, vt.FMul, vt.FDiv:
		use(&in.ra, rcFloat)
		use(&in.rb, rcFloat)
		def(&in.rd, rcFloat)
	case vt.FCmp:
		use(&in.ra, rcFloat)
		use(&in.rb, rcFloat)
		def(&in.rd, rcInt)
	case vt.CvtSI2F:
		use(&in.ra, rcInt)
		def(&in.rd, rcFloat)
	case vt.CvtF2SI:
		use(&in.ra, rcFloat)
		def(&in.rd, rcInt)
	case vt.MovRF:
		use(&in.ra, rcFloat)
		def(&in.rd, rcInt)
	case vt.MovFR:
		use(&in.ra, rcInt)
		def(&in.rd, rcFloat)
	case vt.BrCC:
		use(&in.ra, rcInt)
		use(&in.rb, rcInt)
	case vt.BrNZ, vt.TrapNZ, vt.CallInd:
		use(&in.ra, rcInt)
	}
}

func (in *minst) String() string {
	r := func(x mreg) string {
		switch {
		case x == mnone:
			return "_"
		case isMPreg(x):
			return fmt.Sprintf("$r%d", mpregNum(x))
		default:
			return fmt.Sprintf("%%%d", x)
		}
	}
	if in.phi != nil {
		s := fmt.Sprintf("%s = PHI", r(in.rd))
		for i := range in.phi.srcs {
			s += fmt.Sprintf(" [%s, b%d]", r(in.phi.srcs[i]), in.phi.blocks[i])
		}
		return s
	}
	return fmt.Sprintf("%s %s, %s, %s, %s imm=%d t=%d", in.op, r(in.rd), r(in.ra), r(in.rb), r(in.rc), in.imm, in.target)
}
