package lbe

import (
	"fmt"
	"sort"

	"qcc/internal/vt"
)

// The greedy register allocator used for optimized builds. As the paper
// describes, it requires several analyses — virtual-register liveness, loop
// information, and block execution-frequency estimates — builds live
// intervals, and assigns registers in priority order with spill-weight-based
// eviction. Move-related intervals are coalesced first. Spilled values are
// rewritten through reserved scratch registers.

type gInterval struct {
	vreg       mreg // representative after coalescing
	start, end int32
	weight     float64
	cls        regClass
	preg       int32 // assigned preg or -1
	slot       int32 // spill slot or -1
}

// greedyRegAlloc allocates, rewriting mf in place to preg-only form.
func greedyRegAlloc(mf *mfunc, tgt *vt.Target) (*raState, error) {
	mf.computeCFG()
	computeFreqs(mf)

	// Linear numbering.
	idx := make([][]int32, len(mf.blocks))
	blockStart := make([]int32, len(mf.blocks))
	blockEnd := make([]int32, len(mf.blocks))
	n := int32(0)
	for b := range mf.blocks {
		blockStart[b] = n
		idx[b] = make([]int32, len(mf.blocks[b].insts))
		for i := range mf.blocks[b].insts {
			idx[b][i] = n
			n++
		}
		blockEnd[b] = n
	}

	// Liveness (vreg level).
	nv := int(mf.nvregs)
	gen := make([]map[mreg]struct{}, len(mf.blocks))
	kill := make([]map[mreg]struct{}, len(mf.blocks))
	for b := range mf.blocks {
		gen[b] = map[mreg]struct{}{}
		kill[b] = map[mreg]struct{}{}
		for i := range mf.blocks[b].insts {
			visitMOperands(&mf.blocks[b].insts[i], func(r *mreg, isDef bool, cls regClass) {
				if isMPreg(*r) {
					return
				}
				if isDef {
					kill[b][*r] = struct{}{}
				} else if _, k := kill[b][*r]; !k {
					gen[b][*r] = struct{}{}
				}
			})
		}
	}
	liveIn := make([]map[mreg]struct{}, len(mf.blocks))
	for b := range mf.blocks {
		liveIn[b] = map[mreg]struct{}{}
	}
	liveOut := make([]map[mreg]struct{}, len(mf.blocks))
	for b := range mf.blocks {
		liveOut[b] = map[mreg]struct{}{}
	}
	for changed := true; changed; {
		changed = false
		for b := len(mf.blocks) - 1; b >= 0; b-- {
			for _, s := range mf.blocks[b].succs {
				for v := range liveIn[s] {
					if _, ok := liveOut[b][v]; !ok {
						liveOut[b][v] = struct{}{}
						changed = true
					}
				}
			}
			for v := range gen[b] {
				if _, ok := liveIn[b][v]; !ok {
					liveIn[b][v] = struct{}{}
					changed = true
				}
			}
			for v := range liveOut[b] {
				if _, k := kill[b][v]; k {
					continue
				}
				if _, ok := liveIn[b][v]; !ok {
					liveIn[b][v] = struct{}{}
					changed = true
				}
			}
		}
	}

	// Intervals and spill weights.
	start := make([]int32, nv)
	end := make([]int32, nv)
	weight := make([]float64, nv)
	for v := range start {
		start[v], end[v] = -1, -1
	}
	touch := func(v mreg, at int32, w float64) {
		if start[v] == -1 || at < start[v] {
			start[v] = at
		}
		if at > end[v] {
			end[v] = at
		}
		weight[v] += w
	}
	for b := range mf.blocks {
		freq := mf.blocks[b].freq
		for v := range liveIn[b] {
			touch(v, blockStart[b], 0)
		}
		for v := range liveOut[b] {
			touch(v, blockEnd[b], 0)
		}
		for i := range mf.blocks[b].insts {
			at := idx[b][i]
			visitMOperands(&mf.blocks[b].insts[i], func(r *mreg, isDef bool, cls regClass) {
				if !isMPreg(*r) {
					touch(*r, at, freq)
				}
			})
		}
	}

	// Coalesce move-related vregs with non-overlapping intervals.
	parent := make([]mreg, nv)
	for v := range parent {
		parent[v] = mreg(v)
	}
	var find func(v mreg) mreg
	find = func(v mreg) mreg {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for b := range mf.blocks {
		for i := range mf.blocks[b].insts {
			in := &mf.blocks[b].insts[i]
			if (in.op == vt.MovRR || in.op == vt.FMovRR) && !isMPreg(in.rd) && !isMPreg(in.ra) &&
				in.rd != mnone && in.ra != mnone {
				a, c := find(in.rd), find(in.ra)
				if a == c || mf.classes[in.rd] != mf.classes[in.ra] {
					continue
				}
				if start[a] == -1 || start[c] == -1 {
					continue
				}
				if start[a] < end[c] && start[c] < end[a] {
					continue
				}
				parent[c] = a
				if start[c] < start[a] {
					start[a] = start[c]
				}
				if end[c] > end[a] {
					end[a] = end[c]
				}
				weight[a] += weight[c]
			}
		}
	}

	// Collect intervals for representatives.
	var ivs []*gInterval
	for v := 0; v < nv; v++ {
		if find(mreg(v)) != mreg(v) || start[v] == -1 {
			continue
		}
		ivs = append(ivs, &gInterval{
			vreg: mreg(v), start: start[v], end: end[v],
			weight: weight[v] / float64(end[v]-start[v]+1),
			cls:    mf.classes[v], preg: -1, slot: -1,
		})
	}
	// Priority: larger weight first (hot values get registers).
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].weight != ivs[j].weight {
			return ivs[i].weight > ivs[j].weight
		}
		return ivs[i].vreg < ivs[j].vreg
	})

	// Fixed occupancy (preg refs, call clobbers) per preg.
	type occ struct{ from, to int32 }
	fixedInt := make([][]occ, tgt.NumGPR)
	fixedFlt := make([][]occ, tgt.NumFPR)
	for b := range mf.blocks {
		var callIdx []int32
		for i := range mf.blocks[b].insts {
			if mf.blocks[b].insts[i].isCall {
				callIdx = append(callIdx, idx[b][i])
			}
		}
		nextCall := func(at int32) int32 {
			for _, c := range callIdx {
				if c >= at {
					return c
				}
			}
			return at
		}
		prevCall := func(at int32) int32 {
			from := blockStart[b]
			for _, c := range callIdx {
				if c <= at {
					from = c
				}
			}
			return from
		}
		for i := range mf.blocks[b].insts {
			in := &mf.blocks[b].insts[i]
			at := idx[b][i]
			visitMOperands(in, func(r *mreg, isDef bool, cls regClass) {
				if !isMPreg(*r) {
					return
				}
				p := mpregNum(*r)
				var o occ
				if isDef {
					o = occ{at, nextCall(at)}
				} else {
					o = occ{prevCall(at), at}
				}
				if cls == rcFloat {
					fixedFlt[p] = append(fixedFlt[p], o)
				} else {
					fixedInt[p] = append(fixedInt[p], o)
				}
			})
			if in.isCall {
				for _, p := range tgt.CallerSaved {
					fixedInt[p] = append(fixedInt[p], occ{at, at})
				}
				for p := 0; p < tgt.NumFPR; p++ {
					fixedFlt[p] = append(fixedFlt[p], occ{at, at})
				}
			}
		}
	}

	// Per-preg assigned interval lists.
	assigned := map[int][]*gInterval{} // key: preg | class<<8
	key := func(p uint8, cls regClass) int { return int(p) | int(cls)<<8 }
	overlapsFixed := func(p uint8, cls regClass, s, e int32) bool {
		var list []occ
		if cls == rcFloat {
			list = fixedFlt[p]
		} else {
			list = fixedInt[p]
		}
		for _, o := range list {
			if o.from <= e && o.to >= s {
				return true
			}
		}
		return false
	}

	allGPR := tgt.AllocatableGPRs()
	gprs := allGPR[:len(allGPR)-2] // two reserved emission scratches
	var fprs []uint8
	for p := 0; p < tgt.NumFPR-2; p++ {
		fprs = append(fprs, uint8(p))
	}

	st := &raState{}
	assignOf := make([]int32, nv)
	slotOf := make([]int32, nv)
	for v := range assignOf {
		assignOf[v] = -1
		slotOf[v] = -1
	}
	usedCallee := map[uint8]bool{}

	var queue []*gInterval
	queue = append(queue, ivs...)
	for len(queue) > 0 {
		iv := queue[0]
		queue = queue[1:]
		cands := gprs
		if iv.cls == rcFloat {
			cands = fprs
		}
		done := false
		for _, p := range cands {
			if overlapsFixed(p, iv.cls, iv.start, iv.end) {
				continue
			}
			conflict := false
			for _, other := range assigned[key(p, iv.cls)] {
				if other.start <= iv.end && iv.start <= other.end {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			iv.preg = int32(p)
			assigned[key(p, iv.cls)] = append(assigned[key(p, iv.cls)], iv)
			if iv.cls == rcInt && tgt.IsCalleeSaved(p) {
				usedCallee[p] = true
			}
			done = true
			break
		}
		if done {
			continue
		}
		// Eviction: find a register whose conflicting intervals all have
		// lower weight; evict and retry them.
		bestP := -1
		var bestVictims []*gInterval
		bestW := iv.weight
		for _, p := range cands {
			if overlapsFixed(p, iv.cls, iv.start, iv.end) {
				continue
			}
			var victims []*gInterval
			var w float64
			for _, other := range assigned[key(p, iv.cls)] {
				if other.start <= iv.end && iv.start <= other.end {
					victims = append(victims, other)
					w += other.weight
				}
			}
			if w < bestW {
				bestW = w
				bestP = int(p)
				bestVictims = victims
			}
		}
		if bestP >= 0 {
			lst := assigned[key(uint8(bestP), iv.cls)]
			var kept []*gInterval
			for _, o := range lst {
				evict := false
				for _, v := range bestVictims {
					if o == v {
						evict = true
						break
					}
				}
				if !evict {
					kept = append(kept, o)
				}
			}
			assigned[key(uint8(bestP), iv.cls)] = append(kept, iv)
			iv.preg = int32(bestP)
			if iv.cls == rcInt && tgt.IsCalleeSaved(uint8(bestP)) {
				usedCallee[uint8(bestP)] = true
			}
			for _, v := range bestVictims {
				v.preg = -1
				queue = append(queue, v)
			}
			continue
		}
		// Spill.
		iv.slot = st.numSlots
		st.numSlots++
		st.spills++
	}

	// Propagate assignments to all coalesced members.
	repIv := make(map[mreg]*gInterval, len(ivs))
	for _, iv := range ivs {
		repIv[iv.vreg] = iv
	}
	for v := 0; v < nv; v++ {
		if iv, ok := repIv[find(mreg(v))]; ok {
			assignOf[v] = iv.preg
			slotOf[v] = iv.slot
		}
	}

	// Rewrite MIR: replace vregs with pregs; spilled operands go through
	// the reserved scratch registers with frame-index loads/stores.
	s0 := allGPR[len(allGPR)-2]
	s1 := allGPR[len(allGPR)-1]
	fs0 := uint8(tgt.NumFPR - 2)
	fs1 := uint8(tgt.NumFPR - 1)
	if tgt.IsCalleeSaved(s0) {
		usedCallee[s0] = true
	}
	if tgt.IsCalleeSaved(s1) {
		usedCallee[s1] = true
	}

	// Rematerialization: spilled vregs whose single definition is a plain
	// constant load are recomputed at each use instead of reloaded from
	// the stack (LLVM marks such intervals as rematerializable).
	rematImm := map[mreg]int64{}
	defCount := make([]int32, nv)
	for b := range mf.blocks {
		for i := range mf.blocks[b].insts {
			in := &mf.blocks[b].insts[i]
			visitMOperands(in, func(r *mreg, isDef bool, cls regClass) {
				if isDef && !isMPreg(*r) {
					defCount[*r]++
				}
			})
		}
	}
	for b := range mf.blocks {
		for i := range mf.blocks[b].insts {
			in := &mf.blocks[b].insts[i]
			if in.op == vt.MovRI && in.sym < 0 && !isMPreg(in.rd) && in.rd != mnone &&
				defCount[in.rd] == 1 && slotOf[in.rd] >= 0 {
				rematImm[in.rd] = in.imm
			}
		}
	}

	for b := range mf.blocks {
		blk := &mf.blocks[b]
		var out []minst
		for i := range blk.insts {
			in := blk.insts[i]
			var pre, post []minst
			scratchI := []uint8{s0, s1}
			scratchF := []uint8{fs0, fs1}
			// Spilled vregs appearing more than once in the same
			// instruction share one scratch (this also preserves the
			// two-address rd==ra constraint through spills).
			perInst := map[mreg]uint8{}
			var err error
			visitMOperands(&in, func(r *mreg, isDef bool, cls regClass) {
				if err != nil || isMPreg(*r) {
					return
				}
				v := *r
				if assignOf[v] >= 0 {
					*r = mpreg(uint8(assignOf[v]))
					return
				}
				if p, ok := perInst[v]; ok {
					*r = mpreg(p)
					if isDef {
						stn := newMinst(vt.Store64)
						if cls == rcFloat {
							stn.op = vt.FStore
						}
						stn.ra = mpreg(tgt.SP)
						stn.rb = mpreg(p)
						stn.imm = int64(slotOf[v])
						stn.sym = -2
						stn.inserted, stn.mval = true, v
						post = append(post, stn)
					}
					return
				}
				var p uint8
				if cls == rcFloat {
					if len(scratchF) == 0 {
						err = fmt.Errorf("lbe: greedy RA out of float scratch registers")
						return
					}
					p = scratchF[0]
					scratchF = scratchF[1:]
				} else {
					if len(scratchI) == 0 {
						err = fmt.Errorf("lbe: greedy RA out of scratch registers")
						return
					}
					p = scratchI[0]
					scratchI = scratchI[1:]
				}
				perInst[v] = p
				if slotOf[v] < 0 {
					// Dead value with no assignment.
					*r = mpreg(p)
					return
				}
				if isDef {
					if _, remat := rematImm[v]; !remat {
						stn := newMinst(vt.Store64)
						if cls == rcFloat {
							stn.op = vt.FStore
						}
						stn.ra = mpreg(tgt.SP)
						stn.rb = mpreg(p)
						stn.imm = int64(slotOf[v])
						stn.sym = -2
						stn.inserted, stn.mval = true, v
						post = append(post, stn)
					}
				} else if imm, remat := rematImm[v]; remat {
					mv := newMinst(vt.MovRI)
					mv.rd = mpreg(p)
					mv.imm = imm
					mv.inserted, mv.mval = true, v
					pre = append(pre, mv)
				} else {
					ld := newMinst(vt.Load64)
					if cls == rcFloat {
						ld.op = vt.FLoad
					}
					ld.rd = mpreg(p)
					ld.ra = mpreg(tgt.SP)
					ld.imm = int64(slotOf[v])
					ld.sym = -2
					ld.inserted, ld.mval = true, v
					pre = append(pre, ld)
				}
				*r = mpreg(p)
			})
			if err != nil {
				return nil, err
			}
			out = append(out, pre...)
			out = append(out, in)
			out = append(out, post...)
		}
		blk.insts = out
	}

	for p := range usedCallee {
		if usedCallee[p] {
			st.usedCallee = append(st.usedCallee, p)
		}
	}
	sort.Slice(st.usedCallee, func(i, j int) bool { return st.usedCallee[i] < st.usedCallee[j] })
	return st, nil
}

// computeFreqs estimates block execution frequencies from loop depth
// (the block-frequency analysis the greedy allocator requires).
func computeFreqs(mf *mfunc) {
	// Loop depth via back edges on the MIR CFG (dominator-based).
	n := len(mf.blocks)
	num := make([]int32, n)
	for i := range num {
		num[i] = -1
	}
	var rpo []int32
	seen := make([]bool, n)
	var dfs func(b int32)
	var post []int32
	dfs = func(b int32) {
		seen[b] = true
		for _, s := range mf.blocks[b].succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	for i, b := range rpo {
		num[b] = int32(i)
	}
	idom := make([]int32, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int32) int32 {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var ni int32 = -1
			for _, p := range mf.blocks[b].preds {
				if num[p] < 0 || idom[p] == -1 {
					continue
				}
				if ni == -1 {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != -1 && idom[b] != ni {
				idom[b] = ni
				changed = true
			}
		}
	}
	dominates := func(a, b int32) bool {
		if num[b] < 0 {
			return false
		}
		for {
			if a == b {
				return true
			}
			nx := idom[b]
			if nx == b || nx == -1 {
				return false
			}
			b = nx
		}
	}
	for b := range mf.blocks {
		mf.blocks[b].loopDepth = 0
	}
	for _, b := range rpo {
		for _, s := range mf.blocks[b].succs {
			if !dominates(s, b) {
				continue
			}
			// Loop body: preds of b back to s.
			inLoop := map[int32]bool{s: true}
			work := []int32{b}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if inLoop[x] {
					continue
				}
				inLoop[x] = true
				work = append(work, mf.blocks[x].preds...)
			}
			for blk := range inLoop {
				mf.blocks[blk].loopDepth++
			}
		}
	}
	for b := range mf.blocks {
		f := 1.0
		for d := int32(0); d < mf.blocks[b].loopDepth; d++ {
			f *= 10
		}
		mf.blocks[b].freq = f
	}
}
