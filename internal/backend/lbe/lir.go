// Package lbe implements the LLVM-like back-end studied in the paper: a
// flexible, multi-pass compiler framework with an optimized mode (-O2-style
// pipeline, SelectionDAG or GlobalISel instruction selection, greedy
// register allocation) and a cheap mode (-O0, FastISel with SelectionDAG
// fallbacks, fast register allocation), followed by an MC-layer assembly
// printer producing an in-memory ELF-like object that a JITLink-style
// four-phase linker maps into the executable address space.
//
// The IR deliberately mirrors LLVM's architecture where the paper
// attributes costs to it: values are heap-allocated objects linked by use
// lists, 128-bit integers are first-class (and a FastISel fallback cause),
// overflow arithmetic uses intrinsics returning {value, flag} structs, and
// the 16-byte string type is representable either as a {i64, i64} struct or
// as two scalar i64 values (the compile-time ablation of Sec. V-A2).
package lbe

import "fmt"

// TypeKind classifies LIR types.
type TypeKind uint8

// Type kinds.
const (
	KVoid TypeKind = iota
	KInt           // Bits: 1, 8, 16, 32, 64, 128
	KDouble
	KPtr
	KStruct // two-element aggregates only ({i64,i64}, {iN,i1})
)

// Type is an interned LIR type.
type Type struct {
	Kind   TypeKind
	Bits   int
	Fields []*Type
}

// Shared type singletons.
var (
	TVoid   = &Type{Kind: KVoid}
	TI1     = &Type{Kind: KInt, Bits: 1}
	TI8     = &Type{Kind: KInt, Bits: 8}
	TI16    = &Type{Kind: KInt, Bits: 16}
	TI32    = &Type{Kind: KInt, Bits: 32}
	TI64    = &Type{Kind: KInt, Bits: 64}
	TI128   = &Type{Kind: KInt, Bits: 128}
	TDouble = &Type{Kind: KDouble}
	TPtr    = &Type{Kind: KPtr}
	// TPair is the {i64, i64} struct used for 16-byte strings in struct
	// mode.
	TPair = &Type{Kind: KStruct, Fields: []*Type{TI64, TI64}}
	// TOvf64 and friends are the {iN, i1} overflow-intrinsic results.
	TOvf16  = &Type{Kind: KStruct, Fields: []*Type{TI16, TI1}}
	TOvf32  = &Type{Kind: KStruct, Fields: []*Type{TI32, TI1}}
	TOvf64  = &Type{Kind: KStruct, Fields: []*Type{TI64, TI1}}
	TOvf128 = &Type{Kind: KStruct, Fields: []*Type{TI128, TI1}}
)

func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KInt:
		return fmt.Sprintf("i%d", t.Bits)
	case KDouble:
		return "double"
	case KPtr:
		return "ptr"
	case KStruct:
		return fmt.Sprintf("{%s, %s}", t.Fields[0], t.Fields[1])
	}
	return "?"
}

// IsStruct reports aggregate types.
func (t *Type) IsStruct() bool { return t.Kind == KStruct }

// FitsInReg reports whether FastISel can handle values of this type (one
// machine register).
func (t *Type) FitsInReg() bool {
	switch t.Kind {
	case KInt:
		return t.Bits <= 64
	case KDouble, KPtr:
		return true
	}
	return false
}

// Opcode is an LIR instruction opcode.
type Opcode uint8

// LIR opcodes.
const (
	LOpInvalid Opcode = iota
	LOpConst          // integer constant (Imm / Imm2 for i128 high)
	LOpConstF         // double constant (bit pattern in Imm)
	LOpNull
	LOpFuncAddr // function index in Imm

	LOpAdd
	LOpSub
	LOpMul
	LOpSDiv
	LOpSRem
	LOpUDiv
	LOpURem
	LOpAnd
	LOpOr
	LOpXor
	LOpShl
	LOpLShr
	LOpAShr

	LOpICmp // Pred
	LOpFCmp

	LOpZExt
	LOpSExt
	LOpTrunc
	LOpSIToFP
	LOpFPToSI
	LOpBitcast

	LOpFAdd
	LOpFSub
	LOpFMul
	LOpFDiv
	LOpFNeg

	LOpGEP // ptr + Imm + idx*Scale
	LOpLoad
	LOpStore
	LOpAtomicRMWAdd

	LOpSelect
	LOpPhi
	LOpCallRT     // runtime call, RTID
	LOpIntrinsic  // IntrinsicID
	LOpExtractVal // field Imm of a struct
	LOpInsertVal
	LOpBuildPair // two scalars -> struct (function-return packing)

	LOpBr
	LOpCondBr
	LOpRet
	LOpUnreachable

	LOpNum
)

var lopNames = [LOpNum]string{
	LOpConst: "const", LOpConstF: "constf", LOpNull: "null", LOpFuncAddr: "funcaddr",
	LOpAdd: "add", LOpSub: "sub", LOpMul: "mul", LOpSDiv: "sdiv", LOpSRem: "srem",
	LOpUDiv: "udiv", LOpURem: "urem", LOpAnd: "and", LOpOr: "or", LOpXor: "xor",
	LOpShl: "shl", LOpLShr: "lshr", LOpAShr: "ashr",
	LOpICmp: "icmp", LOpFCmp: "fcmp",
	LOpZExt: "zext", LOpSExt: "sext", LOpTrunc: "trunc",
	LOpSIToFP: "sitofp", LOpFPToSI: "fptosi", LOpBitcast: "bitcast",
	LOpFAdd: "fadd", LOpFSub: "fsub", LOpFMul: "fmul", LOpFDiv: "fdiv", LOpFNeg: "fneg",
	LOpGEP: "getelementptr", LOpLoad: "load", LOpStore: "store",
	LOpAtomicRMWAdd: "atomicrmw.add",
	LOpSelect:       "select", LOpPhi: "phi", LOpCallRT: "call", LOpIntrinsic: "intrinsic",
	LOpExtractVal: "extractvalue", LOpInsertVal: "insertvalue", LOpBuildPair: "buildpair",
	LOpBr: "br", LOpCondBr: "condbr", LOpRet: "ret", LOpUnreachable: "unreachable",
}

func (o Opcode) String() string {
	if o < LOpNum && lopNames[o] != "" {
		return lopNames[o]
	}
	return fmt.Sprintf("lop(%d)", uint8(o))
}

// IsTerminator reports block-ending opcodes.
func (o Opcode) IsTerminator() bool {
	switch o {
	case LOpBr, LOpCondBr, LOpRet, LOpUnreachable:
		return true
	}
	return false
}

// HasSideEffects reports opcodes that cannot be erased when unused.
func (o Opcode) HasSideEffects() bool {
	switch o {
	case LOpStore, LOpAtomicRMWAdd, LOpCallRT, LOpIntrinsic,
		LOpBr, LOpCondBr, LOpRet, LOpUnreachable,
		LOpSDiv, LOpSRem, LOpUDiv, LOpURem:
		return true
	}
	return false
}

// IntrinsicID identifies the intrinsics the query front-end uses.
type IntrinsicID uint8

// Intrinsics.
const (
	IntrSAddOv IntrinsicID = iota // {iN, i1} sadd.with.overflow
	IntrSSubOv
	IntrSMulOv
	IntrCrc32  // i64 crc32c
	IntrRotr   // i64 rotr
	IntrMul128 // hand-optimized 128-bit multiplication helper call
	NumIntrinsics
)

var intrNames = [NumIntrinsics]string{
	"llvm.sadd.with.overflow", "llvm.ssub.with.overflow", "llvm.smul.with.overflow",
	"llvm.crc32c", "llvm.fshr", "umbra.mul128ov",
}

func (i IntrinsicID) String() string {
	if i < NumIntrinsics {
		return intrNames[i]
	}
	return "intr(?)"
}

// Instr is a heap-allocated LIR instruction, linked into its block and into
// the use lists of its operands.
type Instr struct {
	Op    Opcode
	Typ   *Type
	Ops   []*Instr // operands (nil entries not allowed; absent = short slice)
	Imm   int64
	Imm2  int64 // i128 constant high half
	Pred  uint8 // comparison predicate
	Scale int64 // GEP scale
	// Unchecked marks loads/stores whose bounds/null check was discharged
	// at compile time (qir.MemUnchecked); selectors emit the unchecked
	// machine ops for them.
	Unchecked bool
	RTID      uint32
	Intr      IntrinsicID
	// Blocks for terminators: Then/Else (or single target in Then).
	Then, Else *Block
	// Incoming blocks for phis, parallel to Ops.
	Inc []*Block

	Block *Block
	// Uses is the use list: instructions consuming this value.
	Uses []*Instr

	// id is assigned for printing and deterministic iteration.
	id int32
}

// Block is an LIR basic block.
type Block struct {
	Instrs []*Instr
	Preds  []*Block
	Fn     *Fn
	id     int32
}

// Fn is an LIR function.
type Fn struct {
	Name    string
	Blocks  []*Block
	Params  []*Instr // parameter pseudo-instructions (LOpInvalid op, typed)
	RetType *Type
	nextID  int32
	// NumValues counts allocated instruction objects (construction cost
	// metric).
	NumValues int64
}

// Module is an LIR module.
type Module struct {
	Name    string
	Fns     []*Fn
	RTNames []string
}

// NewFn creates a function with an entry block and typed parameters.
func (m *Module) NewFn(name string, ret *Type, params ...*Type) *Fn {
	f := &Fn{Name: name, RetType: ret}
	entry := f.NewBlock()
	_ = entry
	for _, pt := range params {
		p := &Instr{Op: LOpInvalid, Typ: pt, id: f.nextID}
		f.nextID++
		f.NumValues++
		f.Params = append(f.Params, p)
	}
	m.Fns = append(m.Fns, f)
	return f
}

// NewBlock appends an empty block.
func (f *Fn) NewBlock() *Block {
	b := &Block{Fn: f, id: int32(len(f.Blocks))}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Append creates an instruction in block b, wiring operand use lists.
func (b *Block) Append(in *Instr) *Instr {
	in.Block = b
	in.id = b.Fn.nextID
	b.Fn.nextID++
	b.Fn.NumValues++
	b.Instrs = append(b.Instrs, in)
	for _, op := range in.Ops {
		op.Uses = append(op.Uses, in)
	}
	return in
}

// RemoveUse unlinks one use of v by user.
func (v *Instr) RemoveUse(user *Instr) {
	for i, u := range v.Uses {
		if u == user {
			v.Uses = append(v.Uses[:i], v.Uses[i+1:]...)
			return
		}
	}
}

// ReplaceAllUses rewrites every use of v to use w.
func (v *Instr) ReplaceAllUses(w *Instr) {
	for _, user := range v.Uses {
		for i, op := range user.Ops {
			if op == v {
				user.Ops[i] = w
				w.Uses = append(w.Uses, user)
			}
		}
	}
	v.Uses = v.Uses[:0]
}

// Succs returns the successor blocks of b.
func (b *Block) Succs() []*Block {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	switch t.Op {
	case LOpBr:
		return []*Block{t.Then}
	case LOpCondBr:
		return []*Block{t.Then, t.Else}
	}
	return nil
}

// Term returns the block terminator (nil if missing).
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// eraseDead removes an unused, side-effect-free instruction from its block,
// unlinking operand uses. Reports whether it was removed.
func (in *Instr) eraseDead() bool {
	if len(in.Uses) != 0 || in.Op.HasSideEffects() || in.Op == LOpPhi || in.Op == LOpInvalid {
		return false
	}
	b := in.Block
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			break
		}
	}
	for _, op := range in.Ops {
		op.RemoveUse(in)
	}
	return true
}
