package lbe

import (
	"fmt"

	"qcc/internal/mcv"
	"qcc/internal/vt"
)

// snapshotMIR copies the instruction stream before register allocation (the
// allocators rewrite minsts in place), for the verifier's lockstep pairing.
func snapshotMIR(mf *mfunc) [][]minst {
	out := make([][]minst, len(mf.blocks))
	for b := range mf.blocks {
		out[b] = append([]minst(nil), mf.blocks[b].insts...)
	}
	return out
}

// buildMCheckFunc adapts allocated MIR into the verifier's model by pairing
// every surviving instruction with its pre-allocation twin in lockstep: the
// twin supplies the virtual registers, the allocated instruction the physical
// locations. Allocator-inserted spill/reload/remat code carries its own
// inserted/mval markers; sym == -2 immediates are raw frame indices at this
// point (prologue insertion scales them to byte offsets later).
func buildMCheckFunc(mf *mfunc, pre [][]minst, ra *raState, tgt *vt.Target) (*mcv.Func, []mcv.Diag) {
	f := &mcv.Func{
		Name: mf.name, Target: tgt,
		Saved:    append([]uint8{}, ra.usedCallee...),
		NumSlots: ra.numSlots,
	}
	var diags []mcv.Diag
	bad := func(b int32, i int, format string, args ...any) {
		diags = append(diags, mcv.Diag{
			Func: mf.name, Block: b, Inst: i, Off: -1,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	regLoc := func(r mreg, cls regClass) (mcv.Loc, bool) {
		if !isMPreg(r) {
			return mcv.LocNone, false
		}
		if cls == rcFloat {
			return mcv.FPR(mpregNum(r)), true
		}
		return mcv.GPR(mpregNum(r)), true
	}

	type opnd struct {
		r   mreg
		def bool
		cls regClass
	}
	for b := range mf.blocks {
		blk := &mf.blocks[b]
		cb := mcv.Block{Succs: append([]int32{}, blk.succs...)}
		k := 0
		for i := range blk.insts {
			in := &blk.insts[i]
			ci := len(cb.Insts)
			if in.inserted {
				switch in.op {
				case vt.Load64, vt.FLoad:
					cls := rcInt
					if in.op == vt.FLoad {
						cls = rcFloat
					}
					dst, ok := regLoc(in.rd, cls)
					if !ok {
						bad(int32(b), ci, "inserted reload of v%d has non-physical destination", in.mval)
						continue
					}
					cb.Insts = append(cb.Insts, mcv.Inst{
						Kind: mcv.KindReload, Op: in.op,
						Move: mcv.Move{SrcV: in.mval, DstV: in.mval, Src: mcv.Slot(int32(in.imm)), Dst: dst},
					})
				case vt.Store64, vt.FStore:
					cls := rcInt
					if in.op == vt.FStore {
						cls = rcFloat
					}
					src, ok := regLoc(in.rb, cls)
					if !ok {
						bad(int32(b), ci, "inserted spill of v%d has non-physical source", in.mval)
						continue
					}
					cb.Insts = append(cb.Insts, mcv.Inst{
						Kind: mcv.KindSpill, Op: in.op,
						Move: mcv.Move{SrcV: in.mval, DstV: in.mval, Src: src, Dst: mcv.Slot(int32(in.imm))},
					})
				case vt.MovRI:
					dst, ok := regLoc(in.rd, rcInt)
					if !ok {
						bad(int32(b), ci, "inserted remat of v%d has non-physical destination", in.mval)
						continue
					}
					cb.Insts = append(cb.Insts, mcv.Inst{
						Kind: mcv.KindRemat, Op: in.op,
						Move: mcv.Move{SrcV: -1, DstV: in.mval, Src: mcv.LocNone, Dst: dst},
					})
				default:
					bad(int32(b), ci, "unrecognized allocator-inserted %s", in.op)
				}
				continue
			}

			if k >= len(pre[b]) {
				bad(int32(b), ci, "post-RA block has more original instructions than pre-RA")
				break
			}
			snap := &pre[b][k]
			k++
			if snap.op != in.op {
				bad(int32(b), ci, "pairing mismatch: post-RA %s vs pre-RA %s", in.op, snap.op)
				continue
			}
			var post, prev []opnd
			visitMOperands(in, func(r *mreg, isDef bool, cls regClass) {
				post = append(post, opnd{*r, isDef, cls})
			})
			visitMOperands(snap, func(r *mreg, isDef bool, cls regClass) {
				prev = append(prev, opnd{*r, isDef, cls})
			})
			if len(post) != len(prev) {
				bad(int32(b), ci, "%s: %d operands post-RA vs %d pre-RA", in.op, len(post), len(prev))
				continue
			}
			inst := mcv.Inst{Op: in.op, Call: in.isCall}
			for j := range post {
				loc, ok := regLoc(post[j].r, post[j].cls)
				if !ok {
					bad(int32(b), ci, "%s operand %d still virtual after allocation: %%%d", in.op, j, post[j].r)
					continue
				}
				v := int32(-1)
				if !isMPreg(prev[j].r) {
					v = prev[j].r
				}
				inst.Ops = append(inst.Ops, mcv.Operand{V: v, Loc: loc, Def: post[j].def})
			}
			cb.Insts = append(cb.Insts, inst)
		}
		if k < len(pre[b]) {
			bad(int32(b), len(cb.Insts), "register allocation dropped %d instructions", len(pre[b])-k)
		}
		f.Blocks = append(f.Blocks, cb)
	}
	return f, diags
}
