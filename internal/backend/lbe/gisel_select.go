package lbe

import (
	"fmt"

	"qcc/internal/vt"
)

// instructionSelect maps the legalized gMIR onto machine instructions (the
// fourth GlobalISel pass). Every generic vreg becomes one machine vreg.
func (g *gISel) instructionSelect(fn *Fn, gf *gfunc) (*mfunc, error) {
	mf := g.mf
	m := make([]mreg, len(gf.types))
	for v := range m {
		m[v] = mf.newVReg(gf.banks[v])
	}
	r := func(v gvr) mreg {
		if v == gnone {
			return mnone
		}
		return m[v]
	}
	for bi := range gf.blocks {
		g.cur = int32(bi)
		for i := range gf.blocks[bi] {
			gi := &gf.blocks[bi][i]
			if err := g.selectOne(gi, r); err != nil {
				return nil, fmt.Errorf("lbe: gisel: %w", err)
			}
		}
	}
	return mf, nil
}

func (g *gISel) selectOne(gi *ginst, r func(gvr) mreg) error {
	is := g.isel
	switch gi.op {
	case gopParam:
		if gi.imm2 == 1 {
			m := newMinst(vt.FMovRR)
			m.rd, m.ra = r(gi.dst), mpreg(uint8(gi.imm))
			is.emit(m)
		} else {
			is.emit3(vt.MovRR, r(gi.dst), mpreg(uint8(gi.imm)), mnone)
		}
	case LOpConst:
		is.emitMovI(r(gi.dst), gi.imm)
	case LOpConstF:
		m := newMinst(vt.FMovRI)
		m.rd, m.imm = r(gi.dst), gi.imm
		is.emit(m)
	case LOpNull:
		is.emitMovI(r(gi.dst), 0)
	case LOpFuncAddr:
		m := newMinst(vt.MovRI)
		m.rd, m.sym = r(gi.dst), gi.sym
		is.emit(m)

	case LOpAdd, LOpSub, LOpMul, LOpSDiv, LOpSRem, LOpUDiv, LOpURem,
		LOpAnd, LOpOr, LOpXor, LOpShl, LOpLShr, LOpAShr:
		bits := 64
		if gi.ty.Kind == KInt {
			bits = gi.ty.Bits
		}
		a, b := r(gi.srcs[0]), r(gi.srcs[1])
		d := r(gi.dst)
		if gi.op == LOpLShr && bits < 64 {
			t := is.temp()
			is.zextInto(bits, t, a)
			a = t
		}
		if bits < 64 {
			t := is.temp()
			is.emit3(fiBinMap[gi.op], t, a, b)
			switch gi.op {
			case LOpAnd, LOpOr, LOpXor, LOpAShr, LOpSDiv, LOpSRem:
				is.emit3(vt.MovRR, d, t, mnone)
			default:
				is.canonInto(bits, d, t)
			}
		} else {
			is.emit3(fiBinMap[gi.op], d, a, b)
		}

	case gopMulWide:
		m := newMinst(vt.MulWideU)
		m.rd, m.rc, m.ra, m.rb = r(gi.dst), r(gi.dst2), r(gi.srcs[0]), r(gi.srcs[1])
		is.emit(m)

	case LOpICmp:
		m := newMinst(vt.SetCC)
		m.cond = vt.Cond(gi.pred)
		m.rd, m.ra, m.rb = r(gi.dst), r(gi.srcs[0]), r(gi.srcs[1])
		is.emit(m)
	case LOpFCmp:
		m := newMinst(vt.FCmp)
		m.cond = vt.Cond(gi.pred)
		m.rd, m.ra, m.rb = r(gi.dst), r(gi.srcs[0]), r(gi.srcs[1])
		is.emit(m)

	case LOpZExt:
		is.zextInto(g.gvrBits(gi.srcs[0]), r(gi.dst), r(gi.srcs[0]))
	case LOpSExt:
		is.emit3(vt.MovRR, r(gi.dst), r(gi.srcs[0]), mnone)
	case LOpTrunc:
		is.canonInto(gi.ty.Bits, r(gi.dst), r(gi.srcs[0]))
	case LOpSIToFP:
		is.emit3(vt.CvtSI2F, r(gi.dst), r(gi.srcs[0]), mnone)
	case LOpFPToSI:
		t := is.temp()
		is.emit3(vt.CvtF2SI, t, r(gi.srcs[0]), mnone)
		is.canonInto(gi.ty.Bits, r(gi.dst), t)
	case LOpBitcast:
		if gi.ty == TDouble {
			is.emit3(vt.MovFR, r(gi.dst), r(gi.srcs[0]), mnone)
		} else {
			is.emit3(vt.MovRF, r(gi.dst), r(gi.srcs[0]), mnone)
		}

	case LOpFAdd, LOpFSub, LOpFMul, LOpFDiv:
		var op vt.Op
		switch gi.op {
		case LOpFAdd:
			op = vt.FAdd
		case LOpFSub:
			op = vt.FSub
		case LOpFMul:
			op = vt.FMul
		default:
			op = vt.FDiv
		}
		is.emit3(op, r(gi.dst), r(gi.srcs[0]), r(gi.srcs[1]))
	case LOpFNeg:
		t := is.temp()
		is.emit3(vt.MovRF, t, r(gi.srcs[0]), mnone)
		t2 := is.temp()
		is.emitMovI(t2, -1<<63)
		t3 := is.temp()
		is.emit3(vt.Xor, t3, t, t2)
		is.emit3(vt.MovFR, r(gi.dst), t3, mnone)

	case LOpGEP:
		base := r(gi.srcs[0])
		d := r(gi.dst)
		if gi.srcs[1] != gnone {
			idx := r(gi.srcs[1])
			t := is.temp()
			if gi.scale != 1 {
				is.emitImm(vt.MulI, t, idx, gi.scale)
			} else {
				is.emit3(vt.MovRR, t, idx, mnone)
			}
			t2 := is.temp()
			is.emit3(vt.Add, t2, base, t)
			is.emitImm(vt.Lea, d, t2, gi.imm)
		} else {
			is.emitImm(vt.Lea, d, base, gi.imm)
		}

	case LOpLoad:
		is.lowerLoad(gi.ty, mval{a: r(gi.dst), b: mnone}, r(gi.srcs[0]), 0, gi.unchecked)
	case gopLoadPair:
		is.emitImm(uncheckedOp(vt.Load64, gi.unchecked), r(gi.dst), r(gi.srcs[0]), 0)
		is.emitImm(uncheckedOp(vt.Load64, gi.unchecked), r(gi.dst2), r(gi.srcs[0]), 8)
	case LOpStore:
		is.lowerStore(g.gvrType(gi.srcs[1]), mval{a: r(gi.srcs[1]), b: mnone}, r(gi.srcs[0]), 0, gi.unchecked)
	case gopStorePair:
		m := newMinst(uncheckedOp(vt.Store64, gi.unchecked))
		m.ra, m.rb = r(gi.srcs[0]), r(gi.srcs[1])
		is.emit(m)
		m2 := newMinst(uncheckedOp(vt.Store64, gi.unchecked))
		m2.ra, m2.rb, m2.imm = r(gi.srcs[0]), r(gi.srcs[2]), 8
		is.emit(m2)
	case LOpAtomicRMWAdd:
		old := r(gi.dst)
		is.lowerLoad(gi.ty, mval{a: old, b: mnone}, r(gi.srcs[0]), 0, false)
		sum := is.temp()
		is.emit3(vt.Add, sum, old, r(gi.srcs[1]))
		t := is.temp()
		is.canonInto(gi.ty.Bits, t, sum)
		is.lowerStore(gi.ty, mval{a: t, b: mnone}, r(gi.srcs[0]), 0, false)

	case LOpSelect:
		is.lowerSelect(mval{a: r(gi.dst), b: mnone}, r(gi.srcs[0]),
			mval{a: r(gi.srcs[1]), b: mnone}, mval{a: r(gi.srcs[2]), b: mnone}, gi.ty)

	case LOpCallRT:
		reg := 0
		for _, a := range gi.args {
			if reg >= len(is.tgt.IntArgs) {
				return fmt.Errorf("too many call arguments")
			}
			if g.gvrType(a).Kind == KDouble {
				t := is.temp()
				is.emit3(vt.MovRF, t, r(a), mnone)
				is.emit3(vt.MovRR, mpreg(is.tgt.IntArgs[reg]), t, mnone)
			} else {
				is.emit3(vt.MovRR, mpreg(is.tgt.IntArgs[reg]), r(a), mnone)
			}
			reg++
		}
		c := newMinst(vt.CallRT)
		c.imm = int64(gi.rtid)
		c.isCall = true
		is.emit(c)
		if gi.dst != gnone {
			if g.gvrType(gi.dst).Kind == KDouble {
				is.emit3(vt.MovFR, r(gi.dst), mpreg(is.tgt.IntRet[0]), mnone)
			} else {
				is.emit3(vt.MovRR, r(gi.dst), mpreg(is.tgt.IntRet[0]), mnone)
			}
		}
		if gi.dst2 != gnone {
			is.emit3(vt.MovRR, r(gi.dst2), mpreg(is.tgt.IntRet[1]), mnone)
		}

	case LOpIntrinsic:
		switch gi.intr {
		case IntrCrc32:
			is.emit3(vt.Crc32, r(gi.dst), r(gi.srcs[0]), r(gi.srcs[1]))
		case IntrRotr:
			is.emit3(vt.Rotr, r(gi.dst), r(gi.srcs[0]), r(gi.srcs[1]))
		case IntrSAddOv, IntrSSubOv, IntrSMulOv:
			return g.selectOvf(gi, r)
		default:
			return fmt.Errorf("unimplemented intrinsic %s", gi.intr)
		}

	case LOpExtractVal:
		// Narrow {iN, i1} extraction from expanded intrinsics.
		src := gi.srcs[0]
		_ = src
		return fmt.Errorf("unexpanded extractvalue survived legalization")

	case LOpPhi:
		p := newMinst(vt.Nop)
		p.rd = r(gi.dst)
		p.phi = &phiInfo{}
		for k := range gi.phiSrcs {
			p.phi.srcs = append(p.phi.srcs, r(gi.phiSrcs[k]))
			p.phi.blocks = append(p.phi.blocks, gi.phiBlocks[k])
		}
		is.emit(p)

	case LOpBr:
		is.emitBr(gi.thenB)
	case LOpCondBr:
		is.emitCondBr(r(gi.srcs[0]), gi.thenB, gi.elseB)
	case LOpRet:
		if gi.srcs[0] != gnone {
			if g.gvrType(gi.srcs[0]).Kind == KDouble {
				is.emit3(vt.MovRF, mpreg(is.tgt.IntRet[0]), r(gi.srcs[0]), mnone)
			} else {
				is.emit3(vt.MovRR, mpreg(is.tgt.IntRet[0]), r(gi.srcs[0]), mnone)
			}
		}
		is.emit(newMinst(vt.Ret))
	case gopRetPair:
		is.emit3(vt.MovRR, mpreg(is.tgt.IntRet[0]), r(gi.srcs[0]), mnone)
		is.emit3(vt.MovRR, mpreg(is.tgt.IntRet[1]), r(gi.srcs[1]), mnone)
		is.emit(newMinst(vt.Ret))
	case LOpUnreachable:
		m := newMinst(vt.Trap)
		m.imm = int64(vt.TrapUnreachable)
		is.emit(m)

	default:
		return fmt.Errorf("cannot select %s", gi.op)
	}
	return nil
}

// selectOvf expands narrow overflow intrinsics at selection time.
func (g *gISel) selectOvf(gi *ginst, r func(gvr) mreg) error {
	is := g.isel
	bits := gi.ty.Fields[0].Bits
	a, b := r(gi.srcs[0]), r(gi.srcs[1])
	val, flag := r(gi.dst), r(gi.dst2)
	if flag == mnone {
		flag = is.temp()
	}
	if bits < 64 {
		var op vt.Op
		switch gi.intr {
		case IntrSAddOv:
			op = vt.Add
		case IntrSSubOv:
			op = vt.Sub
		default:
			op = vt.Mul
		}
		wide := is.temp()
		is.emit3(op, wide, a, b)
		is.canonInto(bits, val, wide)
		m := newMinst(vt.SetCC)
		m.cond = vt.CondNE
		m.rd, m.ra, m.rb = flag, val, wide
		is.emit(m)
		return nil
	}
	switch gi.intr {
	case IntrSAddOv, IntrSSubOv:
		op := vt.Add
		if gi.intr == IntrSSubOv {
			op = vt.Sub
		}
		is.emit3(op, val, a, b)
		t1, t2 := is.temp(), is.temp()
		if gi.intr == IntrSAddOv {
			is.emit3(vt.Xor, t1, val, a)
			is.emit3(vt.Xor, t2, val, b)
		} else {
			is.emit3(vt.Xor, t1, a, b)
			is.emit3(vt.Xor, t2, val, a)
		}
		t3 := is.temp()
		is.emit3(vt.And, t3, t1, t2)
		is.emitImm(vt.ShrI, flag, t3, 63)
	default:
		hi := is.temp()
		m := newMinst(vt.MulWideS)
		m.rd, m.rc, m.ra, m.rb = val, hi, a, b
		is.emit(m)
		t := is.temp()
		is.emitImm(vt.SarI, t, val, 63)
		t2 := is.temp()
		is.emit3(vt.Xor, t2, t, hi)
		z := is.temp()
		is.emitMovI(z, 0)
		sc := newMinst(vt.SetCC)
		sc.cond = vt.CondNE
		sc.rd, sc.ra, sc.rb = flag, t2, z
		is.emit(sc)
	}
	return nil
}

// gf is stored for type queries during selection.
func (g *gISel) gvrType(v gvr) *Type {
	if v == gnone {
		return TVoid
	}
	return g.gtypes[v]
}

func (g *gISel) gvrBits(v gvr) int {
	t := g.gvrType(v)
	if t.Kind == KInt {
		return t.Bits
	}
	return 64
}
