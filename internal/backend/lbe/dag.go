package lbe

import (
	"fmt"
	"math"

	"qcc/internal/vt"
)

// selectionDAG is the graph-based instruction selector. For each lowered
// range (a whole block in optimized mode; fallback ranges in cheap mode) it
// builds a DAG of generic operation nodes, runs the combiner (with the
// recursive known-bits analysis the paper highlights as expensive),
// legalizes 128-bit and struct-typed nodes into 64-bit pairs, selects
// machine operations, and schedules the result into linear MIR.
type selectionDAG struct {
	*isel
	// Phase timings are accumulated by the engine through these counters.
	nodesBuilt int64
	kbQueries  int64
	// flags holds the overflow flag registers of expanded 128-bit
	// overflow intrinsics.
	flags map[*dnode]mreg
}

const (
	specNone uint8 = iota
	specCopyFromReg
	// specProj extracts one 64-bit half (imm = 0 lo, 1 hi) of a wide node
	// whose value materializes only at emission (loads, calls, wide
	// intrinsic results).
	specProj
)

// dnode is one DAG node.
type dnode struct {
	op      Opcode
	special uint8
	ty      *Type
	ops     []*dnode
	chain   *dnode
	pred    uint8
	imm     int64
	imm2    int64
	scale   int64
	rtid    uint32
	intr    IntrinsicID
	sym     int32
	thenB   int32
	elseB   int32
	vr      mval // copyFromReg source
	nuses   int

	// legalized halves for wide nodes.
	lo, hi *dnode

	// unchecked carries the LIR check-elimination mark for loads/stores.
	unchecked bool

	// emission state.
	visited bool
	res     mval
}

// lowerRange runs the full DAG pipeline over instrs [from, to) of block b.
func (dag *selectionDAG) lowerRange(b *Block, from, to int, mb int32) error {
	dag.cur = mb
	if dag.flags == nil {
		dag.flags = map[*dnode]mreg{}
	}
	nodes := map[*Instr]*dnode{}
	var order []*dnode
	var chain *dnode
	var roots []*dnode
	inRange := func(x *Instr) bool {
		if x.Block != b {
			return false
		}
		for i := from; i < to; i++ {
			if b.Instrs[i] == x {
				return true
			}
		}
		return false
	}

	// Phase 1: build.
	getOp := func(v *Instr) *dnode {
		if n, ok := nodes[v]; ok {
			return n
		}
		// External value: CopyFromReg leaf.
		n := &dnode{special: specCopyFromReg, ty: v.Typ, vr: dag.getVal(v)}
		nodes[v] = n
		order = append(order, n)
		dag.nodesBuilt++
		return n
	}
	for i := from; i < to; i++ {
		in := b.Instrs[i]
		if in.Op == LOpPhi {
			dag.lowerPhi(in)
			continue
		}
		n := &dnode{
			op: in.Op, ty: in.Typ, pred: in.Pred, imm: in.Imm, imm2: in.Imm2,
			scale: in.Scale, rtid: in.RTID, intr: in.Intr, unchecked: in.Unchecked,
		}
		if in.Op == LOpFuncAddr {
			n.sym = int32(in.Imm)
		}
		for _, op := range in.Ops {
			o := getOp(op)
			o.nuses++
			n.ops = append(n.ops, o)
		}
		if in.Then != nil {
			n.thenB = dag.blockID(in.Then)
		}
		if in.Else != nil {
			n.elseB = dag.blockID(in.Else)
		}
		if in.Op.HasSideEffects() || in.Op == LOpLoad {
			n.chain = chain
			chain = n
		}
		nodes[in] = n
		order = append(order, n)
		dag.nodesBuilt++
		// Values used outside the range are copied to their vregs.
		needCopy := false
		for _, u := range in.Uses {
			if !inRange(u) {
				needCopy = true
				break
			}
		}
		if needCopy && in.Typ != TVoid {
			roots = append(roots, n)
			n.nuses++
			// Ensure a stable vreg exists.
			dag.getVal(in)
		}
	}
	if chain != nil {
		roots = append(roots, chain)
	}

	// Phase 2: combine, iterated to a fixpoint (LLVM re-queues combined
	// nodes on a worklist until quiescent).
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if dag.combine(n) {
				changed = true
			}
		}
	}

	// Phase 3: legalize wide nodes reachable from roots.
	for _, n := range order {
		if wideType(n.ty) || n.ty != nil && n.ty.Kind == KStruct {
			if err := dag.legalize(n); err != nil {
				return err
			}
		}
	}

	// Phase 4+5: select and schedule (DFS emission in dependency order).
	// Chained side effects first, then copies of externally-used values
	// into their stable vregs, and the terminator last.
	var term *dnode
	for i := from; i < to; i++ {
		in := b.Instrs[i]
		if in.Op == LOpPhi {
			continue
		}
		if in.Op.IsTerminator() {
			term = nodes[in]
		}
	}
	if chain != nil && chain != term {
		if err := dag.emitNode(chain); err != nil {
			return err
		}
	}
	for i := from; i < to; i++ {
		in := b.Instrs[i]
		if in.Op == LOpPhi || in.Op.IsTerminator() {
			continue
		}
		n := nodes[in]
		isRoot := false
		for _, r := range roots {
			if r == n && n.ty != TVoid {
				isRoot = true
				break
			}
		}
		if !isRoot {
			continue
		}
		if err := dag.emitNode(n); err != nil {
			return err
		}
		mv := dag.vals[in]
		if n.res.a != mv.a && n.res.a != mnone {
			if n.ty.Kind == KDouble {
				dag.emit3(vt.FMovRR, mv.a, n.res.a, mnone)
			} else {
				dag.emit3(vt.MovRR, mv.a, n.res.a, mnone)
			}
		}
		if mv.b != mnone && n.res.b != mv.b && n.res.b != mnone {
			dag.emit3(vt.MovRR, mv.b, n.res.b, mnone)
		}
	}
	if term != nil {
		if err := dag.emitNode(term); err != nil {
			return err
		}
	}
	return nil
}

// isConst reports a constant node and its value (≤64-bit only).
func isConst(n *dnode) (int64, bool) {
	if n.op == LOpConst && n.special == specNone && !wideType(n.ty) {
		return n.imm, true
	}
	return 0, false
}

// combine applies local simplifications and reports whether the node
// changed; the recursive known-bits analysis backs the demanded-bits rules
// and runs for every integer operation, as in LLVM's combiner.
func (dag *selectionDAG) combine(n *dnode) bool {
	if n.special != specNone {
		return false
	}
	switch n.op {
	case LOpAdd, LOpSub, LOpMul, LOpAnd, LOpOr, LOpXor, LOpShl, LOpLShr, LOpAShr:
		if len(n.ops) != 2 || wideType(n.ty) {
			return false
		}
		dag.knownBits(n, 0)
		a, aok := isConst(n.ops[0])
		b, bok := isConst(n.ops[1])
		if aok && bok {
			folded := foldBinOp(n.op, n.ty, a, b)
			n.op = LOpConst
			n.imm = folded
			n.ops = nil
			return true
		}
		if bok {
			switch {
			case b == 0 && (n.op == LOpAdd || n.op == LOpSub || n.op == LOpOr ||
				n.op == LOpXor || n.op == LOpShl || n.op == LOpLShr || n.op == LOpAShr):
				*n = *n.ops[0]
				return true
			case b == 1 && n.op == LOpMul:
				*n = *n.ops[0]
				return true
			case n.op == LOpAnd:
				// Known-bits: drop masks that clear only bits already
				// known to be zero.
				zeros, _ := dag.knownBits(n.ops[0], 0)
				if ^zeros&^uint64(b) == 0 {
					*n = *n.ops[0]
					return true
				}
			}
		}
		// Reassociate add(add(x, c1), c2).
		if n.op == LOpAdd && bok {
			inner := n.ops[0]
			if inner.op == LOpAdd && len(inner.ops) == 2 {
				if c1, ok := isConst(inner.ops[1]); ok {
					n.ops[0] = inner.ops[0]
					n.ops[1] = &dnode{op: LOpConst, ty: n.ty, imm: c1 + b}
					return true
				}
			}
		}
	case LOpICmp:
		a, aok := isConst(n.ops[0])
		b, bok := isConst(n.ops[1])
		if aok && bok {
			r := int64(0)
			if evalPred(n.pred, a, b) {
				r = 1
			}
			n.op = LOpConst
			n.ty = TI1
			n.imm = r
			n.ops = nil
			return true
		}
	case LOpSelect:
		if c, ok := isConst(n.ops[0]); ok {
			if c != 0 {
				*n = *n.ops[1]
			} else {
				*n = *n.ops[2]
			}
			return true
		}
	case LOpZExt, LOpSExt:
		// zext(const)/sext(const) folding.
		if c, ok := isConst(n.ops[0]); ok && !wideType(n.ty) {
			if n.op == LOpZExt {
				c = int64(maskTo(uint64(c), n.ops[0].ty.Bits))
			}
			n.op = LOpConst
			n.imm = c
			n.ops = nil
			return true
		}
	}
	return false
}

func nodeOp(n *dnode) Opcode { return n.op }

func foldBin(op Opcode, t *Type, a, b int64) int64 { return foldBinOp(op, t, a, b) }

func foldBinOp(op Opcode, t *Type, a, b int64) int64 {
	var r int64
	switch op {
	case LOpAdd:
		r = a + b
	case LOpSub:
		r = a - b
	case LOpMul:
		r = a * b
	case LOpAnd:
		r = a & b
	case LOpOr:
		r = a | b
	case LOpXor:
		r = a ^ b
	case LOpShl:
		r = a << (uint64(b) & 63)
	case LOpLShr:
		r = int64(maskTo(uint64(a), t.Bits) >> (uint64(b) & 63))
	case LOpAShr:
		r = a >> (uint64(b) & 63)
	default:
		return a
	}
	return canon64(r, t.Bits)
}

func maskTo(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

func canon64(v int64, bits int) int64 {
	switch bits {
	case 1:
		return v & 1
	case 8:
		return int64(int8(v))
	case 16:
		return int64(int16(v))
	case 32:
		return int64(int32(v))
	}
	return v
}

func evalPred(p uint8, a, b int64) bool {
	switch vt.Cond(p) {
	case vt.CondEQ:
		return a == b
	case vt.CondNE:
		return a != b
	case vt.CondSLT:
		return a < b
	case vt.CondSLE:
		return a <= b
	case vt.CondSGT:
		return a > b
	case vt.CondSGE:
		return a >= b
	case vt.CondULT:
		return uint64(a) < uint64(b)
	case vt.CondULE:
		return uint64(a) <= uint64(b)
	case vt.CondUGT:
		return uint64(a) > uint64(b)
	case vt.CondUGE:
		return uint64(a) >= uint64(b)
	}
	return false
}

// knownBits computes which bits of a node are known zero/one, by recursive
// traversal (the analysis the paper identifies as a substantial part of
// DAG-combine time).
func (dag *selectionDAG) knownBits(n *dnode, depth int) (zeros, ones uint64) {
	dag.kbQueries++
	if depth > 6 || n.ty == nil || n.ty.Kind != KInt || n.ty.Bits > 64 {
		return 0, 0
	}
	switch {
	case n.op == LOpConst && n.special == specNone:
		return ^uint64(n.imm), uint64(n.imm)
	case n.special != specNone:
		return 0, 0
	}
	switch n.op {
	case LOpAnd:
		z0, o0 := dag.knownBits(n.ops[0], depth+1)
		z1, o1 := dag.knownBits(n.ops[1], depth+1)
		return z0 | z1, o0 & o1
	case LOpOr:
		z0, o0 := dag.knownBits(n.ops[0], depth+1)
		z1, o1 := dag.knownBits(n.ops[1], depth+1)
		return z0 & z1, o0 | o1
	case LOpXor:
		z0, o0 := dag.knownBits(n.ops[0], depth+1)
		z1, o1 := dag.knownBits(n.ops[1], depth+1)
		return z0&z1 | o0&o1, z0&o1 | o0&z1
	case LOpZExt:
		src := n.ops[0]
		z, o := dag.knownBits(src, depth+1)
		hiMask := ^maskTo(^uint64(0), src.ty.Bits)
		return z&^hiMask | hiMask, o &^ hiMask
	case LOpShl:
		if c, ok := isConst(n.ops[1]); ok {
			z, o := dag.knownBits(n.ops[0], depth+1)
			sh := uint(c) & 63
			return z<<sh | (1<<sh - 1), o << sh
		}
	case LOpLShr:
		if c, ok := isConst(n.ops[1]); ok {
			z, o := dag.knownBits(n.ops[0], depth+1)
			sh := uint(c) & 63
			return z>>sh | ^(^uint64(0) >> sh), o >> sh
		}
	case LOpICmp:
		return ^uint64(1), 0
	}
	return 0, 0
}

var _ = math.MaxInt64

// pairOf allocates legalized halves for a wide node if absent.
func (dag *selectionDAG) pairOf(n *dnode) (*dnode, *dnode, error) {
	if n.lo != nil {
		return n.lo, n.hi, nil
	}
	if err := dag.legalize(n); err != nil {
		return nil, nil, err
	}
	if n.lo == nil {
		return nil, nil, fmt.Errorf("lbe: node %s not legalizable", n.op)
	}
	return n.lo, n.hi, nil
}

func dnodeBin(op Opcode, t *Type, a, b *dnode) *dnode {
	return &dnode{op: op, ty: t, ops: []*dnode{a, b}}
}

func dnodeCmp(p vt.Cond, a, b *dnode) *dnode {
	return &dnode{op: LOpICmp, ty: TI1, pred: uint8(p), ops: []*dnode{a, b}}
}

func dconst(t *Type, v int64) *dnode { return &dnode{op: LOpConst, ty: t, imm: v} }

// legalize expands a wide node into lo/hi 64-bit generic nodes.
func (dag *selectionDAG) legalize(n *dnode) error {
	if n.lo != nil || n.ty == nil {
		return nil
	}
	if !wideType(n.ty) {
		return nil
	}
	switch {
	case n.special == specCopyFromReg:
		n.lo = &dnode{special: specCopyFromReg, ty: TI64, vr: mval{a: n.vr.a, b: mnone}}
		n.hi = &dnode{special: specCopyFromReg, ty: TI64, vr: mval{a: n.vr.b, b: mnone}}
		return nil
	}
	switch n.op {
	case LOpConst:
		if n.ty.Kind == KStruct {
			// Undef aggregate shell (insertvalue fills it).
			n.lo = dconst(TI64, 0)
			n.hi = dconst(TI64, 0)
			return nil
		}
		n.lo = dconst(TI64, n.imm)
		n.hi = dconst(TI64, n.imm2)
	case LOpAdd, LOpSub:
		alo, ahi, err := dag.pairOps(n)
		if err != nil {
			return err
		}
		blo, bhi := n.ops[1].lo, n.ops[1].hi
		if n.op == LOpAdd {
			lo := dnodeBin(LOpAdd, TI64, alo, blo)
			carry := dnodeCmp(vt.CondULT, lo, alo)
			carryExt := &dnode{op: LOpZExt, ty: TI64, ops: []*dnode{carry}}
			hi := dnodeBin(LOpAdd, TI64, dnodeBin(LOpAdd, TI64, ahi, bhi), carryExt)
			n.lo, n.hi = lo, hi
		} else {
			borrow := dnodeCmp(vt.CondULT, alo, blo)
			borrowExt := &dnode{op: LOpZExt, ty: TI64, ops: []*dnode{borrow}}
			lo := dnodeBin(LOpSub, TI64, alo, blo)
			hi := dnodeBin(LOpSub, TI64, dnodeBin(LOpSub, TI64, ahi, bhi), borrowExt)
			n.lo, n.hi = lo, hi
		}
	case LOpMul:
		alo, ahi, err := dag.pairOps(n)
		if err != nil {
			return err
		}
		blo, bhi := n.ops[1].lo, n.ops[1].hi
		mw := &dnode{op: LOpIntrinsic, intr: intrMulWide, ty: TPair, ops: []*dnode{alo, blo}}
		lo := &dnode{op: LOpExtractVal, ty: TI64, imm: 0, ops: []*dnode{mw}}
		hi0 := &dnode{op: LOpExtractVal, ty: TI64, imm: 1, ops: []*dnode{mw}}
		cross1 := dnodeBin(LOpMul, TI64, alo, bhi)
		cross2 := dnodeBin(LOpMul, TI64, ahi, blo)
		hi := dnodeBin(LOpAdd, TI64, dnodeBin(LOpAdd, TI64, hi0, cross1), cross2)
		n.lo, n.hi = lo, hi
	case LOpAnd, LOpOr, LOpXor:
		alo, ahi, err := dag.pairOps(n)
		if err != nil {
			return err
		}
		blo, bhi := n.ops[1].lo, n.ops[1].hi
		n.lo = dnodeBin(n.op, TI64, alo, blo)
		n.hi = dnodeBin(n.op, TI64, ahi, bhi)
	case LOpShl, LOpLShr, LOpAShr:
		if err := dag.legalizeOperand(n.ops[0]); err != nil {
			return err
		}
		if k, ok := constShift(n.ops[1]); ok {
			lo, hi := legalShift(n.op, n.ops[0].lo, n.ops[0].hi, k)
			n.lo, n.hi = lo, hi
			return nil
		}
		// Dynamic amount: branch-free expansion over selects.
		var amt *dnode
		if wideType(n.ops[1].ty) {
			if err := dag.legalizeOperand(n.ops[1]); err != nil {
				return err
			}
			amt = n.ops[1].lo
		} else {
			amt = n.ops[1]
		}
		n.lo, n.hi = dynShift128(n.op, n.ops[0].lo, n.ops[0].hi, amt)
	case LOpZExt:
		n.lo = n.ops[0]
		if n.ops[0].ty.Bits < 64 {
			n.lo = &dnode{op: LOpZExt, ty: TI64, ops: []*dnode{n.ops[0]}}
		}
		n.hi = dconst(TI64, 0)
	case LOpSExt:
		n.lo = n.ops[0]
		n.hi = dnodeBin(LOpAShr, TI64, n.ops[0], dconst(TI64, 63))
	case LOpSelect:
		if err := dag.legalizeOperand(n.ops[1]); err != nil {
			return err
		}
		if err := dag.legalizeOperand(n.ops[2]); err != nil {
			return err
		}
		c := n.ops[0]
		n.lo = &dnode{op: LOpSelect, ty: TI64, ops: []*dnode{c, n.ops[1].lo, n.ops[2].lo}}
		n.hi = &dnode{op: LOpSelect, ty: TI64, ops: []*dnode{c, n.ops[1].hi, n.ops[2].hi}}
	case LOpLoad, LOpCallRT, LOpExtractVal:
		// These materialize their pair at emission; consumers reference
		// the halves through projection nodes.
		n.lo = &dnode{special: specProj, ty: TI64, ops: []*dnode{n}, imm: 0}
		n.hi = &dnode{special: specProj, ty: TI64, ops: []*dnode{n}, imm: 1}
		return nil
	case LOpICmp:
		return nil // handled in emitNode via operand pairs
	case LOpInsertVal:
		if err := dag.legalizeOperand(n.ops[0]); err != nil {
			return err
		}
		if n.imm == 0 {
			n.lo, n.hi = n.ops[1], n.ops[0].hi
		} else {
			n.lo, n.hi = n.ops[0].lo, n.ops[1]
		}
	case LOpBuildPair:
		n.lo, n.hi = n.ops[0], n.ops[1]
	case LOpIntrinsic:
		return nil // overflow intrinsics handled in emitNode
	case LOpTrunc, LOpPhi:
		return nil // handled in emitNode
	default:
		return fmt.Errorf("lbe: cannot legalize wide %s", n.op)
	}
	return nil
}

// intrMulWide is an internal post-legalization intrinsic: full 64x64
// multiplication producing {lo, hi}.
const intrMulWide = IntrinsicID(200)

func (dag *selectionDAG) pairOps(n *dnode) (alo, ahi *dnode, err error) {
	if err := dag.legalizeOperand(n.ops[0]); err != nil {
		return nil, nil, err
	}
	if err := dag.legalizeOperand(n.ops[1]); err != nil {
		return nil, nil, err
	}
	return n.ops[0].lo, n.ops[0].hi, nil
}

func (dag *selectionDAG) legalizeOperand(n *dnode) error {
	if n.lo != nil || !wideType(n.ty) {
		return nil
	}
	return dag.legalize(n)
}

func constShift(n *dnode) (uint, bool) {
	if n.op == LOpConst && n.special == specNone {
		return uint(n.imm) & 127, true
	}
	return 0, false
}

// dynShift128 expands a 128-bit shift by a runtime amount n (0..127) into
// branch-free 64-bit nodes. The double-shift `(x<<1)<<(63-n)` computes
// x<<(64-n) correctly for n==0 under the target's shift-count masking.
func dynShift128(op Opcode, alo, ahi, amt *dnode) (*dnode, *dnode) {
	c := func(v int64) *dnode { return dconst(TI64, v) }
	b := func(o Opcode, x, y *dnode) *dnode { return dnodeBin(o, TI64, x, y) }
	sel := func(cond, x, y *dnode) *dnode {
		return &dnode{op: LOpSelect, ty: TI64, ops: []*dnode{cond, x, y}}
	}
	n := b(LOpAnd, amt, c(127))
	big := dnodeCmp(vt.CondUGE, n, c(64)) // n >= 64
	nm := b(LOpAnd, n, c(63))
	inv := b(LOpSub, c(63), nm)
	nBig := b(LOpSub, n, c(64))
	switch op {
	case LOpLShr:
		loS := b(LOpOr, b(LOpLShr, alo, nm), b(LOpShl, b(LOpShl, ahi, c(1)), inv))
		hiS := b(LOpLShr, ahi, nm)
		loB := b(LOpLShr, ahi, nBig)
		return sel(big, loB, loS), sel(big, c(0), hiS)
	case LOpAShr:
		loS := b(LOpOr, b(LOpLShr, alo, nm), b(LOpShl, b(LOpShl, ahi, c(1)), inv))
		hiS := b(LOpAShr, ahi, nm)
		loB := b(LOpAShr, ahi, nBig)
		hiB := b(LOpAShr, ahi, c(63))
		return sel(big, loB, loS), sel(big, hiB, hiS)
	default: // LOpShl
		hiS := b(LOpOr, b(LOpShl, ahi, nm), b(LOpLShr, b(LOpLShr, alo, c(1)), inv))
		loS := b(LOpShl, alo, nm)
		hiB := b(LOpShl, alo, nBig)
		return sel(big, c(0), loS), sel(big, hiB, hiS)
	}
}

// legalShift builds the narrow nodes of a constant 128-bit shift.
func legalShift(op Opcode, alo, ahi *dnode, k uint) (*dnode, *dnode) {
	c := func(v int64) *dnode { return dconst(TI64, v) }
	switch {
	case k == 0:
		return alo, ahi
	case op == LOpLShr && k == 64:
		return ahi, c(0)
	case op == LOpAShr && k == 64:
		return ahi, dnodeBin(LOpAShr, TI64, ahi, c(63))
	case op == LOpShl && k == 64:
		return c(0), alo
	case op == LOpShl && k < 64:
		hi := dnodeBin(LOpOr, TI64,
			dnodeBin(LOpShl, TI64, ahi, c(int64(k))),
			dnodeBin(LOpLShr, TI64, alo, c(int64(64-k))))
		return dnodeBin(LOpShl, TI64, alo, c(int64(k))), hi
	case k < 64:
		lo := dnodeBin(LOpOr, TI64,
			dnodeBin(LOpLShr, TI64, alo, c(int64(k))),
			dnodeBin(LOpShl, TI64, ahi, c(int64(64-k))))
		sh := LOpLShr
		if op == LOpAShr {
			sh = LOpAShr
		}
		return lo, dnodeBin(sh, TI64, ahi, c(int64(k)))
	case op == LOpShl:
		return c(0), dnodeBin(LOpShl, TI64, alo, c(int64(k-64)))
	case op == LOpLShr:
		return dnodeBin(LOpLShr, TI64, ahi, c(int64(k-64))), c(0)
	default:
		return dnodeBin(LOpAShr, TI64, ahi, c(int64(k-64))),
			dnodeBin(LOpAShr, TI64, ahi, c(63))
	}
}
