package adaptive

import (
	"testing"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// bigFunc builds a function over the size threshold: f(x) = x processed
// through a chain of overflow-checked operations.
func bigFunc(mod *qir.Module, name string, chain int) {
	b := qir.NewFunc(mod, name, qir.I64, qir.I64)
	v := b.Param(0)
	one := b.ConstInt(qir.I64, 1)
	for i := 0; i < chain; i++ {
		v = b.Bin(qir.OpSAddTrap, v, one)
	}
	b.Ret(v)
}

func TestPromotion(t *testing.T) {
	mod := qir.NewModule("t")
	bigFunc(mod, "hot", 60) // above SizeThreshold
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	eng := New()
	ex, _, err := eng.Compile(mod, &backend.Env{DB: db, Arch: vt.VX64})
	if err != nil {
		t.Fatal(err)
	}
	x := ex.(*exec)
	for i := 0; i < 10; i++ {
		res, err := ex.Call(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != 65 {
			t.Fatalf("call %d: got %d", i, res[0])
		}
	}
	if x.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", x.Promotions)
	}
}

// TestHotnessWeightedPromotion pins the tier-promotion signal to executed
// instructions rather than call counts: promotion fires once the function's
// inclusive instruction total crosses HotThreshold, and the hotness counter
// stops growing after the switch (the optimized tier is not re-measured).
func TestHotnessWeightedPromotion(t *testing.T) {
	mod := qir.NewModule("t")
	bigFunc(mod, "hot", 60)
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	eng := New()
	ex, _, err := eng.Compile(mod, &backend.Env{DB: db, Arch: vt.VX64})
	if err != nil {
		t.Fatal(err)
	}
	x := ex.(*exec)
	if _, err := ex.Call(0, 5); err != nil {
		t.Fatal(err)
	}
	per := x.Hotness().Load(0)
	if per < 60 {
		t.Fatalf("one call accumulated %d instructions, want >= chain length", per)
	}
	calls := 1
	for x.Promotions == 0 && calls < 100 {
		if _, err := ex.Call(0, 5); err != nil {
			t.Fatal(err)
		}
		calls++
	}
	if x.Promotions != 1 {
		t.Fatalf("no promotion after %d calls (hotness %d)", calls, x.Hotness().Load(0))
	}
	atPromo := x.Hotness().Load(0)
	if atPromo < eng.HotThreshold {
		t.Fatalf("promoted at hotness %d < threshold %d", atPromo, eng.HotThreshold)
	}
	// The check runs before the call, so promotion fires on the first call
	// after the threshold is crossed.
	want := int(eng.HotThreshold/per) + 2
	if calls != want {
		t.Fatalf("promoted after %d calls, want %d (per-call cost %d)", calls, want, per)
	}
	if _, err := ex.Call(0, 5); err != nil {
		t.Fatal(err)
	}
	if x.Hotness().Load(0) != atPromo {
		t.Fatalf("hotness advanced after promotion: %d -> %d", atPromo, x.Hotness().Load(0))
	}
}

func TestNoPromotionForSmallFunctions(t *testing.T) {
	mod := qir.NewModule("t")
	bigFunc(mod, "cold", 3) // below SizeThreshold
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	ex, _, err := New().Compile(mod, &backend.Env{DB: db, Arch: vt.VX64})
	if err != nil {
		t.Fatal(err)
	}
	x := ex.(*exec)
	for i := 0; i < 10; i++ {
		if _, err := ex.Call(0, 5); err != nil {
			t.Fatal(err)
		}
	}
	if x.Promotions != 0 {
		t.Errorf("promotions = %d, want 0", x.Promotions)
	}
}
