package adaptive

import (
	"testing"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// bigFunc builds a function over the size threshold: f(x) = x processed
// through a chain of overflow-checked operations.
func bigFunc(mod *qir.Module, name string, chain int) {
	b := qir.NewFunc(mod, name, qir.I64, qir.I64)
	v := b.Param(0)
	one := b.ConstInt(qir.I64, 1)
	for i := 0; i < chain; i++ {
		v = b.Bin(qir.OpSAddTrap, v, one)
	}
	b.Ret(v)
}

func TestPromotion(t *testing.T) {
	mod := qir.NewModule("t")
	bigFunc(mod, "hot", 60) // above SizeThreshold
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	eng := New()
	ex, _, err := eng.Compile(mod, &backend.Env{DB: db, Arch: vt.VX64})
	if err != nil {
		t.Fatal(err)
	}
	x := ex.(*exec)
	for i := 0; i < 10; i++ {
		res, err := ex.Call(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != 65 {
			t.Fatalf("call %d: got %d", i, res[0])
		}
	}
	if x.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", x.Promotions)
	}
}

func TestNoPromotionForSmallFunctions(t *testing.T) {
	mod := qir.NewModule("t")
	bigFunc(mod, "cold", 3) // below SizeThreshold
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)
	ex, _, err := New().Compile(mod, &backend.Env{DB: db, Arch: vt.VX64})
	if err != nil {
		t.Fatal(err)
	}
	x := ex.(*exec)
	for i := 0; i < 10; i++ {
		if _, err := ex.Call(0, 5); err != nil {
			t.Fatal(err)
		}
	}
	if x.Promotions != 0 {
		t.Errorf("promotions = %d, want 0", x.Promotions)
	}
}
