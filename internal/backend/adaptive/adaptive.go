// Package adaptive implements Umbra's default execution strategy described
// in Sec. III-C of the paper: every function starts in the low-latency
// DirectEmit tier; once it has been called a few times, a simple code-size
// heuristic estimates whether optimized compilation pays off, and if so the
// module is recompiled with the LLVM-optimized back-end and subsequent calls
// use the optimized code. Morsel-driven execution makes the function-level
// switch safe — each call processes a bounded chunk.
package adaptive

import (
	"qcc/internal/backend"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/obs"
	"qcc/internal/qir"
	"qcc/internal/vt"
)

// statPromotions counts tier switches process-wide; per-run counts land in
// Stats under "tier_promotions".
var statPromotions = obs.NewCounter("adaptive.tier_promotions")

// Engine is the adaptive two-tier back-end (vx64 only, like DirectEmit).
type Engine struct {
	// CallThreshold is how many calls a function must receive before the
	// promotion heuristic runs (the paper's "executed a few times").
	CallThreshold int
	// SizeThreshold is the minimum QIR instruction count for which
	// optimized compilation is estimated to be beneficial.
	SizeThreshold int
}

// New returns the adaptive engine with the default thresholds.
func New() *Engine { return &Engine{CallThreshold: 3, SizeThreshold: 40} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "Adaptive" }

type exec struct {
	mod  *qir.Module
	env  *backend.Env
	fast backend.Exec
	opt  backend.Exec

	// calls holds per-function call counts as an observability vector; the
	// promotion heuristic reads the same metric a profiler would export.
	calls     *obs.Vector
	threshold int64
	sizeOK    []bool
	// Promotions counts tier switches (observable in tests/examples).
	Promotions int
	stats      *backend.Stats
}

// Compile implements backend.Engine.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	if env.Arch != vt.VX64 {
		return nil, nil, &backend.ErrUnsupported{Backend: "adaptive", Reason: "DirectEmit tier is vx64-only"}
	}
	fast, stats, err := direct.New().Compile(mod, env)
	if err != nil {
		return nil, nil, err
	}
	x := &exec{
		mod: mod, env: env, fast: fast,
		calls:     obs.NewVector("adaptive.fn_calls", len(mod.Funcs)),
		sizeOK:    make([]bool, len(mod.Funcs)),
		threshold: int64(e.CallThreshold),
		stats:     stats,
	}
	for i, f := range mod.Funcs {
		x.sizeOK[i] = f.NumInstrs() >= e.SizeThreshold
	}
	return x, stats, nil
}

// Call implements backend.Exec with tier switching.
func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	if x.opt != nil {
		return x.opt.Call(fn, args...)
	}
	if x.calls.Inc(fn) > x.threshold && x.sizeOK[fn] {
		// Promote: compile the module with the optimizing tier. (The
		// paper does this on a background thread; we compile inline,
		// which only shifts when the cost is paid.)
		opt, ostats, err := lbe.NewOpt().Compile(x.mod, x.env)
		if err == nil {
			x.opt = opt
			x.Promotions++
			statPromotions.Inc()
			x.stats.Count("tier_promotions", 1)
			x.stats.Merge(ostats)
			return x.opt.Call(fn, args...)
		}
	}
	return x.fast.Call(fn, args...)
}
