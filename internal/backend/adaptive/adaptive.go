// Package adaptive implements Umbra's default execution strategy described
// in Sec. III-C of the paper: every function starts in the low-latency
// DirectEmit tier; once it has proven hot, a simple code-size heuristic
// estimates whether optimized compilation pays off, and if so the module is
// recompiled with the LLVM-optimized back-end and subsequent calls use the
// optimized code. Morsel-driven execution makes the function-level switch
// safe — each call processes a bounded chunk.
//
// Hotness is measured in executed VM instructions (the profiler's counting
// signal, prof.Hotness), not raw call counts: a function called three times
// over a million-row morsel promotes, a trivial helper called a thousand
// times does not. This is the cheap, accurate hot-path identification that
// Ma et al. (PAPERS.md) identify as the precondition for JIT paying off.
package adaptive

import (
	"qcc/internal/backend"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/obs"
	"qcc/internal/prof"
	"qcc/internal/qir"
	"qcc/internal/vt"
)

// statPromotions counts tier switches process-wide; per-run counts land in
// Stats under "tier_promotions".
var statPromotions = obs.NewCounter("adaptive.tier_promotions")

// Engine is the adaptive two-tier back-end (vx64 only, like DirectEmit).
type Engine struct {
	// HotThreshold is the executed-instruction total a function must
	// accumulate in the fast tier before the promotion heuristic runs.
	HotThreshold int64
	// SizeThreshold is the minimum QIR instruction count for which
	// optimized compilation is estimated to be beneficial.
	SizeThreshold int
}

// New returns the adaptive engine with the default thresholds.
func New() *Engine { return &Engine{HotThreshold: 256, SizeThreshold: 40} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "Adaptive" }

type exec struct {
	mod  *qir.Module
	env  *backend.Env
	fast backend.Exec
	opt  backend.Exec

	// hot holds per-function executed-instruction totals — the profiler's
	// counting signal; the promotion heuristic reads the same metric the
	// profiler exports.
	hot       *prof.Hotness
	threshold int64
	sizeOK    []bool
	// Promotions counts tier switches (observable in tests/examples).
	Promotions int
	stats      *backend.Stats
}

// Compile implements backend.Engine.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	if env.Arch != vt.VX64 {
		return nil, nil, &backend.ErrUnsupported{Backend: "adaptive", Reason: "DirectEmit tier is vx64-only"}
	}
	fast, stats, err := direct.New().Compile(mod, env)
	if err != nil {
		return nil, nil, err
	}
	x := &exec{
		mod: mod, env: env, fast: fast,
		hot:       prof.NewHotness("adaptive.fn_hotness", len(mod.Funcs)),
		sizeOK:    make([]bool, len(mod.Funcs)),
		threshold: e.HotThreshold,
		stats:     stats,
	}
	for i, f := range mod.Funcs {
		x.sizeOK[i] = f.NumInstrs() >= e.SizeThreshold
	}
	return x, stats, nil
}

// Hotness exposes the per-function executed-instruction counters (for
// observability tooling and tests).
func (x *exec) Hotness() *prof.Hotness { return x.hot }

// Call implements backend.Exec with tier switching.
func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	if x.opt != nil {
		return x.opt.Call(fn, args...)
	}
	if x.hot.Load(fn) >= x.threshold && x.sizeOK[fn] {
		// Promote: compile the module with the optimizing tier. (The
		// paper does this on a background thread; we compile inline,
		// which only shifts when the cost is paid.)
		opt, ostats, err := lbe.NewOpt().Compile(x.mod, x.env)
		if err == nil {
			x.opt = opt
			x.Promotions++
			statPromotions.Inc()
			x.stats.Count("tier_promotions", 1)
			x.stats.Merge(ostats)
			return x.opt.Call(fn, args...)
		}
	}
	// Weight the call by its inclusive executed-instruction cost: the
	// machine's counter advances across the call (including callees), so
	// the delta is exactly what this invocation cost.
	before := x.env.DB.M.Executed
	res, err := x.fast.Call(fn, args...)
	x.hot.Add(fn, x.env.DB.M.Executed-before)
	return res, err
}
