package pcc_test

import (
	"fmt"
	"strings"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/pcc"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/obs"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// TestTracedParallelCompile runs the Fork/Adopt protocol through the real
// parallel driver: a TPC-H compile on 4 workers with a session tracer
// attached must yield one worker:N group per worker, every func: span
// exactly once across workers, and worker thread ids starting at 2 (tid 1
// is the main goroutine). Run with -race this doubles as the concurrency
// check on the per-worker fork merge.
func TestTracedParallelCompile(t *testing.T) {
	const jobs = 4
	cfg := benchCfg(vt.VX64)
	w, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatal(err)
	}
	q := bench.HQueries()[0]
	c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.Options{})
	root := tr.Begin("compile")
	par := pcc.Wrap(clift.New(), pcc.Config{Jobs: jobs})
	if _, _, err := par.Compile(c.Module, &backend.Env{DB: w.DB, Arch: vt.VX64, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	root.End()

	snap := tr.Snapshot("t")
	workers := 0
	funcSpans := map[string]int{}
	for _, sp := range snap.Spans {
		if strings.HasPrefix(sp.Name, "worker:") {
			workers++
			continue
		}
		if !strings.HasPrefix(sp.Name, "func:") {
			continue
		}
		funcSpans[sp.Name]++
		if sp.Tid < 2 {
			t.Errorf("adopted span %s carries tid %d, want a worker tid >= 2", sp.Name, sp.Tid)
		}
	}
	if workers != jobs {
		t.Fatalf("got %d worker group spans, want %d", workers, jobs)
	}
	if len(funcSpans) != len(c.Module.Funcs) {
		t.Fatalf("got func spans for %d functions, want %d", len(funcSpans), len(c.Module.Funcs))
	}
	for name, n := range funcSpans {
		if n != 1 {
			t.Errorf("%s compiled under %d workers, want exactly 1", name, n)
		}
	}
}

// misuseEngine is a FuncEngine whose CompileFunc bypasses the Fork/Adopt
// protocol and records straight into the session tracer from the worker
// goroutine — the exact bug the ownership check in obs.Tracer exists to
// catch.
type misuseEngine struct{ parent *obs.Tracer }

func (e *misuseEngine) Name() string { return "misuse-stub" }

func (e *misuseEngine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	return backend.CompileUnits(e, mod, env)
}

func (e *misuseEngine) BeginModule(mod *qir.Module, env *backend.Env, ph *backend.Phaser) (backend.ModuleCompiler, error) {
	e.parent = env.Trace
	return &misuseMC{e: e}, nil
}

type misuseMC struct{ e *misuseEngine }

func (m *misuseMC) Variant() string { return "" }

func (m *misuseMC) CompileFunc(i int, ph *backend.Phaser) (*backend.Unit, error) {
	m.e.parent.Begin("bypassing-fork").End()
	return &backend.Unit{Index: i}, nil
}

func (m *misuseMC) Link(units []*backend.Unit, ph *backend.Phaser) (backend.Exec, error) {
	return nil, fmt.Errorf("link should be unreachable after worker misuse")
}

// TestParallelMisuseSurfacesAsError pins the misuse-panic path end to end:
// a back-end that records into the session tracer from a worker goroutine
// panics in obs (ownership check), pcc's worker recovery converts the panic
// into a compile error naming Fork/Adopt, and the session tracer stays
// usable by its owning goroutine afterwards.
func TestParallelMisuseSurfacesAsError(t *testing.T) {
	mod := qir.NewModule("t")
	for i := 0; i < 4; i++ {
		b := qir.NewFunc(mod, fmt.Sprintf("f%d", i), qir.I64)
		b.Ret(b.ConstInt(qir.I64, int64(i)))
	}
	m := vm.New(vm.Config{Arch: vt.VX64, MemSize: 8 << 20})
	db := rt.NewDB(m)

	tr := obs.New(obs.Options{})
	root := tr.Begin("compile") // held open: the test goroutine owns the stack
	par := pcc.Wrap(&misuseEngine{}, pcc.Config{Jobs: 4})
	_, _, err := par.Compile(mod, &backend.Env{DB: db, Arch: vt.VX64, Trace: tr})
	if err == nil {
		t.Fatal("worker tracer misuse did not surface as a compile error")
	}
	if !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("misuse not reported through the worker panic recovery: %v", err)
	}
	if !strings.Contains(err.Error(), "Fork/Adopt") {
		t.Fatalf("error should carry the obs ownership message pointing at Fork/Adopt: %v", err)
	}
	// The ownership check releases the tracer lock before panicking, so the
	// owning goroutine can keep tracing after the failed compile.
	tr.Begin("after").End()
	root.End()
	if n := len(tr.Snapshot("t").Spans); n < 2 {
		t.Fatalf("session tracer unusable after recovered misuse: %d spans", n)
	}
}
