package pcc

import (
	"testing"

	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// constMod builds a minimal one-function module returning a constant. The
// module is not meant to be compiled — unitKey hashes the raw body, so a
// bare function is enough to probe key sensitivity.
func constMod(imm int64) *qir.Module {
	f := &qir.Func{
		Name: "f",
		Ret:  qir.I64,
		Instrs: []qir.Instr{
			{Op: qir.OpConst, Type: qir.I64, Imm: imm},
			{Op: qir.OpRet, Type: qir.I64, A: 0},
		},
		Blocks: []qir.BasicBlock{{List: []qir.Value{0, 1}}},
	}
	return &qir.Module{Name: "m", Funcs: []*qir.Func{f}}
}

func TestUnitKeyDeterministic(t *testing.T) {
	a := unitKey(vt.VX64, "v1", constMod(42), nil, 0)
	b := unitKey(vt.VX64, "v1", constMod(42), nil, 0)
	if a != b {
		t.Fatal("identical function bodies must produce identical keys")
	}
}

// TestUnitKeyConstantSensitivity is the collision-resistance check from the
// issue: two functions differing only in one constant must get different
// keys (and therefore both miss in the cache).
func TestUnitKeyConstantSensitivity(t *testing.T) {
	a := unitKey(vt.VX64, "v1", constMod(42), nil, 0)
	b := unitKey(vt.VX64, "v1", constMod(43), nil, 0)
	if a == b {
		t.Fatal("functions differing only in a constant collided")
	}
}

func TestUnitKeyArchAndVariantSensitivity(t *testing.T) {
	m := constMod(42)
	base := unitKey(vt.VX64, "v1", m, nil, 0)
	if unitKey(vt.VA64, "v1", m, nil, 0) == base {
		t.Fatal("keys must differ across architectures")
	}
	if unitKey(vt.VX64, "v2", m, nil, 0) == base {
		t.Fatal("keys must differ across back-end variants")
	}
}

func TestUnitKeyRTImportSensitivity(t *testing.T) {
	m1 := constMod(42)
	m2 := constMod(42)
	m2.RTNames = append(m2.RTNames, "overflow")
	if unitKey(vt.VX64, "v1", m1, nil, 0) == unitKey(vt.VX64, "v1", m2, nil, 0) {
		t.Fatal("keys must depend on the runtime-import table (call indices and PLT layout)")
	}
}

// TestUnitKeyStringAddressSensitivity: OpConstStr bakes the interned
// string's machine address into the code, so the key must hash the resolved
// address — equal strings in one DB hit, different strings (and different
// DBs) miss.
func TestUnitKeyStringAddressSensitivity(t *testing.T) {
	mkStr := func(s string) *qir.Module {
		f := &qir.Func{
			Name: "f",
			Ret:  qir.Str,
			Instrs: []qir.Instr{
				{Op: qir.OpConstStr, Type: qir.Str, Imm: 0},
				{Op: qir.OpRet, Type: qir.Str, A: 0},
			},
			Blocks: []qir.BasicBlock{{List: []qir.Value{0, 1}}},
		}
		return &qir.Module{Name: "m", Funcs: []*qir.Func{f}, Strings: []string{s}}
	}
	db := rt.NewDB(vm.New(vm.Config{Arch: vt.VX64, MemSize: 64 << 20}))
	// Strings over 12 bytes are heap-allocated (shorter ones are inlined
	// in the 16-byte value and carry no address).
	const long1 = "alpha-string-beyond-inline"
	const long2 = "beta-string-beyond-inline!"
	a1 := unitKey(vt.VX64, "v1", mkStr(long1), db, 0)
	a2 := unitKey(vt.VX64, "v1", mkStr(long1), db, 0)
	b := unitKey(vt.VX64, "v1", mkStr(long2), db, 0)
	if a1 != a2 {
		t.Fatal("same string in the same DB must intern to the same address and key")
	}
	if a1 == b {
		t.Fatal("different string constants collided")
	}
	// A second DB interns "alpha" at a potentially different heap layout
	// only if allocations diverge; force divergence and require a miss.
	db2 := rt.NewDB(vm.New(vm.Config{Arch: vt.VX64, MemSize: 64 << 20}))
	db2.InternString("padding-so-the-heap-layout-differs")
	c := unitKey(vt.VX64, "v1", mkStr(long1), db2, 0)
	if a1 == c {
		t.Fatal("key must track the interned address, not just the string bytes")
	}
}
