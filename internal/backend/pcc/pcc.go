// Package pcc is the parallel compilation driver: it shards a qir.Module
// into per-function compilation units, compiles them on N worker goroutines
// against any backend.FuncEngine (DirectEmit, Cranelift-like, LLVM-like,
// GCC/C-like), and links the units into a single executable. A
// content-addressed code cache (see Cache) can short-circuit compilation of
// functions whose canonical fingerprint was compiled before under the same
// target architecture and back-end configuration.
//
// Determinism is a hard contract: for any worker count the linked machine
// code is byte-identical to a sequential backend.CompileUnits run. The
// driver leans on three mechanisms for that: BeginModule performs all
// shared-state mutation up front (string interning, runtime-helper imports);
// the module and runtime DB are frozen while workers run, so a missed
// pre-interning panics instead of racing; and units are linked strictly in
// function-index order regardless of completion order.
package pcc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qcc/internal/backend"
	"qcc/internal/obs"
	"qcc/internal/qir"
)

// Config configures the driver.
type Config struct {
	// Jobs is the number of worker goroutines; <=0 selects GOMAXPROCS.
	// Jobs 1 runs the exact sequential code path (no freeze, no workers).
	Jobs int
	// Cache, when non-nil, is consulted per function before compiling and
	// updated afterwards. Back-ends whose ModuleCompiler reports an empty
	// Variant are never cached.
	Cache *Cache
	// VariantTag, when non-empty, is appended to the back-end's variant
	// string before key derivation. Callers use it to fold IR-pass
	// configuration (e.g. the check-elimination pass version) into cache
	// keys, so entries compiled under different pass semantics never
	// collide.
	VariantTag string
}

var (
	globalCacheHits   = obs.NewCounter("pcc.cache_hits")
	globalCacheMisses = obs.NewCounter("pcc.cache_misses")
)

// Engine drives an inner FuncEngine through the parallel pipeline. Use Wrap
// to construct one.
type Engine struct {
	inner backend.FuncEngine
	cfg   Config
}

// Wrap returns eng driven by the parallel driver with the given
// configuration. Engines that do not expose the per-function pipeline
// (backend.FuncEngine) are returned unchanged — the driver has nothing to
// shard.
func Wrap(eng backend.Engine, cfg Config) backend.Engine {
	fe, ok := eng.(backend.FuncEngine)
	if !ok {
		return eng
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	return &Engine{inner: fe, cfg: cfg}
}

// Name implements backend.Engine (transparent to benchmark tables).
func (e *Engine) Name() string { return e.inner.Name() }

// Jobs returns the configured worker count.
func (e *Engine) Jobs() int { return e.cfg.Jobs }

// Compile implements backend.Engine.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	start := time.Now()
	stats := &backend.Stats{Funcs: len(mod.Funcs)}
	ph := backend.NewPhaser(stats, env.Trace)
	mc, err := e.inner.BeginModule(mod, env, ph)
	if err != nil {
		return nil, nil, err
	}

	n := len(mod.Funcs)
	units := make([]*backend.Unit, n)

	// Cache lookups run sequentially before the parallel section (the key
	// derivation reads the runtime's string-intern table, and determinism
	// is easiest to see when the section's inputs are fixed up front).
	variant := mc.Variant()
	if variant != "" && e.cfg.VariantTag != "" {
		variant += "+" + e.cfg.VariantTag
	}
	useCache := e.cfg.Cache != nil && variant != ""
	var keys []string
	var hits, misses int64
	if useCache {
		sp := ph.Begin("Cache.Lookup")
		keys = make([]string, n)
		for i := range mod.Funcs {
			keys[i] = unitKey(env.Arch, variant, mod, env.DB, i)
			if u, ok := e.cfg.Cache.get(keys[i]); ok {
				// Shallow copy: the payload is shared (immutable by
				// contract), the index belongs to this module.
				cu := *u
				cu.Index = i
				units[i] = &cu
				hits++
			} else {
				misses++
			}
		}
		sp.End()
	}

	var todo []int
	for i := range units {
		if units[i] == nil {
			todo = append(todo, i)
		}
	}

	jobs := e.cfg.Jobs
	if jobs > len(todo) {
		jobs = len(todo)
	}
	if jobs <= 1 {
		// Sequential: identical to backend.CompileUnits over the misses.
		for _, i := range todo {
			fsp := ph.BeginGroup("func:" + mod.Funcs[i].Name)
			u, cerr := mc.CompileFunc(i, ph)
			fsp.End()
			if cerr != nil {
				return nil, nil, cerr
			}
			units[i] = u
		}
	} else if err := e.compileParallel(mod, env, mc, units, todo, jobs, ph); err != nil {
		return nil, nil, err
	}

	if useCache {
		sp := ph.Begin("Cache.Store")
		for _, i := range todo {
			e.cfg.Cache.put(keys[i], units[i])
		}
		sp.End()
		stats.Count("cache_hits", hits)
		stats.Count("cache_misses", misses)
		globalCacheHits.Add(hits)
		globalCacheMisses.Add(misses)
	}

	exec, err := mc.Link(units, ph)
	if err != nil {
		return nil, nil, err
	}
	ph.Finish()
	// Record true elapsed driver time. With jobs > 1 the per-worker phases
	// overlap, so their sum (Total) overstates elapsed time; with jobs = 1
	// the wall clock additionally covers cache lookups and scheduling, so
	// every driver configuration reports the same honest metric and worker
	// counts stay comparable.
	stats.Wall = time.Since(start)
	return exec, stats, nil
}

// compileParallel compiles the todo indices on jobs worker goroutines. The
// module and runtime DB are frozen for the duration: any interning a
// back-end failed to hoist into BeginModule panics (caught and reported)
// instead of silently reordering shared pools. Per-unit phase times land in
// private Stats merged in index order afterwards; per-worker trace forks are
// adopted into the session tracer in worker order, so the trace is
// deterministic in structure even though span timestamps interleave.
func (e *Engine) compileParallel(mod *qir.Module, env *backend.Env, mc backend.ModuleCompiler,
	units []*backend.Unit, todo []int, jobs int, ph *backend.Phaser) error {
	mod.Freeze()
	env.DB.Freeze()

	n := len(mod.Funcs)
	ustats := make([]*backend.Stats, n)
	errs := make([]error, n)
	wtrs := make([]*obs.Tracer, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wtr := env.Trace.Fork()
		wtrs[w] = wtr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(todo) {
					return
				}
				i := todo[k]
				us := &backend.Stats{}
				uph := backend.NewPhaser(us, wtr)
				u, cerr := compileOne(mc, i, mod.Funcs[i].Name, uph)
				uph.Finish()
				// Allocation deltas are process-global; per-unit readings
				// taken while other workers allocate are meaningless.
				us.AllocBytes, us.AllocObjs = 0, 0
				ustats[i] = us
				if cerr != nil {
					errs[i] = cerr
					continue
				}
				units[i] = u
			}
		}()
	}
	wg.Wait()
	mod.Unfreeze()
	env.DB.Unfreeze()

	if env.Trace.Enabled() {
		for w, wtr := range wtrs {
			g := env.Trace.BeginCat(fmt.Sprintf("worker:%d", w), "group")
			env.Trace.Adopt(wtr, int32(w+2)) // tid 1 is the main goroutine
			g.End()
		}
	}
	for _, i := range todo {
		if ustats[i] != nil {
			ph.Stats().Merge(ustats[i])
		}
	}
	// Report the failure of the lowest function index, matching what a
	// sequential run would have hit first.
	for _, i := range todo {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// compileOne runs one CompileFunc under its "func:" trace group, converting
// worker panics (e.g. a freeze violation) into errors so one bad function
// cannot take down the process from a worker goroutine.
func compileOne(mc backend.ModuleCompiler, i int, name string, uph *backend.Phaser) (u *backend.Unit, err error) {
	fsp := uph.BeginGroup("func:" + name)
	defer fsp.End()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pcc: %s: worker panic: %v", name, r)
		}
	}()
	return mc.CompileFunc(i, uph)
}
