package pcc_test

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/backend/pcc"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// codeImage reaches the linked machine-code image behind an Exec; every
// compiled back-end's exec exposes it.
type codeImage interface{ Module() *vm.Module }

func codeOf(t *testing.T, ex backend.Exec) []byte {
	t.Helper()
	ci, ok := ex.(codeImage)
	if !ok {
		t.Fatalf("exec %T does not expose its linked module", ex)
	}
	return ci.Module().Code
}

// funcEngines is the per-function-pipeline lineup the driver shards.
func funcEngines(arch vt.Arch) map[string]backend.Engine {
	es := map[string]backend.Engine{
		"clift":      clift.New(),
		"llvm-cheap": lbe.NewCheap(),
		"llvm-opt":   lbe.NewOpt(),
		"gcc":        cbe.New(),
	}
	if arch == vt.VX64 {
		es["direct"] = direct.New()
	}
	return es
}

func benchCfg(arch vt.Arch) bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Arch = arch
	cfg.SF = 0.01
	cfg.MemMB = 192
	return cfg
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestParallelMatchesSequential is the determinism differential: for every
// TPC-H query, every wired back-end, and both architectures, the parallel
// driver (jobs=4) must link byte-identical machine code to the plain
// sequential compile. Two identically-built worlds keep interned addresses
// comparable; the per-query checkpoint/reset mirrors the benchmark harness.
func TestParallelMatchesSequential(t *testing.T) {
	arches := []vt.Arch{vt.VX64, vt.VA64}
	if testing.Short() {
		arches = arches[:1]
	}
	for _, arch := range arches {
		engines := funcEngines(arch)
		names := make([]string, 0, len(engines))
		for n := range engines {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			eng := engines[name]
			t.Run(arch.String()+"/"+name, func(t *testing.T) {
				cfg := benchCfg(arch)
				seqW, err := bench.NewWorldLoaded(cfg, "tpch")
				if err != nil {
					t.Fatal(err)
				}
				parW, err := bench.NewWorldLoaded(cfg, "tpch")
				if err != nil {
					t.Fatal(err)
				}
				par := pcc.Wrap(eng, pcc.Config{Jobs: 4})
				seqW.DB.Checkpoint()
				parW.DB.Checkpoint()
				queries := bench.HQueries()
				if testing.Short() {
					queries = queries[:4]
				}
				for _, q := range queries {
					cs, err := codegen.Compile(q.Name, q.Build(), seqW.Cat)
					if err != nil {
						t.Fatal(err)
					}
					cp, err := codegen.Compile(q.Name, q.Build(), parW.Cat)
					if err != nil {
						t.Fatal(err)
					}
					exS, _, err := eng.Compile(cs.Module, &backend.Env{DB: seqW.DB, Arch: arch})
					if err != nil {
						t.Fatalf("%s sequential: %v", q.Name, err)
					}
					exP, _, err := par.Compile(cp.Module, &backend.Env{DB: parW.DB, Arch: arch})
					if err != nil {
						t.Fatalf("%s parallel: %v", q.Name, err)
					}
					sc, pc := codeOf(t, exS), codeOf(t, exP)
					if !bytes.Equal(sc, pc) {
						t.Fatalf("%s: parallel code differs from sequential (len %d vs %d, first diff at %#x)",
							q.Name, len(sc), len(pc), firstDiff(sc, pc))
					}
					seqW.DB.ResetToCheckpoint()
					parW.DB.ResetToCheckpoint()
				}
			})
		}
	}
}

// TestCacheDeterminism compiles a query three times against a cache whose
// budget forces eviction between compiles: cold, partially warm, and
// re-warmed code must be byte-identical to an uncached sequential compile,
// and the machine-code verifier summaries must agree exactly.
func TestCacheDeterminism(t *testing.T) {
	cfg := benchCfg(vt.VX64)
	refW, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatal(err)
	}
	cacheW, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatal(err)
	}
	eng := clift.New()
	q := bench.HQueries()[0]
	opts := backend.Options{Check: true}

	cRef, err := codegen.Compile(q.Name, q.Build(), refW.Cat)
	if err != nil {
		t.Fatal(err)
	}
	exRef, stRef, err := eng.Compile(cRef.Module, &backend.Env{DB: refW.DB, Arch: cfg.Arch, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	refCode := codeOf(t, exRef)

	// A ~1-byte budget keeps at most one unit resident, so every compile
	// round-trips through insert-and-evict.
	cache := pcc.NewCache(1)
	wrapped := pcc.Wrap(eng, pcc.Config{Jobs: 4, Cache: cache})
	cQ, err := codegen.Compile(q.Name, q.Build(), cacheW.Cat)
	if err != nil {
		t.Fatal(err)
	}
	env := func() *backend.Env { return &backend.Env{DB: cacheW.DB, Arch: cfg.Arch, Options: opts} }
	var codes [][]byte
	var sums [][]interface{}
	for round := 0; round < 3; round++ {
		ex, st, err := wrapped.Compile(cQ.Module, env())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		codes = append(codes, codeOf(t, ex))
		var s []interface{}
		for _, fs := range st.Summaries {
			s = append(s, fs)
		}
		sums = append(sums, s)
		if round == 0 && cache.Len() != 1 {
			t.Fatalf("tiny budget should evict down to one unit, Len=%d", cache.Len())
		}
	}
	for round, code := range codes {
		if !bytes.Equal(refCode, code) {
			t.Fatalf("round %d: cached code differs from uncached sequential (first diff %#x)",
				round, firstDiff(refCode, code))
		}
	}
	var refSums []interface{}
	for _, fs := range stRef.Summaries {
		refSums = append(refSums, fs)
	}
	for round, s := range sums {
		if !reflect.DeepEqual(refSums, s) {
			t.Fatalf("round %d: mcv summaries diverge from uncached compile", round)
		}
	}
	if hits, misses := cache.Counters(); hits+misses == 0 {
		t.Fatal("cache never consulted")
	}
}

// TestCacheWarmHits: recompiling the same module against a roomy cache must
// hit for every function and still link byte-identical code, with the hit
// and miss totals surfaced through the compile stats counters.
func TestCacheWarmHits(t *testing.T) {
	cfg := benchCfg(vt.VX64)
	w, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatal(err)
	}
	cache := pcc.NewCache(64 << 20)
	wrapped := pcc.Wrap(clift.New(), pcc.Config{Jobs: 2, Cache: cache})
	q := bench.HQueries()[0]
	c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	env := func() *backend.Env { return &backend.Env{DB: w.DB, Arch: cfg.Arch} }
	ex1, st1, err := wrapped.Compile(c.Module, env())
	if err != nil {
		t.Fatal(err)
	}
	ex2, st2, err := wrapped.Compile(c.Module, env())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(c.Module.Funcs))
	if hits, misses := cache.Counters(); hits != n || misses != n {
		t.Fatalf("hits=%d misses=%d, want %d/%d (all-miss cold, all-hit warm)", hits, misses, n, n)
	}
	if st1.Counters["cache_misses"] != n || st1.Counters["cache_hits"] != 0 {
		t.Fatalf("cold-run stats counters wrong: %v", st1.Counters)
	}
	if st2.Counters["cache_hits"] != n || st2.Counters["cache_misses"] != 0 {
		t.Fatalf("warm-run stats counters wrong: %v", st2.Counters)
	}
	if !bytes.Equal(codeOf(t, ex1), codeOf(t, ex2)) {
		t.Fatal("warm-run code differs from cold-run code")
	}
}

// tinyWorld builds a one-table dataset for targeted cache probes.
func tinyWorld(arch vt.Arch) (*rt.DB, *rt.Catalog) {
	m := vm.New(vm.Config{Arch: arch, MemSize: 64 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	tab := cat.CreateTable("t", 16, rt.ColSpec{Name: "x", Type: qir.I64})
	for i := int64(0); i < 16; i++ {
		cat.SetInt(tab.MustCol("x"), i, i)
	}
	return db, cat
}

// constSelect builds: SELECT x FROM t WHERE x > v. Two instances differ
// only in the literal v.
func constSelect(t *testing.T, v int64) plan.Node {
	t.Helper()
	pred, err := plan.NewCmp(plan.CmpGT,
		&plan.Col{Idx: 0, Ty: qir.I64}, &plan.ConstInt{Ty: qir.I64, V: v})
	if err != nil {
		t.Fatal(err)
	}
	return &plan.Select{
		Input: &plan.Scan{Table: "t", Cols: []plan.ColInfo{{Name: "x", Type: qir.I64}}},
		Pred:  pred,
	}
}

// TestCacheConstantSensitivity is the end-to-end cache-contract check
// around literal constants. With constant hoisting (the default), a
// constant-only change is the headline warm hit: the parameterized body is
// shared and the new literal is bound into the runtime constant pool, so
// the recompiled variant must hit for every function AND execute with the
// new value rather than the cached compile's. With hoisting disabled the
// literal is baked into the unit, and the old collision-resistance contract
// holds: a changed constant must miss rather than serve the stale unit.
func TestCacheConstantSensitivity(t *testing.T) {
	db, cat := tinyWorld(vt.VX64)
	cache := pcc.NewCache(64 << 20)
	wrapped := pcc.Wrap(clift.New(), pcc.Config{Jobs: 1, Cache: cache})
	run := func(name string, v int64, opts codegen.Options) (*backend.Stats, int) {
		t.Helper()
		// The same module name across calls: the only difference between
		// the compiles is the literal.
		c, err := codegen.CompileOpts(name, constSelect(t, v), cat, opts)
		if err != nil {
			t.Fatal(err)
		}
		ex, st, err := wrapped.Compile(c.Module, &backend.Env{DB: db, Arch: vt.VX64})
		if err != nil {
			t.Fatal(err)
		}
		if err := codegen.Run(db, cat, c, ex.Call); err != nil {
			t.Fatal(err)
		}
		return st, len(db.Out.DrainRows())
	}
	hoisted := codegen.Options{Elim: true, Hoist: true}
	cold, rows := run("q", 5, hoisted)
	if cold.Counters["cache_hits"] != 0 {
		t.Fatalf("cold compile hit: %v", cold.Counters)
	}
	if rows != 10 {
		t.Fatalf("x > 5 over 0..15 returned %d rows, want 10", rows)
	}
	warm, _ := run("q", 5, hoisted)
	if warm.Counters["cache_misses"] != 0 || warm.Counters["cache_hits"] == 0 {
		t.Fatalf("verbatim recompile should hit for every function: %v", warm.Counters)
	}
	changed, rows := run("q", 6, hoisted)
	if changed.Counters["cache_misses"] != 0 || changed.Counters["cache_hits"] == 0 {
		t.Fatalf("constant-only variant should hit the parameterized cache: %v", changed.Counters)
	}
	if rows != 9 {
		t.Fatalf("stale constant executed after cache hit: x > 6 returned %d rows, want 9", rows)
	}

	inline := codegen.Options{Elim: true}
	coldI, rows := run("qi", 5, inline)
	if coldI.Counters["cache_hits"] != 0 {
		t.Fatalf("inline cold compile hit: %v", coldI.Counters)
	}
	if rows != 10 {
		t.Fatalf("inline x > 5 returned %d rows, want 10", rows)
	}
	changedI, rows := run("qi", 6, inline)
	if changedI.Counters["cache_misses"] == 0 {
		t.Fatalf("inline constant change produced no miss — stale code served: %v", changedI.Counters)
	}
	if rows != 9 {
		t.Fatalf("inline x > 6 returned %d rows, want 9", rows)
	}
}

// TestCachePooledUnitEviction extends the eviction contract to pooled
// units: with a ~1-byte budget at most one unit survives between compiles,
// so every variant compile is forced back through the back-end for the
// evicted functions (misses > 0) — and whatever mix of hits and recompiles
// links must still execute with the variant's own constants. Eviction must
// never corrupt the bind-at-execute discipline.
func TestCachePooledUnitEviction(t *testing.T) {
	db, cat := tinyWorld(vt.VX64)
	cache := pcc.NewCache(1)
	wrapped := pcc.Wrap(clift.New(), pcc.Config{Jobs: 1, Cache: cache})
	hoisted := codegen.Options{Elim: true, Hoist: true}
	for i, want := range []struct {
		v, rows int64
	}{{5, 10}, {6, 9}, {7, 8}} {
		c, err := codegen.CompileOpts("q", constSelect(t, want.v), cat, hoisted)
		if err != nil {
			t.Fatal(err)
		}
		ex, st, err := wrapped.Compile(c.Module, &backend.Env{DB: db, Arch: vt.VX64})
		if err != nil {
			t.Fatal(err)
		}
		if st.Counters["cache_misses"] == 0 {
			t.Fatalf("round %d: tiny budget must evict and force recompiles, got %v", i, st.Counters)
		}
		if err := codegen.Run(db, cat, c, ex.Call); err != nil {
			t.Fatal(err)
		}
		if n := int64(len(db.Out.DrainRows())); n != want.rows {
			t.Fatalf("round %d: x > %d returned %d rows, want %d", i, want.v, n, want.rows)
		}
	}
	if cache.Len() > 1 {
		t.Fatalf("budget-1 cache retains %d units", cache.Len())
	}
}

// TestCacheStructuralSensitivity: hoisting parameterizes constants only —
// a structural change (comparison direction) under the same module name
// must miss rather than reuse the pooled body.
func TestCacheStructuralSensitivity(t *testing.T) {
	db, cat := tinyWorld(vt.VX64)
	cache := pcc.NewCache(64 << 20)
	wrapped := pcc.Wrap(clift.New(), pcc.Config{Jobs: 1, Cache: cache})
	hoisted := codegen.Options{Elim: true, Hoist: true}
	compile := func(op plan.CmpOp) *backend.Stats {
		t.Helper()
		pred, err := plan.NewCmp(op, &plan.Col{Idx: 0, Ty: qir.I64}, &plan.ConstInt{Ty: qir.I64, V: 5})
		if err != nil {
			t.Fatal(err)
		}
		node := &plan.Select{
			Input: &plan.Scan{Table: "t", Cols: []plan.ColInfo{{Name: "x", Type: qir.I64}}},
			Pred:  pred,
		}
		c, err := codegen.CompileOpts("q", node, cat, hoisted)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := wrapped.Compile(c.Module, &backend.Env{DB: db, Arch: vt.VX64})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	compile(plan.CmpGT)
	st := compile(plan.CmpGE)
	if st.Counters["cache_misses"] == 0 {
		t.Fatalf("structural change (GT→GE) served from cache: %v", st.Counters)
	}
}

// TestWrapTransparent: non-sharding engines pass through Wrap unchanged,
// and jobs<=0 defaults sanely.
func TestWrapTransparent(t *testing.T) {
	e := clift.New()
	w := pcc.Wrap(e, pcc.Config{Jobs: 4})
	if w.Name() != e.Name() {
		t.Fatalf("wrapper must keep the engine name, got %q", w.Name())
	}
	pe, ok := w.(*pcc.Engine)
	if !ok {
		t.Fatalf("expected *pcc.Engine, got %T", w)
	}
	if pe.Jobs() != 4 {
		t.Fatalf("Jobs=%d, want 4", pe.Jobs())
	}
}
