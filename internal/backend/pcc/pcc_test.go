package pcc_test

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"qcc/internal/backend"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/backend/pcc"
	"qcc/internal/bench"
	"qcc/internal/codegen"
	"qcc/internal/plan"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// codeImage reaches the linked machine-code image behind an Exec; every
// compiled back-end's exec exposes it.
type codeImage interface{ Module() *vm.Module }

func codeOf(t *testing.T, ex backend.Exec) []byte {
	t.Helper()
	ci, ok := ex.(codeImage)
	if !ok {
		t.Fatalf("exec %T does not expose its linked module", ex)
	}
	return ci.Module().Code
}

// funcEngines is the per-function-pipeline lineup the driver shards.
func funcEngines(arch vt.Arch) map[string]backend.Engine {
	es := map[string]backend.Engine{
		"clift":      clift.New(),
		"llvm-cheap": lbe.NewCheap(),
		"llvm-opt":   lbe.NewOpt(),
		"gcc":        cbe.New(),
	}
	if arch == vt.VX64 {
		es["direct"] = direct.New()
	}
	return es
}

func benchCfg(arch vt.Arch) bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Arch = arch
	cfg.SF = 0.01
	cfg.MemMB = 192
	return cfg
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestParallelMatchesSequential is the determinism differential: for every
// TPC-H query, every wired back-end, and both architectures, the parallel
// driver (jobs=4) must link byte-identical machine code to the plain
// sequential compile. Two identically-built worlds keep interned addresses
// comparable; the per-query checkpoint/reset mirrors the benchmark harness.
func TestParallelMatchesSequential(t *testing.T) {
	arches := []vt.Arch{vt.VX64, vt.VA64}
	if testing.Short() {
		arches = arches[:1]
	}
	for _, arch := range arches {
		engines := funcEngines(arch)
		names := make([]string, 0, len(engines))
		for n := range engines {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			eng := engines[name]
			t.Run(arch.String()+"/"+name, func(t *testing.T) {
				cfg := benchCfg(arch)
				seqW, err := bench.NewWorldLoaded(cfg, "tpch")
				if err != nil {
					t.Fatal(err)
				}
				parW, err := bench.NewWorldLoaded(cfg, "tpch")
				if err != nil {
					t.Fatal(err)
				}
				par := pcc.Wrap(eng, pcc.Config{Jobs: 4})
				seqW.DB.Checkpoint()
				parW.DB.Checkpoint()
				queries := bench.HQueries()
				if testing.Short() {
					queries = queries[:4]
				}
				for _, q := range queries {
					cs, err := codegen.Compile(q.Name, q.Build(), seqW.Cat)
					if err != nil {
						t.Fatal(err)
					}
					cp, err := codegen.Compile(q.Name, q.Build(), parW.Cat)
					if err != nil {
						t.Fatal(err)
					}
					exS, _, err := eng.Compile(cs.Module, &backend.Env{DB: seqW.DB, Arch: arch})
					if err != nil {
						t.Fatalf("%s sequential: %v", q.Name, err)
					}
					exP, _, err := par.Compile(cp.Module, &backend.Env{DB: parW.DB, Arch: arch})
					if err != nil {
						t.Fatalf("%s parallel: %v", q.Name, err)
					}
					sc, pc := codeOf(t, exS), codeOf(t, exP)
					if !bytes.Equal(sc, pc) {
						t.Fatalf("%s: parallel code differs from sequential (len %d vs %d, first diff at %#x)",
							q.Name, len(sc), len(pc), firstDiff(sc, pc))
					}
					seqW.DB.ResetToCheckpoint()
					parW.DB.ResetToCheckpoint()
				}
			})
		}
	}
}

// TestCacheDeterminism compiles a query three times against a cache whose
// budget forces eviction between compiles: cold, partially warm, and
// re-warmed code must be byte-identical to an uncached sequential compile,
// and the machine-code verifier summaries must agree exactly.
func TestCacheDeterminism(t *testing.T) {
	cfg := benchCfg(vt.VX64)
	refW, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatal(err)
	}
	cacheW, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatal(err)
	}
	eng := clift.New()
	q := bench.HQueries()[0]
	opts := backend.Options{Check: true}

	cRef, err := codegen.Compile(q.Name, q.Build(), refW.Cat)
	if err != nil {
		t.Fatal(err)
	}
	exRef, stRef, err := eng.Compile(cRef.Module, &backend.Env{DB: refW.DB, Arch: cfg.Arch, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	refCode := codeOf(t, exRef)

	// A ~1-byte budget keeps at most one unit resident, so every compile
	// round-trips through insert-and-evict.
	cache := pcc.NewCache(1)
	wrapped := pcc.Wrap(eng, pcc.Config{Jobs: 4, Cache: cache})
	cQ, err := codegen.Compile(q.Name, q.Build(), cacheW.Cat)
	if err != nil {
		t.Fatal(err)
	}
	env := func() *backend.Env { return &backend.Env{DB: cacheW.DB, Arch: cfg.Arch, Options: opts} }
	var codes [][]byte
	var sums [][]interface{}
	for round := 0; round < 3; round++ {
		ex, st, err := wrapped.Compile(cQ.Module, env())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		codes = append(codes, codeOf(t, ex))
		var s []interface{}
		for _, fs := range st.Summaries {
			s = append(s, fs)
		}
		sums = append(sums, s)
		if round == 0 && cache.Len() != 1 {
			t.Fatalf("tiny budget should evict down to one unit, Len=%d", cache.Len())
		}
	}
	for round, code := range codes {
		if !bytes.Equal(refCode, code) {
			t.Fatalf("round %d: cached code differs from uncached sequential (first diff %#x)",
				round, firstDiff(refCode, code))
		}
	}
	var refSums []interface{}
	for _, fs := range stRef.Summaries {
		refSums = append(refSums, fs)
	}
	for round, s := range sums {
		if !reflect.DeepEqual(refSums, s) {
			t.Fatalf("round %d: mcv summaries diverge from uncached compile", round)
		}
	}
	if hits, misses := cache.Counters(); hits+misses == 0 {
		t.Fatal("cache never consulted")
	}
}

// TestCacheWarmHits: recompiling the same module against a roomy cache must
// hit for every function and still link byte-identical code, with the hit
// and miss totals surfaced through the compile stats counters.
func TestCacheWarmHits(t *testing.T) {
	cfg := benchCfg(vt.VX64)
	w, err := bench.NewWorldLoaded(cfg, "tpch")
	if err != nil {
		t.Fatal(err)
	}
	cache := pcc.NewCache(64 << 20)
	wrapped := pcc.Wrap(clift.New(), pcc.Config{Jobs: 2, Cache: cache})
	q := bench.HQueries()[0]
	c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	env := func() *backend.Env { return &backend.Env{DB: w.DB, Arch: cfg.Arch} }
	ex1, st1, err := wrapped.Compile(c.Module, env())
	if err != nil {
		t.Fatal(err)
	}
	ex2, st2, err := wrapped.Compile(c.Module, env())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(c.Module.Funcs))
	if hits, misses := cache.Counters(); hits != n || misses != n {
		t.Fatalf("hits=%d misses=%d, want %d/%d (all-miss cold, all-hit warm)", hits, misses, n, n)
	}
	if st1.Counters["cache_misses"] != n || st1.Counters["cache_hits"] != 0 {
		t.Fatalf("cold-run stats counters wrong: %v", st1.Counters)
	}
	if st2.Counters["cache_hits"] != n || st2.Counters["cache_misses"] != 0 {
		t.Fatalf("warm-run stats counters wrong: %v", st2.Counters)
	}
	if !bytes.Equal(codeOf(t, ex1), codeOf(t, ex2)) {
		t.Fatal("warm-run code differs from cold-run code")
	}
}

// tinyWorld builds a one-table dataset for targeted cache probes.
func tinyWorld(arch vt.Arch) (*rt.DB, *rt.Catalog) {
	m := vm.New(vm.Config{Arch: arch, MemSize: 64 << 20})
	db := rt.NewDB(m)
	cat := rt.NewCatalog(db)
	tab := cat.CreateTable("t", 16, rt.ColSpec{Name: "x", Type: qir.I64})
	for i := int64(0); i < 16; i++ {
		cat.SetInt(tab.MustCol("x"), i, i)
	}
	return db, cat
}

// constSelect builds: SELECT x FROM t WHERE x > v. Two instances differ
// only in the literal v.
func constSelect(t *testing.T, v int64) plan.Node {
	t.Helper()
	pred, err := plan.NewCmp(plan.CmpGT,
		&plan.Col{Idx: 0, Ty: qir.I64}, &plan.ConstInt{Ty: qir.I64, V: v})
	if err != nil {
		t.Fatal(err)
	}
	return &plan.Select{
		Input: &plan.Scan{Table: "t", Cols: []plan.ColInfo{{Name: "x", Type: qir.I64}}},
		Pred:  pred,
	}
}

// TestCacheConstantSensitivity is the end-to-end collision-resistance
// check: a module recompiled verbatim hits, but changing a single literal
// constant in the query must miss rather than serve the stale unit.
func TestCacheConstantSensitivity(t *testing.T) {
	db, cat := tinyWorld(vt.VX64)
	cache := pcc.NewCache(64 << 20)
	wrapped := pcc.Wrap(clift.New(), pcc.Config{Jobs: 1, Cache: cache})
	compile := func(v int64) *backend.Stats {
		t.Helper()
		// The same module name both times: the only difference between the
		// two compiles is the literal.
		c, err := codegen.Compile("q", constSelect(t, v), cat)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := wrapped.Compile(c.Module, &backend.Env{DB: db, Arch: vt.VX64})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cold := compile(5)
	if cold.Counters["cache_hits"] != 0 {
		t.Fatalf("cold compile hit: %v", cold.Counters)
	}
	warm := compile(5)
	if warm.Counters["cache_misses"] != 0 || warm.Counters["cache_hits"] == 0 {
		t.Fatalf("verbatim recompile should hit for every function: %v", warm.Counters)
	}
	changed := compile(6)
	if changed.Counters["cache_misses"] == 0 {
		t.Fatalf("constant change produced no miss — stale code served: %v", changed.Counters)
	}
}

// TestWrapTransparent: non-sharding engines pass through Wrap unchanged,
// and jobs<=0 defaults sanely.
func TestWrapTransparent(t *testing.T) {
	e := clift.New()
	w := pcc.Wrap(e, pcc.Config{Jobs: 4})
	if w.Name() != e.Name() {
		t.Fatalf("wrapper must keep the engine name, got %q", w.Name())
	}
	pe, ok := w.(*pcc.Engine)
	if !ok {
		t.Fatalf("expected *pcc.Engine, got %T", w)
	}
	if pe.Jobs() != 4 {
		t.Fatalf("Jobs=%d, want 4", pe.Jobs())
	}
}
