package pcc

import (
	"container/list"
	"sync"

	"qcc/internal/backend"
)

// Cache is the content-addressed code cache: compiled units keyed by the
// canonical fingerprint of (function body, target architecture, back-end
// variant). Entries are position-independent unit payloads, so a hit skips
// the whole per-function pipeline and goes straight to Link.
//
// Eviction is least-recently-used under a byte budget measured by
// Unit.Bytes (machine-code size; the IR-side footprint is proportional).
// All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	size   int64
	lru    *list.List // front = most recent; values are *entry
	m      map[string]*list.Element

	hits   int64
	misses int64
}

type entry struct {
	key  string
	unit *cachedUnit
}

// cachedUnit stores the shareable parts of a backend.Unit (everything but
// the module-local index).
type cachedUnit struct {
	name    string
	bytes   int
	payload any
}

// NewCache returns a cache that evicts past budgetBytes of cached machine
// code. budgetBytes <= 0 selects an effectively unbounded cache.
func NewCache(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = 1 << 62
	}
	return &Cache{budget: budgetBytes, lru: list.New(), m: map[string]*list.Element{}}
}

// get returns the cached unit for key, marking it most recently used.
func (c *Cache) get(key string) (*backend.Unit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	u := el.Value.(*entry).unit
	return &backend.Unit{Name: u.name, Bytes: u.bytes, Payload: u.payload}, true
}

// put inserts (or refreshes) a unit and evicts the least-recently-used
// entries until the byte budget holds again.
func (c *Cache) put(key string, u *backend.Unit) {
	if u == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&entry{key: key, unit: &cachedUnit{
		name: u.Name, bytes: u.Bytes, payload: u.Payload,
	}})
	c.size += int64(u.Bytes)
	for c.size > c.budget && c.lru.Len() > 1 {
		el := c.lru.Back()
		ent := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.m, ent.key)
		c.size -= int64(ent.unit.bytes)
	}
}

// Len returns the number of cached units.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SizeBytes returns the cached machine-code bytes.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Counters returns the lifetime hit and miss counts.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
