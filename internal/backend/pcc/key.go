package pcc

import (
	"crypto/sha256"
	"encoding/binary"
	"io"

	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vt"
)

// unitKey computes the canonical cache fingerprint of function i: a sha256
// over the target architecture, the back-end variant string, and everything
// in the module the emitted unit bytes can depend on —
//
//   - the function name (lbe and cbe link units by symbol name),
//   - the signature, block structure, and raw instruction stream,
//   - the Extra and I128 constant pools,
//   - the machine addresses of interned string constants (OpConstStr bakes
//     them into the code as immediates; interning is content-addressed per
//     runtime, so equal addresses imply equal strings, and a different
//     runtime DB yields different addresses and therefore a miss),
//   - the module's full runtime-import table (call targets are encoded as
//     indices into it, and lbe routes them through index-labeled PLT stubs).
//
// Hashing the full RTNames list over-approximates (a function using none of
// the helpers still misses when an unrelated import differs), trading a few
// cross-module hits for soundness; the headline warm-run workload repeats
// whole modules, where RTNames match exactly.
func unitKey(arch vt.Arch, variant string, mod *qir.Module, db *rt.DB, i int) string {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws := func(s string) {
		w64(uint64(len(s)))
		io.WriteString(h, s)
	}
	w64(uint64(arch))
	ws(variant)

	f := mod.Funcs[i]
	ws(f.Name)
	w64(uint64(len(f.Params)))
	for _, t := range f.Params {
		w64(uint64(t))
	}
	w64(uint64(f.Ret))
	w64(uint64(len(f.Blocks)))
	for b := range f.Blocks {
		blk := &f.Blocks[b]
		w64(uint64(len(blk.Preds)))
		for _, p := range blk.Preds {
			w64(uint64(uint32(p)))
		}
		w64(uint64(len(blk.List)))
		for _, v := range blk.List {
			w64(uint64(uint32(v)))
		}
	}
	w64(uint64(len(f.Instrs)))
	for v := range f.Instrs {
		in := &f.Instrs[v]
		w64(uint64(in.Op))
		w64(uint64(in.Type))
		w64(uint64(uint32(in.A)))
		w64(uint64(uint32(in.B)))
		w64(uint64(uint32(in.C)))
		w64(uint64(in.Imm))
		w64(uint64(in.Aux))
		if in.Op == qir.OpConstStr {
			lo, hi := db.InternString(mod.Strings[in.Imm])
			w64(lo)
			w64(hi)
		}
		if in.Op == qir.OpConstPool {
			// The emitted unit bakes in the slot's machine address, not its
			// value (bound at execution time) — hash exactly that. Same DB
			// ⇒ same address ⇒ constant-only query variants share the unit;
			// a different DB yields a different address and a sound miss.
			w64(db.ConstPoolAddr(int(in.Imm)))
		}
	}
	w64(uint64(len(f.Extra)))
	for _, x := range f.Extra {
		w64(uint64(uint32(x)))
	}
	w64(uint64(len(f.I128)))
	for _, x := range f.I128 {
		w64(x)
	}
	w64(uint64(len(mod.RTNames)))
	for _, n := range mod.RTNames {
		ws(n)
	}
	sum := h.Sum(nil)
	return string(sum)
}
