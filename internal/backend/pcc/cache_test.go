package pcc

import (
	"fmt"
	"testing"

	"qcc/internal/backend"
)

func mkUnit(name string, bytes int) *backend.Unit {
	return &backend.Unit{Name: name, Bytes: bytes, Payload: name}
}

func TestCacheHitMissCounting(t *testing.T) {
	c := NewCache(0) // unbounded
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", mkUnit("fa", 10))
	u, ok := c.get("a")
	if !ok || u.Name != "fa" || u.Bytes != 10 || u.Payload.(string) != "fa" {
		t.Fatalf("bad hit: %+v ok=%v", u, ok)
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCacheHitReturnsFreshUnit: hits must hand out fresh Unit headers so the
// driver can stamp per-module indices without corrupting the cache.
func TestCacheHitReturnsFreshUnit(t *testing.T) {
	c := NewCache(0)
	c.put("a", mkUnit("fa", 10))
	u1, _ := c.get("a")
	u1.Index = 99
	u2, _ := c.get("a")
	if u2.Index == 99 {
		t.Fatal("cache returned an aliased Unit header")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(100)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), mkUnit(fmt.Sprintf("f%d", i), 40))
	}
	// Budget 100 with 40-byte units keeps at most 2 entries; the two oldest
	// were evicted.
	if n := c.Len(); n != 2 {
		t.Fatalf("Len=%d, want 2", n)
	}
	if s := c.SizeBytes(); s != 80 {
		t.Fatalf("SizeBytes=%d, want 80", s)
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("k0 should have been evicted")
	}
	if _, ok := c.get("k3"); !ok {
		t.Fatal("k3 should be resident")
	}
	// Touching k2 makes it most recent, so a new insert evicts nothing
	// before it.
	if _, ok := c.get("k2"); !ok {
		t.Fatal("k2 should be resident")
	}
	c.put("k4", mkUnit("f4", 40))
	if _, ok := c.get("k2"); !ok {
		t.Fatal("recently-used k2 evicted before older entries")
	}
}

// TestCacheKeepsOneOversizedEntry: an entry larger than the whole budget is
// still admitted (Link needs it this compile), but stays the only resident.
func TestCacheKeepsOneOversizedEntry(t *testing.T) {
	c := NewCache(10)
	c.put("big", mkUnit("f", 1000))
	if c.Len() != 1 {
		t.Fatalf("Len=%d, want 1", c.Len())
	}
	c.put("big2", mkUnit("g", 2000))
	if c.Len() != 1 {
		t.Fatalf("Len=%d after second oversized put, want 1", c.Len())
	}
	if _, ok := c.get("big2"); !ok {
		t.Fatal("newest oversized entry should be the survivor")
	}
}
