package pcc

import (
	"testing"

	"qcc/internal/codegen"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/tpch"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// These tests pin down the key contract the constant-hoisted plan cache
// rests on: with hoisting, a unit key names the *parameterized* body, so it
// must be invariant across constant-only query variants and still sensitive
// to everything that changes the emitted bytes — plan structure, target
// arch, back-end variant, and the constant pool's shape (slot indices).

// TestUnitKeyConstantVariantInvariance: every TPC-H parameterized family
// must key identically across constant-only variants when compiled with
// hoisting — this is precisely what lets one cache entry serve the whole
// family. Compiled against one DB so interned addresses are comparable.
func TestUnitKeyConstantVariantInvariance(t *testing.T) {
	db := rt.NewDB(vm.New(vm.Config{Arch: vt.VX64, MemSize: 256 << 20}))
	cat := rt.NewCatalog(db)
	if err := tpch.Load(cat, 0.01); err != nil {
		t.Fatal(err)
	}
	opts := codegen.Options{Elim: true, Hoist: true}
	for _, fam := range tpch.ParamQueries() {
		t.Run(fam.Name, func(t *testing.T) {
			a, err := codegen.CompileOpts(fam.Name, fam.Build(0), cat, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := codegen.CompileOpts(fam.Name, fam.Build(3), cat, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Module.Funcs) != len(b.Module.Funcs) {
				t.Fatalf("variant changed function count: %d vs %d",
					len(a.Module.Funcs), len(b.Module.Funcs))
			}
			for i := range a.Module.Funcs {
				ka := unitKey(vt.VX64, "v", a.Module, db, i)
				kb := unitKey(vt.VX64, "v", b.Module, db, i)
				if ka != kb {
					t.Errorf("func %d (%s): constant-only variant changed the unit key",
						i, a.Module.Funcs[i].Name)
				}
			}
			// Same body, different back-end variant tag: must not collide.
			if unitKey(vt.VX64, "v", a.Module, db, 0) == unitKey(vt.VX64, "w", a.Module, db, 0) {
				t.Error("variant tag not keyed for pooled units")
			}
		})
	}
}

// TestUnitKeyStructuralSensitivity: two families with different plan
// structure must never share keys, even under hoisting — only constants are
// parameterized, never shape.
func TestUnitKeyStructuralSensitivity(t *testing.T) {
	db := rt.NewDB(vm.New(vm.Config{Arch: vt.VX64, MemSize: 256 << 20}))
	cat := rt.NewCatalog(db)
	if err := tpch.Load(cat, 0.01); err != nil {
		t.Fatal(err)
	}
	opts := codegen.Options{Elim: true, Hoist: true}
	fams := tpch.ParamQueries()
	seen := map[string]string{}
	for _, fam := range fams {
		c, err := codegen.CompileOpts("q", fam.Build(0), cat, opts)
		if err != nil {
			t.Fatal(err)
		}
		// The pipeline driver function (last in the module) carries the
		// family's whole fused loop structure; same module name keeps the
		// comparison purely structural.
		k := unitKey(vt.VX64, "v", c.Module, db, len(c.Module.Funcs)-1)
		if prev, dup := seen[k]; dup {
			t.Fatalf("structurally different families %s and %s share a unit key", prev, fam.Name)
		}
		seen[k] = fam.Name
	}
}

// TestUnitKeyPoolShapeSensitivity: a pooled load bakes its slot's machine
// address into the unit, so the key must track the slot index (and stay
// deterministic for a fixed one).
func TestUnitKeyPoolShapeSensitivity(t *testing.T) {
	poolMod := func(slot int64) *qir.Module {
		f := &qir.Func{
			Name: "f",
			Ret:  qir.I64,
			Instrs: []qir.Instr{
				{Op: qir.OpConstPool, Type: qir.I64, A: qir.NoValue, B: qir.NoValue, C: qir.NoValue, Imm: slot},
				{Op: qir.OpRet, Type: qir.I64, A: 0},
			},
			Blocks: []qir.BasicBlock{{List: []qir.Value{0, 1}}},
		}
		return &qir.Module{Name: "m", Funcs: []*qir.Func{f},
			Pool: []qir.PoolConst{{Type: qir.I64, Lo: 1}, {Type: qir.I64, Lo: 2}}}
	}
	db := rt.NewDB(vm.New(vm.Config{Arch: vt.VX64, MemSize: 64 << 20}))
	a := unitKey(vt.VX64, "v1", poolMod(0), db, 0)
	if b := unitKey(vt.VX64, "v1", poolMod(0), db, 0); a != b {
		t.Fatal("pooled unit key not deterministic")
	}
	if b := unitKey(vt.VX64, "v1", poolMod(1), db, 0); a == b {
		t.Fatal("different pool slots collided: the emitted address differs, the key must too")
	}
}
