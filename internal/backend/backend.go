// Package backend defines the execution-engine interface shared by all
// compilation back-ends (interpreter, DirectEmit, Cranelift-like, LLVM-like,
// GCC/C-like) plus the per-compilation statistics used by the benchmark
// harness to reproduce the paper's compile-time breakdowns.
package backend

import (
	"fmt"
	"sort"
	"time"

	"qcc/internal/mcv"
	"qcc/internal/obs"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vt"
)

// Options toggles optional compilation behavior shared by all back-ends.
type Options struct {
	// Check runs the machine-code verifier (internal/mcv) over the
	// compiled output: the symbolic register-allocation checker, the
	// machine-code lint, and the per-function structural summary used by
	// the cross-backend differential. Verification failures turn into
	// Compile errors; the checker's cost appears as its own "Check.*"
	// phases in Stats.
	Check bool
	// NoFuse disables the vm's load-time superinstruction fusion for the
	// modules this compilation produces, forcing the plain decoded-switch
	// dispatch loop. Execution semantics, counters, and trap reporting are
	// identical either way; the toggle exists for dispatch-cost
	// measurement and as an escape hatch.
	NoFuse bool
}

// Env is the compilation environment: the runtime the generated code will
// execute against (string constants are interned into its machine memory at
// compile time, JIT-style) and the target architecture.
type Env struct {
	DB   *rt.DB
	Arch vt.Arch
	// Trace, when non-nil, receives nested compile-time spans and counters
	// from the back-end. Nil (the default) disables tracing with zero
	// overhead beyond the per-phase clock reads Stats always needs.
	Trace *obs.Tracer
	// Options carries optional behavior toggles (verification, ...).
	Options Options
}

// Exec is a compiled query module ready to run.
type Exec interface {
	// Call invokes function fn of the compiled module.
	Call(fn int, args ...uint64) ([2]uint64, error)
}

// Stats records where one compilation spent its time, in the style of the
// paper's per-phase breakdowns (Figures 2-5, Table I).
type Stats struct {
	// Phases holds per-phase wall-clock durations, accumulated in
	// insertion order.
	Phases []Phase
	// Total is the overall compile wall-clock time.
	Total time.Duration
	// CodeBytes is the emitted machine-code size (0 for the interpreter).
	CodeBytes int
	// Funcs is the number of compiled functions.
	Funcs int
	// Counters holds back-end specific event counts (e.g. FastISel
	// fallbacks by cause).
	Counters map[string]int64
	// AllocBytes/AllocObjs are the Go heap allocation deltas over the
	// whole compilation (captured only when a tracer is attached; 0
	// otherwise).
	AllocBytes int64
	AllocObjs  int64
	// Summaries holds the per-function structural fingerprints produced
	// when Options.Check is set, for cross-backend differential checks.
	Summaries []mcv.FuncSummary
	// Wall is the elapsed wall-clock time of the compilation when it ran
	// on more than one goroutine (set by the parallel driver). Zero for
	// single-threaded compiles, where Total already is wall-clock time.
	Wall time.Duration
}

// WallClock returns the compilation's elapsed wall-clock time: Wall when a
// parallel driver recorded one, otherwise Total (single-threaded compiles
// spend their phases back to back, so the phase sum is the elapsed time).
func (s *Stats) WallClock() time.Duration {
	if s.Wall > 0 {
		return s.Wall
	}
	return s.Total
}

// Phase is one named compile phase.
type Phase struct {
	Name string
	Dur  time.Duration
}

// AddPhase accumulates dur into the named phase.
func (s *Stats) AddPhase(name string, dur time.Duration) {
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			s.Phases[i].Dur += dur
			return
		}
	}
	s.Phases = append(s.Phases, Phase{Name: name, Dur: dur})
}

// Count adds delta to a named counter.
func (s *Stats) Count(name string, delta int64) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[name] += delta
}

// Merge accumulates other into s (for summing per-query stats).
func (s *Stats) Merge(other *Stats) {
	for _, p := range other.Phases {
		s.AddPhase(p.Name, p.Dur)
	}
	s.Total += other.Total
	s.Wall += other.Wall
	s.CodeBytes += other.CodeBytes
	s.Funcs += other.Funcs
	s.AllocBytes += other.AllocBytes
	s.AllocObjs += other.AllocObjs
	s.Summaries = append(s.Summaries, other.Summaries...)
	for k, v := range other.Counters {
		s.Count(k, v)
	}
}

// PhaseDur returns the duration of a named phase (0 if absent).
func (s *Stats) PhaseDur(name string) time.Duration {
	for _, p := range s.Phases {
		if p.Name == name {
			return p.Dur
		}
	}
	return 0
}

// SortedCounters returns counter names in stable order.
func (s *Stats) SortedCounters() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Engine is one compilation back-end.
type Engine interface {
	// Name is the display name used in benchmark tables.
	Name() string
	// Compile lowers a QIR module to executable form. The returned Stats
	// carry the phase breakdown of this compilation.
	Compile(mod *qir.Module, env *Env) (Exec, *Stats, error)
}

// Unit is one function's compiled-but-unlinked output. The payload is
// back-end specific and position independent: intra-function branches are
// already resolved PC-relative, while references to other functions remain
// symbolic (function-index relocations) until Link. Payloads must not be
// mutated after CompileFunc returns — the parallel driver shares them with
// the content-addressed code cache.
type Unit struct {
	// Index is the function's position in qir.Module.Funcs.
	Index int
	// Name is the function name (display and symbol resolution).
	Name string
	// Bytes approximates the payload's machine-code size, used by the
	// code cache's byte budget.
	Bytes int
	// Payload is the back-end specific compilation result consumed by
	// Link. Treat as immutable.
	Payload any
}

// ModuleCompiler compiles the functions of one module independently and
// links the results. Obtained from FuncEngine.BeginModule; one instance is
// tied to one (module, env) pair.
//
// CompileFunc must be safe to call concurrently from multiple goroutines
// with distinct indices, must not mutate shared state (the module, the
// runtime DB, the machine), and must produce deterministic output: the
// bytes of unit i depend only on the module content, the environment, and
// the back-end configuration — never on compilation order or timing.
// Link consumes the units in index order and must produce output
// byte-identical to a sequential CompileUnits run.
type ModuleCompiler interface {
	// Variant returns a stable string identifying the code-generation
	// configuration (back-end name plus every option that can change
	// emitted bytes). Units produced by compilers with equal Variant, for
	// equal target architectures and equal canonical function
	// fingerprints, are interchangeable — the contract behind the
	// content-addressed code cache. An empty string opts this back-end
	// out of caching.
	Variant() string
	// CompileFunc compiles function i into a position-independent unit.
	// Phase time is charged to ph (top-level spans of a fresh per-unit
	// Phaser under the parallel driver; the module Phaser when
	// sequential).
	CompileFunc(i int, ph *Phaser) (*Unit, error)
	// Link resolves inter-function references over the units (one per
	// module function, in index order) and produces the executable.
	Link(units []*Unit, ph *Phaser) (Exec, error)
}

// FuncEngine is an Engine whose compilation pipeline is split per function,
// enabling the parallel driver (internal/backend/pcc) to shard a module
// across worker goroutines. BeginModule performs all shared-state mutation
// up front — interning string constants into the runtime, importing runtime
// helper names into the module — so CompileFunc bodies are pure.
type FuncEngine interface {
	Engine
	BeginModule(mod *qir.Module, env *Env, ph *Phaser) (ModuleCompiler, error)
}

// PreIntern materializes every string constant of the module into the
// runtime's machine memory (in pool order, which is deterministic).
// FuncEngine back-ends call this in BeginModule so that string lookups in
// CompileFunc bodies hit the memoized table and never mutate the machine.
func PreIntern(mod *qir.Module, db *rt.DB) {
	for _, s := range mod.Strings {
		db.InternString(s)
	}
}

// CompileUnits is the sequential compilation driver shared by the
// FuncEngine back-ends: BeginModule, one CompileFunc per function in index
// order (each under a "func:<name>" trace group), then Link. Engine.Compile
// of every FuncEngine delegates here, so the parallel driver at jobs=1 and
// plain Compile run the exact same code path.
func CompileUnits(e FuncEngine, mod *qir.Module, env *Env) (Exec, *Stats, error) {
	stats := &Stats{Funcs: len(mod.Funcs)}
	ph := NewPhaser(stats, env.Trace)
	mc, err := e.BeginModule(mod, env, ph)
	if err != nil {
		return nil, nil, err
	}
	units := make([]*Unit, len(mod.Funcs))
	for i, f := range mod.Funcs {
		fsp := ph.BeginGroup("func:" + f.Name)
		u, err := mc.CompileFunc(i, ph)
		fsp.End()
		if err != nil {
			return nil, nil, err
		}
		units[i] = u
	}
	exec, err := mc.Link(units, ph)
	if err != nil {
		return nil, nil, err
	}
	ph.Finish()
	return exec, stats, nil
}

// Phaser measures compile phases as explicit begin/end spans. It replaces
// the flat Timer.Lap pattern, which charged everything since the previous
// lap to a single phase and therefore mis-attributed time whenever phases
// nested (ISel calling into the encoder) or interleaved.
//
// Top-level phase spans accumulate into Stats.Phases; nested phase spans
// appear only in the attached trace, so their time rolls up into the
// enclosing phase exactly once and Stats.Total stays the sum of the
// top-level phases. Group spans (BeginGroup) are trace-only containers —
// e.g. one span per compiled function — and do not affect phase accounting
// at all. A nil *Phaser is safe to call into (used by helpers shared with
// untimed paths).
type Phaser struct {
	s     *Stats
	tr    *obs.Tracer
	depth int
	// allocB/allocO baseline the compile-level allocation delta captured
	// in Finish when a tracer is attached.
	allocB, allocO int64
}

// NewPhaser starts phase measurement writing into s, mirroring spans into
// tr (which may be nil for stats-only operation).
func NewPhaser(s *Stats, tr *obs.Tracer) *Phaser {
	p := &Phaser{s: s, tr: tr}
	if tr.Enabled() {
		p.allocB, p.allocO = obs.ReadAllocs()
	}
	return p
}

// PhaseSpan is one open phase (or group) span. End must be called exactly
// once; the zero value is inert.
type PhaseSpan struct {
	p     *Phaser
	name  string
	start time.Time
	sp    obs.SpanRef
	top   bool
	group bool
}

// Begin opens a phase span. Top-level spans are charged to Stats.Phases on
// End; nested spans are trace-only detail.
func (p *Phaser) Begin(name string) PhaseSpan {
	if p == nil {
		return PhaseSpan{}
	}
	p.depth++
	return PhaseSpan{
		p: p, name: name, top: p.depth == 1,
		start: time.Now(), sp: p.tr.BeginCat(name, "phase"),
	}
}

// BeginGroup opens a trace-only grouping span (e.g. "func:<name>" around a
// function's phases, or "RegAlloc" around its sub-phases). It nests in the
// trace but leaves phase accounting untouched, so sub-phases begun inside
// it still count as top-level phases.
func (p *Phaser) BeginGroup(name string) PhaseSpan {
	if p == nil {
		return PhaseSpan{}
	}
	return PhaseSpan{p: p, group: true, sp: p.tr.BeginCat(name, "group")}
}

// End closes the span, charging top-level phases to Stats.
func (ps PhaseSpan) End() {
	if ps.p == nil {
		return
	}
	if ps.group {
		ps.sp.End()
		return
	}
	ps.p.depth--
	if ps.top {
		ps.p.s.AddPhase(ps.name, time.Since(ps.start))
	}
	ps.sp.End()
}

// Finish completes phase measurement: Stats.Total becomes the sum of the
// recorded phases, and — when a tracer is attached — the compilation's heap
// allocation delta lands in Stats.AllocBytes/AllocObjs.
func (p *Phaser) Finish() {
	if p == nil {
		return
	}
	if p.tr.Enabled() {
		b, o := obs.ReadAllocs()
		p.s.AllocBytes += b - p.allocB
		p.s.AllocObjs += o - p.allocO
	}
	var total time.Duration
	for _, ph := range p.s.Phases {
		total += ph.Dur
	}
	p.s.Total = total
}

// Tracer returns the attached tracer (nil when tracing is off), for
// call sites that want raw spans or counters.
func (p *Phaser) Tracer() *obs.Tracer {
	if p == nil {
		return nil
	}
	return p.tr
}

// Stats returns the stats the phaser charges into (nil for a nil phaser).
func (p *Phaser) Stats() *Stats {
	if p == nil {
		return nil
	}
	return p.s
}

// Count adds delta to a named counter of the phaser's stats. Nil-safe, so
// per-function pipeline code can record event counters through the phaser
// it already threads.
func (p *Phaser) Count(name string, delta int64) {
	if p == nil {
		return
	}
	p.s.Count(name, delta)
}

// Timer is the legacy flat phase timer, kept as a migration shim.
//
// Deprecated: Lap charges everything since the previous lap to one phase
// and cannot express nesting; use Phaser begin/end spans instead.
type Timer struct {
	s    *Stats
	last time.Time
}

// NewTimer starts a phase timer writing into s.
func NewTimer(s *Stats) *Timer {
	return &Timer{s: s, last: time.Now()}
}

// Lap records the time since the previous lap under the given phase name.
func (t *Timer) Lap(name string) {
	now := time.Now()
	t.s.AddPhase(name, now.Sub(t.last))
	t.last = now
}

// ErrUnsupported reports a module using features a back-end cannot compile.
type ErrUnsupported struct {
	Backend string
	Reason  string
}

func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("%s: unsupported: %s", e.Backend, e.Reason)
}
