// Package backend defines the execution-engine interface shared by all
// compilation back-ends (interpreter, DirectEmit, Cranelift-like, LLVM-like,
// GCC/C-like) plus the per-compilation statistics used by the benchmark
// harness to reproduce the paper's compile-time breakdowns.
package backend

import (
	"fmt"
	"sort"
	"time"

	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vt"
)

// Env is the compilation environment: the runtime the generated code will
// execute against (string constants are interned into its machine memory at
// compile time, JIT-style) and the target architecture.
type Env struct {
	DB   *rt.DB
	Arch vt.Arch
}

// Exec is a compiled query module ready to run.
type Exec interface {
	// Call invokes function fn of the compiled module.
	Call(fn int, args ...uint64) ([2]uint64, error)
}

// Stats records where one compilation spent its time, in the style of the
// paper's per-phase breakdowns (Figures 2-5, Table I).
type Stats struct {
	// Phases holds per-phase wall-clock durations, accumulated in
	// insertion order.
	Phases []Phase
	// Total is the overall compile wall-clock time.
	Total time.Duration
	// CodeBytes is the emitted machine-code size (0 for the interpreter).
	CodeBytes int
	// Funcs is the number of compiled functions.
	Funcs int
	// Counters holds back-end specific event counts (e.g. FastISel
	// fallbacks by cause).
	Counters map[string]int64
}

// Phase is one named compile phase.
type Phase struct {
	Name string
	Dur  time.Duration
}

// AddPhase accumulates dur into the named phase.
func (s *Stats) AddPhase(name string, dur time.Duration) {
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			s.Phases[i].Dur += dur
			return
		}
	}
	s.Phases = append(s.Phases, Phase{Name: name, Dur: dur})
}

// Count adds delta to a named counter.
func (s *Stats) Count(name string, delta int64) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[name] += delta
}

// Merge accumulates other into s (for summing per-query stats).
func (s *Stats) Merge(other *Stats) {
	for _, p := range other.Phases {
		s.AddPhase(p.Name, p.Dur)
	}
	s.Total += other.Total
	s.CodeBytes += other.CodeBytes
	s.Funcs += other.Funcs
	for k, v := range other.Counters {
		s.Count(k, v)
	}
}

// PhaseDur returns the duration of a named phase (0 if absent).
func (s *Stats) PhaseDur(name string) time.Duration {
	for _, p := range s.Phases {
		if p.Name == name {
			return p.Dur
		}
	}
	return 0
}

// SortedCounters returns counter names in stable order.
func (s *Stats) SortedCounters() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Engine is one compilation back-end.
type Engine interface {
	// Name is the display name used in benchmark tables.
	Name() string
	// Compile lowers a QIR module to executable form. The returned Stats
	// carry the phase breakdown of this compilation.
	Compile(mod *qir.Module, env *Env) (Exec, *Stats, error)
}

// Timer measures phases for Stats with minimal overhead.
type Timer struct {
	s    *Stats
	last time.Time
}

// NewTimer starts a phase timer writing into s.
func NewTimer(s *Stats) *Timer {
	return &Timer{s: s, last: time.Now()}
}

// Lap records the time since the previous lap under the given phase name.
func (t *Timer) Lap(name string) {
	now := time.Now()
	t.s.AddPhase(name, now.Sub(t.last))
	t.last = now
}

// ErrUnsupported reports a module using features a back-end cannot compile.
type ErrUnsupported struct {
	Backend string
	Reason  string
}

func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("%s: unsupported: %s", e.Backend, e.Reason)
}
