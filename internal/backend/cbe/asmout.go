package cbe

import (
	"fmt"
	"strings"

	"qcc/internal/vt"
)

// asmgen lowers optimized TAC to textual assembly. Every variable has a
// stack slot; values are cached in registers within basic blocks and
// definitions write through to their slots. The textual output is then fed
// to the assembler — the separate process step of the GCC flow.
type asmgen struct {
	gf  *gimpleFunc
	tgt *vt.Target
	sb  *strings.Builder

	slot  []int64
	frame int64

	// Register caches (variable id per register; -1 free).
	gpr  []int32
	fpr  []int32
	loc  []regPair // per var
	pins uint32
	fpin uint32
}

type regPair struct{ r1, r2 int16 }

const noR = int16(-1)

// genAsm prints one function.
func genAsm(gf *gimpleFunc, tgt *vt.Target, sb *strings.Builder) error {
	g := &asmgen{gf: gf, tgt: tgt, sb: sb}
	g.gpr = make([]int32, tgt.NumGPR)
	g.fpr = make([]int32, tgt.NumFPR)
	g.loc = make([]regPair, len(gf.vars))
	for i := range g.loc {
		g.loc[i] = regPair{noR, noR}
	}
	g.clearCaches()

	// Frame layout.
	off := int64(len(tgt.CalleeSaved)) * 8 // callee-save area first
	g.slot = make([]int64, len(gf.vars))
	for v := range gf.vars {
		g.slot[v] = off
		if gf.vars[v] == ctI128 {
			off += 16
		} else {
			off += 8
		}
	}
	g.frame = (off + 15) &^ 15

	fmt.Fprintf(sb, ".func %s\n", gf.name)
	g.ins("subi r%d, r%d, %d", tgt.SP, tgt.SP, g.frame)
	for i, r := range tgt.CalleeSaved {
		g.ins("st64 r%d, %d, r%d", tgt.SP, int64(i)*8, r)
	}
	// Parameters arrive in argument registers; store to slots.
	reg := 0
	for p := 0; p < gf.nparams; p++ {
		g.ins("st64 r%d, %d, r%d", tgt.SP, g.slot[p], tgt.IntArgs[reg])
		reg++
		if gf.vars[p] == ctI128 {
			g.ins("st64 r%d, %d, r%d", tgt.SP, g.slot[p]+8, tgt.IntArgs[reg])
			reg++
		}
	}

	for i := range gf.code {
		if err := g.inst(&gf.code[i]); err != nil {
			return fmt.Errorf("cbe: %s: %w", gf.name, err)
		}
	}
	sb.WriteString(".endfunc\n")
	return nil
}

func (g *asmgen) ins(format string, args ...any) {
	g.sb.WriteString("  ")
	fmt.Fprintf(g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *asmgen) clearCaches() {
	for i := range g.gpr {
		g.gpr[i] = -1
	}
	for i := range g.fpr {
		g.fpr[i] = -1
	}
	for i := range g.loc {
		g.loc[i] = regPair{noR, noR}
	}
	g.pins, g.fpin = 0, 0
}

func (g *asmgen) dropCallerSaved() {
	for _, r := range g.tgt.CallerSaved {
		if v := g.gpr[r]; v >= 0 {
			if g.loc[v].r1 == int16(r) {
				g.loc[v].r1 = noR
			}
			if g.loc[v].r2 == int16(r) {
				g.loc[v].r2 = noR
			}
			if g.loc[v].r1 == noR && g.loc[v].r2 != noR {
				// Half-cached wide value: drop entirely.
				g.gpr[g.loc[v].r2] = -1
				g.loc[v].r2 = noR
			}
			g.gpr[r] = -1
		}
	}
	for r := range g.fpr {
		if v := g.fpr[r]; v >= 0 {
			g.loc[v].r1 = noR
			g.fpr[r] = -1
		}
	}
}

func (g *asmgen) allocGPR() int16 {
	for _, r := range g.tgt.AllocatableGPRs() {
		if g.pins&(1<<r) != 0 {
			continue
		}
		if g.gpr[r] == -1 {
			g.pins |= 1 << r
			return int16(r)
		}
	}
	for _, r := range g.tgt.AllocatableGPRs() {
		if g.pins&(1<<r) != 0 {
			continue
		}
		// Evict (slots are authoritative: no store needed).
		v := g.gpr[r]
		if g.loc[v].r1 == int16(r) {
			g.loc[v].r1 = noR
		}
		if g.loc[v].r2 == int16(r) {
			g.loc[v].r2 = noR
		}
		if g.loc[v].r1 == noR || g.loc[v].r2 == noR {
			if g.gf.vars[v] == ctI128 {
				g.dropVar(v)
			}
		}
		g.gpr[r] = -1
		g.pins |= 1 << r
		return int16(r)
	}
	panic("cbe: out of registers")
}

func (g *asmgen) allocFPR() int16 {
	for r := 0; r < g.tgt.NumFPR; r++ {
		if g.fpin&(1<<uint(r)) != 0 {
			continue
		}
		if g.fpr[r] == -1 {
			g.fpin |= 1 << uint(r)
			return int16(r)
		}
	}
	for r := 0; r < g.tgt.NumFPR; r++ {
		if g.fpin&(1<<uint(r)) != 0 {
			continue
		}
		v := g.fpr[r]
		g.loc[v].r1 = noR
		g.fpr[r] = -1
		g.fpin |= 1 << uint(r)
		return int16(r)
	}
	panic("cbe: out of float registers")
}

func (g *asmgen) unpin() { g.pins, g.fpin = 0, 0 }

// use returns a register holding var v (low half).
func (g *asmgen) use(v int32) int16 {
	if g.gf.vars[v] == ctF64 {
		return g.useF(v)
	}
	if r := g.loc[v].r1; r != noR {
		g.pins |= 1 << uint(r)
		return r
	}
	r := g.allocGPR()
	g.ins("ld64 r%d, r%d, %d", r, g.tgt.SP, g.slot[v])
	g.loc[v].r1 = r
	g.gpr[r] = v
	return r
}

func (g *asmgen) usePair(v int32) (int16, int16) {
	lo := g.use(v)
	if r := g.loc[v].r2; r != noR {
		g.pins |= 1 << uint(r)
		return lo, r
	}
	r := g.allocGPR()
	g.ins("ld64 r%d, r%d, %d", r, g.tgt.SP, g.slot[v]+8)
	g.loc[v].r2 = r
	g.gpr[r] = v
	return lo, r
}

func (g *asmgen) useF(v int32) int16 {
	if r := g.loc[v].r1; r != noR {
		g.fpin |= 1 << uint(r)
		return r
	}
	r := g.allocFPR()
	g.ins("fld f%d, r%d, %d", r, g.tgt.SP, g.slot[v])
	g.loc[v].r1 = r
	g.fpr[r] = v
	return r
}

func (g *asmgen) dropVar(v int32) {
	if g.gf.vars[v] == ctF64 {
		if r := g.loc[v].r1; r != noR {
			g.fpr[r] = -1
		}
	} else {
		if r := g.loc[v].r1; r != noR {
			g.gpr[r] = -1
		}
		if r := g.loc[v].r2; r != noR {
			g.gpr[r] = -1
		}
	}
	g.loc[v] = regPair{noR, noR}
}

// def allocates the result register(s) for v and returns them; defDone
// writes through to the slot.
func (g *asmgen) def(v int32) int16 {
	g.dropVar(v)
	if g.gf.vars[v] == ctF64 {
		r := g.allocFPR()
		g.loc[v].r1 = r
		g.fpr[r] = v
		return r
	}
	r := g.allocGPR()
	g.loc[v].r1 = r
	g.gpr[r] = v
	return r
}

func (g *asmgen) defPair(v int32) (int16, int16) {
	g.dropVar(v)
	r1 := g.allocGPR()
	r2 := g.allocGPR()
	g.loc[v] = regPair{r1, r2}
	g.gpr[r1] = v
	g.gpr[r2] = v
	return r1, r2
}

// defDone stores the defined value to its slot (write-through).
func (g *asmgen) defDone(v int32) {
	sp := g.tgt.SP
	switch g.gf.vars[v] {
	case ctF64:
		g.ins("fst r%d, %d, f%d", sp, g.slot[v], g.loc[v].r1)
	case ctI128:
		g.ins("st64 r%d, %d, r%d", sp, g.slot[v], g.loc[v].r1)
		g.ins("st64 r%d, %d, r%d", sp, g.slot[v]+8, g.loc[v].r2)
	default:
		g.ins("st64 r%d, %d, r%d", sp, g.slot[v], g.loc[v].r1)
	}
	g.unpin()
}

// mov3 emits a (possibly two-address-constrained) ALU op.
func (g *asmgen) mov3(op string, d, a, b int16) {
	if g.tgt.TwoAddress && d != a {
		if d == b {
			// Use the op with swapped non-commutative handling via a
			// fresh temporary.
			t := g.allocGPR()
			g.ins("mov r%d, r%d", t, b)
			g.ins("mov r%d, r%d", d, a)
			g.ins("%s r%d, r%d, r%d", op, d, d, t)
			return
		}
		g.ins("mov r%d, r%d", d, a)
		a = d
	}
	g.ins("%s r%d, r%d, r%d", op, d, a, b)
}

func (g *asmgen) mov3i(op string, d, a int16, imm int64) {
	if g.tgt.TwoAddress && d != a {
		g.ins("mov r%d, r%d", d, a)
		a = d
	}
	g.ins("%s r%d, r%d, %d", op, d, a, imm)
}

func (g *asmgen) canon(t cType, r int16) {
	switch t {
	case ctI1:
		g.mov3i("andi", r, r, 1)
	case ctI8:
		g.mov3i("shli", r, r, 56)
		g.mov3i("sari", r, r, 56)
	case ctI16:
		g.mov3i("shli", r, r, 48)
		g.mov3i("sari", r, r, 48)
	case ctI32:
		g.mov3i("shli", r, r, 32)
		g.mov3i("sari", r, r, 32)
	}
}

var gBinName = map[gBinKind]string{
	bAdd: "add", bSub: "sub", bMul: "mul", bDiv: "sdiv", bRem: "srem",
	bUDiv: "udiv", bURem: "urem", bAnd: "and", bOr: "or", bXor: "xor",
	bShl: "shl", bShr: "shr", bSar: "sar",
}

var predName = map[string]struct{ s, u string }{
	"eq": {"eq", "eq"}, "ne": {"ne", "ne"},
	"lt": {"slt", "ult"}, "le": {"sle", "ule"},
	"gt": {"sgt", "ugt"}, "ge": {"sge", "uge"},
}
