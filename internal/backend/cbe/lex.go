package cbe

import "fmt"

// Token kinds for the C subset.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct // single or multi-char operator/punctuation
)

type token struct {
	kind tokKind
	text string
	num  int64
	pos  int
}

// lexer tokenizes generated C source. Re-parsing the text is the inherent
// overhead of the GCC/C approach (≈13% of compile time in the paper).
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lexAll(src string) ([]token, error) {
	lx := &lexer{src: src}
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, t)
		if t.kind == tEOF {
			return lx.toks, nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '&' && false || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (lx *lexer) next() (token, error) {
	src := lx.src
	// Skip whitespace and comments.
	for lx.pos < len(src) {
		c := src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		if c == '/' && lx.pos+1 < len(src) && src[lx.pos+1] == '*' {
			end := lx.pos + 2
			for end+1 < len(src) && !(src[end] == '*' && src[end+1] == '/') {
				end++
			}
			lx.pos = end + 2
			continue
		}
		break
	}
	if lx.pos >= len(src) {
		return token{kind: tEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := src[lx.pos]
	switch {
	case isIdentStart(c):
		for lx.pos < len(src) && isIdentChar(src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tIdent, text: src[start:lx.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && lx.pos+1 < len(src) && src[lx.pos+1] >= '0' && src[lx.pos+1] <= '9' && lx.minusIsNumber():
		neg := false
		if c == '-' {
			neg = true
			lx.pos++
		}
		var v uint64
		for lx.pos < len(src) && src[lx.pos] >= '0' && src[lx.pos] <= '9' {
			v = v*10 + uint64(src[lx.pos]-'0')
			lx.pos++
		}
		// Suffixes (LL, U).
		for lx.pos < len(src) && (src[lx.pos] == 'L' || src[lx.pos] == 'U') {
			lx.pos++
		}
		n := int64(v)
		if neg {
			n = -n
		}
		return token{kind: tNumber, num: n, pos: start}, nil
	default:
		// Multi-char operators first.
		two := ""
		if lx.pos+1 < len(src) {
			two = src[lx.pos : lx.pos+2]
		}
		switch two {
		case "<<", ">>", "<=", ">=", "==", "!=":
			lx.pos += 2
			return token{kind: tPunct, text: two, pos: start}, nil
		}
		switch c {
		case '(', ')', '{', '}', ';', ',', '=', '+', '-', '*', '/', '%',
			'&', '|', '^', '~', '<', '>', ':', '!', '?':
			lx.pos++
			return token{kind: tPunct, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("cbe: lex error at %d: %q", lx.pos, string(c))
	}
}

// minusIsNumber decides whether '-' begins a negative literal: true unless
// the previous token could end an operand (identifier other than `return`,
// number, or closing parenthesis).
func (lx *lexer) minusIsNumber() bool {
	if len(lx.toks) == 0 {
		return true
	}
	t := lx.toks[len(lx.toks)-1]
	switch t.kind {
	case tIdent:
		return t.text == "return"
	case tNumber:
		return false
	case tPunct:
		return t.text != ")"
	}
	return true
}
