package cbe

import (
	"strings"
	"testing"
)

// TestLexerRoundTrip checks the C lexer on representative generated text.
func TestLexer(t *testing.T) {
	src := `i64 v1; v1 = (i64)(v2 + -5LL); if (v1) goto L2; *(i32*)(v3 + 0LL) = v1;`
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var negFound bool
	for _, tk := range toks {
		if tk.kind == tNumber && tk.num == -5 {
			negFound = true
		}
	}
	if !negFound {
		t.Error("negative literal not lexed")
	}
}

func TestParserStatements(t *testing.T) {
	src := `
void f(i64 v0, i64 v1) {
  i64 v2; i128 v3; f64 v4;
L0:;
  v2 = v0 + v1;
  v2 = (i64)((u64)v2 >> v1);
  v3 = __i128(v2, v2);
  v3 = rt7(v2, v3);
  v4 = __bitsf64(v2);
  *(i64*)(v2 + 8LL) = v1;
  v2 = *(i64*)(v2 + 0LL);
  if (v2) goto L1;
  goto L0;
L1:;
  v2 = v1 > 3LL;
  v2 = __select(v2, v0, v1);
  return v2;
}
`
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	fns, err := parseUnit(toks)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 1 || fns[0].name != "f" || len(fns[0].params) != 2 {
		t.Fatalf("parsed %+v", fns)
	}
	gf, err := gimplify(fns[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(gf.code) == 0 {
		t.Fatal("no TAC emitted")
	}
	// Optimizations must not break it.
	optimizeGimple(gf)
}

func TestParserErrors(t *testing.T) {
	for _, bad := range []string{
		"void f( {",
		"void f() { v1 = ; }",
		"void f() { x = unknownfn(); }",
		"void f() { i64 v; v = *(badtype*)(v); }",
		"void f() { goto; }",
	} {
		toks, err := lexAll(bad)
		if err != nil {
			continue // lex error also acceptable
		}
		if _, err := parseUnit(toks); err == nil {
			// gimplify may catch what the parser accepts
			fns, _ := parseUnit(toks)
			ok := false
			for _, fn := range fns {
				if _, err := gimplify(fn); err != nil {
					ok = true
				}
			}
			if !ok {
				t.Errorf("no error for %q", bad)
			}
		}
	}
}

func TestOptimizerFoldsAndDCE(t *testing.T) {
	src := `
i64 g(i64 v0) {
  i64 v1; i64 v2; i64 v3; i64 v4;
  v1 = 6LL;
  v2 = 7LL;
  v3 = v1 * v2;
  v4 = v1 * v2;
  return v3;
}
`
	toks, _ := lexAll(src)
	fns, err := parseUnit(toks)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := gimplify(fns[0])
	if err != nil {
		t.Fatal(err)
	}
	optimizeGimple(gf)
	// v3 must be folded to 42; the duplicate v4 must be eliminated.
	found42 := false
	muls := 0
	for _, tc := range gf.code {
		if tc.op == gConst && tc.imm == 42 {
			found42 = true
		}
		if tc.op == gBin && tc.bin == bMul {
			muls++
		}
	}
	if !found42 {
		t.Error("constant folding did not produce 42")
	}
	if muls != 0 {
		t.Errorf("%d multiplications survive folding", muls)
	}
}

func TestMangle(t *testing.T) {
	if mangle("scan-all_p0_main") != "scan_all_p0_main" {
		t.Errorf("mangle = %q", mangle("scan-all_p0_main"))
	}
	if !strings.HasPrefix(mangle("9abc"), "_") {
		t.Errorf("leading digit not mangled: %q", mangle("9abc"))
	}
}
