package cbe

import "fmt"

// inst lowers one TAC instruction to assembly text.
func (g *asmgen) inst(t *tac) error {
	sp := g.tgt.SP
	switch t.op {
	case gLabel:
		g.clearCaches()
		fmt.Fprintf(g.sb, ".L%d:\n", t.label)
	case gGoto:
		g.clearCaches()
		g.ins("br .L%d", t.label)
	case gIfGoto:
		a := g.use(t.a)
		g.unpin()
		g.clearCaches()
		g.ins("brnz r%d, .L%d", a, t.label)
	case gRet:
		if t.a >= 0 {
			switch g.gf.vars[t.a] {
			case ctI128:
				lo, hi := g.usePair(t.a)
				r0, r1 := int16(g.tgt.IntRet[0]), int16(g.tgt.IntRet[1])
				if hi == r0 {
					tmp := g.allocGPR()
					g.ins("mov r%d, r%d", tmp, hi)
					hi = tmp
				}
				if lo != r0 {
					g.ins("mov r%d, r%d", r0, lo)
				}
				if hi != r1 {
					g.ins("mov r%d, r%d", r1, hi)
				}
			case ctF64:
				f := g.useF(t.a)
				g.ins("movrf r%d, f%d", g.tgt.IntRet[0], f)
			default:
				a := g.use(t.a)
				if a != int16(g.tgt.IntRet[0]) {
					g.ins("mov r%d, r%d", g.tgt.IntRet[0], a)
				}
			}
		}
		for i, r := range g.tgt.CalleeSaved {
			g.ins("ld64 r%d, r%d, %d", r, sp, int64(i)*8)
		}
		g.ins("addi r%d, r%d, %d", sp, sp, g.frame)
		g.ins("ret")
		g.unpin()
		g.clearCaches()
	case gTrap:
		g.ins("trap 0")
		g.clearCaches()

	case gConst:
		if t.ct == ctI128 {
			lo, hi := g.defPair(t.dst)
			g.ins("movi r%d, %d", lo, t.imm)
			g.ins("movi r%d, %d", hi, t.imm>>63)
			g.defDone(t.dst)
			return nil
		}
		d := g.def(t.dst)
		g.ins("movi r%d, %d", d, t.imm)
		g.defDone(t.dst)

	case gMov:
		switch g.gf.vars[t.dst] {
		case ctI128:
			if g.gf.vars[t.a] == ctI128 {
				alo, ahi := g.usePair(t.a)
				dlo, dhi := g.defPair(t.dst)
				g.ins("mov r%d, r%d", dlo, alo)
				g.ins("mov r%d, r%d", dhi, ahi)
			} else {
				a := g.use(t.a)
				dlo, dhi := g.defPair(t.dst)
				g.ins("mov r%d, r%d", dlo, a)
				g.ins("mov r%d, r%d", dhi, a)
				g.mov3i("sari", dhi, dhi, 63)
			}
		case ctF64:
			a := g.useF(t.a)
			d := g.def(t.dst)
			g.ins("fmov f%d, f%d", d, a)
		default:
			if g.gf.vars[t.a] == ctI128 {
				alo, _ := g.usePair(t.a)
				d := g.def(t.dst)
				g.ins("mov r%d, r%d", d, alo)
				g.canon(g.gf.vars[t.dst], d)
			} else {
				a := g.use(t.a)
				d := g.def(t.dst)
				g.ins("mov r%d, r%d", d, a)
				g.canon(g.gf.vars[t.dst], d)
			}
		}
		g.defDone(t.dst)

	case gBin:
		return g.binOp(t)
	case gCmp:
		return g.cmpOp(t)
	case gCast:
		return g.castOp(t)
	case gLoad:
		addr := g.use(t.a)
		if t.ct == ctI128 {
			dlo, dhi := g.defPair(t.dst)
			g.ins("%s r%d, r%d, 0", uqMnem("ld64", t.unchecked), dlo, addr)
			g.ins("%s r%d, r%d, 8", uqMnem("ld64", t.unchecked), dhi, addr)
		} else if t.ct == ctF64 {
			d := g.def(t.dst)
			g.ins("%s f%d, r%d, 0", uqMnem("fld", t.unchecked), d, addr)
		} else {
			d := g.def(t.dst)
			g.ins("%s r%d, r%d, 0", uqMnem(loadMnemonic(t.ct), t.unchecked), d, addr)
			if t.ct == ctI1 {
				g.mov3i("andi", d, d, 1)
			}
		}
		g.defDone(t.dst)
	case gStore:
		addr := g.use(t.a)
		switch t.ct {
		case ctI128:
			lo, hi := g.usePair(t.b)
			g.ins("%s r%d, 0, r%d", uqMnem("st64", t.unchecked), addr, lo)
			g.ins("%s r%d, 8, r%d", uqMnem("st64", t.unchecked), addr, hi)
		case ctF64:
			f := g.useF(t.b)
			g.ins("%s r%d, 0, f%d", uqMnem("fst", t.unchecked), addr, f)
		default:
			v := g.use(t.b)
			g.ins("%s r%d, 0, r%d", uqMnem(storeMnemonic(t.ct), t.unchecked), addr, v)
		}
		g.unpin()
	case gAddrOf:
		d := g.def(t.dst)
		g.ins("movsym r%d, %s", d, t.sym)
		g.defDone(t.dst)
	case gCall:
		return g.callOp(t)
	case gBuiltin:
		return g.builtinOp(t)
	default:
		return fmt.Errorf("bad TAC op %d", t.op)
	}
	return nil
}

func loadMnemonic(t cType) string {
	switch t {
	case ctI1:
		return "ld8"
	case ctI8:
		return "ld8s"
	case ctI16:
		return "ld16s"
	case ctI32:
		return "ld32s"
	}
	return "ld64"
}

// uqMnem rewrites a memory mnemonic to its unchecked form ("ld64" ->
// "ldu64", "st8" -> "stu8", "fld" -> "fldu"), matching the vt op names.
func uqMnem(m string, unchecked bool) string {
	if !unchecked {
		return m
	}
	switch m {
	case "fld":
		return "fldu"
	case "fst":
		return "fstu"
	}
	// ldNN[s] / stNN -> lduNN[s] / stuNN.
	return m[:2] + "u" + m[2:]
}

func storeMnemonic(t cType) string {
	switch t {
	case ctI1, ctI8:
		return "st8"
	case ctI16:
		return "st16"
	case ctI32:
		return "st32"
	}
	return "st64"
}

func (g *asmgen) binOp(t *tac) error {
	if t.ct == ctF64 {
		a := g.useF(t.a)
		b := g.useF(t.b)
		d := g.def(t.dst)
		op := map[gBinKind]string{bAdd: "fadd", bSub: "fsub", bMul: "fmul", bDiv: "fdiv"}[t.bin]
		if op == "" {
			return fmt.Errorf("bad float op")
		}
		if g.tgt.TwoAddress && d != a {
			if d == b {
				f := g.allocFPR()
				g.ins("fmov f%d, f%d", f, b)
				b = f
			}
			g.ins("fmov f%d, f%d", d, a)
			a = d
		}
		g.ins("%s f%d, f%d, f%d", op, d, a, b)
		g.defDone(t.dst)
		return nil
	}
	if t.ct == ctI128 {
		return g.bin128(t)
	}
	a := g.use(t.a)
	b := g.use(t.b)
	if t.bin == bShr {
		// Logical shift: source was cast to u64 (no-op at register
		// level); plain shr works on the canonical value.
		d := g.def(t.dst)
		g.mov3("shr", d, a, b)
		g.defDone(t.dst)
		return nil
	}
	d := g.def(t.dst)
	g.mov3(gBinName[t.bin], d, a, b)
	if t.ct != ctI64 && t.ct != ctU64 && t.ct != ctPtr {
		switch t.bin {
		case bAnd, bOr, bXor, bSar, bDiv, bRem:
		default:
			g.canon(t.ct, d)
		}
	}
	g.defDone(t.dst)
	return nil
}

func (g *asmgen) bin128(t *tac) error {
	alo, ahi := g.usePair(t.a)
	switch t.bin {
	case bAdd, bSub:
		blo, bhi := g.usePair(t.b)
		dlo, dhi := g.defPair(t.dst)
		c := g.allocGPR()
		if t.bin == bAdd {
			g.mov3("add", dlo, alo, blo)
			g.ins("set ult r%d, r%d, r%d", c, dlo, alo)
			g.mov3("add", dhi, ahi, bhi)
			g.mov3("add", dhi, dhi, c)
		} else {
			g.ins("set ult r%d, r%d, r%d", c, alo, blo)
			g.mov3("sub", dlo, alo, blo)
			g.mov3("sub", dhi, ahi, bhi)
			g.mov3("sub", dhi, dhi, c)
		}
	case bMul:
		blo, bhi := g.usePair(t.b)
		dlo, dhi := g.defPair(t.dst)
		tt := g.allocGPR()
		g.ins("mulw r%d, r%d, r%d, r%d", dlo, dhi, alo, blo)
		g.mov3("mul", tt, alo, bhi)
		g.mov3("add", dhi, dhi, tt)
		g.mov3("mul", tt, ahi, blo)
		g.mov3("add", dhi, dhi, tt)
	case bAnd, bOr, bXor:
		blo, bhi := g.usePair(t.b)
		dlo, dhi := g.defPair(t.dst)
		g.mov3(gBinName[t.bin], dlo, alo, blo)
		g.mov3(gBinName[t.bin], dhi, ahi, bhi)
	case bShr, bSar, bShl:
		// Only constant shifts appear (generated code shifts by 64).
		kv, ok := g.constOf(t.b)
		if !ok {
			return fmt.Errorf("dynamic 128-bit shift in C back-end")
		}
		k := uint(kv) & 127
		dlo, dhi := g.defPair(t.dst)
		g.shift128(t.bin, dlo, dhi, alo, ahi, k)
	default:
		return fmt.Errorf("128-bit op %d unsupported", t.bin)
	}
	g.defDone(t.dst)
	return nil
}

// constOf scans backwards for the constant defining var v (single-def
// constants only).
func (g *asmgen) constOf(v int32) (int64, bool) {
	var val int64
	found := 0
	for i := range g.gf.code {
		t := &g.gf.code[i]
		if t.dst == v {
			if t.op != gConst {
				return 0, false
			}
			val = t.imm
			found++
		}
	}
	return val, found == 1
}

func (g *asmgen) shift128(k gBinKind, dlo, dhi, alo, ahi int16, n uint) {
	switch {
	case n == 0:
		g.ins("mov r%d, r%d", dlo, alo)
		g.ins("mov r%d, r%d", dhi, ahi)
	case k == bShr && n == 64:
		g.ins("mov r%d, r%d", dlo, ahi)
		g.ins("movi r%d, 0", dhi)
	case k == bSar && n == 64:
		g.ins("mov r%d, r%d", dlo, ahi)
		g.ins("mov r%d, r%d", dhi, ahi)
		g.mov3i("sari", dhi, dhi, 63)
	case k == bShl && n == 64:
		g.ins("mov r%d, r%d", dhi, alo)
		g.ins("movi r%d, 0", dlo)
	case k == bShl && n < 64:
		t := g.allocGPR()
		g.ins("mov r%d, r%d", t, alo)
		g.mov3i("shri", t, t, int64(64-n))
		g.mov3i("shli", dhi, ahi, int64(n))
		g.mov3("or", dhi, dhi, t)
		g.mov3i("shli", dlo, alo, int64(n))
	case n < 64:
		t := g.allocGPR()
		g.ins("mov r%d, r%d", t, ahi)
		g.mov3i("shli", t, t, int64(64-n))
		g.mov3i("shri", dlo, alo, int64(n))
		g.mov3("or", dlo, dlo, t)
		if k == bSar {
			g.mov3i("sari", dhi, ahi, int64(n))
		} else {
			g.mov3i("shri", dhi, ahi, int64(n))
		}
	case k == bShl:
		g.mov3i("shli", dhi, alo, int64(n-64))
		g.ins("movi r%d, 0", dlo)
	case k == bShr:
		g.mov3i("shri", dlo, ahi, int64(n-64))
		g.ins("movi r%d, 0", dhi)
	default:
		g.mov3i("sari", dlo, ahi, int64(n-64))
		g.mov3i("sari", dhi, ahi, 63)
	}
}

func (g *asmgen) cmpOp(t *tac) error {
	if g.gf.vars[t.a] == ctF64 {
		a := g.useF(t.a)
		b := g.useF(t.b)
		d := g.def(t.dst)
		g.ins("fcmp %s r%d, f%d, f%d", predName[t.pred].s, d, a, b)
		g.defDone(t.dst)
		return nil
	}
	if g.gf.vars[t.a] == ctI128 {
		return g.cmp128(t)
	}
	a := g.use(t.a)
	b := g.use(t.b)
	d := g.def(t.dst)
	p := predName[t.pred].s
	if t.unsig {
		p = predName[t.pred].u
	}
	g.ins("set %s r%d, r%d, r%d", p, d, a, b)
	g.defDone(t.dst)
	return nil
}

func (g *asmgen) cmp128(t *tac) error {
	alo, ahi := g.usePair(t.a)
	blo, bhi := g.usePair(t.b)
	d := g.def(t.dst)
	switch t.pred {
	case "eq", "ne":
		t1 := g.allocGPR()
		t2 := g.allocGPR()
		g.mov3("xor", t1, alo, blo)
		g.mov3("xor", t2, ahi, bhi)
		g.mov3("or", t1, t1, t2)
		g.ins("movi r%d, 0", t2)
		g.ins("set %s r%d, r%d, r%d", t.pred, d, t1, t2)
	default:
		strict := map[string]string{"lt": "slt", "le": "slt", "gt": "sgt", "ge": "sgt"}[t.pred]
		low := map[string]string{"lt": "ult", "le": "ule", "gt": "ugt", "ge": "uge"}[t.pred]
		t1 := g.allocGPR()
		t2 := g.allocGPR()
		t3 := g.allocGPR()
		g.ins("set %s r%d, r%d, r%d", strict, t1, ahi, bhi)
		g.ins("set eq r%d, r%d, r%d", t2, ahi, bhi)
		g.ins("set %s r%d, r%d, r%d", low, t3, alo, blo)
		g.mov3("and", t2, t2, t3)
		g.ins("mov r%d, r%d", d, t1)
		g.mov3("or", d, d, t2)
	}
	g.defDone(t.dst)
	return nil
}

func (g *asmgen) castOp(t *tac) error {
	from, to := t.ct2, t.ct
	switch {
	case to == ctI128 && from != ctI128:
		if from == ctF64 {
			return fmt.Errorf("f64 to i128 cast unsupported")
		}
		a := g.use(t.a)
		dlo, dhi := g.defPair(t.dst)
		g.ins("mov r%d, r%d", dlo, a)
		g.ins("mov r%d, r%d", dhi, a)
		g.mov3i("sari", dhi, dhi, 63)
	case from == ctI128 && to != ctI128:
		alo, _ := g.usePair(t.a)
		d := g.def(t.dst)
		g.ins("mov r%d, r%d", d, alo)
		g.canon(to, d)
	case to == ctF64 && from != ctF64:
		a := g.use(t.a)
		d := g.def(t.dst)
		g.ins("si2f f%d, r%d", d, a)
	case from == ctF64 && to != ctF64:
		a := g.useF(t.a)
		d := g.def(t.dst)
		g.ins("f2si r%d, f%d", d, a)
		g.canon(to, d)
	default:
		// Integer-to-integer: canonicalize to the target width.
		a := g.use(t.a)
		d := g.def(t.dst)
		g.ins("mov r%d, r%d", d, a)
		if to != ctU64 && to != ctPtr && to.bits() < from.bits() || to.bits() < 64 && from == ctU64 {
			g.canon(to, d)
		} else if to.bits() < 64 && from.bits() > to.bits() {
			g.canon(to, d)
		}
	}
	g.defDone(t.dst)
	return nil
}

func (g *asmgen) callOp(t *tac) error {
	// Stage arguments (write-through policy makes slots authoritative, so
	// caches can simply be dropped afterwards).
	reg := 0
	sp := g.tgt.SP
	stage := func(slotOff int64) error {
		if reg >= len(g.tgt.IntArgs) {
			return fmt.Errorf("too many call arguments")
		}
		g.ins("ld64 r%d, r%d, %d", g.tgt.IntArgs[reg], sp, slotOff)
		reg++
		return nil
	}
	// Drop caches first so argument registers are free.
	g.unpin()
	g.clearCaches()
	for _, a := range t.args {
		switch g.gf.vars[a] {
		case ctI128:
			if err := stage(g.slot[a]); err != nil {
				return err
			}
			if err := stage(g.slot[a] + 8); err != nil {
				return err
			}
		case ctF64:
			if err := stage(g.slot[a]); err != nil {
				return err
			}
		default:
			if err := stage(g.slot[a]); err != nil {
				return err
			}
		}
	}
	g.ins("callrt %d", t.rtid)
	g.clearCaches()
	if t.dst >= 0 {
		dlo, dhi := g.defPair(t.dst)
		r0, r1 := int16(g.tgt.IntRet[0]), int16(g.tgt.IntRet[1])
		if dlo == r1 {
			g.ins("mov r%d, r%d", dhi, r1)
			g.ins("mov r%d, r%d", dlo, r0)
		} else {
			if dlo != r0 {
				g.ins("mov r%d, r%d", dlo, r0)
			}
			if dhi != r1 {
				g.ins("mov r%d, r%d", dhi, r1)
			}
		}
		g.defDone(t.dst)
	}
	return nil
}
