package cbe

import "fmt"

// cType is a C-subset type.
type cType uint8

// C types.
const (
	ctVoid cType = iota
	ctI1
	ctI8
	ctI16
	ctI32
	ctI64
	ctI128
	ctU64
	ctF64
	ctPtr
)

var typeNamesC = map[string]cType{
	"void": ctVoid, "i1": ctI1, "i8": ctI8, "i16": ctI16, "i32": ctI32,
	"i64": ctI64, "i128": ctI128, "u64": ctU64, "f64": ctF64, "ptr": ctPtr,
}

func (t cType) bits() int {
	switch t {
	case ctI1:
		return 1
	case ctI8:
		return 8
	case ctI16:
		return 16
	case ctI32:
		return 32
	case ctI128:
		return 128
	}
	return 64
}

// Expression AST.
type ckind uint8

const (
	eNum ckind = iota
	eVar
	eBin
	eUn
	eCast
	eLoad
	eCall
	eAddr
)

type cexpr struct {
	kind ckind
	num  int64
	name string
	op   string
	ct   cType
	// unchecked marks loads whose deref type carried the __unchecked
	// qualifier: bounds/null checks were discharged at compile time.
	unchecked bool
	l, r      *cexpr
	args      []*cexpr
}

// Statement AST.
type skind uint8

const (
	sDecl skind = iota
	sAssign
	sStore
	sIfGoto
	sGoto
	sLabel
	sReturn
	sCall
	sTrap
)

type cstmt struct {
	kind      skind
	ct        cType
	unchecked bool   // __unchecked-qualified store
	name      string // var, label
	addr      *cexpr // store address
	rhs       *cexpr
}

type cparam struct {
	ct   cType
	name string
}

type cfunc struct {
	name   string
	ret    cType
	params []cparam
	body   []cstmt
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func parseUnit(toks []token) ([]*cfunc, error) {
	p := &parser{toks: toks}
	var fns []*cfunc
	for p.peek().kind != tEOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	return fns, nil
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[p.pos+1] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) error {
	t := p.advance()
	if t.kind != tPunct || t.text != text {
		return fmt.Errorf("cbe: parse error at %d: expected %q, got %q", t.pos, text, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.advance()
	if t.kind != tIdent {
		return "", fmt.Errorf("cbe: parse error at %d: expected identifier", t.pos)
	}
	return t.text, nil
}

func (p *parser) isType(t token) (cType, bool) {
	if t.kind != tIdent {
		return 0, false
	}
	ct, ok := typeNamesC[t.text]
	return ct, ok
}

func (p *parser) parseFunc() (*cfunc, error) {
	ret, ok := p.isType(p.peek())
	if !ok {
		return nil, fmt.Errorf("cbe: parse error at %d: expected return type", p.peek().pos)
	}
	p.advance()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fn := &cfunc{name: name, ret: ret}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek().text != ")" {
		pt, ok := p.isType(p.peek())
		if !ok {
			return nil, fmt.Errorf("cbe: parse error at %d: expected parameter type", p.peek().pos)
		}
		p.advance()
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		fn.params = append(fn.params, cparam{ct: pt, name: pn})
		if p.peek().text == "," {
			p.advance()
		}
	}
	p.advance() // ')'
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.peek().text != "}" {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		fn.body = append(fn.body, st...)
	}
	p.advance() // '}'
	return fn, nil
}

// parseStmt parses one statement (declarations may yield several).
func (p *parser) parseStmt() ([]cstmt, error) {
	t := p.peek()
	// Store: *(T*)(addr) = v;
	if t.kind == tPunct && t.text == "*" {
		return p.parseStore()
	}
	if t.kind != tIdent {
		return nil, fmt.Errorf("cbe: parse error at %d: unexpected %q", t.pos, t.text)
	}
	// Declaration.
	if ct, ok := p.isType(t); ok {
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []cstmt{{kind: sDecl, ct: ct, name: name}}, nil
	}
	switch t.text {
	case "if":
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		kw, err := p.expectIdent()
		if err != nil || kw != "goto" {
			return nil, fmt.Errorf("cbe: parse error: expected goto after if")
		}
		lbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []cstmt{{kind: sIfGoto, rhs: cond, name: lbl}}, nil
	case "goto":
		p.advance()
		lbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []cstmt{{kind: sGoto, name: lbl}}, nil
	case "return":
		p.advance()
		if p.peek().text == ";" {
			p.advance()
			return []cstmt{{kind: sReturn}}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []cstmt{{kind: sReturn, rhs: e}}, nil
	case "__trap":
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []cstmt{{kind: sTrap}}, nil
	}
	// Label: ident ':' ';'?
	if p.peek2().kind == tPunct && p.peek2().text == ":" {
		p.advance()
		p.advance()
		if p.peek().text == ";" {
			p.advance()
		}
		return []cstmt{{kind: sLabel, name: t.text}}, nil
	}
	// Assignment or call statement.
	name := t.text
	if p.peek2().text == "=" {
		p.advance()
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []cstmt{{kind: sAssign, name: name, rhs: rhs}}, nil
	}
	if p.peek2().text == "(" {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []cstmt{{kind: sCall, rhs: e}}, nil
	}
	return nil, fmt.Errorf("cbe: parse error at %d: cannot start statement with %q", t.pos, name)
}

// eatUnchecked consumes an optional __unchecked qualifier before the type
// in a deref cast and reports whether it was present.
func (p *parser) eatUnchecked() bool {
	if t := p.peek(); t.kind == tIdent && t.text == "__unchecked" {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseStore() ([]cstmt, error) {
	p.advance() // '*'
	if err := p.expect("("); err != nil {
		return nil, err
	}
	unchecked := p.eatUnchecked()
	ct, ok := p.isType(p.peek())
	if !ok {
		return nil, fmt.Errorf("cbe: parse error at %d: expected type in store", p.peek().pos)
	}
	p.advance()
	if err := p.expect("*"); err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	addr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return []cstmt{{kind: sStore, ct: ct, unchecked: unchecked, addr: addr, rhs: rhs}}, nil
}

// Expression parsing by precedence climbing.
var precOf = map[string]int{
	"|": 1, "^": 2, "&": 3,
	"==": 4, "!=": 4,
	"<": 5, "<=": 5, ">": 5, ">=": 5,
	"<<": 6, ">>": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
}

func (p *parser) parseExpr() (*cexpr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (*cexpr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := precOf[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &cexpr{kind: eBin, op: t.text, l: lhs, r: rhs}
	}
}

func (p *parser) parseUnary() (*cexpr, error) {
	t := p.peek()
	if t.kind == tPunct {
		switch t.text {
		case "-", "~", "!":
			p.advance()
			sub, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &cexpr{kind: eUn, op: t.text, l: sub}, nil
		case "*":
			// Load: *(T*)(expr) or *(__unchecked T*)(expr)
			p.advance()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			unchecked := p.eatUnchecked()
			ct, ok := p.isType(p.peek())
			if !ok {
				return nil, fmt.Errorf("cbe: parse error at %d: expected type in load", p.peek().pos)
			}
			p.advance()
			if err := p.expect("*"); err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			addr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &cexpr{kind: eLoad, ct: ct, unchecked: unchecked, l: addr}, nil
		case "&":
			p.advance()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &cexpr{kind: eAddr, name: name}, nil
		case "(":
			// Cast or parenthesized expression.
			if ct, ok := p.isType(p.peek2()); ok {
				p.advance()
				p.advance()
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				sub, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &cexpr{kind: eCast, ct: ct, l: sub}, nil
			}
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	if t.kind == tNumber {
		p.advance()
		return &cexpr{kind: eNum, num: t.num}, nil
	}
	if t.kind == tIdent {
		p.advance()
		if p.peek().text == "(" {
			p.advance()
			call := &cexpr{kind: eCall, name: t.text}
			for p.peek().text != ")" {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
				if p.peek().text == "," {
					p.advance()
				}
			}
			p.advance()
			return call, nil
		}
		return &cexpr{kind: eVar, name: t.text}, nil
	}
	return nil, fmt.Errorf("cbe: parse error at %d: unexpected token %q", t.pos, t.text)
}
