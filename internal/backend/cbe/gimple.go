package cbe

import "fmt"

// The GIMPLE-like three-address representation the mini-C compiler lowers
// the AST into, plus the -O3-style scalar optimizations (constant folding,
// copy propagation, local CSE, dead code elimination).

type gOp uint8

const (
	gConst   gOp = iota // dst = imm
	gMov                // dst = a
	gBin                // dst = a <bin> b
	gCmp                // dst = a <pred> b (i1)
	gCast               // dst = cast(a) from ct2 to ct
	gLoad               // dst = *(ct*)a
	gStore              // *(ct*)a = b
	gCall               // dst? = rt<rtid>(args)
	gBuiltin            // dst = builtin(args)
	gAddrOf             // dst = &sym
	gGoto               // goto label
	gIfGoto             // if a goto label
	gLabel              // label:
	gRet                // return a?
	gTrap
)

type gBinKind uint8

const (
	bAdd gBinKind = iota
	bSub
	bMul
	bDiv
	bRem
	bUDiv
	bURem
	bAnd
	bOr
	bXor
	bShl
	bShr // logical (operand was cast to u64)
	bSar
)

type builtinKind uint8

const (
	biI128 builtinKind = iota
	biAddTrap
	biSubTrap
	biMulTrap
	biCrc32
	biLMulFold
	biRotr
	biZext
	biF64Bits
	biBitsF64
	biSelect
	biFSelect
	biAtomicAdd
	biTrapStmt
)

type tac struct {
	op    gOp
	dst   int32
	a, b  int32
	imm   int64
	ct    cType // operation/result or memory type
	ct2   cType // cast source type / builtin width
	bin   gBinKind
	pred  string
	unsig bool
	// unchecked marks gLoad/gStore whose check was statically discharged;
	// the assembler output uses the unchecked machine ops for them.
	unchecked bool
	rtid      uint32
	bi        builtinKind
	sym       string
	label     int32
	args      []int32
}

type gimpleFunc struct {
	name    string
	ret     cType
	nparams int
	vars    []cType // var id -> type
	code    []tac
	labels  map[string]int32
	nlabels int32
}

// gimplify lowers a parsed function to TAC.
func gimplify(fn *cfunc) (*gimpleFunc, error) {
	gf := &gimpleFunc{name: fn.name, ret: fn.ret, labels: map[string]int32{}}
	vars := map[string]int32{}
	newVar := func(ct cType) int32 {
		gf.vars = append(gf.vars, ct)
		return int32(len(gf.vars) - 1)
	}
	declare := func(name string, ct cType) int32 {
		id := newVar(ct)
		vars[name] = id
		return id
	}
	for _, p := range fn.params {
		declare(p.name, p.ct)
	}
	gf.nparams = len(fn.params)
	labelID := func(name string) int32 {
		if id, ok := gf.labels[name]; ok {
			return id
		}
		gf.nlabels++
		gf.labels[name] = gf.nlabels - 1
		return gf.nlabels - 1
	}
	emit := func(t tac) { gf.code = append(gf.code, t) }

	// flatten evaluates an expression into a variable.
	var flatten func(e *cexpr, want cType) (int32, error)
	flatten = func(e *cexpr, want cType) (int32, error) {
		switch e.kind {
		case eNum:
			d := newVar(ctI64)
			emit(tac{op: gConst, dst: d, a: -1, b: -1, imm: e.num, ct: ctI64})
			return d, nil
		case eVar:
			id, ok := vars[e.name]
			if !ok {
				return -1, fmt.Errorf("cbe: undeclared variable %s", e.name)
			}
			return id, nil
		case eAddr:
			d := newVar(ctI64)
			emit(tac{op: gAddrOf, dst: d, a: -1, b: -1, sym: e.name})
			return d, nil
		case eUn:
			a, err := flatten(e.l, want)
			if err != nil {
				return -1, err
			}
			d := newVar(gf.vars[a])
			switch e.op {
			case "-":
				z := newVar(gf.vars[a])
				emit(tac{op: gConst, dst: z, a: -1, b: -1, ct: gf.vars[a]})
				emit(tac{op: gBin, bin: bSub, dst: d, a: z, b: a, ct: gf.vars[a]})
			case "~":
				m := newVar(gf.vars[a])
				emit(tac{op: gConst, dst: m, a: -1, b: -1, imm: -1, ct: gf.vars[a]})
				emit(tac{op: gBin, bin: bXor, dst: d, a: a, b: m, ct: gf.vars[a]})
			default:
				return -1, fmt.Errorf("cbe: unary %q unsupported", e.op)
			}
			return d, nil
		case eCast:
			a, err := flatten(e.l, e.ct)
			if err != nil {
				return -1, err
			}
			from := gf.vars[a]
			if from == e.ct {
				return a, nil
			}
			d := newVar(e.ct)
			emit(tac{op: gCast, dst: d, a: a, b: -1, ct: e.ct, ct2: from})
			return d, nil
		case eLoad:
			a, err := flatten(e.l, ctPtr)
			if err != nil {
				return -1, err
			}
			d := newVar(loadedType(e.ct))
			emit(tac{op: gLoad, dst: d, a: a, b: -1, ct: e.ct, unchecked: e.unchecked})
			return d, nil
		case eBin:
			a, err := flatten(e.l, want)
			if err != nil {
				return -1, err
			}
			b, err := flatten(e.r, want)
			if err != nil {
				return -1, err
			}
			at := gf.vars[a]
			if pred, ok := cmpPreds[e.op]; ok {
				d := newVar(ctI1)
				emit(tac{op: gCmp, dst: d, a: a, b: b, pred: pred,
					unsig: at == ctU64, ct: at})
				return d, nil
			}
			bk, err := binKind(e.op, at)
			if err != nil {
				return -1, err
			}
			d := newVar(at)
			emit(tac{op: gBin, bin: bk, dst: d, a: a, b: b, ct: at})
			return d, nil
		case eCall:
			return gimplifyCall(gf, e, vars, newVar, emit, flatten)
		}
		return -1, fmt.Errorf("cbe: cannot gimplify expression")
	}

	for _, st := range fn.body {
		switch st.kind {
		case sDecl:
			declare(st.name, st.ct)
		case sLabel:
			emit(tac{op: gLabel, dst: -1, a: -1, b: -1, label: labelID(st.name)})
		case sGoto:
			emit(tac{op: gGoto, dst: -1, a: -1, b: -1, label: labelID(st.name)})
		case sIfGoto:
			a, err := flatten(st.rhs, ctI64)
			if err != nil {
				return nil, err
			}
			emit(tac{op: gIfGoto, dst: -1, a: a, b: -1, label: labelID(st.name)})
		case sReturn:
			if st.rhs == nil {
				emit(tac{op: gRet, dst: -1, a: -1, b: -1})
			} else {
				a, err := flatten(st.rhs, fn.ret)
				if err != nil {
					return nil, err
				}
				emit(tac{op: gRet, dst: -1, a: a, b: -1})
			}
		case sTrap:
			emit(tac{op: gTrap, dst: -1, a: -1, b: -1})
		case sStore:
			addr, err := flatten(st.addr, ctPtr)
			if err != nil {
				return nil, err
			}
			val, err := flatten(st.rhs, st.ct)
			if err != nil {
				return nil, err
			}
			emit(tac{op: gStore, dst: -1, a: addr, b: val, ct: st.ct, unchecked: st.unchecked})
		case sAssign:
			lhs, ok := vars[st.name]
			if !ok {
				return nil, fmt.Errorf("cbe: assignment to undeclared %s", st.name)
			}
			v, err := flatten(st.rhs, gf.vars[lhs])
			if err != nil {
				return nil, err
			}
			emit(tac{op: gMov, dst: lhs, a: v, b: -1, ct: gf.vars[lhs]})
		case sCall:
			if _, err := flatten(st.rhs, ctVoid); err != nil {
				return nil, err
			}
		}
	}
	return gf, nil
}

func loadedType(ct cType) cType {
	// Narrow loads produce canonical 64-bit values in registers but keep
	// their declared type for downstream casts.
	return ct
}

var cmpPreds = map[string]string{
	"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}

func binKind(op string, t cType) (gBinKind, error) {
	switch op {
	case "+":
		return bAdd, nil
	case "-":
		return bSub, nil
	case "*":
		return bMul, nil
	case "/":
		if t == ctU64 {
			return bUDiv, nil
		}
		return bDiv, nil
	case "%":
		if t == ctU64 {
			return bURem, nil
		}
		return bRem, nil
	case "&":
		return bAnd, nil
	case "|":
		return bOr, nil
	case "^":
		return bXor, nil
	case "<<":
		return bShl, nil
	case ">>":
		if t == ctU64 {
			return bShr, nil
		}
		return bSar, nil
	}
	return 0, fmt.Errorf("cbe: unknown operator %q", op)
}

var builtinByName = map[string]struct {
	kind builtinKind
	ct   cType
}{
	"__i128":          {biI128, ctI128},
	"__addtrap_i16":   {biAddTrap, ctI16},
	"__addtrap_i32":   {biAddTrap, ctI32},
	"__addtrap_i64":   {biAddTrap, ctI64},
	"__addtrap_i128":  {biAddTrap, ctI128},
	"__subtrap_i16":   {biSubTrap, ctI16},
	"__subtrap_i32":   {biSubTrap, ctI32},
	"__subtrap_i64":   {biSubTrap, ctI64},
	"__subtrap_i128":  {biSubTrap, ctI128},
	"__multrap_i16":   {biMulTrap, ctI16},
	"__multrap_i32":   {biMulTrap, ctI32},
	"__multrap_i64":   {biMulTrap, ctI64},
	"__multrap_i128":  {biMulTrap, ctI128},
	"__addtrap_i8":    {biAddTrap, ctI8},
	"__subtrap_i8":    {biSubTrap, ctI8},
	"__multrap_i8":    {biMulTrap, ctI8},
	"__crc32":         {biCrc32, ctI64},
	"__lmulfold":      {biLMulFold, ctI64},
	"__rotr":          {biRotr, ctI64},
	"__zext_i1":       {biZext, ctI1},
	"__zext_i8":       {biZext, ctI8},
	"__zext_i16":      {biZext, ctI16},
	"__zext_i32":      {biZext, ctI32},
	"__zext_i64":      {biZext, ctI64},
	"__zext_ptr":      {biZext, ctPtr},
	"__f64bits":       {biF64Bits, ctI64},
	"__bitsf64":       {biBitsF64, ctF64},
	"__select":        {biSelect, ctI64},
	"__fselect":       {biFSelect, ctF64},
	"__atomicadd_i32": {biAtomicAdd, ctI32},
	"__atomicadd_i64": {biAtomicAdd, ctI64},
	"__atomicadd_i8":  {biAtomicAdd, ctI8},
	"__atomicadd_i16": {biAtomicAdd, ctI16},
}

func gimplifyCall(gf *gimpleFunc, e *cexpr, vars map[string]int32,
	newVar func(cType) int32, emit func(tac),
	flatten func(*cexpr, cType) (int32, error)) (int32, error) {
	// Runtime calls: rtN(...).
	if len(e.name) > 2 && e.name[:2] == "rt" {
		var rtid uint32
		if _, err := fmt.Sscanf(e.name, "rt%d", &rtid); err != nil {
			return -1, fmt.Errorf("cbe: bad runtime callee %s", e.name)
		}
		var args []int32
		for _, a := range e.args {
			v, err := flatten(a, ctI64)
			if err != nil {
				return -1, err
			}
			args = append(args, v)
		}
		d := newVar(ctI128) // carrier for up to two result registers
		emit(tac{op: gCall, dst: d, a: -1, b: -1, rtid: rtid, args: args, ct: ctI128})
		return d, nil
	}
	bi, ok := builtinByName[e.name]
	if !ok {
		return -1, fmt.Errorf("cbe: unknown function %s", e.name)
	}
	var args []int32
	for _, a := range e.args {
		v, err := flatten(a, ctI64)
		if err != nil {
			return -1, err
		}
		args = append(args, v)
	}
	var resT cType
	switch bi.kind {
	case biI128:
		resT = ctI128
	case biAddTrap, biSubTrap, biMulTrap, biAtomicAdd:
		resT = bi.ct
	case biBitsF64, biFSelect:
		resT = ctF64
	default:
		resT = ctI64
	}
	d := newVar(resT)
	emit(tac{op: gBuiltin, dst: d, a: -1, b: -1, bi: bi.kind, ct2: bi.ct, ct: resT, args: args})
	return d, nil
}

// optimizeGimple runs the scalar optimization pipeline: constant folding,
// copy propagation, local common-subexpression elimination, and dead code
// elimination, iterated to a fixpoint.
func optimizeGimple(gf *gimpleFunc) (passesRun int) {
	for round := 0; round < 4; round++ {
		changed := false
		if copyPropagate(gf) {
			changed = true
		}
		passesRun++
		if constFold(gf) {
			changed = true
		}
		passesRun++
		if localCSE(gf) {
			changed = true
		}
		passesRun++
		if deadCodeElim(gf) {
			changed = true
		}
		passesRun++
		if !changed {
			break
		}
	}
	return passesRun
}

// defCounts returns per-var static assignment counts.
func defCounts(gf *gimpleFunc) []int32 {
	counts := make([]int32, len(gf.vars))
	for i := range gf.code {
		if d := gf.code[i].dst; d >= 0 {
			counts[d]++
		}
	}
	for p := 0; p < gf.nparams; p++ {
		counts[p]++
	}
	return counts
}

// copyPropagate replaces uses of single-def copy targets with their source
// when the source is also single-def.
func copyPropagate(gf *gimpleFunc) bool {
	counts := defCounts(gf)
	repl := make([]int32, len(gf.vars))
	for i := range repl {
		repl[i] = int32(i)
	}
	for i := range gf.code {
		t := &gf.code[i]
		if t.op == gMov && t.dst >= 0 && counts[t.dst] == 1 && counts[t.a] == 1 &&
			gf.vars[t.dst] == gf.vars[t.a] {
			repl[t.dst] = t.a
		}
	}
	resolve := func(v int32) int32 {
		for repl[v] != v {
			v = repl[v]
		}
		return v
	}
	changed := false
	sub := func(v *int32) {
		if *v >= 0 {
			if r := resolve(*v); r != *v {
				*v = r
				changed = true
			}
		}
	}
	for i := range gf.code {
		t := &gf.code[i]
		sub(&t.a)
		sub(&t.b)
		for k := range t.args {
			sub(&t.args[k])
		}
	}
	return changed
}

// constFold evaluates pure ops over single-def constants.
func constFold(gf *gimpleFunc) bool {
	counts := defCounts(gf)
	constOf := map[int32]int64{}
	for i := range gf.code {
		t := &gf.code[i]
		if t.op == gConst && t.dst >= 0 && counts[t.dst] == 1 && t.ct != ctI128 {
			constOf[t.dst] = t.imm
		}
	}
	changed := false
	for i := range gf.code {
		t := &gf.code[i]
		if t.op != gBin || t.dst < 0 || counts[t.dst] != 1 || t.ct == ctI128 || t.ct == ctF64 {
			continue
		}
		av, aok := constOf[t.a]
		bv, bok := constOf[t.b]
		if !aok || !bok {
			continue
		}
		var r int64
		switch t.bin {
		case bAdd:
			r = av + bv
		case bSub:
			r = av - bv
		case bMul:
			r = av * bv
		case bAnd:
			r = av & bv
		case bOr:
			r = av | bv
		case bXor:
			r = av ^ bv
		case bShl:
			r = av << (uint64(bv) & 63)
		case bSar:
			r = av >> (uint64(bv) & 63)
		case bShr:
			r = int64(uint64(av) >> (uint64(bv) & 63))
		default:
			continue // division folding skipped (traps)
		}
		*t = tac{op: gConst, dst: t.dst, a: -1, b: -1, imm: canonC(r, t.ct), ct: t.ct}
		constOf[t.dst] = t.imm
		changed = true
	}
	return changed
}

func canonC(v int64, t cType) int64 {
	switch t {
	case ctI1:
		return v & 1
	case ctI8:
		return int64(int8(v))
	case ctI16:
		return int64(int16(v))
	case ctI32:
		return int64(int32(v))
	}
	return v
}

// localCSE removes duplicated pure computations within straight-line
// regions (between labels, branches and calls).
func localCSE(gf *gimpleFunc) bool {
	type key struct {
		op   gOp
		bin  gBinKind
		pred string
		a, b int32
		imm  int64
		ct   cType
		ct2  cType
		bi   builtinKind
	}
	counts := defCounts(gf)
	changed := false
	avail := map[key]int32{}
	repl := map[int32]int32{}
	for i := range gf.code {
		t := &gf.code[i]
		switch t.op {
		case gLabel, gGoto, gIfGoto, gCall, gStore, gRet, gTrap:
			avail = map[key]int32{}
			if t.op == gIfGoto || t.op == gRet {
				if r, ok := repl[t.a]; ok {
					t.a = r
					changed = true
				}
			}
			if t.op == gStore || t.op == gCall {
				if r, ok := repl[t.a]; ok && t.a >= 0 {
					t.a = r
					changed = true
				}
				if r, ok := repl[t.b]; ok && t.b >= 0 {
					t.b = r
					changed = true
				}
				for k := range t.args {
					if r, ok := repl[t.args[k]]; ok {
						t.args[k] = r
						changed = true
					}
				}
			}
			continue
		}
		// Substitute known replacements in operands.
		if t.a >= 0 {
			if r, ok := repl[t.a]; ok {
				t.a = r
				changed = true
			}
		}
		if t.b >= 0 {
			if r, ok := repl[t.b]; ok {
				t.b = r
				changed = true
			}
		}
		for k := range t.args {
			if r, ok := repl[t.args[k]]; ok {
				t.args[k] = r
				changed = true
			}
		}
		// Only pure single-def defs participate.
		if t.dst < 0 || counts[t.dst] != 1 {
			continue
		}
		switch t.op {
		case gConst, gBin, gCmp, gCast, gAddrOf:
			k := key{op: t.op, bin: t.bin, pred: t.pred, a: t.a, b: t.b,
				imm: t.imm, ct: t.ct, ct2: t.ct2}
			if prev, ok := avail[k]; ok {
				repl[t.dst] = prev
				*t = tac{op: gMov, dst: t.dst, a: prev, b: -1, ct: t.ct}
				changed = true
			} else {
				avail[k] = t.dst
			}
		}
	}
	return changed
}

// deadCodeElim drops pure instructions whose results are never used.
func deadCodeElim(gf *gimpleFunc) bool {
	used := make([]bool, len(gf.vars))
	for i := range gf.code {
		t := &gf.code[i]
		if t.a >= 0 {
			used[t.a] = true
		}
		if t.b >= 0 {
			used[t.b] = true
		}
		for _, a := range t.args {
			used[a] = true
		}
	}
	counts := defCounts(gf)
	changed := false
	var out []tac
	for i := range gf.code {
		t := gf.code[i]
		pure := t.op == gConst || t.op == gMov || t.op == gBin && t.bin != bDiv &&
			t.bin != bRem && t.bin != bUDiv && t.bin != bURem ||
			t.op == gCmp || t.op == gCast || t.op == gAddrOf
		if pure && t.dst >= 0 && !used[t.dst] && counts[t.dst] == 1 {
			changed = true
			continue
		}
		out = append(out, t)
	}
	gf.code = out
	return changed
}
