package cbe

import "fmt"

// builtinOp expands the compiler builtins.
func (g *asmgen) builtinOp(t *tac) error {
	switch t.bi {
	case biI128:
		lo := g.use(t.args[0])
		hi := g.use(t.args[1])
		dlo, dhi := g.defPair(t.dst)
		g.ins("mov r%d, r%d", dlo, lo)
		g.ins("mov r%d, r%d", dhi, hi)
		g.defDone(t.dst)

	case biCrc32:
		a := g.use(t.args[0])
		b := g.use(t.args[1])
		d := g.def(t.dst)
		g.mov3("crc32", d, a, b)
		g.defDone(t.dst)

	case biLMulFold:
		a := g.use(t.args[0])
		b := g.use(t.args[1])
		d := g.def(t.dst)
		h := g.allocGPR()
		g.ins("mulw r%d, r%d, r%d, r%d", d, h, a, b)
		g.mov3("xor", d, d, h)
		g.defDone(t.dst)

	case biRotr:
		a := g.use(t.args[0])
		b := g.use(t.args[1])
		d := g.def(t.dst)
		g.mov3("rotr", d, a, b)
		g.defDone(t.dst)

	case biZext:
		a := g.use(t.args[0])
		d := g.def(t.dst)
		g.ins("mov r%d, r%d", d, a)
		switch t.ct2 {
		case ctI1:
			g.mov3i("andi", d, d, 1)
		case ctI8:
			g.mov3i("andi", d, d, 0xFF)
		case ctI16:
			g.mov3i("andi", d, d, 0xFFFF)
		case ctI32:
			g.mov3i("andi", d, d, 0xFFFFFFFF)
		}
		g.defDone(t.dst)

	case biF64Bits:
		a := g.useF(t.args[0])
		d := g.def(t.dst)
		g.ins("movrf r%d, f%d", d, a)
		g.defDone(t.dst)

	case biBitsF64:
		a := g.use(t.args[0])
		d := g.def(t.dst)
		g.ins("movfr f%d, r%d", d, a)
		g.defDone(t.dst)

	case biSelect:
		cond := g.use(t.args[0])
		x := g.use(t.args[1])
		y := g.use(t.args[2])
		d := g.def(t.dst)
		m := g.allocGPR()
		g.ins("mov r%d, r%d", m, cond)
		g.ins("neg r%d, r%d", m, m)
		tt := g.allocGPR()
		g.mov3("xor", tt, x, y)
		g.mov3("and", tt, tt, m)
		g.ins("mov r%d, r%d", d, y)
		g.mov3("xor", d, d, tt)
		g.defDone(t.dst)

	case biFSelect:
		cond := g.use(t.args[0])
		x := g.useF(t.args[1])
		y := g.useF(t.args[2])
		d := g.def(t.dst)
		m := g.allocGPR()
		g.ins("mov r%d, r%d", m, cond)
		g.ins("neg r%d, r%d", m, m)
		tx := g.allocGPR()
		ty := g.allocGPR()
		g.ins("movrf r%d, f%d", tx, x)
		g.ins("movrf r%d, f%d", ty, y)
		g.mov3("xor", tx, tx, ty)
		g.mov3("and", tx, tx, m)
		g.mov3("xor", tx, tx, ty)
		g.ins("movfr f%d, r%d", d, tx)
		g.defDone(t.dst)

	case biAtomicAdd:
		addr := g.use(t.args[0])
		val := g.use(t.args[1])
		d := g.def(t.dst)
		tt := g.allocGPR()
		g.ins("%s r%d, r%d, 0", loadMnemonic(t.ct2), d, addr)
		g.ins("mov r%d, r%d", tt, d)
		g.mov3("add", tt, tt, val)
		g.ins("%s r%d, 0, r%d", storeMnemonic(t.ct2), addr, tt)
		g.defDone(t.dst)

	case biAddTrap, biSubTrap, biMulTrap:
		return g.trapArith(t)

	default:
		return fmt.Errorf("bad builtin %d", t.bi)
	}
	return nil
}

func (g *asmgen) trapArith(t *tac) error {
	w := t.ct2
	if w == ctI128 {
		return g.trapArith128(t)
	}
	a := g.use(t.args[0])
	b := g.use(t.args[1])
	d := g.def(t.dst)
	if w.bits() < 64 {
		op := map[builtinKind]string{biAddTrap: "add", biSubTrap: "sub", biMulTrap: "mul"}[t.bi]
		g.mov3(op, d, a, b)
		tt := g.allocGPR()
		g.ins("mov r%d, r%d", tt, d)
		g.canon(w, tt)
		ov := g.allocGPR()
		g.ins("set ne r%d, r%d, r%d", ov, tt, d)
		g.ins("trapnz r%d, 1", ov)
		g.ins("mov r%d, r%d", d, tt)
		g.defDone(t.dst)
		return nil
	}
	switch t.bi {
	case biAddTrap, biSubTrap:
		op := "add"
		if t.bi == biSubTrap {
			op = "sub"
		}
		g.mov3(op, d, a, b)
		t1 := g.allocGPR()
		t2 := g.allocGPR()
		if t.bi == biAddTrap {
			g.mov3("xor", t1, d, a)
			g.mov3("xor", t2, d, b)
		} else {
			g.mov3("xor", t1, a, b)
			g.mov3("xor", t2, d, a)
		}
		g.mov3("and", t1, t1, t2)
		g.mov3i("shri", t1, t1, 63)
		g.ins("trapnz r%d, 1", t1)
	case biMulTrap:
		h := g.allocGPR()
		g.ins("mulws r%d, r%d, r%d, r%d", d, h, a, b)
		t2 := g.allocGPR()
		g.ins("mov r%d, r%d", t2, d)
		g.mov3i("sari", t2, t2, 63)
		g.mov3("xor", t2, t2, h)
		g.ins("trapnz r%d, 1", t2)
	}
	g.defDone(t.dst)
	return nil
}

func (g *asmgen) trapArith128(t *tac) error {
	if t.bi == biMulTrap {
		return fmt.Errorf("128-bit multiplication should go through the runtime helper")
	}
	alo, ahi := g.usePair(t.args[0])
	blo, bhi := g.usePair(t.args[1])
	dlo, dhi := g.defPair(t.dst)
	c := g.allocGPR()
	t1 := g.allocGPR()
	t2 := g.allocGPR()
	if t.bi == biAddTrap {
		g.mov3("add", dlo, alo, blo)
		g.ins("set ult r%d, r%d, r%d", c, dlo, alo)
		g.mov3("add", dhi, ahi, bhi)
		g.mov3("add", dhi, dhi, c)
		g.mov3("xor", t1, dhi, ahi)
		g.mov3("xor", t2, dhi, bhi)
	} else {
		g.ins("set ult r%d, r%d, r%d", c, alo, blo)
		g.mov3("sub", dlo, alo, blo)
		g.mov3("sub", dhi, ahi, bhi)
		g.mov3("sub", dhi, dhi, c)
		g.mov3("xor", t1, ahi, bhi)
		g.mov3("xor", t2, dhi, ahi)
	}
	g.mov3("and", t1, t1, t2)
	g.mov3i("shri", t1, t1, 63)
	g.ins("trapnz r%d, 1", t1)
	g.defDone(t.dst)
	return nil
}
