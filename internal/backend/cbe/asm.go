package cbe

import (
	"fmt"
	"strconv"
	"strings"

	"qcc/internal/vt"
)

// The assembler: parses the textual assembly back into encoded machine
// code, one function at a time (the separate `as` step of the GCC flow).

type asmFunc struct {
	name   string
	code   []byte
	relocs []asmReloc
}

type asmReloc struct {
	off int32
	sym string
}

// assemble parses the whole assembly text into per-function objects.
func assemble(text string, arch vt.Arch) ([]*asmFunc, error) {
	var fns []*asmFunc
	var cur *asmFunc
	var asmb vt.Assembler
	labels := map[string]vt.Label{}
	var relocSyms []string

	label := func(name string) vt.Label {
		if l, ok := labels[name]; ok {
			return l
		}
		l := asmb.NewLabel()
		labels[name] = l
		return l
	}

	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fail := func(msg string) error {
			return fmt.Errorf("cbe: assembler line %d (%q): %s", ln+1, line, msg)
		}
		switch {
		case strings.HasPrefix(line, ".func "):
			cur = &asmFunc{name: strings.TrimSpace(line[6:])}
			asmb = vt.NewAssembler(arch)
			labels = map[string]vt.Label{}
			relocSyms = relocSyms[:0]
			continue
		case line == ".endfunc":
			if cur == nil {
				return nil, fail("endfunc outside function")
			}
			code, relocs, err := asmb.Finish()
			if err != nil {
				return nil, fmt.Errorf("cbe: %s: %w", cur.name, err)
			}
			cur.code = code
			for _, r := range relocs {
				cur.relocs = append(cur.relocs, asmReloc{off: r.Offset, sym: relocSyms[r.Sym]})
			}
			fns = append(fns, cur)
			cur = nil
			continue
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, fail("label outside function")
			}
			asmb.Bind(label(strings.TrimSuffix(line, ":")))
			continue
		}
		if cur == nil {
			return nil, fail("instruction outside function")
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
		if len(fields) == 0 {
			continue
		}
		if err := emitAsmLine(asmb, fields, label, &relocSyms); err != nil {
			return nil, fail(err.Error())
		}
	}
	return fns, nil
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'r' && s[0] != 'f' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 63 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 10, 64)
}

var condByName = map[string]vt.Cond{
	"eq": vt.CondEQ, "ne": vt.CondNE,
	"slt": vt.CondSLT, "sle": vt.CondSLE, "sgt": vt.CondSGT, "sge": vt.CondSGE,
	"ult": vt.CondULT, "ule": vt.CondULE, "ugt": vt.CondUGT, "uge": vt.CondUGE,
}

var rrOps = map[string]vt.Op{
	"add": vt.Add, "sub": vt.Sub, "mul": vt.Mul, "and": vt.And, "or": vt.Or,
	"xor": vt.Xor, "shl": vt.Shl, "shr": vt.Shr, "sar": vt.Sar, "rotr": vt.Rotr,
	"sdiv": vt.SDiv, "srem": vt.SRem, "udiv": vt.UDiv, "urem": vt.URem,
	"crc32": vt.Crc32,
}

var riOps = map[string]vt.Op{
	"addi": vt.AddI, "subi": vt.SubI, "muli": vt.MulI, "andi": vt.AndI,
	"ori": vt.OrI, "xori": vt.XorI, "shli": vt.ShlI, "shri": vt.ShrI,
	"sari": vt.SarI, "rotri": vt.RotrI,
}

var loadOps = map[string]vt.Op{
	"ld8": vt.Load8, "ld8s": vt.Load8S, "ld16s": vt.Load16S,
	"ld32s": vt.Load32S, "ld64": vt.Load64,
	"ldu8": vt.LoadU8, "ldu8s": vt.LoadU8S, "ldu16s": vt.LoadU16S,
	"ldu32s": vt.LoadU32S, "ldu64": vt.LoadU64,
}

var storeOps = map[string]vt.Op{
	"st8": vt.Store8, "st16": vt.Store16, "st32": vt.Store32, "st64": vt.Store64,
	"stu8": vt.StoreU8, "stu16": vt.StoreU16, "stu32": vt.StoreU32, "stu64": vt.StoreU64,
}

var fOps = map[string]vt.Op{
	"fadd": vt.FAdd, "fsub": vt.FSub, "fmul": vt.FMul, "fdiv": vt.FDiv,
}

func emitAsmLine(asmb vt.Assembler, f []string, label func(string) vt.Label, relocSyms *[]string) error {
	op := f[0]
	reg := func(i int) (uint8, error) { return parseReg(f[i]) }
	imm := func(i int) (int64, error) { return parseImm(f[i]) }
	need := func(n int) error {
		if len(f) != n+1 {
			return fmt.Errorf("%s expects %d operands", op, n)
		}
		return nil
	}
	switch {
	case op == "ret":
		asmb.Emit(vt.Instr{Op: vt.Ret})
	case op == "trap":
		v, err := imm(1)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: vt.Trap, Imm: v})
	case op == "trapnz":
		ra, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: vt.TrapNZ, RA: ra, Imm: v})
	case op == "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(1)
		if err != nil {
			return err
		}
		ra, err := reg(2)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: vt.MovRR, RD: rd, RA: ra})
	case op == "fmov":
		rd, _ := reg(1)
		ra, _ := reg(2)
		asmb.Emit(vt.Instr{Op: vt.FMovRR, RD: rd, RA: ra})
	case op == "movi":
		rd, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: vt.MovRI, RD: rd, Imm: v})
	case op == "fmovi":
		rd, _ := reg(1)
		v, err := imm(2)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: vt.FMovRI, RD: rd, Imm: v})
	case op == "movsym":
		rd, err := reg(1)
		if err != nil {
			return err
		}
		*relocSyms = append(*relocSyms, f[2])
		asmb.EmitMovSym(rd, int32(len(*relocSyms)-1))
	case op == "neg":
		rd, _ := reg(1)
		ra, _ := reg(2)
		asmb.Emit(vt.Instr{Op: vt.Neg, RD: rd, RA: ra})
	case op == "not":
		rd, _ := reg(1)
		ra, _ := reg(2)
		asmb.Emit(vt.Instr{Op: vt.Not, RD: rd, RA: ra})
	case rrOps[op] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, _ := reg(1)
		ra, _ := reg(2)
		rb, _ := reg(3)
		asmb.Emit(vt.Instr{Op: rrOps[op], RD: rd, RA: ra, RB: rb})
	case riOps[op] != 0:
		rd, _ := reg(1)
		ra, _ := reg(2)
		v, err := imm(3)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: riOps[op], RD: rd, RA: ra, Imm: v})
	case loadOps[op] != 0:
		rd, _ := reg(1)
		ra, _ := reg(2)
		v, err := imm(3)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: loadOps[op], RD: rd, RA: ra, Imm: v})
	case storeOps[op] != 0:
		ra, _ := reg(1)
		v, err := imm(2)
		if err != nil {
			return err
		}
		rb, err := reg(3)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: storeOps[op], RA: ra, RB: rb, Imm: v})
	case op == "fld" || op == "fldu":
		rd, _ := reg(1)
		ra, _ := reg(2)
		v, _ := imm(3)
		fop := vt.FLoad
		if op == "fldu" {
			fop = vt.FLoadU
		}
		asmb.Emit(vt.Instr{Op: fop, RD: rd, RA: ra, Imm: v})
	case op == "fst" || op == "fstu":
		ra, _ := reg(1)
		v, _ := imm(2)
		rb, _ := reg(3)
		fop := vt.FStore
		if op == "fstu" {
			fop = vt.FStoreU
		}
		asmb.Emit(vt.Instr{Op: fop, RA: ra, RB: rb, Imm: v})
	case fOps[op] != 0:
		rd, _ := reg(1)
		ra, _ := reg(2)
		rb, _ := reg(3)
		asmb.Emit(vt.Instr{Op: fOps[op], RD: rd, RA: ra, RB: rb})
	case op == "fcmp":
		c, ok := condByName[f[1]]
		if !ok {
			return fmt.Errorf("bad condition %q", f[1])
		}
		rd, _ := reg(2)
		ra, _ := reg(3)
		rb, _ := reg(4)
		asmb.Emit(vt.Instr{Op: vt.FCmp, Cond: c, RD: rd, RA: ra, RB: rb})
	case op == "set":
		c, ok := condByName[f[1]]
		if !ok {
			return fmt.Errorf("bad condition %q", f[1])
		}
		rd, _ := reg(2)
		ra, _ := reg(3)
		rb, _ := reg(4)
		asmb.Emit(vt.Instr{Op: vt.SetCC, Cond: c, RD: rd, RA: ra, RB: rb})
	case op == "mulw":
		lo, _ := reg(1)
		hi, _ := reg(2)
		ra, _ := reg(3)
		rb, _ := reg(4)
		asmb.Emit(vt.Instr{Op: vt.MulWideU, RD: lo, RC: hi, RA: ra, RB: rb})
	case op == "mulws":
		lo, _ := reg(1)
		hi, _ := reg(2)
		ra, _ := reg(3)
		rb, _ := reg(4)
		asmb.Emit(vt.Instr{Op: vt.MulWideS, RD: lo, RC: hi, RA: ra, RB: rb})
	case op == "si2f":
		rd, _ := reg(1)
		ra, _ := reg(2)
		asmb.Emit(vt.Instr{Op: vt.CvtSI2F, RD: rd, RA: ra})
	case op == "f2si":
		rd, _ := reg(1)
		ra, _ := reg(2)
		asmb.Emit(vt.Instr{Op: vt.CvtF2SI, RD: rd, RA: ra})
	case op == "movrf":
		rd, _ := reg(1)
		ra, _ := reg(2)
		asmb.Emit(vt.Instr{Op: vt.MovRF, RD: rd, RA: ra})
	case op == "movfr":
		rd, _ := reg(1)
		ra, _ := reg(2)
		asmb.Emit(vt.Instr{Op: vt.MovFR, RD: rd, RA: ra})
	case op == "br":
		asmb.Emit(vt.Instr{Op: vt.Br, Target: int32(label(f[1]))})
	case op == "brnz":
		ra, _ := reg(1)
		asmb.Emit(vt.Instr{Op: vt.BrNZ, RA: ra, Target: int32(label(f[2]))})
	case op == "brcc":
		c, ok := condByName[f[1]]
		if !ok {
			return fmt.Errorf("bad condition %q", f[1])
		}
		ra, _ := reg(2)
		rb, _ := reg(3)
		asmb.Emit(vt.Instr{Op: vt.BrCC, Cond: c, RA: ra, RB: rb, Target: int32(label(f[4]))})
	case op == "callrt":
		v, err := imm(1)
		if err != nil {
			return err
		}
		asmb.Emit(vt.Instr{Op: vt.CallRT, Imm: v})
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return nil
}

// link concatenates the assembled functions (the `ld`/collect2 step),
// resolving symbol relocations.
func link(fns []*asmFunc, arch vt.Arch) (code []byte, offsets map[string]int32, err error) {
	offsets = map[string]int32{}
	align := 1
	if vt.ForArch(arch).FixedLen > 0 {
		align = vt.ForArch(arch).FixedLen
	}
	for _, f := range fns {
		for len(code)%align != 0 {
			code = append(code, 0)
		}
		offsets[f.name] = int32(len(code))
		code = append(code, f.code...)
	}
	for _, f := range fns {
		base := offsets[f.name]
		for _, r := range f.relocs {
			target, ok := offsets[r.sym]
			if !ok {
				return nil, nil, fmt.Errorf("cbe: undefined symbol %s", r.sym)
			}
			kind := vt.RelocAbs64
			if arch == vt.VA64 {
				kind = vt.RelocMovSeq64
			}
			vt.Reloc{Kind: kind, Offset: base + r.off}.Patch(code, int64(target))
		}
	}
	return code, offsets, nil
}
