package cbe

import (
	"fmt"
	"strings"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the GCC/C back-end.
type Engine struct{}

// New returns the GCC/C engine.
func New() *Engine { return &Engine{} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "GCC" }

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Compile implements backend.Engine. The phases correspond to the Table I
// breakdown: C code generation, re-parsing the text, lowering to the
// GIMPLE-like IR, -O3-style optimization, code generation to textual
// assembly, assembling, and linking.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	stats := &backend.Stats{Funcs: len(mod.Funcs)}
	ph := backend.NewPhaser(stats, env.Trace)
	tgt := vt.ForArch(env.Arch)

	// Phase 1: print the module as C (done by the database system).
	sp := ph.Begin("GenerateC")
	src, err := GenerateC(mod, env)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	stats.Count("c_source_bytes", int64(len(src)))

	// Phase 2: the "compiler proper" re-lexes and re-parses the text.
	sp = ph.Begin("Parse")
	toks, err := lexAll(src)
	if err != nil {
		return nil, nil, err
	}
	fns, err := parseUnit(toks)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	stats.Count("c_tokens", int64(len(toks)))

	// Phase 3: gimplification.
	sp = ph.Begin("Gimplify")
	var gfns []*gimpleFunc
	for _, fn := range fns {
		fsp := ph.BeginGroup("func:" + fn.name)
		gf, err := gimplify(fn)
		fsp.End()
		if err != nil {
			return nil, nil, fmt.Errorf("cbe: %s: %w", fn.name, err)
		}
		gfns = append(gfns, gf)
	}
	sp.End()

	// Phase 4: optimization (-O3-ish scalar pipeline).
	sp = ph.Begin("Optimize")
	for _, gf := range gfns {
		fsp := ph.BeginGroup("func:" + gf.name)
		n := optimizeGimple(gf)
		fsp.End()
		stats.Count("passes_run", int64(n))
	}
	sp.End()

	// Phase 5: code generation to textual assembly.
	sp = ph.Begin("Codegen")
	var asmText strings.Builder
	for _, gf := range gfns {
		if err := genAsm(gf, tgt, &asmText); err != nil {
			return nil, nil, err
		}
	}
	sp.End()
	stats.Count("asm_bytes", int64(asmText.Len()))

	// Phase 6: the assembler parses the text into object code.
	sp = ph.Begin("Assemble")
	objs, err := assemble(asmText.String(), env.Arch)
	sp.End()
	if err != nil {
		return nil, nil, err
	}

	// Phase 7: the linker produces the shared-object image, which is then
	// dlopen'ed (loaded into the machine).
	sp = ph.Begin("Link")
	code, offsets, err := link(objs, env.Arch)
	if err != nil {
		return nil, nil, err
	}
	vmod, err := vm.Load(env.Arch, code)
	if err != nil {
		return nil, nil, fmt.Errorf("cbe: %w", err)
	}
	var unwind []vm.UnwindRange
	fnOffsets := make([]int32, len(mod.Funcs))
	for i, f := range mod.Funcs {
		off, ok := offsets[mangle(f.Name)]
		if !ok {
			return nil, nil, fmt.Errorf("cbe: dlsym: %s not found", f.Name)
		}
		fnOffsets[i] = off
		unwind = append(unwind, vm.UnwindRange{Start: off, End: off + 1, Name: f.Name, CFI: []byte{1}})
	}
	vmod.RegisterUnwind(unwind)
	if err := env.DB.Bind(mod.RTNames); err != nil {
		return nil, nil, err
	}
	sp.End()

	stats.CodeBytes = len(code)
	ph.Finish()
	return &exec{m: env.DB.M, mod: vmod, offsets: fnOffsets}, stats, nil
}
