package cbe

import (
	"fmt"
	"sort"
	"strings"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the GCC/C back-end.
type Engine struct{}

// New returns the GCC/C engine.
func New() *Engine { return &Engine{} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "GCC" }

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Module exposes the linked machine-code image (byte-identity tests,
// disassembly tooling).
func (x *exec) Module() *vm.Module { return x.mod }

// Compile implements backend.Engine via the shared sequential unit driver.
// The phases correspond to the Table I breakdown: C code generation,
// re-parsing the text, lowering to the GIMPLE-like IR, -O3-style
// optimization, code generation to textual assembly, assembling, and
// linking.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	return backend.CompileUnits(e, mod, env)
}

// moduleCompiler implements backend.ModuleCompiler. The translation unit is
// generated and parsed whole in BeginModule (that is where GenerateC interns
// string constants and imports runtime helpers — module-level mutation);
// gimplification onward runs per function.
type moduleCompiler struct {
	mod *qir.Module
	env *backend.Env
	tgt *vt.Target
	fns []*cfunc // parsed C functions, index-aligned with mod.Funcs
}

// BeginModule implements backend.FuncEngine: render the module as one C
// translation unit and re-lex/re-parse it, exactly as GCC receives a file.
func (e *Engine) BeginModule(mod *qir.Module, env *backend.Env, ph *backend.Phaser) (backend.ModuleCompiler, error) {
	// Phase 1: print the module as C (done by the database system).
	sp := ph.Begin("GenerateC")
	src, err := GenerateC(mod, env)
	sp.End()
	if err != nil {
		return nil, err
	}
	ph.Count("c_source_bytes", int64(len(src)))

	// Phase 2: the "compiler proper" re-lexes and re-parses the text.
	sp = ph.Begin("Parse")
	toks, err := lexAll(src)
	if err != nil {
		sp.End()
		return nil, err
	}
	fns, err := parseUnit(toks)
	sp.End()
	if err != nil {
		return nil, err
	}
	ph.Count("c_tokens", int64(len(toks)))
	if len(fns) != len(mod.Funcs) {
		return nil, fmt.Errorf("cbe: parsed %d functions, module has %d", len(fns), len(mod.Funcs))
	}
	return &moduleCompiler{mod: mod, env: env, tgt: vt.ForArch(env.Arch), fns: fns}, nil
}

// Variant implements backend.ModuleCompiler (cache keying).
func (c *moduleCompiler) Variant() string { return "cbe/v1" }

// CompileFunc implements backend.ModuleCompiler: gimplify, optimize,
// generate textual assembly, and assemble one function into object code.
func (c *moduleCompiler) CompileFunc(i int, ph *backend.Phaser) (*backend.Unit, error) {
	fn := c.fns[i]

	// Phase 3: gimplification.
	sp := ph.Begin("Gimplify")
	gf, err := gimplify(fn)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("cbe: %s: %w", fn.name, err)
	}

	// Phase 4: optimization (-O3-ish scalar pipeline).
	sp = ph.Begin("Optimize")
	n := optimizeGimple(gf)
	sp.End()
	ph.Count("passes_run", int64(n))

	// Phase 5: code generation to textual assembly.
	sp = ph.Begin("Codegen")
	var asmText strings.Builder
	err = genAsm(gf, c.tgt, &asmText)
	sp.End()
	if err != nil {
		return nil, err
	}
	ph.Count("asm_bytes", int64(asmText.Len()))

	// Phase 6: the assembler parses the text into object code.
	sp = ph.Begin("Assemble")
	objs, err := assemble(asmText.String(), c.env.Arch)
	sp.End()
	if err != nil {
		return nil, err
	}
	if len(objs) != 1 {
		return nil, fmt.Errorf("cbe: %s: assembled into %d sections", fn.name, len(objs))
	}
	return &backend.Unit{
		Index: i, Name: c.mod.Funcs[i].Name, Bytes: len(objs[0].code),
		Payload: objs[0],
	}, nil
}

// Link implements backend.ModuleCompiler. Phase 7: the linker produces the
// shared-object image, which is then dlopen'ed (loaded into the machine).
func (c *moduleCompiler) Link(units []*backend.Unit, ph *backend.Phaser) (backend.Exec, error) {
	sp := ph.Begin("Link")
	defer sp.End()
	objs := make([]*asmFunc, len(units))
	for i, u := range units {
		objs[i] = u.Payload.(*asmFunc)
	}
	code, offsets, err := link(objs, c.env.Arch)
	if err != nil {
		return nil, err
	}
	vmod, err := vm.Load(c.env.Arch, code)
	if err != nil {
		return nil, fmt.Errorf("cbe: %w", err)
	}
	var unwind []vm.UnwindRange
	fnOffsets := make([]int32, len(c.mod.Funcs))
	for i, f := range c.mod.Funcs {
		off, ok := offsets[mangle(f.Name)]
		if !ok {
			return nil, fmt.Errorf("cbe: dlsym: %s not found", f.Name)
		}
		fnOffsets[i] = off
		unwind = append(unwind, vm.UnwindRange{Start: off, Name: f.Name, CFI: []byte{1}, Func: int32(i)})
	}
	// The linker does not expose symbol sizes, so extend each range to the
	// next function's entry (or the end of the image): PC samples landing
	// mid-function then attribute to the right function instead of falling
	// off a degenerate one-byte range.
	starts := make([]int32, len(unwind))
	for i, u := range unwind {
		starts[i] = u.Start
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	for i := range unwind {
		end := int32(len(code))
		j := sort.Search(len(starts), func(k int) bool { return starts[k] > unwind[i].Start })
		if j < len(starts) {
			end = starts[j]
		}
		unwind[i].End = end
	}
	vmod.RegisterUnwind(unwind)
	vmod.SetFuse(!c.env.Options.NoFuse)
	if err := c.env.DB.Bind(c.mod.RTNames); err != nil {
		return nil, err
	}

	ph.Stats().CodeBytes = len(code)
	return &exec{m: c.env.DB.M, mod: vmod, offsets: fnOffsets}, nil
}
