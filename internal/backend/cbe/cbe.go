package cbe

import (
	"fmt"
	"strings"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Engine is the GCC/C back-end.
type Engine struct{}

// New returns the GCC/C engine.
func New() *Engine { return &Engine{} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "GCC" }

type exec struct {
	m       *vm.Machine
	mod     *vm.Module
	offsets []int32
}

func (x *exec) Call(fn int, args ...uint64) ([2]uint64, error) {
	return x.m.Call(x.mod, x.offsets[fn], args...)
}

// Compile implements backend.Engine. The phases correspond to the Table I
// breakdown: C code generation, re-parsing the text, lowering to the
// GIMPLE-like IR, -O3-style optimization, code generation to textual
// assembly, assembling, and linking.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	stats := &backend.Stats{Funcs: len(mod.Funcs)}
	timer := backend.NewTimer(stats)
	tgt := vt.ForArch(env.Arch)

	// Phase 1: print the module as C (done by the database system).
	src, err := GenerateC(mod, env)
	if err != nil {
		return nil, nil, err
	}
	stats.Count("c_source_bytes", int64(len(src)))
	timer.Lap("GenerateC")

	// Phase 2: the "compiler proper" re-lexes and re-parses the text.
	toks, err := lexAll(src)
	if err != nil {
		return nil, nil, err
	}
	fns, err := parseUnit(toks)
	if err != nil {
		return nil, nil, err
	}
	stats.Count("c_tokens", int64(len(toks)))
	timer.Lap("Parse")

	// Phase 3: gimplification.
	var gfns []*gimpleFunc
	for _, fn := range fns {
		gf, err := gimplify(fn)
		if err != nil {
			return nil, nil, fmt.Errorf("cbe: %s: %w", fn.name, err)
		}
		gfns = append(gfns, gf)
	}
	timer.Lap("Gimplify")

	// Phase 4: optimization (-O3-ish scalar pipeline).
	for _, gf := range gfns {
		n := optimizeGimple(gf)
		stats.Count("passes_run", int64(n))
	}
	timer.Lap("Optimize")

	// Phase 5: code generation to textual assembly.
	var asmText strings.Builder
	for _, gf := range gfns {
		if err := genAsm(gf, tgt, &asmText); err != nil {
			return nil, nil, err
		}
	}
	stats.Count("asm_bytes", int64(asmText.Len()))
	timer.Lap("Codegen")

	// Phase 6: the assembler parses the text into object code.
	objs, err := assemble(asmText.String(), env.Arch)
	if err != nil {
		return nil, nil, err
	}
	timer.Lap("Assemble")

	// Phase 7: the linker produces the shared-object image, which is then
	// dlopen'ed (loaded into the machine).
	code, offsets, err := link(objs, env.Arch)
	if err != nil {
		return nil, nil, err
	}
	vmod, err := vm.Load(env.Arch, code)
	if err != nil {
		return nil, nil, fmt.Errorf("cbe: %w", err)
	}
	var unwind []vm.UnwindRange
	fnOffsets := make([]int32, len(mod.Funcs))
	for i, f := range mod.Funcs {
		off, ok := offsets[mangle(f.Name)]
		if !ok {
			return nil, nil, fmt.Errorf("cbe: dlsym: %s not found", f.Name)
		}
		fnOffsets[i] = off
		unwind = append(unwind, vm.UnwindRange{Start: off, End: off + 1, Name: f.Name, CFI: []byte{1}})
	}
	vmod.RegisterUnwind(unwind)
	if err := env.DB.Bind(mod.RTNames); err != nil {
		return nil, nil, err
	}
	timer.Lap("Link")

	stats.CodeBytes = len(code)
	for _, p := range stats.Phases {
		stats.Total += p.Dur
	}
	return &exec{m: env.DB.M, mod: vmod, offsets: fnOffsets}, stats, nil
}
