// Package interp is the bytecode interpreter back-end: QIR is translated in
// a single cheap pass into register-based bytecode (SSA is destructed into
// edge copies), which a switch-dispatch loop then executes. Translation is
// nearly free — the paper reports 0.03 s for all of TPC-DS — but execution
// pays per-operation dispatch and type-switch overhead.
package interp

import (
	"fmt"

	"qcc/internal/backend"
	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
)

// Engine is the interpreter back-end.
type Engine struct{}

// New returns the interpreter engine.
func New() *Engine { return &Engine{} }

// Name implements backend.Engine.
func (e *Engine) Name() string { return "Interpreter" }

// Pseudo-ops appended to the QIR opcode space for lowered control flow.
const (
	bcJump   = qir.NumOps + iota // Imm = target instruction index
	bcJumpIf                     // A = cond slot, Imm = target if true
	bcMove                       // A = dst value, B = src value (both words)
)

// bcInstr is one bytecode instruction. A is the destination value slot; S,
// B, C are source slots (S carries QIR's first operand since A is taken by
// the destination).
type bcInstr struct {
	Op   qir.Op
	Type qir.Type
	A    qir.Value
	S    qir.Value
	B    qir.Value
	C    qir.Value
	Imm  int64
	Aux  uint32
}

type bcFunc struct {
	name    string
	nparams int
	nvals   int
	code    []bcInstr
	extra   []int32    // call argument slot lists
	pool    []uint64   // wide constants: lo,hi pairs
	wide    qir.BitSet // value ids occupying two words
}

type exec struct {
	funcs []*bcFunc
	env   *backend.Env
	m     *vm.Machine
	db    *rt.DB
}

// Compile implements backend.Engine.
func (e *Engine) Compile(mod *qir.Module, env *backend.Env) (backend.Exec, *backend.Stats, error) {
	stats := &backend.Stats{Funcs: len(mod.Funcs)}
	ph := backend.NewPhaser(stats, env.Trace)
	sp := ph.Begin("Translate")
	x := &exec{env: env, m: env.DB.M, db: env.DB}
	for _, f := range mod.Funcs {
		fsp := ph.BeginGroup("func:" + f.Name)
		bf, err := translate(f, env)
		fsp.End()
		if err != nil {
			return nil, nil, err
		}
		x.funcs = append(x.funcs, bf)
	}
	if err := env.DB.Bind(mod.RTNames); err != nil {
		return nil, nil, err
	}
	sp.End()
	ph.Finish()
	return x, stats, nil
}

// translate lowers one function to bytecode: blocks are laid out in reverse
// postorder, phis become edge copies, and branch targets are patched once
// block offsets are known.
func translate(f *qir.Func, env *backend.Env) (*bcFunc, error) {
	bf := &bcFunc{name: f.Name, nparams: len(f.Params), nvals: len(f.Instrs)}
	bf.wide = qir.NewBitSet(len(f.Instrs))
	for v := range f.Instrs {
		if f.Instrs[v].Type.Is128() {
			bf.wide.Set(qir.Value(v))
		}
	}
	rpo := f.RPO()
	blockStart := make([]int32, len(f.Blocks))
	for i := range blockStart {
		blockStart[i] = -1
	}
	type fixup struct {
		instr int32
		block qir.BlockID
	}
	var fixups []fixup

	// Scratch slots for parallel phi copies live past nvals.
	scratchBase := qir.Value(len(f.Instrs))
	maxPhis := 0
	for b := range f.Blocks {
		n := 0
		for _, v := range f.Blocks[b].List {
			if f.Instrs[v].Op == qir.OpPhi {
				n++
			}
		}
		if n > maxPhis {
			maxPhis = n
		}
	}
	bf.nvals += maxPhis

	// emitEdge writes the phi copies for edge pred->succ followed by a
	// jump to succ (patched later).
	emitEdge := func(pred, succ qir.BlockID) {
		var srcs []qir.Value
		var dsts []qir.Value
		for _, v := range f.Blocks[succ].List {
			if f.Instrs[v].Op != qir.OpPhi {
				break
			}
			pairs := f.PhiPairs(v)
			for i := 0; i < len(pairs); i += 2 {
				if pairs[i] == pred {
					srcs = append(srcs, pairs[i+1])
					dsts = append(dsts, v)
					break
				}
			}
		}
		// Parallel copy via scratch slots.
		for i, s := range srcs {
			bf.code = append(bf.code, bcInstr{Op: bcMove, A: scratchBase + qir.Value(i), B: s})
		}
		for i, d := range dsts {
			bf.code = append(bf.code, bcInstr{Op: bcMove, A: d, B: scratchBase + qir.Value(i)})
		}
		fixups = append(fixups, fixup{instr: int32(len(bf.code)), block: succ})
		bf.code = append(bf.code, bcInstr{Op: bcJump})
	}

	for _, b := range rpo {
		blockStart[b] = int32(len(bf.code))
		blk := &f.Blocks[b]
		for _, v := range blk.List {
			in := &f.Instrs[v]
			switch in.Op {
			case qir.OpParam, qir.OpPhi:
				// Params are preloaded; phis are written by edge copies.
			case qir.OpBr:
				emitEdge(b, qir.BlockID(in.Aux))
			case qir.OpCondBr:
				// cond true -> edge segment A; else fall through to
				// edge segment B.
				condJump := int32(len(bf.code))
				bf.code = append(bf.code, bcInstr{Op: bcJumpIf, A: in.A})
				emitEdge(b, in.B) // false edge
				trueStart := int32(len(bf.code))
				bf.code[condJump].Imm = int64(trueStart)
				emitEdge(b, qir.BlockID(in.Aux)) // true edge
			case qir.OpConst128:
				lo, hi := f.Const128(v)
				idx := int64(len(bf.pool))
				bf.pool = append(bf.pool, lo, hi)
				bf.code = append(bf.code, bcInstr{Op: qir.OpConst128, Type: qir.I128, A: v, Imm: idx})
			case qir.OpConstStr:
				lo, hi := env.DB.InternString(f.Module().Strings[in.Imm])
				idx := int64(len(bf.pool))
				bf.pool = append(bf.pool, lo, hi)
				bf.code = append(bf.code, bcInstr{Op: qir.OpConst128, Type: qir.Str, A: v, Imm: idx})
			case qir.OpConstF:
				bf.code = append(bf.code, bcInstr{Op: qir.OpConst, Type: qir.F64, A: v, Imm: in.Imm})
			case qir.OpConstPool:
				// The slot's machine address is resolved at translate time,
				// but the value is read per execution (unlike OpConstStr
				// above): BindConstPool runs after compilation, so the
				// bytecode must not capture the current slot contents.
				bf.code = append(bf.code, bcInstr{Op: qir.OpConstPool, Type: in.Type, A: v,
					Imm: int64(env.DB.ConstPoolAddr(int(in.Imm)))})
			case qir.OpCall:
				args := f.CallArgs(v)
				start := int32(len(bf.extra))
				bf.extra = append(bf.extra, args...)
				bf.code = append(bf.code, bcInstr{
					Op: qir.OpCall, Type: in.Type, A: v, B: start,
					C: int32(len(args)), Aux: in.Aux,
				})
			default:
				bc := bcInstr{
					Op: in.Op, Type: in.Type, A: v,
					S: in.A, B: in.B, C: in.C,
					Imm: in.Imm, Aux: in.Aux,
				}
				switch in.Op {
				case qir.OpStore:
					// The stored value's type decides the width.
					bc.Type = f.ValueType(in.B)
				case qir.OpICmp:
					// Record the operand type (result is always I1).
					bc.Type = f.ValueType(in.A)
				case qir.OpZExt:
					// Record the source type in Aux for masking.
					bc.Aux = uint32(f.ValueType(in.A))
				}
				bf.code = append(bf.code, bc)
			}
		}
	}
	for _, fx := range fixups {
		if blockStart[fx.block] < 0 {
			return nil, fmt.Errorf("interp: %s: jump to unreachable block %d", f.Name, fx.block)
		}
		bf.code[fx.instr].Imm = int64(blockStart[fx.block])
	}
	return bf, nil
}
