package interp

import (
	"fmt"
	"math"
	"runtime"

	"qcc/internal/qir"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Call implements backend.Exec. Narrow integer values are kept
// sign-extended to 64 bits; I128 and Str occupy two words.
//
// The deferred guard mirrors the VM's runGuarded: accesses whose check the
// static analysis eliminated run without a software bounds test, so if the
// analysis was wrong the slice index faults — reported as TrapElimCheck
// rather than crashing the host. Deliberate interpreter panics (malformed
// bytecode) are not runtime errors and still propagate.
func (x *exec) Call(fn int, args ...uint64) (res [2]uint64, err error) {
	x.m.SetCallback(x.callback)
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(runtime.Error); ok {
				res, err = [2]uint64{}, &vm.Trap{Code: vt.TrapElimCheck, Msg: re.Error()}
				return
			}
			panic(r)
		}
	}()
	return x.run(fn, args)
}

// Operand access goes through bounds-checked accessor calls, modelling the
// per-operand decode work of a defensive register-bytecode interpreter (the
// reason interpretation is several times slower than compiled code even
// though both ultimately execute on the same host).
//
//go:noinline
func fetch(vals []uint64, s qir.Value) uint64 {
	if s < 0 || int(2*s) >= len(vals) {
		panic("interp: operand out of range")
	}
	return vals[2*s]
}

//go:noinline
func fetchHi(vals []uint64, s qir.Value) uint64 {
	if s < 0 || int(2*s+1) >= len(vals) {
		panic("interp: operand out of range")
	}
	return vals[2*s+1]
}

//go:noinline
func store(vals []uint64, d qir.Value, v uint64) {
	if d < 0 || int(2*d) >= len(vals) {
		panic("interp: destination out of range")
	}
	vals[2*d] = v
}

//go:noinline
func store2(vals []uint64, d qir.Value, lo, hi uint64) {
	if d < 0 || int(2*d+1) >= len(vals) {
		panic("interp: destination out of range")
	}
	vals[2*d] = lo
	vals[2*d+1] = hi
}

func (x *exec) callback(addr uint64, args ...uint64) ([2]uint64, error) {
	return x.run(int(addr), args)
}

// decodeCheck validates one instruction before dispatch: operand ids must
// lie inside the frame and jump targets inside the code. A defensive
// interpreter performs this per-operation decode work on every execution —
// a structural cost compiled code does not pay (the compiler validated the
// program once).
//
//go:noinline
func decodeCheck(f *bcFunc, in *bcInstr) {
	n := qir.Value(f.nvals)
	if in.A >= n || in.S >= n || in.B >= n && in.Op != qir.OpCall || in.C >= n {
		panic("interp: malformed bytecode operand")
	}
	switch in.Op {
	case bcJump, bcJumpIf:
		if in.Imm < 0 || in.Imm > int64(len(f.code)) {
			panic("interp: malformed jump target")
		}
	case qir.OpConst128:
		if in.Imm < 0 || int(in.Imm+1) >= len(f.pool) {
			panic("interp: malformed pool index")
		}
	case qir.OpCall:
		if int(in.B+in.C) > len(f.extra) {
			panic("interp: malformed call arguments")
		}
	}
}

func (x *exec) run(fn int, args []uint64) ([2]uint64, error) {
	if fn < 0 || fn >= len(x.funcs) {
		return [2]uint64{}, fmt.Errorf("interp: bad function %d", fn)
	}
	f := x.funcs[fn]
	vals := make([]uint64, 2*f.nvals)
	if len(args) > f.nparams {
		return [2]uint64{}, fmt.Errorf("interp: %s: %d args for %d params", f.name, len(args), f.nparams)
	}
	for i, a := range args {
		vals[2*i] = a
	}
	m := x.m
	tgt := m.Target()
	trap := func(code vt.TrapCode) error {
		return &vm.Trap{Code: code, Msg: "in " + f.name}
	}

	pc := 0
	for pc < len(f.code) {
		in := &f.code[pc]
		decodeCheck(f, in)
		switch in.Op {
		case bcJump:
			pc = int(in.Imm)
			continue
		case bcJumpIf:
			if vals[2*in.A] != 0 {
				pc = int(in.Imm)
				continue
			}
		case bcMove:
			store(vals, in.A, fetch(vals, in.B))
			vals[2*in.A+1] = fetchHi(vals, in.B)
		case qir.OpConst:
			store(vals, in.A, uint64(in.Imm))
		case qir.OpConst128:
			store(vals, in.A, f.pool[in.Imm])
			vals[2*in.A+1] = f.pool[in.Imm+1]
		case qir.OpConstPool:
			// Imm is the const-pool slot's machine address; the load is
			// unchecked because the pool area (allocated in NewDB) is
			// always-valid machine memory.
			if err := x.load(in.Type, uint64(in.Imm), vals[2*in.A:2*in.A+2], true); err != nil {
				return [2]uint64{}, err
			}
		case qir.OpNull:
			store(vals, in.A, 0)
		case qir.OpFuncAddr:
			store(vals, in.A, uint64(in.Aux))
		case qir.OpAdd, qir.OpSub, qir.OpMul, qir.OpAnd, qir.OpOr, qir.OpXor,
			qir.OpShl, qir.OpShr, qir.OpSar, qir.OpRotr:
			if in.Type == qir.I128 {
				a := rt.I128{Lo: fetch(vals, in.S), Hi: fetchHi(vals, in.S)}
				b := rt.I128{Lo: fetch(vals, in.B), Hi: fetchHi(vals, in.B)}
				r, err := eval128(in.Op, a, b)
				if err != nil {
					return [2]uint64{}, err
				}
				store2(vals, in.A, r.Lo, r.Hi)
			} else {
				store(vals, in.A, canon(in.Type, evalBin(in.Op, fetch(vals, in.S), fetch(vals, in.B))))
			}
		case qir.OpSDiv, qir.OpSRem, qir.OpUDiv, qir.OpURem:
			b := fetch(vals, in.B)
			if in.Type == qir.I128 && fetchHi(vals, in.B) == 0 && b == 0 || in.Type != qir.I128 && b == 0 {
				return [2]uint64{}, trap(vt.TrapDivZero)
			}
			if in.Type == qir.I128 {
				a128 := rt.I128{Lo: fetch(vals, in.S), Hi: fetchHi(vals, in.S)}
				b128 := rt.I128{Lo: fetch(vals, in.B), Hi: fetchHi(vals, in.B)}
				q := a128.Div(b128)
				if in.Op == qir.OpSRem {
					q = a128.Sub(q.Mul(b128))
				}
				store2(vals, in.A, q.Lo, q.Hi)
			} else {
				store(vals, in.A, canon(in.Type, evalDiv(in.Op, fetch(vals, in.S), b)))
			}
		case qir.OpNeg:
			if in.Type == qir.I128 {
				r := (rt.I128{Lo: fetch(vals, in.S), Hi: fetchHi(vals, in.S)}).Neg()
				store2(vals, in.A, r.Lo, r.Hi)
			} else if in.Type == qir.F64 {
				store(vals, in.A, math.Float64bits(-math.Float64frombits(fetch(vals, in.S))))
			} else {
				store(vals, in.A, canon(in.Type, -fetch(vals, in.S)))
			}
		case qir.OpNot:
			store(vals, in.A, canon(in.Type, ^fetch(vals, in.S)))
		case qir.OpSAddTrap, qir.OpSSubTrap, qir.OpSMulTrap:
			if in.Type == qir.I128 {
				a := rt.I128{Lo: fetch(vals, in.S), Hi: fetchHi(vals, in.S)}
				b := rt.I128{Lo: fetch(vals, in.B), Hi: fetchHi(vals, in.B)}
				r, ov := eval128Trap(in.Op, a, b)
				if ov {
					return [2]uint64{}, trap(vt.TrapOverflow)
				}
				store2(vals, in.A, r.Lo, r.Hi)
			} else {
				r, ov := evalTrapOp(in.Op, in.Type, int64(fetch(vals, in.S)), int64(fetch(vals, in.B)))
				if ov {
					return [2]uint64{}, trap(vt.TrapOverflow)
				}
				store(vals, in.A, uint64(r))
			}
		case qir.OpICmp:
			var r bool
			if in.Type == qir.I128 {
				a := rt.I128{Lo: fetch(vals, in.S), Hi: fetchHi(vals, in.S)}
				b := rt.I128{Lo: fetch(vals, in.B), Hi: fetchHi(vals, in.B)}
				r = cmp128(qir.Cmp(in.Aux), a, b)
			} else {
				r = cmpInt(qir.Cmp(in.Aux), fetch(vals, in.S), fetch(vals, in.B))
			}
			store(vals, in.A, b2u(r))
		case qir.OpZExt:
			lo, hi := zext(in.Type, qir.Type(in.Aux), fetch(vals, in.S))
			store2(vals, in.A, lo, hi)
		case qir.OpSExt:
			// Canonical form is already sign-extended in the low word.
			if in.Type == qir.I128 {
				store(vals, in.A, fetch(vals, in.S))
				vals[2*in.A+1] = uint64(int64(fetch(vals, in.S)) >> 63)
			} else {
				store(vals, in.A, fetch(vals, in.S))
			}
		case qir.OpTrunc:
			store(vals, in.A, canon(in.Type, fetch(vals, in.S)))
		case qir.OpFAdd:
			store(vals, in.A, math.Float64bits(math.Float64frombits(fetch(vals, in.S))+math.Float64frombits(fetch(vals, in.B))))
		case qir.OpFSub:
			store(vals, in.A, math.Float64bits(math.Float64frombits(fetch(vals, in.S))-math.Float64frombits(fetch(vals, in.B))))
		case qir.OpFMul:
			store(vals, in.A, math.Float64bits(math.Float64frombits(fetch(vals, in.S))*math.Float64frombits(fetch(vals, in.B))))
		case qir.OpFDiv:
			store(vals, in.A, math.Float64bits(math.Float64frombits(fetch(vals, in.S))/math.Float64frombits(fetch(vals, in.B))))
		case qir.OpFCmp:
			store(vals, in.A, b2u(cmpFloat(qir.Cmp(in.Aux),
				math.Float64frombits(fetch(vals, in.S)), math.Float64frombits(fetch(vals, in.B)))))
		case qir.OpSIToFP:
			store(vals, in.A, math.Float64bits(float64(int64(fetch(vals, in.S)))))
		case qir.OpFPToSI:
			store(vals, in.A, canon(in.Type, uint64(int64(math.Float64frombits(fetch(vals, in.S))))))
		case qir.OpFBits, qir.OpBitsF:
			store(vals, in.A, fetch(vals, in.S))
		case qir.OpCrc32:
			store(vals, in.A, crc8(fetch(vals, in.S), fetch(vals, in.B)))
		case qir.OpLMulFold:
			store(vals, in.A, lmulfold(fetch(vals, in.S), fetch(vals, in.B)))
		case qir.OpGEP:
			addr := fetch(vals, in.S) + uint64(in.Imm)
			if in.B != qir.NoValue {
				addr += fetch(vals, in.B) * uint64(in.Aux)
			}
			store(vals, in.A, addr)
		case qir.OpLoad:
			if err := x.load(in.Type, fetch(vals, in.S), vals[2*in.A:2*in.A+2],
				in.Aux&qir.MemUnchecked != 0); err != nil {
				return [2]uint64{}, err
			}
		case qir.OpStore:
			if err := x.storeRaw(in.Type, fetch(vals, in.S), fetch(vals, in.B), fetchHi(vals, in.B),
				in.Aux&qir.MemUnchecked != 0); err != nil {
				return [2]uint64{}, err
			}
		case qir.OpAtomicAdd:
			var tmp [2]uint64
			if err := x.load(in.Type, fetch(vals, in.S), tmp[:], false); err != nil {
				return [2]uint64{}, err
			}
			nv := canon(in.Type, tmp[0]+fetch(vals, in.B))
			if err := x.storeRaw(in.Type, fetch(vals, in.S), nv, 0, false); err != nil {
				return [2]uint64{}, err
			}
			store(vals, in.A, tmp[0])
		case qir.OpSelect:
			if fetch(vals, in.S) != 0 {
				store2(vals, in.A, fetch(vals, in.B), fetchHi(vals, in.B))
			} else {
				store2(vals, in.A, fetch(vals, in.C), fetchHi(vals, in.C))
			}
		case qir.OpCall:
			if err := x.rtCall(f, in, vals, tgt); err != nil {
				return [2]uint64{}, err
			}
		case qir.OpRet:
			var r [2]uint64
			if in.S != qir.NoValue {
				r[0], r[1] = fetch(vals, in.S), fetchHi(vals, in.S)
			}
			return r, nil
		case qir.OpUnreachable:
			return [2]uint64{}, trap(vt.TrapUnreachable)
		default:
			return [2]uint64{}, fmt.Errorf("interp: %s: bad bytecode op %d at %d", f.name, in.Op, pc)
		}
		pc++
	}
	return [2]uint64{}, fmt.Errorf("interp: %s: fell off end of bytecode", f.name)
}

// memCheck validates one access; unchecked accesses skip it entirely unless
// the machine is in StrictUnchecked differential mode, where an eliminated
// check that would have fired raises TrapElimCheck instead of TrapOOB.
func (x *exec) memCheck(addr, n uint64, unchecked bool, what string) error {
	if unchecked && !x.m.StrictUnchecked {
		return nil
	}
	if addr < 4096 || addr+n > uint64(len(x.m.Mem)) {
		if unchecked {
			return &vm.Trap{Code: vt.TrapElimCheck, Msg: what}
		}
		return &vm.Trap{Code: vt.TrapOOB, Msg: what}
	}
	return nil
}

func (x *exec) storeRaw(t qir.Type, addr, lo, hi uint64, unchecked bool) error {
	mem := x.m.Mem
	n := uint64(t.Size())
	if err := x.memCheck(addr, n, unchecked, "store"); err != nil {
		return err
	}
	switch t {
	case qir.I1, qir.I8:
		mem[addr] = byte(lo)
	case qir.I16:
		mem[addr] = byte(lo)
		mem[addr+1] = byte(lo >> 8)
	case qir.I32:
		put32(mem[addr:], uint32(lo))
	case qir.I64, qir.F64, qir.Ptr:
		put64(mem[addr:], lo)
	case qir.I128, qir.Str:
		put64(mem[addr:], lo)
		put64(mem[addr+8:], hi)
	default:
		return fmt.Errorf("interp: store of %s", t)
	}
	return nil
}

func (x *exec) load(t qir.Type, addr uint64, dst []uint64, unchecked bool) error {
	mem := x.m.Mem
	n := uint64(t.Size())
	if err := x.memCheck(addr, n, unchecked, "load"); err != nil {
		return err
	}
	switch t {
	case qir.I1:
		dst[0] = uint64(mem[addr] & 1)
	case qir.I8:
		dst[0] = uint64(int64(int8(mem[addr])))
	case qir.I16:
		dst[0] = uint64(int64(int16(uint16(mem[addr]) | uint16(mem[addr+1])<<8)))
	case qir.I32:
		dst[0] = uint64(int64(int32(le32(mem[addr:]))))
	case qir.I64, qir.F64, qir.Ptr:
		dst[0] = le64(mem[addr:])
	case qir.I128, qir.Str:
		dst[0] = le64(mem[addr:])
		dst[1] = le64(mem[addr+8:])
	default:
		return fmt.Errorf("interp: load of %s", t)
	}
	return nil
}

// rtCall marshals arguments into the machine's argument registers per the
// calling convention and invokes the bound runtime function.
func (x *exec) rtCall(f *bcFunc, in *bcInstr, vals []uint64, tgt *vt.Target) error {
	args := f.extra[in.B : in.B+in.C]
	reg := 0
	for _, a := range args {
		if reg >= len(tgt.IntArgs) {
			return fmt.Errorf("interp: too many call args in %s", f.name)
		}
		x.m.R[tgt.IntArgs[reg]] = vals[2*a]
		reg++
		if f.wide.Get(a) {
			if reg >= len(tgt.IntArgs) {
				return fmt.Errorf("interp: too many call args in %s", f.name)
			}
			x.m.R[tgt.IntArgs[reg]] = vals[2*a+1]
			reg++
		}
	}
	id := int(in.Aux)
	if id >= len(x.m.RT) || x.m.RT[id] == nil {
		return fmt.Errorf("interp: unbound runtime function %d", id)
	}
	if err := x.m.RT[id](x.m); err != nil {
		return err
	}
	if in.Type != qir.Void {
		store(vals, in.A, x.m.R[tgt.IntRet[0]])
		if in.Type.Is128() {
			vals[2*in.A+1] = x.m.R[tgt.IntRet[1]]
		}
	}
	return nil
}
