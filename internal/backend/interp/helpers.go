package interp

import (
	"hash/crc32"
	"math/bits"

	"qcc/internal/qir"
	"qcc/internal/rt"
)

// canon normalizes a 64-bit word to the canonical representation of a
// narrow integer type: sign-extended to 64 bits (I1 is 0/1).
//
//go:noinline
func canon(t qir.Type, v uint64) uint64 {
	switch t {
	case qir.I1:
		return v & 1
	case qir.I8:
		return uint64(int64(int8(v)))
	case qir.I16:
		return uint64(int64(int16(v)))
	case qir.I32:
		return uint64(int64(int32(v)))
	}
	return v
}

//go:noinline
func evalBin(op qir.Op, a, b uint64) uint64 {
	switch op {
	case qir.OpAdd:
		return a + b
	case qir.OpSub:
		return a - b
	case qir.OpMul:
		return a * b
	case qir.OpAnd:
		return a & b
	case qir.OpOr:
		return a | b
	case qir.OpXor:
		return a ^ b
	case qir.OpShl:
		return a << (b & 63)
	case qir.OpShr:
		return a >> (b & 63)
	case qir.OpSar:
		return uint64(int64(a) >> (b & 63))
	case qir.OpRotr:
		return bits.RotateLeft64(a, -int(b&63))
	}
	panic("interp: bad binary op")
}

//go:noinline
func evalDiv(op qir.Op, a, b uint64) uint64 {
	switch op {
	case qir.OpSDiv:
		x, y := int64(a), int64(b)
		if x == -1<<63 && y == -1 {
			return a
		}
		return uint64(x / y)
	case qir.OpSRem:
		x, y := int64(a), int64(b)
		if x == -1<<63 && y == -1 {
			return 0
		}
		return uint64(x % y)
	case qir.OpUDiv:
		return a / b
	case qir.OpURem:
		return a % b
	}
	panic("interp: bad division op")
}

// evalTrapOp performs overflow-checked signed arithmetic at the width of t
// on canonical values.
//
//go:noinline
func evalTrapOp(op qir.Op, t qir.Type, a, b int64) (int64, bool) {
	var r int64
	switch op {
	case qir.OpSAddTrap:
		r = a + b
		if t == qir.I64 && ((r > a) != (b > 0)) {
			return 0, true
		}
	case qir.OpSSubTrap:
		r = a - b
		if t == qir.I64 && ((r < a) != (b > 0)) {
			return 0, true
		}
	case qir.OpSMulTrap:
		hi, lo := bits.Mul64(uint64(a), uint64(b))
		if a < 0 {
			hi -= uint64(b)
		}
		if b < 0 {
			hi -= uint64(a)
		}
		r = int64(lo)
		if t == qir.I64 {
			if int64(hi) != r>>63 {
				return 0, true
			}
			return r, false
		}
	default:
		panic("interp: bad trap op")
	}
	if t != qir.I64 {
		// Narrow widths: overflow iff the result does not round-trip.
		if canon(t, uint64(r)) != uint64(r) {
			return 0, true
		}
	}
	return r, false
}

func eval128(op qir.Op, a, b rt.I128) (rt.I128, error) {
	switch op {
	case qir.OpAdd:
		return a.Add(b), nil
	case qir.OpSub:
		return a.Sub(b), nil
	case qir.OpMul:
		return a.Mul(b), nil
	case qir.OpAnd:
		return rt.I128{Lo: a.Lo & b.Lo, Hi: a.Hi & b.Hi}, nil
	case qir.OpOr:
		return rt.I128{Lo: a.Lo | b.Lo, Hi: a.Hi | b.Hi}, nil
	case qir.OpXor:
		return rt.I128{Lo: a.Lo ^ b.Lo, Hi: a.Hi ^ b.Hi}, nil
	case qir.OpShl:
		return shl128(a, uint(b.Lo&127)), nil
	case qir.OpShr:
		return shr128(a, uint(b.Lo&127)), nil
	case qir.OpSar:
		return sar128(a, uint(b.Lo&127)), nil
	}
	panic("interp: bad 128-bit op")
}

func shl128(a rt.I128, n uint) rt.I128 {
	switch {
	case n == 0:
		return a
	case n < 64:
		return rt.I128{Lo: a.Lo << n, Hi: a.Hi<<n | a.Lo>>(64-n)}
	case n < 128:
		return rt.I128{Lo: 0, Hi: a.Lo << (n - 64)}
	}
	return rt.I128{}
}

func shr128(a rt.I128, n uint) rt.I128 {
	switch {
	case n == 0:
		return a
	case n < 64:
		return rt.I128{Lo: a.Lo>>n | a.Hi<<(64-n), Hi: a.Hi >> n}
	case n < 128:
		return rt.I128{Lo: a.Hi >> (n - 64), Hi: 0}
	}
	return rt.I128{}
}

func sar128(a rt.I128, n uint) rt.I128 {
	switch {
	case n == 0:
		return a
	case n < 64:
		return rt.I128{Lo: a.Lo>>n | a.Hi<<(64-n), Hi: uint64(int64(a.Hi) >> n)}
	case n < 128:
		return rt.I128{Lo: uint64(int64(a.Hi) >> (n - 64)), Hi: uint64(int64(a.Hi) >> 63)}
	}
	s := uint64(int64(a.Hi) >> 63)
	return rt.I128{Lo: s, Hi: s}
}

// eval128Trap performs overflow-checked 128-bit signed arithmetic.
func eval128Trap(op qir.Op, a, b rt.I128) (rt.I128, bool) {
	switch op {
	case qir.OpSAddTrap:
		r := a.Add(b)
		if a.IsNeg() == b.IsNeg() && r.IsNeg() != a.IsNeg() {
			return rt.I128{}, true
		}
		return r, false
	case qir.OpSSubTrap:
		r := a.Sub(b)
		if a.IsNeg() != b.IsNeg() && r.IsNeg() != a.IsNeg() {
			return rt.I128{}, true
		}
		return r, false
	case qir.OpSMulTrap:
		return a.MulCheck(b)
	}
	panic("interp: bad 128-bit trap op")
}

//go:noinline
func cmpInt(c qir.Cmp, a, b uint64) bool {
	switch c {
	case qir.CmpEQ:
		return a == b
	case qir.CmpNE:
		return a != b
	case qir.CmpSLT:
		return int64(a) < int64(b)
	case qir.CmpSLE:
		return int64(a) <= int64(b)
	case qir.CmpSGT:
		return int64(a) > int64(b)
	case qir.CmpSGE:
		return int64(a) >= int64(b)
	case qir.CmpULT:
		return a < b
	case qir.CmpULE:
		return a <= b
	case qir.CmpUGT:
		return a > b
	case qir.CmpUGE:
		return a >= b
	}
	return false
}

func cmp128(c qir.Cmp, a, b rt.I128) bool {
	switch c {
	case qir.CmpEQ:
		return a == b
	case qir.CmpNE:
		return a != b
	}
	s := a.Cmp(b)
	u := ucmp(a, b)
	switch c {
	case qir.CmpSLT:
		return s < 0
	case qir.CmpSLE:
		return s <= 0
	case qir.CmpSGT:
		return s > 0
	case qir.CmpSGE:
		return s >= 0
	case qir.CmpULT:
		return u < 0
	case qir.CmpULE:
		return u <= 0
	case qir.CmpUGT:
		return u > 0
	case qir.CmpUGE:
		return u >= 0
	}
	return false
}

func ucmp(a, b rt.I128) int {
	if a.Hi != b.Hi {
		if a.Hi < b.Hi {
			return -1
		}
		return 1
	}
	if a.Lo != b.Lo {
		if a.Lo < b.Lo {
			return -1
		}
		return 1
	}
	return 0
}

func cmpFloat(c qir.Cmp, a, b float64) bool {
	switch c {
	case qir.CmpEQ:
		return a == b
	case qir.CmpNE:
		return a != b
	case qir.CmpSLT, qir.CmpULT:
		return a < b
	case qir.CmpSLE, qir.CmpULE:
		return a <= b
	case qir.CmpSGT, qir.CmpUGT:
		return a > b
	case qir.CmpSGE, qir.CmpUGE:
		return a >= b
	}
	return false
}

// zext zero-extends a canonical value of type from to type to.
func zext(to, from qir.Type, lo uint64) (uint64, uint64) {
	var u uint64
	switch from {
	case qir.I1:
		u = lo & 1
	case qir.I8:
		u = uint64(uint8(lo))
	case qir.I16:
		u = uint64(uint16(lo))
	case qir.I32:
		u = uint64(uint32(lo))
	default:
		u = lo
	}
	if to == qir.I128 {
		return u, 0
	}
	return canon(to, u), 0
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

//go:noinline
func crc8(seed, v uint64) uint64 {
	var b [8]byte
	put64(b[:], v)
	return uint64(crc32.Update(uint32(seed), crcTable, b[:]))
}

func lmulfold(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}
