package qir

import (
	"strings"
	"testing"
)

// A phi naming itself through a forward edge (here: through an unreachable
// predecessor, which the dominance check used to skip entirely) has no
// defining iteration to refer back to and must be rejected.
func TestVerifyRejectsSelfReferentialPhi(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", Void)
	dead := b.NewBlock()
	join := b.NewBlock()
	c := b.ConstInt(I64, 7)
	b.Br(join)
	b.SetBlock(dead)
	b.Br(join)
	b.SetBlock(join)
	ph := b.Phi(I64, 0, c)
	b.AddPhiArg(ph, dead, ph)
	b.Ret(NoValue)
	err := b.Func().Verify()
	if err == nil || !strings.Contains(err.Error(), "references itself") {
		t.Errorf("expected self-referential phi error, got %v", err)
	}
}

// The one legitimate self-reference: a loop-carried phi whose incoming on
// the back edge is the phi itself (the previous iteration's value).
func TestVerifyAllowsLoopPhiSelfReference(t *testing.T) {
	m := NewModule("ok")
	b := NewFunc(m, "f", I64, I64)
	n := b.Param(0)
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	zero := b.ConstInt(I64, 0)
	b.Br(head)
	b.SetBlock(head)
	ph := b.Phi(I64, 0, zero)
	cond := b.ICmp(CmpSLT, ph, n)
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	b.AddPhiArg(ph, body, ph)
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(ph)
	if err := b.Func().Verify(); err != nil {
		t.Errorf("back-edge phi self-reference should verify: %v", err)
	}
}

// In-block ordering is a local property, so it must be enforced even inside
// unreachable blocks (where cross-block dominance is undefined and skipped).
func TestVerifyRejectsUseBeforeDefInUnreachableBlock(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", Void)
	b.Ret(NoValue)
	dead := b.NewBlock()
	f := b.Func()
	n0 := Value(len(f.Instrs))
	f.Instrs = append(f.Instrs,
		Instr{Op: OpAdd, Type: I64, A: n0 + 1, B: n0 + 1, C: NoValue},
		Instr{Op: OpConst, Type: I64, Imm: 1, A: NoValue, B: NoValue, C: NoValue},
		Instr{Op: OpRet, Type: Void, A: NoValue, B: NoValue, C: NoValue},
	)
	f.Blocks[dead].List = append(f.Blocks[dead].List, n0, n0+1, n0+2)
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "uses later value") {
		t.Errorf("expected use-before-def error in unreachable block, got %v", err)
	}
}

// Irreducible CFG: the loop {b1, b2} has two entries (entry branches into
// both), so neither loop block dominates the other. The iterative dominator
// algorithm must converge with both blocks' idom at the entry.
func TestDominatorsIrreducibleLoop(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", Void, I1)
	cond := b.Param(0)
	b1 := b.NewBlock()
	b2 := b.NewBlock()
	exit := b.NewBlock()
	b.CondBr(cond, b1, b2)
	b.SetBlock(b1)
	b.CondBr(cond, b2, exit)
	b.SetBlock(b2)
	b.Br(b1)
	b.SetBlock(exit)
	b.Ret(NoValue)
	f := b.Func()
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rpo := f.RPO(); len(rpo) != 4 {
		t.Fatalf("rpo = %v, want all 4 blocks", rpo)
	}
	dom := f.Dominators()
	for blk := BlockID(0); blk < 4; blk++ {
		if dom.Num[blk] < 0 {
			t.Errorf("block b%d unreachable in dom tree", blk)
		}
	}
	if dom.Idom[b1] != 0 || dom.Idom[b2] != 0 {
		t.Errorf("idom(b1)=%d idom(b2)=%d, want entry for both (two-entry loop)",
			dom.Idom[b1], dom.Idom[b2])
	}
	if dom.Dominates(b1, b2) || dom.Dominates(b2, b1) {
		t.Error("no loop block may dominate the other in an irreducible loop")
	}
	if dom.Idom[exit] != b1 {
		t.Errorf("idom(exit)=%d, want b1 (its only predecessor)", dom.Idom[exit])
	}
}

// Unreachable blocks are pinned outside the dominator tree: Idom and Num
// both -1, and RPO omits them — including chains of dead blocks.
func TestDominatorsUnreachableIdom(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", Void)
	b.Ret(NoValue)
	d1 := b.NewBlock()
	d2 := b.NewBlock()
	b.SetBlock(d1)
	b.Br(d2)
	b.SetBlock(d2)
	b.Ret(NoValue)
	f := b.Func()
	if rpo := f.RPO(); len(rpo) != 1 || rpo[0] != 0 {
		t.Errorf("rpo = %v, want [0]", rpo)
	}
	dom := f.Dominators()
	for _, d := range []BlockID{d1, d2} {
		if dom.Idom[d] != -1 {
			t.Errorf("Idom[b%d] = %d, want -1 for unreachable block", d, dom.Idom[d])
		}
		if dom.Num[d] != -1 {
			t.Errorf("Num[b%d] = %d, want -1 for unreachable block", d, dom.Num[d])
		}
	}
}

func TestLiveAtInstr(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", I64, I64)
	p := b.Param(0)
	a := b.ConstInt(I64, 5)
	s := b.Bin(OpAdd, a, p)
	r := b.Bin(OpMul, s, s)
	b.Ret(r)
	f := b.Func()
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	lv := f.LivenessAnalysis()
	after := f.LiveAtInstr(lv, 0)
	if len(after) != len(f.Blocks[0].List) {
		t.Fatalf("got %d positions, want %d", len(after), len(f.Blocks[0].List))
	}
	// After the const: both its result and the param are pending uses.
	if !after[1].Get(a) || !after[1].Get(p) {
		t.Error("const result and param must be live after the const")
	}
	// The add consumes both; only its result stays live.
	if after[2].Get(a) || after[2].Get(p) || !after[2].Get(s) {
		t.Error("after the add only the sum should be live")
	}
	if !after[3].Get(r) {
		t.Error("product must be live after the mul")
	}
	// Nothing survives the return.
	if n := after[len(after)-1].Count(); n != 0 {
		t.Errorf("%d values live after return, want 0", n)
	}
	if got := f.MaxLiveValues(lv); got != 2 {
		t.Errorf("MaxLiveValues = %d, want 2 (a+p overlap)", got)
	}
}
