package qir

import (
	"strings"
	"testing"
)

// buildLoopFunc builds: sum = 0; for i in 0..n { sum += i }; return sum.
func buildLoopFunc(t *testing.T) *Func {
	t.Helper()
	m := NewModule("test")
	b := NewFunc(m, "sum", I64, I64)
	n := b.Param(0)
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	zero := b.ConstInt(I64, 0)
	one := b.ConstInt(I64, 1)
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(I64, 0, zero)
	sum := b.Phi(I64, 0, zero)
	cond := b.ICmp(CmpSLT, i, n)
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	sum2 := b.Bin(OpAdd, sum, i)
	i2 := b.Bin(OpAdd, i, one)
	b.AddPhiArg(i, body, i2)
	b.AddPhiArg(sum, body, sum2)
	b.Br(head)

	b.SetBlock(exit)
	b.Ret(sum)

	if err := b.Func().Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return b.Func()
}

func TestBuilderAndVerify(t *testing.T) {
	f := buildLoopFunc(t)
	if f.NumInstrs() == 0 {
		t.Fatal("no instructions")
	}
	s := f.String()
	for _, want := range []string{"define i64 @sum", "phi", "condbr", "return"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", I64, I64)
	// Manually append an instruction that uses a not-yet-defined value.
	f := b.Func()
	f.Instrs = append(f.Instrs, Instr{Op: OpAdd, Type: I64, A: 5, B: 5, C: NoValue})
	f.Blocks[0].List = append(f.Blocks[0].List, 1)
	f.Instrs = append(f.Instrs, Instr{Op: OpRet, Type: Void, A: 1, B: NoValue, C: NoValue})
	f.Blocks[0].List = append(f.Blocks[0].List, 2)
	if err := f.Verify(); err == nil {
		t.Error("expected use-before-def error")
	}
}

func TestVerifyCatchesTypeMismatch(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", I64, I32, I64)
	f := b.Func()
	f.Instrs = append(f.Instrs, Instr{Op: OpAdd, Type: I64, A: 0, B: 1, C: NoValue})
	f.Blocks[0].List = append(f.Blocks[0].List, 2)
	f.Instrs = append(f.Instrs, Instr{Op: OpRet, Type: Void, A: 2, B: NoValue, C: NoValue})
	f.Blocks[0].List = append(f.Blocks[0].List, 3)
	if err := f.Verify(); err == nil {
		t.Error("expected type mismatch error")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", Void)
	f := b.Func()
	f.Instrs = append(f.Instrs, Instr{Op: OpConst, Type: I64, A: NoValue, B: NoValue, C: NoValue})
	f.Blocks[0].List = append(f.Blocks[0].List, 0)
	if err := f.Verify(); err == nil {
		t.Error("expected missing terminator error")
	}
}

func TestVerifyCatchesPhiPredMismatch(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", I64, I64)
	next := b.NewBlock()
	c := b.ConstInt(I64, 1)
	b.Br(next)
	b.SetBlock(next)
	// Phi with two pairs but only one predecessor.
	b.Phi(I64, 0, c, 0, c)
	b.Ret(c)
	if err := b.Func().Verify(); err == nil {
		t.Error("expected phi pred mismatch error")
	}
}

func TestVerifyCatchesBadBrTarget(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", Void)
	next := b.NewBlock()
	b.Br(next)
	b.SetBlock(next)
	b.Ret(NoValue)
	f := b.Func()
	f.Instrs[f.Blocks[0].Terminator()].Aux = 99
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "not a block id") {
		t.Errorf("expected bad br target error, got %v", err)
	}
}

func TestVerifyCatchesBadCondBrTargets(t *testing.T) {
	build := func() *Func {
		m := NewModule("bad")
		b := NewFunc(m, "f", Void, I64)
		yes := b.NewBlock()
		no := b.NewBlock()
		cond := b.ICmp(CmpEQ, b.Param(0), b.ConstInt(I64, 0))
		b.CondBr(cond, yes, no)
		b.SetBlock(yes)
		b.Ret(NoValue)
		b.SetBlock(no)
		b.Ret(NoValue)
		return b.Func()
	}

	f := build()
	f.Instrs[f.Blocks[0].Terminator()].Aux = 1 << 20
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "true-successor") {
		t.Errorf("expected bad true-successor error, got %v", err)
	}

	f = build()
	f.Instrs[f.Blocks[0].Terminator()].B = -3
	err = f.Verify()
	if err == nil || !strings.Contains(err.Error(), "false-successor") {
		t.Errorf("expected bad false-successor error, got %v", err)
	}
}

func TestVerifyCatchesPhiInEntry(t *testing.T) {
	m := NewModule("bad")
	b := NewFunc(m, "f", Void)
	f := b.Func()
	// A phi in the entry block (no predecessors, zero pairs) is meaningless
	// and must be rejected even though its pair count matches its preds.
	f.Instrs = append(f.Instrs, Instr{Op: OpPhi, Type: I64, A: 0, B: 0, C: NoValue})
	f.Blocks[0].List = append(f.Blocks[0].List, 0)
	f.Instrs = append(f.Instrs, Instr{Op: OpRet, Type: Void, A: NoValue, B: NoValue, C: NoValue})
	f.Blocks[0].List = append(f.Blocks[0].List, 1)
	err := f.Verify()
	if err == nil || !strings.Contains(err.Error(), "entry block") {
		t.Errorf("expected phi-in-entry error, got %v", err)
	}
}

func TestDominators(t *testing.T) {
	f := buildLoopFunc(t)
	dom := f.Dominators()
	// entry (0) dominates everything; head (1) dominates body (2) and exit (3).
	for b := BlockID(0); b < BlockID(len(f.Blocks)); b++ {
		if !dom.Dominates(0, b) {
			t.Errorf("entry should dominate b%d", b)
		}
	}
	if !dom.Dominates(1, 2) || !dom.Dominates(1, 3) {
		t.Error("loop head should dominate body and exit")
	}
	if dom.Dominates(2, 3) {
		t.Error("body should not dominate exit")
	}
	if dom.Dominates(2, 1) {
		t.Error("body should not dominate head")
	}
}

func TestLoops(t *testing.T) {
	f := buildLoopFunc(t)
	dom := f.Dominators()
	li := f.Loops(dom)
	if len(li.Headers) != 1 || li.Headers[0] != 1 {
		t.Fatalf("headers = %v, want [1]", li.Headers)
	}
	if li.Depth[1] != 1 || li.Depth[2] != 1 {
		t.Errorf("head/body depth = %d/%d, want 1/1", li.Depth[1], li.Depth[2])
	}
	if li.Depth[0] != 0 || li.Depth[3] != 0 {
		t.Errorf("entry/exit depth = %d/%d, want 0/0", li.Depth[0], li.Depth[3])
	}
}

func TestNestedLoops(t *testing.T) {
	m := NewModule("test")
	b := NewFunc(m, "nest", Void, I64)
	outer := b.NewBlock()
	inner := b.NewBlock()
	innerBody := b.NewBlock()
	outerLatch := b.NewBlock()
	exit := b.NewBlock()
	zero := b.ConstInt(I64, 0)
	b.Br(outer)
	b.SetBlock(outer)
	c1 := b.ICmp(CmpSLT, zero, b.Param(0))
	b.CondBr(c1, inner, exit)
	b.SetBlock(inner)
	c2 := b.ICmp(CmpSLT, zero, b.Param(0))
	b.CondBr(c2, innerBody, outerLatch)
	b.SetBlock(innerBody)
	b.Br(inner)
	b.SetBlock(outerLatch)
	b.Br(outer)
	b.SetBlock(exit)
	b.Ret(NoValue)
	if err := b.Func().Verify(); err != nil {
		t.Fatal(err)
	}
	f := b.Func()
	li := f.Loops(f.Dominators())
	if len(li.Headers) != 2 {
		t.Fatalf("headers = %v, want 2 loops", li.Headers)
	}
	if li.Depth[innerBody] != 2 {
		t.Errorf("inner body depth = %d, want 2", li.Depth[innerBody])
	}
	if li.Depth[outerLatch] != 1 {
		t.Errorf("outer latch depth = %d, want 1", li.Depth[outerLatch])
	}
}

func TestLiveness(t *testing.T) {
	f := buildLoopFunc(t)
	lv := f.LivenessAnalysis()
	// Param n (value 0) must be live into the loop head (block 1).
	if !lv.LiveIn[1].Get(0) {
		t.Error("param not live into loop head")
	}
	// The phis (values 4 and 5 region) should be live out of the body.
	// Find the phi ids.
	var phis []Value
	for _, v := range f.Blocks[1].List {
		if f.Instrs[v].Op == OpPhi {
			phis = append(phis, v)
		}
	}
	if len(phis) != 2 {
		t.Fatalf("found %d phis", len(phis))
	}
	// sum phi must be live into exit block (3), where it is returned.
	if !lv.LiveIn[3].Get(phis[1]) {
		t.Error("sum phi not live into exit block")
	}
}

func TestBitSet(t *testing.T) {
	s := NewBitSet(200)
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(199)
	if !s.Get(0) || !s.Get(63) || !s.Get(64) || !s.Get(199) {
		t.Error("set/get broken")
	}
	if s.Get(1) || s.Get(100) {
		t.Error("spurious bits")
	}
	if s.Count() != 4 {
		t.Errorf("count = %d", s.Count())
	}
	s.Clear(63)
	if s.Get(63) || s.Count() != 3 {
		t.Error("clear broken")
	}
	o := NewBitSet(200)
	o.Set(10)
	if !s.OrWith(o) {
		t.Error("OrWith should report change")
	}
	if s.OrWith(o) {
		t.Error("OrWith should be idempotent")
	}
}

func TestModuleInterning(t *testing.T) {
	m := NewModule("t")
	a := m.RTImport("alloc")
	b := m.RTImport("print")
	a2 := m.RTImport("alloc")
	if a != a2 || a == b {
		t.Errorf("RTImport interning broken: %d %d %d", a, b, a2)
	}
	s1 := m.InternString("hello")
	s2 := m.InternString("world")
	s3 := m.InternString("hello")
	if s1 != s3 || s1 == s2 {
		t.Error("string interning broken")
	}
}

func TestConst128(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", I128)
	v := b.Const128(0xAAAA, 0xBBBB)
	b.Ret(v)
	if err := b.Func().Verify(); err != nil {
		t.Fatal(err)
	}
	lo, hi := b.Func().Const128(v)
	if lo != 0xAAAA || hi != 0xBBBB {
		t.Errorf("const128 = %x:%x", hi, lo)
	}
}

func TestCallArgsAndPrint(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", I64, Ptr, I64)
	r := b.Call(I64, "ht_insert", b.Param(0), b.Param(1))
	b.Ret(r)
	f := b.Func()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	args := f.CallArgs(r)
	if len(args) != 2 || args[0] != 0 || args[1] != 1 {
		t.Errorf("args = %v", args)
	}
	if !strings.Contains(f.String(), "@ht_insert") {
		t.Error("call not printed with callee name")
	}
}

func TestTypeProperties(t *testing.T) {
	sizes := map[Type]int64{I1: 1, I8: 1, I16: 2, I32: 4, I64: 8, I128: 16, F64: 8, Ptr: 8, Str: 16, Void: 0}
	for ty, want := range sizes {
		if ty.Size() != want {
			t.Errorf("%s.Size() = %d, want %d", ty, ty.Size(), want)
		}
	}
	if !I128.Is128() || !Str.Is128() || I64.Is128() {
		t.Error("Is128 broken")
	}
	if !I1.IsInt() || !I128.IsInt() || F64.IsInt() || Ptr.IsInt() {
		t.Error("IsInt broken")
	}
}

func TestRPOUnreachableBlocks(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", Void)
	dead := b.NewBlock()
	b.Ret(NoValue)
	b.SetBlock(dead)
	b.Ret(NoValue)
	f := b.Func()
	rpo := f.RPO()
	if len(rpo) != 1 || rpo[0] != 0 {
		t.Errorf("rpo = %v, want [0]", rpo)
	}
	dom := f.Dominators()
	if dom.Num[dead] != -1 {
		t.Error("unreachable block should have Num -1")
	}
}

func TestSelectAndGEP(t *testing.T) {
	m := NewModule("t")
	b := NewFunc(m, "f", I64, Ptr, I64)
	cond := b.ICmp(CmpSGT, b.Param(1), b.ConstInt(I64, 0))
	addr := b.GEP(b.Param(0), 16, b.Param(1), 8)
	v := b.Load(I64, addr)
	zero := b.ConstInt(I64, 0)
	r := b.Select(cond, v, zero)
	b.Ret(r)
	if err := b.Func().Verify(); err != nil {
		t.Fatal(err)
	}
}
