package qir

import (
	"fmt"
	"math"
	"strings"
)

// String renders the function in an Umbra-IR-like textual form, for
// debugging and golden tests.
func (f *Func) String() string {
	var sb strings.Builder
	if f.Prov.Operator != "" {
		fmt.Fprintf(&sb, "; prov: pipeline=%d role=%s op=%s", f.Prov.Pipeline, f.Prov.Role, f.Prov.Operator)
		if f.Prov.SQL != "" {
			fmt.Fprintf(&sb, " sql=%q", f.Prov.SQL)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "define %s @%s(", f.Ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %%%d", p, i)
	}
	sb.WriteString(") {\n")
	for b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b)
		if len(f.Blocks[b].Preds) > 0 {
			sb.WriteString(" ;preds=")
			for i, p := range f.Blocks[b].Preds {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "b%d", p)
			}
		}
		sb.WriteByte('\n')
		for _, v := range f.Blocks[b].List {
			sb.WriteString("  ")
			sb.WriteString(f.instrString(v))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func (f *Func) instrString(v Value) string {
	in := &f.Instrs[v]
	val := func(x Value) string {
		if x == NoValue {
			return "_"
		}
		return fmt.Sprintf("%%%d", x)
	}
	res := ""
	if in.Type != Void {
		res = fmt.Sprintf("%%%d = ", v)
	}
	switch in.Op {
	case OpParam:
		return fmt.Sprintf("%s%s param %d", res, in.Type, in.Aux)
	case OpConst:
		return fmt.Sprintf("%sconst %s %d", res, in.Type, in.Imm)
	case OpConst128:
		lo, hi := f.Const128(v)
		return fmt.Sprintf("%sconst128 %#x:%#x", res, hi, lo)
	case OpConstStr:
		return fmt.Sprintf("%sconststr %q", res, f.mod.Strings[in.Imm])
	case OpConstF:
		return fmt.Sprintf("%sconstf %g", res, math.Float64frombits(uint64(in.Imm)))
	case OpConstPool:
		if f.mod != nil && in.Imm >= 0 && int(in.Imm) < len(f.mod.Pool) {
			pc := &f.mod.Pool[in.Imm]
			if pc.Type == Str {
				return fmt.Sprintf("%sconstpool %s [%d] (%q)", res, in.Type, in.Imm, pc.Str)
			}
			return fmt.Sprintf("%sconstpool %s [%d] (%#x:%#x)", res, in.Type, in.Imm, pc.Hi, pc.Lo)
		}
		return fmt.Sprintf("%sconstpool %s [%d]", res, in.Type, in.Imm)
	case OpNull:
		return res + "null"
	case OpFuncAddr:
		return fmt.Sprintf("%sfuncaddr @%s", res, f.mod.Funcs[in.Aux].Name)
	case OpICmp, OpFCmp:
		return fmt.Sprintf("%s%s %s %s %s, %s", res, in.Op, in.Cmp(), f.ValueType(in.A), val(in.A), val(in.B))
	case OpGEP:
		if in.B == NoValue {
			return fmt.Sprintf("%sgetelementptr %s, %d", res, val(in.A), in.Imm)
		}
		return fmt.Sprintf("%sgetelementptr %s, %d + %s*%d", res, val(in.A), in.Imm, val(in.B), in.Aux)
	case OpLoad:
		mark := ""
		if in.Unchecked() {
			mark = " !unchecked"
		}
		return fmt.Sprintf("%sload %s %s%s", res, in.Type, val(in.A), mark)
	case OpStore:
		mark := ""
		if in.Unchecked() {
			mark = " !unchecked"
		}
		return fmt.Sprintf("store %s %s, %s%s", f.ValueType(in.B), val(in.A), val(in.B), mark)
	case OpCall:
		args := f.CallArgs(v)
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = val(a)
		}
		return fmt.Sprintf("%scall %s @%s(%s)", res, in.Type, f.mod.RTNames[in.Aux], strings.Join(parts, ", "))
	case OpPhi:
		pairs := f.PhiPairs(v)
		var parts []string
		for i := 0; i < len(pairs); i += 2 {
			parts = append(parts, fmt.Sprintf("[b%d: %s]", pairs[i], val(pairs[i+1])))
		}
		return fmt.Sprintf("%sphi %s %s", res, in.Type, strings.Join(parts, " "))
	case OpBr:
		return fmt.Sprintf("br b%d", in.Aux)
	case OpCondBr:
		return fmt.Sprintf("condbr %s b%d b%d", val(in.A), in.Aux, in.B)
	case OpRet:
		if in.A == NoValue {
			return "return"
		}
		return fmt.Sprintf("return %s", val(in.A))
	case OpUnreachable:
		return "unreachable"
	case OpSelect:
		return fmt.Sprintf("%sselect %s, %s, %s", res, val(in.A), val(in.B), val(in.C))
	case OpZExt, OpSExt, OpTrunc, OpSIToFP, OpFPToSI, OpFBits, OpBitsF, OpNeg, OpNot:
		return fmt.Sprintf("%s%s %s %s", res, in.Op, in.Type, val(in.A))
	default:
		return fmt.Sprintf("%s%s %s %s, %s", res, in.Op, in.Type, val(in.A), val(in.B))
	}
}

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
