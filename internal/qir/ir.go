// Package qir implements the SSA intermediate representation that the query
// compiler generates and all execution back-ends consume — the analog of
// Umbra IR in the paper.
//
// The representation is optimized for fast generation and linear traversal:
// instructions are fixed-size values stored in one flat slice per function,
// values are identified by instruction index, and variable-length operand
// lists (calls, phis) live in a shared side array. Types cover the needs of
// query compilation: scalar integers up to 128 bits (SQL decimals), 64-bit
// floats, pointers, and 16-byte by-value strings.
package qir

import "fmt"

// Type is a value type.
type Type uint8

// Value types. Str is the 16-byte string/data structure passed by value
// (length + prefix + pointer with small-buffer optimization); I128 backs SQL
// decimals.
const (
	Void Type = iota
	I1
	I8
	I16
	I32
	I64
	I128
	F64
	Ptr
	Str
	NumTypes
)

var typeNames = [NumTypes]string{"void", "i1", "i8", "i16", "i32", "i64", "i128", "f64", "ptr", "str"}

func (t Type) String() string {
	if t < NumTypes {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Size returns the in-memory size of the type in bytes.
func (t Type) Size() int64 {
	switch t {
	case Void:
		return 0
	case I1, I8:
		return 1
	case I16:
		return 2
	case I32:
		return 4
	case I64, F64, Ptr:
		return 8
	case I128, Str:
		return 16
	}
	panic("qir: bad type")
}

// IsInt reports whether the type is a scalar integer (including I1).
func (t Type) IsInt() bool { return t >= I1 && t <= I128 }

// Is128 reports whether values of the type occupy two 64-bit registers.
func (t Type) Is128() bool { return t == I128 || t == Str }

// Cmp is an integer or float comparison predicate. The numeric values match
// vt.Cond so back-ends can convert by casting.
type Cmp uint8

// Comparison predicates.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpSLT
	CmpSLE
	CmpSGT
	CmpSGE
	CmpULT
	CmpULE
	CmpUGT
	CmpUGE
	NumCmps
)

var cmpNames = [NumCmps]string{"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}

func (c Cmp) String() string {
	if c < NumCmps {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Op is a QIR operation.
type Op uint8

// Operations. Operand conventions are documented per group; see Instr.
const (
	OpInvalid Op = iota

	// OpParam declares function parameter Aux at the top of the entry
	// block; its value id is the parameter's SSA value.
	OpParam

	// Constants. OpConst: Imm is the value (sign-extended for the type).
	// OpConst128: Imm indexes the function's I128 pool (lo/hi pair).
	// OpConstStr: Imm indexes the module string pool. OpConstF: Imm is
	// the float64 bit pattern. OpNull: the null pointer. OpFuncAddr:
	// Aux is the index of a function in the same module; the value is
	// its code address after compilation (used for callbacks).
	// OpConstPool: Imm indexes the module constant pool (Module.Pool);
	// the value is read from the runtime's pool slot at execution time,
	// so the compiled body is independent of the literal — the basis of
	// the parameterized plan cache (constant-only query variants share
	// compiled code, with values bound per execution).
	OpConst
	OpConst128
	OpConstStr
	OpConstF
	OpConstPool
	OpNull
	OpFuncAddr

	// Integer arithmetic: A op B, result Type. Division traps on zero.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSar
	OpRotr
	OpNeg
	OpNot

	// Overflow-checked signed arithmetic on user data (SQL semantics):
	// the operation traps instead of wrapping.
	OpSAddTrap
	OpSSubTrap
	OpSMulTrap

	// OpICmp: A Cmp B with the predicate in Aux; result I1.
	OpICmp

	// Width conversions between integer types; target width is the
	// instruction Type.
	OpZExt
	OpSExt
	OpTrunc

	// Floating point.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFCmp   // predicate in Aux, result I1
	OpSIToFP // A: int -> F64
	OpFPToSI // A: F64 -> int (instruction Type)
	OpFBits  // bitcast F64 -> I64
	OpBitsF  // bitcast I64 -> F64

	// Special operations from Umbra IR.
	OpCrc32    // crc32(A seed i64, B data i64) -> i64
	OpLMulFold // (A*B as u128).lo ^ .hi -> i64 (hash fallback)

	// OpGEP: address A + Imm + B*Aux (B may be NoValue; Aux is the
	// scale). Result Ptr.
	OpGEP

	// Memory. OpLoad: *A with result Type. OpStore: *A = B (B's type
	// decides the width). OpAtomicAdd: atomic *A += B, returns old value.
	OpLoad
	OpStore
	OpAtomicAdd

	// OpSelect: A ? B : C.
	OpSelect

	// OpCall calls runtime function Aux with arguments
	// Extra[A : A+B]. Result is the instruction Type (Void for none).
	OpCall

	// OpPhi merges values at a block head: Extra[A : A+2*B] holds
	// (pred-block, value) pairs.
	OpPhi

	// Terminators. OpBr: unconditional to block Aux. OpCondBr: if A then
	// block Aux else block B2 (stored in B as a block id). OpRet:
	// return A (NoValue for void). OpUnreachable traps.
	OpBr
	OpCondBr
	OpRet
	OpUnreachable

	NumOps
)

var opNames = [NumOps]string{
	OpParam: "param", OpConst: "const", OpConst128: "const128",
	OpConstStr: "conststr", OpConstF: "constf", OpConstPool: "constpool",
	OpNull:     "null",
	OpFuncAddr: "funcaddr",
	OpAdd:      "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpUDiv: "udiv", OpURem: "urem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpRotr: "rotr",
	OpNeg: "neg", OpNot: "not",
	OpSAddTrap: "saddtrap", OpSSubTrap: "ssubtrap", OpSMulTrap: "smultrap",
	OpICmp: "icmp", OpZExt: "zext", OpSExt: "sext", OpTrunc: "trunc",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFCmp: "fcmp", OpSIToFP: "sitofp", OpFPToSI: "fptosi",
	OpFBits: "fbits", OpBitsF: "bitsf",
	OpCrc32: "crc32", OpLMulFold: "lmulfold",
	OpGEP: "getelementptr", OpLoad: "load", OpStore: "store",
	OpAtomicAdd: "atomicadd", OpSelect: "select", OpCall: "call",
	OpPhi: "phi", OpBr: "br", OpCondBr: "condbr", OpRet: "return",
	OpUnreachable: "unreachable",
}

func (o Op) String() string {
	if o < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the operation ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

// IsConst reports whether the operation produces a compile-time constant.
// OpConstPool is deliberately excluded: its value is bound per execution and
// unknown at compile time, so passes that fold or key on constant values must
// not treat it as one.
func (o Op) IsConst() bool {
	switch o {
	case OpConst, OpConst128, OpConstStr, OpConstF, OpNull, OpFuncAddr:
		return true
	}
	return false
}

// HasSideEffects reports whether the operation must not be eliminated or
// reordered across other side-effecting operations.
func (o Op) HasSideEffects() bool {
	switch o {
	case OpStore, OpAtomicAdd, OpCall, OpBr, OpCondBr, OpRet, OpUnreachable,
		OpSAddTrap, OpSSubTrap, OpSMulTrap, OpSDiv, OpSRem, OpUDiv, OpURem:
		return true
	}
	return false
}

// Value identifies an SSA value: the index of the defining instruction in
// Func.Instrs. NoValue marks absent operands.
type Value = int32

// NoValue is the absent-operand sentinel.
const NoValue Value = -1

// Block identifies a basic block by index into Func.Blocks.
type BlockID = int32

// Instr is one fixed-size IR instruction.
type Instr struct {
	Op   Op
	Type Type
	// A, B, C are value operands; for OpCondBr B holds the false-successor
	// block id, for OpPhi and OpCall A/B index the Extra pool.
	A, B, C Value
	// Imm holds immediates, GEP offsets and pool indices.
	Imm int64
	// Aux holds comparison predicates, callee ids, GEP scales, and
	// branch-target block ids.
	Aux uint32
}

// Cmp returns the comparison predicate of an OpICmp/OpFCmp instruction.
func (i *Instr) Cmp() Cmp { return Cmp(i.Aux) }

// MemUnchecked is an Aux bit on OpLoad/OpStore marking an access that
// static analysis proved in-bounds and non-null; back-ends may lower it
// without runtime bounds or null checks. The bit participates in code-cache
// keys automatically because cache keys hash Aux.
const MemUnchecked uint32 = 1 << 0

// Unchecked reports whether a memory instruction carries the MemUnchecked
// safety mark.
func (i *Instr) Unchecked() bool {
	return (i.Op == OpLoad || i.Op == OpStore) && i.Aux&MemUnchecked != 0
}

// SetUnchecked marks a memory instruction as statically proven safe.
func (i *Instr) SetUnchecked() {
	if i.Op != OpLoad && i.Op != OpStore {
		panic("qir: SetUnchecked on non-memory instruction")
	}
	i.Aux |= MemUnchecked
}

// BasicBlock is a list of instruction ids. The last instruction is the
// terminator; OpPhi instructions must be a prefix of the list.
type BasicBlock struct {
	List  []Value
	Preds []BlockID
}

// Terminator returns the block's final instruction id.
func (b *BasicBlock) Terminator() Value {
	if len(b.List) == 0 {
		return NoValue
	}
	return b.List[len(b.List)-1]
}

// Prov is the provenance record attaching an IR function back to the source
// construct it was generated from: the pipeline it belongs to, the plan
// operator path that produced it, and a SQL-ish fragment of that operator.
// Provenance is metadata only — it is deliberately excluded from back-end
// cache keys (which hash the explicit code-bearing fields), so enabling it
// cannot perturb compiled code. The zero value means "no provenance"
// (hand-built test modules, runtime stubs).
type Prov struct {
	// Pipeline is the codegen pipeline index the function belongs to, or -1
	// for functions outside any pipeline (e.g. sort comparators).
	Pipeline int
	// Operator is the plan-operator path, innermost last, truncated at the
	// nearest enclosing pipeline breaker (e.g. "scan(lineitem) > select >
	// groupby").
	Operator string
	// SQL is a best-effort SQL fragment for the innermost operator.
	SQL string
	// Role distinguishes the function's job within its pipeline: "setup",
	// "main", "cleanup", "comparator", or "merge".
	Role string
	// Mode records the pipeline's execution strategy: "batch" for
	// pipelines whose main function drives the vectorized kernels,
	// "tuple" (or empty) for tuple-at-a-time loops. qprof shows it so
	// per-pipeline attribution stays meaningful when a pipeline's work
	// moves into the runtime.
	Mode string
	// Hoisted/KeptInline record the constant-hoisting pass's decisions for
	// this function: literals moved to the module constant pool vs literals
	// classified range-load-bearing and kept inline (hoisting them would
	// have erased a value-range fact the sa check-elimination pass needed).
	// Metadata only, never hashed into cache keys.
	Hoisted    int
	KeptInline int
}

// Func is one IR function.
type Func struct {
	Name   string
	Params []Type
	Ret    Type

	Instrs []Instr
	Blocks []BasicBlock
	// Extra holds variable-length operand lists (call args, phi pairs).
	Extra []int32
	// I128 holds lo/hi pairs for OpConst128.
	I128 []uint64

	// Prov records which plan operator generated this function; metadata
	// only, never hashed into unit cache keys.
	Prov Prov

	mod *Module
}

// PoolConst is one hoisted literal in the module constant pool: the value an
// OpConstPool slot must hold when this module executes. The compiled body
// never embeds the value — back-ends emit a load from the runtime's pool slot
// — so code-cache keys cover only the slot index and type, and modules
// differing solely in pool values share compiled units.
type PoolConst struct {
	Type Type
	// Lo/Hi hold the value for numeric types (Lo sign-extended for narrow
	// integers, float64 bits for F64, lo/hi words for I128).
	Lo, Hi uint64
	// Str holds the value for Str slots; it is interned into the runtime at
	// bind time (content-addressed, so repeated binds are stable).
	Str string
}

// Module groups the functions compiled together (one query pipeline in the
// database setting), plus shared constant pools.
type Module struct {
	Name  string
	Funcs []*Func
	// Strings is the string constant pool referenced by OpConstStr.
	Strings []string
	// Pool is the hoisted-literal constant pool referenced by OpConstPool,
	// in slot order. Values are bound into the runtime's pool area before
	// execution (rt.DB.BindConstPool); only the slot shape (count + types)
	// affects compiled code.
	Pool []PoolConst
	// RTNames maps runtime-callee ids used in OpCall to names, for
	// printing and for binding at execution time.
	RTNames []string

	frozen bool
}

// Freeze marks the module immutable: interning a new runtime name or
// string constant panics until Unfreeze. The parallel compilation driver
// freezes the module while worker goroutines hold it, turning any missed
// pre-interning in a back-end's BeginModule (a data race and a determinism
// bug) into a loud failure instead of silent pool reordering.
func (m *Module) Freeze()   { m.frozen = true }
func (m *Module) Unfreeze() { m.frozen = false }

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name}
}

// RTImport interns a runtime function name and returns its callee id.
func (m *Module) RTImport(name string) uint32 {
	for i, n := range m.RTNames {
		if n == name {
			return uint32(i)
		}
	}
	if m.frozen {
		panic("qir: RTImport(" + name + ") on frozen module; the back-end's BeginModule must pre-import every runtime helper")
	}
	m.RTNames = append(m.RTNames, name)
	return uint32(len(m.RTNames) - 1)
}

// InternString interns a string constant and returns its pool index.
func (m *Module) InternString(s string) int64 {
	for i, v := range m.Strings {
		if v == s {
			return int64(i)
		}
	}
	if m.frozen {
		panic("qir: InternString on frozen module")
	}
	m.Strings = append(m.Strings, s)
	return int64(len(m.Strings) - 1)
}

// AddPoolConst appends a constant-pool slot and returns its index for use as
// an OpConstPool Imm. Slots are never deduplicated: two textually equal
// literals get distinct slots so a future variant can change either
// independently without perturbing the slot shape.
func (m *Module) AddPoolConst(pc PoolConst) int64 {
	if m.frozen {
		panic("qir: AddPoolConst on frozen module")
	}
	m.Pool = append(m.Pool, pc)
	return int64(len(m.Pool) - 1)
}

// Module returns the module a function belongs to.
func (f *Func) Module() *Module { return f.mod }

// NumInstrs returns the instruction count (including params and phis).
func (f *Func) NumInstrs() int { return len(f.Instrs) }

// ValueType returns the type of an SSA value.
func (f *Func) ValueType(v Value) Type {
	if v == NoValue {
		return Void
	}
	return f.Instrs[v].Type
}

// Const128 returns the lo/hi halves of an OpConst128 instruction.
func (f *Func) Const128(v Value) (lo, hi uint64) {
	idx := f.Instrs[v].Imm
	return f.I128[2*idx], f.I128[2*idx+1]
}

// CallArgs returns the argument values of an OpCall instruction.
func (f *Func) CallArgs(v Value) []Value {
	in := &f.Instrs[v]
	return f.Extra[in.A : in.A+in.B]
}

// PhiPairs returns the (pred, value) pairs of an OpPhi instruction as a flat
// slice of 2*n entries.
func (f *Func) PhiPairs(v Value) []int32 {
	in := &f.Instrs[v]
	return f.Extra[in.A : in.A+2*in.B]
}

// Succs appends the successor block ids of block b to dst and returns it.
func (f *Func) Succs(b BlockID, dst []BlockID) []BlockID {
	t := f.Blocks[b].Terminator()
	if t == NoValue {
		return dst
	}
	in := &f.Instrs[t]
	switch in.Op {
	case OpBr:
		return append(dst, BlockID(in.Aux))
	case OpCondBr:
		return append(dst, BlockID(in.Aux), in.B)
	}
	return dst
}

// Operands appends the value operands of instruction v to dst and returns
// it. Block references and pool indices are not included.
func (f *Func) Operands(v Value, dst []Value) []Value {
	in := &f.Instrs[v]
	switch in.Op {
	case OpParam, OpConst, OpConst128, OpConstStr, OpConstF, OpConstPool,
		OpNull, OpFuncAddr, OpBr, OpUnreachable:
		return dst
	case OpPhi:
		pairs := f.PhiPairs(v)
		for i := 1; i < len(pairs); i += 2 {
			dst = append(dst, pairs[i])
		}
		return dst
	case OpCall:
		return append(dst, f.CallArgs(v)...)
	case OpCondBr:
		return append(dst, in.A)
	case OpRet:
		if in.A != NoValue {
			dst = append(dst, in.A)
		}
		return dst
	case OpGEP:
		dst = append(dst, in.A)
		if in.B != NoValue {
			dst = append(dst, in.B)
		}
		return dst
	case OpSelect:
		return append(dst, in.A, in.B, in.C)
	case OpNeg, OpNot, OpZExt, OpSExt, OpTrunc, OpSIToFP, OpFPToSI,
		OpFBits, OpBitsF, OpLoad:
		return append(dst, in.A)
	default:
		// Binary operations.
		return append(dst, in.A, in.B)
	}
}
