package qir

import (
	"math"

	"qcc/internal/obs"
)

// Slab-growth counters for the two append-heavy arenas the builder manages.
// A "growth" is an append that forces a reallocation (len == cap before the
// append); the counts expose how much IR construction churns the allocator
// without paying ReadMemStats on the hot path.
var (
	statInstrGrowths = obs.NewCounter("qir.instr_slab_growths")
	statExtraGrowths = obs.NewCounter("qir.extra_slab_growths")
)

// Builder constructs a Func block by block. It is the fast-generation API
// the query compiler uses: appending an instruction is an array append plus
// a block-list append, with no hashing or pointer chasing.
type Builder struct {
	f   *Func
	cur BlockID
}

// NewFunc creates a function in m and returns a builder positioned at its
// entry block, with OpParam instructions already emitted.
func NewFunc(m *Module, name string, ret Type, params ...Type) *Builder {
	f := &Func{Name: name, Params: params, Ret: ret, mod: m}
	m.Funcs = append(m.Funcs, f)
	b := &Builder{f: f}
	entry := b.NewBlock()
	b.SetBlock(entry)
	for i, pt := range params {
		b.append(Instr{Op: OpParam, Type: pt, A: NoValue, B: NoValue, C: NoValue, Aux: uint32(i)})
	}
	return b
}

// Func returns the function under construction.
func (b *Builder) Func() *Func { return b.f }

// Param returns the SSA value of parameter i.
func (b *Builder) Param(i int) Value { return Value(i) }

// NewBlock creates a new empty basic block.
func (b *Builder) NewBlock() BlockID {
	b.f.Blocks = append(b.f.Blocks, BasicBlock{})
	return BlockID(len(b.f.Blocks) - 1)
}

// SetBlock positions the builder at block id; subsequent instructions are
// appended there.
func (b *Builder) SetBlock(id BlockID) { b.cur = id }

// Block returns the current insertion block.
func (b *Builder) Block() BlockID { return b.cur }

// Terminated reports whether the current block already has a terminator.
func (b *Builder) Terminated() bool {
	t := b.f.Blocks[b.cur].Terminator()
	return t != NoValue && b.f.Instrs[t].Op.IsTerminator()
}

func (b *Builder) append(in Instr) Value {
	v := Value(len(b.f.Instrs))
	if len(b.f.Instrs) == cap(b.f.Instrs) {
		statInstrGrowths.Inc()
	}
	b.f.Instrs = append(b.f.Instrs, in)
	blk := &b.f.Blocks[b.cur]
	blk.List = append(blk.List, v)
	return v
}

// noteExtraGrowth records whether appending add more elements to the operand
// pool will force a reallocation.
func (b *Builder) noteExtraGrowth(add int) {
	if len(b.f.Extra)+add > cap(b.f.Extra) {
		statExtraGrowths.Inc()
	}
}

func (b *Builder) addEdge(from, to BlockID) {
	b.f.Blocks[to].Preds = append(b.f.Blocks[to].Preds, from)
}

// ConstInt emits an integer constant of type t.
func (b *Builder) ConstInt(t Type, v int64) Value {
	return b.append(Instr{Op: OpConst, Type: t, A: NoValue, B: NoValue, C: NoValue, Imm: v})
}

// Const128 emits a 128-bit constant from lo/hi halves.
func (b *Builder) Const128(lo, hi uint64) Value {
	idx := int64(len(b.f.I128) / 2)
	b.f.I128 = append(b.f.I128, lo, hi)
	return b.append(Instr{Op: OpConst128, Type: I128, A: NoValue, B: NoValue, C: NoValue, Imm: idx})
}

// ConstStr emits a string constant.
func (b *Builder) ConstStr(s string) Value {
	idx := b.f.mod.InternString(s)
	return b.append(Instr{Op: OpConstStr, Type: Str, A: NoValue, B: NoValue, C: NoValue, Imm: idx})
}

// ConstF emits a float constant.
func (b *Builder) ConstF(v float64) Value {
	return b.append(Instr{Op: OpConstF, Type: F64, A: NoValue, B: NoValue, C: NoValue, Imm: int64(math.Float64bits(v))})
}

// Null emits the null pointer constant.
func (b *Builder) Null() Value {
	return b.append(Instr{Op: OpNull, Type: Ptr, A: NoValue, B: NoValue, C: NoValue})
}

// FuncAddr emits the address of function fi in the same module.
func (b *Builder) FuncAddr(fi int) Value {
	return b.append(Instr{Op: OpFuncAddr, Type: I64, A: NoValue, B: NoValue, C: NoValue, Aux: uint32(fi)})
}

// Bin emits a binary operation with the result type of a.
func (b *Builder) Bin(op Op, a, c Value) Value {
	return b.append(Instr{Op: op, Type: b.f.ValueType(a), A: a, B: c, C: NoValue})
}

// Un emits a unary operation preserving the operand type.
func (b *Builder) Un(op Op, a Value) Value {
	return b.append(Instr{Op: op, Type: b.f.ValueType(a), A: a, B: NoValue, C: NoValue})
}

// ICmp emits an integer comparison.
func (b *Builder) ICmp(p Cmp, a, c Value) Value {
	return b.append(Instr{Op: OpICmp, Type: I1, A: a, B: c, C: NoValue, Aux: uint32(p)})
}

// FCmp emits a float comparison.
func (b *Builder) FCmp(p Cmp, a, c Value) Value {
	return b.append(Instr{Op: OpFCmp, Type: I1, A: a, B: c, C: NoValue, Aux: uint32(p)})
}

// Convert emits a width conversion (OpZExt/OpSExt/OpTrunc) to type t.
func (b *Builder) Convert(op Op, t Type, a Value) Value {
	return b.append(Instr{Op: op, Type: t, A: a, B: NoValue, C: NoValue})
}

// Crc32 emits crc32(seed, data).
func (b *Builder) Crc32(seed, data Value) Value {
	return b.append(Instr{Op: OpCrc32, Type: I64, A: seed, B: data, C: NoValue})
}

// LMulFold emits the long-mul-fold hash combiner.
func (b *Builder) LMulFold(a, c Value) Value {
	return b.append(Instr{Op: OpLMulFold, Type: I64, A: a, B: c, C: NoValue})
}

// GEP emits base + off + idx*scale; idx may be NoValue.
func (b *Builder) GEP(base Value, off int64, idx Value, scale int64) Value {
	return b.append(Instr{Op: OpGEP, Type: Ptr, A: base, B: idx, C: NoValue, Imm: off, Aux: uint32(scale)})
}

// Load emits a typed load from addr.
func (b *Builder) Load(t Type, addr Value) Value {
	return b.append(Instr{Op: OpLoad, Type: t, A: addr, B: NoValue, C: NoValue})
}

// Store emits a store of v to addr.
func (b *Builder) Store(addr, v Value) Value {
	return b.append(Instr{Op: OpStore, Type: Void, A: addr, B: v, C: NoValue})
}

// AtomicAdd emits an atomic fetch-add returning the previous value.
func (b *Builder) AtomicAdd(addr, v Value) Value {
	return b.append(Instr{Op: OpAtomicAdd, Type: b.f.ValueType(v), A: addr, B: v, C: NoValue})
}

// Select emits cond ? x : y.
func (b *Builder) Select(cond, x, y Value) Value {
	return b.append(Instr{Op: OpSelect, Type: b.f.ValueType(x), A: cond, B: x, C: y})
}

// Call emits a runtime call. name is interned in the module's runtime-import
// table; ret may be Void.
func (b *Builder) Call(ret Type, name string, args ...Value) Value {
	id := b.f.mod.RTImport(name)
	start := int32(len(b.f.Extra))
	b.noteExtraGrowth(len(args))
	b.f.Extra = append(b.f.Extra, args...)
	return b.append(Instr{Op: OpCall, Type: ret, A: start, B: int32(len(args)), C: NoValue, Aux: id})
}

// Phi emits a phi at the current block from (pred, value) pairs. Phis must
// be created before non-phi instructions of the block.
func (b *Builder) Phi(t Type, pairs ...int32) Value {
	if len(pairs)%2 != 0 {
		panic("qir: phi pairs must be (pred, value) tuples")
	}
	start := int32(len(b.f.Extra))
	b.noteExtraGrowth(len(pairs))
	b.f.Extra = append(b.f.Extra, pairs...)
	return b.append(Instr{Op: OpPhi, Type: t, A: start, B: int32(len(pairs) / 2), C: NoValue})
}

// AddPhiArg appends one (pred, value) incoming pair to an existing phi,
// typically to close a loop after the latch block is built. If the phi's
// pair list is not at the tail of the operand pool, it is relocated there
// (arena-style; the old slots become garbage).
func (b *Builder) AddPhiArg(phi Value, pred BlockID, v Value) {
	in := &b.f.Instrs[phi]
	if int(in.A+2*in.B) != len(b.f.Extra) {
		start := int32(len(b.f.Extra))
		b.noteExtraGrowth(int(2 * in.B))
		b.f.Extra = append(b.f.Extra, b.f.Extra[in.A:in.A+2*in.B]...)
		in.A = start
	}
	b.noteExtraGrowth(2)
	b.f.Extra = append(b.f.Extra, pred, v)
	in.B++
}

// Br emits an unconditional branch and records the CFG edge.
func (b *Builder) Br(to BlockID) {
	b.append(Instr{Op: OpBr, Type: Void, A: NoValue, B: NoValue, C: NoValue, Aux: uint32(to)})
	b.addEdge(b.cur, to)
}

// CondBr emits a conditional branch on cond.
func (b *Builder) CondBr(cond Value, ifTrue, ifFalse BlockID) {
	b.append(Instr{Op: OpCondBr, Type: Void, A: cond, B: ifFalse, C: NoValue, Aux: uint32(ifTrue)})
	b.addEdge(b.cur, ifTrue)
	b.addEdge(b.cur, ifFalse)
}

// Ret emits a return; v may be NoValue for void functions.
func (b *Builder) Ret(v Value) {
	b.append(Instr{Op: OpRet, Type: Void, A: v, B: NoValue, C: NoValue})
}

// Unreachable emits a trap terminator.
func (b *Builder) Unreachable() {
	b.append(Instr{Op: OpUnreachable, Type: Void, A: NoValue, B: NoValue, C: NoValue})
}
