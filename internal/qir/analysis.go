package qir

// This file provides the CFG analyses shared by back-ends: reverse postorder,
// dominator tree (Cooper–Harvey–Kennedy), natural-loop detection, and
// block-granularity liveness — the same analyses the paper's DirectEmit
// back-end computes in its single analysis pass.

// RPO returns the blocks reachable from entry in reverse postorder.
func (f *Func) RPO() []BlockID {
	seen := make([]bool, len(f.Blocks))
	post := make([]BlockID, 0, len(f.Blocks))
	// Iterative DFS; succs buffer reused.
	type frame struct {
		b    BlockID
		next int
	}
	stack := []frame{{b: 0}}
	seen[0] = true
	var succBuf []BlockID
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succBuf = f.Succs(fr.b, succBuf[:0])
		if fr.next < len(succBuf) {
			s := succBuf[fr.next]
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree holds immediate dominators indexed by block id; Idom[entry] is the
// entry itself, and unreachable blocks have Idom -1.
type DomTree struct {
	Idom []BlockID
	// RPO is the reverse postorder used during construction.
	RPO []BlockID
	// Num maps a block id to its RPO position (or -1 if unreachable).
	Num []int32
}

// Dominators computes the dominator tree with the Cooper–Harvey–Kennedy
// iterative algorithm.
func (f *Func) Dominators() *DomTree {
	rpo := f.RPO()
	num := make([]int32, len(f.Blocks))
	for i := range num {
		num[i] = -1
	}
	for i, b := range rpo {
		num[b] = int32(i)
	}
	idom := make([]BlockID, len(f.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[rpo[0]] = rpo[0]
	intersect := func(a, b BlockID) BlockID {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom BlockID = -1
			for _, p := range f.Blocks[b].Preds {
				if num[p] < 0 || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{Idom: idom, RPO: rpo, Num: num}
}

// Dominates reports whether block a dominates block b.
func (d *DomTree) Dominates(a, b BlockID) bool {
	if d.Num[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.Idom[b]
		if next == b || next == -1 {
			return false
		}
		b = next
	}
}

// LoopInfo describes the natural loops of a function.
type LoopInfo struct {
	// Depth[b] is the loop nesting depth of block b (0 = not in a loop).
	Depth []int32
	// Headers lists the loop header blocks.
	Headers []BlockID
}

// Loops finds natural loops from back edges (an edge whose target dominates
// its source). Irreducible control flow is not produced by the query
// compiler, matching the DirectEmit restriction described in the paper.
func (f *Func) Loops(dom *DomTree) *LoopInfo {
	li := &LoopInfo{Depth: make([]int32, len(f.Blocks))}
	var succBuf []BlockID
	for _, b := range dom.RPO {
		succBuf = f.Succs(b, succBuf[:0])
		for _, s := range succBuf {
			if !dom.Dominates(s, b) {
				continue
			}
			// Back edge b -> s: collect the loop body by walking
			// predecessors from b until s.
			li.Headers = append(li.Headers, s)
			inLoop := make(map[BlockID]bool, 8)
			inLoop[s] = true
			work := []BlockID{b}
			for len(work) > 0 {
				n := work[len(work)-1]
				work = work[:len(work)-1]
				if inLoop[n] {
					continue
				}
				inLoop[n] = true
				work = append(work, f.Blocks[n].Preds...)
			}
			for blk := range inLoop {
				li.Depth[blk]++
			}
		}
	}
	return li
}

// Liveness holds block-granularity liveness: LiveIn[b] and LiveOut[b] are
// bitsets over value ids.
type Liveness struct {
	LiveIn  []BitSet
	LiveOut []BitSet
	nvals   int
}

// BitSet is a simple dense bitset over value ids.
type BitSet []uint64

// NewBitSet returns a bitset able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (s BitSet) Set(i int32) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (s BitSet) Clear(i int32) { s[i/64] &^= 1 << (uint(i) % 64) }

// Get reports bit i.
func (s BitSet) Get(i int32) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// OrWith ors other into s and reports whether s changed.
func (s BitSet) OrWith(other BitSet) bool {
	changed := false
	for i := range s {
		n := s[i] | other[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Copy copies other into s.
func (s BitSet) Copy(other BitSet) { copy(s, other) }

// Count returns the number of set bits.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// LivenessAnalysis computes block-granularity liveness by backward data-flow
// iteration. Phi operands are treated as live-out of the corresponding
// predecessor, matching SSA semantics.
func (f *Func) LivenessAnalysis() *Liveness {
	n := len(f.Instrs)
	nb := len(f.Blocks)
	lv := &Liveness{nvals: n}
	lv.LiveIn = make([]BitSet, nb)
	lv.LiveOut = make([]BitSet, nb)
	gen := make([]BitSet, nb)  // upward-exposed uses
	kill := make([]BitSet, nb) // definitions
	// phiUses[p] are values used by phis in successors of p along edge p->s.
	phiUses := make([]BitSet, nb)
	for b := 0; b < nb; b++ {
		lv.LiveIn[b] = NewBitSet(n)
		lv.LiveOut[b] = NewBitSet(n)
		gen[b] = NewBitSet(n)
		kill[b] = NewBitSet(n)
		phiUses[b] = NewBitSet(n)
	}
	var ops []Value
	for b := 0; b < nb; b++ {
		blk := &f.Blocks[b]
		for _, v := range blk.List {
			in := &f.Instrs[v]
			if in.Op == OpPhi {
				pairs := f.PhiPairs(v)
				for i := 0; i < len(pairs); i += 2 {
					phiUses[pairs[i]].Set(pairs[i+1])
				}
				kill[b].Set(v)
				continue
			}
			ops = f.Operands(v, ops[:0])
			for _, u := range ops {
				if !kill[b].Get(u) {
					gen[b].Set(u)
				}
			}
			if in.Type != Void {
				kill[b].Set(v)
			}
		}
	}
	// Iterate to fixpoint, blocks in reverse order for fast convergence.
	var succBuf []BlockID
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			out := lv.LiveOut[b]
			succBuf = f.Succs(BlockID(b), succBuf[:0])
			for _, s := range succBuf {
				if out.OrWith(lv.LiveIn[s]) {
					changed = true
				}
			}
			if out.OrWith(phiUses[b]) {
				changed = true
			}
			// in = gen | (out &^ kill)
			in := lv.LiveIn[b]
			for i := range in {
				n := gen[b][i] | out[i]&^kill[b][i]
				if n != in[i] {
					in[i] = n
					changed = true
				}
			}
		}
	}
	return lv
}

// LiveAtInstr refines block-granularity liveness to instruction granularity
// for one block: the returned slice holds, for each position i in the
// block's instruction list, the set of values live immediately after the
// i-th instruction executes. Phi operands are charged to predecessor edges
// (they are in the predecessors' LiveOut), so they do not appear in the
// in-block sets unless also used by a non-phi instruction.
func (f *Func) LiveAtInstr(lv *Liveness, b BlockID) []BitSet {
	list := f.Blocks[b].List
	n := lv.nvals
	after := make([]BitSet, len(list))
	cur := NewBitSet(n)
	cur.Copy(lv.LiveOut[b])
	var ops []Value
	for i := len(list) - 1; i >= 0; i-- {
		after[i] = NewBitSet(n)
		after[i].Copy(cur)
		v := list[i]
		in := &f.Instrs[v]
		if in.Type != Void || in.Op == OpPhi {
			cur.Clear(v)
		}
		if in.Op != OpPhi {
			ops = f.Operands(v, ops[:0])
			for _, u := range ops {
				cur.Set(u)
			}
		}
	}
	return after
}

// MaxLiveValues returns the maximum number of simultaneously live SSA values
// at any instruction boundary — the function's register-pressure estimate,
// computed from per-instruction liveness.
func (f *Func) MaxLiveValues(lv *Liveness) int {
	n := lv.nvals
	cur := NewBitSet(n)
	maxLive := 0
	var ops []Value
	for b := range f.Blocks {
		cur.Copy(lv.LiveOut[b])
		live := cur.Count()
		if live > maxLive {
			maxLive = live
		}
		list := f.Blocks[b].List
		for i := len(list) - 1; i >= 0; i-- {
			v := list[i]
			in := &f.Instrs[v]
			if (in.Type != Void || in.Op == OpPhi) && cur.Get(v) {
				cur.Clear(v)
				live--
			}
			if in.Op != OpPhi {
				ops = f.Operands(v, ops[:0])
				for _, u := range ops {
					if !cur.Get(u) {
						cur.Set(u)
						live++
					}
				}
			}
			if live > maxLive {
				maxLive = live
			}
		}
	}
	return maxLive
}
