package qir

import "fmt"

// Verify checks structural and SSA invariants of a function:
//
//   - every block ends in exactly one terminator and has no terminator
//     mid-block;
//   - phis form a prefix of their block's instruction list and have exactly
//     one incoming value per predecessor;
//   - every operand is defined in a block that dominates the use (for phis,
//     the incoming value's definition must dominate the predecessor);
//   - operand and result types are consistent;
//   - params appear only at the head of the entry block;
//   - CFG edges and Preds lists agree.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	defBlock := make([]BlockID, len(f.Instrs))
	defPos := make([]int32, len(f.Instrs)) // position within the block list
	for i := range defBlock {
		defBlock[i] = -1
	}
	for b := range f.Blocks {
		for i, v := range f.Blocks[b].List {
			if v < 0 || int(v) >= len(f.Instrs) {
				return fmt.Errorf("%s b%d: bad instruction id %d", f.Name, b, v)
			}
			if defBlock[v] != -1 {
				return fmt.Errorf("%s: instruction %d listed twice", f.Name, v)
			}
			defBlock[v] = BlockID(b)
			defPos[v] = int32(i)
		}
	}

	// Terminator payloads. Branch targets live in Aux (and in B for the
	// false arm of OpCondBr); they must name valid blocks before the CFG
	// walk below dereferences them.
	for b := range f.Blocks {
		t := f.Blocks[b].Terminator()
		if t == NoValue {
			continue
		}
		in := &f.Instrs[t]
		switch in.Op {
		case OpBr:
			if int(in.Aux) >= len(f.Blocks) {
				return fmt.Errorf("%s b%d: br target %d is not a block id (%d blocks)",
					f.Name, b, in.Aux, len(f.Blocks))
			}
		case OpCondBr:
			if int(in.Aux) >= len(f.Blocks) {
				return fmt.Errorf("%s b%d: condbr true-successor %d is not a block id (%d blocks)",
					f.Name, b, in.Aux, len(f.Blocks))
			}
			if in.B < 0 || int(in.B) >= len(f.Blocks) {
				return fmt.Errorf("%s b%d: condbr false-successor %d is not a block id (%d blocks)",
					f.Name, b, in.B, len(f.Blocks))
			}
		}
	}

	// CFG edge consistency.
	predCount := make(map[[2]BlockID]int)
	var succBuf []BlockID
	for b := range f.Blocks {
		succBuf = f.Succs(BlockID(b), succBuf[:0])
		for _, s := range succBuf {
			if s < 0 || int(s) >= len(f.Blocks) {
				return fmt.Errorf("%s b%d: branch to invalid block %d", f.Name, b, s)
			}
			predCount[[2]BlockID{BlockID(b), s}]++
		}
	}
	for b := range f.Blocks {
		for _, p := range f.Blocks[b].Preds {
			key := [2]BlockID{p, BlockID(b)}
			if predCount[key] == 0 {
				return fmt.Errorf("%s b%d: pred b%d has no matching edge", f.Name, b, p)
			}
			predCount[key]--
		}
	}
	for k, c := range predCount {
		if c > 0 {
			return fmt.Errorf("%s: edge b%d->b%d missing from Preds", f.Name, k[0], k[1])
		}
	}

	// Block structure.
	for b := range f.Blocks {
		blk := &f.Blocks[b]
		if len(blk.List) == 0 {
			return fmt.Errorf("%s b%d: empty block", f.Name, b)
		}
		phiDone := false
		for i, v := range blk.List {
			in := &f.Instrs[v]
			isLast := i == len(blk.List)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("%s b%d: misplaced terminator at %d (%s)", f.Name, b, v, in.Op)
			}
			switch in.Op {
			case OpPhi:
				if b == 0 {
					// The entry block has no predecessors, so a phi there
					// has nothing to select between.
					return fmt.Errorf("%s: phi %d in entry block", f.Name, v)
				}
				if phiDone {
					return fmt.Errorf("%s b%d: phi %d after non-phi", f.Name, b, v)
				}
				pairs := f.PhiPairs(v)
				if len(pairs) != 2*len(blk.Preds) {
					return fmt.Errorf("%s b%d: phi %d has %d pairs, block has %d preds",
						f.Name, b, v, len(pairs)/2, len(blk.Preds))
				}
			case OpParam:
				if b != 0 || Value(i) != v || int(in.Aux) != i {
					return fmt.Errorf("%s: param %d not at entry head", f.Name, v)
				}
			default:
				phiDone = true
			}
		}
	}

	// Type and dominance checks.
	dom := f.Dominators()
	var ops []Value
	for b := range f.Blocks {
		for _, v := range f.Blocks[b].List {
			in := &f.Instrs[v]
			if in.Op == OpPhi {
				pairs := f.PhiPairs(v)
				for i := 0; i < len(pairs); i += 2 {
					pred, val := pairs[i], pairs[i+1]
					if val == NoValue {
						continue
					}
					if val < 0 || int(val) >= len(f.Instrs) {
						return fmt.Errorf("%s: phi %d uses invalid value %d", f.Name, v, val)
					}
					db := defBlock[val]
					if db == -1 {
						return fmt.Errorf("%s: phi %d uses unlisted value %d", f.Name, v, val)
					}
					// A phi may name itself (or any value of its own block)
					// only through a back edge: the phi's block must
					// dominate the predecessor. Through an unreachable pred
					// no dominance justification exists at all, so a
					// self-reference there is always malformed.
					if val == v && !dom.Dominates(BlockID(b), pred) {
						return fmt.Errorf("%s: phi %d references itself through non-back-edge pred b%d",
							f.Name, v, pred)
					}
					if dom.Num[pred] >= 0 && !dom.Dominates(db, pred) {
						return fmt.Errorf("%s: phi %d incoming %d does not dominate pred b%d",
							f.Name, v, val, pred)
					}
				}
				continue
			}
			ops = f.Operands(v, ops[:0])
			for _, u := range ops {
				if u < 0 || int(u) >= len(f.Instrs) {
					return fmt.Errorf("%s: instr %d uses invalid value %d", f.Name, v, u)
				}
				db := defBlock[u]
				if db == -1 {
					return fmt.Errorf("%s: instr %d uses unlisted value %d", f.Name, v, u)
				}
				if db == BlockID(b) {
					// In-block ordering is a local property: it holds (or
					// not) independent of reachability, so unreachable
					// blocks are checked too. The operand must be listed
					// strictly before its use.
					if defPos[u] >= defPos[v] {
						return fmt.Errorf("%s b%d: instr %d uses later value %d", f.Name, b, v, u)
					}
					continue
				}
				if dom.Num[BlockID(b)] < 0 {
					continue // cross-block dominance is undefined in unreachable code
				}
				if !dom.Dominates(db, BlockID(b)) {
					return fmt.Errorf("%s: instr %d (b%d) uses %d (b%d) without dominance",
						f.Name, v, b, u, db)
				}
			}
			if err := f.checkTypes(v); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *Func) checkTypes(v Value) error {
	in := &f.Instrs[v]
	ty := func(x Value) Type { return f.ValueType(x) }
	fail := func(msg string) error {
		return fmt.Errorf("%s: instr %d (%s): %s", f.Name, v, in.Op, msg)
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpUDiv, OpURem,
		OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpRotr,
		OpSAddTrap, OpSSubTrap, OpSMulTrap:
		if !in.Type.IsInt() {
			return fail("integer op on " + in.Type.String())
		}
		if ty(in.A) != in.Type || ty(in.B) != in.Type {
			return fail(fmt.Sprintf("operand types %s/%s vs result %s", ty(in.A), ty(in.B), in.Type))
		}
	case OpNeg, OpNot:
		if ty(in.A) != in.Type {
			return fail("operand type mismatch")
		}
	case OpICmp:
		if in.Type != I1 {
			return fail("icmp result must be i1")
		}
		if ty(in.A) != ty(in.B) {
			return fail(fmt.Sprintf("icmp on %s vs %s", ty(in.A), ty(in.B)))
		}
	case OpFCmp:
		if in.Type != I1 || ty(in.A) != F64 || ty(in.B) != F64 {
			return fail("fcmp types")
		}
	case OpZExt, OpSExt:
		if !in.Type.IsInt() || !ty(in.A).IsInt() || in.Type.Size() < ty(in.A).Size() {
			return fail(fmt.Sprintf("widening %s -> %s", ty(in.A), in.Type))
		}
	case OpTrunc:
		if !in.Type.IsInt() || !ty(in.A).IsInt() || in.Type.Size() > ty(in.A).Size() {
			return fail(fmt.Sprintf("truncating %s -> %s", ty(in.A), in.Type))
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if in.Type != F64 || ty(in.A) != F64 || ty(in.B) != F64 {
			return fail("float op types")
		}
	case OpSIToFP:
		if in.Type != F64 || !ty(in.A).IsInt() {
			return fail("sitofp types")
		}
	case OpFPToSI:
		if !in.Type.IsInt() || ty(in.A) != F64 {
			return fail("fptosi types")
		}
	case OpFBits:
		if in.Type != I64 || ty(in.A) != F64 {
			return fail("fbits types")
		}
	case OpBitsF:
		if in.Type != F64 || ty(in.A) != I64 {
			return fail("bitsf types")
		}
	case OpCrc32, OpLMulFold:
		if in.Type != I64 || ty(in.A) != I64 || ty(in.B) != I64 {
			return fail("hash op types")
		}
	case OpGEP:
		if in.Type != Ptr || ty(in.A) != Ptr {
			return fail("gep types")
		}
		if in.B != NoValue && !ty(in.B).IsInt() {
			return fail("gep index must be integer")
		}
	case OpConstPool:
		if f.mod == nil || in.Imm < 0 || int(in.Imm) >= len(f.mod.Pool) {
			return fail("const-pool slot out of range")
		}
		if f.mod.Pool[in.Imm].Type != in.Type {
			return fail(fmt.Sprintf("const-pool slot type %s vs result %s",
				f.mod.Pool[in.Imm].Type, in.Type))
		}
	case OpLoad:
		if ty(in.A) != Ptr {
			return fail("load address not a pointer")
		}
	case OpStore:
		if ty(in.A) != Ptr {
			return fail("store address not a pointer")
		}
	case OpAtomicAdd:
		if ty(in.A) != Ptr || ty(in.B) != in.Type {
			return fail("atomicadd types")
		}
	case OpSelect:
		if ty(in.A) != I1 || ty(in.B) != in.Type || ty(in.C) != in.Type {
			return fail("select types")
		}
	case OpCondBr:
		if ty(in.A) != I1 {
			return fail("condbr on non-i1")
		}
	case OpRet:
		if f.Ret == Void {
			if in.A != NoValue {
				return fail("value returned from void function")
			}
		} else if in.A == NoValue || ty(in.A) != f.Ret {
			return fail("return type mismatch")
		}
	}
	return nil
}

// VerifyModule verifies all functions of a module.
func (m *Module) VerifyModule() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}
