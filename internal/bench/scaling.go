package bench

import (
	"fmt"
	"time"

	"qcc/internal/backend"
	"qcc/internal/backend/pcc"
	"qcc/internal/codegen"
)

// parallelEngines is the lineup the parallel-compilation experiments sweep:
// every wired back-end exposing the per-function pipeline (the interpreter
// has nothing to compile).
func parallelEngines(cfg Config) []backend.Engine {
	var es []backend.Engine
	for _, e := range Engines(cfg.Arch) {
		if _, ok := e.(backend.FuncEngine); ok {
			es = append(es, e)
		}
	}
	return es
}

// Scaling measures compile-time scaling of the parallel driver: total
// TPC-H suite compile wall-clock per back-end for each worker count.
func Scaling(cfg Config, jobsList []int) (*Report, error) {
	if len(jobsList) == 0 {
		jobsList = []int{1, 2, 4, 8}
	}
	r := &Report{Title: fmt.Sprintf("Compile-time scaling: parallel per-function compilation (%s, all TPC-H)", cfg.Arch)}
	head := fmt.Sprintf("  %-20s", "engine")
	for _, j := range jobsList {
		head += fmt.Sprintf("  jobs=%-2d    ", j)
	}
	head += "  speedup"
	r.Lines = append(r.Lines, head)
	for _, eng := range parallelEngines(cfg) {
		// One untimed warm-up pass per engine: the first suite compile in a
		// process pays one-time costs (lazy table construction, page
		// faults, GC growth) that would otherwise inflate whichever worker
		// count happens to run first.
		if w, err := loadH(cfg, cfg.SF); err == nil {
			if _, err := RunSuiteTraced(w, pcc.Wrap(eng, pcc.Config{Jobs: jobsList[0]}), cfg.Arch, HQueries(), 1, nil, cfg.BackendOptions()); err != nil {
				return nil, err
			}
		} else {
			return nil, err
		}
		line := fmt.Sprintf("  %-20s", eng.Name())
		var first, last time.Duration
		for k, j := range jobsList {
			w, err := loadH(cfg, cfg.SF)
			if err != nil {
				return nil, err
			}
			wrapped := pcc.Wrap(eng, pcc.Config{Jobs: j})
			run, err := RunSuiteTraced(w, wrapped, cfg.Arch, HQueries(), 1, nil, cfg.BackendOptions())
			if err != nil {
				return nil, err
			}
			line += fmt.Sprintf("  %s", fmtDur(run.Compile))
			if k == 0 {
				first = run.Compile
			}
			last = run.Compile
		}
		if last > 0 {
			line += fmt.Sprintf("  %5.2fx", float64(first)/float64(last))
		}
		r.Lines = append(r.Lines, line)
	}
	return r, nil
}

// CacheWarm measures the content-addressed code cache on a repeated
// workload: the TPC-H suite compiled twice against one shared cache. The
// first pass is cold (all misses); the second recompiles the same queries
// and should hit for every function.
func CacheWarm(cfg Config) (*Report, error) {
	if cfg.CacheMB <= 0 {
		cfg.CacheMB = 64
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	r := &Report{Title: fmt.Sprintf("Code cache: repeated TPC-H workload (%s, jobs=%d, budget %d MiB)", cfg.Arch, jobs, cfg.CacheMB)}
	r.addf("  %-20s %-12s %-12s %6s %6s %9s", "engine", "cold", "warm", "hits", "misses", "hit-rate")
	for _, eng := range parallelEngines(cfg) {
		w, err := loadH(cfg, cfg.SF)
		if err != nil {
			return nil, err
		}
		cache := pcc.NewCache(int64(cfg.CacheMB) << 20)
		wrapped := pcc.Wrap(eng, pcc.Config{Jobs: jobs, Cache: cache, VariantTag: codegen.CheckElimVersion})
		cold, err := RunSuiteTraced(w, wrapped, cfg.Arch, HQueries(), 1, nil, cfg.BackendOptions())
		if err != nil {
			return nil, err
		}
		warm, err := RunSuiteTraced(w, wrapped, cfg.Arch, HQueries(), 1, nil, cfg.BackendOptions())
		if err != nil {
			return nil, err
		}
		hits := warm.Stats.Counters["cache_hits"]
		misses := warm.Stats.Counters["cache_misses"]
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		r.addf("  %-20s %s %s %6d %6d   %6.1f%%", eng.Name(),
			fmtDur(cold.Compile), fmtDur(warm.Compile), hits, misses, rate)
	}
	return r, nil
}
