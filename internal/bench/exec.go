package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"qcc/internal/backend"
	"qcc/internal/codegen"
	"qcc/internal/vm"
)

// ExecSchema identifies the dispatch-cost report format (BENCH_exec.json).
const ExecSchema = "qcc.bench.exec/v1"

// ExecQuery is one query's fused-vs-unfused execution measurement. The same
// compiled module runs through both dispatch strategies, so the comparison
// isolates dispatch cost: code bytes, decoded program, results, and the
// architecture-neutral counters are identical by construction (enforced by
// the conformance differential).
type ExecQuery struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	PlainNS int64  `json:"plain_ns"` // decoded-switch dispatch (-nofuse)
	FusedNS int64  `json:"fused_ns"` // superinstruction threaded dispatch
	Instrs  int64  `json:"vm_instrs"`
	// FuseInstrs/FuseMicroOps give the module's fusion rate
	// (fuse_micro_ops / fuse_instrs): how many dispatches the fused view
	// performs per decoded instruction.
	FuseInstrs   int64 `json:"fuse_instrs"`
	FuseMicroOps int64 `json:"fuse_micro_ops"`
}

// Speedup is the wall-clock ratio plain/fused (>1 means fusion wins).
func (q ExecQuery) Speedup() float64 {
	if q.FusedNS <= 0 {
		return 0
	}
	return float64(q.PlainNS) / float64(q.FusedNS)
}

// ExecEngine aggregates one engine's dispatch-cost measurements.
type ExecEngine struct {
	Engine  string      `json:"engine"`
	Queries []ExecQuery `json:"queries"`
	// GeomeanSpeedup is the geometric-mean wall-clock speedup of fused
	// over plain dispatch across the engine's queries.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// ExecReport is the full dispatch-cost experiment (BENCH_exec.json).
type ExecReport struct {
	Schema  string       `json:"schema"`
	Arch    string       `json:"arch"`
	SF      float64      `json:"sf"`
	Runs    int          `json:"runs"`
	Engines []ExecEngine `json:"engines"`
	// GeomeanSpeedup pools every (engine, query) pair.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// Write emits the report as indented JSON.
func (r *ExecReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratios {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

// DispatchCost measures the execution-time cost of vm dispatch strategy
// over the TPC-H suite: each query is compiled once per back-end, then the
// very same module object is executed through the plain decoded-switch loop
// and through the fused threaded dispatcher (toggled via Module.SetFuse),
// best-of-cfg.Runs each. Compiling once removes every compile-side variable
// from the comparison. The interpreter is skipped — it executes QIR
// directly and has no vm dispatch to toggle.
func DispatchCost(cfg Config) (*Report, *ExecReport, error) {
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	rep := &Report{Title: fmt.Sprintf("Dispatch cost: fused vs -nofuse (TPC-H, %s, sf=%g, best of %d)", cfg.Arch, cfg.SF, runs)}
	jrep := &ExecReport{Schema: ExecSchema, Arch: cfg.Arch.String(), SF: cfg.SF, Runs: runs}
	var allRatios []float64
	for _, eng := range Engines(cfg.Arch) {
		w, err := loadH(cfg, cfg.SF)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: load tpch: %w", err)
		}
		er := ExecEngine{Engine: eng.Name()}
		var ratios []float64
		w.DB.Checkpoint()
		skipped := false
		for _, q := range HQueries() {
			c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			mh, ok := ex.(interface{ Module() *vm.Module })
			if !ok {
				skipped = true
				break
			}
			mod := mh.Module()
			eq := ExecQuery{Name: q.Name}
			run := func(fuse bool) (time.Duration, error) {
				mod.SetFuse(fuse)
				var best time.Duration
				for r := 0; r < runs+1; r++ {
					w.DB.ResetQueryState()
					startInstr := w.DB.M.Executed
					start := time.Now()
					if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
						return 0, fmt.Errorf("%s/%s: run: %w", eng.Name(), q.Name, err)
					}
					d := time.Since(start)
					// r == 0 is warm-up (first fused call builds the
					// fused view lazily); timing starts at r == 1.
					if r == 1 || (r > 1 && d < best) {
						best = d
					}
					eq.Rows = w.DB.Out.NumRows()
					eq.Instrs = w.DB.M.Executed - startInstr
				}
				return best, nil
			}
			plain, err := run(false)
			if err != nil {
				return nil, nil, err
			}
			fused, err := run(true)
			if err != nil {
				return nil, nil, err
			}
			eq.PlainNS = plain.Nanoseconds()
			eq.FusedNS = fused.Nanoseconds()
			fs := mod.FuseStats()
			eq.FuseInstrs, eq.FuseMicroOps = int64(fs.Instrs), int64(fs.MicroOps)
			er.Queries = append(er.Queries, eq)
			if eq.Speedup() > 0 {
				ratios = append(ratios, eq.Speedup())
			}
			w.DB.ResetToCheckpoint()
		}
		if skipped || len(er.Queries) == 0 {
			continue // no vm module to toggle (interpreter)
		}
		er.GeomeanSpeedup = geomean(ratios)
		allRatios = append(allRatios, ratios...)
		jrep.Engines = append(jrep.Engines, er)

		rep.addf("")
		rep.addf("%s", er.Engine)
		rep.addf("  %-6s %12s %12s %8s %10s %10s %6s", "query",
			"-nofuse", "fused", "speedup", "Mi/s plain", "Mi/s fused", "rate")
		for _, q := range er.Queries {
			mips := func(ns int64) float64 {
				if ns <= 0 {
					return 0
				}
				return float64(q.Instrs) / float64(ns) * 1e3
			}
			rate := 0.0
			if q.FuseInstrs > 0 {
				rate = float64(q.FuseMicroOps) / float64(q.FuseInstrs)
			}
			rep.addf("  %-6s %9.3f ms %9.3f ms %7.2fx %10.1f %10.1f %6.2f",
				q.Name, float64(q.PlainNS)/1e6, float64(q.FusedNS)/1e6,
				q.Speedup(), mips(q.PlainNS), mips(q.FusedNS), rate)
		}
		rep.addf("  geomean speedup: %.2fx", er.GeomeanSpeedup)
	}
	jrep.GeomeanSpeedup = geomean(allRatios)
	rep.addf("")
	rep.addf("overall geomean speedup (all engines, all queries): %.2fx", jrep.GeomeanSpeedup)
	return rep, jrep, nil
}
