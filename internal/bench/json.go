package bench

import (
	"fmt"

	"qcc/internal/obs"
)

// EngineReportOf converts one suite run into the stable report schema.
func EngineReportOf(run *EngineRun) obs.EngineReport {
	er := obs.EngineReport{
		Engine:     run.Engine,
		Funcs:      run.Stats.Funcs,
		CodeBytes:  run.Stats.CodeBytes,
		CompileNS:  run.Compile.Nanoseconds(),
		ExecNS:     run.Exec.Nanoseconds(),
		AllocBytes: run.Stats.AllocBytes,
		AllocObjs:  run.Stats.AllocObjs,
		Phases:     []obs.PhaseReport{},
	}
	for _, p := range run.Stats.Phases {
		er.Phases = append(er.Phases, obs.PhaseReport{Name: p.Name, NS: p.Dur.Nanoseconds()})
	}
	if len(run.Stats.Counters) > 0 {
		er.Counters = make(map[string]int64, len(run.Stats.Counters))
		for k, v := range run.Stats.Counters {
			er.Counters[k] = v
		}
		er.CacheHits = run.Stats.Counters["cache_hits"]
		er.CacheMisses = run.Stats.Counters["cache_misses"]
	}
	for _, q := range run.Queries {
		er.Queries = append(er.Queries, obs.QueryReport{
			Name:             q.Name,
			CompileNS:        q.Compile.Nanoseconds(),
			ExecNS:           q.Exec.Nanoseconds(),
			Rows:             q.Rows,
			Instrs:           q.Executed,
			Branches:         q.Branches,
			MemOps:           q.MemOps,
			FuseInstrs:       q.FuseInstrs,
			FuseMicroOps:     q.FuseMicroOps,
			StaticMemOps:     q.StaticMemOps,
			ChecksEliminated: q.ChecksElim,
			LintFindings:     q.LintFindings,
			AnalysisNS:       q.AnalysisNs,
		})
	}
	return er
}

// JSONReport runs the TPC-H suite on the standard engine lineup and returns
// the machine-readable report behind `qbench -json` (schema
// obs.Schema). Each engine gets a fresh world so heap layout is comparable
// across engines.
func JSONReport(cfg Config) (*obs.Report, error) {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	rep := &obs.Report{
		Schema:   obs.Schema,
		Arch:     cfg.Arch.String(),
		Workload: "tpch",
		SF:       cfg.SF,
		Jobs:     jobs,
		Engines:  []obs.EngineReport{},
	}
	for _, eng := range Engines(cfg.Arch) {
		w, err := loadH(cfg, cfg.SF)
		if err != nil {
			return nil, fmt.Errorf("bench: load tpch: %w", err)
		}
		// Each engine gets its own cache (comparability) and fresh world.
		wrapped := cfg.WrapEngine(eng, cfg.NewCodeCache())
		run, err := RunSuiteExec(w, wrapped, cfg.Arch, HQueries(), cfg.Runs, nil, cfg.BackendOptions(), cfg.ExecSettings())
		if err != nil {
			return nil, err
		}
		rep.Engines = append(rep.Engines, EngineReportOf(run))
	}
	rep.Global = obs.GlobalCounters()
	return rep, nil
}
