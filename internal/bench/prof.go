package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"qcc/internal/backend"
	"qcc/internal/codegen"
	"qcc/internal/prof"
	"qcc/internal/vm"
)

// ProfSchema identifies the profiler-overhead report format (BENCH_prof.json).
const ProfSchema = "qcc.bench.prof/v1"

// ProfQuery is one query's sampling-overhead and attribution measurement:
// the same compiled module runs with the sampler off and on, so the
// comparison isolates the profiler's dispatch-loop cost.
type ProfQuery struct {
	Name  string `json:"name"`
	Rows  int    `json:"rows"`
	OffNS int64  `json:"off_ns"` // sampler off (nil check only)
	OnNS  int64  `json:"on_ns"`  // sampler installed
	// Instrs is the executed VM instruction count of one run.
	Instrs  int64 `json:"vm_instrs"`
	Samples int64 `json:"samples"`
	// AttributionPct is the share of samples resolved to named plan
	// operators (the tentpole acceptance metric).
	AttributionPct float64 `json:"attribution_pct"`
	// TopOperator is the hottest operator path and its sample share.
	TopOperator    string  `json:"top_operator,omitempty"`
	TopOperatorPct float64 `json:"top_operator_pct,omitempty"`
}

// OverheadPct is the sampling-on slowdown in percent (negative = noise).
func (q ProfQuery) OverheadPct() float64 {
	if q.OffNS <= 0 {
		return 0
	}
	return 100 * (float64(q.OnNS)/float64(q.OffNS) - 1)
}

// ProfEngine aggregates one engine's measurements.
type ProfEngine struct {
	Engine  string      `json:"engine"`
	Queries []ProfQuery `json:"queries"`
	// GeomeanOverheadPct is the geometric-mean on/off ratio expressed as a
	// percentage overhead.
	GeomeanOverheadPct float64 `json:"geomean_overhead_pct"`
	// MinAttributionPct is the weakest attribution over the queries.
	MinAttributionPct float64 `json:"min_attribution_pct"`
}

// ProfReport is the profiler experiment output (BENCH_prof.json).
type ProfReport struct {
	Schema string  `json:"schema"`
	Arch   string  `json:"arch"`
	SF     float64 `json:"sf"`
	Runs   int     `json:"runs"`
	// Period is the sampling period in executed VM instructions.
	Period  int64        `json:"period"`
	Engines []ProfEngine `json:"engines"`
	// GeomeanOverheadPct pools every (engine, query) pair.
	GeomeanOverheadPct float64 `json:"geomean_overhead_pct"`
	// MinAttributionPct is the weakest attribution anywhere in the run.
	MinAttributionPct float64 `json:"min_attribution_pct"`
}

// Write emits the report as indented JSON.
func (r *ProfReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ProfileSuite measures the profiler itself over the TPC-H suite: per
// back-end and query, the same compiled module executes with sampling off
// (the residual cost is one nil check per branch checkpoint) and with a
// collector attached at the given period, best-of-cfg.Runs each. Attribution
// comes from the sampling runs. period <= 0 selects vm.DefaultSamplePeriod.
// The interpreter is skipped — it executes QIR directly and has no vm
// dispatch loop to sample.
func ProfileSuite(cfg Config, period int64) (*Report, *ProfReport, error) {
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	if period <= 0 {
		period = vm.DefaultSamplePeriod
	}
	rep := &Report{Title: fmt.Sprintf("Profiler overhead and attribution (TPC-H, %s, sf=%g, period=%d, best of %d)",
		cfg.Arch, cfg.SF, period, runs)}
	jrep := &ProfReport{Schema: ProfSchema, Arch: cfg.Arch.String(), SF: cfg.SF, Runs: runs, Period: period,
		MinAttributionPct: 100}
	var allRatios []float64
	for _, eng := range Engines(cfg.Arch) {
		w, err := loadH(cfg, cfg.SF)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: load tpch: %w", err)
		}
		er := ProfEngine{Engine: eng.Name(), MinAttributionPct: 100}
		var ratios []float64
		w.DB.Checkpoint()
		skipped := false
		for _, q := range HQueries() {
			c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			if _, ok := ex.(interface{ Module() *vm.Module }); !ok {
				skipped = true
				break
			}
			pq := ProfQuery{Name: q.Name}
			col := prof.NewCollector(c.Module)
			smp := &vm.Sampler{Period: period, Hit: col.Hit}
			run := func(s *vm.Sampler) (time.Duration, error) {
				var best time.Duration
				for r := 0; r < runs+1; r++ {
					w.DB.ResetQueryState()
					// (Re-)arm per run so the warm-up run samples too.
					w.DB.M.SetSampler(s)
					startInstr := w.DB.M.Executed
					start := time.Now()
					if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
						return 0, fmt.Errorf("%s/%s: run: %w", eng.Name(), q.Name, err)
					}
					d := time.Since(start)
					w.DB.M.SetSampler(nil)
					if r == 1 || (r > 1 && d < best) {
						best = d
					}
					pq.Rows = w.DB.Out.NumRows()
					pq.Instrs = w.DB.M.Executed - startInstr
				}
				return best, nil
			}
			off, err := run(nil)
			if err != nil {
				return nil, nil, err
			}
			on, err := run(smp)
			if err != nil {
				return nil, nil, err
			}
			pq.OffNS = off.Nanoseconds()
			pq.OnNS = on.Nanoseconds()
			pq.Samples = smp.Samples
			profile := col.Profile(cfg.Arch.String(), q.Name, smp)
			pq.AttributionPct = 100 * profile.AttributionRate()
			var topOp string
			var topN int64
			for op, n := range profile.ByOperator() {
				if op == "?" {
					continue
				}
				if n > topN || (n == topN && op < topOp) {
					topOp, topN = op, n
				}
			}
			if profile.Samples > 0 && topN > 0 {
				pq.TopOperator = topOp
				pq.TopOperatorPct = 100 * float64(topN) / float64(profile.Samples)
			}
			er.Queries = append(er.Queries, pq)
			if pq.AttributionPct < er.MinAttributionPct {
				er.MinAttributionPct = pq.AttributionPct
			}
			if pq.OffNS > 0 && pq.OnNS > 0 {
				ratios = append(ratios, float64(pq.OnNS)/float64(pq.OffNS))
			}
			w.DB.ResetToCheckpoint()
		}
		if skipped || len(er.Queries) == 0 {
			continue // no vm module to sample (interpreter)
		}
		er.GeomeanOverheadPct = 100 * (geomean(ratios) - 1)
		allRatios = append(allRatios, ratios...)
		if er.MinAttributionPct < jrep.MinAttributionPct {
			jrep.MinAttributionPct = er.MinAttributionPct
		}
		jrep.Engines = append(jrep.Engines, er)

		rep.addf("")
		rep.addf("%s", er.Engine)
		rep.addf("  %-6s %12s %12s %9s %8s %7s  %s", "query",
			"sampler off", "sampler on", "overhead", "samples", "attrib", "top operator")
		for _, q := range er.Queries {
			rep.addf("  %-6s %9.3f ms %9.3f ms %+8.2f%% %8d %6.1f%%  %s (%.0f%%)",
				q.Name, float64(q.OffNS)/1e6, float64(q.OnNS)/1e6,
				q.OverheadPct(), q.Samples, q.AttributionPct,
				q.TopOperator, q.TopOperatorPct)
		}
		rep.addf("  geomean overhead: %+.2f%%, min attribution: %.1f%%",
			er.GeomeanOverheadPct, er.MinAttributionPct)
	}
	jrep.GeomeanOverheadPct = 100 * (geomean(allRatios) - 1)
	rep.addf("")
	rep.addf("overall geomean overhead (all engines, all queries): %+.2f%%; min attribution: %.1f%%",
		jrep.GeomeanOverheadPct, jrep.MinAttributionPct)
	return rep, jrep, nil
}
