// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation over the synthetic TPC-DS and TPC-H
// workloads and the virtual targets. Absolute numbers differ from the
// paper's hardware, but the comparisons (who is faster, by what factor) are
// the reproduction target; EXPERIMENTS.md records both.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"qcc/internal/backend"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/interp"
	"qcc/internal/backend/lbe"
	"qcc/internal/backend/pcc"
	"qcc/internal/codegen"
	"qcc/internal/obs"
	"qcc/internal/plan"
	"qcc/internal/rt"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// Config selects workload size and target.
type Config struct {
	Arch vt.Arch
	// SF is the scale factor (see tpcds.Rows / tpch rows for absolute
	// sizes). The paper's SF10/SF100 are far beyond laptop scale; the
	// defaults preserve the relative trends.
	SF float64
	// MemMB sizes the virtual machine memory.
	MemMB int
	// Runs averages execution measurements over this many repetitions.
	Runs int
	// Check runs the machine-code verifier (internal/mcv) on every
	// compilation; its cost shows up as the back-ends' "Check.*" phases.
	Check bool
	// Jobs is the worker count of the parallel compilation driver
	// (internal/backend/pcc). 0 or 1 compiles sequentially — the
	// measurement configuration identical to the seed benchmarks.
	Jobs int
	// CacheMB sizes the content-addressed code cache in MiB per engine;
	// 0 disables caching.
	CacheMB int
	// NoFuse disables the vm's superinstruction fusion, running compiled
	// modules through the plain decoded-switch dispatch loop. Results and
	// architecture-neutral counters are identical either way; only
	// dispatch cost changes.
	NoFuse bool
	// ExecJobs is the morsel-parallel executor's worker count. 0 or 1
	// executes every pipeline sequentially — the seed execution path.
	ExecJobs int
	// Batch compiles eligible scan pipelines to batch-at-a-time kernel
	// calls instead of tuple-at-a-time loops. Results are identical
	// (enforced by the parallel differential); only execution cost and the
	// rt_batch_* counters change.
	Batch bool
}

// ExecSettings returns the executor configuration for suite runs.
func (c Config) ExecSettings() ExecSettings {
	return ExecSettings{Jobs: c.ExecJobs, Batch: c.Batch}
}

// ExecSettings selects how compiled queries execute: tuple-at-a-time
// sequential (zero value, the seed path), batch kernels, and/or the
// morsel-parallel executor.
type ExecSettings struct {
	Jobs  int
	Batch bool
}

// active reports whether the settings deviate from the seed execution path.
func (e ExecSettings) active() bool { return e.Jobs > 1 || e.Batch }

// NewCodeCache returns the configured code cache (nil when disabled).
func (c Config) NewCodeCache() *pcc.Cache {
	if c.CacheMB <= 0 {
		return nil
	}
	return pcc.NewCache(int64(c.CacheMB) << 20)
}

// WrapEngine applies the parallel driver to one engine per the config. With
// Jobs <= 1 and no cache the engine is returned unchanged, so the default
// configuration measures the exact seed code path.
func (c Config) WrapEngine(eng backend.Engine, cache *pcc.Cache) backend.Engine {
	jobs := c.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	if jobs == 1 && cache == nil {
		return eng
	}
	// The check-elimination pass version participates in cache keys:
	// entries compiled under different elimination semantics (different
	// unchecked marks for identical QIR inputs) must never collide.
	return pcc.Wrap(eng, pcc.Config{Jobs: jobs, Cache: cache, VariantTag: codegen.CheckElimVersion})
}

// BackendOptions translates the config into per-compilation options.
func (c Config) BackendOptions() backend.Options {
	return backend.Options{Check: c.Check, NoFuse: c.NoFuse}
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{Arch: vt.VX64, SF: 0.05, MemMB: 384, Runs: 1}
}

// Query is a named plan builder (both workloads satisfy it).
type Query struct {
	Name  string
	Build func() plan.Node
}

// World is a loaded database.
type World struct {
	DB  *rt.DB
	Cat *rt.Catalog
}

// NewWorld creates a machine of the configured size.
func NewWorld(cfg Config) *World {
	m := vm.New(vm.Config{Arch: cfg.Arch, MemSize: cfg.MemMB << 20})
	db := rt.NewDB(m)
	return &World{DB: db, Cat: rt.NewCatalog(db)}
}

// Report is a rendered experiment result.
type Report struct {
	Title string
	Lines []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString(r.Title)
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("=", len(r.Title)))
	sb.WriteByte('\n')
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// QueryMeasurement is one query's compile and execute outcome.
type QueryMeasurement struct {
	Name     string
	Compile  time.Duration
	Exec     time.Duration
	Rows     int
	Executed int64 // VM instructions
	Branches int64 // VM branch instructions
	MemOps   int64 // VM loads + stores
	// FuseInstrs/FuseMicroOps record the module's superinstruction fusion
	// outcome (decoded instructions vs primary-path micro-ops); both are 0
	// for the interpreter or when fusion is disabled. The fusion rate is
	// FuseMicroOps/FuseInstrs.
	FuseInstrs   int64
	FuseMicroOps int64
	// StaticMemOps/ChecksElim summarize the compile-time check-elimination
	// pass over the query's QIR: static loads+stores vs how many had their
	// bounds/null check discharged. LintFindings counts sa diagnostics
	// (expected 0 for generated code); AnalysisNs is analysis+rewrite time.
	StaticMemOps int
	ChecksElim   int
	LintFindings int
	AnalysisNs   int64
}

// EngineRun is the per-engine outcome over a suite.
type EngineRun struct {
	Engine  string
	Stats   *backend.Stats
	Queries []QueryMeasurement
	Compile time.Duration
	Exec    time.Duration
}

// RunSuiteBest runs RunSuite `times` times on fresh worlds and returns the
// run with the lowest total compile time (best-of-N absorbs scheduler and
// allocator noise on shared machines, like the paper's 20-run averages).
func RunSuiteBest(times int, mkWorld func() (*World, error), eng backend.Engine, arch vt.Arch, queries []Query, runs int) (*EngineRun, error) {
	if times < 1 {
		times = 1
	}
	var best *EngineRun
	for i := 0; i < times; i++ {
		w, err := mkWorld()
		if err != nil {
			return nil, err
		}
		r, err := RunSuite(w, eng, arch, queries, runs)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Stats.WallClock() < best.Stats.WallClock() {
			best = r
		}
	}
	return best, nil
}

// RunSuite compiles and executes every query with one engine, resetting
// query state between queries.
func RunSuite(w *World, eng backend.Engine, arch vt.Arch, queries []Query, runs int) (*EngineRun, error) {
	return RunSuiteTraced(w, eng, arch, queries, runs, nil, backend.Options{})
}

// RunSuiteTraced is RunSuite with an optional tracer attached to every
// compilation: each query's compile appears as a "query:<name>" group with
// the back-end's nested phase spans beneath it, and execution as an "exec"
// span. A nil tracer and zero options is RunSuite. opts.Check makes every
// compilation run the machine-code verifier.
func RunSuiteTraced(w *World, eng backend.Engine, arch vt.Arch, queries []Query, runs int, tr *obs.Tracer, opts backend.Options) (*EngineRun, error) {
	return RunSuiteExec(w, eng, arch, queries, runs, tr, opts, ExecSettings{})
}

// RunSuiteExec is RunSuiteTraced with executor settings: es.Batch compiles
// eligible pipelines to batch kernels and es.Jobs > 1 executes table
// pipelines through the morsel-parallel executor (falling back to
// sequential where a pipeline is ineligible or the engine produces no vm
// module). The zero ExecSettings is exactly RunSuiteTraced.
func RunSuiteExec(w *World, eng backend.Engine, arch vt.Arch, queries []Query, runs int, tr *obs.Tracer, opts backend.Options, es ExecSettings) (*EngineRun, error) {
	if runs < 1 {
		runs = 1
	}
	out := &EngineRun{Engine: eng.Name(), Stats: &backend.Stats{}}
	// Persistent executor workers: arenas carved below the checkpoint mark
	// survive the per-query ResetToCheckpoint, so RunParallel re-arms them
	// instead of rebuilding machines and runtimes for every query.
	var pool *codegen.ExecPool
	if es.Jobs > 1 {
		pool = codegen.NewExecPool(w.DB, es.Jobs, 0)
	}
	w.DB.Checkpoint()
	for _, q := range queries {
		qsp := tr.BeginCat("query:"+q.Name, "query")
		var c *codegen.Compiled
		var err error
		if es.active() {
			c, err = codegen.CompileOpts(q.Name, q.Build(), w.Cat,
				codegen.Options{Elim: true, Batch: es.Batch, Parallel: es.Jobs > 1})
		} else {
			c, err = codegen.Compile(q.Name, q.Build(), w.Cat)
		}
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
		}
		ex, stats, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: arch, Trace: tr, Options: opts})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
		}
		// Mirror the back-end's event counters into the trace so exports
		// show them as counter tracks alongside the spans.
		for name, v := range stats.Counters {
			tr.Add(name, v)
		}
		out.Stats.Merge(stats)
		execute := func() error { return codegen.Run(w.DB, w.Cat, c, ex.Call) }
		if es.active() {
			var mod *vm.Module
			if mh, ok := ex.(interface{ Module() *vm.Module }); ok {
				mod = mh.Module()
			}
			execute = func() error {
				return codegen.RunParallel(w.DB, w.Cat, c, ex.Call,
					codegen.ExecOptions{Jobs: es.Jobs, Module: mod, Pool: pool})
			}
		}
		var best time.Duration
		var rows int
		var executed, branches, memops int64
		// Worker arenas allocated by the parallel executor unwind with this
		// mark between repetitions (ResetQueryState alone keeps the heap).
		mark := w.DB.M.HeapMark()
		for r := 0; r < runs; r++ {
			w.DB.ResetQueryState()
			w.DB.M.ResetHeapTo(mark)
			startInstr := w.DB.M.Executed
			startBranch := w.DB.M.Branches
			startMem := w.DB.M.MemOps
			esp := tr.BeginCat("exec", "exec")
			start := time.Now()
			if err := execute(); err != nil {
				return nil, fmt.Errorf("%s/%s: run: %w", eng.Name(), q.Name, err)
			}
			d := time.Since(start)
			esp.End()
			if r == 0 || d < best {
				best = d
			}
			rows = w.DB.Out.NumRows()
			executed = w.DB.M.Executed - startInstr
			branches = w.DB.M.Branches - startBranch
			memops = w.DB.M.MemOps - startMem
		}
		qsp.End()
		var fuseInstrs, fuseMicro int64
		if mh, ok := ex.(interface{ Module() *vm.Module }); ok {
			if mod := mh.Module(); mod != nil && mod.FuseEnabled() {
				fs := mod.FuseStats()
				fuseInstrs, fuseMicro = int64(fs.Instrs), int64(fs.MicroOps)
			}
		}
		out.Queries = append(out.Queries, QueryMeasurement{
			// WallClock: elapsed compile time — equals stats.Total for
			// sequential compiles, the true elapsed time under the
			// parallel driver (where the phase sum overstates it).
			Name: q.Name, Compile: stats.WallClock(), Exec: best, Rows: rows,
			Executed: executed, Branches: branches, MemOps: memops,
			FuseInstrs: fuseInstrs, FuseMicroOps: fuseMicro,
			StaticMemOps: c.Elim.MemOps, ChecksElim: c.Elim.Unchecked,
			LintFindings: len(c.Elim.Findings), AnalysisNs: c.Elim.AnalysisNs,
		})
		out.Compile += stats.WallClock()
		out.Exec += best
		w.DB.ResetToCheckpoint()
	}
	return out, nil
}

// fmtDur renders a duration in milliseconds with fixed precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%8.2f ms", float64(d.Microseconds())/1000)
}

// phaseTable renders a stats phase breakdown sorted by share.
func phaseTable(r *Report, s *backend.Stats) {
	total := s.Total
	if total == 0 {
		for _, p := range s.Phases {
			total += p.Dur
		}
	}
	phases := append([]backend.Phase{}, s.Phases...)
	sort.Slice(phases, func(i, j int) bool { return phases[i].Dur > phases[j].Dur })
	for _, p := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(p.Dur) / float64(total)
		}
		r.addf("  %-24s %s  %5.1f%%", p.Name, fmtDur(p.Dur), share)
	}
	r.addf("  %-24s %s", "TOTAL", fmtDur(total))
}

// Engines returns the standard engine lineup for a target (Table III order).
func Engines(arch vt.Arch) []backend.Engine {
	es := []backend.Engine{interp.New()}
	if arch == vt.VX64 {
		es = append(es, direct.New())
	}
	es = append(es, clift.New(), lbe.NewCheap(), lbe.NewOpt(), cbe.New())
	return es
}
