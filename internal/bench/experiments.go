package bench

import (
	"fmt"
	"sort"
	"time"

	"qcc/internal/backend"
	"qcc/internal/backend/cbe"
	"qcc/internal/backend/clift"
	"qcc/internal/backend/direct"
	"qcc/internal/backend/lbe"
	"qcc/internal/tpcds"
	"qcc/internal/tpch"
	"qcc/internal/vt"
)

// DSQueries adapts the TPC-DS suite.
func DSQueries() []Query {
	var qs []Query
	for _, q := range tpcds.Queries() {
		qs = append(qs, Query{Name: q.Name, Build: q.Build})
	}
	return qs
}

// HQueries adapts the TPC-H suite.
func HQueries() []Query {
	var qs []Query
	for _, q := range tpch.Queries() {
		qs = append(qs, Query{Name: q.Name, Build: q.Build})
	}
	return qs
}

func loadDS(cfg Config) (*World, error) {
	w := NewWorld(cfg)
	if err := tpcds.Load(w.Cat, cfg.SF); err != nil {
		return nil, err
	}
	return w, nil
}

func loadH(cfg Config, sf float64) (*World, error) {
	w := NewWorld(cfg)
	if err := tpch.Load(w.Cat, sf); err != nil {
		return nil, err
	}
	return w, nil
}

// NewWorldLoaded creates a world with the named workload ("tpch" or
// "tpcds") loaded at cfg.SF (exported for cmd/qtrace).
func NewWorldLoaded(cfg Config, workload string) (*World, error) {
	switch workload {
	case "tpch":
		return loadH(cfg, cfg.SF)
	case "tpcds":
		return loadDS(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown workload %q", workload)
	}
}

// Table1 reproduces the GCC/C compile-time breakdown over all TPC-DS
// queries (paper Table I).
func Table1(cfg Config) (*Report, error) {
	w, err := loadDS(cfg)
	if err != nil {
		return nil, err
	}
	run, err := RunSuite(w, cbe.New(), cfg.Arch, DSQueries(), 0)
	if err != nil {
		return nil, err
	}
	r := &Report{Title: fmt.Sprintf("Table I: GCC/C back-end compile-time breakdown (%s, all TPC-DS)", cfg.Arch)}
	phaseTable(r, run.Stats)
	r.addf("  functions compiled: %d", run.Stats.Funcs)
	return r, nil
}

// Fig2 reproduces the LLVM compile-time breakdown, cheap vs optimized
// (paper Figure 2).
func Fig2(cfg Config) (*Report, error) {
	r := &Report{Title: fmt.Sprintf("Figure 2: LLVM compile-time breakdown (%s, all TPC-DS)", cfg.Arch)}
	for _, mode := range []struct {
		name string
		eng  backend.Engine
	}{
		{"cheap (-O0, FastISel, fast RA)", lbe.NewCheap()},
		{"optimized (-O2, SelectionDAG, greedy RA)", lbe.NewOpt()},
	} {
		w, err := loadDS(cfg)
		if err != nil {
			return nil, err
		}
		run, err := RunSuite(w, mode.eng, cfg.Arch, DSQueries(), 0)
		if err != nil {
			return nil, err
		}
		r.addf("%s:", mode.name)
		phaseTable(r, run.Stats)
		for _, c := range []string{"fastisel_fallbacks", "dag_nodes", "knownbits_queries", "passes_run"} {
			if v, ok := run.Stats.Counters[c]; ok {
				r.addf("  %-24s %d", c, v)
			}
		}
		r.Lines = append(r.Lines, "")
	}
	return r, nil
}

// Fig3 compares FastISel, SelectionDAG and GlobalISel on the va64 target
// (paper Figure 3, AArch64).
func Fig3(cfg Config) (*Report, error) {
	cfg.Arch = vt.VA64
	r := &Report{Title: "Figure 3: LLVM instruction selectors on va64 (all TPC-DS)"}
	modes := []struct {
		name string
		eng  backend.Engine
	}{
		{"FastISel (cheap)", lbe.NewCheap()},
		{"GlobalISel (cheap)", lbe.NewWithConfig(lbe.Config{ISel: lbe.ISelGlobal})},
		{"SelectionDAG (optimized)", lbe.NewOpt()},
		{"GlobalISel (optimized)", lbe.NewWithConfig(lbe.Config{Opt: true, ISel: lbe.ISelGlobal})},
	}
	var totals []time.Duration
	var isels []time.Duration
	for _, mode := range modes {
		run, err := RunSuiteBest(3, func() (*World, error) { return loadDS(cfg) },
			mode.eng, cfg.Arch, DSQueries(), 0)
		if err != nil {
			return nil, err
		}
		totals = append(totals, run.Stats.Total)
		isels = append(isels, run.Stats.PhaseDur("ISel"))
		r.addf("%-28s total %s   ISel %s", mode.name,
			fmtDur(run.Stats.Total), fmtDur(run.Stats.PhaseDur("ISel")))
	}
	if isels[0] > 0 {
		r.addf("GlobalISel cheap ISel is %.2fx FastISel ISel", float64(isels[1])/float64(isels[0]))
	}
	if isels[3] > 0 {
		r.addf("GlobalISel opt ISel is %.2fx SelectionDAG ISel", float64(isels[3])/float64(isels[2]))
	}
	r.addf("cheap total change with GlobalISel: %+.0f%%",
		100*(float64(totals[1])/float64(totals[0])-1))
	r.addf("opt total change with GlobalISel: %+.0f%%",
		100*(float64(totals[3])/float64(totals[2])-1))
	return r, nil
}

// Fig4 reproduces the Cranelift compile-time breakdown (paper Figure 4).
func Fig4(cfg Config) (*Report, error) {
	w, err := loadDS(cfg)
	if err != nil {
		return nil, err
	}
	run, err := RunSuite(w, clift.New(), cfg.Arch, DSQueries(), 0)
	if err != nil {
		return nil, err
	}
	r := &Report{Title: fmt.Sprintf("Figure 4: Cranelift compile-time breakdown (%s, all TPC-DS)", cfg.Arch)}
	phaseTable(r, run.Stats)
	for _, c := range []string{"bundles", "spilled", "btree_inserts"} {
		if v, ok := run.Stats.Counters[c]; ok {
			r.addf("  %-24s %d", c, v)
		}
	}
	return r, nil
}

// Fig5 reproduces the DirectEmit breakdown (paper Figure 5).
func Fig5(cfg Config) (*Report, error) {
	cfg.Arch = vt.VX64
	w, err := loadDS(cfg)
	if err != nil {
		return nil, err
	}
	run, err := RunSuite(w, direct.New(), cfg.Arch, DSQueries(), 0)
	if err != nil {
		return nil, err
	}
	r := &Report{Title: "Figure 5: DirectEmit compile-time breakdown (vx64, all TPC-DS)"}
	phaseTable(r, run.Stats)
	return r, nil
}

// Table2 reproduces the Cranelift custom-instruction run-time ablation
// (paper Table II): speedup from enabling each custom instruction.
func Table2(cfg Config) (*Report, error) {
	r := &Report{Title: fmt.Sprintf("Table II: Cranelift custom instructions, execution speedup (%s, TPC-DS sf=%g)", cfg.Arch, cfg.SF)}
	baseline, err := table2Run(cfg, clift.Options{})
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		opts clift.Options
	}{
		{"crc32", clift.Options{NoCrc32: true}},
		{"overflow arithmetic", clift.Options{NoOverflow: true}},
		{"wide multiply", clift.Options{NoMulWide: true}},
		{"all disabled", clift.Options{NoCrc32: true, NoOverflow: true, NoMulWide: true}},
	}
	r.addf("%-22s %10s %10s", "instruction", "avg", "max")
	for _, c := range cases {
		without, err := table2Run(cfg, c.opts)
		if err != nil {
			return nil, err
		}
		// Speedup of having the instruction = time(without)/time(with).
		avg := float64(sumExec(without)) / float64(sumExec(baseline))
		maxv := 0.0
		for i := range baseline.Queries {
			if baseline.Queries[i].Exec == 0 {
				continue
			}
			s := float64(without.Queries[i].Exec) / float64(baseline.Queries[i].Exec)
			if s > maxv {
				maxv = s
			}
		}
		r.addf("%-22s %9.3fx %9.3fx", c.name, avg, maxv)
	}
	return r, nil
}

func table2Run(cfg Config, opts clift.Options) (*EngineRun, error) {
	w, err := loadDS(cfg)
	if err != nil {
		return nil, err
	}
	return RunSuite(w, clift.NewWithOptions(opts), cfg.Arch, DSQueries(), cfg.Runs)
}

func sumExec(r *EngineRun) time.Duration { return r.Exec }

// Table3 reproduces the compile-time and execution comparison of all
// back-ends (paper Table III), optionally per-query (figure 6 data).
func Table3(cfg Config, perQuery bool) (*Report, error) {
	r := &Report{Title: fmt.Sprintf("Table III: back-end comparison (%s, TPC-DS sf=%g)", cfg.Arch, cfg.SF)}
	r.addf("%-16s %12s %12s %16s", "back-end", "compile", "exec", "VM instructions")
	for _, eng := range Engines(cfg.Arch) {
		run, err := RunSuiteBest(2, func() (*World, error) { return loadDS(cfg) },
			eng, cfg.Arch, DSQueries(), cfg.Runs)
		if err != nil {
			return nil, err
		}
		var instr int64
		for _, q := range run.Queries {
			instr += q.Executed
		}
		r.addf("%-16s %s %s %16d", run.Engine, fmtDur(run.Compile), fmtDur(run.Exec), instr)
		if perQuery {
			for _, q := range run.Queries {
				r.addf("    %-8s comp %s exec %s rows %d", q.Name, fmtDur(q.Compile), fmtDur(q.Exec), q.Rows)
			}
		}
	}
	return r, nil
}

// Fig7 reproduces the best-back-end-per-query trade-off on TPC-H at two
// scale factors (paper Figure 7).
func Fig7(cfg Config, sfSmall, sfLarge float64) (*Report, error) {
	cfg.Arch = vt.VX64
	r := &Report{Title: fmt.Sprintf("Figure 7: best back-end by compile+execution time (TPC-H, vx64, sf=%g and sf=%g)", sfSmall, sfLarge)}
	for _, sf := range []float64{sfSmall, sfLarge} {
		runs := map[string]*EngineRun{}
		var order []string
		for _, eng := range Engines(vt.VX64) {
			w, err := loadH(cfg, sf)
			if err != nil {
				return nil, err
			}
			run, err := RunSuite(w, eng, vt.VX64, HQueries(), cfg.Runs)
			if err != nil {
				return nil, err
			}
			runs[run.Engine] = run
			order = append(order, run.Engine)
		}
		r.addf("scale factor %g:", sf)
		wins := map[string]int{}
		for qi := range runs[order[0]].Queries {
			best := ""
			var bestT time.Duration
			for _, name := range order {
				q := runs[name].Queries[qi]
				t := q.Compile + q.Exec
				if best == "" || t < bestT {
					best, bestT = name, t
				}
			}
			wins[best]++
			r.addf("  %-6s best: %-14s (%s)", runs[order[0]].Queries[qi].Name, best, fmtDur(bestT))
		}
		var names []string
		for n := range wins {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r.addf("  %-16s wins %d queries", n, wins[n])
		}
		r.Lines = append(r.Lines, "")
	}
	return r, nil
}

// AblateLLVM reproduces the Sec. V-A2 compile-time measures: scalar pairs
// vs {i64,i64} structs, Small-PIC vs large code model, and TargetMachine
// caching, plus the FastISel fallback census of Sec. V-B3b.
func AblateLLVM(cfg Config) (*Report, error) {
	r := &Report{Title: fmt.Sprintf("LLVM compile-time ablations (%s, all TPC-DS)", cfg.Arch)}
	cases := []struct {
		name string
		cfgE lbe.Config
	}{
		{"baseline (scalar pairs, Small-PIC, TM cache)", lbe.Config{}},
		{"{i64,i64} structs for strings", lbe.Config{StructPairs: true}},
		{"large code model", lbe.Config{LargeCodeModel: true}},
		{"no TargetMachine cache", lbe.Config{NoTMCache: true}},
		{"optimized baseline", lbe.Config{Opt: true}},
		{"optimized + structs", lbe.Config{Opt: true, StructPairs: true}},
	}
	var base time.Duration
	for i, c := range cases {
		run, err := RunSuiteBest(3, func() (*World, error) { return loadDS(cfg) },
			lbe.NewWithConfig(c.cfgE), cfg.Arch, DSQueries(), 0)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = run.Stats.Total
		}
		rel := ""
		if i > 0 && !c.cfgE.Opt && base > 0 {
			rel = fmt.Sprintf("  (%+.1f%% vs baseline)", 100*(float64(run.Stats.Total)/float64(base)-1))
		}
		r.addf("%-44s %s%s", c.name, fmtDur(run.Stats.Total), rel)
		fb := run.Stats.Counters["fastisel_fallbacks"]
		if fb > 0 {
			r.addf("    fallbacks: %d (calls %d, i128 %d, struct %d, other %d)",
				fb,
				run.Stats.Counters["fastisel_fallback_call"],
				run.Stats.Counters["fastisel_fallback_i128"],
				run.Stats.Counters["fastisel_fallback_struct"],
				run.Stats.Counters["fastisel_fallback_other"])
		}
	}
	return r, nil
}
