package bench

import (
	"testing"

	"qcc/internal/backend"
	"qcc/internal/codegen"
	"qcc/internal/prof"
	"qcc/internal/vm"
	"qcc/internal/vt"
)

// TestProfileAttribution drives the whole attribution chain — codegen
// provenance, back-end PC-range maps, dispatch-loop sampling, collector
// resolution — on TPC-H Q1 and Q6 for both target architectures and checks
// the tentpole acceptance criterion: at least 95% of sampled VM time
// resolves to named plan operators.
func TestProfileAttribution(t *testing.T) {
	for _, arch := range []vt.Arch{vt.VX64, vt.VA64} {
		for _, fuse := range []bool{true, false} {
			cfg := DefaultConfig()
			cfg.Arch = arch
			cfg.SF = 0.01
			cfg.NoFuse = !fuse
			w, err := loadH(cfg, cfg.SF)
			if err != nil {
				t.Fatalf("load tpch: %v", err)
			}
			eng := Engines(arch)[1] // first compiling engine (direct or clift)
			w.DB.Checkpoint()
			for _, q := range HQueries() {
				if q.Name != "q1" && q.Name != "q6" {
					continue
				}
				c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
				if err != nil {
					t.Fatalf("%s: %v", q.Name, err)
				}
				ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: arch, Options: cfg.BackendOptions()})
				if err != nil {
					t.Fatalf("%s: %v", q.Name, err)
				}
				col := prof.NewCollector(c.Module)
				s := &vm.Sampler{Period: 512, Hit: col.Hit}
				w.DB.M.SetSampler(s)
				if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
					t.Fatalf("%s: run: %v", q.Name, err)
				}
				w.DB.M.SetSampler(nil)
				p := col.Profile(arch.String(), q.Name, s)
				if p.Samples < 20 {
					t.Fatalf("%s/%s fuse=%v: only %d samples; period too long for the workload",
						arch, q.Name, fuse, p.Samples)
				}
				if rate := p.AttributionRate(); rate < 0.95 {
					t.Errorf("%s/%s fuse=%v: attribution %.1f%% < 95%% (samples=%d unattributed=%d)",
						arch, q.Name, fuse, 100*rate, p.Samples, p.Unattributed)
					for _, f := range p.Funcs {
						t.Logf("  %s op=%q samples=%d", f.Name, f.Operator, f.Samples)
					}
				}
				// Q1's time must land in its scan/groupby pipeline.
				ops := p.ByOperator()
				named := int64(0)
				for op, n := range ops {
					if op != "?" {
						named += n
					}
				}
				if named == 0 {
					t.Fatalf("%s/%s: no samples attributed to any operator", arch, q.Name)
				}
				w.DB.ResetQueryState()
			}
			w.DB.ResetToCheckpoint()
		}
	}
}

// TestSamplingDeterministic checks that instruction-count epochs make the
// sample set a pure function of the executed program: two identical runs
// yield identical sample counts.
func TestSamplingDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SF = 0.01
	w, err := loadH(cfg, cfg.SF)
	if err != nil {
		t.Fatalf("load tpch: %v", err)
	}
	eng := Engines(cfg.Arch)[1]
	q := HQueries()[0]
	c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
	if err != nil {
		t.Fatal(err)
	}
	ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
	if err != nil {
		t.Fatal(err)
	}
	capture := func() int64 {
		col := prof.NewCollector(c.Module)
		s := &vm.Sampler{Period: 1024, Hit: col.Hit}
		w.DB.ResetQueryState()
		w.DB.M.SetSampler(s)
		if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
			t.Fatalf("run: %v", err)
		}
		w.DB.M.SetSampler(nil)
		return s.Samples
	}
	a, b := capture(), capture()
	if a == 0 || a != b {
		t.Fatalf("sampling not deterministic: %d vs %d samples", a, b)
	}
}
