package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"qcc/internal/backend"
	"qcc/internal/codegen"
	"qcc/internal/qir"
)

// CheckElimSchema identifies the check-elimination report format
// (BENCH_checkelim.json).
const CheckElimSchema = "qcc.bench.checkelim/v1"

// CheckElimQuery is one query's checked-vs-unchecked execution measurement:
// the same plan compiled twice, once as produced (statically proven checks
// eliminated) and once with every MemUnchecked mark stripped (all runtime
// checks kept), so the delta isolates what the eliminated checks cost.
type CheckElimQuery struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	// StaticMemOps/Eliminated are the analysis outcome on the query's QIR.
	StaticMemOps int     `json:"static_mem_ops"`
	Eliminated   int     `json:"checks_eliminated"`
	Ratio        float64 `json:"elim_ratio"`
	AnalysisNS   int64   `json:"analysis_ns"`
	CheckedNS    int64   `json:"checked_ns"`   // all checks kept
	UncheckedNS  int64   `json:"unchecked_ns"` // proven checks eliminated
}

// Speedup is the wall-clock ratio checked/unchecked (>1 means elimination
// wins).
func (q CheckElimQuery) Speedup() float64 {
	if q.UncheckedNS <= 0 {
		return 0
	}
	return float64(q.CheckedNS) / float64(q.UncheckedNS)
}

// CheckElimEngine aggregates one engine's measurements.
type CheckElimEngine struct {
	Engine         string           `json:"engine"`
	Queries        []CheckElimQuery `json:"queries"`
	GeomeanSpeedup float64          `json:"geomean_speedup"`
}

// CheckElimReport is the full check-elimination experiment
// (BENCH_checkelim.json).
type CheckElimReport struct {
	Schema      string            `json:"schema"`
	Arch        string            `json:"arch"`
	SF          float64           `json:"sf"`
	Runs        int               `json:"runs"`
	ElimVersion string            `json:"elim_version"`
	Engines     []CheckElimEngine `json:"engines"`
	// GeomeanSpeedup pools every (engine, query) pair.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// Write emits the report as indented JSON.
func (r *CheckElimReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// stripUnchecked removes every MemUnchecked mark from the module, restoring
// the fully checked lowering.
func stripUnchecked(m *qir.Module) {
	for _, f := range m.Funcs {
		for i := range f.Instrs {
			// Aux is overloaded per op (branch targets, param indices);
			// the MemUnchecked bit only exists on loads and stores.
			if f.Instrs[i].Unchecked() {
				f.Instrs[i].Aux &^= qir.MemUnchecked
			}
		}
	}
}

// CheckElimCost measures what the compile-time check elimination buys at
// execution time over the TPC-H suite: each query is compiled twice per
// back-end — once as the pass produced it and once with the unchecked marks
// stripped — and both variants execute best-of-cfg.Runs on the same world.
// Everything else (plan, QIR, catalog layout, back-end) is identical, so the
// delta is the runtime cost of the statically discharged bounds/null checks.
func CheckElimCost(cfg Config) (*Report, *CheckElimReport, error) {
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	rep := &Report{Title: fmt.Sprintf("Check elimination: checked vs unchecked (TPC-H, %s, sf=%g, best of %d)", cfg.Arch, cfg.SF, runs)}
	jrep := &CheckElimReport{Schema: CheckElimSchema, Arch: cfg.Arch.String(), SF: cfg.SF, Runs: runs,
		ElimVersion: codegen.CheckElimVersion}
	var allRatios []float64
	for _, eng := range Engines(cfg.Arch) {
		w, err := loadH(cfg, cfg.SF)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: load tpch: %w", err)
		}
		er := CheckElimEngine{Engine: eng.Name()}
		var ratios []float64
		w.DB.Checkpoint()
		for _, q := range HQueries() {
			eq := CheckElimQuery{Name: q.Name}
			// One measurement: compile the plan, optionally strip the
			// unchecked marks, run best-of-runs (+1 warm-up).
			measure := func(strip bool) (time.Duration, error) {
				c, err := codegen.Compile(q.Name, q.Build(), w.Cat)
				if err != nil {
					return 0, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
				}
				if strip {
					stripUnchecked(c.Module)
				} else {
					eq.StaticMemOps = c.Elim.MemOps
					eq.Eliminated = c.Elim.Unchecked
					eq.Ratio = c.Elim.Ratio()
					eq.AnalysisNS = c.Elim.AnalysisNs
				}
				ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
				if err != nil {
					return 0, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
				}
				var best time.Duration
				for r := 0; r < runs+1; r++ {
					w.DB.ResetQueryState()
					start := time.Now()
					if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
						return 0, fmt.Errorf("%s/%s: run: %w", eng.Name(), q.Name, err)
					}
					d := time.Since(start)
					if r == 1 || (r > 1 && d < best) {
						best = d
					}
					eq.Rows = w.DB.Out.NumRows()
				}
				return best, nil
			}
			unchecked, err := measure(false)
			if err != nil {
				return nil, nil, err
			}
			checked, err := measure(true)
			if err != nil {
				return nil, nil, err
			}
			eq.CheckedNS = checked.Nanoseconds()
			eq.UncheckedNS = unchecked.Nanoseconds()
			er.Queries = append(er.Queries, eq)
			if eq.Speedup() > 0 {
				ratios = append(ratios, eq.Speedup())
			}
			w.DB.ResetToCheckpoint()
		}
		er.GeomeanSpeedup = geomean(ratios)
		allRatios = append(allRatios, ratios...)
		jrep.Engines = append(jrep.Engines, er)

		rep.addf("")
		rep.addf("%s", er.Engine)
		rep.addf("  %-6s %8s %8s %7s %12s %12s %8s", "query",
			"memops", "elim", "ratio", "checked", "unchecked", "speedup")
		for _, q := range er.Queries {
			rep.addf("  %-6s %8d %8d %6.1f%% %9.3f ms %9.3f ms %7.2fx",
				q.Name, q.StaticMemOps, q.Eliminated, 100*q.Ratio,
				float64(q.CheckedNS)/1e6, float64(q.UncheckedNS)/1e6, q.Speedup())
		}
		rep.addf("  geomean speedup: %.2fx", er.GeomeanSpeedup)
	}
	jrep.GeomeanSpeedup = geomean(allRatios)
	rep.addf("")
	rep.addf("overall geomean speedup (all engines, all queries): %.2fx", jrep.GeomeanSpeedup)
	return rep, jrep, nil
}
