package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"qcc/internal/backend"
	"qcc/internal/codegen"
	"qcc/internal/obs"
	"qcc/internal/vm"
)

// BatchSchema identifies the batch/parallel execution report format
// (BENCH_batch.json).
const BatchSchema = "qcc.bench.batch/v1"

// ScanHeavy lists the scan-dominated TPC-H queries the batch kernels target
// (single-pipeline aggregations over lineitem); the executor gate measures
// these.
var ScanHeavy = map[string]bool{"q1": true, "q6": true}

// BatchQuery is one query measured under three execution regimes on the
// same engine: sequential tuple-at-a-time (the seed path and PR-6
// baseline), sequential with batch kernels, and the morsel-parallel
// executor with batch kernels at the report's worker count.
type BatchQuery struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	// TupleNS is the sequential tuple-at-a-time baseline.
	TupleNS int64 `json:"tuple_ns"`
	// BatchNS is sequential (1 worker) with batch kernels.
	BatchNS int64 `json:"batch_ns"`
	// ParNS is the morsel-parallel executor with batch kernels.
	ParNS int64 `json:"par_ns"`
	// BatchMode reports whether the compiler actually lowered a pipeline
	// of this query to batch kernels (ineligible queries run tuple code
	// under every regime, so their ratios measure executor overhead only).
	BatchMode bool `json:"batch_mode"`
	// ParallelRan reports whether the executor actually dispatched morsels
	// to workers (guards against silently-sequential "speedups").
	ParallelRan bool `json:"parallel_ran"`
}

// BatchSpeedup is tuple/batch at one worker (>1: batch kernels win).
func (q BatchQuery) BatchSpeedup() float64 {
	if q.BatchNS <= 0 {
		return 0
	}
	return float64(q.TupleNS) / float64(q.BatchNS)
}

// ParSpeedup is tuple/parallel (>1: the full batch+morsel stack wins).
func (q BatchQuery) ParSpeedup() float64 {
	if q.ParNS <= 0 {
		return 0
	}
	return float64(q.TupleNS) / float64(q.ParNS)
}

// BatchEngine aggregates one engine's measurements.
type BatchEngine struct {
	Engine  string       `json:"engine"`
	Queries []BatchQuery `json:"queries"`
	// GeomeanBatch pools BatchSpeedup over all queries; GeomeanPar pools
	// ParSpeedup; ScanHeavyPar pools ParSpeedup over the scan-heavy subset
	// (q1/q6) — the headline number and the CI gate's input.
	GeomeanBatch float64 `json:"geomean_batch_speedup"`
	GeomeanPar   float64 `json:"geomean_par_speedup"`
	ScanHeavyPar float64 `json:"scan_heavy_par_speedup"`
}

// BatchReport is the full batch/parallel execution experiment
// (BENCH_batch.json).
type BatchReport struct {
	Schema  string        `json:"schema"`
	Arch    string        `json:"arch"`
	SF      float64       `json:"sf"`
	Runs    int           `json:"runs"`
	Jobs    int           `json:"jobs"`
	Engines []BatchEngine `json:"engines"`
	// Pooled geomeans across engines.
	GeomeanPar   float64 `json:"geomean_par_speedup"`
	ScanHeavyPar float64 `json:"scan_heavy_par_speedup"`
}

// Write emits the report as indented JSON.
func (r *BatchReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BatchCost measures what batch-at-a-time kernels and the morsel-parallel
// executor buy at execution time over the TPC-H suite. Per engine and
// query, three regimes run best-of-cfg.Runs on the same world: the
// sequential tuple path (identical to the seed benchmarks), batch kernels
// at one worker, and batch kernels under the parallel executor at
// cfg.ExecJobs workers (default 4). The parallel differential guarantees
// all three produce identical results, so the ratios isolate execution
// cost. Engines without a vm module (the interpreter) are skipped — the
// executor's workers replay generated code on worker machines.
func BatchCost(cfg Config) (*Report, *BatchReport, error) {
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	jobs := cfg.ExecJobs
	if jobs <= 1 {
		jobs = 4
	}
	rep := &Report{Title: fmt.Sprintf("Batch kernels + morsel parallelism (TPC-H, %s, sf=%g, %d workers, best of %d)",
		cfg.Arch, cfg.SF, jobs, runs)}
	jrep := &BatchReport{Schema: BatchSchema, Arch: cfg.Arch.String(), SF: cfg.SF, Runs: runs, Jobs: jobs}
	var allPar, allScanHeavy []float64
	for _, eng := range Engines(cfg.Arch) {
		w, err := loadH(cfg, cfg.SF)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: load tpch: %w", err)
		}
		er := BatchEngine{Engine: eng.Name()}
		var batchRatios, parRatios, scanHeavy []float64
		// Persistent worker pool for the parallel regime, carved below the
		// checkpoint so it survives per-query resets; the 1-worker batch
		// regime stays pool-free (nothing to pool at one worker).
		pool := codegen.NewExecPool(w.DB, jobs, 0)
		w.DB.Checkpoint()
		skipped := false
		for _, q := range HQueries() {
			// One tuple-mode compile (the baseline) and one batch+parallel
			// compile per query; both modules stay live until the final
			// checkpoint reset.
			ct, err := codegen.Compile(q.Name, q.Build(), w.Cat)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			ext, _, err := eng.Compile(ct.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			if _, ok := ext.(interface{ Module() *vm.Module }); !ok {
				skipped = true
				break
			}
			cb, err := codegen.CompileOpts(q.Name, q.Build(), w.Cat,
				codegen.Options{Elim: true, Batch: true, Parallel: true})
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			exb, _, err := eng.Compile(cb.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			mod := exb.(interface{ Module() *vm.Module }).Module()

			bq := BatchQuery{Name: q.Name}
			for _, f := range cb.Module.Funcs {
				if f.Prov.Mode == "batch" {
					bq.BatchMode = true
				}
			}

			// Worker arenas and sink state unwind to this mark between
			// repetitions; interned strings from both compiles stay below.
			mark := w.DB.M.HeapMark()
			measure := func(run func() error) (time.Duration, error) {
				var best time.Duration
				for r := 0; r < runs+1; r++ {
					w.DB.ResetQueryState()
					w.DB.M.ResetHeapTo(mark)
					start := time.Now()
					if err := run(); err != nil {
						return 0, fmt.Errorf("%s/%s: run: %w", eng.Name(), q.Name, err)
					}
					d := time.Since(start)
					// r == 0 warms caches; timing starts at r == 1.
					if r == 1 || (r > 1 && d < best) {
						best = d
					}
					bq.Rows = w.DB.Out.NumRows()
				}
				return best, nil
			}
			// Engine compilation binds its module's runtime-call table onto
			// the shared machine; with two live modules per query, re-bind
			// before switching between them.
			if err := w.DB.Bind(ct.Module.RTNames); err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			tuple, err := measure(func() error { return codegen.Run(w.DB, w.Cat, ct, ext.Call) })
			if err != nil {
				return nil, nil, err
			}
			if err := w.DB.Bind(cb.Module.RTNames); err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", eng.Name(), q.Name, err)
			}
			batch1, err := measure(func() error {
				return codegen.RunParallel(w.DB, w.Cat, cb, exb.Call,
					codegen.ExecOptions{Jobs: 1, Module: mod})
			})
			if err != nil {
				return nil, nil, err
			}
			workersBefore := obs.NewCounter("exec_workers").Load()
			par, err := measure(func() error {
				return codegen.RunParallel(w.DB, w.Cat, cb, exb.Call,
					codegen.ExecOptions{Jobs: jobs, Module: mod, Pool: pool})
			})
			if err != nil {
				return nil, nil, err
			}
			bq.ParallelRan = obs.NewCounter("exec_workers").Load() > workersBefore
			bq.TupleNS = tuple.Nanoseconds()
			bq.BatchNS = batch1.Nanoseconds()
			bq.ParNS = par.Nanoseconds()
			er.Queries = append(er.Queries, bq)
			if bq.BatchSpeedup() > 0 {
				batchRatios = append(batchRatios, bq.BatchSpeedup())
			}
			if bq.ParSpeedup() > 0 {
				parRatios = append(parRatios, bq.ParSpeedup())
				if ScanHeavy[bq.Name] {
					scanHeavy = append(scanHeavy, bq.ParSpeedup())
				}
			}
			w.DB.ResetToCheckpoint()
		}
		if skipped || len(er.Queries) == 0 {
			continue // no vm module for workers to execute (interpreter)
		}
		er.GeomeanBatch = geomean(batchRatios)
		er.GeomeanPar = geomean(parRatios)
		er.ScanHeavyPar = geomean(scanHeavy)
		allPar = append(allPar, parRatios...)
		allScanHeavy = append(allScanHeavy, scanHeavy...)
		jrep.Engines = append(jrep.Engines, er)

		rep.addf("")
		rep.addf("%s", er.Engine)
		rep.addf("  %-6s %12s %12s %12s %8s %8s %6s %4s", "query",
			"tuple", "batch", fmt.Sprintf("par(%d)", jobs), "batch-x", "par-x", "mode", "par?")
		for _, q := range er.Queries {
			mode := "tuple"
			if q.BatchMode {
				mode = "batch"
			}
			ran := "-"
			if q.ParallelRan {
				ran = "y"
			}
			rep.addf("  %-6s %9.3f ms %9.3f ms %9.3f ms %7.2fx %7.2fx %6s %4s",
				q.Name, float64(q.TupleNS)/1e6, float64(q.BatchNS)/1e6, float64(q.ParNS)/1e6,
				q.BatchSpeedup(), q.ParSpeedup(), mode, ran)
		}
		rep.addf("  geomean: batch %.2fx, parallel %.2fx, scan-heavy (q1/q6) parallel %.2fx",
			er.GeomeanBatch, er.GeomeanPar, er.ScanHeavyPar)
	}
	jrep.GeomeanPar = geomean(allPar)
	jrep.ScanHeavyPar = geomean(allScanHeavy)
	rep.addf("")
	rep.addf("overall: parallel geomean %.2fx, scan-heavy (q1/q6) geomean %.2fx",
		jrep.GeomeanPar, jrep.ScanHeavyPar)
	return rep, jrep, nil
}

// GateBatch enforces the executor CI gate on a report: every engine's q1
// and q6 must reach at least minPar parallel speedup, and the sequential
// batch path must not regress the tuple baseline by more than slack (e.g.
// slack 1.25 tolerates a 25% single-worker regression before failing).
func GateBatch(r *BatchReport, minPar, slack float64) error {
	for _, eng := range r.Engines {
		for _, q := range eng.Queries {
			if ScanHeavy[q.Name] && q.ParSpeedup() < minPar {
				return fmt.Errorf("%s/%s: parallel speedup %.2fx below gate %.2fx",
					eng.Engine, q.Name, q.ParSpeedup(), minPar)
			}
			if ScanHeavy[q.Name] && !q.ParallelRan {
				return fmt.Errorf("%s/%s: parallel executor never dispatched to workers", eng.Engine, q.Name)
			}
			if q.TupleNS > 0 && float64(q.BatchNS) > float64(q.TupleNS)*slack {
				return fmt.Errorf("%s/%s: single-worker batch run %.2f ms regresses tuple baseline %.2f ms beyond %.2fx slack",
					eng.Engine, q.Name, float64(q.BatchNS)/1e6, float64(q.TupleNS)/1e6, slack)
			}
		}
	}
	return nil
}
