package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"qcc/internal/backend"
	"qcc/internal/backend/pcc"
	"qcc/internal/codegen"
	"qcc/internal/plan"
	"qcc/internal/tpch"
)

// CacheSchema identifies the plan-cache report format (BENCH_cache.json).
const CacheSchema = "qcc.bench.cache/v1"

// Replay shape: each engine sees a cold pass (variant 0 of every family)
// followed by a Zipf-skewed stream of constant variants. Under constant
// hoisting every variant of a family shares one parameterized body, so the
// warm stream should hit the code cache on (nearly) every function.
const (
	cacheVariants        = 8    // distinct constant settings per family
	cacheEventsPerFamily = 24   // warm replay length per family
	cacheZipfS           = 1.1  // skew: variant rank r has weight (r+1)^-s
	cacheDefaultMB       = 64   // cache budget when cfg.CacheMB is unset
)

// CacheFamily is one parameterized query family's measurements on one
// engine.
type CacheFamily struct {
	Name     string `json:"name"`
	Variants int    `json:"variants"`
	// Events is how many warm replay events landed on this family.
	Events int `json:"events"`
	// ColdNS is the full compile wall time (plan lowering + back-end) of
	// the family's first variant — the price of a cache miss. WarmNS is the
	// mean compile wall time per warm replay event, paid mostly in plan
	// lowering and cache lookups.
	ColdNS int64 `json:"cold_ns"`
	WarmNS int64 `json:"warm_ns"`
	// Hoisted/KeptInline count the family's literals moved to the constant
	// pool vs pinned inline by the sa-facts classification.
	Hoisted    int `json:"hoisted_consts"`
	KeptInline int `json:"kept_inline_consts"`
	// HoistExecNS/InlineExecNS compare execution of the parameterized body
	// (constants loaded from the pool) against the fully inlined body on
	// the canonical variant — the indirection cost the cache pays for.
	HoistExecNS  int64 `json:"hoist_exec_ns"`
	InlineExecNS int64 `json:"inline_exec_ns"`
	Rows         int   `json:"rows"`
}

// ExecRatio is hoisted/inline execution time (>1: pool indirection costs).
func (f CacheFamily) ExecRatio() float64 {
	if f.InlineExecNS <= 0 {
		return 0
	}
	return float64(f.HoistExecNS) / float64(f.InlineExecNS)
}

// CacheEngine aggregates one engine's plan-cache measurements.
type CacheEngine struct {
	Engine   string        `json:"engine"`
	Families []CacheFamily `json:"families"`
	// Hits/Misses count cached vs compiled functions over the warm replay
	// (the cold pass is excluded by construction).
	Hits    int64   `json:"cache_hits"`
	Misses  int64   `json:"cache_misses"`
	HitRate float64 `json:"hit_rate"`
	// CompileSavedNS sums, over the warm replay, the family's cold compile
	// time minus the event's actual compile time.
	CompileSavedNS int64 `json:"compile_saved_ns"`
	// GeomeanExecRatio pools ExecRatio over families (≤1: no regression).
	GeomeanExecRatio float64 `json:"geomean_exec_ratio"`
}

// CacheReport is the full plan-cache experiment (BENCH_cache.json).
type CacheReport struct {
	Schema   string  `json:"schema"`
	Arch     string  `json:"arch"`
	SF       float64 `json:"sf"`
	Runs     int     `json:"runs"`
	Families int     `json:"families"`
	Variants int     `json:"variants_per_family"`
	Events   int     `json:"events_per_engine"`
	CacheMB  int     `json:"cache_mb"`
	Engines  []CacheEngine `json:"engines"`
	// Pooled over engines.
	HitRate          float64 `json:"hit_rate"`
	GeomeanExecRatio float64 `json:"geomean_exec_ratio"`
}

// Write emits the report as indented JSON.
func (r *CacheReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// cacheLCG is a deterministic 64-bit LCG (Knuth MMIX constants); the replay
// must be reproducible run-to-run so BENCH_cache.json diffs are meaningful.
type cacheLCG struct{ x uint64 }

func (l *cacheLCG) next() uint64 {
	l.x = l.x*6364136223846793005 + 1442695040888963407
	return l.x
}

func (l *cacheLCG) f64() float64 { return float64(l.next()>>11) / (1 << 53) }

// zipfCum builds the cumulative distribution of a Zipf(s) law over n ranks.
func zipfCum(n int, s float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	cum := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i] / total
		cum[i] = acc
	}
	cum[n-1] = 1
	return cum
}

// PlanCacheCost measures what the constant-hoisted plan cache buys when a
// workload repeats query shapes under different literal constants: per
// engine, a cold pass compiles each parameterized family once, then a
// deterministic Zipf-skewed replay of constant variants runs against the
// same cache. Reported per engine: warm hit rate, compile time saved, and
// the execution-side cost of pool indirection (hoisted vs fully inlined
// bodies, best of cfg.Runs). Families share a body under hoisting, so the
// warm stream should be all hits; every replay event also executes, so a
// stale cached body (wrong constants) would surface as a wrong result.
func PlanCacheCost(cfg Config) (*Report, *CacheReport, error) {
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	cacheMB := cfg.CacheMB
	if cacheMB <= 0 {
		cacheMB = cacheDefaultMB
	}
	families := tpch.ParamQueries()
	events := cacheEventsPerFamily * len(families)
	rep := &Report{Title: fmt.Sprintf(
		"Plan cache: constant-hoisted variants (TPC-H, %s, sf=%g, %d families x %d variants, %d warm events, zipf s=%g)",
		cfg.Arch, cfg.SF, len(families), cacheVariants, events, cacheZipfS)}
	jrep := &CacheReport{
		Schema: CacheSchema, Arch: cfg.Arch.String(), SF: cfg.SF, Runs: runs,
		Families: len(families), Variants: cacheVariants, Events: events, CacheMB: cacheMB,
	}
	var totalHits, totalMisses int64
	var allRatios []float64
	for _, eng := range parallelEngines(cfg) {
		w, err := loadH(cfg, cfg.SF)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: load tpch: %w", err)
		}
		// Drop the previous engine's world before measuring: the replay
		// means are otherwise inflated by collection pauses for hundreds of
		// MiB of dead machine memory.
		runtime.GC()
		cache := pcc.NewCache(int64(cacheMB) << 20)
		wrapped := pcc.Wrap(eng, pcc.Config{Jobs: 1, Cache: cache, VariantTag: codegen.CheckElimVersion})
		w.DB.Checkpoint()
		er := CacheEngine{Engine: eng.Name()}

		// compileOnce lowers and compiles one variant through the cached
		// engine, returning the full compile wall time and the call's
		// cache counters.
		compileOnce := func(name string, node plan.Node) (*codegen.Compiled, backend.Exec, *backend.Stats, time.Duration, error) {
			start := time.Now()
			c, err := codegen.CompileOpts(name, node, w.Cat, codegen.Options{Elim: true, Hoist: true})
			if err != nil {
				return nil, nil, nil, 0, fmt.Errorf("%s/%s: %w", eng.Name(), name, err)
			}
			ex, stats, err := wrapped.Compile(c.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
			if err != nil {
				return nil, nil, nil, 0, fmt.Errorf("%s/%s: %w", eng.Name(), name, err)
			}
			return c, ex, stats, time.Since(start), nil
		}

		// Cold pass: variant 0 of each family misses and seeds the cache.
		fams := make([]*CacheFamily, len(families))
		for i, f := range families {
			w.DB.ResetToCheckpoint()
			c, ex, _, dur, err := compileOnce(f.Name, f.Build(0))
			if err != nil {
				return nil, nil, err
			}
			if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
				return nil, nil, fmt.Errorf("%s/%s: cold run: %w", eng.Name(), f.Name, err)
			}
			fams[i] = &CacheFamily{
				Name: f.Name, Variants: cacheVariants, ColdNS: dur.Nanoseconds(),
				Hoisted: c.Hoist.Hoisted, KeptInline: c.Hoist.KeptInline,
			}
		}

		// Warm replay: Zipf-skewed variants, uniformly mixed families. Each
		// event compiles (hitting the cache when hoisting did its job) and
		// executes, so results stay end-to-end checked.
		rng := &cacheLCG{x: 0x9E3779B97F4A7C15}
		cum := zipfCum(cacheVariants, cacheZipfS)
		for e := 0; e < events; e++ {
			fi := int(rng.next()>>33) % len(families)
			u := rng.f64()
			variant := 0
			for variant < len(cum)-1 && u > cum[variant] {
				variant++
			}
			fs := fams[fi]
			w.DB.ResetToCheckpoint()
			c, ex, stats, dur, err := compileOnce(fs.Name, families[fi].Build(variant))
			if err != nil {
				return nil, nil, err
			}
			er.Hits += stats.Counters["cache_hits"]
			er.Misses += stats.Counters["cache_misses"]
			fs.Events++
			fs.WarmNS += dur.Nanoseconds()
			er.CompileSavedNS += fs.ColdNS - dur.Nanoseconds()
			if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
				return nil, nil, fmt.Errorf("%s/%s[v%d]: warm run: %w", eng.Name(), fs.Name, variant, err)
			}
		}
		for _, fs := range fams {
			if fs.Events > 0 {
				fs.WarmNS /= int64(fs.Events)
			}
		}
		if er.Hits+er.Misses > 0 {
			er.HitRate = float64(er.Hits) / float64(er.Hits+er.Misses)
		}

		// Indirection cost: the canonical variant of each family executed
		// from its parameterized body (pool loads) vs its fully inlined
		// body, best of runs, uncached engine — isolating execution cost.
		var ratios []float64
		for _, fs := range fams {
			idx := -1
			for i, f := range families {
				if f.Name == fs.Name {
					idx = i
				}
			}
			measure := func(hoist bool) (int64, int, error) {
				w.DB.ResetToCheckpoint()
				c, err := codegen.CompileOpts(fs.Name, families[idx].Build(0), w.Cat,
					codegen.Options{Elim: true, Hoist: hoist})
				if err != nil {
					return 0, 0, fmt.Errorf("%s/%s: %w", eng.Name(), fs.Name, err)
				}
				ex, _, err := eng.Compile(c.Module, &backend.Env{DB: w.DB, Arch: cfg.Arch, Options: cfg.BackendOptions()})
				if err != nil {
					return 0, 0, fmt.Errorf("%s/%s: %w", eng.Name(), fs.Name, err)
				}
				// Bind the pool before taking the repetition mark so any
				// pooled string is interned below it; later binds then
				// resolve to the same stable addresses.
				if err := w.DB.BindConstPool(c.Module.Pool); err != nil {
					return 0, 0, fmt.Errorf("%s/%s: %w", eng.Name(), fs.Name, err)
				}
				mark := w.DB.M.HeapMark()
				var best time.Duration
				rows := 0
				for r := 0; r < runs+1; r++ {
					w.DB.ResetQueryState()
					w.DB.M.ResetHeapTo(mark)
					start := time.Now()
					if err := codegen.Run(w.DB, w.Cat, c, ex.Call); err != nil {
						return 0, 0, fmt.Errorf("%s/%s: run: %w", eng.Name(), fs.Name, err)
					}
					d := time.Since(start)
					// r == 0 warms; timing starts at r == 1.
					if r == 1 || (r > 1 && d < best) {
						best = d
					}
					rows = w.DB.Out.NumRows()
				}
				return best.Nanoseconds(), rows, nil
			}
			hoistNS, hoistRows, err := measure(true)
			if err != nil {
				return nil, nil, err
			}
			inlineNS, inlineRows, err := measure(false)
			if err != nil {
				return nil, nil, err
			}
			if hoistRows != inlineRows {
				return nil, nil, fmt.Errorf("%s/%s: hoisted body produced %d rows, inline %d",
					eng.Name(), fs.Name, hoistRows, inlineRows)
			}
			fs.HoistExecNS, fs.InlineExecNS, fs.Rows = hoistNS, inlineNS, hoistRows
			if fs.ExecRatio() > 0 {
				ratios = append(ratios, fs.ExecRatio())
			}
		}
		er.GeomeanExecRatio = geomean(ratios)
		allRatios = append(allRatios, ratios...)
		totalHits += er.Hits
		totalMisses += er.Misses
		for _, fs := range fams {
			er.Families = append(er.Families, *fs)
		}
		jrep.Engines = append(jrep.Engines, er)

		rep.addf("")
		rep.addf("%s", er.Engine)
		rep.addf("  %-6s %6s %12s %12s %7s %7s %12s %12s %8s", "family",
			"events", "cold", "warm", "hoist", "inline", "exec-hoist", "exec-inline", "ratio")
		for _, fs := range er.Families {
			rep.addf("  %-6s %6d %9.3f ms %9.3f ms %7d %7d %9.3f ms %9.3f ms %7.3fx",
				fs.Name, fs.Events, float64(fs.ColdNS)/1e6, float64(fs.WarmNS)/1e6,
				fs.Hoisted, fs.KeptInline,
				float64(fs.HoistExecNS)/1e6, float64(fs.InlineExecNS)/1e6, fs.ExecRatio())
		}
		rep.addf("  warm: %d hits, %d misses (hit rate %.1f%%), compile saved %.1f ms, exec ratio geomean %.3fx",
			er.Hits, er.Misses, er.HitRate*100, float64(er.CompileSavedNS)/1e6, er.GeomeanExecRatio)
	}
	if totalHits+totalMisses > 0 {
		jrep.HitRate = float64(totalHits) / float64(totalHits+totalMisses)
	}
	jrep.GeomeanExecRatio = geomean(allRatios)
	rep.addf("")
	rep.addf("overall: hit rate %.1f%%, exec ratio geomean %.3fx (1.00 = free indirection)",
		jrep.HitRate*100, jrep.GeomeanExecRatio)
	return rep, jrep, nil
}

// GateCache enforces the plan-cache CI gate: every engine's warm hit rate
// must reach minHit, and the pooled geomean hoisted/inline execution ratio
// must not exceed maxRatio (e.g. 1.03 tolerates a 3% indirection cost).
// The exec gate pools across engines because per-engine, per-family timings
// at benchmark scale carry a few percent of run-to-run noise.
func GateCache(r *CacheReport, minHit, maxRatio float64) error {
	for _, eng := range r.Engines {
		if eng.HitRate < minHit {
			return fmt.Errorf("%s: warm hit rate %.1f%% below gate %.1f%%",
				eng.Engine, eng.HitRate*100, minHit*100)
		}
	}
	if r.GeomeanExecRatio > maxRatio {
		return fmt.Errorf("exec regression %.3fx geomean exceeds gate %.3fx",
			r.GeomeanExecRatio, maxRatio)
	}
	return nil
}
