package vm

import (
	"testing"

	"qcc/internal/vt"
)

// benchSweep is a memory-heavy inner loop (store, load, accumulate, two
// induction increments per iteration) — the shape fusion targets: a guarded
// block with one xRun covering most of the body.
func benchSweep(b *testing.B, arch vt.Arch, fuse bool) {
	a := vt.NewAssembler(arch)
	loop := a.NewLabel()
	done := a.NewLabel()
	a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: int64(nullGuard)})
	a.Emit(vt.Instr{Op: vt.MovRI, RD: 2, Imm: 0})
	a.Emit(vt.Instr{Op: vt.MovRI, RD: 3, Imm: 1 << 16})
	a.Bind(loop)
	a.Emit(vt.Instr{Op: vt.BrCC, Cond: vt.CondSGE, RA: 2, RB: 3, Target: int32(done)})
	a.Emit(vt.Instr{Op: vt.Store64, RA: 1, RB: 2, Imm: 0})
	a.Emit(vt.Instr{Op: vt.Load64, RD: 4, RA: 1, Imm: 0})
	a.Emit(vt.Instr{Op: vt.Add, RD: 5, RA: 5, RB: 4})
	a.Emit(vt.Instr{Op: vt.AddI, RD: 1, RA: 1, Imm: 8})
	a.Emit(vt.Instr{Op: vt.AddI, RD: 2, RA: 2, Imm: 1})
	a.Emit(vt.Instr{Op: vt.Br, Target: int32(loop)})
	a.Bind(done)
	a.Emit(vt.Instr{Op: vt.MovRR, RD: 0, RA: 5})
	a.Emit(vt.Instr{Op: vt.Ret})
	code, _, err := a.Finish()
	if err != nil {
		b.Fatal(err)
	}
	mod, err := Load(arch, code)
	if err != nil {
		b.Fatal(err)
	}
	mod.SetFuse(fuse)
	m := New(Config{Arch: arch})
	if _, err := m.Call(mod, 0); err != nil { // warm-up builds the fused view
		b.Fatal(err)
	}
	start := m.Executed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Call(mod, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Executed-start)/float64(b.Elapsed().Nanoseconds())*1e3, "Minstr/s")
}

func BenchmarkSweepFused(b *testing.B)   { benchSweep(b, vt.VX64, true) }
func BenchmarkSweepUnfused(b *testing.B) { benchSweep(b, vt.VX64, false) }
