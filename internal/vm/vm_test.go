package vm

import (
	"math"
	"testing"
	"testing/quick"

	"qcc/internal/vt"
)

func assemble(t *testing.T, arch vt.Arch, build func(a vt.Assembler)) *Module {
	t.Helper()
	a := vt.NewAssembler(arch)
	build(a)
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(arch, code)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func both(t *testing.T, f func(t *testing.T, arch vt.Arch)) {
	t.Run("vx64", func(t *testing.T) { f(t, vt.VX64) })
	t.Run("va64", func(t *testing.T) { f(t, vt.VA64) })
}

// mov3 emits a three-address ALU op portably: on two-address targets it
// copies RA into RD first.
func mov3(a vt.Assembler, op vt.Op, rd, ra, rb uint8) {
	if a.Target().TwoAddress && rd != ra {
		a.Emit(vt.Instr{Op: vt.MovRR, RD: rd, RA: ra})
		ra = rd
	}
	a.Emit(vt.Instr{Op: op, RD: rd, RA: ra, RB: rb})
}

func TestLoopSum(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		// sum 1..n: arg in r0, result in r0.
		mod := assemble(t, arch, func(a vt.Assembler) {
			loop := a.NewLabel()
			done := a.NewLabel()
			a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: 0}) // sum
			a.Emit(vt.Instr{Op: vt.MovRI, RD: 2, Imm: 1}) // i
			a.Bind(loop)
			a.Emit(vt.Instr{Op: vt.BrCC, Cond: vt.CondSGT, RA: 2, RB: 0, Target: int32(done)})
			mov3(a, vt.Add, 1, 1, 2)
			a.Emit(vt.Instr{Op: vt.AddI, RD: 2, RA: 2, Imm: 1})
			a.Emit(vt.Instr{Op: vt.Br, Target: int32(loop)})
			a.Bind(done)
			a.Emit(vt.Instr{Op: vt.MovRR, RD: 0, RA: 1})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		m := New(Config{Arch: arch})
		res, err := m.Call(mod, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != 5050 {
			t.Errorf("sum(100) = %d, want 5050", res[0])
		}
		if m.Executed == 0 {
			t.Error("no instructions counted")
		}
	})
}

func TestMemoryOps(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		mod := assemble(t, arch, func(a vt.Assembler) {
			// r0 = address; store 64-bit, reload halves.
			a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: 0x1122334455667788})
			a.Emit(vt.Instr{Op: vt.Store64, RA: 0, RB: 1, Imm: 0})
			a.Emit(vt.Instr{Op: vt.Load32, RD: 2, RA: 0, Imm: 0})
			a.Emit(vt.Instr{Op: vt.Load32S, RD: 3, RA: 0, Imm: 4})
			a.Emit(vt.Instr{Op: vt.Load16, RD: 4, RA: 0, Imm: 6})
			a.Emit(vt.Instr{Op: vt.Load8, RD: 5, RA: 0, Imm: 7})
			a.Emit(vt.Instr{Op: vt.MovRR, RD: 0, RA: 2})
			mov3(a, vt.Add, 0, 0, 3)
			mov3(a, vt.Add, 0, 0, 4)
			mov3(a, vt.Add, 0, 0, 5)
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		m := New(Config{Arch: arch})
		addr := m.Alloc(16)
		res, err := m.Call(mod, 0, addr)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0x55667788) + uint64(0x11223344) + 0x1122 + 0x11
		if res[0] != want {
			t.Errorf("got %#x want %#x", res[0], want)
		}
	})
}

func TestCallAndCalleeSave(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		tg := vt.ForArch(arch)
		cs := tg.CalleeSaved[0]
		sp := tg.SP
		// Callee: clobbers cs but saves/restores it on the stack; returns
		// arg*2 in r0.
		mod := assemble(t, arch, func(a vt.Assembler) {
			entry2 := a.NewLabel()
			// main: r0 = arg. Save 41 into callee-saved, call, add.
			a.Emit(vt.Instr{Op: vt.MovRI, RD: cs, Imm: 41})
			calleeAt := a.NewLabel()
			_ = calleeAt
			// call callee
			a.Emit(vt.Instr{Op: vt.BrCC, Cond: vt.CondNE, RA: 0, RB: 0, Target: int32(entry2)}) // never taken
			callPos := a.PCOffset()
			_ = callPos
			// We need the callee offset; emit call with fixup via symbol
			// mechanism: emit placeholder and patch manually after Finish
			// is overkill here, so lay out callee first in a second pass.
			a.Emit(vt.Instr{Op: vt.Nop})
			a.Bind(entry2)
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		_ = mod
		_ = sp
		// The direct-call path is exercised through EmitCallSym + manual
		// patching below.
		a := vt.NewAssembler(arch)
		// main at 0: call callee(sym 0), then r0 = r0 + cs.
		a.Emit(vt.Instr{Op: vt.MovRI, RD: cs, Imm: 41})
		a.EmitCallSym(0)
		mov3(a, vt.Add, 0, 0, cs)
		a.Emit(vt.Instr{Op: vt.Ret})
		calleeOff := a.PCOffset()
		// callee: push cs, clobber it, pop, return arg*2.
		a.Emit(vt.Instr{Op: vt.SubI, RD: sp, RA: sp, Imm: 16})
		a.Emit(vt.Instr{Op: vt.Store64, RA: sp, RB: cs, Imm: 0})
		a.Emit(vt.Instr{Op: vt.MovRI, RD: cs, Imm: 999})
		mov3(a, vt.Add, 0, 0, 0)
		a.Emit(vt.Instr{Op: vt.Load64, RD: cs, RA: sp, Imm: 0})
		a.Emit(vt.Instr{Op: vt.AddI, RD: sp, RA: sp, Imm: 16})
		a.Emit(vt.Instr{Op: vt.Ret})
		code, relocs, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range relocs {
			r.Patch(code, int64(calleeOff))
		}
		m2, err := Load(arch, code)
		if err != nil {
			t.Fatal(err)
		}
		mach := New(Config{Arch: arch})
		res, err := mach.Call(m2, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != 61 { // 10*2 + 41
			t.Errorf("got %d want 61", res[0])
		}
	})
}

func TestRuntimeCall(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		tg := vt.ForArch(arch)
		mod := assemble(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.CallRT, Imm: 1})
			a.Emit(vt.Instr{Op: vt.AddI, RD: tg.IntRet[0], RA: tg.IntRet[0], Imm: 1})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		m := New(Config{Arch: arch})
		m.RT = make([]RTFunc, 2)
		m.RT[1] = func(m *Machine) error {
			m.R[tg.IntRet[0]] = m.R[tg.IntArgs[0]] * 3
			return nil
		}
		res, err := m.Call(mod, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != 22 {
			t.Errorf("got %d want 22", res[0])
		}
	})
}

func TestTraps(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		mod := assemble(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.Trap, Imm: int64(vt.TrapOverflow)})
		})
		m := New(Config{Arch: arch})
		_, err := m.Call(mod, 0)
		tr, ok := err.(*Trap)
		if !ok {
			t.Fatalf("expected trap, got %v", err)
		}
		if tr.Code != vt.TrapOverflow {
			t.Errorf("code = %v", tr.Code)
		}
	})
}

func TestDivZeroTrap(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		mod := assemble(t, arch, func(a vt.Assembler) {
			mov3(a, vt.SDiv, 0, 0, 1)
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		m := New(Config{Arch: arch})
		if _, err := m.Call(mod, 0, 5, 0); err == nil {
			t.Fatal("expected divide-by-zero trap")
		}
		if _, err := m.Call(mod, 0, 10, 2); err != nil {
			t.Fatal(err)
		}
		if m.R[0] != 5 {
			t.Errorf("10/2 = %d", m.R[0])
		}
	})
}

func TestNullAndOOBTrap(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		mod := assemble(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.Load64, RD: 0, RA: 0, Imm: 0})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		m := New(Config{Arch: arch})
		if _, err := m.Call(mod, 0, 0); err == nil {
			t.Error("expected null trap")
		}
		if _, err := m.Call(mod, 0, uint64(len(m.Mem))+8); err == nil {
			t.Error("expected OOB trap")
		}
	})
}

func TestUnwindSymbolization(t *testing.T) {
	mod := assemble(t, vt.VX64, func(a vt.Assembler) {
		a.Emit(vt.Instr{Op: vt.Nop})
		a.Emit(vt.Instr{Op: vt.Trap, Imm: int64(vt.TrapOverflow)})
	})
	mod.RegisterUnwind([]UnwindRange{{Start: 0, End: 100, Name: "pipeline_1", CFI: []byte{1}}})
	m := New(Config{Arch: vt.VX64})
	_, err := m.Call(mod, 0)
	tr, ok := err.(*Trap)
	if !ok {
		t.Fatal("expected trap")
	}
	if len(tr.Frames) == 0 || tr.Frames[0] != "pipeline_1+1" {
		t.Errorf("frames = %v", tr.Frames)
	}
}

func TestMulWideSigned(t *testing.T) {
	mod := assemble(t, vt.VX64, func(a vt.Assembler) {
		a.Emit(vt.Instr{Op: vt.MulWideS, RD: 0, RC: 1, RA: 0, RB: 1})
		a.Emit(vt.Instr{Op: vt.Ret})
	})
	m := New(Config{Arch: vt.VX64})
	f := func(x, y int64) bool {
		_, err := m.Call(mod, 0, uint64(x), uint64(y))
		if err != nil {
			return false
		}
		lo, hi := m.R[0], m.R[1]
		// Reference via big arithmetic on 128 bits.
		wantHi, wantLo := mulS128(x, y)
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mulS128(x, y int64) (hi, lo uint64) {
	// Signed 128-bit product via unsigned plus corrections.
	uhi, ulo := mulU128(uint64(x), uint64(y))
	if x < 0 {
		uhi -= uint64(y)
	}
	if y < 0 {
		uhi -= uint64(x)
	}
	return uhi, ulo
}

func mulU128(x, y uint64) (hi, lo uint64) {
	x0, x1 := x&0xFFFFFFFF, x>>32
	y0, y1 := y&0xFFFFFFFF, y>>32
	w0 := x0 * y0
	tmp := x1*y0 + w0>>32
	w1 := tmp & 0xFFFFFFFF
	w2 := tmp >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

func TestFloatOps(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		mod := assemble(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.MovFR, RD: 0, RA: 0}) // f0 = bits(r0)
			a.Emit(vt.Instr{Op: vt.MovFR, RD: 1, RA: 1})
			if a.Target().TwoAddress {
				a.Emit(vt.Instr{Op: vt.FAdd, RD: 0, RA: 0, RB: 1})
			} else {
				a.Emit(vt.Instr{Op: vt.FAdd, RD: 0, RA: 0, RB: 1})
			}
			a.Emit(vt.Instr{Op: vt.CvtF2SI, RD: 0, RA: 0})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		m := New(Config{Arch: arch})
		res, err := m.Call(mod, 0, math.Float64bits(1.5), math.Float64bits(2.25))
		if err != nil {
			t.Fatal(err)
		}
		if int64(res[0]) != 3 {
			t.Errorf("1.5+2.25 truncated = %d", int64(res[0]))
		}
	})
}

func TestCrc32Deterministic(t *testing.T) {
	mod := assemble(t, vt.VX64, func(a vt.Assembler) {
		a.Emit(vt.Instr{Op: vt.Crc32, RD: 0, RA: 0, RB: 1})
		a.Emit(vt.Instr{Op: vt.Ret})
	})
	m := New(Config{Arch: vt.VX64})
	r1, err := m.Call(mod, 0, 0, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Call(mod, 0, 0, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0] != r2[0] {
		t.Error("crc32 not deterministic")
	}
	r3, _ := m.Call(mod, 0, 1, 0xDEADBEEF)
	if r3[0] == r1[0] {
		t.Error("crc32 ignores seed")
	}
}

func TestAllocAlignmentAndReset(t *testing.T) {
	m := New(Config{Arch: vt.VX64, MemSize: 8 << 20})
	a := m.Alloc(3)
	b := m.Alloc(5)
	if a%8 != 0 || b%8 != 0 {
		t.Errorf("unaligned: %d %d", a, b)
	}
	if b <= a {
		t.Error("allocator not monotonic")
	}
	used := m.HeapUsed()
	if used == 0 {
		t.Error("no heap used")
	}
	m.ResetHeap()
	if m.HeapUsed() != 0 {
		t.Error("reset did not clear heap")
	}
	c := m.Alloc(8)
	if c != a {
		t.Errorf("post-reset alloc %d != first alloc %d", c, a)
	}
}
