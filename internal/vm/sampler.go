package vm

// DefaultSamplePeriod is the sampling period (in executed instructions) used
// when a Sampler is installed with Period <= 0. Instruction-count epochs
// rather than wall-clock timers keep sampling deterministic: the same module
// on the same input yields the same sample set on every run, which is what
// makes the profiler's attribution rate a testable quantity.
const DefaultSamplePeriod = 16384

// Sampler implements cheap epoch-based PC sampling of the dispatch loops.
// The machine checks the sampler only at branch checkpoints (every taken or
// fall-through branch, call, and return in both the decoded-switch loop and
// the fused threaded dispatcher), so the cost is amortized over basic blocks
// rather than paid per instruction:
//
//   - sampling off (no sampler installed): one predictable nil test per
//     branch — within measurement noise;
//   - sampling on: the nil test plus a two-load compare per branch, and the
//     out-of-line take path only once per Period executed instructions.
//
// A Sampler belongs to one Machine; install it with Machine.SetSampler.
type Sampler struct {
	// Period is the sampling epoch in executed instructions.
	Period int64
	// Hit is invoked for every sample with the module being executed and
	// the byte offset of the instruction pending at the checkpoint. It runs
	// synchronously on the execution goroutine and must be cheap; nil
	// discards samples (only the Samples counter advances).
	Hit func(mod *Module, off int32)
	// Samples counts taken samples.
	Samples int64

	// next is the absolute Machine.Executed threshold of the next sample.
	next int64
}

// SetSampler installs (or with nil removes) the PC sampler. Installing
// re-arms the epoch relative to the machine's current instruction count.
// Not safe to call while the machine is executing.
func (m *Machine) SetSampler(s *Sampler) {
	if s != nil {
		if s.Period <= 0 {
			s.Period = DefaultSamplePeriod
		}
		s.next = m.Executed + s.Period
	}
	m.sampler = s
}

// Sampler returns the installed sampler (nil when sampling is off).
func (m *Machine) Sampler() *Sampler { return m.sampler }

// take records one sample at byte offset off of mod. total is the observed
// executed-instruction count at the checkpoint; the next epoch is re-armed
// relative to it so a long basic block cannot queue up a burst of samples.
func (s *Sampler) take(mod *Module, off int32, total int64) {
	s.Samples++
	s.next = total + s.Period
	if s.Hit != nil {
		s.Hit(mod, off)
	}
}
