// Superinstruction fusion: a load-time peephole pass over the decoded
// program that rewrites hot idioms into fused micro-ops executed by the
// threaded dispatcher in dispatch.go.
//
// Fusion is a pure *view* of the decoded program. Module.Code, the decoded
// vt.Program, and every byte-identity comparison are untouched; the fused
// stream is built lazily on first Call so load time (measured by the
// compile-time benchmarks) is unaffected. The fused handlers charge the
// exact same Executed/Branches/MemOps counts and report the exact same trap
// PCs and frames as the unfused switch loop, so the architecture-neutral
// metrics stay comparable between the two dispatch strategies.
//
// The pass works on basic blocks (leader-to-leader ranges):
//
//   - Bounds-check hoisting: when a block performs two or more memory
//     accesses off base registers that are unmodified since block entry, a
//     single xGuard micro-op validates the block's whole static memory
//     footprint (one range per base register) and the accesses run
//     unchecked. If the guard fails, control enters a checked clone of the
//     block whose per-access checks reproduce the unfused trap exactly.
//   - Superinstruction runs: maximal sequences of trap-free operations
//     (plus guarded memory accesses) collapse into one xRun micro-op
//     executed by a compact step loop — one dispatch for the whole run.
//   - Compare-and-branch fusion: SetCC/FCmp feeding BrNZ on the result
//     register becomes one xCmpBr/xFCmpBr micro-op.
//   - Immediate materialization: MovZ followed by MovK chains folds into a
//     single constant store; AddI/SubI/Lea address chains on one register
//     fold into a single add.
//   - Memory pairs: an unguarded load feeding a simple op (xLoadOp), and a
//     simple op feeding an unguarded store (xOpStore), fuse with the
//     bounds check kept inline and partial instruction counts on trap.
package vm

import (
	"math"

	"qcc/internal/obs"
	"qcc/internal/vt"
)

// Fusion-rate counters (fused micro-ops / original instructions), exported
// through the process-wide obs registry and per-module via FuseStats.
var (
	cntFuseModules = obs.NewCounter("vm_fuse_modules")
	cntFuseInstrs  = obs.NewCounter("vm_fuse_orig_instrs")
	cntFuseMicro   = obs.NewCounter("vm_fuse_micro_ops")
)

// FuseStats reports what the fusion pass did to one module.
type FuseStats struct {
	// Instrs is the decoded instruction count of the module.
	Instrs int
	// MicroOps is the primary-path micro-op count (guards included,
	// checked clones excluded); MicroOps/Instrs is the fusion rate.
	MicroOps int
	// CloneOps counts micro-ops in checked clones (guard slow paths).
	CloneOps int
	// GuardedBlocks counts blocks with a hoisted bounds check.
	GuardedBlocks int
}

// Extended micro-opcodes. Values below vt.NumOps are checked singles of the
// same operation; uLoad8..uFStore are memory operations whose bounds were
// established by a block guard; the x* values are fused superinstructions.
// The whole space is kept dense (0..xOpStore with no gaps) so the dispatch
// switches compile to single jump tables — the threaded-dispatch property.
const (
	uLoad8 uint8 = uint8(vt.NumOps) + iota
	uLoad8S
	uLoad16
	uLoad16S
	uLoad32
	uLoad32S
	uLoad64
	uStore8
	uStore16
	uStore32
	uStore64
	uFLoad
	uFStore
	// Combined step opcodes: one step executing two adjacent operations.
	// The pair set was chosen from dynamic frequency profiles of TPC-H
	// execution (register copies and 64-bit column stores/loads dominate
	// compiled query code); combineSteps performs the greedy matching.
	cMovSt64  // MovRR + Store64u
	cSt64Mov  // Store64u + MovRR
	cSt64Ld64 // Store64u + Load64u (different address)
	cLd64Mov  // Load64u + MovRR
	cMovISt64 // MovRI + Store64u
	cSt64MovI // Store64u + MovRI
	cMovAdd   // MovRR + Add
	cAddSt64  // Add + Store64u
	cSetSt64  // SetCC + Store64u
	cLd64Set  // Load64u + SetCC
	cSt64St64 // Store64u + Store64u
	cLd64Ld64 // Load64u + Load64u
	cMovMov   // MovRR + MovRR
	cMovIMovI // MovRI + MovRI
	// Second-round combined steps, formed by running the combiner to a
	// fixpoint so first-round products merge with their neighbours. The
	// narrow group below fits the five-register/two-immediate main-stream
	// encoding and may be inlined as direct micro-ops; the wide group
	// (cWideFirst onward) uses the rf/rg/imm3 step fields and only ever
	// executes inside runs.
	c2MovXor       // MovRR + Xor:          rd←ra;         rb←rc^re
	c2MovAnd       // MovRR + And:          rd←ra;         rb←rc&re
	c2XorMov       // Xor + MovRR:          rd←ra^rb;      rc←re
	c2AndMov       // And + MovRR:          rd←ra&rb;      rc←re
	c2MovMulI      // MovRR + MulI:         rd←ra;         rb←rc*imm
	c2MulILea      // MulI + AddI:          rd←ra*imm;     rb←rc+imm2
	c2LeaAdd       // AddI + Add:           rd←ra+imm;     rb←rc+re
	c2AddLea       // Add + AddI:           rd←ra+rb;      rc←re+imm
	c2MulIAdd      // MulI + Add:           rd←ra*imm;     rb←rc+re
	c2MovIMulI     // MovRI + MulI:         rd←imm;        rb←rc*imm2
	c2AddMovI      // Add + MovRI:          rd←ra+rb;      rc←imm
	c2MovAddI      // MovRR + AddI:         rd←ra;         rb←rc+imm
	c2AddIMov      // AddI + MovRR:         rd←ra+imm;     rb←rc
	c2MovIMov      // MovRI + MovRR:        rd←imm;        rb←rc
	c2MovIMulwu    // MovRI + MulWideU:     rd←imm;        ra,rb←lo,hi(rc*re)
	c2CrcMovI      // Crc32 + MovRI:        rd←crc(ra,rb); rc←imm
	c2MovCrc       // MovRR + Crc32:        rd←ra;         rb←crc(rc,re)
	c2MovLd64      // MovRR + Load64u:      rd←ra;         rb←[rc+imm]
	c2MovILd64     // MovRI + Load64u:      rd←imm;        rb←[rc+imm2]
	c2Ld64Lea      // Load64u + AddI:       rd←[ra+imm];   rb←rc+imm2
	c2LeaSt64      // AddI + Store64u:      rd←ra+imm;     [rb+imm2]←rc
	c2MovStMovI    // cMovSt64 + MovRI:     rd←ra; [rb+imm]←rc; re←imm2
	c2MovILdMov    // MovRI + cLd64Mov:     rd←imm; ra←[rb+imm2]; rc←re
	t3Ld64SetSt64  // cLd64Set + Store64u:  rd←[ra+imm]; set rb←rc?re; [rf+imm2]←rg
	t3St64MovSt64  // cSt64Mov + Store64u:  [ra+imm]←rb; rd←rc; [re+imm2]←rf
	t3MovILd64Set  // MovRI + cLd64Set:     rd←imm; rb←[rc+imm2]; set re←rf?rg
	t3Ld64MovMulI  // cLd64Mov + MulI:      rd←[ra+imm]; rb←rc; re←rf*imm2
	t3MulIMovAdd   // MulI + cMovAdd:       rd←ra*imm; rb←rc; re←rf+rg
	t3MovLd64Mov   // MovRR + cLd64Mov:     rd←ra; rb←[rc+imm]; re←rf
	t3St64MovMov   // cSt64Mov + MovRR:     [ra+imm]←rb; rd←rc; re←rf
	t3St64Ld64Mov  // cSt64Ld64 + MovRR:    [ra+imm]←rb; rd←[re+imm2]; rf←rg
	t3MovSt64Ld64  // cMovSt64 + Load64u:   rd←ra; [rb+imm]←rc; re←[rf+imm2]
	t3St64AddSt64  // Store64u + cAddSt64:  [ra+imm]←rb; rd←rc+re; [rf+imm2]←rg
	t3Ld64MovSt64  // cLd64Mov + Store64u:  rd←[ra+imm]; rb←rc; [re+imm2]←rf
	t3St64MovISt64 // cSt64MovI + Store64u: [ra+imm]←rb; rd←imm2; [re+imm3]←rf
	t3SetSet       // SetCC + SetCC:        rd←ra?rb; (cond rg) rc←re?rf
	t3XorAnd       // Xor + And:            rd←ra^rb; rc←re&rf
	t3MulwuXor     // MulWideU + Xor:       rd,ra←lo,hi(rb*rc); re←rf^rg
	q4MovIStLdMov  // cMovISt64 + cLd64Mov: rd←imm; [ra+imm2]←rb; rc←[re+imm3]; rf←rg
	q4MovStMovSt   // cMovSt64 + cMovSt64(v=dst): rd←ra; [rb+imm]←rc; re←rf; [rg+imm2]←re
	q4StLdMovSt    // cSt64Ld64 + cMovSt64(v=dst): [ra+imm]←rb; rc←[rd+imm2]; re←rf; [rg+imm3]←re
	xGuard         // hoisted block bounds check (cnt ranges at guards[imm])
	xGuard1        // hoisted single-range bounds check (base ra, [imm, imm2))
	xJmp           // stream glue (clone fall-through), charges nothing
	xRun           // superinstruction: cnt steps at steps[imm]
	xRunBr         // run whose block ends in Br: steps, then jump tgt
	xRunBrCC       // run whose block ends in BrCC
	xRunBrNZ       // run whose block ends in BrNZ
	// Guard+run merges: a single-range guard whose block encoded to exactly
	// one following run micro-op. One dispatch checks bounds and executes
	// the whole block (the absorbed run micro-op stays in the stream as a
	// dead slot holding the steps/branch payload).
	xG1Run     // xGuard1 + xRun
	xG1RunBr   // xGuard1 + xRunBr
	xG1RunBrCC // xGuard1 + xRunBrCC
	xG1RunBrNZ // xGuard1 + xRunBrNZ
	xCmpBr     // SetCC + BrNZ
	xFCmpBr    // FCmp + BrNZ
	xLoadOp    // checked load + simple op
	xOpStore   // simple op + checked store
)

// unchecked maps a memory operation (checked or statically unchecked) to its
// guard-covered step opcode.
func unchecked(op vt.Op) uint8 {
	switch {
	case op >= vt.Load8 && op <= vt.Store64:
		return uLoad8 + uint8(op-vt.Load8)
	case op >= vt.LoadU8 && op <= vt.StoreU64:
		return uLoad8 + uint8(op-vt.LoadU8)
	case op == vt.FLoad, op == vt.FLoadU:
		return uFLoad
	default:
		return uFStore
	}
}

// finstr is one fused micro-op.
type finstr struct {
	op   uint8 // micro-opcode (vt.Op, |uncheckedBit, or x*)
	n    uint8 // original instructions covered (0 for guard/jmp glue)
	cnt  uint8 // run step count / guard range count / pair access size
	rc   uint8 // run mem-op count / RC register / pair second-op RC
	rd   uint8
	ra   uint8
	rb   uint8
	cond vt.Cond
	op1  uint8 // pair memory operation (vt.Op)
	pc0  int32 // original instruction index of the first constituent
	tgt  int32 // fused branch/guard-fail/jmp target, or pair step index
	imm  int64
	imm2 int64 // call continuation
}

// cWideFirst is the first combined step opcode that needs the wide fields
// (rf/rg/imm3); steps at or above it cannot be inlined as main-stream
// micro-ops and only execute inside runs.
const cWideFirst = t3Ld64SetSt64

// fstep is one step of an xRun superinstruction. Combined steps (c*) hold
// two operations: re and imm2 carry the second operation's extra register
// and immediate. Wide combined steps (t3*/q4*) hold three or four
// operations using rf, rg and imm3.
type fstep struct {
	op   uint8 // vt.Op, unchecked memory operation, or combined group
	rd   uint8
	ra   uint8
	rb   uint8
	rc   uint8
	re   uint8
	rf   uint8
	rg   uint8
	cond vt.Cond
	pc0  int32
	imm  int64
	imm2 int64
	imm3 int64
}

// combineSteps greedily replaces adjacent step pairs with single combined
// steps, halving dispatch count for the patterns that dominate compiled
// query code (register copies feeding/following 64-bit stores and loads
// cover roughly two thirds of adjacent pairs on TPC-H). Combining is a pure
// re-encoding: each combined step performs both constituent operations in
// original order, so register/memory effects are identical, counters are
// unaffected (run memory-op counts are fixed at push time), and trap
// attribution is unaffected (all constituents are trap-free).
func combineSteps(steps []fstep) []fstep {
	// Run the pairwise pass to a fixpoint: second-round rules merge
	// first-round products with their neighbours into triples and quads.
	for len(steps) >= 2 {
		out := steps[:0]
		i := 0
		for i < len(steps) {
			if i+1 < len(steps) {
				if c, ok := combinePair(&steps[i], &steps[i+1]); ok {
					out = append(out, c)
					i += 2
					continue
				}
			}
			out = append(out, steps[i])
			i++
		}
		if len(out) == i {
			return out
		}
		steps = out
	}
	return steps
}

// cMemOps is the number of guarded memory accesses a combined step performs
// (charged as MemOps by the main-stream dispatch cases; runs charge in bulk
// via the run's rc field instead).
func cMemOps(op uint8) uint8 {
	switch op {
	case cSt64Ld64, cSt64St64, cLd64Ld64,
		t3Ld64SetSt64, t3St64MovSt64, t3St64Ld64Mov, t3MovSt64Ld64,
		t3St64AddSt64, t3Ld64MovSt64, t3St64MovISt64,
		q4MovIStLdMov, q4MovStMovSt, q4StLdMovSt:
		return 2
	case cMovSt64, cSt64Mov, cLd64Mov, cMovISt64, cSt64MovI, cAddSt64, cSetSt64, cLd64Set,
		c2MovLd64, c2MovILd64, c2Ld64Lea, c2LeaSt64, c2MovStMovI, c2MovILdMov,
		t3MovILd64Set, t3Ld64MovMulI, t3MovLd64Mov, t3St64MovMov:
		return 1
	}
	return 0
}

// combinePair encodes two adjacent steps as one combined step when the pair
// is in the profiled hot set and its operands fit the fstep fields.
func combinePair(a, b *fstep) (fstep, bool) {
	switch a.op {
	case uint8(vt.MovRR):
		switch b.op {
		case uStore64:
			return fstep{op: cMovSt64, rd: a.rd, ra: a.ra, rb: b.ra, rc: b.rb, imm: b.imm, pc0: a.pc0}, true
		case uint8(vt.Add):
			return fstep{op: cMovAdd, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case uint8(vt.MovRR):
			return fstep{op: cMovMov, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, pc0: a.pc0}, true
		case uint8(vt.Xor):
			return fstep{op: c2MovXor, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case uint8(vt.And):
			return fstep{op: c2MovAnd, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case uint8(vt.MulI):
			return fstep{op: c2MovMulI, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, imm: b.imm, pc0: a.pc0}, true
		case uint8(vt.AddI):
			return fstep{op: c2MovAddI, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, imm: b.imm, pc0: a.pc0}, true
		case uint8(vt.Crc32):
			return fstep{op: c2MovCrc, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case uLoad64:
			return fstep{op: c2MovLd64, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, imm: b.imm, pc0: a.pc0}, true
		case cLd64Mov:
			return fstep{op: t3MovLd64Mov, rd: a.rd, ra: a.ra, rb: b.rd, rc: b.ra, imm: b.imm, re: b.rb, rf: b.rc, pc0: a.pc0}, true
		}
	case uint8(vt.MovRI):
		switch b.op {
		case uStore64:
			return fstep{op: cMovISt64, rd: a.rd, imm: a.imm, ra: b.ra, rb: b.rb, imm2: b.imm, pc0: a.pc0}, true
		case uint8(vt.MovRI):
			return fstep{op: cMovIMovI, rd: a.rd, imm: a.imm, rb: b.rd, imm2: b.imm, pc0: a.pc0}, true
		case uint8(vt.MulI):
			return fstep{op: c2MovIMulI, rd: a.rd, imm: a.imm, rb: b.rd, rc: b.ra, imm2: b.imm, pc0: a.pc0}, true
		case uint8(vt.MovRR):
			return fstep{op: c2MovIMov, rd: a.rd, imm: a.imm, rb: b.rd, rc: b.ra, pc0: a.pc0}, true
		case uint8(vt.MulWideU):
			return fstep{op: c2MovIMulwu, rd: a.rd, imm: a.imm, ra: b.rd, rb: b.rc, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case uLoad64:
			return fstep{op: c2MovILd64, rd: a.rd, imm: a.imm, rb: b.rd, rc: b.ra, imm2: b.imm, pc0: a.pc0}, true
		case cLd64Mov:
			return fstep{op: c2MovILdMov, rd: a.rd, imm: a.imm, ra: b.rd, rb: b.ra, imm2: b.imm, rc: b.rb, re: b.rc, pc0: a.pc0}, true
		case cLd64Set:
			return fstep{op: t3MovILd64Set, rd: a.rd, imm: a.imm, rb: b.rd, rc: b.ra, imm2: b.imm, cond: b.cond, re: b.rb, rf: b.rc, rg: b.re, pc0: a.pc0}, true
		}
	case uStore64:
		switch b.op {
		case uint8(vt.MovRR):
			return fstep{op: cSt64Mov, ra: a.ra, rb: a.rb, imm: a.imm, rd: b.rd, rc: b.ra, pc0: a.pc0}, true
		case uLoad64:
			return fstep{op: cSt64Ld64, ra: a.ra, rb: a.rb, imm: a.imm, rd: b.rd, re: b.ra, imm2: b.imm, pc0: a.pc0}, true
		case uint8(vt.MovRI):
			return fstep{op: cSt64MovI, ra: a.ra, rb: a.rb, imm: a.imm, rd: b.rd, imm2: b.imm, pc0: a.pc0}, true
		case uStore64:
			return fstep{op: cSt64St64, ra: a.ra, rb: a.rb, imm: a.imm, rc: b.ra, re: b.rb, imm2: b.imm, pc0: a.pc0}, true
		case cAddSt64:
			return fstep{op: t3St64AddSt64, ra: a.ra, rb: a.rb, imm: a.imm, rd: b.rd, rc: b.ra, re: b.rb, rf: b.rc, rg: b.re, imm2: b.imm, pc0: a.pc0}, true
		}
	case uLoad64:
		switch b.op {
		case uint8(vt.MovRR):
			return fstep{op: cLd64Mov, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, pc0: a.pc0}, true
		case uint8(vt.SetCC):
			return fstep{op: cLd64Set, rd: a.rd, ra: a.ra, imm: a.imm, cond: b.cond, rb: b.rd, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case uLoad64:
			return fstep{op: cLd64Ld64, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, imm2: b.imm, pc0: a.pc0}, true
		case uint8(vt.AddI):
			return fstep{op: c2Ld64Lea, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, imm2: b.imm, pc0: a.pc0}, true
		}
	case uint8(vt.Add):
		switch b.op {
		case uStore64:
			return fstep{op: cAddSt64, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.ra, re: b.rb, imm: b.imm, pc0: a.pc0}, true
		case uint8(vt.AddI):
			return fstep{op: c2AddLea, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.rd, re: b.ra, imm: b.imm, pc0: a.pc0}, true
		case uint8(vt.MovRI):
			return fstep{op: c2AddMovI, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.rd, imm: b.imm, pc0: a.pc0}, true
		}
	case uint8(vt.SetCC):
		switch b.op {
		case uStore64:
			return fstep{op: cSetSt64, cond: a.cond, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.ra, re: b.rb, imm: b.imm, pc0: a.pc0}, true
		case uint8(vt.SetCC):
			return fstep{op: t3SetSet, cond: a.cond, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.rd, re: b.ra, rf: b.rb, rg: uint8(b.cond), pc0: a.pc0}, true
		}
	case uint8(vt.AddI):
		switch b.op {
		case uint8(vt.Add):
			return fstep{op: c2LeaAdd, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case uint8(vt.MovRR):
			return fstep{op: c2AddIMov, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, pc0: a.pc0}, true
		case uStore64:
			return fstep{op: c2LeaSt64, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.ra, rc: b.rb, imm2: b.imm, pc0: a.pc0}, true
		}
	case uint8(vt.MulI):
		switch b.op {
		case uint8(vt.AddI):
			return fstep{op: c2MulILea, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, imm2: b.imm, pc0: a.pc0}, true
		case uint8(vt.Add):
			return fstep{op: c2MulIAdd, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, re: b.rb, pc0: a.pc0}, true
		case cMovAdd:
			return fstep{op: t3MulIMovAdd, rd: a.rd, ra: a.ra, imm: a.imm, rb: b.rd, rc: b.ra, re: b.rb, rf: b.rc, rg: b.re, pc0: a.pc0}, true
		}
	case uint8(vt.Xor):
		switch b.op {
		case uint8(vt.MovRR):
			return fstep{op: c2XorMov, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.rd, re: b.ra, pc0: a.pc0}, true
		case uint8(vt.And):
			return fstep{op: t3XorAnd, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.rd, re: b.ra, rf: b.rb, pc0: a.pc0}, true
		}
	case uint8(vt.And):
		if b.op == uint8(vt.MovRR) {
			return fstep{op: c2AndMov, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.rd, re: b.ra, pc0: a.pc0}, true
		}
	case uint8(vt.Crc32):
		if b.op == uint8(vt.MovRI) {
			return fstep{op: c2CrcMovI, rd: a.rd, ra: a.ra, rb: a.rb, rc: b.rd, imm: b.imm, pc0: a.pc0}, true
		}
	case uint8(vt.MulWideU):
		if b.op == uint8(vt.Xor) {
			return fstep{op: t3MulwuXor, rd: a.rd, ra: a.rc, rb: a.ra, rc: a.rb, re: b.rd, rf: b.ra, rg: b.rb, pc0: a.pc0}, true
		}
	case cMovSt64:
		switch b.op {
		case uint8(vt.MovRI):
			return fstep{op: c2MovStMovI, rd: a.rd, ra: a.ra, rb: a.rb, rc: a.rc, imm: a.imm, re: b.rd, imm2: b.imm, pc0: a.pc0}, true
		case uLoad64:
			return fstep{op: t3MovSt64Ld64, rd: a.rd, ra: a.ra, rb: a.rb, rc: a.rc, imm: a.imm, re: b.rd, rf: b.ra, imm2: b.imm, pc0: a.pc0}, true
		case cMovSt64:
			if b.rc == b.rd {
				return fstep{op: q4MovStMovSt, rd: a.rd, ra: a.ra, rb: a.rb, rc: a.rc, imm: a.imm, re: b.rd, rf: b.ra, rg: b.rb, imm2: b.imm, pc0: a.pc0}, true
			}
		}
	case cSt64Mov:
		switch b.op {
		case uStore64:
			return fstep{op: t3St64MovSt64, ra: a.ra, rb: a.rb, imm: a.imm, rd: a.rd, rc: a.rc, re: b.ra, rf: b.rb, imm2: b.imm, pc0: a.pc0}, true
		case uint8(vt.MovRR):
			return fstep{op: t3St64MovMov, ra: a.ra, rb: a.rb, imm: a.imm, rd: a.rd, rc: a.rc, re: b.rd, rf: b.ra, pc0: a.pc0}, true
		}
	case cSt64Ld64:
		switch b.op {
		case uint8(vt.MovRR):
			return fstep{op: t3St64Ld64Mov, ra: a.ra, rb: a.rb, imm: a.imm, rd: a.rd, re: a.re, imm2: a.imm2, rf: b.rd, rg: b.ra, pc0: a.pc0}, true
		case cMovSt64:
			if b.rc == b.rd {
				return fstep{op: q4StLdMovSt, ra: a.ra, rb: a.rb, imm: a.imm, rc: a.rd, rd: a.re, imm2: a.imm2, re: b.rd, rf: b.ra, rg: b.rb, imm3: b.imm, pc0: a.pc0}, true
			}
		}
	case cLd64Mov:
		switch b.op {
		case uint8(vt.MulI):
			return fstep{op: t3Ld64MovMulI, rd: a.rd, ra: a.ra, imm: a.imm, rb: a.rb, rc: a.rc, re: b.rd, rf: b.ra, imm2: b.imm, pc0: a.pc0}, true
		case uStore64:
			return fstep{op: t3Ld64MovSt64, rd: a.rd, ra: a.ra, imm: a.imm, rb: a.rb, rc: a.rc, re: b.ra, rf: b.rb, imm2: b.imm, pc0: a.pc0}, true
		}
	case cLd64Set:
		if b.op == uStore64 {
			return fstep{op: t3Ld64SetSt64, rd: a.rd, ra: a.ra, imm: a.imm, cond: a.cond, rb: a.rb, rc: a.rc, re: a.re, rf: b.ra, rg: b.rb, imm2: b.imm, pc0: a.pc0}, true
		}
	case cMovISt64:
		if b.op == cLd64Mov {
			return fstep{op: q4MovIStLdMov, rd: a.rd, imm: a.imm, ra: a.ra, rb: a.rb, imm2: a.imm2, rc: b.rd, re: b.ra, imm3: b.imm, rf: b.rb, rg: b.rc, pc0: a.pc0}, true
		}
	case cSt64MovI:
		if b.op == uStore64 {
			return fstep{op: t3St64MovISt64, ra: a.ra, rb: a.rb, imm: a.imm, rd: a.rd, imm2: a.imm2, re: b.ra, rf: b.rb, imm3: b.imm, pc0: a.pc0}, true
		}
	case c2MovILd64:
		if b.op == uint8(vt.MovRR) {
			return fstep{op: c2MovILdMov, rd: a.rd, imm: a.imm, ra: a.rb, rb: a.rc, imm2: a.imm2, rc: b.rd, re: b.ra, pc0: a.pc0}, true
		}
	}
	return fstep{}, false
}

// guardRange is one base register's static footprint within a block:
// every guarded access off base lies in [R[base]+lo, R[base]+hi).
type guardRange struct {
	base uint8
	lo   int64
	hi   int64
}

// fprog is the fused view of a module.
type fprog struct {
	ins    []finstr
	steps  []fstep
	guards []guardRange
	// o2f maps an original instruction index to the fused index of the
	// block starting there, or -1 for non-leaders.
	o2f   []int32
	stats FuseStats
}

// SetFuse enables or disables the fused dispatch view (the -nofuse escape
// hatch). The decoded program and code bytes are unaffected either way.
func (mod *Module) SetFuse(on bool) { mod.noFuse = !on }

// FuseEnabled reports whether fused dispatch is active for this module.
func (mod *Module) FuseEnabled() bool { return !mod.noFuse }

// FuseStats returns the fusion statistics for the module, building the
// fused view if it does not exist yet. The zero value is returned when
// fusion is disabled.
func (mod *Module) FuseStats() FuseStats {
	if fp := mod.fused(); fp != nil {
		return fp.stats
	}
	return FuseStats{}
}

// fused returns the module's fused program, building it on first use, or
// nil when fusion is disabled.
func (mod *Module) fused() *fprog {
	if mod.noFuse {
		return nil
	}
	mod.fuseOnce.Do(func() { mod.fp = fuse(mod) })
	return mod.fp
}

type patch struct {
	idx  int32 // finstr to patch
	orig int   // original instruction index the target resolves through
}

type cloneReq struct {
	s, e     int
	guardIdx int32
}

type fuseBuilder struct {
	mod     *Module
	fp      *fprog
	guarded map[int]bool // instr index -> access covered by a block guard
	patchB  []patch      // tgt <- o2f[orig]
	patchC  []patch      // imm2 <- o2f[orig] (call continuations)
	clones  []cloneReq
}

// fuse builds the fused view of a loaded module.
func fuse(mod *Module) *fprog {
	instrs := mod.Prog.Instrs
	n := len(instrs)
	fp := &fprog{o2f: make([]int32, n+1)}
	for i := range fp.o2f {
		fp.o2f[i] = -1
	}
	if n == 0 {
		return fp
	}

	// Leaders: block entry points. Besides the usual (branch/call targets,
	// fall-throughs after control transfers), any instruction offset
	// materialized as a constant is a leader so indirect calls always land
	// on a block entry.
	leader := make([]bool, n+1)
	leader[0] = true
	for k := range instrs {
		in := &instrs[k]
		switch in.Op {
		case vt.Br, vt.BrCC, vt.BrNZ, vt.Call:
			leader[mod.branchIdx[k]] = true
			leader[k+1] = true
		case vt.CallInd, vt.CallRT, vt.Ret, vt.Trap:
			leader[k+1] = true
		case vt.MovRI:
			if in.Imm >= 0 && in.Imm <= math.MaxInt32 {
				if t := mod.indexOf(int32(in.Imm)); t >= 0 {
					leader[t] = true
				}
			}
		case vt.MovZ:
			v := uint64(uint16(in.Imm)) << (16 * uint(in.Cond))
			for j := k + 1; j < n && instrs[j].Op == vt.MovK && instrs[j].RD == in.RD; j++ {
				sh := 16 * uint(instrs[j].Cond)
				v = v&^(uint64(0xFFFF)<<sh) | uint64(uint16(instrs[j].Imm))<<sh
			}
			if v <= uint64(len(mod.Prog.Index)) {
				if t := mod.indexOf(int32(v)); t >= 0 {
					leader[t] = true
				}
			}
		}
	}
	for i := range mod.unwind {
		if t := mod.indexOf(mod.unwind[i].Start); t >= 0 {
			leader[t] = true
		}
	}

	b := &fuseBuilder{mod: mod, fp: fp, guarded: map[int]bool{}}

	// Primary encoding: blocks in original order, so fall-through between
	// consecutive blocks needs no glue.
	for s := 0; s < n; {
		e := s + 1
		for e < n && !leader[e] {
			e++
		}
		fp.o2f[s] = int32(len(fp.ins))
		ranges, cands := analyzeBlock(instrs, s, e)
		gidx := int32(-1)
		// A guard pays for itself with two or more hoisted checks, or with a
		// single check sitting among enough runnable instructions that the
		// unchecked access keeps one long run intact instead of splitting it.
		if len(cands) >= 2 {
			for _, k := range cands {
				b.guarded[k] = true
			}
			if len(ranges) == 1 {
				// Single-footprint block (the common case): the range
				// lives inline in the micro-op, no guard-table walk.
				gidx = b.emit(finstr{
					op: xGuard1, ra: ranges[0].base,
					imm: ranges[0].lo, imm2: ranges[0].hi, pc0: int32(s),
				})
			} else {
				goff := len(fp.guards)
				fp.guards = append(fp.guards, ranges...)
				gidx = b.emit(finstr{op: xGuard, cnt: uint8(len(ranges)), imm: int64(goff), pc0: int32(s)})
			}
			b.clones = append(b.clones, cloneReq{s: s, e: e, guardIdx: gidx})
			fp.stats.GuardedBlocks++
		}
		b.encodeBody(s, e, true)
		// Guard+run merge: when a single-range guard's whole block encoded
		// to exactly one run micro-op, fold the guard and the run into one
		// dispatch. The run slot stays behind as a dead payload holder; the
		// merged op reads its steps and branch fields directly.
		if gidx >= 0 && fp.ins[gidx].op == xGuard1 && int(gidx)+2 == len(fp.ins) {
			switch fp.ins[gidx+1].op {
			case xRun:
				fp.ins[gidx].op = xG1Run
			case xRunBr:
				fp.ins[gidx].op = xG1RunBr
			case xRunBrCC:
				fp.ins[gidx].op = xG1RunBrCC
			case xRunBrNZ:
				fp.ins[gidx].op = xG1RunBrNZ
			}
		}
		s = e
	}
	primary := len(fp.ins)

	// Checked clones: guard slow paths reproducing unfused per-access
	// checks (and therefore unfused trap attribution) exactly.
	for _, c := range b.clones {
		fp.ins[c.guardIdx].tgt = int32(len(fp.ins))
		b.encodeBody(c.s, c.e, false)
		switch instrs[c.e-1].Op {
		case vt.Br, vt.Ret, vt.Trap, vt.Call, vt.CallInd:
			// Block exits on its own; no glue.
		default:
			if c.e < n {
				idx := b.emit(finstr{op: xJmp, pc0: int32(c.e)})
				b.patchB = append(b.patchB, patch{idx: idx, orig: c.e})
			}
		}
	}

	for _, p := range b.patchB {
		fp.ins[p.idx].tgt = fp.o2f[p.orig]
	}
	for _, p := range b.patchC {
		fp.ins[p.idx].imm2 = int64(fp.o2f[p.orig])
	}

	fp.stats.Instrs = n
	fp.stats.MicroOps = primary
	fp.stats.CloneOps = len(fp.ins) - primary
	cntFuseModules.Inc()
	cntFuseInstrs.Add(int64(n))
	cntFuseMicro.Add(int64(primary))
	return fp
}

// intWrites returns the set of integer registers written by an instruction,
// as a bitmap. Used to decide which accesses a block guard may cover: an
// access is guardable only while its base register still holds its
// block-entry value.
func intWrites(in *vt.Instr) uint32 {
	switch in.Op {
	case vt.MulWideU, vt.MulWideS:
		return 1<<in.RD | 1<<in.RC
	case vt.Nop, vt.Store8, vt.Store16, vt.Store32, vt.Store64,
		vt.StoreU8, vt.StoreU16, vt.StoreU32, vt.StoreU64,
		vt.FStore, vt.FStoreU, vt.FLoad, vt.FLoadU, vt.FMovRR, vt.FMovRI,
		vt.FAdd, vt.FSub, vt.FMul, vt.FDiv, vt.CvtSI2F, vt.MovFR,
		vt.Br, vt.BrCC, vt.BrNZ, vt.Call, vt.CallInd, vt.CallRT,
		vt.Ret, vt.Trap, vt.TrapNZ:
		return 0
	}
	return 1 << in.RD
}

// analyzeBlock computes the guardable accesses of block [s,e) and their
// per-base-register footprint ranges. Base registers derived in-block from
// an entry register by MovRR/Lea/AddI/SubI chains are folded back to that
// root register plus a constant offset, so address-computation-then-load
// sequences (the dominant compiled-code idiom) stay guardable: the guard
// range on the root covers the derived access exactly because the chain is
// modular arithmetic on the root's entry value.
func analyzeBlock(instrs []vt.Instr, s, e int) ([]guardRange, []int) {
	type span struct {
		lo, hi int64
		cands  []int
	}
	// deriv[r]: register r holds entry-value(root)+off. Registers start as
	// their own roots; a non-foldable write invalidates the derivation.
	type dv struct {
		root uint8
		off  int64
		ok   bool
	}
	var deriv [32]dv
	for i := range deriv {
		deriv[i] = dv{root: uint8(i), ok: true}
	}
	const offCap = 1 << 33
	var order []uint8
	acc := map[uint8]*span{}
	for k := s; k < e; k++ {
		in := &instrs[k]
		if sz, _, isMem := in.Op.MemRef(); isMem {
			if d := deriv[in.RA&31]; d.ok &&
				in.Imm > -offCap && in.Imm < offCap {
				lo, hi := d.off+in.Imm, d.off+in.Imm+int64(sz)
				sp := acc[d.root]
				if sp == nil {
					sp = &span{lo: lo, hi: hi}
					acc[d.root] = sp
					order = append(order, d.root)
				} else {
					if lo < sp.lo {
						sp.lo = lo
					}
					if hi > sp.hi {
						sp.hi = hi
					}
				}
				sp.cands = append(sp.cands, k)
			}
		}
		switch in.Op {
		case vt.MovRR:
			deriv[in.RD&31] = deriv[in.RA&31]
		case vt.Lea, vt.AddI, vt.SubI:
			d := deriv[in.RA&31]
			off := in.Imm
			if in.Op == vt.SubI {
				off = -off
			}
			d.off += off
			if d.off <= -offCap || d.off >= offCap || in.Imm <= -offCap || in.Imm >= offCap {
				d.ok = false
			}
			deriv[in.RD&31] = d
		default:
			if w := intWrites(in); w != 0 {
				for r := 0; r < 32; r++ {
					if w&(1<<r) != 0 {
						deriv[r].ok = false
					}
				}
			}
		}
	}
	var ranges []guardRange
	var cands []int
	for _, base := range order {
		sp := acc[base]
		// The guard's wrap reasoning requires a bounded footprint; huge or
		// overflowing spans keep their accesses individually checked.
		if sp.hi < sp.lo || sp.hi-sp.lo > 1<<32 {
			continue
		}
		ranges = append(ranges, guardRange{base: base, lo: sp.lo, hi: sp.hi})
		cands = append(cands, sp.cands...)
	}
	return ranges, cands
}

func (b *fuseBuilder) emit(fi finstr) int32 {
	b.fp.ins = append(b.fp.ins, fi)
	return int32(len(b.fp.ins) - 1)
}

// emitSingle emits instruction k as a checked single micro-op: the fused
// engine's exact transliteration of one unfused dispatch.
func (b *fuseBuilder) emitSingle(k int) {
	in := &b.mod.Prog.Instrs[k]
	fi := finstr{
		op: uint8(in.Op), n: 1, cond: in.Cond,
		rd: in.RD, ra: in.RA, rb: in.RB, rc: in.RC,
		imm: in.Imm, pc0: int32(k),
	}
	idx := b.emit(fi)
	switch in.Op {
	case vt.Br, vt.BrCC, vt.BrNZ:
		b.patchB = append(b.patchB, patch{idx: idx, orig: int(b.mod.branchIdx[k])})
	case vt.Call:
		b.patchB = append(b.patchB, patch{idx: idx, orig: int(b.mod.branchIdx[k])})
		b.patchC = append(b.patchC, patch{idx: idx, orig: k + 1})
	case vt.CallInd:
		b.patchC = append(b.patchC, patch{idx: idx, orig: k + 1})
	}
}

// isRunnable reports whether an operation may live inside an xRun
// superinstruction: no trap, no control transfer.
func isRunnable(op vt.Op) bool {
	return op < vt.NumOps && !op.CanTrap() && !op.IsBranch() &&
		!op.IsCall() && op != vt.Ret
}

// encodeBody encodes block [s,e). In fast mode it applies every fusion
// (guarded accesses unchecked, runs, pairs, folds, compare-and-branch); in
// clone mode it emits checked singles only, reproducing unfused semantics
// per instruction.
func (b *fuseBuilder) encodeBody(s, e int, fast bool) {
	if !fast {
		for k := s; k < e; k++ {
			b.emitSingle(k)
		}
		return
	}
	instrs := b.mod.Prog.Instrs
	var steps []fstep
	runN := 0   // original instructions covered by pending steps
	runMem := 0 // guarded (unchecked) memory steps pending
	flush := func() {
		if len(steps) == 0 {
			return
		}
		steps = combineSteps(steps)
		// Per-op MemOps charges of the main-stream cases. Store-to-load
		// forwarding can hide a load's charge inside a MovRR, in which case
		// only a run's bulk rc charge stays exact — then skip inlining.
		exp, narrow := 0, true
		for i := range steps {
			if st := &steps[i]; st.op >= uLoad8 && st.op < cMovSt64 {
				exp++
			} else {
				exp += int(cMemOps(st.op))
				narrow = narrow && st.op < cWideFirst
			}
		}
		if len(steps) <= 2 && exp == runMem && narrow {
			// Short runs cost more as a run (run dispatch + stepRun call)
			// than as direct micro-ops: emit each step into the main
			// stream. The first carries the whole run's instruction count.
			for i := range steps {
				st := steps[i]
				nn := 0
				if i == 0 {
					nn = runN
				}
				b.emit(finstr{
					op: st.op, n: uint8(nn), cond: st.cond,
					rd: st.rd, ra: st.ra, rb: st.rb, rc: st.rc, op1: st.re,
					cnt: cMemOps(st.op),
					imm: st.imm, imm2: st.imm2, pc0: st.pc0,
				})
			}
		} else {
			off := len(b.fp.steps)
			b.fp.steps = append(b.fp.steps, steps...)
			b.emit(finstr{
				op: xRun, n: uint8(runN), cnt: uint8(len(steps)),
				rc: uint8(runMem), imm: int64(off), pc0: steps[0].pc0,
			})
		}
		steps = steps[:0]
		runN, runMem = 0, 0
	}
	push := func(st fstep, orig int) {
		if len(steps) >= 255 || runN+orig > 255 {
			flush()
		}
		steps = append(steps, st)
		runN += orig
		if st.op >= uLoad8 {
			runMem++
		}
	}
	// flushBr drains the pending steps into a run that executes the
	// block-terminating branch at instruction k inline (one dispatch for
	// run plus branch). Returns false when there is nothing pending or no
	// headroom, leaving the branch to emitSingle.
	flushBr := func(xop uint8, k int) bool {
		if len(steps) == 0 || runN >= 255 {
			return false
		}
		in := &instrs[k]
		steps = combineSteps(steps)
		exp, narrow := 0, true
		for i := range steps {
			if st := &steps[i]; st.op >= uLoad8 && st.op < cMovSt64 {
				exp++
			} else {
				exp += int(cMemOps(st.op))
				narrow = narrow && st.op < cWideFirst
			}
		}
		if len(steps) <= 2 && exp == runMem && narrow {
			// A tiny run before a branch is cheaper as direct micro-ops plus
			// a plain branch dispatch than as a run-with-branch micro-op.
			for i := range steps {
				st := steps[i]
				nn := 0
				if i == 0 {
					nn = runN
				}
				b.emit(finstr{
					op: st.op, n: uint8(nn), cond: st.cond,
					rd: st.rd, ra: st.ra, rb: st.rb, rc: st.rc, op1: st.re,
					cnt: cMemOps(st.op),
					imm: st.imm, imm2: st.imm2, pc0: st.pc0,
				})
			}
			steps = steps[:0]
			runN, runMem = 0, 0
			return false
		}
		off := len(b.fp.steps)
		b.fp.steps = append(b.fp.steps, steps...)
		idx := b.emit(finstr{
			op: xop, n: uint8(runN + 1), cnt: uint8(len(steps)),
			rc: uint8(runMem), cond: in.Cond, ra: in.RA, rb: in.RB,
			imm: int64(off), pc0: steps[0].pc0,
		})
		b.patchB = append(b.patchB, patch{idx: idx, orig: int(b.mod.branchIdx[k])})
		steps = steps[:0]
		runN, runMem = 0, 0
		return true
	}

	k := s
	for k < e {
		in := &instrs[k]
		op := in.Op

		// Compare-and-branch fusion: SetCC/FCmp feeding BrNZ on the
		// result register. The 0/1 result is still written, so register
		// state matches the unfused loop exactly.
		if (op == vt.SetCC || op == vt.FCmp) && k+1 < e &&
			instrs[k+1].Op == vt.BrNZ && instrs[k+1].RA == in.RD {
			flush()
			fop := xCmpBr
			if op == vt.FCmp {
				fop = xFCmpBr
			}
			idx := b.emit(finstr{
				op: fop, n: 2, cond: in.Cond,
				rd: in.RD, ra: in.RA, rb: in.RB, pc0: int32(k),
			})
			b.patchB = append(b.patchB, patch{idx: idx, orig: int(b.mod.branchIdx[k+1])})
			k += 2
			continue
		}

		// Immediate materialization: MovZ followed by MovK on the same
		// register folds into one constant store.
		if op == vt.MovZ && k+1 < e && instrs[k+1].Op == vt.MovK && instrs[k+1].RD == in.RD {
			v := uint64(uint16(in.Imm)) << (16 * uint(in.Cond))
			j := k + 1
			for j < e && instrs[j].Op == vt.MovK && instrs[j].RD == in.RD {
				sh := 16 * uint(instrs[j].Cond)
				v = v&^(uint64(0xFFFF)<<sh) | uint64(uint16(instrs[j].Imm))<<sh
				j++
			}
			push(fstep{op: uint8(vt.MovRI), rd: in.RD, imm: int64(v), pc0: int32(k)}, j-k)
			k = j
			continue
		}

		// Address chains: AddI/SubI/Lea accumulation on one register folds
		// into a single add (modular arithmetic makes the fold exact).
		if op == vt.AddI || op == vt.SubI || op == vt.Lea {
			acc := in.Imm
			if op == vt.SubI {
				acc = -in.Imm
			}
			j := k + 1
			for j < e {
				nx := &instrs[j]
				if (nx.Op == vt.AddI || nx.Op == vt.SubI || nx.Op == vt.Lea) &&
					nx.RA == in.RD && nx.RD == in.RD {
					if nx.Op == vt.SubI {
						acc -= nx.Imm
					} else {
						acc += nx.Imm
					}
					j++
					continue
				}
				break
			}
			if j > k+1 {
				push(fstep{op: uint8(vt.AddI), rd: in.RD, ra: in.RA, imm: acc, pc0: int32(k)}, j-k)
				k = j
				continue
			}
		}

		// Statically unchecked accesses take the same unchecked-step path
		// as guard-covered ones: the compile-time proof replaces the guard.
		if _, isStore, isMem := op.MemRef(); isMem && (b.guarded[k] || op.UncheckedMem()) {
			// Store-to-load forwarding: a guarded 64-bit load from the
			// address an adjacent guarded store just wrote reads the
			// stored register instead of memory. Still one MemOp.
			if !isStore && len(steps) > 0 {
				pv := &steps[len(steps)-1]
				if (op.CheckedMem() == vt.Load64 && pv.op == uStore64 ||
					op.CheckedMem() == vt.FLoad && pv.op == uFStore) &&
					pv.ra == in.RA && pv.imm == in.Imm {
					mv := uint8(vt.MovRR)
					if op.CheckedMem() == vt.FLoad {
						mv = uint8(vt.FMovRR)
					}
					push(fstep{op: mv, rd: in.RD, ra: pv.rb, pc0: int32(k)}, 1)
					runMem++
					k++
					continue
				}
			}
			// Bounds hoisted into the block guard: unchecked step.
			push(fstep{
				op: unchecked(op), cond: in.Cond,
				rd: in.RD, ra: in.RA, rb: in.RB, imm: in.Imm, pc0: int32(k),
			}, 1)
			k++
			continue
		}

		if isRunnable(op) {
			// op+Store fusion: a lone simple op feeding a checked store.
			if len(steps) == 0 && k+1 < e {
				nx := &instrs[k+1]
				if _, isStore, isMem := nx.Op.MemRef(); isMem && isStore &&
					!b.guarded[k+1] && !nx.Op.UncheckedMem() {
					sz, _, _ := nx.Op.MemRef()
					// The simple op lives as a one-step run referenced by
					// tgt; the dispatcher executes it before the store.
					stepIdx := int32(len(b.fp.steps))
					b.fp.steps = append(b.fp.steps, fstep{
						op: uint8(op), cond: in.Cond,
						rd: in.RD, ra: in.RA, rb: in.RB, rc: in.RC,
						imm: in.Imm, pc0: int32(k),
					})
					b.emit(finstr{
						op: xOpStore, n: 2, cnt: sz,
						op1: uint8(nx.Op), ra: nx.RA, rb: nx.RB, imm: nx.Imm,
						pc0: int32(k), tgt: stepIdx,
					})
					k += 2
					continue
				}
			}
			push(fstep{
				op: uint8(op), cond: in.Cond,
				rd: in.RD, ra: in.RA, rb: in.RB, rc: in.RC,
				imm: in.Imm, pc0: int32(k),
			}, 1)
			k++
			continue
		}

		// A block-terminating branch executes inline at the end of the
		// pending run: one dispatch for the body and the branch.
		switch op {
		case vt.Br:
			if flushBr(xRunBr, k) {
				k++
				continue
			}
		case vt.BrCC:
			if flushBr(xRunBrCC, k) {
				k++
				continue
			}
		case vt.BrNZ:
			if flushBr(xRunBrNZ, k) {
				k++
				continue
			}
		}

		// Non-runnable: flush the pending run, then try memory pairs.
		flush()
		if sz, isStore, isMem := op.MemRef(); isMem && !isStore && k+1 < e {
			// Load+op fusion: checked load feeding a simple operation. An
			// unchecked memory op is runnable but must not ride along as the
			// follow step: its access would bypass the MemOps charge.
			nx := &instrs[k+1]
			if isRunnable(nx.Op) && !nx.Op.UncheckedMem() {
				// The follow op lives as a one-step run referenced by tgt;
				// the dispatcher executes it after the load succeeds.
				stepIdx := int32(len(b.fp.steps))
				b.fp.steps = append(b.fp.steps, fstep{
					op: uint8(nx.Op), cond: nx.Cond,
					rd: nx.RD, ra: nx.RA, rb: nx.RB, rc: nx.RC,
					imm: nx.Imm, pc0: int32(k + 1),
				})
				b.emit(finstr{
					op: xLoadOp, n: 2, cnt: sz,
					op1: uint8(op), rd: in.RD, ra: in.RA, imm: in.Imm,
					pc0: int32(k), tgt: stepIdx,
				})
				k += 2
				continue
			}
		}
		b.emitSingle(k)
		k++
	}
	flush()
}
