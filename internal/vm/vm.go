// Package vm executes machine code produced for the virtual targets defined
// in package vt.
//
// A Machine owns a flat byte-addressable memory, a register file, a runtime
// function table, and the unwind-information registry. Compiled code is
// loaded as a Module: the byte stream is decoded once (the analog of mapping
// executable memory) and then executed by a dispatch loop. The machine counts
// executed instructions, so code quality differences between back-ends are
// observable both as wall-clock time and as architecture-neutral instruction
// counts.
package vm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"qcc/internal/obs"
	"qcc/internal/vt"
)

// Trap reports abnormal termination of generated code, the analog of a C++
// exception thrown from an Umbra runtime function or trap instruction.
type Trap struct {
	Code vt.TrapCode
	// PC is the byte offset of the trapping instruction in module code.
	PC int32
	// Frames holds the unwound call-site byte offsets, innermost first,
	// resolved against registered unwind information where available.
	Frames []string
	// Msg is an optional runtime-provided message.
	Msg string
}

func (t *Trap) Error() string {
	if t.Msg != "" {
		return fmt.Sprintf("trap %s at +%d: %s", t.Code, t.PC, t.Msg)
	}
	return fmt.Sprintf("trap %s at +%d", t.Code, t.PC)
}

// RTFunc is a runtime function callable from generated code. Arguments are
// read from the machine's integer registers according to the calling
// convention; results are written to the return registers.
type RTFunc func(m *Machine) error

// UnwindRange is registered unwind information for one compiled function,
// the analog of DWARF CFI registered with the C++ runtime.
type UnwindRange struct {
	Start, End int32
	Name       string
	// CFI is the encoded call-frame information; the machine only needs
	// it for symbolizing traps, but back-ends must produce it.
	CFI []byte
	// Func is the index of the qir function this range was compiled from,
	// or -1 for ranges without a source function (e.g. linker-generated
	// stubs). It lets the profiler map a sampled PC back to the provenance
	// table without relying on symbol-name matching.
	Func int32
}

// Module is loaded, decoded machine code.
type Module struct {
	Arch vt.Arch
	Prog *vt.Program
	// Code is the raw machine-code image the module was loaded from,
	// retained so callers can compare linked output byte for byte (the
	// parallel-vs-sequential conformance tests) and size caches.
	Code []byte
	// branchIdx[i] is the instruction index of instruction i's branch
	// target; call targets are translated the same way at load time.
	branchIdx []int32
	unwind    []UnwindRange

	// Fused-dispatch view (fuse.go), built lazily on first Call so load
	// time is unaffected; noFuse is the -nofuse escape hatch.
	noFuse   bool
	fuseOnce sync.Once
	fp       *fprog
}

// Funcs returns the registered unwind ranges (one per function).
func (mod *Module) Funcs() []UnwindRange { return mod.unwind }

// Load decodes machine code into an executable module.
func Load(arch vt.Arch, code []byte) (*Module, error) {
	prog, err := vt.Decode(arch, code)
	if err != nil {
		return nil, err
	}
	mod := &Module{Arch: arch, Prog: prog, Code: code}
	mod.branchIdx = make([]int32, len(prog.Instrs))
	for k := range prog.Instrs {
		in := &prog.Instrs[k]
		switch in.Op {
		case vt.Br, vt.BrCC, vt.BrNZ:
			idx := mod.indexOf(in.Target)
			if idx < 0 {
				return nil, fmt.Errorf("vm: branch at %d to unaligned offset %d", prog.Offsets[k], in.Target)
			}
			mod.branchIdx[k] = idx
		case vt.Call:
			idx := mod.indexOf(int32(in.Imm))
			if idx < 0 {
				return nil, fmt.Errorf("vm: call at %d to unaligned offset %d", prog.Offsets[k], in.Imm)
			}
			mod.branchIdx[k] = idx
		}
	}
	return mod, nil
}

func (mod *Module) indexOf(off int32) int32 {
	if off < 0 || int(off) >= len(mod.Prog.Index) {
		return -1
	}
	return mod.Prog.Index[off]
}

// RegisterUnwind attaches unwind information for the functions of a module.
func (mod *Module) RegisterUnwind(ranges []UnwindRange) {
	mod.unwind = append(mod.unwind, ranges...)
}

// Unwind returns the registered PC-range table (shared slice; callers must
// not mutate it). The profiler uses it to map sampled byte offsets back to
// the compiled function.
func (mod *Module) Unwind() []UnwindRange { return mod.unwind }

func (mod *Module) symbolize(off int32) string {
	for i := range mod.unwind {
		r := &mod.unwind[i]
		if off >= r.Start && off < r.End {
			return fmt.Sprintf("%s+%d", r.Name, off-r.Start)
		}
	}
	return fmt.Sprintf("+%d", off)
}

// nullGuard: addresses below this value trap as null dereferences.
const nullGuard = 4096

// Machine is a virtual CPU plus memory. It is not safe for concurrent use.
// The parallel compilation driver (internal/backend/pcc) therefore keeps
// all Machine mutation — string-constant interning, runtime binding,
// loading — in the sequential BeginModule/Link steps; worker goroutines
// only read.
type Machine struct {
	// R is the integer register file (shared across frames; callee-save
	// discipline is the generated code's responsibility).
	R [32]uint64
	// F is the floating-point register file.
	F [16]float64
	// Mem is the flat memory. Address 0..nullGuard-1 is unmapped.
	Mem []byte
	// Executed counts executed instructions since creation.
	Executed int64
	// Branches counts executed branch instructions (taken or not) since
	// creation; MemOps counts executed loads and stores. Together with
	// Executed they give an architecture-neutral profile of generated code
	// quality per query.
	Branches int64
	MemOps   int64
	// RT is the runtime function table.
	RT []RTFunc
	// StrictUnchecked enables the safety-differential verification mode:
	// unchecked memory operations (vt.LoadU*/StoreU*/FLoadU/FStoreU) re-run
	// the full bounds/null check and raise TrapElimCheck when it would have
	// fired. It also disables fused dispatch so every unchecked access is
	// individually verified rather than covered by run guards.
	StrictUnchecked bool

	target   *vt.Target
	heapTop  uint64
	stackTop uint64
	mod      *Module
	depth    int
	callPCs  []int32 // return-address stack (instruction indices)
	fret     []int32 // fused-engine return stack (micro-op indices), in lockstep with callPCs
	callback func(addr uint64, args ...uint64) ([2]uint64, error)
	sampler  *Sampler
}

// Config controls Machine creation.
type Config struct {
	Arch      vt.Arch
	MemSize   int // total memory, default 64 MiB
	StackSize int // stack region at the top of memory, default 1 MiB
}

// New creates a machine for the given architecture.
func New(cfg Config) *Machine {
	if cfg.MemSize == 0 {
		cfg.MemSize = 64 << 20
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = 1 << 20
	}
	m := &Machine{
		Mem:      make([]byte, cfg.MemSize),
		target:   vt.ForArch(cfg.Arch),
		heapTop:  nullGuard,
		stackTop: uint64(cfg.MemSize),
	}
	return m
}

// Target returns the architecture descriptor the machine executes.
func (m *Machine) Target() *vt.Target { return m.target }

// Alloc reserves size bytes of machine memory (8-byte aligned) and returns
// the address. The heap grows toward the stack region at the top of memory;
// exhausting it panics, as the memory size is a benchmark configuration
// rather than a recoverable condition.
func (m *Machine) Alloc(size uint64) uint64 {
	size = (size + 7) &^ 7
	addr := m.heapTop
	m.heapTop += size
	if m.heapTop > m.stackTop-uint64(1<<20) {
		panic(fmt.Sprintf("vm: out of memory (heap %d, mem %d); increase Config.MemSize", m.heapTop, len(m.Mem)))
	}
	return addr
}

// HeapUsed returns the number of allocated heap bytes.
func (m *Machine) HeapUsed() uint64 { return m.heapTop - nullGuard }

// ResetHeap releases all heap allocations (the per-query arena reset).
func (m *Machine) ResetHeap() { m.heapTop = nullGuard }

// HeapMark returns the current heap position for later ResetHeapTo.
func (m *Machine) HeapMark() uint64 { return m.heapTop }

// ResetHeapTo releases allocations made after mark (benchmark harness reset
// between queries, keeping loaded table data).
func (m *Machine) ResetHeapTo(mark uint64) {
	if mark >= nullGuard && mark <= m.heapTop {
		m.heapTop = mark
	}
}

// HeapRoom returns how many more bytes Alloc can hand out before the
// out-of-memory panic (the 1 MiB stack margin is already subtracted).
// The morsel-parallel executor uses it to size worker arenas.
func (m *Machine) HeapRoom() uint64 {
	limit := m.stackTop - uint64(1<<20)
	if m.heapTop >= limit {
		return 0
	}
	return limit - m.heapTop
}

// NewWorker creates a machine that aliases base's flat memory but owns a
// private register file, call stack, and counters, with its heap and stack
// confined to the carved arena [arenaBase, arenaEnd). The arena must come
// from base.Alloc so workers never overlap each other or the shared heap;
// table data loaded into base is readable by every worker at the same
// addresses. Workers are still single-goroutine machines — sharing Mem is
// safe only because each worker writes exclusively inside its own arena.
//
// The arena end doubles as the worker's stack top, and Alloc keeps the
// usual 1 MiB margin below it, so arenas smaller than ~2 MiB leave no
// usable heap.
func NewWorker(base *Machine, arenaBase, arenaEnd uint64) *Machine {
	if arenaBase < nullGuard || arenaEnd > uint64(len(base.Mem)) || arenaBase >= arenaEnd {
		panic(fmt.Sprintf("vm: NewWorker arena [%d,%d) outside memory", arenaBase, arenaEnd))
	}
	return &Machine{
		Mem:             base.Mem,
		RT:              base.RT,
		StrictUnchecked: base.StrictUnchecked,
		target:          base.target,
		heapTop:         (arenaBase + 7) &^ 7,
		stackTop:        arenaEnd,
	}
}

// Bytes returns memory [addr, addr+n) or an error trap.
func (m *Machine) Bytes(addr, n uint64) ([]byte, error) {
	if addr < nullGuard {
		return nil, &Trap{Code: vt.TrapNull}
	}
	if addr+n > uint64(len(m.Mem)) || addr+n < addr {
		return nil, &Trap{Code: vt.TrapOOB, Msg: fmt.Sprintf("addr %#x len %d", addr, n)}
	}
	return m.Mem[addr : addr+n : addr+n], nil
}

// Module returns the module currently executing (valid inside RT functions).
func (m *Machine) Module() *Module { return m.mod }

// Call executes the function at byte offset entry in mod. Integer arguments
// are placed in the argument registers; the two return registers are
// returned. A *Trap error reports generated-code failure.
func (m *Machine) Call(mod *Module, entry int32, args ...uint64) ([2]uint64, error) {
	idx := mod.indexOf(entry)
	if idx < 0 {
		return [2]uint64{}, fmt.Errorf("vm: call to unaligned entry %d", entry)
	}
	for i, a := range args {
		if i >= len(m.target.IntArgs) {
			return [2]uint64{}, fmt.Errorf("vm: too many arguments (%d)", len(args))
		}
		m.R[m.target.IntArgs[i]] = a
	}
	if m.depth == 0 {
		m.R[m.target.SP] = m.stackTop
	}
	prevMod := m.mod
	m.mod = mod
	m.depth++
	var err error
	if fp := mod.fused(); fp != nil && !m.StrictUnchecked && int(idx) < len(fp.o2f) && fp.o2f[idx] >= 0 {
		err = m.runGuarded(func() error { return m.runFused(mod, fp, fp.o2f[idx]) })
	} else {
		err = m.runGuarded(func() error { return m.run(mod, idx) })
	}
	m.depth--
	m.mod = prevMod
	if t, ok := err.(*Trap); ok {
		if len(t.Frames) == 0 {
			t.Frames = append(t.Frames, mod.symbolize(t.PC))
		}
		// Record top-level traps in the always-on flight recorder so a
		// crashing query leaves a post-mortem trail next to the most
		// recent samples and spans.
		if m.depth == 0 {
			frame := ""
			if len(t.Frames) > 0 {
				frame = t.Frames[0]
			}
			obs.FlightRec().Record(obs.FlightTrap, t.Code.String()+" at "+frame, int64(t.PC))
		}
	}
	return [2]uint64{m.R[m.target.IntRet[0]], m.R[m.target.IntRet[1]]}, err
}

// SetCallback installs a CallAt re-entry hook for execution engines that do
// not run machine code (the bytecode interpreter); addr is then
// engine-defined (a function index).
func (m *Machine) SetCallback(fn func(addr uint64, args ...uint64) ([2]uint64, error)) {
	m.callback = fn
}

// CallAt re-enters generated code from a runtime function (e.g. a sort
// comparator callback). addr is a code byte offset in the current module,
// or an engine-defined address when an interpreter callback is installed.
func (m *Machine) CallAt(addr uint64, args ...uint64) ([2]uint64, error) {
	if m.mod == nil {
		if m.callback != nil {
			return m.callback(addr, args...)
		}
		return [2]uint64{}, fmt.Errorf("vm: CallAt outside execution")
	}
	// Preserve the caller-visible registers that the callback may clobber:
	// the callback follows the calling convention, so callee-saved
	// registers are safe, but argument registers are not. The runtime
	// caller saves what it needs; here we only set up arguments.
	saveSP := m.R[m.target.SP]
	res, err := m.Call(m.mod, int32(addr), args...)
	m.R[m.target.SP] = saveSP
	return res, err
}

// runGuarded executes one dispatch-loop invocation, converting host runtime
// faults (out-of-range slice accesses from unchecked memory operations whose
// eliminated check would have fired) into TrapElimCheck traps so a
// static-analysis bug surfaces as a diagnosable trap instead of crashing the
// host. Non-runtime panics — e.g. Alloc's deliberate out-of-memory panic —
// propagate unchanged.
func (m *Machine) runGuarded(f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		re, ok := r.(runtime.Error)
		if !ok {
			panic(r)
		}
		err = &Trap{Code: vt.TrapElimCheck, Msg: re.Error()}
	}()
	return f()
}

func (m *Machine) run(mod *Module, pc int32) error {
	instrs := mod.Prog.Instrs
	offs := mod.Prog.Offsets
	bidx := mod.branchIdx
	R := &m.R
	F := &m.F
	callBase := len(m.callPCs)
	count := int64(0)
	branches := int64(0)
	memops := int64(0)
	defer func() {
		m.Executed += count
		m.Branches += branches
		m.MemOps += memops
	}()

	trap := func(code vt.TrapCode, msg string) error {
		t := &Trap{Code: code, PC: offs[pc], Msg: msg}
		t.Frames = append(t.Frames, mod.symbolize(offs[pc]))
		for i := len(m.callPCs) - 1; i >= callBase; i-- {
			t.Frames = append(t.Frames, mod.symbolize(offs[m.callPCs[i]]))
		}
		m.callPCs = m.callPCs[:callBase]
		return t
	}

	mem := m.Mem
	loadAddr := func(a uint64, n uint64) (uint64, bool) {
		memops++
		// a+n >= a rejects address wraparound, which would otherwise pass
		// the length test and panic on the slice index (cf. Machine.Bytes).
		return a, a >= nullGuard && a+n <= uint64(len(mem)) && a+n >= a
	}
	// uncheckedAddr is the unchecked-access path: static analysis proved the
	// access safe, so the software check is skipped (a genuinely bad address
	// faults on the slice index and runGuarded reports TrapElimCheck).
	// StrictUnchecked re-runs the full check to catch analysis bugs eagerly.
	strict := m.StrictUnchecked
	uncheckedAddr := func(a uint64, n uint64) (uint64, bool) {
		memops++
		if strict {
			return a, a >= nullGuard && a+n <= uint64(len(mem)) && a+n >= a
		}
		return a, true
	}

	// PC sampling is checked at branch checkpoints only (see Sampler); sm
	// is nil on the default path, making the check one predictable test.
	sm := m.sampler

	for {
		in := &instrs[pc]
		count++
		switch in.Op {
		case vt.Nop:
		case vt.MovRR:
			R[in.RD] = R[in.RA]
		case vt.MovRI:
			R[in.RD] = uint64(in.Imm)
		case vt.MovZ:
			R[in.RD] = uint64(uint16(in.Imm)) << (16 * uint(in.Cond))
		case vt.MovK:
			sh := 16 * uint(in.Cond)
			R[in.RD] = R[in.RD]&^(uint64(0xFFFF)<<sh) | uint64(uint16(in.Imm))<<sh
		case vt.Load8:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 1)
			if !ok {
				return trap(vt.TrapOOB, "load8")
			}
			R[in.RD] = uint64(mem[a])
		case vt.Load8S:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 1)
			if !ok {
				return trap(vt.TrapOOB, "load8s")
			}
			R[in.RD] = uint64(int64(int8(mem[a])))
		case vt.Load16:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 2)
			if !ok {
				return trap(vt.TrapOOB, "load16")
			}
			R[in.RD] = uint64(mem[a]) | uint64(mem[a+1])<<8
		case vt.Load16S:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 2)
			if !ok {
				return trap(vt.TrapOOB, "load16s")
			}
			R[in.RD] = uint64(int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8)))
		case vt.Load32:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 4)
			if !ok {
				return trap(vt.TrapOOB, "load32")
			}
			R[in.RD] = uint64(le32(mem[a:]))
		case vt.Load32S:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 4)
			if !ok {
				return trap(vt.TrapOOB, "load32s")
			}
			R[in.RD] = uint64(int64(int32(le32(mem[a:]))))
		case vt.Load64:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapOOB, "load64")
			}
			R[in.RD] = le64(mem[a:])
		case vt.Store8:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 1)
			if !ok {
				return trap(vt.TrapOOB, "store8")
			}
			mem[a] = byte(R[in.RB])
		case vt.Store16:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 2)
			if !ok {
				return trap(vt.TrapOOB, "store16")
			}
			v := R[in.RB]
			mem[a] = byte(v)
			mem[a+1] = byte(v >> 8)
		case vt.Store32:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 4)
			if !ok {
				return trap(vt.TrapOOB, "store32")
			}
			put32(mem[a:], uint32(R[in.RB]))
		case vt.Store64:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapOOB, "store64")
			}
			put64(mem[a:], R[in.RB])
		case vt.LoadU8:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 1)
			if !ok {
				return trap(vt.TrapElimCheck, "ldu8")
			}
			R[in.RD] = uint64(mem[a])
		case vt.LoadU8S:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 1)
			if !ok {
				return trap(vt.TrapElimCheck, "ldu8s")
			}
			R[in.RD] = uint64(int64(int8(mem[a])))
		case vt.LoadU16:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 2)
			if !ok {
				return trap(vt.TrapElimCheck, "ldu16")
			}
			R[in.RD] = uint64(mem[a]) | uint64(mem[a+1])<<8
		case vt.LoadU16S:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 2)
			if !ok {
				return trap(vt.TrapElimCheck, "ldu16s")
			}
			R[in.RD] = uint64(int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8)))
		case vt.LoadU32:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 4)
			if !ok {
				return trap(vt.TrapElimCheck, "ldu32")
			}
			R[in.RD] = uint64(le32(mem[a:]))
		case vt.LoadU32S:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 4)
			if !ok {
				return trap(vt.TrapElimCheck, "ldu32s")
			}
			R[in.RD] = uint64(int64(int32(le32(mem[a:]))))
		case vt.LoadU64:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapElimCheck, "ldu64")
			}
			R[in.RD] = le64(mem[a:])
		case vt.StoreU8:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 1)
			if !ok {
				return trap(vt.TrapElimCheck, "stu8")
			}
			mem[a] = byte(R[in.RB])
		case vt.StoreU16:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 2)
			if !ok {
				return trap(vt.TrapElimCheck, "stu16")
			}
			v := R[in.RB]
			mem[a] = byte(v)
			mem[a+1] = byte(v >> 8)
		case vt.StoreU32:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 4)
			if !ok {
				return trap(vt.TrapElimCheck, "stu32")
			}
			put32(mem[a:], uint32(R[in.RB]))
		case vt.StoreU64:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapElimCheck, "stu64")
			}
			put64(mem[a:], R[in.RB])
		case vt.FLoadU:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapElimCheck, "fldu")
			}
			F[in.RD] = fromBits(le64(mem[a:]))
		case vt.FStoreU:
			a, ok := uncheckedAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapElimCheck, "fstu")
			}
			put64(mem[a:], toBits(F[in.RB]))
		case vt.Lea:
			R[in.RD] = R[in.RA] + uint64(in.Imm)
		case vt.Add:
			R[in.RD] = R[in.RA] + R[in.RB]
		case vt.Sub:
			R[in.RD] = R[in.RA] - R[in.RB]
		case vt.Mul:
			R[in.RD] = R[in.RA] * R[in.RB]
		case vt.And:
			R[in.RD] = R[in.RA] & R[in.RB]
		case vt.Or:
			R[in.RD] = R[in.RA] | R[in.RB]
		case vt.Xor:
			R[in.RD] = R[in.RA] ^ R[in.RB]
		case vt.Shl:
			R[in.RD] = R[in.RA] << (R[in.RB] & 63)
		case vt.Shr:
			R[in.RD] = R[in.RA] >> (R[in.RB] & 63)
		case vt.Sar:
			R[in.RD] = uint64(int64(R[in.RA]) >> (R[in.RB] & 63))
		case vt.Rotr:
			R[in.RD] = bits.RotateLeft64(R[in.RA], -int(R[in.RB]&63))
		case vt.SDiv:
			d := int64(R[in.RB])
			if d == 0 {
				return trap(vt.TrapDivZero, "")
			}
			n := int64(R[in.RA])
			if n == -1<<63 && d == -1 {
				R[in.RD] = uint64(n)
			} else {
				R[in.RD] = uint64(n / d)
			}
		case vt.SRem:
			d := int64(R[in.RB])
			if d == 0 {
				return trap(vt.TrapDivZero, "")
			}
			n := int64(R[in.RA])
			if n == -1<<63 && d == -1 {
				R[in.RD] = 0
			} else {
				R[in.RD] = uint64(n % d)
			}
		case vt.UDiv:
			if R[in.RB] == 0 {
				return trap(vt.TrapDivZero, "")
			}
			R[in.RD] = R[in.RA] / R[in.RB]
		case vt.URem:
			if R[in.RB] == 0 {
				return trap(vt.TrapDivZero, "")
			}
			R[in.RD] = R[in.RA] % R[in.RB]
		case vt.AddI:
			R[in.RD] = R[in.RA] + uint64(in.Imm)
		case vt.SubI:
			R[in.RD] = R[in.RA] - uint64(in.Imm)
		case vt.MulI:
			R[in.RD] = R[in.RA] * uint64(in.Imm)
		case vt.AndI:
			R[in.RD] = R[in.RA] & uint64(in.Imm)
		case vt.OrI:
			R[in.RD] = R[in.RA] | uint64(in.Imm)
		case vt.XorI:
			R[in.RD] = R[in.RA] ^ uint64(in.Imm)
		case vt.ShlI:
			R[in.RD] = R[in.RA] << (uint64(in.Imm) & 63)
		case vt.ShrI:
			R[in.RD] = R[in.RA] >> (uint64(in.Imm) & 63)
		case vt.SarI:
			R[in.RD] = uint64(int64(R[in.RA]) >> (uint64(in.Imm) & 63))
		case vt.RotrI:
			R[in.RD] = bits.RotateLeft64(R[in.RA], -int(uint64(in.Imm)&63))
		case vt.Neg:
			R[in.RD] = -R[in.RA]
		case vt.Not:
			R[in.RD] = ^R[in.RA]
		case vt.MulWideU:
			hi, lo := bits.Mul64(R[in.RA], R[in.RB])
			R[in.RD] = lo
			R[in.RC] = hi
		case vt.MulWideS:
			a, b := int64(R[in.RA]), int64(R[in.RB])
			hi, lo := bits.Mul64(uint64(a), uint64(b))
			if a < 0 {
				hi -= uint64(b)
			}
			if b < 0 {
				hi -= uint64(a)
			}
			R[in.RD] = lo
			R[in.RC] = hi
		case vt.SetCC:
			if evalCond(in.Cond, R[in.RA], R[in.RB]) {
				R[in.RD] = 1
			} else {
				R[in.RD] = 0
			}
		case vt.Br:
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[pc], m.Executed+count)
			}
			pc = bidx[pc]
			continue
		case vt.BrCC:
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[pc], m.Executed+count)
			}
			if evalCond(in.Cond, R[in.RA], R[in.RB]) {
				pc = bidx[pc]
				continue
			}
		case vt.BrNZ:
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[pc], m.Executed+count)
			}
			if R[in.RA] != 0 {
				pc = bidx[pc]
				continue
			}
		case vt.Call:
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[pc], m.Executed+count)
			}
			m.callPCs = append(m.callPCs, pc)
			pc = bidx[pc]
			continue
		case vt.CallInd:
			idx := mod.indexOf(int32(R[in.RA]))
			if idx < 0 {
				return trap(vt.TrapOOB, "indirect call target")
			}
			m.callPCs = append(m.callPCs, pc)
			pc = idx
			continue
		case vt.CallRT:
			id := int(in.Imm)
			if id >= len(m.RT) || m.RT[id] == nil {
				return trap(vt.TrapUnreachable, fmt.Sprintf("runtime function %d", id))
			}
			if err := m.RT[id](m); err != nil {
				if t, ok := err.(*Trap); ok {
					// Only attribute the trap here when it came from the
					// runtime function itself (no frames yet); a trap
					// re-raised through nested CallAt re-entry keeps its
					// innermost location.
					if len(t.Frames) == 0 {
						t.PC = offs[pc]
						t.Frames = append(t.Frames, mod.symbolize(offs[pc]))
					}
					m.callPCs = m.callPCs[:callBase]
					return t
				}
				m.callPCs = m.callPCs[:callBase]
				return err
			}
			mem = m.Mem // runtime call may have grown memory
		case vt.Ret:
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[pc], m.Executed+count)
			}
			if len(m.callPCs) == callBase {
				return nil
			}
			pc = m.callPCs[len(m.callPCs)-1]
			m.callPCs = m.callPCs[:len(m.callPCs)-1]
		case vt.Trap:
			return trap(vt.TrapCode(in.Imm), "")
		case vt.TrapNZ:
			if R[in.RA] != 0 {
				return trap(vt.TrapCode(in.Imm), "")
			}
		case vt.Crc32:
			R[in.RD] = crc32c8(R[in.RA], R[in.RB])
		case vt.FMovRR:
			F[in.RD] = F[in.RA]
		case vt.FMovRI:
			F[in.RD] = fromBits(uint64(in.Imm))
		case vt.FLoad:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapOOB, "fload")
			}
			F[in.RD] = fromBits(le64(mem[a:]))
		case vt.FStore:
			a, ok := loadAddr(R[in.RA]+uint64(in.Imm), 8)
			if !ok {
				return trap(vt.TrapOOB, "fstore")
			}
			put64(mem[a:], toBits(F[in.RB]))
		case vt.FAdd:
			F[in.RD] = F[in.RA] + F[in.RB]
		case vt.FSub:
			F[in.RD] = F[in.RA] - F[in.RB]
		case vt.FMul:
			F[in.RD] = F[in.RA] * F[in.RB]
		case vt.FDiv:
			F[in.RD] = F[in.RA] / F[in.RB]
		case vt.FCmp:
			if evalFCond(in.Cond, F[in.RA], F[in.RB]) {
				R[in.RD] = 1
			} else {
				R[in.RD] = 0
			}
		case vt.CvtSI2F:
			F[in.RD] = float64(int64(R[in.RA]))
		case vt.CvtF2SI:
			R[in.RD] = uint64(int64(F[in.RA]))
		case vt.MovRF:
			R[in.RD] = toBits(F[in.RA])
		case vt.MovFR:
			F[in.RD] = fromBits(R[in.RA])
		default:
			return trap(vt.TrapUnreachable, fmt.Sprintf("bad op %d", in.Op))
		}
		pc++
	}
}

func evalCond(c vt.Cond, a, b uint64) bool {
	switch c {
	case vt.CondEQ:
		return a == b
	case vt.CondNE:
		return a != b
	case vt.CondSLT:
		return int64(a) < int64(b)
	case vt.CondSLE:
		return int64(a) <= int64(b)
	case vt.CondSGT:
		return int64(a) > int64(b)
	case vt.CondSGE:
		return int64(a) >= int64(b)
	case vt.CondULT:
		return a < b
	case vt.CondULE:
		return a <= b
	case vt.CondUGT:
		return a > b
	case vt.CondUGE:
		return a >= b
	}
	return false
}

func evalFCond(c vt.Cond, a, b float64) bool {
	switch c {
	case vt.CondEQ:
		return a == b
	case vt.CondNE:
		return a != b
	case vt.CondSLT, vt.CondULT:
		return a < b
	case vt.CondSLE, vt.CondULE:
		return a <= b
	case vt.CondSGT, vt.CondUGT:
		return a > b
	case vt.CondSGE, vt.CondUGE:
		return a >= b
	}
	return false
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func crc32c8(seed, v uint64) uint64 {
	var b [8]byte
	put64(b[:], v)
	return uint64(crc32.Update(uint32(seed), crcTable, b[:]))
}

// The little-endian accessors use encoding/binary, which the compiler
// recognizes and lowers to single unaligned load/store instructions — they
// are on the hot path of both dispatch loops.
func le32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func le64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func put32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func put64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

func fromBits(u uint64) float64 { return math.Float64frombits(u) }
func toBits(f float64) uint64   { return math.Float64bits(f) }
