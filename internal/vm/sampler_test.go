package vm

import (
	"strings"
	"testing"

	"qcc/internal/obs"
	"qcc/internal/vt"
)

// loopMod assembles the sum-1..n loop used to exercise branch checkpoints.
func loopMod(t *testing.T, arch vt.Arch) *Module {
	return assemble(t, arch, func(a vt.Assembler) {
		loop := a.NewLabel()
		done := a.NewLabel()
		a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: 0})
		a.Emit(vt.Instr{Op: vt.MovRI, RD: 2, Imm: 1})
		a.Bind(loop)
		a.Emit(vt.Instr{Op: vt.BrCC, Cond: vt.CondSGT, RA: 2, RB: 0, Target: int32(done)})
		mov3(a, vt.Add, 1, 1, 2)
		a.Emit(vt.Instr{Op: vt.AddI, RD: 2, RA: 2, Imm: 1})
		a.Emit(vt.Instr{Op: vt.Br, Target: int32(loop)})
		a.Bind(done)
		a.Emit(vt.Instr{Op: vt.MovRR, RD: 0, RA: 1})
		a.Emit(vt.Instr{Op: vt.Ret})
	})
}

// TestSamplerDeterministicAcrossDispatch checks that the fused threaded
// dispatcher and the plain decoded-switch loop take the same samples at the
// same byte offsets: epochs count executed instructions, and fused micro-ops
// attribute to the terminating branch's original instruction (pc0+n-1),
// matching where the plain loop's checkpoint sits.
func TestSamplerDeterministicAcrossDispatch(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		capture := func(fuse bool) (int64, map[int32]int64) {
			mod := loopMod(t, arch)
			mod.SetFuse(fuse)
			m := New(Config{Arch: arch})
			offs := map[int32]int64{}
			s := &Sampler{Period: 64, Hit: func(mod *Module, off int32) {
				if off < 0 || int(off) >= len(mod.Code) {
					t.Fatalf("sample offset %d outside code (%d bytes)", off, len(mod.Code))
				}
				offs[off]++
			}}
			m.SetSampler(s)
			res, err := m.Call(mod, 0, 2000)
			if err != nil {
				t.Fatal(err)
			}
			if res[0] != 2001000 {
				t.Fatalf("sum(2000) = %d", res[0])
			}
			m.SetSampler(nil)
			return s.Samples, offs
		}
		fusedN, fusedOffs := capture(true)
		plainN, plainOffs := capture(false)
		if fusedN == 0 {
			t.Fatal("no samples taken")
		}
		if fusedN != plainN {
			t.Fatalf("fused %d samples, plain %d — dispatch modes disagree", fusedN, plainN)
		}
		if len(fusedOffs) != len(plainOffs) {
			t.Fatalf("fused offsets %v, plain offsets %v", fusedOffs, plainOffs)
		}
		for off, n := range fusedOffs {
			if plainOffs[off] != n {
				t.Fatalf("offset %#x: fused %d vs plain %d samples (fused=%v plain=%v)",
					off, n, plainOffs[off], fusedOffs, plainOffs)
			}
		}
	})
}

// TestSamplerReset checks SetSampler re-arms the epoch and removing the
// sampler stops sampling.
func TestSamplerReset(t *testing.T) {
	mod := loopMod(t, vt.VX64)
	m := New(Config{Arch: vt.VX64})
	s := &Sampler{Period: 128}
	m.SetSampler(s)
	if m.Sampler() != s {
		t.Fatal("Sampler() accessor")
	}
	if _, err := m.Call(mod, 0, 500); err != nil {
		t.Fatal(err)
	}
	first := s.Samples
	if first == 0 {
		t.Fatal("no samples")
	}
	m.SetSampler(nil)
	if _, err := m.Call(mod, 0, 500); err != nil {
		t.Fatal(err)
	}
	if s.Samples != first {
		t.Fatal("sampling continued after removal")
	}
	// Default period kicks in for Period <= 0.
	s2 := &Sampler{}
	m.SetSampler(s2)
	if s2.Period != DefaultSamplePeriod {
		t.Fatalf("period = %d, want default %d", s2.Period, DefaultSamplePeriod)
	}
}

// TestTrapFeedsFlightRecorder checks the post-mortem path: a top-level trap
// records a symbolized FlightTrap event in the global flight recorder.
func TestTrapFeedsFlightRecorder(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		mod := assemble(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.Trap, Imm: int64(vt.TrapOverflow)})
		})
		mod.RegisterUnwind([]UnwindRange{{Start: 0, End: int32(len(mod.Code)), Name: "crash_main", Func: 0}})
		m := New(Config{Arch: arch})
		before := obs.FlightRec().Len()
		if _, err := m.Call(mod, 0); err == nil {
			t.Fatal("expected trap")
		}
		if obs.FlightRec().Len() == before {
			t.Fatal("trap not recorded in flight recorder")
		}
		found := false
		for _, ev := range obs.FlightRec().Snapshot() {
			if ev.Kind == obs.FlightTrap && strings.Contains(ev.Name, "crash_main") {
				found = true
			}
		}
		if !found {
			t.Fatal("no symbolized FlightTrap event retained")
		}
	})
}
