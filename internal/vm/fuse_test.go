package vm

import (
	"reflect"
	"testing"

	"qcc/internal/vt"
)

// counters is the architecture-neutral profile both engines must agree on.
type counters struct {
	Executed, Branches, MemOps int64
}

// runEngines executes the same code fused and unfused on fresh machines and
// requires identical results, errors (including trap PC, frames, code and
// message), and Executed/Branches/MemOps. It returns the fused machine's
// outcome for further assertions.
func runEngines(t *testing.T, arch vt.Arch, code []byte, args ...uint64) ([2]uint64, error, counters) {
	t.Helper()
	return runEnginesMem(t, arch, 0, code, args...)
}

func runEnginesMem(t *testing.T, arch vt.Arch, memSize int, code []byte, args ...uint64) ([2]uint64, error, counters) {
	t.Helper()
	type outcome struct {
		res [2]uint64
		err error
		c   counters
	}
	run := func(fuse bool) outcome {
		mod, err := Load(arch, code)
		if err != nil {
			t.Fatal(err)
		}
		mod.SetFuse(fuse)
		m := New(Config{Arch: arch, MemSize: memSize})
		res, err := m.Call(mod, 0, args...)
		return outcome{res, err, counters{m.Executed, m.Branches, m.MemOps}}
	}
	fused, unfused := run(true), run(false)
	if fused.res != unfused.res {
		t.Errorf("results differ: fused %v, unfused %v", fused.res, unfused.res)
	}
	if (fused.err == nil) != (unfused.err == nil) {
		t.Fatalf("error mismatch: fused %v, unfused %v", fused.err, unfused.err)
	}
	if fused.err != nil {
		ft, fok := fused.err.(*Trap)
		ut, uok := unfused.err.(*Trap)
		if fok != uok {
			t.Fatalf("trap-ness mismatch: fused %v, unfused %v", fused.err, unfused.err)
		}
		if fok && !reflect.DeepEqual(ft, ut) {
			t.Errorf("traps differ:\nfused   %+v\nunfused %+v", ft, ut)
		}
	}
	if fused.c != unfused.c {
		t.Errorf("counters differ: fused %+v, unfused %+v", fused.c, unfused.c)
	}
	return fused.res, fused.err, fused.c
}

func build(t *testing.T, arch vt.Arch, f func(a vt.Assembler)) []byte {
	t.Helper()
	a := vt.NewAssembler(arch)
	f(a)
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// hasMicroOp reports whether the module's fused view contains a micro-op
// with the given opcode, guarding fusion tests against silently degrading
// into unfused singles.
func hasMicroOp(t *testing.T, arch vt.Arch, code []byte, op uint8) bool {
	t.Helper()
	mod, err := Load(arch, code)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mod.fused().ins {
		if mod.fused().ins[i].op == op {
			return true
		}
	}
	return false
}

// TestLoadAddrWraparound is the regression test for the address-overflow
// hole in the bounds check: a base+displacement that wraps past the length
// test must raise a clean TrapOOB, not a Go index panic. Exercised on both
// engines via runEngines.
func TestLoadAddrWraparound(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		code := build(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: -8}) // 0xFFFFFFFFFFFFFFF8
			a.Emit(vt.Instr{Op: vt.Load64, RD: 0, RA: 1, Imm: 0})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		_, err, c := runEngines(t, arch, code)
		tr, ok := err.(*Trap)
		if !ok {
			t.Fatalf("want TrapOOB, got %v", err)
		}
		if tr.Code != vt.TrapOOB {
			t.Errorf("trap code = %v, want oob", tr.Code)
		}
		if c.MemOps != 1 {
			t.Errorf("MemOps = %d, want 1 (failed access still counts)", c.MemOps)
		}
	})
}

// TestStoreWraparound covers the store direction of the same hole.
func TestStoreWraparound(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		code := build(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: -4})
			a.Emit(vt.Instr{Op: vt.Store64, RA: 1, RB: 0, Imm: 0})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		_, err, _ := runEngines(t, arch, code)
		if tr, ok := err.(*Trap); !ok || tr.Code != vt.TrapOOB {
			t.Fatalf("want TrapOOB, got %v", err)
		}
	})
}

// TestTrapAttributionOpStore: the store of a fused op+store pair traps; the
// trap must carry the PC and frame of the original store instruction, and
// both pair constituents count as executed.
func TestTrapAttributionOpStore(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		code := build(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.Lea, RD: 2, RA: 0, Imm: 7})     // 0: fuses with...
			a.Emit(vt.Instr{Op: vt.Store64, RA: 1, RB: 2, Imm: 0}) // 1: ...this store (bad base)
			a.Emit(vt.Instr{Op: vt.Ret})                           // 2
		})
		if !hasMicroOp(t, arch, code, xOpStore) {
			t.Fatal("op+store pair did not fuse")
		}
		_, err, c := runEngines(t, arch, code, 5, 16) // r1=16: below nullGuard
		tr, ok := err.(*Trap)
		if !ok || tr.Code != vt.TrapOOB {
			t.Fatalf("want TrapOOB, got %v", err)
		}
		mod, _ := Load(arch, code)
		if want := mod.Prog.Offsets[1]; tr.PC != want {
			t.Errorf("trap PC = %d, want %d (the store instruction)", tr.PC, want)
		}
		if c.Executed != 2 {
			t.Errorf("Executed = %d, want 2 (AddI ran, Store trapped)", c.Executed)
		}
	})
}

// TestTrapAttributionLoadOp: the load of a fused load+op pair traps; the
// fused follow-op must not count as executed and the PC is the load's.
func TestTrapAttributionLoadOp(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		code := build(t, arch, func(a vt.Assembler) {
			a.Emit(vt.Instr{Op: vt.Load64, RD: 2, RA: 1, Imm: 0}) // 0: bad base
			a.Emit(vt.Instr{Op: vt.AddI, RD: 2, RA: 2, Imm: 3})   // 1: fused follow-op
			a.Emit(vt.Instr{Op: vt.Ret})                          // 2
		})
		if !hasMicroOp(t, arch, code, xLoadOp) {
			t.Fatal("load+op pair did not fuse")
		}
		_, err, c := runEngines(t, arch, code, 0, 3) // r1=3: below nullGuard
		tr, ok := err.(*Trap)
		if !ok || tr.Code != vt.TrapOOB {
			t.Fatalf("want TrapOOB, got %v", err)
		}
		mod, _ := Load(arch, code)
		if want := mod.Prog.Offsets[0]; tr.PC != want {
			t.Errorf("trap PC = %d, want %d (the load instruction)", tr.PC, want)
		}
		if c.Executed != 1 {
			t.Errorf("Executed = %d, want 1 (follow-op never ran)", c.Executed)
		}
	})
}

// TestTrapAttributionGuardedBlock: a block whose bounds checks were hoisted
// into a guard traps through the checked clone with per-access attribution:
// the PC is the first faulting access, not the block entry, and the
// instructions before it still count.
func TestTrapAttributionGuardedBlock(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		code := build(t, arch, func(a vt.Assembler) {
			// Two accesses off r1 make the block guardable; r1 is placed so
			// the first access is valid and the second is out of bounds,
			// which also fails the hoisted guard.
			a.Emit(vt.Instr{Op: vt.Load64, RD: 2, RA: 1, Imm: 0}) // 0: ok
			a.Emit(vt.Instr{Op: vt.Load64, RD: 3, RA: 1, Imm: 8}) // 1: oob
			a.Emit(vt.Instr{Op: vt.Ret})                          // 2
		})
		if !hasMicroOp(t, arch, code, xGuard1) {
			t.Fatal("block guard was not hoisted")
		}
		const memSize = 4 << 20
		_, err, c := runEnginesMem(t, arch, memSize, code, 0, memSize-8)
		tr, ok := err.(*Trap)
		if !ok || tr.Code != vt.TrapOOB {
			t.Fatalf("want TrapOOB, got %v", err)
		}
		mod, _ := Load(arch, code)
		if want := mod.Prog.Offsets[1]; tr.PC != want {
			t.Errorf("trap PC = %d, want %d (second access)", tr.PC, want)
		}
		if c.Executed != 2 || c.MemOps != 2 {
			t.Errorf("counters = %+v, want Executed 2, MemOps 2", c)
		}
	})
}

// TestCmpBranchFusionCounters: SetCC+BrNZ fuses into one micro-op that
// still charges two instructions, one branch, and writes the 0/1 result.
func TestCmpBranchFusionCounters(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		code := build(t, arch, func(a vt.Assembler) {
			done := a.NewLabel()
			a.Emit(vt.Instr{Op: vt.SetCC, Cond: vt.CondULT, RD: 2, RA: 0, RB: 1})
			a.Emit(vt.Instr{Op: vt.BrNZ, RA: 2, Target: int32(done)})
			a.Emit(vt.Instr{Op: vt.MovRI, RD: 2, Imm: 99})
			a.Bind(done)
			a.Emit(vt.Instr{Op: vt.MovRR, RD: 0, RA: 2})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		if !hasMicroOp(t, arch, code, xCmpBr) {
			t.Fatal("compare-and-branch did not fuse")
		}
		res, _, c := runEngines(t, arch, code, 1, 2) // 1 < 2: taken
		if res[0] != 1 {
			t.Errorf("result = %d, want 1 (SetCC result must be written)", res[0])
		}
		if c.Branches != 1 {
			t.Errorf("Branches = %d, want 1", c.Branches)
		}
		runEngines(t, arch, code, 2, 1) // not taken
	})
}

// TestCallRTNestedTrapPC: a trap raised inside generated code that was
// re-entered through CallAt from a runtime function must keep its innermost
// PC and frames when it propagates back through the CallRT instruction.
func TestCallRTNestedTrapPC(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		for _, fuse := range []bool{true, false} {
			code := build(t, arch, func(a vt.Assembler) {
				a.Emit(vt.Instr{Op: vt.CallRT, Imm: 0})                    // 0: re-enters aux below
				a.Emit(vt.Instr{Op: vt.Ret})                               // 1
				a.Emit(vt.Instr{Op: vt.Trap, Imm: int64(vt.TrapOverflow)}) // 2: aux
			})
			mod, err := Load(arch, code)
			if err != nil {
				t.Fatal(err)
			}
			mod.SetFuse(fuse)
			auxOff := mod.Prog.Offsets[2]
			m := New(Config{Arch: arch})
			m.RT = []RTFunc{func(m *Machine) error {
				_, err := m.CallAt(uint64(auxOff))
				return err
			}}
			_, err = m.Call(mod, 0)
			tr, ok := err.(*Trap)
			if !ok || tr.Code != vt.TrapOverflow {
				t.Fatalf("fuse=%v: want overflow trap, got %v", fuse, err)
			}
			if tr.PC != auxOff {
				t.Errorf("fuse=%v: trap PC = %d, want %d (the innermost trap site, not the CallRT)", fuse, tr.PC, auxOff)
			}
		}
	})
}

// TestFusionCompresses: a realistic loop must dispatch fewer micro-ops than
// instructions and agree with the unfused engine on a memory-heavy
// workload, including a trapping run off the end of memory.
func TestFusionCompresses(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		sweep := func(oob bool) []byte {
			return build(t, arch, func(a vt.Assembler) {
				loop := a.NewLabel()
				done := a.NewLabel()
				limit := int64(1 << 12)
				if oob {
					limit = 1 << 40
				}
				a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: int64(nullGuard)})
				a.Emit(vt.Instr{Op: vt.MovRI, RD: 2, Imm: 0})
				a.Emit(vt.Instr{Op: vt.MovRI, RD: 3, Imm: limit})
				a.Bind(loop)
				a.Emit(vt.Instr{Op: vt.BrCC, Cond: vt.CondSGE, RA: 2, RB: 3, Target: int32(done)})
				a.Emit(vt.Instr{Op: vt.Store64, RA: 1, RB: 2, Imm: 0})
				a.Emit(vt.Instr{Op: vt.Load64, RD: 4, RA: 1, Imm: 0})
				mov3(a, vt.Add, 5, 5, 4)
				a.Emit(vt.Instr{Op: vt.AddI, RD: 1, RA: 1, Imm: 8})
				a.Emit(vt.Instr{Op: vt.AddI, RD: 2, RA: 2, Imm: 1})
				a.Emit(vt.Instr{Op: vt.Br, Target: int32(loop)})
				a.Bind(done)
				a.Emit(vt.Instr{Op: vt.MovRR, RD: 0, RA: 5})
				a.Emit(vt.Instr{Op: vt.Ret})
			})
		}
		code := sweep(false)
		runEngines(t, arch, code)
		mod, _ := Load(arch, code)
		st := mod.FuseStats()
		if st.MicroOps >= st.Instrs {
			t.Errorf("fusion rate %d/%d >= 1: nothing fused", st.MicroOps, st.Instrs)
		}
		if st.GuardedBlocks == 0 {
			t.Error("loop body should have a hoisted bounds guard")
		}
		// The OOB variant sweeps past the end of memory: the fused guard
		// must fail over to the checked clone and trap identically.
		_, err, _ := runEnginesMem(t, arch, 4<<20, sweep(true))
		if tr, ok := err.(*Trap); !ok || tr.Code != vt.TrapOOB {
			t.Fatalf("want TrapOOB, got %v", err)
		}
	})
}

// TestFoldImmediates: MovZ/MovK chains and AddI/Lea chains fold while
// keeping identical register state and counts.
func TestFoldImmediates(t *testing.T) {
	both(t, func(t *testing.T, arch vt.Arch) {
		wantExec := int64(8)
		code := build(t, arch, func(a vt.Assembler) {
			if arch == vt.VA64 {
				// MovZ/MovK constant synthesis only exists on va64.
				a.Emit(vt.Instr{Op: vt.MovZ, RD: 1, Cond: 0, Imm: 0x1234})
				a.Emit(vt.Instr{Op: vt.MovK, RD: 1, Cond: 2, Imm: 0x5678})
				a.Emit(vt.Instr{Op: vt.MovK, RD: 1, Cond: 3, Imm: 0x9ABC})
			} else {
				a.Emit(vt.Instr{Op: vt.MovRI, RD: 1, Imm: -7296862222850977228}) // 0x9ABC_5678_0000_1234
				wantExec = 6
			}
			a.Emit(vt.Instr{Op: vt.Lea, RD: 2, RA: 1, Imm: 10})
			a.Emit(vt.Instr{Op: vt.AddI, RD: 2, RA: 2, Imm: -3})
			a.Emit(vt.Instr{Op: vt.SubI, RD: 2, RA: 2, Imm: 4})
			a.Emit(vt.Instr{Op: vt.MovRR, RD: 0, RA: 2})
			a.Emit(vt.Instr{Op: vt.Ret})
		})
		res, _, c := runEngines(t, arch, code)
		want := uint64(0x9ABC_5678_0000_1234) + 3
		if res[0] != want {
			t.Errorf("result = %#x, want %#x", res[0], want)
		}
		if c.Executed != wantExec {
			t.Errorf("Executed = %d, want %d (folds still charge each instruction)", c.Executed, wantExec)
		}
	})
}
