// Threaded dispatch over the fused micro-op stream built in fuse.go.
//
// The dispatch loop is one dense switch over the micro-opcode byte, which
// the compiler lowers to a jump table — the token-threaded shape of a fast
// interpreter: fetch, indexed jump, execute, repeat. Fused micro-ops (runs,
// pairs, compare-and-branch, immediate folds) cover several original
// instructions per dispatch, and xRun superinstructions execute their steps
// in a tight local loop with no trap paths and no per-step accounting. The
// loop pre-charges each micro-op's covered instruction count; handlers that
// trap partway through a pair subtract the constituents that never
// executed, so Executed/Branches/MemOps match the unfused loop exactly, as
// do trap PCs and frames.
package vm

import (
	"fmt"
	"math/bits"

	"qcc/internal/vt"
)

// fstate carries the slow-path state of one fused invocation: what the
// out-of-line helpers (traps, indirect and runtime calls) need. The hot
// loop itself works on locals.
type fstate struct {
	m   *Machine
	mod *Module
	fp  *fprog
	mem []byte

	callBase int // m.callPCs watermark at entry
	fretBase int // m.fret watermark at entry
	err      error
}

// trap terminates execution with the same Trap value the unfused loop would
// build at original instruction index orig. Returns -1, the stop pc.
func (st *fstate) trap(orig int32, code vt.TrapCode, msg string) int32 {
	m, mod := st.m, st.mod
	offs := mod.Prog.Offsets
	t := &Trap{Code: code, PC: offs[orig], Msg: msg}
	t.Frames = append(t.Frames, mod.symbolize(offs[orig]))
	for i := len(m.callPCs) - 1; i >= st.callBase; i-- {
		t.Frames = append(t.Frames, mod.symbolize(offs[m.callPCs[i]]))
	}
	m.callPCs = m.callPCs[:st.callBase]
	m.fret = m.fret[:st.fretBase]
	st.err = t
	return -1
}

func memMsg(op vt.Op) string {
	switch op {
	case vt.Load8:
		return "load8"
	case vt.Load8S:
		return "load8s"
	case vt.Load16:
		return "load16"
	case vt.Load16S:
		return "load16s"
	case vt.Load32:
		return "load32"
	case vt.Load32S:
		return "load32s"
	case vt.Load64:
		return "load64"
	case vt.Store8:
		return "store8"
	case vt.Store16:
		return "store16"
	case vt.Store32:
		return "store32"
	case vt.Store64:
		return "store64"
	case vt.FLoad:
		return "fload"
	case vt.FStore:
		return "fstore"
	}
	return op.String()
}

// stepRun executes the steps of one xRun superinstruction. Every step is
// trap-free by construction — memory steps use the unchecked u* opcodes
// (uLoad8..uFStore) or fused c*/t3*/q4* combinations whose bounds were
// validated by the enclosing block's guard — so the loop is pure dispatch:
// one dense switch per step, no program counter, no counters, no trap
// paths. Counters are settled in bulk by the dispatching x* case: the
// run's Executed total rides on the x* instruction's n field and its
// MemOps total on the rc field.
func stepRun(steps []fstep, R *[32]uint64, F *[16]float64, mem []byte) {
	for i := range steps {
		s := &steps[i]
		switch s.op {
		case uint8(vt.Nop):
		case uint8(vt.MovRR):
			R[s.rd] = R[s.ra]
		case uint8(vt.MovRI):
			R[s.rd] = uint64(s.imm)
		case uint8(vt.MovZ):
			R[s.rd] = uint64(uint16(s.imm)) << (16 * uint(s.cond))
		case uint8(vt.MovK):
			sh := 16 * uint(s.cond)
			R[s.rd] = R[s.rd]&^(uint64(0xFFFF)<<sh) | uint64(uint16(s.imm))<<sh
		case uint8(vt.Lea):
			R[s.rd] = R[s.ra] + uint64(s.imm)
		case uint8(vt.Add):
			R[s.rd] = R[s.ra] + R[s.rb]
		case uint8(vt.Sub):
			R[s.rd] = R[s.ra] - R[s.rb]
		case uint8(vt.Mul):
			R[s.rd] = R[s.ra] * R[s.rb]
		case uint8(vt.And):
			R[s.rd] = R[s.ra] & R[s.rb]
		case uint8(vt.Or):
			R[s.rd] = R[s.ra] | R[s.rb]
		case uint8(vt.Xor):
			R[s.rd] = R[s.ra] ^ R[s.rb]
		case uint8(vt.Shl):
			R[s.rd] = R[s.ra] << (R[s.rb] & 63)
		case uint8(vt.Shr):
			R[s.rd] = R[s.ra] >> (R[s.rb] & 63)
		case uint8(vt.Sar):
			R[s.rd] = uint64(int64(R[s.ra]) >> (R[s.rb] & 63))
		case uint8(vt.Rotr):
			R[s.rd] = bits.RotateLeft64(R[s.ra], -int(R[s.rb]&63))
		case uint8(vt.AddI):
			R[s.rd] = R[s.ra] + uint64(s.imm)
		case uint8(vt.SubI):
			R[s.rd] = R[s.ra] - uint64(s.imm)
		case uint8(vt.MulI):
			R[s.rd] = R[s.ra] * uint64(s.imm)
		case uint8(vt.AndI):
			R[s.rd] = R[s.ra] & uint64(s.imm)
		case uint8(vt.OrI):
			R[s.rd] = R[s.ra] | uint64(s.imm)
		case uint8(vt.XorI):
			R[s.rd] = R[s.ra] ^ uint64(s.imm)
		case uint8(vt.ShlI):
			R[s.rd] = R[s.ra] << (uint64(s.imm) & 63)
		case uint8(vt.ShrI):
			R[s.rd] = R[s.ra] >> (uint64(s.imm) & 63)
		case uint8(vt.SarI):
			R[s.rd] = uint64(int64(R[s.ra]) >> (uint64(s.imm) & 63))
		case uint8(vt.RotrI):
			R[s.rd] = bits.RotateLeft64(R[s.ra], -int(uint64(s.imm)&63))
		case uint8(vt.Neg):
			R[s.rd] = -R[s.ra]
		case uint8(vt.Not):
			R[s.rd] = ^R[s.ra]
		case uint8(vt.MulWideU):
			hi, lo := bits.Mul64(R[s.ra], R[s.rb])
			R[s.rd] = lo
			R[s.rc] = hi
		case uint8(vt.MulWideS):
			a, b := int64(R[s.ra]), int64(R[s.rb])
			hi, lo := bits.Mul64(uint64(a), uint64(b))
			if a < 0 {
				hi -= uint64(b)
			}
			if b < 0 {
				hi -= uint64(a)
			}
			R[s.rd] = lo
			R[s.rc] = hi
		case uint8(vt.SetCC):
			if evalCond(s.cond, R[s.ra], R[s.rb]) {
				R[s.rd] = 1
			} else {
				R[s.rd] = 0
			}
		case uint8(vt.Crc32):
			R[s.rd] = crc32c8(R[s.ra], R[s.rb])
		case uint8(vt.FMovRR):
			F[s.rd] = F[s.ra]
		case uint8(vt.FMovRI):
			F[s.rd] = fromBits(uint64(s.imm))
		case uint8(vt.FAdd):
			F[s.rd] = F[s.ra] + F[s.rb]
		case uint8(vt.FSub):
			F[s.rd] = F[s.ra] - F[s.rb]
		case uint8(vt.FMul):
			F[s.rd] = F[s.ra] * F[s.rb]
		case uint8(vt.FDiv):
			F[s.rd] = F[s.ra] / F[s.rb]
		case uint8(vt.FCmp):
			if evalFCond(s.cond, F[s.ra], F[s.rb]) {
				R[s.rd] = 1
			} else {
				R[s.rd] = 0
			}
		case uint8(vt.CvtSI2F):
			F[s.rd] = float64(int64(R[s.ra]))
		case uint8(vt.CvtF2SI):
			R[s.rd] = uint64(int64(F[s.ra]))
		case uint8(vt.MovRF):
			R[s.rd] = toBits(F[s.ra])
		case uint8(vt.MovFR):
			F[s.rd] = fromBits(R[s.ra])
		// Guard-covered memory accesses (bounds established at block
		// entry by xGuard — no per-access check).
		case uLoad8, uint8(vt.LoadU8):
			R[s.rd] = uint64(mem[R[s.ra]+uint64(s.imm)])
		case uLoad8S, uint8(vt.LoadU8S):
			R[s.rd] = uint64(int64(int8(mem[R[s.ra]+uint64(s.imm)])))
		case uLoad16, uint8(vt.LoadU16):
			a := R[s.ra] + uint64(s.imm)
			R[s.rd] = uint64(mem[a]) | uint64(mem[a+1])<<8
		case uLoad16S, uint8(vt.LoadU16S):
			a := R[s.ra] + uint64(s.imm)
			R[s.rd] = uint64(int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8)))
		case uLoad32, uint8(vt.LoadU32):
			R[s.rd] = uint64(le32(mem[R[s.ra]+uint64(s.imm):]))
		case uLoad32S, uint8(vt.LoadU32S):
			R[s.rd] = uint64(int64(int32(le32(mem[R[s.ra]+uint64(s.imm):]))))
		case uLoad64, uint8(vt.LoadU64):
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
		case uStore8, uint8(vt.StoreU8):
			mem[R[s.ra]+uint64(s.imm)] = byte(R[s.rb])
		case uStore16, uint8(vt.StoreU16):
			a := R[s.ra] + uint64(s.imm)
			v := R[s.rb]
			mem[a] = byte(v)
			mem[a+1] = byte(v >> 8)
		case uStore32, uint8(vt.StoreU32):
			put32(mem[R[s.ra]+uint64(s.imm):], uint32(R[s.rb]))
		case uStore64, uint8(vt.StoreU64):
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
		case uFLoad, uint8(vt.FLoadU):
			F[s.rd] = fromBits(le64(mem[R[s.ra]+uint64(s.imm):]))
		case uFStore, uint8(vt.FStoreU):
			put64(mem[R[s.ra]+uint64(s.imm):], toBits(F[s.rb]))
		// Combined steps: two operations per dispatch, executed in original
		// order (see combineSteps). All constituents are trap-free, so the
		// pair is as atomic as any single step.
		case cMovSt64:
			R[s.rd] = R[s.ra]
			put64(mem[R[s.rb]+uint64(s.imm):], R[s.rc])
		case cSt64Mov:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = R[s.rc]
		case cSt64Ld64:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = le64(mem[R[s.re]+uint64(s.imm2):])
		case cLd64Mov:
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
			R[s.rb] = R[s.rc]
		case cMovISt64:
			R[s.rd] = uint64(s.imm)
			put64(mem[R[s.ra]+uint64(s.imm2):], R[s.rb])
		case cSt64MovI:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = uint64(s.imm2)
		case cMovAdd:
			R[s.rd] = R[s.ra]
			R[s.rb] = R[s.rc] + R[s.re]
		case cAddSt64:
			R[s.rd] = R[s.ra] + R[s.rb]
			put64(mem[R[s.rc]+uint64(s.imm):], R[s.re])
		case cSetSt64:
			if evalCond(s.cond, R[s.ra], R[s.rb]) {
				R[s.rd] = 1
			} else {
				R[s.rd] = 0
			}
			put64(mem[R[s.rc]+uint64(s.imm):], R[s.re])
		case cLd64Set:
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
			if evalCond(s.cond, R[s.rc], R[s.re]) {
				R[s.rb] = 1
			} else {
				R[s.rb] = 0
			}
		case cSt64St64:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			put64(mem[R[s.rc]+uint64(s.imm2):], R[s.re])
		case cLd64Ld64:
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
			R[s.rb] = le64(mem[R[s.rc]+uint64(s.imm2):])
		case cMovMov:
			R[s.rd] = R[s.ra]
			R[s.rb] = R[s.rc]
		case cMovIMovI:
			R[s.rd] = uint64(s.imm)
			R[s.rb] = uint64(s.imm2)
		case c2MovXor:
			R[s.rd] = R[s.ra]
			R[s.rb] = R[s.rc] ^ R[s.re]
		case c2MovAnd:
			R[s.rd] = R[s.ra]
			R[s.rb] = R[s.rc] & R[s.re]
		case c2XorMov:
			R[s.rd] = R[s.ra] ^ R[s.rb]
			R[s.rc] = R[s.re]
		case c2AndMov:
			R[s.rd] = R[s.ra] & R[s.rb]
			R[s.rc] = R[s.re]
		case c2MovMulI:
			R[s.rd] = R[s.ra]
			R[s.rb] = R[s.rc] * uint64(s.imm)
		case c2MulILea:
			R[s.rd] = R[s.ra] * uint64(s.imm)
			R[s.rb] = R[s.rc] + uint64(s.imm2)
		case c2LeaAdd:
			R[s.rd] = R[s.ra] + uint64(s.imm)
			R[s.rb] = R[s.rc] + R[s.re]
		case c2AddLea:
			R[s.rd] = R[s.ra] + R[s.rb]
			R[s.rc] = R[s.re] + uint64(s.imm)
		case c2MulIAdd:
			R[s.rd] = R[s.ra] * uint64(s.imm)
			R[s.rb] = R[s.rc] + R[s.re]
		case c2MovIMulI:
			R[s.rd] = uint64(s.imm)
			R[s.rb] = R[s.rc] * uint64(s.imm2)
		case c2AddMovI:
			R[s.rd] = R[s.ra] + R[s.rb]
			R[s.rc] = uint64(s.imm)
		case c2MovAddI:
			R[s.rd] = R[s.ra]
			R[s.rb] = R[s.rc] + uint64(s.imm)
		case c2AddIMov:
			R[s.rd] = R[s.ra] + uint64(s.imm)
			R[s.rb] = R[s.rc]
		case c2MovIMov:
			R[s.rd] = uint64(s.imm)
			R[s.rb] = R[s.rc]
		case c2MovIMulwu:
			R[s.rd] = uint64(s.imm)
			hi, lo := bits.Mul64(R[s.rc], R[s.re])
			R[s.ra] = lo
			R[s.rb] = hi
		case c2CrcMovI:
			R[s.rd] = crc32c8(R[s.ra], R[s.rb])
			R[s.rc] = uint64(s.imm)
		case c2MovCrc:
			R[s.rd] = R[s.ra]
			R[s.rb] = crc32c8(R[s.rc], R[s.re])
		case c2MovLd64:
			R[s.rd] = R[s.ra]
			R[s.rb] = le64(mem[R[s.rc]+uint64(s.imm):])
		case c2MovILd64:
			R[s.rd] = uint64(s.imm)
			R[s.rb] = le64(mem[R[s.rc]+uint64(s.imm2):])
		case c2Ld64Lea:
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
			R[s.rb] = R[s.rc] + uint64(s.imm2)
		case c2LeaSt64:
			R[s.rd] = R[s.ra] + uint64(s.imm)
			put64(mem[R[s.rb]+uint64(s.imm2):], R[s.rc])
		case c2MovStMovI:
			R[s.rd] = R[s.ra]
			put64(mem[R[s.rb]+uint64(s.imm):], R[s.rc])
			R[s.re] = uint64(s.imm2)
		case c2MovILdMov:
			R[s.rd] = uint64(s.imm)
			R[s.ra] = le64(mem[R[s.rb]+uint64(s.imm2):])
			R[s.rc] = R[s.re]
		case t3Ld64SetSt64:
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
			if evalCond(s.cond, R[s.rc], R[s.re]) {
				R[s.rb] = 1
			} else {
				R[s.rb] = 0
			}
			put64(mem[R[s.rf]+uint64(s.imm2):], R[s.rg])
		case t3St64MovSt64:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = R[s.rc]
			put64(mem[R[s.re]+uint64(s.imm2):], R[s.rf])
		case t3MovILd64Set:
			R[s.rd] = uint64(s.imm)
			R[s.rb] = le64(mem[R[s.rc]+uint64(s.imm2):])
			if evalCond(s.cond, R[s.rf], R[s.rg]) {
				R[s.re] = 1
			} else {
				R[s.re] = 0
			}
		case t3Ld64MovMulI:
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
			R[s.rb] = R[s.rc]
			R[s.re] = R[s.rf] * uint64(s.imm2)
		case t3MulIMovAdd:
			R[s.rd] = R[s.ra] * uint64(s.imm)
			R[s.rb] = R[s.rc]
			R[s.re] = R[s.rf] + R[s.rg]
		case t3MovLd64Mov:
			R[s.rd] = R[s.ra]
			R[s.rb] = le64(mem[R[s.rc]+uint64(s.imm):])
			R[s.re] = R[s.rf]
		case t3St64MovMov:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = R[s.rc]
			R[s.re] = R[s.rf]
		case t3St64Ld64Mov:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = le64(mem[R[s.re]+uint64(s.imm2):])
			R[s.rf] = R[s.rg]
		case t3MovSt64Ld64:
			R[s.rd] = R[s.ra]
			put64(mem[R[s.rb]+uint64(s.imm):], R[s.rc])
			R[s.re] = le64(mem[R[s.rf]+uint64(s.imm2):])
		case t3St64AddSt64:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = R[s.rc] + R[s.re]
			put64(mem[R[s.rf]+uint64(s.imm2):], R[s.rg])
		case t3Ld64MovSt64:
			R[s.rd] = le64(mem[R[s.ra]+uint64(s.imm):])
			R[s.rb] = R[s.rc]
			put64(mem[R[s.re]+uint64(s.imm2):], R[s.rf])
		case t3St64MovISt64:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rd] = uint64(s.imm2)
			put64(mem[R[s.re]+uint64(s.imm3):], R[s.rf])
		case t3SetSet:
			if evalCond(s.cond, R[s.ra], R[s.rb]) {
				R[s.rd] = 1
			} else {
				R[s.rd] = 0
			}
			if evalCond(vt.Cond(s.rg), R[s.re], R[s.rf]) {
				R[s.rc] = 1
			} else {
				R[s.rc] = 0
			}
		case t3XorAnd:
			R[s.rd] = R[s.ra] ^ R[s.rb]
			R[s.rc] = R[s.re] & R[s.rf]
		case t3MulwuXor:
			hi, lo := bits.Mul64(R[s.rb], R[s.rc])
			R[s.rd] = lo
			R[s.ra] = hi
			R[s.re] = R[s.rf] ^ R[s.rg]
		case q4MovIStLdMov:
			R[s.rd] = uint64(s.imm)
			put64(mem[R[s.ra]+uint64(s.imm2):], R[s.rb])
			R[s.rc] = le64(mem[R[s.re]+uint64(s.imm3):])
			R[s.rf] = R[s.rg]
		case q4MovStMovSt:
			R[s.rd] = R[s.ra]
			put64(mem[R[s.rb]+uint64(s.imm):], R[s.rc])
			R[s.re] = R[s.rf]
			put64(mem[R[s.rg]+uint64(s.imm2):], R[s.re])
		case q4StLdMovSt:
			put64(mem[R[s.ra]+uint64(s.imm):], R[s.rb])
			R[s.rc] = le64(mem[R[s.rd]+uint64(s.imm2):])
			R[s.re] = R[s.rf]
			put64(mem[R[s.rg]+uint64(s.imm3):], R[s.re])
		default:
			panic(fmt.Sprintf("vm: bad fused step op %d", s.op))
		}
	}
}

// runFused executes the fused stream starting at micro-op index start. The
// structure deliberately mirrors Machine.run: counters and the memory slice
// are locals with a deferred flush, registers are direct array pointers,
// and every hot micro-op is an inline case of one jump-table switch. Only
// traps and calls that can leave the fused view (CallInd to an unmapped
// target, CallRT) go through out-of-line helpers.
func (m *Machine) runFused(mod *Module, fp *fprog, start int32) error {
	st := fstate{
		m: m, mod: mod, fp: fp, mem: m.Mem,
		callBase: len(m.callPCs), fretBase: len(m.fret),
	}
	R := &m.R
	F := &m.F
	mem := m.Mem
	ins := fp.ins
	stepsAll := fp.steps
	guardsAll := fp.guards
	// PC sampling shares the branch micro-ops as checkpoints (cf. run): a
	// nil test when off, a two-load compare when armed. pc0 gives the exact
	// original instruction index, so fused and unfused execution attribute
	// samples to identical code positions.
	sm := m.sampler
	offs := mod.Prog.Offsets
	var count, branches, memops int64
	defer func() {
		m.Executed += count
		m.Branches += branches
		m.MemOps += memops
	}()

	loadAddr := func(a, n uint64) (uint64, bool) {
		memops++
		return a, a >= nullGuard && a+n <= uint64(len(mem)) && a+n >= a
	}

	fpc := start
	for fpc >= 0 {
		in := &ins[fpc]
		count += int64(in.n)
		fpc++
		switch in.op {
		// ---- fused micro-ops ----
		case xRun:
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
		case xRunBr:
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			fpc = in.tgt
		case xRunBrCC:
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if evalCond(in.cond, R[in.ra], R[in.rb]) {
				fpc = in.tgt
			}
		case xRunBrNZ:
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if R[in.ra] != 0 {
				fpc = in.tgt
			}
		// Guard+run merges: one dispatch for a whole block. The guard op
		// charges nothing (n=0); on pass, the absorbed run micro-op at fpc
		// supplies the steps, counters and branch fields, and is consumed
		// inline. On fail, the checked clone re-runs the block per-access.
		case xG1Run:
			a := R[in.ra]
			lo, hi := a+uint64(in.imm), a+uint64(in.imm2)
			if lo < nullGuard || hi > uint64(len(mem)) || lo > hi {
				fpc = in.tgt
				continue
			}
			in = &ins[fpc]
			fpc++
			count += int64(in.n)
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
		case xG1RunBr:
			a := R[in.ra]
			lo, hi := a+uint64(in.imm), a+uint64(in.imm2)
			if lo < nullGuard || hi > uint64(len(mem)) || lo > hi {
				fpc = in.tgt
				continue
			}
			in = &ins[fpc]
			count += int64(in.n)
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			fpc = in.tgt
		case xG1RunBrCC:
			a := R[in.ra]
			lo, hi := a+uint64(in.imm), a+uint64(in.imm2)
			if lo < nullGuard || hi > uint64(len(mem)) || lo > hi {
				fpc = in.tgt
				continue
			}
			in = &ins[fpc]
			fpc++
			count += int64(in.n)
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if evalCond(in.cond, R[in.ra], R[in.rb]) {
				fpc = in.tgt
			}
		case xG1RunBrNZ:
			a := R[in.ra]
			lo, hi := a+uint64(in.imm), a+uint64(in.imm2)
			if lo < nullGuard || hi > uint64(len(mem)) || lo > hi {
				fpc = in.tgt
				continue
			}
			in = &ins[fpc]
			fpc++
			count += int64(in.n)
			stepRun(stepsAll[in.imm:in.imm+int64(in.cnt)], R, F, mem)
			memops += int64(in.rc)
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if R[in.ra] != 0 {
				fpc = in.tgt
			}
		case xGuard1:
			a := R[in.ra]
			lo := a + uint64(in.imm)
			hi := a + uint64(in.imm2)
			if lo < nullGuard || hi > uint64(len(mem)) || lo > hi {
				fpc = in.tgt // checked clone re-runs the block per-access
			}
		case xGuard:
			gs := guardsAll[in.imm : in.imm+int64(in.cnt)]
			memLen := uint64(len(mem))
			for i := range gs {
				g := &gs[i]
				a := R[g.base]
				lo := a + uint64(g.lo)
				hi := a + uint64(g.hi)
				if lo < nullGuard || hi > memLen || lo > hi {
					fpc = in.tgt // checked clone re-runs the block per-access
					break
				}
			}
		case xJmp:
			fpc = in.tgt
		case xCmpBr:
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if evalCond(in.cond, R[in.ra], R[in.rb]) {
				R[in.rd] = 1
				fpc = in.tgt
			} else {
				R[in.rd] = 0
			}
		case xFCmpBr:
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if evalFCond(in.cond, F[in.ra], F[in.rb]) {
				R[in.rd] = 1
				fpc = in.tgt
			} else {
				R[in.rd] = 0
			}
		case xLoadOp:
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), uint64(in.cnt))
			if !ok {
				count-- // the fused follow-op never executed
				fpc = st.trap(in.pc0, vt.TrapOOB, memMsg(vt.Op(in.op1)))
				continue
			}
			switch vt.Op(in.op1) {
			case vt.Load8:
				R[in.rd] = uint64(mem[a])
			case vt.Load8S:
				R[in.rd] = uint64(int64(int8(mem[a])))
			case vt.Load16:
				R[in.rd] = uint64(mem[a]) | uint64(mem[a+1])<<8
			case vt.Load16S:
				R[in.rd] = uint64(int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8)))
			case vt.Load32:
				R[in.rd] = uint64(le32(mem[a:]))
			case vt.Load32S:
				R[in.rd] = uint64(int64(int32(le32(mem[a:]))))
			case vt.Load64:
				R[in.rd] = le64(mem[a:])
			case vt.FLoad:
				F[in.rd] = fromBits(le64(mem[a:]))
			}
			stepRun(stepsAll[in.tgt:in.tgt+1], R, F, mem)
		case xOpStore:
			stepRun(stepsAll[in.tgt:in.tgt+1], R, F, mem)
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), uint64(in.cnt))
			if !ok {
				// Both constituents were dispatched (the op ran, the
				// store trapped), so the pre-charged count of 2 is
				// already exact. The trap belongs to the store, the
				// pair's second constituent.
				fpc = st.trap(in.pc0+1, vt.TrapOOB, memMsg(vt.Op(in.op1)))
				continue
			}
			switch vt.Op(in.op1) {
			case vt.Store8:
				mem[a] = byte(R[in.rb])
			case vt.Store16:
				v := R[in.rb]
				mem[a] = byte(v)
				mem[a+1] = byte(v >> 8)
			case vt.Store32:
				put32(mem[a:], uint32(R[in.rb]))
			case vt.Store64:
				put64(mem[a:], R[in.rb])
			case vt.FStore:
				put64(mem[a:], toBits(F[in.rb]))
			}

		// ---- control flow ----
		case uint8(vt.Br):
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			fpc = in.tgt
		case uint8(vt.BrCC):
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if evalCond(in.cond, R[in.ra], R[in.rb]) {
				fpc = in.tgt
			}
		case uint8(vt.BrNZ):
			branches++
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if R[in.ra] != 0 {
				fpc = in.tgt
			}
		case uint8(vt.Call):
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			m.callPCs = append(m.callPCs, in.pc0)
			m.fret = append(m.fret, int32(in.imm2))
			fpc = in.tgt
		case uint8(vt.CallInd):
			fpc = st.fuCallInd(in)
			mem = st.mem // a nested unfused run may have grown memory
		case uint8(vt.CallRT):
			fpc = st.fuCallRT(in, fpc)
			mem = st.mem // runtime call may have grown memory
		case uint8(vt.Ret):
			if sm != nil && m.Executed+count >= sm.next {
				sm.take(mod, offs[in.pc0+int32(in.n)-1], m.Executed+count)
			}
			if len(m.fret) == st.fretBase {
				return st.err
			}
			fpc = m.fret[len(m.fret)-1]
			m.fret = m.fret[:len(m.fret)-1]
			m.callPCs = m.callPCs[:len(m.callPCs)-1]
		case uint8(vt.Trap):
			fpc = st.trap(in.pc0, vt.TrapCode(in.imm), "")
		case uint8(vt.TrapNZ):
			if R[in.ra] != 0 {
				fpc = st.trap(in.pc0, vt.TrapCode(in.imm), "")
			}

		// ---- checked memory singles (no guard covered them) ----
		case uint8(vt.Load8):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 1)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "load8")
				continue
			}
			R[in.rd] = uint64(mem[a])
		case uint8(vt.Load8S):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 1)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "load8s")
				continue
			}
			R[in.rd] = uint64(int64(int8(mem[a])))
		case uint8(vt.Load16):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 2)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "load16")
				continue
			}
			R[in.rd] = uint64(mem[a]) | uint64(mem[a+1])<<8
		case uint8(vt.Load16S):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 2)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "load16s")
				continue
			}
			R[in.rd] = uint64(int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8)))
		case uint8(vt.Load32):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 4)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "load32")
				continue
			}
			R[in.rd] = uint64(le32(mem[a:]))
		case uint8(vt.Load32S):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 4)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "load32s")
				continue
			}
			R[in.rd] = uint64(int64(int32(le32(mem[a:]))))
		case uint8(vt.Load64):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 8)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "load64")
				continue
			}
			R[in.rd] = le64(mem[a:])
		case uint8(vt.Store8):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 1)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "store8")
				continue
			}
			mem[a] = byte(R[in.rb])
		case uint8(vt.Store16):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 2)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "store16")
				continue
			}
			v := R[in.rb]
			mem[a] = byte(v)
			mem[a+1] = byte(v >> 8)
		case uint8(vt.Store32):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 4)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "store32")
				continue
			}
			put32(mem[a:], uint32(R[in.rb]))
		case uint8(vt.Store64):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 8)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "store64")
				continue
			}
			put64(mem[a:], R[in.rb])
		case uint8(vt.FLoad):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 8)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "fload")
				continue
			}
			F[in.rd] = fromBits(le64(mem[a:]))
		case uint8(vt.FStore):
			a, ok := loadAddr(R[in.ra]+uint64(in.imm), 8)
			if !ok {
				fpc = st.trap(in.pc0, vt.TrapOOB, "fstore")
				continue
			}
			put64(mem[a:], toBits(F[in.rb]))

		// ---- guard-covered memory singles (flushed runs of one step) ----
		case uLoad8, uint8(vt.LoadU8):
			memops++
			R[in.rd] = uint64(mem[R[in.ra]+uint64(in.imm)])
		case uLoad8S, uint8(vt.LoadU8S):
			memops++
			R[in.rd] = uint64(int64(int8(mem[R[in.ra]+uint64(in.imm)])))
		case uLoad16, uint8(vt.LoadU16):
			memops++
			a := R[in.ra] + uint64(in.imm)
			R[in.rd] = uint64(mem[a]) | uint64(mem[a+1])<<8
		case uLoad16S, uint8(vt.LoadU16S):
			memops++
			a := R[in.ra] + uint64(in.imm)
			R[in.rd] = uint64(int64(int16(uint16(mem[a]) | uint16(mem[a+1])<<8)))
		case uLoad32, uint8(vt.LoadU32):
			memops++
			R[in.rd] = uint64(le32(mem[R[in.ra]+uint64(in.imm):]))
		case uLoad32S, uint8(vt.LoadU32S):
			memops++
			R[in.rd] = uint64(int64(int32(le32(mem[R[in.ra]+uint64(in.imm):]))))
		case uLoad64, uint8(vt.LoadU64):
			memops++
			R[in.rd] = le64(mem[R[in.ra]+uint64(in.imm):])
		case uStore8, uint8(vt.StoreU8):
			memops++
			mem[R[in.ra]+uint64(in.imm)] = byte(R[in.rb])
		case uStore16, uint8(vt.StoreU16):
			memops++
			a := R[in.ra] + uint64(in.imm)
			v := R[in.rb]
			mem[a] = byte(v)
			mem[a+1] = byte(v >> 8)
		case uStore32, uint8(vt.StoreU32):
			memops++
			put32(mem[R[in.ra]+uint64(in.imm):], uint32(R[in.rb]))
		case uStore64, uint8(vt.StoreU64):
			memops++
			put64(mem[R[in.ra]+uint64(in.imm):], R[in.rb])
		case uFLoad, uint8(vt.FLoadU):
			memops++
			F[in.rd] = fromBits(le64(mem[R[in.ra]+uint64(in.imm):]))
		case uFStore, uint8(vt.FStoreU):
			memops++
			put64(mem[R[in.ra]+uint64(in.imm):], toBits(F[in.rb]))

		// ---- combined steps emitted directly (short runs) ----
		// Same semantics as the stepRun cases; cnt carries the guarded
		// memory-access count, op1 the second operation's extra register.
		case cMovSt64:
			memops++
			R[in.rd] = R[in.ra]
			put64(mem[R[in.rb]+uint64(in.imm):], R[in.rc])
		case cSt64Mov:
			memops++
			put64(mem[R[in.ra]+uint64(in.imm):], R[in.rb])
			R[in.rd] = R[in.rc]
		case cSt64Ld64:
			memops += 2
			put64(mem[R[in.ra]+uint64(in.imm):], R[in.rb])
			R[in.rd] = le64(mem[R[in.op1]+uint64(in.imm2):])
		case cLd64Mov:
			memops++
			R[in.rd] = le64(mem[R[in.ra]+uint64(in.imm):])
			R[in.rb] = R[in.rc]
		case cMovISt64:
			memops++
			R[in.rd] = uint64(in.imm)
			put64(mem[R[in.ra]+uint64(in.imm2):], R[in.rb])
		case cSt64MovI:
			memops++
			put64(mem[R[in.ra]+uint64(in.imm):], R[in.rb])
			R[in.rd] = uint64(in.imm2)
		case cMovAdd:
			R[in.rd] = R[in.ra]
			R[in.rb] = R[in.rc] + R[in.op1]
		case cAddSt64:
			memops++
			R[in.rd] = R[in.ra] + R[in.rb]
			put64(mem[R[in.rc]+uint64(in.imm):], R[in.op1])
		case cSetSt64:
			memops++
			if evalCond(in.cond, R[in.ra], R[in.rb]) {
				R[in.rd] = 1
			} else {
				R[in.rd] = 0
			}
			put64(mem[R[in.rc]+uint64(in.imm):], R[in.op1])
		case cLd64Set:
			memops++
			R[in.rd] = le64(mem[R[in.ra]+uint64(in.imm):])
			if evalCond(in.cond, R[in.rc], R[in.op1]) {
				R[in.rb] = 1
			} else {
				R[in.rb] = 0
			}
		case cSt64St64:
			memops += 2
			put64(mem[R[in.ra]+uint64(in.imm):], R[in.rb])
			put64(mem[R[in.rc]+uint64(in.imm2):], R[in.op1])
		case cLd64Ld64:
			memops += 2
			R[in.rd] = le64(mem[R[in.ra]+uint64(in.imm):])
			R[in.rb] = le64(mem[R[in.rc]+uint64(in.imm2):])
		case cMovMov:
			R[in.rd] = R[in.ra]
			R[in.rb] = R[in.rc]
		case cMovIMovI:
			R[in.rd] = uint64(in.imm)
			R[in.rb] = uint64(in.imm2)
		case c2MovXor:
			R[in.rd] = R[in.ra]
			R[in.rb] = R[in.rc] ^ R[in.op1]
		case c2MovAnd:
			R[in.rd] = R[in.ra]
			R[in.rb] = R[in.rc] & R[in.op1]
		case c2XorMov:
			R[in.rd] = R[in.ra] ^ R[in.rb]
			R[in.rc] = R[in.op1]
		case c2AndMov:
			R[in.rd] = R[in.ra] & R[in.rb]
			R[in.rc] = R[in.op1]
		case c2MovMulI:
			R[in.rd] = R[in.ra]
			R[in.rb] = R[in.rc] * uint64(in.imm)
		case c2MulILea:
			R[in.rd] = R[in.ra] * uint64(in.imm)
			R[in.rb] = R[in.rc] + uint64(in.imm2)
		case c2LeaAdd:
			R[in.rd] = R[in.ra] + uint64(in.imm)
			R[in.rb] = R[in.rc] + R[in.op1]
		case c2AddLea:
			R[in.rd] = R[in.ra] + R[in.rb]
			R[in.rc] = R[in.op1] + uint64(in.imm)
		case c2MulIAdd:
			R[in.rd] = R[in.ra] * uint64(in.imm)
			R[in.rb] = R[in.rc] + R[in.op1]
		case c2MovIMulI:
			R[in.rd] = uint64(in.imm)
			R[in.rb] = R[in.rc] * uint64(in.imm2)
		case c2AddMovI:
			R[in.rd] = R[in.ra] + R[in.rb]
			R[in.rc] = uint64(in.imm)
		case c2MovAddI:
			R[in.rd] = R[in.ra]
			R[in.rb] = R[in.rc] + uint64(in.imm)
		case c2AddIMov:
			R[in.rd] = R[in.ra] + uint64(in.imm)
			R[in.rb] = R[in.rc]
		case c2MovIMov:
			R[in.rd] = uint64(in.imm)
			R[in.rb] = R[in.rc]
		case c2MovIMulwu:
			R[in.rd] = uint64(in.imm)
			hi, lo := bits.Mul64(R[in.rc], R[in.op1])
			R[in.ra] = lo
			R[in.rb] = hi
		case c2CrcMovI:
			R[in.rd] = crc32c8(R[in.ra], R[in.rb])
			R[in.rc] = uint64(in.imm)
		case c2MovCrc:
			R[in.rd] = R[in.ra]
			R[in.rb] = crc32c8(R[in.rc], R[in.op1])
		case c2MovLd64:
			memops++
			R[in.rd] = R[in.ra]
			R[in.rb] = le64(mem[R[in.rc]+uint64(in.imm):])
		case c2MovILd64:
			memops++
			R[in.rd] = uint64(in.imm)
			R[in.rb] = le64(mem[R[in.rc]+uint64(in.imm2):])
		case c2Ld64Lea:
			memops++
			R[in.rd] = le64(mem[R[in.ra]+uint64(in.imm):])
			R[in.rb] = R[in.rc] + uint64(in.imm2)
		case c2LeaSt64:
			memops++
			R[in.rd] = R[in.ra] + uint64(in.imm)
			put64(mem[R[in.rb]+uint64(in.imm2):], R[in.rc])
		case c2MovStMovI:
			memops++
			R[in.rd] = R[in.ra]
			put64(mem[R[in.rb]+uint64(in.imm):], R[in.rc])
			R[in.op1] = uint64(in.imm2)
		case c2MovILdMov:
			memops++
			R[in.rd] = uint64(in.imm)
			R[in.ra] = le64(mem[R[in.rb]+uint64(in.imm2):])
			R[in.rc] = R[in.op1]

		// ---- plain singles (no fusion covered them) ----
		case uint8(vt.Nop):
		case uint8(vt.MovRR):
			R[in.rd] = R[in.ra]
		case uint8(vt.MovRI):
			R[in.rd] = uint64(in.imm)
		case uint8(vt.MovZ):
			R[in.rd] = uint64(uint16(in.imm)) << (16 * uint(in.cond))
		case uint8(vt.MovK):
			sh := 16 * uint(in.cond)
			R[in.rd] = R[in.rd]&^(uint64(0xFFFF)<<sh) | uint64(uint16(in.imm))<<sh
		case uint8(vt.Lea):
			R[in.rd] = R[in.ra] + uint64(in.imm)
		case uint8(vt.Add):
			R[in.rd] = R[in.ra] + R[in.rb]
		case uint8(vt.Sub):
			R[in.rd] = R[in.ra] - R[in.rb]
		case uint8(vt.Mul):
			R[in.rd] = R[in.ra] * R[in.rb]
		case uint8(vt.And):
			R[in.rd] = R[in.ra] & R[in.rb]
		case uint8(vt.Or):
			R[in.rd] = R[in.ra] | R[in.rb]
		case uint8(vt.Xor):
			R[in.rd] = R[in.ra] ^ R[in.rb]
		case uint8(vt.Shl):
			R[in.rd] = R[in.ra] << (R[in.rb] & 63)
		case uint8(vt.Shr):
			R[in.rd] = R[in.ra] >> (R[in.rb] & 63)
		case uint8(vt.Sar):
			R[in.rd] = uint64(int64(R[in.ra]) >> (R[in.rb] & 63))
		case uint8(vt.Rotr):
			R[in.rd] = bits.RotateLeft64(R[in.ra], -int(R[in.rb]&63))
		case uint8(vt.SDiv):
			d := int64(R[in.rb])
			if d == 0 {
				fpc = st.trap(in.pc0, vt.TrapDivZero, "")
				continue
			}
			n := int64(R[in.ra])
			if n == -1<<63 && d == -1 {
				R[in.rd] = uint64(n)
			} else {
				R[in.rd] = uint64(n / d)
			}
		case uint8(vt.SRem):
			d := int64(R[in.rb])
			if d == 0 {
				fpc = st.trap(in.pc0, vt.TrapDivZero, "")
				continue
			}
			n := int64(R[in.ra])
			if n == -1<<63 && d == -1 {
				R[in.rd] = 0
			} else {
				R[in.rd] = uint64(n % d)
			}
		case uint8(vt.UDiv):
			if R[in.rb] == 0 {
				fpc = st.trap(in.pc0, vt.TrapDivZero, "")
				continue
			}
			R[in.rd] = R[in.ra] / R[in.rb]
		case uint8(vt.URem):
			if R[in.rb] == 0 {
				fpc = st.trap(in.pc0, vt.TrapDivZero, "")
				continue
			}
			R[in.rd] = R[in.ra] % R[in.rb]
		case uint8(vt.AddI):
			R[in.rd] = R[in.ra] + uint64(in.imm)
		case uint8(vt.SubI):
			R[in.rd] = R[in.ra] - uint64(in.imm)
		case uint8(vt.MulI):
			R[in.rd] = R[in.ra] * uint64(in.imm)
		case uint8(vt.AndI):
			R[in.rd] = R[in.ra] & uint64(in.imm)
		case uint8(vt.OrI):
			R[in.rd] = R[in.ra] | uint64(in.imm)
		case uint8(vt.XorI):
			R[in.rd] = R[in.ra] ^ uint64(in.imm)
		case uint8(vt.ShlI):
			R[in.rd] = R[in.ra] << (uint64(in.imm) & 63)
		case uint8(vt.ShrI):
			R[in.rd] = R[in.ra] >> (uint64(in.imm) & 63)
		case uint8(vt.SarI):
			R[in.rd] = uint64(int64(R[in.ra]) >> (uint64(in.imm) & 63))
		case uint8(vt.RotrI):
			R[in.rd] = bits.RotateLeft64(R[in.ra], -int(uint64(in.imm)&63))
		case uint8(vt.Neg):
			R[in.rd] = -R[in.ra]
		case uint8(vt.Not):
			R[in.rd] = ^R[in.ra]
		case uint8(vt.MulWideU):
			hi, lo := bits.Mul64(R[in.ra], R[in.rb])
			R[in.rd] = lo
			R[in.rc] = hi
		case uint8(vt.MulWideS):
			a, b := int64(R[in.ra]), int64(R[in.rb])
			hi, lo := bits.Mul64(uint64(a), uint64(b))
			if a < 0 {
				hi -= uint64(b)
			}
			if b < 0 {
				hi -= uint64(a)
			}
			R[in.rd] = lo
			R[in.rc] = hi
		case uint8(vt.SetCC):
			if evalCond(in.cond, R[in.ra], R[in.rb]) {
				R[in.rd] = 1
			} else {
				R[in.rd] = 0
			}
		case uint8(vt.Crc32):
			R[in.rd] = crc32c8(R[in.ra], R[in.rb])
		case uint8(vt.FMovRR):
			F[in.rd] = F[in.ra]
		case uint8(vt.FMovRI):
			F[in.rd] = fromBits(uint64(in.imm))
		case uint8(vt.FAdd):
			F[in.rd] = F[in.ra] + F[in.rb]
		case uint8(vt.FSub):
			F[in.rd] = F[in.ra] - F[in.rb]
		case uint8(vt.FMul):
			F[in.rd] = F[in.ra] * F[in.rb]
		case uint8(vt.FDiv):
			F[in.rd] = F[in.ra] / F[in.rb]
		case uint8(vt.FCmp):
			if evalFCond(in.cond, F[in.ra], F[in.rb]) {
				R[in.rd] = 1
			} else {
				R[in.rd] = 0
			}
		case uint8(vt.CvtSI2F):
			F[in.rd] = float64(int64(R[in.ra]))
		case uint8(vt.CvtF2SI):
			R[in.rd] = uint64(int64(F[in.ra]))
		case uint8(vt.MovRF):
			R[in.rd] = toBits(F[in.ra])
		case uint8(vt.MovFR):
			F[in.rd] = fromBits(R[in.ra])
		default:
			fpc = st.trap(in.pc0, vt.TrapUnreachable, fmt.Sprintf("bad op %d", in.op))
		}
	}
	return st.err
}

// fuCallInd resolves and performs an indirect call. Mapped targets continue
// in the fused stream; unmapped targets (an address computed at run time
// from arithmetic the leader scan cannot see) execute in the unfused loop
// with their frames stitched to ours.
func (st *fstate) fuCallInd(in *finstr) int32 {
	m := st.m
	idx := st.mod.indexOf(int32(m.R[in.ra]))
	if idx < 0 {
		return st.trap(in.pc0, vt.TrapOOB, "indirect call target")
	}
	if f := st.fp.o2f[idx]; f >= 0 {
		m.callPCs = append(m.callPCs, in.pc0)
		m.fret = append(m.fret, int32(in.imm2))
		return f
	}
	err := m.run(st.mod, idx)
	st.mem = m.Mem
	if err == nil {
		return int32(in.imm2)
	}
	if t, ok := err.(*Trap); ok {
		offs := st.mod.Prog.Offsets
		t.Frames = append(t.Frames, st.mod.symbolize(offs[in.pc0]))
		for i := len(m.callPCs) - 1; i >= st.callBase; i-- {
			t.Frames = append(t.Frames, st.mod.symbolize(offs[m.callPCs[i]]))
		}
	}
	m.callPCs = m.callPCs[:st.callBase]
	m.fret = m.fret[:st.fretBase]
	st.err = err
	return -1
}

// fuCallRT invokes a runtime function; fpc is already the continuation.
func (st *fstate) fuCallRT(in *finstr, fpc int32) int32 {
	m := st.m
	id := int(in.imm)
	if id >= len(m.RT) || m.RT[id] == nil {
		return st.trap(in.pc0, vt.TrapUnreachable, fmt.Sprintf("runtime function %d", id))
	}
	if err := m.RT[id](m); err != nil {
		// A trap raised by the runtime function itself carries no frames
		// yet and is attributed here; a trap re-raised through nested
		// CallAt re-entry keeps its innermost location.
		if t, ok := err.(*Trap); ok && len(t.Frames) == 0 {
			t.PC = st.mod.Prog.Offsets[in.pc0]
			t.Frames = append(t.Frames, st.mod.symbolize(t.PC))
		}
		m.callPCs = m.callPCs[:st.callBase]
		m.fret = m.fret[:st.fretBase]
		st.err = err
		return -1
	}
	st.mem = m.Mem // runtime call may have grown memory
	return fpc
}
